package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCollectorBasics(t *testing.T) {
	c := NewCollector()
	if c.Count() != 0 || c.MeanLatency() != 0 || c.Quantile(0.5) != 0 {
		t.Fatal("fresh collector not zero")
	}
	c.RecordLatency(100, 10*time.Millisecond)
	c.RecordLatency(200, 30*time.Millisecond)
	if c.Count() != 2 {
		t.Fatalf("Count = %d", c.Count())
	}
	if c.MeanLatency() != 20*time.Millisecond {
		t.Fatalf("Mean = %v", c.MeanLatency())
	}
}

func TestQuantile(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.RecordLatency(int64(i), time.Duration(i)*time.Millisecond)
	}
	if q := c.Quantile(0); q != 1*time.Millisecond {
		t.Fatalf("q0 = %v", q)
	}
	if q := c.Quantile(1); q != 100*time.Millisecond {
		t.Fatalf("q1 = %v", q)
	}
	med := c.Quantile(0.5)
	if med < 45*time.Millisecond || med > 55*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
}

func TestInstantSeries(t *testing.T) {
	c := NewCollector()
	// Two buckets of width 100ns: [0,100) has 2 points, [100,200) has 1.
	c.RecordLatency(10, 5)
	c.RecordLatency(50, 15)
	c.RecordLatency(110, 100)
	buckets := c.InstantSeries(100)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Count != 2 || buckets[0].MeanLat != 10 || buckets[0].MaxLat != 15 {
		t.Fatalf("bucket0 = %+v", buckets[0])
	}
	if buckets[1].Count != 1 || buckets[1].MeanLat != 100 {
		t.Fatalf("bucket1 = %+v", buckets[1])
	}
}

func TestInstantSeriesIncludesEmptyBuckets(t *testing.T) {
	c := NewCollector()
	c.RecordLatency(0, 1)
	c.RecordLatency(250, 1)
	buckets := c.InstantSeries(100)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d, want 3", len(buckets))
	}
	if buckets[1].Count != 0 {
		t.Fatal("middle bucket should be empty")
	}
}

func TestInstantSeriesEmpty(t *testing.T) {
	c := NewCollector()
	if got := c.InstantSeries(100); got != nil {
		t.Fatal("empty collector must return nil series")
	}
	c.RecordLatency(1, 1)
	if got := c.InstantSeries(0); got != nil {
		t.Fatal("zero width must return nil")
	}
}

func TestCountSince(t *testing.T) {
	c := NewCollector()
	c.RecordLatency(100, 1)
	c.RecordLatency(200, 1)
	c.RecordLatency(300, 1)
	if got := c.CountSince(200); got != 2 {
		t.Fatalf("CountSince = %d", got)
	}
}

func TestReset(t *testing.T) {
	c := NewCollector()
	c.RecordLatency(1, 1)
	c.Reset()
	if c.Count() != 0 || len(c.InstantSeries(10)) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.RecordLatency(int64(g*1000+i), time.Duration(i))
			}
		}(g)
	}
	wg.Wait()
	if c.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", c.Count())
	}
}
