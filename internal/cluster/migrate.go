package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"meteorshower/internal/metrics"
	"meteorshower/internal/partition"
	"meteorshower/internal/spe"
)

// ErrMigrationAborted marks a live migration that could not complete —
// the source incarnation died mid-drain, a whole-application recovery
// superseded the move, or the quiesce/drain timed out. The application is
// left in a state ordinary failure handling heals: either the old
// incarnation still runs, or the failure detector sees it gone and
// triggers recovery.
var ErrMigrationAborted = errors.New("cluster: migration aborted")

// MigrationStats decomposes one live migration.
type MigrationStats struct {
	HAU        string
	From, To   int
	MovedBytes int64
	Drain      time.Duration // divert commands sent -> state blob handed over
	Downtime   time.Duration // old incarnation stopped -> new one started
	Restore    time.Duration // state deserialization on the destination
}

// MigrateHAU live-migrates one HAU to another node with exactly-once
// semantics and no whole-application rollback:
//
//  1. Quiesce: scheme-driven checkpoint triggers are paused, then one
//     explicit checkpoint epoch is driven to completion so no token
//     alignment is in flight when migration tokens enter the streams.
//  2. Divert: every upstream gets CmdMigrateOut — it flushes its pending
//     batch plus a migration token to the OLD edge, then switches the
//     port to a fresh edge feeding the destination incarnation.
//  3. Drain: the old incarnation processes everything up to the tokens
//     (per-edge FIFO makes the token a barrier), flushes its outputs,
//     serializes its state onto the reply channel, and exits.
//  4. Restore: the destination incarnation is rebuilt from the blob with
//     the SAME downstream edges and the fresh input edges, so output
//     sequence numbers continue exactly where the old incarnation
//     stopped — downstream dedup state stays valid and nothing is
//     replayed or lost.
//
// Downstream HAUs are never rolled back, which is why step 3 must flush
// pending output before snapshotting: a dropped stamped tuple would be a
// permanent sequence gap. The Baseline scheme is rejected — its
// preserver/ack plumbing assumes single-HAU restart recovery, not
// token-barrier handoff.
//
// Under the unaligned scheme the quiesce epoch completes without stalling
// (captures log channel tuples instead of pausing ports), and any capture
// still armed when the migration token or CmdMigrateSnap reaches an HAU is
// force-sealed (aborted) by the HAU itself — its remaining tokens may never
// arrive once upstreams divert, and the drain must not wait on a
// never-pausing port. A capture that can never seal (e.g. its epoch was
// abandoned by a failure) instead surfaces as a quiesce timeout with
// ErrMigrationAborted.
func (cl *Cluster) MigrateHAU(ctx context.Context, id string, dest int) (MigrationStats, error) {
	var stats MigrationStats
	if cl.cfg.Scheme == spe.Baseline {
		return stats, errors.New("cluster: live migration requires a token scheme (not Baseline)")
	}

	if partition.IsReplica(id) {
		return stats, fmt.Errorf("cluster: replica %q moves via rescale, not migration", id)
	}

	cl.mu.Lock()
	if !cl.started {
		cl.mu.Unlock()
		return stats, errors.New("cluster: not started")
	}
	if cl.parts[id] != nil {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: HAU %q is split; merge before migrating", id)
	}
	old := cl.haus[id]
	if old == nil {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: unknown HAU %q", id)
	}
	if dest < 0 || dest >= len(cl.nodes) {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: no such node %d", dest)
	}
	if !cl.nodes[dest].alive.Load() {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: destination node %d is dead", dest)
	}
	src := cl.hauNode[id]
	if src == dest {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: HAU %q already on node %d", id, dest)
	}
	if cl.migrating[id] {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: HAU %q already migrating", id)
	}
	if cl.haPinnedLocked(id) {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: HAU %q is pinned by active-standby replication (protected or adjacent to a protected HAU); demote first", id)
	}
	cl.migrating[id] = true
	a := cl.appOf(id)
	grd := cl.appGuardLocked(a, ErrMigrationAborted)
	cl.mu.Unlock()
	defer func() {
		cl.mu.Lock()
		delete(cl.migrating, id)
		cl.mu.Unlock()
	}()
	stats.HAU, stats.From, stats.To = id, src, dest

	// Quiesce: no checkpoint alignment may be in flight while migration
	// tokens travel, or token ordering on the old edges would interleave.
	// Pausing first and then driving one fresh epoch to completion
	// guarantees it: completion means every HAU finished aligning, and the
	// pause stops new epochs until the move is done.
	a.ctrl.PauseCheckpoints()
	defer a.ctrl.ResumeCheckpoints()
	if _, err := grd.quiesce(ctx); err != nil {
		return stats, err
	}

	// The recovery generation must not have moved: a whole-application
	// rollback rebuilt every HAU and our captured instance is stale.
	cl.mu.Lock()
	if grd.supersededLocked() || cl.haus[id] != old || !cl.nodes[dest].alive.Load() {
		cl.mu.Unlock()
		return stats, grd.errf("superseded before drain")
	}
	g := cl.graph
	ups := g.Upstream(id)
	// One fresh edge per upstream INCARNATION: a split upstream has several,
	// each diverted at the same logical out port.
	newGrid := make([][]*spe.Edge, len(ups))
	type divert struct {
		h    *spe.HAU
		port int
		edge *spe.Edge
	}
	var diverts []divert
	for i, up := range ups {
		outPort := -1
		for p, d := range g.Downstream(up) {
			if d == id {
				outPort = p
				break
			}
		}
		upIncs := cl.expandedLocked(up)
		newGrid[i] = make([]*spe.Edge, len(upIncs))
		for k, uinc := range upIncs {
			e := spe.NewEdgeBatch(uinc, id, cl.cfg.EdgeBuffer, cl.cfg.EdgeBatch)
			newGrid[i][k] = e
			if uh := cl.haus[uinc]; uh != nil && outPort >= 0 {
				diverts = append(diverts, divert{uh, outPort, e})
			}
		}
	}
	cl.mu.Unlock()

	drainStart := time.Now()
	for _, d := range diverts {
		d.h.Command(spe.Command{Kind: spe.CmdMigrateOut, Port: d.port, Edge: d.edge})
	}
	reply := make(chan []byte, 1)
	old.Command(spe.Command{Kind: spe.CmdMigrateSnap, Reply: reply})

	blob, err := grd.drainBlob(ctx, id, old, reply, time.After(drainTimeout))
	if err != nil {
		return stats, err
	}
	stats.Drain = time.Since(drainStart)
	stats.MovedBytes = int64(len(blob))

	// Handoff: the old incarnation has exited on its own; from here until
	// Start below, HAU id is not processing — the downtime window.
	downStart := time.Now()
	cl.mu.Lock()
	if grd.supersededLocked() {
		cl.mu.Unlock()
		return stats, grd.errf("superseded during drain")
	}
	if c := cl.cancels[id]; c != nil {
		c() // release the old incarnation's forwarder goroutines
	}
	target := dest
	if !cl.nodes[target].alive.Load() {
		// Destination died during the drain: fall back to the source node —
		// the blob is the authoritative state either way.
		target = src
		if !cl.nodes[target].alive.Load() {
			cl.mu.Unlock()
			return stats, fmt.Errorf("%w: destination and source nodes both dead", ErrMigrationAborted)
		}
	}
	cl.inEdges[id] = newGrid
	cl.hauNode[id] = target
	h, _, restoreDur, err := cl.buildHAU(id, blob)
	if err != nil {
		cl.mu.Unlock()
		// The HAU is down until the failure detector notices; surface the
		// cause rather than masking it as an abort.
		return stats, fmt.Errorf("cluster: migration restore of %q: %w", id, err)
	}
	cl.haus[id] = h
	hctx, cancel := context.WithCancel(cl.rootCtx)
	cl.cancels[id] = cancel
	cl.installControllerHAUs()
	cl.mu.Unlock()
	h.Start(hctx)
	stats.To = target
	stats.Restore = restoreDur
	stats.Downtime = time.Since(downStart)

	if cl.cfg.Metrics != nil {
		cl.cfg.Metrics.RecordMigration(metrics.Migration{
			At:         cl.cfg.Now(),
			App:        a.name,
			HAU:        id,
			From:       stats.From,
			To:         stats.To,
			MovedBytes: stats.MovedBytes,
			Drain:      stats.Drain,
			Downtime:   stats.Downtime,
			Restore:    stats.Restore,
		})
	}
	return stats, nil
}
