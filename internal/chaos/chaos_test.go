package chaos

import (
	"context"
	"reflect"
	"testing"

	"meteorshower/internal/operator"
)

// TestChaosSmoke is the CI chaos gate: three fixed seeds per topology,
// every run must pass both oracles. Any failure prints the mschaos
// command that replays the exact schedule.
func TestChaosSmoke(t *testing.T) {
	for _, top := range Topologies {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{Topology: top, Seed: seed})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				if len(res.Recoveries) == 0 {
					t.Fatal("no recovery timings recorded")
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosMigrationSmoke runs the full schedule with rack-spread
// placement and live-migration chaos enabled: every round either migrates
// an HAU cleanly before its kill or draws the mid-migration instant, and
// both oracles must still pass.
func TestChaosMigrationSmoke(t *testing.T) {
	for _, top := range Topologies {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology:     top,
					Seed:         seed,
					Placement:    "rackspread",
					NodesPerRack: 2,
					Migrations:   true,
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				migrated := false
				for _, rd := range res.RoundList {
					migrated = migrated || rd.Migrated != ""
				}
				if !migrated {
					t.Fatal("migration chaos enabled but no round attempted a migration")
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosMidMigrationKill forces every round onto the mid-migration
// instant: a live migration is started and the burst plus the move's
// source or destination node is killed while it is in flight. The
// exactly-once and state-equivalence oracles must survive kills landing
// in any phase of the move — quiesce, drain, handoff, or just after
// completion.
func TestChaosMidMigrationKill(t *testing.T) {
	for _, top := range Topologies {
		for seed := int64(1); seed <= 2; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology:     top,
					Seed:         seed,
					Placement:    "rackspread",
					NodesPerRack: 2,
					Migrations:   true,
					Points:       []InjectionPoint{KillMidMigration},
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				for i, rd := range res.RoundList {
					if rd.Point != KillMidMigration {
						t.Fatalf("round %d ran %s, want forced %s", i, rd.Point, KillMidMigration)
					}
					if rd.Migrated == "" || rd.MigrateKill < 0 {
						t.Fatalf("round %d recorded no in-flight migration kill: %+v", i, rd)
					}
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosMidSplitKill forces every round onto the mid-rescale instant:
// a live split of the topology's keyed operator (or a merge, once a prior
// round left it split) is started, and the burst plus a node hosting one
// of its incarnations is killed while the re-partition is in flight. The
// exactly-once and state-equivalence oracles must survive kills landing
// in any phase — quiesce, drain, re-shard, replica restore, or just after
// commit.
func TestChaosMidSplitKill(t *testing.T) {
	for _, top := range []Topology{Chain, FanOut} {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology:     top,
					Seed:         seed,
					Placement:    "rackspread",
					NodesPerRack: 2,
					Rescales:     true,
					Points:       []InjectionPoint{KillMidRescale},
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				for i, rd := range res.RoundList {
					if rd.Point != KillMidRescale {
						t.Fatalf("round %d ran %s, want forced %s", i, rd.Point, KillMidRescale)
					}
					if rd.Rescaled == "" || rd.RescaleKill < 0 {
						t.Fatalf("round %d recorded no in-flight rescale kill: %+v", i, rd)
					}
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosRescaleSmoke runs the full schedule with re-partition chaos
// enabled on the fan-in topology: every round either rescales the keyed
// operator cleanly before its kill or draws the mid-rescale instant, and
// both oracles must still pass.
func TestChaosRescaleSmoke(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run("fanin/seed="+string(rune('0'+seed)), func(t *testing.T) {
			res, err := Run(context.Background(), Config{
				Topology:     FanIn,
				Seed:         seed,
				Placement:    "rackspread",
				NodesPerRack: 2,
				Rescales:     true,
			})
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
			rescaled := false
			for _, rd := range res.RoundList {
				rescaled = rescaled || rd.Rescaled != ""
			}
			if !rescaled {
				t.Fatal("rescale chaos enabled but no round attempted a rescale")
			}
			t.Logf("%s", res)
		})
	}
}

// TestChaosMidRebalanceKill forces every round onto the mid-rebalance
// instant: a weighted slots-only rebalance of the topology's keyed
// operator (split 2-way once when whole) is started, and the burst plus a
// node hosting one of its incarnations is killed while hot slots are
// moving between the existing replicas. The exactly-once and
// state-equivalence oracles must survive kills landing in any phase —
// quiesce, drain, re-shard, replica restore, or just after commit.
func TestChaosMidRebalanceKill(t *testing.T) {
	for _, top := range []Topology{Chain, FanOut} {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology:     top,
					Seed:         seed,
					Placement:    "rackspread",
					NodesPerRack: 2,
					Rebalances:   true,
					Points:       []InjectionPoint{KillMidRebalance},
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				for i, rd := range res.RoundList {
					if rd.Point != KillMidRebalance {
						t.Fatalf("round %d ran %s, want forced %s", i, rd.Point, KillMidRebalance)
					}
					if rd.Rebalanced == "" || rd.RebalanceKill < 0 {
						t.Fatalf("round %d recorded no in-flight rebalance kill: %+v", i, rd)
					}
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosScheduleReproducible pins seed replayability: two runs with the
// same configuration must inject the identical kill schedule — same
// bursts, same instants, same mid-recovery extras.
func TestChaosScheduleReproducible(t *testing.T) {
	type schedule struct {
		Burst       []int
		SecondBurst []int
		Point       InjectionPoint
		ExtraKill   int
	}
	extract := func(res *Result) []schedule {
		out := make([]schedule, 0, len(res.RoundList))
		for _, rd := range res.RoundList {
			out = append(out, schedule{rd.Burst, rd.SecondBurst, rd.Point, rd.ExtraKill})
		}
		return out
	}
	cfg := Config{Topology: FanIn, Seed: 7, Rounds: 3}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := extract(a), extract(b); !reflect.DeepEqual(sa, sb) {
		t.Fatalf("same seed produced different schedules:\n%+v\n%+v", sa, sb)
	}

	// Migration mode must be just as replayable for the rng-driven parts
	// of the schedule. (Migration destinations are bumped off the live
	// placement, which timing can shift, so only the draws are pinned.)
	migrated := func(res *Result) []string {
		out := make([]string, 0, len(res.RoundList))
		for _, rd := range res.RoundList {
			out = append(out, rd.Migrated)
		}
		return out
	}
	mcfg := Config{Topology: FanIn, Seed: 7, Rounds: 3, Placement: "rackspread", NodesPerRack: 2, Migrations: true}
	ma, err := Run(context.Background(), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Run(context.Background(), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := extract(ma), extract(mb); !reflect.DeepEqual(sa, sb) {
		t.Fatalf("migration mode: same seed produced different schedules:\n%+v\n%+v", sa, sb)
	}
	if ga, gb := migrated(ma), migrated(mb); !reflect.DeepEqual(ga, gb) {
		t.Fatalf("migration mode: same seed drew different migration targets: %v vs %v", ga, gb)
	}
}

// TestReferenceReplayDeterministic pins the ground-truth generator: two
// replays of the same spec must agree exactly, and their reports must be
// violation-free (the replay never loses or duplicates anything).
func TestReferenceReplayDeterministic(t *testing.T) {
	for _, top := range Topologies {
		specA, _, refA, err := buildSpec(top, 9, 60)
		if err != nil {
			t.Fatal(err)
		}
		a, err := referenceReplay(specA, refA)
		if err != nil {
			t.Fatalf("%s: %v", top, err)
		}
		if a.TotalViolations() != 0 {
			t.Fatalf("%s: reference replay reported violations:\n%s", top, a)
		}
		if len(a) == 0 {
			t.Fatalf("%s: reference replay delivered nothing", top)
		}
		specB, _, refB, err := buildSpec(top, 9, 60)
		if err != nil {
			t.Fatal(err)
		}
		b, err := referenceReplay(specB, refB)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: reference replay not deterministic\n%s\n%s", top, a, b)
		}
	}
}

// TestDiffReportsCatchesDivergence checks the state oracle's comparator
// itself: missing sources, lost tuples and duplicate deliveries must all
// surface; reorder-only differences must not.
func TestDiffReportsCatchesDivergence(t *testing.T) {
	want := operator.SinkReport{
		"M0": {Delivered: 10, MinID: 1, MaxID: 10},
		"M1": {Delivered: 5, MinID: 1, MaxID: 5},
	}
	clean := operator.SinkReport{
		"M0": {Delivered: 10, MinID: 1, MaxID: 10, Reorders: 3},
		"M1": {Delivered: 5, MinID: 1, MaxID: 5},
	}
	if d := diffReports(clean, want); len(d) != 0 {
		t.Fatalf("reorder-only difference reported as divergence: %v", d)
	}
	broken := operator.SinkReport{
		"M0": {Delivered: 9, MinID: 1, MaxID: 10, Gaps: 1},
	}
	d := diffReports(broken, want)
	if len(d) != 2 {
		t.Fatalf("want 2 diffs (M0 gap, M1 missing), got %v", d)
	}
}
