package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Scatter implements distributed checkpointing (paper §V, after SGuard:
// "scattering the checkpointed state into multiple storage nodes"): a blob
// is split into equal chunks written to N backing stores in parallel, so a
// large individual checkpoint completes in roughly 1/N of the time instead
// of queueing on a single storage node.
type Scatter struct {
	stores []*Store
}

// NewScatter returns a scatter store over n backing stores with the given
// per-store spec.
func NewScatter(n int, spec DiskSpec) *Scatter {
	if n <= 0 {
		n = 1
	}
	s := &Scatter{}
	for i := 0; i < n; i++ {
		s.stores = append(s.stores, NewStore(spec))
	}
	return s
}

// Width returns the number of backing stores.
func (s *Scatter) Width() int { return len(s.stores) }

// Stores exposes the backing stores (tests, stats).
func (s *Scatter) Stores() []*Store { return s.stores }

func chunkKey(key string, i int) string { return fmt.Sprintf("%s#%d", key, i) }

// Put scatters data over the backing stores in parallel and returns the
// slowest chunk's modelled duration (the operation completes when the last
// chunk is durable). Each byte of data is copied exactly once — into the
// per-chunk buffer handed to the store — instead of the historical copy per
// chunk plus a second defensive copy inside Store.Put.
func (s *Scatter) Put(key string, data []byte) (time.Duration, error) {
	return s.put(key, data, false)
}

// PutOwned scatters data with ownership transfer: chunks 1..n-1 are stored
// as subslices of data with no copy at all, so the caller must not mutate
// data afterwards. Only chunk 0 is copied, to prepend the length header.
func (s *Scatter) PutOwned(key string, data []byte) (time.Duration, error) {
	return s.put(key, data, true)
}

func (s *Scatter) put(key string, data []byte, owned bool) (time.Duration, error) {
	n := len(s.stores)
	chunk := (len(data) + n - 1) / n
	var wg sync.WaitGroup
	durs := make([]time.Duration, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		part := data[lo:hi]
		if i == 0 {
			// The header chunk is always rebuilt, which also covers the
			// non-owned case for it.
			buf := make([]byte, 0, 8+len(part))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(len(data)))
			part = append(buf, part...)
		} else if !owned {
			part = append([]byte(nil), part...)
		}
		wg.Add(1)
		go func(i int, part []byte) {
			defer wg.Done()
			durs[i], errs[i] = s.stores[i].PutOwned(chunkKey(key, i), part)
		}(i, part)
	}
	wg.Wait()
	var worst time.Duration
	for i := range durs {
		if errs[i] != nil {
			return 0, errs[i]
		}
		if durs[i] > worst {
			worst = durs[i]
		}
	}
	return worst, nil
}

// Get gathers the chunks in parallel and reassembles the blob.
func (s *Scatter) Get(key string) ([]byte, time.Duration, error) {
	n := len(s.stores)
	parts := make([][]byte, n)
	durs := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], durs[i], errs[i] = s.stores[i].Get(chunkKey(key, i))
		}(i)
	}
	wg.Wait()
	var worst time.Duration
	for i := range errs {
		if errs[i] != nil {
			return nil, 0, errs[i]
		}
		if durs[i] > worst {
			worst = durs[i]
		}
	}
	if len(parts[0]) < 8 {
		return nil, worst, errors.New("storage: scatter chunk 0 missing header")
	}
	total := int(binary.LittleEndian.Uint64(parts[0]))
	out := make([]byte, 0, total)
	out = append(out, parts[0][8:]...)
	for i := 1; i < n; i++ {
		out = append(out, parts[i]...)
	}
	if len(out) != total {
		return nil, worst, fmt.Errorf("storage: scatter reassembly got %d bytes, want %d", len(out), total)
	}
	return out, worst, nil
}

// Delete removes all chunks of key, best-effort: one down store must not
// orphan the key's chunks on every healthy store (that would defeat
// retention GC permanently for the blob). Every chunk is attempted; the
// joined error reports the stores that failed so the caller can retry.
func (s *Scatter) Delete(key string) error {
	var errs []error
	for i, st := range s.stores {
		if err := st.Delete(chunkKey(key, i)); err != nil {
			errs = append(errs, fmt.Errorf("chunk %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
