package tuple

import "sync"

// Pooling and ownership
//
// The hot path recycles tuple headers and batch containers through
// sync.Pools. The rules that make this safe:
//
//   - A tuple header has exactly one owner at a time. Whoever holds the
//     only reference may Put it back; everyone else must Retain (header
//     copy) or Clone (deep copy) first.
//   - Payloads (Data) are immutable once a tuple has been emitted
//     downstream. Retained and preserved copies therefore share the
//     payload bytes instead of copying them (copy-on-retain of the
//     header only). Put never recycles payload bytes for the same
//     reason: another header may still reference them.
//   - Batch containers are owned by the receiver after a channel send;
//     PutBatch recycles the container only, never the tuples inside.

var tuplePool = sync.Pool{New: func() any { return new(Tuple) }}

// Get returns a zeroed tuple from the pool.
func Get() *Tuple { return tuplePool.Get().(*Tuple) }

// Put recycles t. The caller must hold the only reference to the header;
// the payload bytes are left alone (they may be shared with retained
// copies). Put(nil) is a no-op.
func Put(t *Tuple) {
	if t == nil {
		return
	}
	*t = Tuple{}
	tuplePool.Put(t)
}

// NewAt returns a pooled data tuple carrying the given timestamp. The hot
// path uses it instead of New so one coarse clock read can stamp a whole
// generation batch.
func NewAt(id uint64, src, key string, ts int64, data []byte) *Tuple {
	t := Get()
	t.ID, t.Src, t.Key, t.Ts, t.Data = id, src, key, ts, data
	return t
}

// NewTokenAt returns a pooled control tuple carrying tok at the given
// timestamp.
func NewTokenAt(tok Token, ts int64) *Tuple {
	t := Get()
	t.Ts = ts
	t.Tok = &tok
	return t
}

// Retain returns a pooled shallow copy of t: the header is copied, the
// payload (and token, which is immutable) is shared. This is the
// copy-on-retain path used by preservation and checkpoint retention;
// it relies on emitted payloads being immutable.
func (t *Tuple) Retain() *Tuple {
	c := Get()
	*c = *t
	return c
}

// Batch is the unit in which tuples cross an edge: senders accumulate up
// to the edge's batch size before one channel send. Tuples keep their
// individual identity; the batch is only a transport container.
type Batch struct {
	Tuples []*Tuple
}

var batchPool = sync.Pool{New: func() any { return &Batch{Tuples: make([]*Tuple, 0, 64)} }}

// GetBatch returns an empty batch container from the pool.
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.Tuples = b.Tuples[:0]
	return b
}

// PutBatch recycles the batch container. Tuple ownership must already
// have moved elsewhere; the contained references are dropped, not Put.
func PutBatch(b *Batch) {
	if b == nil {
		return
	}
	for i := range b.Tuples {
		b.Tuples[i] = nil
	}
	b.Tuples = b.Tuples[:0]
	batchPool.Put(b)
}

// BatchOf wraps ts in a pooled batch container.
func BatchOf(ts ...*Tuple) *Batch {
	b := GetBatch()
	b.Tuples = append(b.Tuples, ts...)
	return b
}

// Len returns the number of tuples in the batch.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.Tuples)
}
