package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/core"
	"meteorshower/internal/failure"
	"meteorshower/internal/metrics"
	"meteorshower/internal/spe"
)

// SoakResult summarizes an availability soak: the application runs under a
// compressed Table-I failure trace with periodic checkpoints and automatic
// whole-application recovery after each burst. This quantifies the paper's
// motivation — "it is necessary for DSPSs running in data centers to deal
// with large-scale burst failures" — as delivered throughput relative to a
// failure-free run.
type SoakResult struct {
	App          string
	Scheme       string
	Bursts       int           // correlated failure events injected
	SingleFails  int           // single-node failure events injected
	Recoveries   int           // successful whole-application recoveries
	FailedRecov  int           // recovery attempts that found no checkpoint
	Baseline     uint64        // tuples delivered in the failure-free run
	Delivered    uint64        // tuples delivered under the failure trace
	Availability float64       // Delivered / Baseline
	Duplicates   uint64        // exactly-once violations observed at sinks
	Window       time.Duration // total soak duration
}

// RunSoak drives one app + scheme through a failure trace sampled from the
// Google DC model, compressed so that `bursts` correlated events land
// within the soak window. A failure-free control run measures the
// denominator.
func RunSoak(p Params, kind AppKind, scheme spe.Scheme, bursts int) (SoakResult, error) {
	p = p.withDefaults()
	p.TrackIdentity = true
	res := SoakResult{App: kind.String(), Scheme: scheme.String(), Window: p.Window * 2}

	// Control run: no failures.
	control, _, err := runSoakOnce(p, kind, scheme, nil, &res)
	if err != nil {
		return res, err
	}
	res.Baseline = control

	// Failure trace: sample burst events from the Google model, take the
	// first `bursts` correlated ones, and spread them over the window.
	events := failure.Generate(failure.GoogleDC(), p.Nodes*80, failure.Year, p.Seed)
	var picked []failure.Event
	for _, e := range events {
		if e.Correlated() && len(picked) < bursts {
			picked = append(picked, e)
		} else if !e.Correlated() && res.SingleFails < bursts {
			picked = append(picked, e)
			res.SingleFails++
		}
		if len(picked) >= 2*bursts {
			break
		}
	}
	res.Bursts = len(picked) - res.SingleFails

	delivered, dupes, err := runSoakOnce(p, kind, scheme, picked, &res)
	if err != nil {
		return res, err
	}
	res.Delivered = delivered
	res.Duplicates = dupes
	if res.Baseline > 0 {
		res.Availability = float64(res.Delivered) / float64(res.Baseline)
	}
	return res, nil
}

// runSoakOnce runs the app for 2x window; when events is non-nil they are
// injected evenly across the run, each followed by RecoverAll.
func runSoakOnce(p Params, kind AppKind, scheme spe.Scheme, events []failure.Event, res *SoakResult) (uint64, uint64, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := metrics.NewCollector()
	ref := &apps.SinkRef{}
	spec := BuildApp(kind, p, col, ref)
	sys, err := core.NewSystem(core.Options{
		App:              spec,
		Scheme:           scheme,
		Nodes:            p.Nodes,
		CheckpointPeriod: p.Window / 4,
		LocalDisk:        p.LocalDisk,
		SharedDisk:       p.SharedDisk,
		TickEvery:        time.Millisecond,
		SourceFlush:      64 << 10,
		Seed:             p.Seed,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := sys.Start(ctx); err != nil {
		return 0, 0, err
	}
	defer sys.Stop()
	sys.StartController(ctx)
	sleepCtx(ctx, p.Warmup)
	if len(events) > 0 {
		// Do not inject before the first application checkpoint exists —
		// there would be nothing to recover to.
		if err := sys.WaitForEpoch(1, 30*time.Second); err != nil {
			return 0, 0, err
		}
	}

	total := 2 * p.Window
	// Recovery replaces HAU instances (their processed counters restart),
	// so the delivered count is accumulated segment by segment.
	var acc uint64
	base := sys.Cluster().ProcessedTotal()
	if len(events) == 0 {
		sleepCtx(ctx, total)
		return sys.Cluster().ProcessedTotal() - base, sinkDupes(ref), nil
	}

	gap := total / time.Duration(len(events)+1)
	for _, e := range events {
		sleepCtx(ctx, gap)
		acc += sys.Cluster().ProcessedTotal() - base
		// Map the trace's node set onto the simulated cluster.
		nodes := make(map[int]bool)
		for _, n := range e.Nodes {
			nodes[n%p.Nodes] = true
		}
		idxs := make([]int, 0, len(nodes))
		for n := range nodes {
			idxs = append(idxs, n)
		}
		sys.KillNodes(idxs)
		if _, err := sys.RecoverAll(ctx); err != nil {
			res.FailedRecov++
			return acc, sinkDupes(ref), err
		}
		res.Recoveries++
		base = sys.Cluster().ProcessedTotal()
	}
	sleepCtx(ctx, gap)
	acc += sys.Cluster().ProcessedTotal() - base
	return acc, sinkDupes(ref), nil
}

func sinkDupes(ref *apps.SinkRef) uint64 {
	if s := ref.Get(); s != nil {
		return s.Duplicates()
	}
	return 0
}

// MSSoakScheme returns the scheme the soak experiment exercises.
func MSSoakScheme() spe.Scheme { return spe.MSSrcAP }

// FprintSoak prints a soak result.
func FprintSoak(w io.Writer, r SoakResult) {
	fmt.Fprintf(w, "availability soak — %s under %s, %s\n", r.App, r.Scheme, r.Window)
	fmt.Fprintf(w, "  failure events: %d bursts + %d single-node, recoveries: %d\n",
		r.Bursts, r.SingleFails, r.Recoveries)
	fmt.Fprintf(w, "  delivered %d / %d failure-free tuples -> availability %.1f%%\n",
		r.Delivered, r.Baseline, r.Availability*100)
	fmt.Fprintf(w, "  exactly-once violations: %d\n", r.Duplicates)
}
