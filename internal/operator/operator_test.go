package operator

import (
	"testing"
	"testing/quick"

	"meteorshower/internal/partition"
	"meteorshower/internal/tuple"
)

// capture collects emitted tuples per port.
type capture struct {
	byPort map[int][]*tuple.Tuple
}

func newCapture() *capture { return &capture{byPort: make(map[int][]*tuple.Tuple)} }

func (c *capture) emit(port int, t *tuple.Tuple) {
	c.byPort[port] = append(c.byPort[port], t)
}

func (c *capture) total() int {
	n := 0
	for _, ts := range c.byPort {
		n += len(ts)
	}
	return n
}

func mk(id uint64, key string) *tuple.Tuple {
	return tuple.New(id, "S", key, []byte("x"))
}

func TestMapTransformsAndDrops(t *testing.T) {
	m := NewMap("m", func(in *tuple.Tuple) *tuple.Tuple {
		if in.Key == "drop" {
			return nil
		}
		out := in.Clone()
		out.Key = "mapped"
		return out
	})
	c := newCapture()
	m.OnTuple(0, mk(1, "keep"), c.emit)
	m.OnTuple(0, mk(2, "drop"), c.emit)
	if len(c.byPort[0]) != 1 || c.byPort[0][0].Key != "mapped" {
		t.Fatalf("map output = %+v", c.byPort[0])
	}
	if m.StateSize() != 0 {
		t.Fatal("map must be stateless")
	}
}

func TestPassthroughFanout(t *testing.T) {
	p := NewPassthrough("g", 3)
	c := newCapture()
	p.OnTuple(0, mk(1, "k"), c.emit)
	for port := 0; port < 3; port++ {
		if len(c.byPort[port]) != 1 {
			t.Fatalf("port %d got %d tuples", port, len(c.byPort[port]))
		}
	}
	// Fanout copies must be independent.
	c.byPort[0][0].Data[0] = 0xFF
	if c.byPort[1][0].Data[0] == 0xFF {
		t.Fatal("fanout shares payloads")
	}
}

func TestPassthroughDefaultFanout(t *testing.T) {
	p := NewPassthrough("g", 0)
	c := newCapture()
	p.OnTuple(0, mk(1, "k"), c.emit)
	if c.total() != 1 {
		t.Fatal("default fanout must be 1")
	}
}

func TestDispatchConsistentRouting(t *testing.T) {
	d := NewDispatch("d", 4)
	c := newCapture()
	for i := 0; i < 20; i++ {
		d.OnTuple(0, mk(uint64(i), "same-key"), c.emit)
	}
	// All same-key tuples land on one port.
	ports := 0
	for _, ts := range c.byPort {
		if len(ts) > 0 {
			ports++
		}
	}
	if ports != 1 {
		t.Fatalf("same key split over %d ports", ports)
	}
}

func TestDispatchSpreadsKeys(t *testing.T) {
	d := NewDispatch("d", 4)
	c := newCapture()
	for i := 0; i < 200; i++ {
		d.OnTuple(0, mk(uint64(i), "key"+itoa(i)), c.emit)
	}
	for port := 0; port < 4; port++ {
		if len(c.byPort[port]) == 0 {
			t.Fatalf("port %d starved", port)
		}
	}
}

func TestBatcherFlushBySize(t *testing.T) {
	var flushed [][]*tuple.Tuple
	b := NewBatcher("b", 3, 0, func(batch []*tuple.Tuple, _ Emitter) {
		flushed = append(flushed, batch)
	})
	for i := 0; i < 7; i++ {
		b.OnTuple(0, mk(uint64(i), "k"), nil)
	}
	if len(flushed) != 2 {
		t.Fatalf("flushes = %d, want 2", len(flushed))
	}
	if b.PoolLen() != 1 {
		t.Fatalf("residual pool = %d, want 1", b.PoolLen())
	}
}

func TestBatcherFlushByAge(t *testing.T) {
	var flushed int
	b := NewBatcher("b", 0, 100, func([]*tuple.Tuple, Emitter) { flushed++ })
	tp := mk(1, "k")
	tp.Ts = 1000
	b.OnTuple(0, tp, nil)
	b.OnTick(1050, nil) // age 50 < 100
	if flushed != 0 {
		t.Fatal("flushed too early")
	}
	b.OnTick(1100, nil)
	if flushed != 1 {
		t.Fatal("did not flush at max age")
	}
	b.OnTick(1200, nil) // empty pool: no flush
	if flushed != 1 {
		t.Fatal("flushed empty pool")
	}
}

func TestBatcherStateSizeSawtooth(t *testing.T) {
	b := NewBatcher("b", 5, 0, func([]*tuple.Tuple, Emitter) {})
	var sizes []int64
	for i := 0; i < 10; i++ {
		b.OnTuple(0, mk(uint64(i), "k"), nil)
		sizes = append(sizes, b.StateSize())
	}
	// Size grows then drops to 0 at each flush (i=4 and i=9).
	if sizes[3] == 0 || sizes[4] != 0 || sizes[8] == 0 || sizes[9] != 0 {
		t.Fatalf("sawtooth broken: %v", sizes)
	}
}

func TestBatcherSnapshotRestore(t *testing.T) {
	mkB := func() *Batcher { return NewBatcher("b", 100, 0, func([]*tuple.Tuple, Emitter) {}) }
	b := mkB()
	for i := 0; i < 5; i++ {
		b.OnTuple(0, mk(uint64(i), "k"), nil)
	}
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b2 := mkB()
	if err := b2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b2.PoolLen() != 5 || b2.StateSize() != b.StateSize() {
		t.Fatalf("restored pool=%d size=%d, want 5/%d", b2.PoolLen(), b2.StateSize(), b.StateSize())
	}
	if err := b2.Restore([]byte{1}); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

func TestJoinMatchesByKey(t *testing.T) {
	j := NewJoin("j", 0, func(l, r *tuple.Tuple) *tuple.Tuple {
		out := l.Clone()
		out.Data = append(out.Data, r.Data...)
		return out
	})
	c := newCapture()
	j.OnTuple(0, mk(1, "a"), c.emit)
	j.OnTuple(1, mk(2, "b"), c.emit) // no match
	if c.total() != 0 {
		t.Fatal("unmatched keys joined")
	}
	j.OnTuple(1, mk(3, "a"), c.emit) // matches tuple 1
	if c.total() != 1 {
		t.Fatalf("join emitted %d, want 1", c.total())
	}
	j.OnTuple(0, mk(4, "a"), c.emit) // matches tuple 3
	if c.total() != 2 {
		t.Fatalf("join emitted %d, want 2", c.total())
	}
}

func TestJoinBadPort(t *testing.T) {
	j := NewJoin("j", 0, func(l, r *tuple.Tuple) *tuple.Tuple { return l })
	if err := j.OnTuple(2, mk(1, "a"), nil); err == nil {
		t.Fatal("port 2 accepted")
	}
}

func TestJoinWindowEviction(t *testing.T) {
	j := NewJoin("j", 100, func(l, r *tuple.Tuple) *tuple.Tuple { return l.Clone() })
	old := mk(1, "a")
	old.Ts = 1000
	j.OnTuple(0, old, nil)
	if j.StateSize() == 0 {
		t.Fatal("retained tuple has no state")
	}
	j.OnTick(2000, nil) // age 1000 > window 100
	if j.StateSize() != 0 {
		t.Fatal("expired tuple not evicted")
	}
	c := newCapture()
	fresh := mk(2, "a")
	fresh.Ts = 2000
	j.OnTuple(1, fresh, c.emit)
	if c.total() != 0 {
		t.Fatal("joined against evicted tuple")
	}
}

func TestJoinSnapshotRestore(t *testing.T) {
	combine := func(l, r *tuple.Tuple) *tuple.Tuple { return l.Clone() }
	j := NewJoin("j", 0, combine)
	j.OnTuple(0, mk(1, "a"), nil)
	j.OnTuple(1, mk(2, "z"), nil)
	snap, err := j.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	j2 := NewJoin("j", 0, combine)
	if err := j2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if j2.StateSize() != j.StateSize() {
		t.Fatalf("restored size %d != %d", j2.StateSize(), j.StateSize())
	}
	c := newCapture()
	j2.OnTuple(1, mk(3, "a"), c.emit)
	if c.total() != 1 {
		t.Fatal("restored join lost left side")
	}
}

func TestCounterCountsAndSurvivesRestore(t *testing.T) {
	cnt := NewCounter("c")
	c := newCapture()
	for i := 0; i < 5; i++ {
		cnt.OnTuple(0, mk(uint64(i), "a"), c.emit)
	}
	cnt.OnTuple(0, mk(9, "b"), c.emit)
	if cnt.Count("a") != 5 || cnt.Count("b") != 1 || cnt.Total() != 6 {
		t.Fatalf("counts wrong: a=%d b=%d", cnt.Count("a"), cnt.Count("b"))
	}
	if c.total() != 6 {
		t.Fatal("counter must forward tuples")
	}
	snap, _ := cnt.Snapshot()
	cnt2 := NewCounter("c")
	if err := cnt2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if cnt2.Count("a") != 5 || cnt2.Total() != 6 {
		t.Fatal("restored counter lost counts")
	}
}

func TestSlotWeightsReflectKeyedState(t *testing.T) {
	cnt := NewCounter("c")
	c := newCapture()
	for i := 0; i < 8; i++ {
		cnt.OnTuple(0, mk(uint64(i), "hotkey"), c.emit)
	}
	w, err := SlotWeights(cnt)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != partition.DefaultSlots {
		t.Fatalf("got %d slot weights, want %d", len(w), partition.DefaultSlots)
	}
	hot := partition.SlotOf("hotkey", partition.DefaultSlots)
	if w[hot] <= 0 {
		t.Fatalf("hot slot %d weighs %d, want > 0", hot, w[hot])
	}
	if w.Total() != w[hot] {
		t.Fatalf("weight leaked outside the hot slot: total %d, hot %d", w.Total(), w[hot])
	}
}

func TestCounterRestoreCorrupt(t *testing.T) {
	cnt := NewCounter("c")
	if err := cnt.Restore([]byte{1, 2}); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

// Property: Counter snapshot/restore is lossless for arbitrary key sets.
func TestQuickCounterRoundTrip(t *testing.T) {
	f := func(keys []string) bool {
		cnt := NewCounter("c")
		for i, k := range keys {
			if k == "" {
				k = "empty"
			}
			if len(k) > 100 {
				k = k[:100]
			}
			cnt.OnTuple(0, mk(uint64(i), k), func(int, *tuple.Tuple) {})
		}
		snap, err := cnt.Snapshot()
		if err != nil {
			return false
		}
		cnt2 := NewCounter("c")
		if err := cnt2.Restore(snap); err != nil {
			return false
		}
		return cnt2.Total() == cnt.Total() && cnt2.StateSize() == cnt.StateSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Batcher snapshot/restore preserves pool contents exactly.
func TestQuickBatcherRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		b := NewBatcher("b", 1000, 0, nil)
		for i := 0; i < int(n%60); i++ {
			b.OnTuple(0, mk(uint64(i), "k"+itoa(i)), nil)
		}
		snap, err := b.Snapshot()
		if err != nil {
			return false
		}
		b2 := NewBatcher("b", 1000, 0, nil)
		if err := b2.Restore(snap); err != nil {
			return false
		}
		return b2.PoolLen() == b.PoolLen() && b2.StateSize() == b.StateSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
