package storage

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fastSpec is a disk that accounts cost but never sleeps.
func fastSpec() DiskSpec {
	return DiskSpec{BandwidthBps: 100 << 20, Latency: 5 * time.Millisecond, TimeScale: 0}
}

func TestDiskCostModel(t *testing.T) {
	spec := DiskSpec{BandwidthBps: 100, Latency: time.Second}
	// 50 bytes at 100 B/s = 0.5 s transfer + 1 s latency.
	if got, want := spec.Cost(50), 1500*time.Millisecond; got != want {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestDiskCostZeroBandwidth(t *testing.T) {
	spec := DiskSpec{Latency: time.Millisecond}
	if got := spec.Cost(1 << 30); got != time.Millisecond {
		t.Fatalf("zero-bandwidth cost = %v, want latency only", got)
	}
}

func TestDiskStats(t *testing.T) {
	d := NewDisk(fastSpec())
	d.Write(1000)
	d.Write(500)
	d.Read(200)
	s := d.Stats()
	if s.Ops != 3 || s.BytesWritten != 1500 || s.BytesRead != 200 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyTime < 15*time.Millisecond {
		t.Fatalf("busy time %v too small (3 ops x 5ms latency)", s.BusyTime)
	}
}

func TestDiskActuallySleeps(t *testing.T) {
	d := NewDisk(DiskSpec{BandwidthBps: 1 << 30, Latency: 20 * time.Millisecond, TimeScale: 1})
	start := time.Now()
	d.Write(1)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("write returned after %v, expected ~20ms sleep", elapsed)
	}
}

func TestDiskSerializesWriters(t *testing.T) {
	// Two concurrent 20ms ops on one disk must take ~40ms wall time.
	d := NewDisk(DiskSpec{Latency: 20 * time.Millisecond, TimeScale: 1})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); d.Write(0) }()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("concurrent ops overlapped: %v", elapsed)
	}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(fastSpec())
	if _, err := s.Put("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("Get = %q", got)
	}
}

func TestStoreGetMissing(t *testing.T) {
	s := NewStore(fastSpec())
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestStoreCopiesData(t *testing.T) {
	s := NewStore(fastSpec())
	data := []byte("abc")
	s.Put("k", data)
	data[0] = 'z'
	got, _, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("Put did not copy its input")
	}
	got[0] = 'q'
	got2, _, _ := s.Get("k")
	if string(got2) != "abc" {
		t.Fatal("Get did not copy its output")
	}
}

func TestStoreDownBehaviour(t *testing.T) {
	s := NewStore(fastSpec())
	s.Put("k", []byte("v"))
	s.SetDown(true)
	if _, err := s.Put("x", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put while down: %v", err)
	}
	if _, _, err := s.Get("k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get while down: %v", err)
	}
	if s.Has("k") {
		t.Fatal("Has while down must be false")
	}
	s.SetDown(false)
	if !s.Has("k") {
		t.Fatal("data lost across downtime")
	}
}

func TestStoreDeleteIdempotent(t *testing.T) {
	s := NewStore(fastSpec())
	s.Put("k", []byte("v"))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal("second delete errored")
	}
	if s.Has("k") {
		t.Fatal("key survived delete")
	}
}

func TestStoreKeysPrefix(t *testing.T) {
	s := NewStore(fastSpec())
	s.Put("a/1", nil)
	s.Put("a/2", nil)
	s.Put("b/1", nil)
	keys := s.Keys("a/")
	if len(keys) != 2 || keys[0] != "a/1" || keys[1] != "a/2" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestStoreSize(t *testing.T) {
	s := NewStore(fastSpec())
	s.Put("a", make([]byte, 100))
	s.Put("b", make([]byte, 50))
	if s.Size() != 150 {
		t.Fatalf("Size = %d", s.Size())
	}
	s.Put("a", make([]byte, 10)) // overwrite shrinks
	if s.Size() != 60 {
		t.Fatalf("Size after overwrite = %d", s.Size())
	}
}

func TestCatalogCompletion(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h1", "h2", "h3"})
	if _, ok := c.MostRecentComplete(); ok {
		t.Fatal("fresh catalog reports a complete epoch")
	}
	_, done, err := c.SaveState(1, "h1", []byte("s1"))
	if err != nil || done {
		t.Fatalf("first save: done=%v err=%v", done, err)
	}
	c.SaveState(1, "h2", []byte("s2"))
	_, done, _ = c.SaveState(1, "h3", []byte("s3"))
	if !done {
		t.Fatal("third save should complete the epoch")
	}
	e, ok := c.MostRecentComplete()
	if !ok || e != 1 {
		t.Fatalf("MRC = %d,%v", e, ok)
	}
}

func TestCatalogIncompleteEpochIgnored(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h1", "h2"})
	c.SaveState(1, "h1", nil)
	c.SaveState(1, "h2", nil)
	c.SaveState(2, "h1", nil) // epoch 2 never completes (failure mid-ckpt)
	e, ok := c.MostRecentComplete()
	if !ok || e != 1 {
		t.Fatalf("MRC = %d,%v; want 1", e, ok)
	}
}

func TestCatalogOutOfOrderCompletion(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h1", "h2"})
	c.SaveState(2, "h1", nil)
	c.SaveState(2, "h2", nil) // epoch 2 completes first
	c.SaveState(1, "h1", nil)
	c.SaveState(1, "h2", nil) // epoch 1 completes late
	e, ok := c.MostRecentComplete()
	if !ok || e != 2 {
		t.Fatalf("MRC = %d,%v; want 2", e, ok)
	}
}

func TestCatalogUnknownHAU(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h1"})
	if _, _, err := c.SaveState(1, "intruder", nil); err == nil {
		t.Fatal("unknown HAU accepted")
	}
}

func TestCatalogLoadRoundTrip(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h1"})
	c.SaveState(4, "h1", []byte("state-bytes"))
	got, _, err := c.LoadState(4, "h1")
	if err != nil || string(got) != "state-bytes" {
		t.Fatalf("LoadState = %q, %v", got, err)
	}
}

func TestCatalogGC(t *testing.T) {
	st := NewStore(fastSpec())
	c := NewCatalog(st, []string{"h1"})
	for e := uint64(1); e <= 3; e++ {
		c.SaveState(e, "h1", []byte{byte(e)})
	}
	c.GC(3)
	if _, _, err := c.LoadState(1, "h1"); err == nil {
		t.Fatal("epoch 1 survived GC")
	}
	if _, _, err := c.LoadState(3, "h1"); err != nil {
		t.Fatalf("epoch 3 collected: %v", err)
	}
	e, ok := c.MostRecentComplete()
	if !ok || e != 3 {
		t.Fatalf("MRC after GC = %d,%v", e, ok)
	}
}

func TestCatalogLatestEpochFor(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h1", "h2"})
	if _, ok := c.LatestEpochFor("h1"); ok {
		t.Fatal("fresh catalog has an epoch for h1")
	}
	c.SaveState(3, "h1", nil)
	c.SaveState(5, "h1", nil)
	c.SaveState(4, "h2", nil)
	if e, ok := c.LatestEpochFor("h1"); !ok || e != 5 {
		t.Fatalf("LatestEpochFor(h1) = %d,%v", e, ok)
	}
	if e, ok := c.LatestEpochFor("h2"); !ok || e != 4 {
		t.Fatalf("LatestEpochFor(h2) = %d,%v", e, ok)
	}
}

func TestCatalogEpochProgress(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h1", "h2", "h3"})
	c.SaveState(1, "h1", nil)
	saved, total := c.EpochProgress(1)
	if saved != 1 || total != 3 {
		t.Fatalf("progress = %d/%d", saved, total)
	}
}

func TestQuickStoreRoundTrip(t *testing.T) {
	s := NewStore(fastSpec())
	f := func(key string, val []byte) bool {
		if key == "" {
			key = "k"
		}
		if _, err := s.Put(key, val); err != nil {
			return false
		}
		got, _, err := s.Get(key)
		if err != nil || len(got) != len(val) {
			return false
		}
		for i := range val {
			if got[i] != val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCatalogMRCMonotone(t *testing.T) {
	// Completing epochs in any order never decreases MostRecentComplete.
	f := func(perm []byte) bool {
		if len(perm) == 0 {
			return true
		}
		c := NewCatalog(NewStore(fastSpec()), []string{"h"})
		best := uint64(0)
		for _, p := range perm {
			e := uint64(p%16) + 1
			c.SaveState(e, "h", nil)
			if e > best {
				best = e
			}
			got, ok := c.MostRecentComplete()
			if !ok || got != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
