package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/core"
	"meteorshower/internal/metrics"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
)

// AblationRow is one measurement of a design-choice ablation.
type AblationRow struct {
	Name   string
	Value  string
	Metric string
	Result float64
}

// RunAblationBufferSize sweeps the baseline's input-preservation memory cap
// (the paper: "a larger buffer reduces the frequency of disk I/O, but does
// not reduce the amount of data written ... further enlarging buffers shows
// little performance improvement").
func RunAblationBufferSize(p Params, kind AppKind) ([]AblationRow, error) {
	p = p.withDefaults()
	var rows []AblationRow
	for _, capKB := range []int64{10, 50, 200} {
		cell, err := runWithMemCap(p, kind, capKB<<10)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:   "preserve-buffer",
			Value:  fmt.Sprintf("%dKB", capKB),
			Metric: "tuples/ms",
			Result: cell.TuplesPerMS,
		})
	}
	return rows, nil
}

func runWithMemCap(p Params, kind AppKind, memCap int64) (Cell, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := metrics.NewCollector()
	ref := &apps.SinkRef{}
	spec := BuildApp(kind, p, col, ref)
	sys, err := core.NewSystem(core.Options{
		App:              spec,
		Scheme:           spe.Baseline,
		Nodes:            p.Nodes,
		CheckpointPeriod: p.Window / 3,
		LocalDisk:        p.LocalDisk,
		SharedDisk:       p.SharedDisk,
		TickEvery:        time.Millisecond,
		PreserveMemCap:   memCap,
		SourceFlush:      2 << 10,
		Seed:             p.Seed,
	})
	if err != nil {
		return Cell{}, err
	}
	if err := sys.Start(ctx); err != nil {
		return Cell{}, err
	}
	defer sys.Stop()
	sleepCtx(ctx, p.Warmup)
	base := sys.Cluster().ProcessedTotal()
	start := time.Now()
	sleepCtx(ctx, p.Window)
	n := sys.Cluster().ProcessedTotal() - base
	return Cell{TuplesPerMS: float64(n) / float64(time.Since(start).Milliseconds())}, nil
}

// RunAblationAsync isolates parallel-asynchronous checkpointing: the same
// app checkpoints once synchronously (MS-src) and once asynchronously
// (MS-src+ap); the metric is the peak instantaneous latency during the
// checkpoint (Fig. 15's headline).
func RunAblationAsync(p Params, kind AppKind) ([]AblationRow, error) {
	p = p.withDefaults()
	var rows []AblationRow
	for _, v := range []Variant{VarMSSrc, VarMSSrcAP} {
		series, err := runFig15One(p, kind, v)
		if err != nil {
			return nil, err
		}
		var peak time.Duration
		for _, b := range series.Buckets {
			if b.MeanLat > peak {
				peak = b.MeanLat
			}
		}
		rows = append(rows, AblationRow{
			Name:   "async-checkpoint",
			Value:  v.String(),
			Metric: "peak instantaneous latency (ms)",
			Result: float64(peak.Microseconds()) / 1000,
		})
	}
	return rows, nil
}

// RunAblationAware isolates application-aware timing: checkpointed bytes of
// a randomly-timed checkpoint (MS-src+ap) vs a minimum-timed one (aa) vs
// the Oracle.
func RunAblationAware(p Params, kind AppKind) ([]AblationRow, error) {
	p = p.withDefaults()
	var rows []AblationRow
	for _, v := range []Variant{VarMSSrcAP, VarMSSrcAPAA, VarOracle} {
		row, err := runCheckpointOnce(p, kind, v, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:   "aware-timing",
			Value:  v.String(),
			Metric: "checkpointed state bytes",
			Result: float64(row.StateBytes),
		})
	}
	return rows, nil
}

// RunAblationGroupCommit sweeps the source log's group-commit threshold:
// strict write-before-send per tuple vs batched stable writes.
func RunAblationGroupCommit(p Params, kind AppKind) ([]AblationRow, error) {
	p = p.withDefaults()
	var rows []AblationRow
	// 1B means "flush on every append" (strict write-before-send); 0 would
	// be replaced by the system default.
	for _, flush := range []int64{1, 512, 4096, 65536} {
		cell, err := runWithSourceFlush(p, kind, flush)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%dB", flush)
		if flush == 1 {
			label = "per-tuple"
		}
		rows = append(rows, AblationRow{
			Name:   "source-group-commit",
			Value:  label,
			Metric: "tuples/ms",
			Result: cell.TuplesPerMS,
		})
	}
	return rows, nil
}

func runWithSourceFlush(p Params, kind AppKind, flush int64) (Cell, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := metrics.NewCollector()
	ref := &apps.SinkRef{}
	spec := BuildApp(kind, p, col, ref)
	sys, err := core.NewSystem(core.Options{
		App:         spec,
		Scheme:      spe.MSSrcAP,
		Nodes:       p.Nodes,
		LocalDisk:   p.LocalDisk,
		SharedDisk:  p.SharedDisk,
		TickEvery:   time.Millisecond,
		SourceFlush: flush,
		Seed:        p.Seed,
	})
	if err != nil {
		return Cell{}, err
	}
	if err := sys.Start(ctx); err != nil {
		return Cell{}, err
	}
	defer sys.Stop()
	sleepCtx(ctx, p.Warmup)
	base := sys.Cluster().ProcessedTotal()
	start := time.Now()
	sleepCtx(ctx, p.Window)
	n := sys.Cluster().ProcessedTotal() - base
	return Cell{TuplesPerMS: float64(n) / float64(time.Since(start).Milliseconds())}, nil
}

// RunAblationDelta compares checkpointed bytes and recovery cost with and
// without delta-checkpointing (paper §V: delta-checkpointing "could be
// applied jointly" with Meteor Shower). BCP's slowly-changing predictor
// maps benefit; TMI's fully-turned-over pools do not.
func RunAblationDelta(p Params, kind AppKind) ([]AblationRow, error) {
	p = p.withDefaults()
	var rows []AblationRow
	for _, useDelta := range []bool{false, true} {
		bytes, recovery, err := runDeltaOnce(p, kind, useDelta)
		if err != nil {
			return nil, err
		}
		label := "full"
		if useDelta {
			label = "delta"
		}
		rows = append(rows,
			AblationRow{Name: "delta-checkpoint", Value: label, Metric: "2nd-epoch bytes", Result: float64(bytes)},
			AblationRow{Name: "delta-checkpoint", Value: label + "-recovery", Metric: "recovery ms", Result: recovery.Seconds() * 1000},
		)
	}
	return rows, nil
}

func runDeltaOnce(p Params, kind AppKind, useDelta bool) (int64, time.Duration, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := metrics.NewCollector()
	ref := &apps.SinkRef{}
	spec := BuildApp(kind, p, col, ref)
	sys, err := core.NewSystem(core.Options{
		App:             spec,
		Scheme:          spe.MSSrcAP,
		Nodes:           p.Nodes,
		LocalDisk:       p.LocalDisk,
		SharedDisk:      p.SharedDisk,
		TickEvery:       time.Millisecond,
		SourceFlush:     64 << 10,
		Seed:            p.Seed,
		DeltaCheckpoint: useDelta,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := sys.Start(ctx); err != nil {
		return 0, 0, err
	}
	defer sys.Stop()
	sleepCtx(ctx, p.Warmup)
	// Two closely spaced epochs: the second is where deltas win.
	ep1 := sys.TriggerCheckpoint()
	if err := sys.WaitForEpoch(ep1, 30*time.Second); err != nil {
		return 0, 0, err
	}
	sleepCtx(ctx, p.Window/8)
	ep2 := sys.TriggerCheckpoint()
	if err := sys.WaitForEpoch(ep2, 30*time.Second); err != nil {
		return 0, 0, err
	}
	st, ok := sys.Controller().Stat(ep2)
	if !ok {
		return 0, 0, fmt.Errorf("bench: epoch %d stats missing", ep2)
	}
	var bytes int64
	for _, b := range st.Breakdown {
		bytes += b.StateBytes
	}
	sys.KillAll()
	stats, err := sys.RecoverAll(ctx)
	if err != nil {
		return 0, 0, err
	}
	return bytes, stats.Total(), nil
}

// RunAblationScatter measures distributed checkpointing (paper §V, after
// SGuard): writing one large state blob to a scatter store of increasing
// width.
func RunAblationScatter(p Params, stateBytes int64) []AblationRow {
	p = p.withDefaults()
	var rows []AblationRow
	blob := make([]byte, stateBytes)
	for _, width := range []int{1, 2, 4, 8} {
		sc := storage.NewScatter(width, p.SharedDisk)
		start := time.Now()
		if _, err := sc.Put("state", blob); err != nil {
			continue
		}
		rows = append(rows, AblationRow{
			Name:   "scatter-checkpoint",
			Value:  fmt.Sprintf("%d-wide", width),
			Metric: "write ms",
			Result: float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	return rows
}

// FprintAblations prints ablation rows.
func FprintAblations(w io.Writer, rows []AblationRow) {
	var last string
	for _, r := range rows {
		if r.Name != last {
			fmt.Fprintf(w, "ablation: %s (%s)\n", r.Name, r.Metric)
			last = r.Name
		}
		fmt.Fprintf(w, "  %-14s %12.2f\n", r.Value, r.Result)
	}
}
