package tuple

import (
	"testing"
	"time"
)

func TestNewStampsTime(t *testing.T) {
	before := time.Now().UnixNano()
	tp := New(7, "S0", "k", []byte("payload"))
	after := time.Now().UnixNano()
	if tp.Ts < before || tp.Ts > after {
		t.Fatalf("Ts=%d not in [%d,%d]", tp.Ts, before, after)
	}
	if tp.ID != 7 || tp.Src != "S0" || tp.Key != "k" || string(tp.Data) != "payload" {
		t.Fatalf("fields not preserved: %+v", tp)
	}
	if tp.IsToken() {
		t.Fatal("data tuple must not be a token")
	}
}

func TestNewToken(t *testing.T) {
	tp := NewToken(Token{Epoch: 3, Kind: OneHop, From: "H2"})
	if !tp.IsToken() {
		t.Fatal("expected token tuple")
	}
	if tp.Tok.Epoch != 3 || tp.Tok.Kind != OneHop || tp.Tok.From != "H2" {
		t.Fatalf("token fields: %+v", tp.Tok)
	}
}

func TestIsTokenNil(t *testing.T) {
	var tp *Tuple
	if tp.IsToken() {
		t.Fatal("nil tuple must not be a token")
	}
}

func TestSizeNil(t *testing.T) {
	var tp *Tuple
	if tp.Size() != 0 {
		t.Fatal("nil tuple size must be 0")
	}
}

func TestSizeGrowsWithPayload(t *testing.T) {
	small := New(1, "S", "k", make([]byte, 10))
	big := New(1, "S", "k", make([]byte, 1000))
	if big.Size()-small.Size() != 990 {
		t.Fatalf("payload delta not reflected: %d vs %d", small.Size(), big.Size())
	}
}

func TestSizeIncludesToken(t *testing.T) {
	plain := New(1, "S", "k", nil)
	withTok := New(1, "S", "k", nil)
	withTok.Tok = &Token{From: "H1"}
	if withTok.Size() <= plain.Size() {
		t.Fatal("token must add to size")
	}
}

func TestCloneDeep(t *testing.T) {
	orig := New(1, "S", "k", []byte{1, 2, 3})
	orig.Tok = &Token{Epoch: 1, From: "H"}
	c := orig.Clone()
	c.Data[0] = 99
	c.Tok.Epoch = 42
	if orig.Data[0] != 1 {
		t.Fatal("payload not deep-copied")
	}
	if orig.Tok.Epoch != 1 {
		t.Fatal("token not deep-copied")
	}
}

func TestCloneNil(t *testing.T) {
	var tp *Tuple
	if tp.Clone() != nil {
		t.Fatal("clone of nil must be nil")
	}
}

func TestAge(t *testing.T) {
	tp := &Tuple{Ts: 1000}
	if got := tp.Age(4000); got != 3000 {
		t.Fatalf("Age = %v, want 3000ns", got)
	}
}

func TestTokenKindString(t *testing.T) {
	cases := map[TokenKind]string{
		Cascading:    "cascading",
		OneHop:       "one-hop",
		TokenKind(9): "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
