// Skew-aware slot weighting: observed per-slot load (tuples routed by the
// Router, state bytes from drained slot tables) drives slot placement so a
// rescale equalizes *load* across replicas rather than slot counts, and a
// rebalance shifts only hot slots between the existing replicas. With a
// Zipf-skewed key distribution a count-balanced 4-way split leaves one
// replica owning most of the traffic; the weighted paths here recover
// near-linear scaling from the same 256-slot ring.

package partition

import "sort"

// Weights carries one non-negative load figure per slot — tuples routed,
// state bytes, or any blend the caller chooses. Nil or all-equal weights
// mean "no skew information": the weighted paths fall back to the
// count-balanced behaviour, so callers never special-case the unweighted
// case.
type Weights []int64

// Total returns the summed load across all slots.
func (w Weights) Total() int64 {
	var t int64
	for _, v := range w {
		t += v
	}
	return t
}

// Sub returns w minus prev, clamped at zero per slot — the load observed
// since prev was snapshotted. A prev of different length (the router was
// replaced) reads as zero.
func (w Weights) Sub(prev Weights) Weights {
	out := make(Weights, len(w))
	for s, v := range w {
		if s < len(prev) && prev[s] <= v {
			v -= prev[s]
		}
		out[s] = v
	}
	return out
}

// uniform reports whether every slot carries the same load (vacuously true
// when empty), in which case count-balancing IS load-balancing.
func (w Weights) uniform() bool {
	for _, v := range w {
		if v != w[0] {
			return false
		}
	}
	return true
}

// LoadOf returns the per-replica load sums under w. Nil weights count
// slots (every slot weighs one).
func (a *Assignment) LoadOf(w Weights) []int64 {
	loads := make([]int64, a.replicas)
	for s, o := range a.owner {
		switch {
		case w == nil:
			loads[o]++
		case s < len(w) && w[s] > 0:
			loads[o] += w[s]
		}
	}
	return loads
}

// Shares normalizes per-replica loads into fractions of the total. A zero
// total reads as perfectly even.
func Shares(loads []int64) []float64 {
	out := make([]float64, len(loads))
	var total int64
	for _, l := range loads {
		total += l
	}
	if total <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(loads))
		}
		return out
	}
	for i, l := range loads {
		out[i] = float64(l) / float64(total)
	}
	return out
}

// ImbalanceRatio returns max(loads)/mean(loads): 1.0 is perfectly
// balanced, len(loads) is the worst case (all load on one replica). A
// zero total reads as balanced.
func ImbalanceRatio(loads []int64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var total, max int64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total <= 0 {
		return 1
	}
	return float64(max) * float64(len(loads)) / float64(total)
}

// RescaleWeighted rebalances the table to n replicas equalizing *load*
// rather than slot counts: surviving owners keep their slots while they
// still fit under the balanced load target (a slot heavier than the whole
// target stays only on an otherwise-empty owner), and displaced slots are
// handed out heaviest-first to the least-loaded replica (LPT scheduling).
// Zero-weight slots never leave a surviving owner — their placement
// doesn't matter, so they keep the minimal-move property — and uniform
// (or missing) weights delegate to the count-balanced Rescale, so the two
// agree exactly when there is no skew to exploit. Returns the moved
// slots, ascending.
func (a *Assignment) RescaleWeighted(n int, w Weights) []int {
	if n <= 0 {
		n = 1
	}
	if len(w) != len(a.owner) || w.uniform() {
		return a.Rescale(n)
	}
	target := float64(w.Total()) / float64(n)
	load := make([]int64, n)
	var moved []int
	for s, o := range a.owner {
		if o < n && (w[s] <= 0 || load[o] == 0 || float64(load[o]+w[s]) <= target) {
			if w[s] > 0 {
				load[o] += w[s]
			}
		} else {
			moved = append(moved, s)
		}
	}
	// Heaviest-first placement: big slots land while the spread across
	// replicas is still wide, so no replica ends up one hot slot over.
	order := append([]int(nil), moved...)
	sort.Slice(order, func(i, j int) bool {
		if w[order[i]] != w[order[j]] {
			return w[order[i]] > w[order[j]]
		}
		return order[i] < order[j]
	})
	for _, s := range order {
		r := 0
		for j := 1; j < n; j++ {
			if load[j] < load[r] {
				r = j
			}
		}
		a.owner[s] = r
		if w[s] > 0 {
			load[r] += w[s]
		}
	}
	a.replicas = n
	return moved
}

// Rebalance shifts hot slots between the EXISTING replicas until no move
// narrows the spread: each round the heaviest-loaded replica with a
// movable slot donates its heaviest slot that still improves the pair to
// the lightest-loaded replica. Zero-weight slots never move, the replica
// count never changes, and every accepted move strictly shrinks the
// donor/recipient gap, so the loop terminates. Returns the moved slots,
// ascending and deduplicated (a slot may hop twice); empty means the
// table is as balanced as slot granularity allows.
func (a *Assignment) Rebalance(w Weights) []int {
	n := a.replicas
	if n <= 1 || len(w) != len(a.owner) || w.Total() <= 0 {
		return nil
	}
	load := a.LoadOf(w)
	byLoad := make([]int, n)
	var moved []int
	for iter := 0; iter < len(a.owner); iter++ {
		for i := range byLoad {
			byLoad[i] = i
		}
		sort.Slice(byLoad, func(i, j int) bool { return load[byLoad[i]] > load[byLoad[j]] })
		recip := byLoad[n-1]
		best, from := -1, -1
		for _, donor := range byLoad {
			if donor == recip {
				continue
			}
			gap := load[donor] - load[recip]
			if gap <= 0 {
				break // sorted: no later donor is heavier
			}
			for s, o := range a.owner {
				if o != donor || w[s] <= 0 || w[s] >= gap {
					continue // moving s would not strictly improve the pair
				}
				if best < 0 || w[s] > w[best] {
					best, from = s, donor
				}
			}
			if best >= 0 {
				break // prefer the heaviest donor that can improve
			}
		}
		if best < 0 {
			break
		}
		a.owner[best] = recip
		load[from] -= w[best]
		load[recip] += w[best]
		moved = append(moved, best)
	}
	sort.Ints(moved)
	uniq := moved[:0]
	for i, s := range moved {
		if i == 0 || s != moved[i-1] {
			uniq = append(uniq, s)
		}
	}
	return uniq
}

// SlotBytes returns the per-slot payload sizes of an encoded slot table —
// the state-byte weight of each slot. Non-table buffers (legacy
// residue-only snapshots) weigh nothing.
func SlotBytes(buf []byte) Weights {
	if !IsTable(buf) {
		return nil
	}
	_, slots, err := ParseTable(buf)
	if err != nil {
		return nil
	}
	w := make(Weights, len(slots))
	for s, p := range slots {
		w[s] = int64(len(p))
	}
	return w
}
