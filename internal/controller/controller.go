// Package controller implements Meteor Shower's central controller (paper
// §III): it schedules checkpoint epochs, broadcasts token commands,
// profiles application state size, runs the alert-mode state machine for
// application-aware checkpointing, detects failures by pinging, and
// garbage-collects completed epochs.
//
// The controller "runs on the same node as the shared storage system"; here
// it is a goroutine colocated with the simulated shared store.
package controller

import (
	"context"
	"sync"
	"time"

	"meteorshower/internal/buffer"
	"meteorshower/internal/spe"
	"meteorshower/internal/statesize"
	"meteorshower/internal/storage"
)

// Config assembles a controller.
type Config struct {
	Scheme  spe.Scheme
	HAUs    map[string]*spe.HAU
	Sources []string // ids of source HAUs (token origin under MS-src)
	Catalog *storage.Catalog
	// SourceLogs are pruned when an epoch completes.
	SourceLogs map[string]*buffer.SourceLog

	// Period is the checkpoint period T. Under MS-src/MS-src+ap a
	// checkpoint fires every Period; under MS-src+ap+aa the period bounds
	// the application-aware window (§III-C3: "in the rare case where the
	// total state size is never below smax during a period, a checkpoint
	// will be performed anyway at the end of the period").
	Period time.Duration
	// Dynamic lists the dynamic HAUs (profiling output). If nil, the
	// controller discovers them during Profile.
	Dynamic []string
	// Profile from a prior profiling phase (MS-src+ap+aa). Zero value
	// means "not profiled yet".
	Profile statesize.Profile

	// RetainEpochs keeps the newest N complete checkpoints — and the
	// preserved source tuples needed to replay from the oldest of them —
	// instead of garbage-collecting everything below the MRC. N <= 1
	// retains only the MRC. Retention is what lets whole-application
	// recovery fall back to an older epoch when the newest one's blobs
	// turn out to be lost or corrupted.
	RetainEpochs int

	// Rebalance, when set, is invoked every RebalanceEvery by the Run
	// loop (the cluster wires it to a placement.Rebalancer.Step). It is
	// skipped while checkpoints are paused, while a failure incident is
	// open, and while a previous invocation is still running.
	Rebalance func() (int, error)
	// RebalanceEvery enables the rebalancer tick. Zero disables it.
	RebalanceEvery time.Duration

	// Autoscale, when set, is invoked every AutoscaleEvery (the cluster
	// wires it to its hot/cold split-merge detector). Same skip rules as
	// Rebalance: not while paused, failed, or a previous step is running.
	Autoscale func() (int, error)
	// AutoscaleEvery enables the autoscaler tick. Zero disables it.
	AutoscaleEvery time.Duration

	// Elastic, when set, is invoked every ElasticEvery (the cluster wires
	// it to the elasticity engine's Step: sample node utilization, maybe
	// add or drain a node). Same skip rules as Rebalance: not while
	// paused, failed, or a previous step is running.
	Elastic func() (int, error)
	// ElasticEvery enables the elasticity tick. Zero disables it.
	ElasticEvery time.Duration

	// HA, when set, is invoked every HAEvery (the cluster wires it to the
	// replica planner's step: protect the hottest HAUs with active
	// standbys, demote cold ones). Same skip rules as Rebalance: not while
	// paused, failed, or a previous step is running.
	HA func() (int, error)
	// HAEvery enables the replication-policy tick. Zero disables it.
	HAEvery time.Duration

	// Arbiter, when set, is invoked every ArbiterEvery (the cluster wires
	// it to the multi-tenant fair-share arbiter's step: compute per-app
	// shares and migrate stranded HAUs onto their app's nodes). Same skip
	// rules as Rebalance: not while paused, failed, or a previous step is
	// running.
	Arbiter func() (int, error)
	// ArbiterEvery enables the fair-share tick. Zero disables it.
	ArbiterEvery time.Duration

	// PingEvery is the failure-detection poll interval.
	PingEvery time.Duration
	// IsAlive reports whether an HAU's node currently responds to pings.
	IsAlive func(hau string) bool
	// OnFailure is invoked (once per incident) when a failure is
	// detected. The cluster layer performs the actual recovery.
	OnFailure func(dead []string)

	Now func() int64
}

// EpochStat aggregates one application checkpoint for reporting (Fig. 14).
type EpochStat struct {
	Epoch     uint64
	Started   int64 // controller clock, ns
	Finished  int64
	Breakdown map[string]spe.CheckpointBreakdown
	Complete  bool
}

// SlowestBreakdown returns the individual checkpoint with the largest
// critical path — the number Fig. 14 reports for the parallel schemes.
func (e *EpochStat) SlowestBreakdown() spe.CheckpointBreakdown {
	var worst spe.CheckpointBreakdown
	for _, b := range e.Breakdown {
		if b.Total() > worst.Total() {
			worst = b
		}
	}
	return worst
}

// WallTime returns trigger-to-last-done duration — the number reported for
// MS-src, where token propagation and individual checkpoints overlap.
func (e *EpochStat) WallTime() time.Duration {
	return time.Duration(e.Finished - e.Started)
}

// Controller coordinates checkpointing and failure detection.
type Controller struct {
	cfg Config

	mu         sync.Mutex
	haus       map[string]*spe.HAU
	epoch      uint64
	epochs     map[uint64]*EpochStat
	alert      bool
	alertEpoch bool // a checkpoint has fired in the current period
	agg        *statesize.Aggregator
	dynamic    map[string]bool
	profiling  bool
	profAgg    *statesize.Aggregator
	lastPrune  uint64
	failed     bool
	paused     int  // PauseCheckpoints nesting depth
	rebalBusy  bool // a Rebalance invocation is in flight
	scaleBusy  bool // an Autoscale invocation is in flight
	elasBusy   bool // an Elastic invocation is in flight
	haBusy     bool // an HA invocation is in flight
	arbBusy    bool // an Arbiter invocation is in flight

	tpCh chan tpEvent
	done chan struct{}
}

type tpEvent struct {
	hau    string
	at     int64
	size   int64
	icr    float64
	halved bool
}

// New returns a controller; call Run to start it.
func New(cfg Config) *Controller {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	if cfg.PingEvery <= 0 {
		cfg.PingEvery = 50 * time.Millisecond
	}
	c := &Controller{
		cfg:     cfg,
		haus:    make(map[string]*spe.HAU),
		epochs:  make(map[uint64]*EpochStat),
		agg:     statesize.NewAggregator(),
		dynamic: make(map[string]bool),
		tpCh:    make(chan tpEvent, 1024),
		done:    make(chan struct{}),
	}
	for _, id := range cfg.Dynamic {
		c.dynamic[id] = true
	}
	for id, h := range cfg.HAUs {
		c.haus[id] = h
	}
	return c
}

// SetHAUs installs (or replaces after recovery) the live HAU instances the
// controller commands and pings. The map is copied.
func (c *Controller) SetHAUs(haus map[string]*spe.HAU) {
	c.mu.Lock()
	c.haus = make(map[string]*spe.HAU, len(haus))
	for id, h := range haus {
		c.haus[id] = h
	}
	c.mu.Unlock()
}

// hauSnapshot returns a copy of the live HAU map.
func (c *Controller) hauSnapshot() map[string]*spe.HAU {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*spe.HAU, len(c.haus))
	for id, h := range c.haus {
		out[id] = h
	}
	return out
}

// Epoch returns the most recently triggered epoch number.
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// EpochStats returns a snapshot of all epoch statistics.
func (c *Controller) EpochStats() []EpochStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EpochStat, 0, len(c.epochs))
	for _, e := range c.epochs {
		cp := *e
		cp.Breakdown = make(map[string]spe.CheckpointBreakdown, len(e.Breakdown))
		for k, v := range e.Breakdown {
			cp.Breakdown[k] = v
		}
		out = append(out, cp)
	}
	return out
}

// Stat returns the stats for one epoch.
func (c *Controller) Stat(epoch uint64) (EpochStat, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.epochs[epoch]
	if !ok {
		return EpochStat{}, false
	}
	// Deep-copy the breakdown map: the shallow copy would alias the live
	// map CheckpointDone keeps mutating, racing with the caller's reads.
	cp := *e
	cp.Breakdown = make(map[string]spe.CheckpointBreakdown, len(e.Breakdown))
	for k, v := range e.Breakdown {
		cp.Breakdown[k] = v
	}
	return cp, ok
}

// InAlertMode reports the alert-mode flag (tests / diagnostics).
func (c *Controller) InAlertMode() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alert
}

// PauseCheckpoints suspends scheme-driven checkpoint triggers — the
// periodic tick and alert-mode firing — until the matching
// ResumeCheckpoints. Calls nest. Manual TriggerCheckpoint calls still
// work: the live-migration engine pauses the scheduler, then drives one
// explicit epoch to quiesce any in-flight alignment before it drains, so
// migration tokens never interleave with checkpoint tokens.
func (c *Controller) PauseCheckpoints() {
	c.mu.Lock()
	c.paused++
	c.mu.Unlock()
}

// ResumeCheckpoints re-enables scheme-driven checkpoint triggers.
func (c *Controller) ResumeCheckpoints() {
	c.mu.Lock()
	if c.paused > 0 {
		c.paused--
	}
	c.mu.Unlock()
}

// CheckpointsPaused reports whether scheme-driven triggers are suspended.
func (c *Controller) CheckpointsPaused() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.paused > 0
}

// TriggerCheckpoint starts the next checkpoint epoch immediately and
// returns its number. MS-src sends the command to source HAUs, which
// checkpoint and trickle cascading tokens; MS-src+ap(+aa) broadcasts 1-hop
// token commands to every HAU (§III-B, Fig. 7: "the controller sends a
// token command to every HAU simultaneously").
func (c *Controller) TriggerCheckpoint() uint64 {
	c.mu.Lock()
	c.epoch++
	ep := c.epoch
	c.epochs[ep] = &EpochStat{
		Epoch:     ep,
		Started:   c.cfg.Now(),
		Breakdown: make(map[string]spe.CheckpointBreakdown),
	}
	c.alertEpoch = true
	if c.alert {
		c.alert = false // alert mode is dismissed once a checkpoint fires
		c.broadcastLocked(spe.Command{Kind: spe.CmdAlertOff})
	}
	c.mu.Unlock()

	cmd := spe.Command{Kind: spe.CmdCheckpoint, Epoch: ep}
	if c.cfg.Scheme.OneHopTokens() {
		c.broadcast(cmd)
	} else {
		haus := c.hauSnapshot()
		for _, id := range c.cfg.Sources {
			if h := haus[id]; h != nil {
				h.Command(cmd)
			}
		}
	}
	return ep
}

func (c *Controller) broadcast(cmd spe.Command) {
	for _, h := range c.hauSnapshot() {
		if h != nil {
			h.Command(cmd)
		}
	}
}

// broadcastLocked sends to dynamic HAUs only; callers hold c.mu.
func (c *Controller) broadcastLocked(cmd spe.Command) {
	for id := range c.dynamic {
		if h := c.haus[id]; h != nil {
			h.Command(cmd)
		}
	}
}

// CheckpointDone implements spe.Listener.
func (c *Controller) CheckpointDone(hau string, epoch uint64, b spe.CheckpointBreakdown) {
	c.mu.Lock()
	st := c.epochs[epoch]
	if st == nil {
		st = &EpochStat{Epoch: epoch, Breakdown: make(map[string]spe.CheckpointBreakdown)}
		c.epochs[epoch] = st
	}
	st.Breakdown[hau] = b
	st.Finished = c.cfg.Now()
	complete := len(st.Breakdown) == len(c.haus)
	st.Complete = complete
	c.mu.Unlock()

	if complete {
		c.onEpochComplete(epoch)
	}
}

func (c *Controller) onEpochComplete(epoch uint64) {
	// Preserved tuples from before the retention horizon can never be
	// replayed again: prune source logs and GC older checkpoints. The
	// horizon is the oldest retained epoch, not the MRC, so a fallback
	// recovery from any retained epoch still finds its replay tuples.
	if _, ok := c.cfg.Catalog.MostRecentComplete(); ok {
		keep := c.retentionHorizon()
		c.mu.Lock()
		doPrune := keep > c.lastPrune
		if doPrune {
			c.lastPrune = keep
		}
		c.mu.Unlock()
		if doPrune {
			for _, l := range c.cfg.SourceLogs {
				l.Prune(keep)
			}
			c.cfg.Catalog.GC(keep)
		}
	}
}

// retentionHorizon returns the oldest epoch that must survive GC: the
// RetainEpochs-th newest complete epoch (the MRC when retention is off).
func (c *Controller) retentionHorizon() uint64 {
	eps := c.cfg.Catalog.CompleteEpochs() // newest-first
	if len(eps) == 0 {
		return 0
	}
	n := c.cfg.RetainEpochs
	if n < 1 {
		n = 1
	}
	if n > len(eps) {
		n = len(eps)
	}
	return eps[n-1]
}

// TurningPoint implements spe.Listener: HAU state-size reports flow here.
func (c *Controller) TurningPoint(hau string, at int64, size int64, icr float64, halved bool) {
	select {
	case c.tpCh <- tpEvent{hau, at, size, icr, halved}:
	default:
		// Drop under backlog; reports are advisory.
	}
}

// Stopped implements spe.Listener.
func (c *Controller) Stopped(string, error) {}

// Run drives periodic checkpoints, alert mode and failure detection until
// ctx is cancelled.
func (c *Controller) Run(ctx context.Context) {
	defer close(c.done)
	var periodTick, pingTick *time.Ticker
	if c.cfg.Period > 0 {
		periodTick = time.NewTicker(c.cfg.Period)
		defer periodTick.Stop()
	} else {
		periodTick = time.NewTicker(time.Hour)
		defer periodTick.Stop()
	}
	pingTick = time.NewTicker(c.cfg.PingEvery)
	defer pingTick.Stop()
	rebalEvery := c.cfg.RebalanceEvery
	if c.cfg.Rebalance == nil || rebalEvery <= 0 {
		rebalEvery = time.Hour
	}
	rebalTick := time.NewTicker(rebalEvery)
	defer rebalTick.Stop()
	scaleEvery := c.cfg.AutoscaleEvery
	if c.cfg.Autoscale == nil || scaleEvery <= 0 {
		scaleEvery = time.Hour
	}
	scaleTick := time.NewTicker(scaleEvery)
	defer scaleTick.Stop()
	elasEvery := c.cfg.ElasticEvery
	if c.cfg.Elastic == nil || elasEvery <= 0 {
		elasEvery = time.Hour
	}
	elasTick := time.NewTicker(elasEvery)
	defer elasTick.Stop()
	haEvery := c.cfg.HAEvery
	if c.cfg.HA == nil || haEvery <= 0 {
		haEvery = time.Hour
	}
	haTick := time.NewTicker(haEvery)
	defer haTick.Stop()
	arbEvery := c.cfg.ArbiterEvery
	if c.cfg.Arbiter == nil || arbEvery <= 0 {
		arbEvery = time.Hour
	}
	arbTick := time.NewTicker(arbEvery)
	defer arbTick.Stop()

	aa := c.cfg.Scheme.ApplicationAware()
	if aa {
		c.mu.Lock()
		c.alertEpoch = false
		c.mu.Unlock()
		c.maybeEnterAlert() // period start check
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-periodTick.C:
			if c.cfg.Scheme == spe.Baseline {
				continue // baseline HAUs checkpoint on their own timers
			}
			if c.CheckpointsPaused() {
				continue // a live migration is draining
			}
			if aa {
				c.mu.Lock()
				fired := c.alertEpoch
				c.alertEpoch = false
				c.mu.Unlock()
				if !fired {
					// State never dropped below smax this period.
					c.TriggerCheckpoint()
					c.mu.Lock()
					c.alertEpoch = false
					c.mu.Unlock()
				}
				c.maybeEnterAlert()
			} else {
				c.TriggerCheckpoint()
			}
		case ev := <-c.tpCh:
			c.onTurningPoint(ev)
		case <-pingTick.C:
			c.pingNodes()
		case <-rebalTick.C:
			c.maybeRebalance()
		case <-scaleTick.C:
			c.maybeAutoscale()
		case <-elasTick.C:
			c.maybeElastic()
		case <-haTick.C:
			c.maybeHA()
		case <-arbTick.C:
			c.maybeArbiter()
		}
	}
}

// maybeArbiter runs one fair-share arbitration step on its own goroutine
// (executing a planned move blocks for a live migration drain, and failure
// pings must keep flowing meanwhile). Skipped while a failure incident is
// open, while checkpoints are paused, and while a previous step is still
// running.
func (c *Controller) maybeArbiter() {
	c.mu.Lock()
	fn := c.cfg.Arbiter
	skip := fn == nil || c.arbBusy || c.failed || c.paused > 0
	if !skip {
		c.arbBusy = true
	}
	c.mu.Unlock()
	if skip {
		return
	}
	go func() {
		defer func() {
			c.mu.Lock()
			c.arbBusy = false
			c.mu.Unlock()
		}()
		// A failed step (a planned move lost a race with a recovery) is
		// retried from fresh shares on the next tick.
		_, _ = fn()
	}()
}

// maybeHA runs one replication-policy step on its own goroutine (arming a
// standby blocks for a quiesce epoch and a state-clone drain, and failure
// pings must keep flowing meanwhile). Skipped while a failure incident is
// open, while checkpoints are paused, and while a previous step is still
// running.
func (c *Controller) maybeHA() {
	c.mu.Lock()
	fn := c.cfg.HA
	skip := fn == nil || c.haBusy || c.failed || c.paused > 0
	if !skip {
		c.haBusy = true
	}
	c.mu.Unlock()
	if skip {
		return
	}
	go func() {
		defer func() {
			c.mu.Lock()
			c.haBusy = false
			c.mu.Unlock()
		}()
		// A failed step (quiesce raced a failure, placement fell through)
		// is retried from fresh metrics on the next tick.
		_, _ = fn()
	}()
}

// maybeElastic runs one elasticity step on its own goroutine (a drain
// blocks for per-HAU migrations, and failure pings must keep flowing
// meanwhile). Skipped while a failure incident is open, while checkpoints
// are paused, and while a previous step is still running.
func (c *Controller) maybeElastic() {
	c.mu.Lock()
	fn := c.cfg.Elastic
	skip := fn == nil || c.elasBusy || c.failed || c.paused > 0
	if !skip {
		c.elasBusy = true
	}
	c.mu.Unlock()
	if skip {
		return
	}
	go func() {
		defer func() {
			c.mu.Lock()
			c.elasBusy = false
			c.mu.Unlock()
		}()
		// A failed step (drain superseded by a recovery, node died) is
		// retried from fresh utilization samples on the next tick.
		_, _ = fn()
	}()
}

// maybeAutoscale runs one autoscaler step on its own goroutine (a rescale
// blocks for the drain, and failure pings must keep flowing meanwhile).
// Skipped while a failure incident is open, while checkpoints are paused,
// and while a previous step is still running.
func (c *Controller) maybeAutoscale() {
	c.mu.Lock()
	fn := c.cfg.Autoscale
	skip := fn == nil || c.scaleBusy || c.failed || c.paused > 0
	if !skip {
		c.scaleBusy = true
	}
	c.mu.Unlock()
	if skip {
		return
	}
	go func() {
		defer func() {
			c.mu.Lock()
			c.scaleBusy = false
			c.mu.Unlock()
		}()
		// A failed step (node died mid-drain, superseded by a recovery) is
		// retried from fresh size samples on the next tick.
		_, _ = fn()
	}()
}

// maybeRebalance runs one rebalancer step on its own goroutine (a live
// migration blocks for the drain, and failure pings must keep flowing
// meanwhile). Skipped while a failure incident is open, while checkpoints
// are paused, and while a previous step is still running.
func (c *Controller) maybeRebalance() {
	c.mu.Lock()
	fn := c.cfg.Rebalance
	skip := fn == nil || c.rebalBusy || c.failed || c.paused > 0
	if !skip {
		c.rebalBusy = true
	}
	c.mu.Unlock()
	if skip {
		return
	}
	go func() {
		defer func() {
			c.mu.Lock()
			c.rebalBusy = false
			c.mu.Unlock()
		}()
		// A failed step (destination died mid-move, superseded by a
		// recovery) is retried from fresh load numbers on the next tick.
		_, _ = fn()
	}()
}

// Done is closed when Run exits.
func (c *Controller) Done() <-chan struct{} { return c.done }

func (c *Controller) onTurningPoint(ev tpEvent) {
	if !c.cfg.Scheme.ApplicationAware() {
		return
	}
	c.mu.Lock()
	if c.profiling {
		c.profAgg.Report(ev.hau, ev.at, ev.size, ev.icr)
		c.mu.Unlock()
		return
	}
	if !c.dynamic[ev.hau] {
		c.mu.Unlock()
		return
	}
	inAlert := c.alert
	fired := c.alertEpoch
	c.mu.Unlock()

	switch {
	case inAlert:
		// §III-C3: in alert mode HAUs report every turning point with
		// ICR; a positive aggregate ICR means the total size is about to
		// grow — checkpoint now.
		c.mu.Lock()
		c.agg.Report(ev.hau, ev.at, ev.size, ev.icr)
		total := c.agg.TotalICR()
		paused := c.paused > 0
		c.mu.Unlock()
		if total > 0 && !paused {
			c.TriggerCheckpoint()
		}
	case ev.halved && !fired:
		// Passive mode: a dynamic HAU noticed its state halved — query
		// everyone and maybe enter alert mode.
		c.maybeEnterAlert()
	}
}

// maybeEnterAlert queries dynamic HAU sizes and arms alert mode when the
// total is below smax.
func (c *Controller) maybeEnterAlert() {
	c.mu.Lock()
	if c.alert || c.cfg.Profile.Smax == 0 {
		c.mu.Unlock()
		return
	}
	var total int64
	now := c.cfg.Now()
	for id := range c.dynamic {
		if h := c.haus[id]; h != nil {
			sz := h.CachedStateSize()
			total += sz
			c.agg.Report(id, now, sz, 0)
		}
	}
	enter := total < c.cfg.Profile.Smax
	if enter {
		c.alert = true
		c.broadcastLocked(spe.Command{Kind: spe.CmdAlertOn})
	}
	c.mu.Unlock()
}

// SetOnFailure installs (or replaces) the failure callback.
func (c *Controller) SetOnFailure(fn func(dead []string)) {
	c.mu.Lock()
	c.cfg.OnFailure = fn
	c.mu.Unlock()
}

func (c *Controller) pingNodes() {
	c.mu.Lock()
	onFailure := c.cfg.OnFailure
	c.mu.Unlock()
	if c.cfg.IsAlive == nil || onFailure == nil {
		return
	}
	var dead []string
	for id := range c.hauSnapshot() {
		if !c.cfg.IsAlive(id) {
			dead = append(dead, id)
		}
	}
	if len(dead) == 0 {
		return
	}
	c.mu.Lock()
	already := c.failed
	c.failed = true
	c.mu.Unlock()
	if !already {
		onFailure(dead)
	}
}

// ClearFailure re-arms failure detection after a recovery.
func (c *Controller) ClearFailure() {
	c.mu.Lock()
	c.failed = false
	c.mu.Unlock()
}

// FailurePending reports whether an un-cleared failure incident is open:
// pings found dead HAUs and no recovery has re-armed detection since. The
// chaos harness polls this to know the detector's view converged.
func (c *Controller) FailurePending() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// ProfileApplication runs the profiling phase (§III-C2) for dur: every HAU
// reports all turning points; afterwards dynamic HAUs are identified from
// their size series and the alert threshold smax is derived. The resulting
// profile is installed on the controller and returned.
func (c *Controller) ProfileApplication(ctx context.Context, dur time.Duration) statesize.Profile {
	c.mu.Lock()
	c.profiling = true
	c.profAgg = statesize.NewAggregator()
	c.mu.Unlock()
	c.broadcast(spe.Command{Kind: spe.CmdReportAll})

	start := c.cfg.Now()
	timer := time.NewTimer(dur)
	defer timer.Stop()
	for keep := true; keep; {
		select {
		case <-ctx.Done():
			keep = false
		case ev := <-c.tpCh:
			c.onTurningPoint(ev)
		case <-timer.C:
			keep = false
		}
	}
	c.broadcast(spe.Command{Kind: spe.CmdReportNormal})
	end := c.cfg.Now()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.profiling = false
	agg := c.profAgg
	c.profAgg = nil

	// Step 1: find dynamic HAUs — min size below half the average.
	c.dynamic = make(map[string]bool)
	for id := range c.haus {
		pl := perHAUPolyline(agg, id)
		if pl != nil && statesize.IsDynamic(pl.Points()) {
			c.dynamic[id] = true
		}
	}
	// Step 2+3: rebuild the aggregate polyline and derive smax.
	f := agg.AggregatePolyline()
	prof := statesize.BuildProfile(f, start, end, int64(c.cfg.Period))
	c.cfg.Profile = prof
	return prof
}

// Dynamic returns the ids classified as dynamic HAUs.
func (c *Controller) Dynamic() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.dynamic))
	for id := range c.dynamic {
		out = append(out, id)
	}
	return out
}

// SetProfile installs a profile (e.g. replayed from a previous run).
func (c *Controller) SetProfile(p statesize.Profile) {
	c.mu.Lock()
	c.cfg.Profile = p
	c.mu.Unlock()
}

// InstalledProfile returns the active profile.
func (c *Controller) InstalledProfile() statesize.Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Profile
}

func perHAUPolyline(agg *statesize.Aggregator, id string) *statesize.Polyline {
	// The aggregator keeps per-HAU polylines internally; rebuilding via
	// report replay would duplicate state, so expose through a helper.
	return agg.Line(id)
}
