// Package elastic closes the loop from observed per-node utilization to
// the size of the node fleet. It follows the shape of metrics-driven
// scaling managers: a sampler turns raw per-node counters (cumulative CPU
// busy time, input-queue depth, HAU count, state bytes) into per-interval
// utilization, a windowed trigger recommends scale-out or scale-in only
// when N of the last M samples violate a threshold (with per-direction
// cooldown hysteresis so flapping load cannot oscillate the fleet), and a
// provisioner executes recommendations through hooks the cluster supplies:
// scale-out adds a node and lets the placement rebalancer spread HAUs onto
// it; scale-in drains a node via live migration so it is exactly-once.
//
// The package holds no reference to the cluster — everything it touches
// arrives through Hooks — so the trigger is unit-testable in isolation.
package elastic

import "time"

// NodeStat is one node's raw counters at a sampling instant.
type NodeStat struct {
	Node     int
	Alive    bool
	Draining bool
	Retired  bool
	HAUs     int           // incarnations hosted
	CanMove  int           // hosted incarnations that are live-migratable
	Queue    int           // tuples queued on the input edges of hosted HAUs
	State    int64         // cached state bytes of hosted HAUs
	CPUBusy  time.Duration // cumulative busy time charged to the node's CPU gate
}

// Schedulable reports whether the node can receive new HAU placements.
func (s NodeStat) Schedulable() bool { return s.Alive && !s.Draining && !s.Retired }

// AppStat is one application's aggregate counters at a sampling instant —
// the per-tenant view the trigger needs so every app's backlog weighs on
// the scale-out decision, not just the first app to saturate its nodes.
type AppStat struct {
	App     string
	Weight  float64 // fairness weight (tenant.Spec); <= 0 counts as 1
	Queue   int     // tuples queued on the app's input edges
	State   int64   // cached state bytes of the app's HAUs
	CPUBusy time.Duration
	HAUs    int
}

// Sample is one sampling instant across the whole fleet. Apps is optional:
// single-tenant clusters leave it nil and the trigger falls back to the
// node-level signals alone.
type Sample struct {
	At    time.Time
	Nodes []NodeStat
	Apps  []AppStat
}

// Util is one node's derived utilization over the last sampling interval.
type Util struct {
	Node      int
	CPU       float64 // busy fraction over the interval, 0..~1
	Queue     int     // input-queue depth at the sampling instant
	HAUs      int
	Sched     bool // placement-eligible (alive, not draining, not retired)
	Drainable bool // hosts only live-migratable HAUs (or none)
}

// Config tunes the trigger. Zero values disable the corresponding signal;
// a zero Window or Violations falls back to defaults.
type Config struct {
	// Window and Violations form the N-of-M rule: a direction fires only
	// when at least Violations of the last Window samples violated its
	// threshold. No decision is made until Window samples exist.
	Window     int // default 5
	Violations int // default 3, clamped to Window

	// ScaleOutUtil fires scale-out when mean CPU utilization across
	// schedulable nodes exceeds it (0 disables the CPU signal).
	ScaleOutUtil float64
	// ScaleOutQueue fires scale-out when any schedulable node's input-queue
	// depth exceeds it (0 disables the queue signal).
	ScaleOutQueue int
	// ScaleInUtil marks a node as a scale-in candidate when its CPU
	// utilization is below it and its queue is empty enough that draining
	// it cannot lose ground (0 disables scale-in).
	ScaleInUtil float64

	// CooldownOut / CooldownIn gate how soon after ANY fleet action the
	// respective direction may fire again. CooldownIn should be the longer
	// one: after a scale-out, shrinking again quickly is thrash; after a
	// scale-in, growing quickly is a flash-crowd response.
	CooldownOut time.Duration
	CooldownIn  time.Duration

	// MinNodes/MaxNodes bound the fleet (MinNodes default 1).
	MinNodes int
	MaxNodes int
	// StepOut is how many nodes one scale-out adds (default 1).
	StepOut int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Violations <= 0 {
		c.Violations = 3
	}
	if c.Violations > c.Window {
		c.Violations = c.Window
	}
	if c.MinNodes <= 0 {
		c.MinNodes = 1
	}
	if c.StepOut <= 0 {
		c.StepOut = 1
	}
	return c
}

// DecisionKind is a trigger recommendation.
type DecisionKind int

const (
	None DecisionKind = iota
	ScaleOut
	ScaleIn
)

func (k DecisionKind) String() string {
	switch k {
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	default:
		return "none"
	}
}

// Decision is one trigger recommendation. For ScaleIn, Candidates ranks
// drainable victims least-loaded first; the provisioner picks the first
// one that still has a live migration destination.
type Decision struct {
	Kind       DecisionKind
	Candidates []int
	Reason     string
}

// Event records one executed fleet action.
type Event struct {
	At    time.Time
	Kind  DecisionKind
	Node  int // node added or drained
	Fleet int // fleet size after the action
}
