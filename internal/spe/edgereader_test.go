package spe

import (
	"context"
	"time"

	"meteorshower/internal/tuple"
)

// edgeReader unpacks micro-batches from an edge into a per-tuple stream,
// so tests written in terms of individual tuples keep reading naturally.
type edgeReader struct {
	e   *Edge
	buf []*tuple.Tuple
}

func newEdgeReader(e *Edge) *edgeReader { return &edgeReader{e: e} }

func (r *edgeReader) fill(b *tuple.Batch) {
	r.buf = append(r.buf, b.Tuples...)
	tuple.PutBatch(b)
}

func (r *edgeReader) pop() *tuple.Tuple {
	t := r.buf[0]
	r.buf = r.buf[1:]
	return t
}

// tryNext returns the next tuple without blocking, or nil if none is
// immediately available.
func (r *edgeReader) tryNext() *tuple.Tuple {
	for len(r.buf) == 0 {
		select {
		case b, ok := <-r.e.C:
			if !ok {
				return nil
			}
			r.e.queued.Add(-int64(len(b.Tuples)))
			r.fill(b)
		default:
			return nil
		}
	}
	return r.pop()
}

// next waits up to timeout for the next tuple, returning nil on timeout
// or edge close.
func (r *edgeReader) next(timeout time.Duration) *tuple.Tuple {
	if t := r.tryNext(); t != nil {
		return t
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for len(r.buf) == 0 {
		b, ok := r.e.Recv(ctx)
		if !ok {
			return nil
		}
		r.fill(b)
	}
	return r.pop()
}
