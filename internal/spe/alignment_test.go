package spe

import (
	"context"
	"testing"
	"time"

	"meteorshower/internal/operator"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// TestStreamBoundaryBlocksTokenedInput reproduces Fig. 6 time instant 4:
// "HAU 5 then stops processing tuples from HAU 3 ... HAU 5 can still
// process tuples from HAU 4 because HAU 5 has not received any token from
// HAU 4." All observations go through the HAU's output edge and atomic
// counters — the operator itself is owned by the HAU goroutine.
func TestStreamBoundaryBlocksTokenedInput(t *testing.T) {
	in0 := NewEdge("h3", "h5", 16)
	in1 := NewEdge("h4", "h5", 16)
	out := NewEdge("h5", "sink", 256)
	cat := storage.NewCatalog(fastStore(), []string{"h5"})
	h, err := New(Config{
		ID: "h5", Scheme: MSSrc, Ops: []operator.Operator{operator.NewCounter("c")},
		In: []*Edge{in0, in1}, Out: []*Edge{out},
		Catalog: cat, TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis := &recListener{}
	h.cfg.Listener = lis
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)

	// forwarded counts per source, observed via the output edge (safe:
	// only this goroutine reads out.C).
	counts := map[string]int{}
	var token *tuple.Tuple
	r := newEdgeReader(out)
	drain := func() {
		for {
			tp := r.tryNext()
			if tp == nil {
				return
			}
			if tp.IsToken() {
				token = tp
			} else {
				counts[tp.Src]++
			}
		}
	}
	waitCounts := func(src string, want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			drain()
			if counts[src] >= want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("timeout: %s count = %d, want %d", src, counts[src], want)
	}
	send := func(e *Edge, src string, id, seq uint64) {
		tp := tuple.New(id, src, src, nil)
		tp.Seq = seq
		e.Inject(nil, tp)
	}

	// Pre-token traffic flows on both inputs.
	send(in0, "h3", 1, 1)
	send(in1, "h4", 1, 1)
	waitCounts("h3", 1)
	waitCounts("h4", 1)

	// Token arrives on input 0 only; tuples behind it must NOT be
	// processed while input 1 keeps flowing.
	in0.Inject(nil, tuple.NewToken(tuple.Token{Epoch: 1, Kind: tuple.Cascading, From: "h3"}))
	send(in0, "h3", 2, 2) // post-token on the blocked stream
	for i := uint64(2); i <= 6; i++ {
		send(in1, "h4", i, i)
	}
	waitCounts("h4", 6)
	drain()
	if counts["h3"] != 1 {
		t.Fatalf("post-token tuple processed before alignment: h3 count = %d", counts["h3"])
	}
	if lis.ckptCount() != 0 {
		t.Fatal("checkpointed before all tokens arrived")
	}

	// The second token aligns the HAU: it checkpoints, forwards a token
	// downstream, and resumes the blocked input.
	in1.Inject(nil, tuple.NewToken(tuple.Token{Epoch: 1, Kind: tuple.Cascading, From: "h4"}))
	waitFor(t, 5*time.Second, func() bool { return lis.ckptCount() == 1 })
	waitCounts("h3", 2)
	drain()
	if token == nil || token.Tok.Epoch != 1 || token.Tok.From != "h5" {
		t.Fatalf("cascading token not forwarded: %+v", token)
	}

	// The checkpointed state must reflect exactly the pre-boundary
	// tuples: h3 x1, h4 x6 (all sent before h4's token). Restore into a
	// fresh operator to inspect the cut.
	blob, _, err := cat.LoadState(1, "h5")
	if err != nil {
		t.Fatal(err)
	}
	cnt2 := operator.NewCounter("c")
	h2, _ := New(Config{
		ID: "h5", Scheme: MSSrc, Ops: []operator.Operator{cnt2},
		In:  []*Edge{NewEdge("a", "h5", 0), NewEdge("b", "h5", 0)},
		Out: []*Edge{NewEdge("h5", "z", 0)},
	})
	if err := h2.RestoreFrom(blob); err != nil {
		t.Fatal(err)
	}
	if cnt2.Count("h3") != 1 || cnt2.Count("h4") != 6 {
		t.Fatalf("cut state h3=%d h4=%d, want 1/6", cnt2.Count("h3"), cnt2.Count("h4"))
	}
	cancel()
}

// TestOneHopTokenNotForwarded verifies §III-B: "the incoming tokens are
// not forwarded further to downstream HAUs. Instead, they are discarded
// after the individual checkpoint starts."
func TestOneHopTokenNotForwarded(t *testing.T) {
	in := NewEdge("up", "H", 16)
	out := NewEdge("H", "down", 256)
	cat := storage.NewCatalog(fastStore(), []string{"H"})
	h, _ := New(Config{
		ID: "H", Scheme: MSSrcAP, Ops: []operator.Operator{operator.NewCounter("c")},
		In: []*Edge{in}, Out: []*Edge{out},
		Catalog: cat, TickEvery: time.Millisecond,
	})
	lis := &recListener{}
	h.cfg.Listener = lis
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)

	// Command first: H emits its own 1-hop token downstream immediately.
	h.Command(Command{Kind: CmdCheckpoint, Epoch: 1})
	r := newEdgeReader(out)
	var ownToken *tuple.Tuple
	waitFor(t, 5*time.Second, func() bool {
		if tp := r.tryNext(); tp != nil && tp.IsToken() {
			ownToken = tp
		}
		return ownToken != nil
	})
	if ownToken.Tok.From != "H" || ownToken.Tok.Kind != tuple.OneHop {
		t.Fatalf("own token = %+v", ownToken.Tok)
	}

	// The upstream's token aligns H; it must be discarded, not forwarded.
	in.Inject(nil, tuple.NewToken(tuple.Token{Epoch: 1, Kind: tuple.OneHop, From: "up"}))
	waitFor(t, 5*time.Second, func() bool { return lis.ckptCount() == 1 })
	h.WaitWriters()
	time.Sleep(20 * time.Millisecond)
	if tp := r.tryNext(); tp != nil && tp.IsToken() {
		t.Fatal("1-hop token forwarded downstream")
	}
	cancel()
}
