package spe

import (
	"context"
	"sync"
	"testing"
	"time"

	"meteorshower/internal/buffer"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// recListener records events thread-safely.
type recListener struct {
	mu    sync.Mutex
	ckpts []struct {
		hau   string
		epoch uint64
		b     CheckpointBreakdown
	}
	turns   int
	stopped []string
}

func (l *recListener) CheckpointDone(hau string, epoch uint64, b CheckpointBreakdown) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ckpts = append(l.ckpts, struct {
		hau   string
		epoch uint64
		b     CheckpointBreakdown
	}{hau, epoch, b})
}

func (l *recListener) TurningPoint(string, int64, int64, float64, bool) {
	l.mu.Lock()
	l.turns++
	l.mu.Unlock()
}

func (l *recListener) Stopped(hau string, _ error) {
	l.mu.Lock()
	l.stopped = append(l.stopped, hau)
	l.mu.Unlock()
}

func (l *recListener) ckptCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ckpts)
}

func fastStore() *storage.Store {
	return storage.NewStore(storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond, TimeScale: 0})
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before timeout")
}

// buildChain wires S -> M -> K and returns the HAUs plus sink internals.
func buildChain(t *testing.T, scheme Scheme, cat *storage.Catalog, srcLog *buffer.SourceLog) (src, mid, sink *HAU, sinkOp *operator.Sink, col *metrics.Collector) {
	t.Helper()
	e1 := NewEdge("S", "M", 0)
	e2 := NewEdge("M", "K", 0)
	col = metrics.NewCollector()

	gen := operator.NewRateSource("S", 5, 1, operator.BytePayload(16, 4)) // 5 tuples/ms
	var err error
	src, err = New(Config{
		ID: "S", Scheme: scheme, Ops: []operator.Operator{gen},
		Out: []*Edge{e1}, Catalog: cat, SourceLog: srcLog,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mapOp := operator.NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })
	mid, err = New(Config{
		ID: "M", Scheme: scheme, Ops: []operator.Operator{mapOp},
		In: []*Edge{e1}, Out: []*Edge{e2}, Catalog: cat,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sinkOp = operator.NewSink("K", col)
	sinkOp.TrackIdentity = true
	sink, err = New(Config{
		ID: "K", Scheme: scheme, Ops: []operator.Operator{sinkOp},
		In: []*Edge{e2}, Catalog: cat,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return src, mid, sink, sinkOp, col
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := New(Config{ID: "x"}); err == nil {
		t.Fatal("no operators accepted")
	}
	gen := operator.NewRateSource("S", 1, 1, operator.BytePayload(4, 2))
	_, err := New(Config{ID: "S", Ops: []operator.Operator{gen}, In: []*Edge{NewEdge("a", "S", 0)}})
	if err == nil {
		t.Fatal("source with inputs accepted")
	}
}

func TestChainFlowsTuples(t *testing.T) {
	cat := storage.NewCatalog(fastStore(), []string{"S", "M", "K"})
	src, mid, sink, sinkOp, col := buildChain(t, MSSrc, cat, buffer.NewSourceLog("S", fastStore(), 1<<20))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src.Start(ctx)
	mid.Start(ctx)
	sink.Start(ctx)
	waitFor(t, 5*time.Second, func() bool { return col.Count() >= 50 })
	cancel()
	<-src.Done()
	<-mid.Done()
	<-sink.Done()
	if sinkOp.Duplicates() != 0 {
		t.Fatalf("duplicates without any failure: %d", sinkOp.Duplicates())
	}
	if col.MeanLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestMSSrcCascadingCheckpoint(t *testing.T) {
	cat := storage.NewCatalog(fastStore(), []string{"S", "M", "K"})
	srcLog := buffer.NewSourceLog("S", fastStore(), 1<<20)
	src, mid, sink, _, col := buildChain(t, MSSrc, cat, srcLog)
	lis := &recListener{}
	src.cfg.Listener, mid.cfg.Listener, sink.cfg.Listener = lis, lis, lis
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src.Start(ctx)
	mid.Start(ctx)
	sink.Start(ctx)
	waitFor(t, 5*time.Second, func() bool { return col.Count() >= 20 })

	// Trigger epoch 1 at the source only; the token must cascade.
	src.Command(Command{Kind: CmdCheckpoint, Epoch: 1})
	waitFor(t, 5*time.Second, func() bool {
		_, ok := cat.MostRecentComplete()
		return ok
	})
	e, _ := cat.MostRecentComplete()
	if e != 1 {
		t.Fatalf("MRC epoch = %d", e)
	}
	if lis.ckptCount() != 3 {
		t.Fatalf("individual checkpoints = %d, want 3", lis.ckptCount())
	}
	if srcLog.Epoch() != 1 {
		t.Fatalf("source log epoch = %d, want 1", srcLog.Epoch())
	}
	// Stream must keep flowing after the checkpoint.
	before := col.Count()
	waitFor(t, 5*time.Second, func() bool { return col.Count() > before+10 })
	cancel()
}

func TestMSSrcAPOneHopCheckpoint(t *testing.T) {
	cat := storage.NewCatalog(fastStore(), []string{"S", "M", "K"})
	src, mid, sink, sinkOp, col := buildChain(t, MSSrcAP, cat, buffer.NewSourceLog("S", fastStore(), 1<<20))
	lis := &recListener{}
	src.cfg.Listener, mid.cfg.Listener, sink.cfg.Listener = lis, lis, lis
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src.Start(ctx)
	mid.Start(ctx)
	sink.Start(ctx)
	waitFor(t, 5*time.Second, func() bool { return col.Count() >= 20 })

	// Controller broadcast: every HAU gets the command.
	for _, h := range []*HAU{src, mid, sink} {
		h.Command(Command{Kind: CmdCheckpoint, Epoch: 1})
	}
	waitFor(t, 5*time.Second, func() bool {
		_, ok := cat.MostRecentComplete()
		return ok
	})
	lis.mu.Lock()
	for _, c := range lis.ckpts {
		if !c.b.Async {
			t.Errorf("HAU %s checkpoint not asynchronous", c.hau)
		}
	}
	lis.mu.Unlock()
	if sinkOp.Duplicates() != 0 {
		t.Fatalf("duplicates after checkpoint: %d", sinkOp.Duplicates())
	}
	cancel()
}

func TestBaselinePeriodicCheckpointAndAck(t *testing.T) {
	cat := storage.NewCatalog(fastStore(), []string{"S", "M", "K"})
	e1 := NewEdge("S", "M", 0)
	e2 := NewEdge("M", "K", 0)
	col := metrics.NewCollector()
	disk := storage.NewDisk(storage.DiskSpec{BandwidthBps: 1 << 30, TimeScale: 0})

	gen := operator.NewRateSource("S", 5, 1, operator.BytePayload(16, 4))
	srcPres := buffer.NewPreserver(1, 1<<20, disk)
	src, _ := New(Config{
		ID: "S", Scheme: Baseline, Ops: []operator.Operator{gen},
		Out: []*Edge{e1}, Catalog: cat, Preserver: srcPres,
		TickEvery: time.Millisecond, CkptPeriod: 30 * time.Millisecond,
	})
	midPres := buffer.NewPreserver(1, 1<<20, disk)
	mid, _ := New(Config{
		ID: "M", Scheme: Baseline, Ops: []operator.Operator{operator.NewMap("m", func(in *tuple.Tuple) *tuple.Tuple { return in })},
		In: []*Edge{e1}, Out: []*Edge{e2}, Catalog: cat, Preserver: midPres,
		TickEvery: time.Millisecond, CkptPeriod: 30 * time.Millisecond,
		AckUpstream: func(_ int, seq uint64) { srcPres.Trim(0, seq) },
	})
	sinkOp := operator.NewSink("K", col)
	sink, _ := New(Config{
		ID: "K", Scheme: Baseline, Ops: []operator.Operator{sinkOp},
		In: []*Edge{e2}, Catalog: cat,
		TickEvery: time.Millisecond, CkptPeriod: 30 * time.Millisecond,
		AckUpstream: func(_ int, seq uint64) { midPres.Trim(0, seq) },
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src.Start(ctx)
	mid.Start(ctx)
	sink.Start(ctx)
	waitFor(t, 5*time.Second, func() bool { return col.Count() >= 100 })

	// Every HAU checkpoints on its own timer.
	waitFor(t, 5*time.Second, func() bool {
		se, sok := cat.LatestEpochFor("S")
		me, mok := cat.LatestEpochFor("M")
		ke, kok := cat.LatestEpochFor("K")
		return sok && mok && kok && se >= 2 && me >= 2 && ke >= 2
	})
	// Acks trim the upstream preservation buffers: after a sink
	// checkpoint, mid's buffer must not grow without bound.
	waitFor(t, 5*time.Second, func() bool {
		st := midPres.Stats()
		return st.Entries > 0 || col.Count() > 0
	})
	trimmedOnce := func() bool {
		// If acks work, the preserver holds fewer entries than the sink
		// has delivered.
		return int(col.Count()) > midPres.Stats().Entries+10
	}
	waitFor(t, 5*time.Second, trimmedOnce)
	cancel()
}

func TestDuplicateSuppression(t *testing.T) {
	// Feed a sink HAU two copies of the same sequence range; only one copy
	// must be processed.
	e := NewEdge("X", "K", 0)
	col := metrics.NewCollector()
	sinkOp := operator.NewSink("K", col)
	sinkOp.TrackIdentity = true
	sink, _ := New(Config{
		ID: "K", Scheme: MSSrc, Ops: []operator.Operator{sinkOp},
		In: []*Edge{e}, TickEvery: time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink.Start(ctx)
	for round := 0; round < 2; round++ {
		for i := uint64(1); i <= 10; i++ {
			tp := tuple.New(i, "X", "k", nil)
			tp.Seq = i
			e.Inject(nil, tp)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return col.Count() >= 10 })
	time.Sleep(20 * time.Millisecond)
	if col.Count() != 10 {
		t.Fatalf("delivered %d, want 10 (duplicates dropped)", col.Count())
	}
	if sinkOp.Duplicates() != 0 {
		t.Fatalf("sink saw %d duplicates", sinkOp.Duplicates())
	}
	cancel()
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cnt := operator.NewCounter("c")
	mk := func() (*HAU, *operator.Counter) {
		c := operator.NewCounter("c")
		h, err := New(Config{
			ID: "H", Scheme: MSSrcAP, Ops: []operator.Operator{c},
			In:  []*Edge{NewEdge("a", "H", 0), NewEdge("b", "H", 0)},
			Out: []*Edge{NewEdge("H", "z", 0)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return h, c
	}
	h, _ := mk()
	h.cfg.Ops[0] = cnt
	h.outSeq[0] = 42
	h.lastInSeq[0], h.lastInSeq[1] = 7, 9
	h.localEpoch = 3
	cnt.OnTuple(0, tuple.New(1, "S", "alpha", nil), func(int, *tuple.Tuple) {})
	rt := tuple.New(5, "S", "k", []byte("inflight"))
	rt.Seq = 41
	h.retained = []retainedTuple{{port: 0, t: rt}}

	blob := h.SnapshotNow()
	h2, c2 := mk()
	if err := h2.RestoreFrom(blob); err != nil {
		t.Fatal(err)
	}
	if h2.outSeq[0] != 42 || h2.lastInSeq[0] != 7 || h2.lastInSeq[1] != 9 || h2.localEpoch != 3 {
		t.Fatalf("counters not restored: %+v %+v", h2.outSeq, h2.lastInSeq)
	}
	if len(h2.pendingOut) != 1 || h2.pendingOut[0].t.Seq != 41 || string(h2.pendingOut[0].t.Data) != "inflight" {
		t.Fatalf("retained tuples not restored: %+v", h2.pendingOut)
	}
	if c2.Count("alpha") != 1 {
		t.Fatal("operator state not restored")
	}
}

func TestRestoreFromErrors(t *testing.T) {
	h, _ := New(Config{ID: "H", Ops: []operator.Operator{operator.NewCounter("c")}})
	if err := h.RestoreFrom([]byte{1, 2}); err == nil {
		t.Fatal("short blob accepted")
	}
	// Port-count mismatch.
	h2, _ := New(Config{
		ID: "H", Ops: []operator.Operator{operator.NewCounter("c")},
		Out: []*Edge{NewEdge("H", "z", 0)},
	})
	blob := h2.SnapshotNow()
	if err := h.RestoreFrom(blob); err == nil {
		t.Fatal("mismatched port count accepted")
	}
}

func TestRestoredHAUResendsInflight(t *testing.T) {
	out := NewEdge("H", "z", 4)
	h, _ := New(Config{
		ID: "H", Scheme: MSSrcAP, Ops: []operator.Operator{operator.NewCounter("c")},
		Out: []*Edge{out}, TickEvery: time.Millisecond,
	})
	rt := tuple.New(5, "S", "k", []byte("x"))
	rt.Seq = 3
	h.pendingOut = []retainedTuple{{port: 0, t: rt}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	r := newEdgeReader(out)
	got := r.next(2 * time.Second)
	if got == nil {
		t.Fatal("in-flight tuple not re-sent")
	}
	if got.Seq != 3 || got.ID != 5 {
		t.Fatalf("re-sent tuple = %+v", got)
	}
	cancel()
}

func TestSourceReplayAndSkip(t *testing.T) {
	out := NewEdge("S", "z", 64)
	gen := operator.NewRateSource("S", 0, 1, operator.BytePayload(4, 2)) // rate 0: no new tuples
	h, _ := New(Config{
		ID: "S", Scheme: MSSrc, Ops: []operator.Operator{gen},
		Out: []*Edge{out}, TickEvery: time.Millisecond,
	})
	var replay []*tuple.Tuple
	for i := uint64(10); i < 15; i++ {
		replay = append(replay, tuple.New(i, "S", "k", nil))
	}
	h.SetSourceReplay(replay)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	r := newEdgeReader(out)
	for i := uint64(10); i < 15; i++ {
		got := r.next(2 * time.Second)
		if got == nil {
			t.Fatal("replay stalled")
		}
		if got.ID != i {
			t.Fatalf("replayed id = %d, want %d", got.ID, i)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return gen.NextID() == 15 })
	cancel()
}

func TestSchemeStringsAndPredicates(t *testing.T) {
	if Baseline.String() != "Baseline" || MSSrc.String() != "MS-src" ||
		MSSrcAP.String() != "MS-src+ap" || MSSrcAPAA.String() != "MS-src+ap+aa" {
		t.Fatal("scheme strings wrong")
	}
	if Baseline.UsesTokens() || !MSSrc.UsesTokens() {
		t.Fatal("UsesTokens wrong")
	}
	if MSSrc.OneHopTokens() || !MSSrcAP.OneHopTokens() {
		t.Fatal("OneHopTokens wrong")
	}
	if MSSrc.Asynchronous() || !MSSrcAPAA.Asynchronous() {
		t.Fatal("Asynchronous wrong")
	}
	if !MSSrcAPAA.ApplicationAware() || MSSrcAP.ApplicationAware() {
		t.Fatal("ApplicationAware wrong")
	}
	if Scheme(99).String() != "unknown-scheme" {
		t.Fatal("unknown scheme string")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := CheckpointBreakdown{TokenWait: 1, Serialize: 2, DiskIO: 3}
	if b.Total() != 6 {
		t.Fatalf("Total = %v", b.Total())
	}
}
