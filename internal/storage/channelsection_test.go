package storage

import (
	"encoding/binary"
	"strings"
	"testing"
)

func TestChannelSectionRoundTrip(t *testing.T) {
	streams := []ChannelStream{
		{Label: "u0", Count: 3, Payload: []byte("abcdef")},
		{Label: "some-long-upstream-name", Count: 1, Payload: []byte{0x00, 0xff}},
		{Label: "u2", Count: 0, Payload: nil},
	}
	sec := EncodeChannelSection(streams)
	if !IsChannelSection(sec) {
		t.Fatal("encoded section does not carry the channel magic")
	}
	got, err := DecodeChannelSection(sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(streams) {
		t.Fatalf("decoded %d streams, want %d", len(got), len(streams))
	}
	for i, s := range streams {
		if got[i].Label != s.Label || got[i].Count != s.Count || string(got[i].Payload) != string(s.Payload) {
			t.Fatalf("stream %d = %+v, want %+v", i, got[i], s)
		}
	}
}

func TestChannelSectionEmpty(t *testing.T) {
	sec := EncodeChannelSection(nil)
	got, err := DecodeChannelSection(sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d streams from empty section", len(got))
	}
}

// TestChannelSectionRejectsForeignBytes is the v1-blob guard: anything not
// carrying the channel magic — a v1 snapshot, an operator section, garbage
// — must be rejected with an error that names the magic mismatch.
func TestChannelSectionRejectsForeignBytes(t *testing.T) {
	v1ish := binary.LittleEndian.AppendUint32(nil, 0x4d535631) // "MSV1"
	v1ish = append(v1ish, make([]byte, 32)...)
	for _, b := range [][]byte{v1ish, []byte("operator state"), make([]byte, 16)} {
		_, err := DecodeChannelSection(b)
		if err == nil {
			t.Fatalf("accepted %d foreign bytes", len(b))
		}
		if !strings.Contains(err.Error(), "magic") {
			t.Fatalf("rejection does not name the magic mismatch: %v", err)
		}
	}
	if _, err := DecodeChannelSection([]byte{1, 2}); err == nil {
		t.Fatal("accepted a 2-byte section")
	}
}

func TestChannelSectionTruncations(t *testing.T) {
	sec := EncodeChannelSection([]ChannelStream{
		{Label: "u0", Count: 2, Payload: []byte("payload")},
		{Label: "u1", Count: 1, Payload: []byte("x")},
	})
	for cut := 0; cut < len(sec); cut++ {
		if _, err := DecodeChannelSection(sec[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(sec))
		}
	}
	if _, err := DecodeChannelSection(append(sec, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
