package operator

import (
	"testing"
	"time"
)

const ms = int64(time.Millisecond)

func TestRateSourceRate(t *testing.T) {
	s := NewRateSource("S0", 2, 1, BytePayload(8, 4)) // 2 tuples/ms
	s.Generate(0)                                     // prime the clock
	got := s.Generate(10 * ms)
	if len(got) != 20 {
		t.Fatalf("generated %d tuples in 10ms at 2/ms, want 20", len(got))
	}
	// IDs are sequential from 0.
	for i, tp := range got {
		if tp.ID != uint64(i) || tp.Src != "S0" {
			t.Fatalf("tuple %d = id %d src %s", i, tp.ID, tp.Src)
		}
	}
}

func TestRateSourceFractionalCredit(t *testing.T) {
	s := NewRateSource("S0", 0.5, 1, BytePayload(4, 2)) // 1 tuple per 2ms
	s.Generate(0)
	n := 0
	for i := int64(1); i <= 10; i++ {
		n += len(s.Generate(i * ms))
	}
	if n != 5 {
		t.Fatalf("generated %d in 10ms at 0.5/ms, want 5", n)
	}
}

func TestRateSourceCatchUpCap(t *testing.T) {
	s := NewRateSource("S0", 10, 1, BytePayload(4, 2))
	s.CatchUpCap = 7
	s.Generate(0)
	got := s.Generate(100 * ms) // owes 1000 tuples
	if len(got) != 7 {
		t.Fatalf("cap ignored: %d tuples", len(got))
	}
	// Next call keeps draining.
	got = s.Generate(100*ms + 1)
	if len(got) != 7 {
		t.Fatalf("backlog not drained: %d", len(got))
	}
}

func TestRateSourceDeterministicPayloads(t *testing.T) {
	a := NewRateSource("S0", 1, 42, BytePayload(16, 8))
	b := NewRateSource("S0", 1, 42, BytePayload(16, 8))
	a.Generate(0)
	b.Generate(0)
	ta := a.Generate(5 * ms)
	tb := b.Generate(5 * ms)
	for i := range ta {
		if ta[i].Key != tb[i].Key || string(ta[i].Data) != string(tb[i].Data) {
			t.Fatal("same seed produced different payloads")
		}
	}
}

func TestRateSourceSkipPast(t *testing.T) {
	s := NewRateSource("S0", 1, 1, BytePayload(4, 2))
	s.SkipPast(41)
	if s.NextID() != 42 {
		t.Fatalf("NextID = %d, want 42", s.NextID())
	}
	s.SkipPast(10) // must not go backwards
	if s.NextID() != 42 {
		t.Fatal("SkipPast went backwards")
	}
}

func TestRateSourceSnapshotRestore(t *testing.T) {
	s := NewRateSource("S0", 1, 1, BytePayload(4, 2))
	s.Generate(0)
	s.Generate(20 * ms)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewRateSource("S0", 1, 1, BytePayload(4, 2))
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.NextID() != s.NextID() {
		t.Fatalf("restored NextID = %d, want %d", s2.NextID(), s.NextID())
	}
	if err := s2.Restore([]byte{1}); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

func TestRateSourceRejectsInput(t *testing.T) {
	s := NewRateSource("S0", 1, 1, BytePayload(4, 2))
	if err := s.OnTuple(0, mk(1, "k"), nil); err == nil {
		t.Fatal("source accepted an input tuple")
	}
}

type recLat struct {
	lats []time.Duration
}

func (r *recLat) RecordLatency(_ int64, lat time.Duration) { r.lats = append(r.lats, lat) }

func TestSinkLatencyAndIdentity(t *testing.T) {
	rec := &recLat{}
	s := NewSink("K", rec)
	s.TrackIdentity = true
	s.Now = func() int64 { return 5000 }
	tp := mk(7, "k")
	tp.Ts = 2000
	s.OnTuple(0, tp, nil)
	if len(rec.lats) != 1 || rec.lats[0] != 3000 {
		t.Fatalf("latency = %v", rec.lats)
	}
	if !s.Seen("S", 7) || s.SeenCount() != 1 || s.Delivered() != 1 {
		t.Fatal("identity not tracked")
	}
	s.OnTuple(0, tp.Clone(), nil)
	if s.Duplicates() != 1 {
		t.Fatalf("duplicates = %d, want 1", s.Duplicates())
	}
}

func TestSinkSnapshotRestore(t *testing.T) {
	s := NewSink("K", nil)
	s.TrackIdentity = true
	for i := uint64(0); i < 10; i++ {
		tp := mk(i, "k")
		s.OnTuple(0, tp, nil)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSink("K", nil)
	s2.TrackIdentity = true
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.Delivered() != 10 || s2.SeenCount() != 10 || !s2.Seen("S", 3) {
		t.Fatalf("restored sink: delivered=%d seen=%d", s2.Delivered(), s2.SeenCount())
	}
	// A replayed duplicate is detected against restored state.
	s2.OnTuple(0, mk(3, "k"), nil)
	if s2.Duplicates() != 1 {
		t.Fatal("restored sink missed a duplicate")
	}
	if err := s2.Restore([]byte{0}); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

func TestSinkNilRecorder(t *testing.T) {
	s := NewSink("K", nil)
	if err := s.OnTuple(0, mk(1, "k"), nil); err != nil {
		t.Fatal(err)
	}
}
