// Command msrun runs one of the paper's applications on the simulated
// cluster under a chosen fault-tolerance scheme, printing live statistics.
// With -kill-after it injects a whole-cluster burst failure and recovers,
// demonstrating the headline capability end to end.
//
//	msrun -app TMI -scheme ms-src+ap+aa -duration 5s -ckpt-period 1s
//	msrun -app SignalGuru -scheme baseline -duration 3s
//	msrun -app BCP -scheme ms-src+ap -kill-after 2s -duration 6s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/bench"
	"meteorshower/internal/cluster"
	"meteorshower/internal/core"
	"meteorshower/internal/elastic"
	"meteorshower/internal/metrics"
	"meteorshower/internal/placement"
	"meteorshower/internal/spe"
)

func parseScheme(s string) (spe.Scheme, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return spe.Baseline, nil
	case "ms-src", "src":
		return spe.MSSrc, nil
	case "ms-src+ap", "ap":
		return spe.MSSrcAP, nil
	case "ms-src+ap+aa", "aa":
		return spe.MSSrcAPAA, nil
	case "ms-src+ap+unaligned", "unaligned":
		return spe.MSSrcAPU, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", s)
	}
}

// shareString renders per-replica load fractions as "[0.25 0.25 ...]".
func shareString(shares []float64) string {
	parts := make([]string, len(shares))
	for i, s := range shares {
		parts[i] = fmt.Sprintf("%.2f", s)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func main() {
	var (
		app       = flag.String("app", "TMI", "TMI | BCP | SignalGuru")
		appsList  = flag.String("apps", "", `multi-tenant run: comma-separated app:weight list (e.g. "TMI:1,BCP:3") sharing one fleet; overrides -app`)
		arbEvery  = flag.Duration("arbiter-every", 0, "fair-share arbiter period for -apps runs (0 = off)")
		scheme    = flag.String("scheme", "ms-src+ap", "baseline | ms-src | ms-src+ap | ms-src+ap+aa | ms-src+ap+unaligned")
		duration  = flag.Duration("duration", 5*time.Second, "how long to run")
		period    = flag.Duration("ckpt-period", time.Second, "checkpoint period (0 = off)")
		nodes     = flag.Int("nodes", 8, "worker nodes")
		killAfter = flag.Duration("kill-after", 0, "inject a whole-cluster failure after this long (0 = never)")
		seed      = flag.Int64("seed", 1, "workload seed")
		useDelta  = flag.Bool("delta", false, "enable delta-checkpointing")
		shed      = flag.Float64("shed", 0, "load-shedding watermark (0 = off, e.g. 0.9)")

		place     = flag.String("placement", "", `placement policy: "roundrobin", "rackspread" or "loadaware" ("" = round-robin)`)
		npr       = flag.Int("nodes-per-rack", 0, "failure-domain geometry for placement (0 = one rack)")
		rebalance = flag.Duration("rebalance-every", 0, "live-migration rebalancer period (0 = off)")

		autoscale   = flag.Duration("autoscale-every", 0, "split/merge autoscaler period (0 = off)")
		splitAbove  = flag.Int64("split-above", 0, "state-size watermark (bytes) above which a hot operator is split (0 = off)")
		mergeBelow  = flag.Int64("merge-below", 0, "state-size watermark (bytes) below which a split operator is merged (0 = off)")
		maxReplicas = flag.Int("max-replicas", 0, "replica cap per split operator (0 = 4)")

		imbAbove      = flag.Float64("imbalance-above", 0, "max/mean replica-load watermark arming the skew trigger (<=1 = off; needs -autoscale-every)")
		imbWindow     = flag.Int("imbalance-window", 0, "skew trigger tick window (0 = 5)")
		imbViolations = flag.Int("imbalance-violations", 0, "violated ticks required before the skew trigger acts (0 = 3)")

		elasticEvery = flag.Duration("elastic-every", 0, "fleet-elasticity tick period (0 = off)")
		minNodes     = flag.Int("min-nodes", 0, "elastic fleet floor (0 = the starting node count)")
		maxNodes     = flag.Int("max-nodes", 0, "elastic fleet ceiling (0 = 2x the starting node count)")
		outUtil      = flag.Float64("scale-out-util", 0.8, "mean CPU utilization above which the fleet grows")
		inUtil       = flag.Float64("scale-in-util", 0.2, "per-node CPU utilization below which a node may drain")
		elWindow     = flag.Int("elastic-window", 5, "elasticity trigger window (M of the N-of-M rule)")
		elViolations = flag.Int("elastic-violations", 3, "violated samples required to act (N of the N-of-M rule)")
		nodeCores    = flag.Float64("node-cores", 0, "modelled CPU cores per node (0 = no CPU capacity model; elasticity defaults it to 1)")
	)
	flag.Parse()

	sch, err := parseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	parseKind := func(name string) (bench.AppKind, bool) {
		switch strings.ToLower(name) {
		case "tmi":
			return bench.TMIApp, true
		case "bcp":
			return bench.BCPApp, true
		case "signalguru", "sg":
			return bench.SGApp, true
		}
		return 0, false
	}
	kind, ok := parseKind(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}

	p := bench.Params{Nodes: *nodes, Seed: *seed}
	col := metrics.NewCollector()
	ref := &apps.SinkRef{}
	spec := bench.BuildApp(kind, p, col, ref)

	// Multi-tenant run: several applications on one shared fleet, each with
	// a fairness weight the arbiter and weighted load scores honour.
	var specs []cluster.AppSpec
	var refs []*apps.SinkRef
	if *appsList != "" {
		seen := map[string]int{}
		for _, ent := range strings.Split(*appsList, ",") {
			name, weightStr, _ := strings.Cut(strings.TrimSpace(ent), ":")
			k, ok := parseKind(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown app %q in -apps\n", name)
				os.Exit(2)
			}
			w := 1.0
			if weightStr != "" {
				if _, err := fmt.Sscanf(weightStr, "%g", &w); err != nil || w <= 0 {
					fmt.Fprintf(os.Stderr, "bad weight %q for app %q\n", weightStr, name)
					os.Exit(2)
				}
			}
			r := &apps.SinkRef{}
			sp := bench.BuildApp(k, p, col, r)
			seen[sp.Name]++
			if n := seen[sp.Name]; n > 1 {
				sp.Name = fmt.Sprintf("%s-%d", sp.Name, n)
			}
			sp.Weight = w
			specs = append(specs, sp)
			refs = append(refs, r)
		}
		if len(specs) < 2 {
			fmt.Fprintln(os.Stderr, "-apps needs at least two entries")
			os.Exit(2)
		}
	}

	var pol placement.Policy
	if *place != "" {
		pol, err = placement.Parse(*place)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	// Elasticity needs the CPU capacity model to read utilization, and
	// sensible fleet bounds around the starting size.
	if *elasticEvery > 0 {
		if *nodeCores == 0 {
			*nodeCores = 1
		}
		if *minNodes == 0 {
			*minNodes = *nodes
		}
		if *maxNodes == 0 {
			*maxNodes = 2 * *nodes
		}
	}

	sys, err := core.NewSystem(core.Options{
		App:                  spec,
		Apps:                 specs,
		ArbiterEvery:         *arbEvery,
		Scheme:               sch,
		Nodes:                *nodes,
		Placement:            pol,
		NodesPerRack:         *npr,
		RebalanceEvery:       *rebalance,
		AutoscaleEvery:       *autoscale,
		SplitAbove:           *splitAbove,
		MergeBelow:           *mergeBelow,
		AutoscaleMaxReplicas: *maxReplicas,
		ImbalanceAbove:       *imbAbove,
		ImbalanceWindow:      *imbWindow,
		ImbalanceViolations:  *imbViolations,
		ElasticEvery:         *elasticEvery,
		Elastic: elastic.Config{
			Window: *elWindow, Violations: *elViolations,
			ScaleOutUtil: *outUtil, ScaleInUtil: *inUtil,
			MinNodes: *minNodes, MaxNodes: *maxNodes,
		},
		NodeCores:        *nodeCores,
		CheckpointPeriod: *period,
		TickEvery:        time.Millisecond,
		SourceFlush:      64 << 10,
		Seed:             *seed,
		DeltaCheckpoint:  *useDelta,
		ShedWatermark:    *shed,
		Metrics:          col,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sys.Stop()
	// The autoscaler and the elasticity engine (like scheme-driven
	// checkpointing) run inside the controller loop, so enabling either
	// needs the controller running.
	if *period > 0 || *autoscale > 0 || *elasticEvery > 0 || *arbEvery > 0 {
		sys.StartController(ctx)
	}

	if len(specs) > 0 {
		labels := make([]string, len(specs))
		for i, sp := range specs {
			labels[i] = fmt.Sprintf("%s (weight %g)", sp.Name, sp.Weight)
		}
		fmt.Printf("running %s under %s on %d shared nodes\n",
			strings.Join(labels, " + "), sch, *nodes)
	} else {
		fmt.Printf("running %s (%d operators) under %s on %d nodes\n",
			spec.Name, spec.Graph.NumNodes(), sch, *nodes)
	}
	start := time.Now()
	killed := false
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for time.Since(start) < *duration {
		<-ticker.C
		if *killAfter > 0 && !killed && time.Since(start) >= *killAfter {
			fmt.Println(">> injecting whole-cluster burst failure")
			sys.KillAll()
			stats, err := sys.RecoverAll(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "recovery failed: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf(">> recovered %d HAUs from epoch %d in %s (disk %s, reconnect %s)\n",
				stats.HAUs, stats.Epoch, stats.Total().Truncate(time.Millisecond),
				stats.DiskIO.Truncate(time.Millisecond), stats.Reconnect.Truncate(time.Millisecond))
			killed = true
		}
		processed := sys.Cluster().ProcessedTotal()
		fmt.Printf("t=%-6s processed=%-10d sink=%-8d meanLat=%-12s epochs=%d\n",
			time.Since(start).Truncate(100*time.Millisecond), processed,
			col.Count(), col.MeanLatency().Truncate(time.Microsecond), sys.Controller().Epoch())
	}
	sum := sys.Summarize(col, start.UnixNano(), *duration)
	fmt.Printf("\nsummary: app=%s scheme=%s tuples=%d (%.1f/ms) meanLat=%s p99=%s checkpoints=%d\n",
		sum.App, sum.Scheme, sum.Tuples, sum.TuplesPerMS,
		sum.MeanLatency.Truncate(time.Microsecond), sum.P99.Truncate(time.Microsecond), sum.Checkpoints)
	if cks := col.Checkpoints(); len(cks) > 0 {
		var stallMax, stallSum time.Duration
		var chBytes int64
		for _, ck := range cks {
			stallSum += ck.AlignStallSum
			if ck.AlignStallMax > stallMax {
				stallMax = ck.AlignStallMax
			}
			chBytes += ck.ChannelBytes
		}
		fmt.Printf("alignment: stallMax=%s stallSum=%s channelBytes=%d across %d checkpoints\n",
			stallMax.Truncate(time.Microsecond), stallSum.Truncate(time.Microsecond), chBytes, len(cks))
	}
	// appTag labels a per-row printout with the owning application — rows
	// from different tenants are otherwise indistinguishable once several
	// apps share the fleet.
	appTag := func(app string) string {
		if app == "" {
			app = spec.Name
		}
		return "app=" + app + " "
	}
	if *elasticEvery > 0 {
		for _, ev := range sys.Cluster().Elastic().Events() {
			fmt.Printf("elastic %s node %d (fleet -> %d, apps %s)\n",
				ev.Kind, ev.Node, ev.Fleet, strings.Join(sys.AppNames(), "+"))
		}
		fmt.Printf("fleet: %d nodes at shutdown (apps %s)\n",
			sys.Cluster().FleetSize(), strings.Join(sys.AppNames(), "+"))
	}
	if shares := sys.ArbiterShares(); len(shares) > 0 {
		for _, name := range sys.AppNames() {
			fmt.Printf("fair-share app=%s nodes=%.2f processed=%d\n",
				name, shares[name], sys.Cluster().ProcessedOf(name))
		}
	}
	for _, rs := range col.Rescales() {
		fmt.Printf("rescale %s%s %d->%d bytes=%d drain=%s reshard=%s restore=%s downtime=%s\n",
			appTag(rs.App), rs.HAU, rs.From, rs.To, rs.Bytes, rs.Drain.Truncate(time.Microsecond),
			rs.Reshard.Truncate(time.Microsecond), rs.Restore.Truncate(time.Microsecond),
			rs.Downtime.Truncate(time.Microsecond))
	}
	for _, sk := range col.Skews() {
		fmt.Printf("skew %s%s replicas=%d shares=%s ratio=%.2f action=%s moved=%d\n",
			appTag(sk.App), sk.HAU, sk.Replicas, shareString(sk.Shares), sk.Ratio, sk.Action, sk.Moved)
	}
	// Terminal per-replica load balance of every operator still split at
	// shutdown, from the routers' observed tuple counts.
	for _, id := range sys.Cluster().GraphNodes() {
		if len(sys.Replicas(id)) < 2 {
			continue
		}
		shares, ratio := sys.LoadShares(id, nil)
		fmt.Printf("load %s%s shares=%s imbalance=%.2f\n",
			appTag(sys.Cluster().AppOfHAU(id)), id, shareString(shares), ratio)
	}
	bad := false
	if len(refs) > 0 {
		for i, r := range refs {
			if s := r.Get(); s != nil && s.Duplicates() > 0 {
				fmt.Printf("WARNING: app=%s sink observed %d duplicate deliveries\n",
					specs[i].Name, s.Duplicates())
				bad = true
			}
		}
	} else if s := ref.Get(); s != nil && s.Duplicates() > 0 {
		fmt.Printf("WARNING: sink observed %d duplicate deliveries\n", s.Duplicates())
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}
