package replica

import (
	"testing"
	"time"
)

var t0 = time.Unix(1000, 0)

func cfg() Config {
	return Config{ProtectAbove: 1000, DemoteBelow: 100, MaxStandbys: 2, Cooldown: time.Second}
}

func TestStepProtectsHottestAboveWatermark(t *testing.T) {
	p := New(cfg())
	act, ok := p.Step(t0, []Stat{
		{HAU: "a", StateBytes: 1500},
		{HAU: "b", StateBytes: 2500},
		{HAU: "c", StateBytes: 500},
	})
	if !ok || act.HAU != "b" || act.Mode != ModeStandby {
		t.Fatalf("want protect b, got %+v ok=%v", act, ok)
	}
}

func TestStepRanksRecoverTimeOverStateSize(t *testing.T) {
	p := New(cfg())
	// "a" is smaller but has the longer observed rollback — it matters more.
	act, ok := p.Step(t0, []Stat{
		{HAU: "a", StateBytes: 1500, RecoverTime: 80 * time.Millisecond},
		{HAU: "b", StateBytes: 2500, RecoverTime: 10 * time.Millisecond},
	})
	if !ok || act.HAU != "a" || act.Mode != ModeStandby {
		t.Fatalf("want protect a (longest recovery), got %+v ok=%v", act, ok)
	}
}

func TestStepTieBreaksByID(t *testing.T) {
	p := New(cfg())
	act, ok := p.Step(t0, []Stat{
		{HAU: "z", StateBytes: 2000},
		{HAU: "m", StateBytes: 2000},
	})
	if !ok || act.HAU != "m" {
		t.Fatalf("equal stats must pick the lowest id, got %+v ok=%v", act, ok)
	}
}

func TestStepRespectsStandbyBudget(t *testing.T) {
	p := New(cfg())
	stats := []Stat{
		{HAU: "a", StateBytes: 3000, Protected: true},
		{HAU: "b", StateBytes: 2500, Protected: true},
		{HAU: "c", StateBytes: 2000},
	}
	if act, ok := p.Step(t0, stats); ok {
		t.Fatalf("budget full (2/2), want no action, got %+v", act)
	}
}

func TestStepDemotesColdProtectedFirst(t *testing.T) {
	p := New(cfg())
	// Budget is full AND a protected HAU went cold: the demotion must win
	// the step, freeing budget for "c" on a later tick.
	act, ok := p.Step(t0, []Stat{
		{HAU: "a", StateBytes: 3000, Protected: true},
		{HAU: "b", StateBytes: 50, Protected: true},
		{HAU: "c", StateBytes: 2000},
	})
	if !ok || act.HAU != "b" || act.Mode != ModeCheckpoint {
		t.Fatalf("want demote b, got %+v ok=%v", act, ok)
	}
	// Next tick, stats reflecting the demotion: now "c" gets the slot.
	act, ok = p.Step(t0.Add(2*time.Second), []Stat{
		{HAU: "a", StateBytes: 3000, Protected: true},
		{HAU: "b", StateBytes: 50},
		{HAU: "c", StateBytes: 2000},
	})
	if !ok || act.HAU != "c" || act.Mode != ModeStandby {
		t.Fatalf("want protect c after freed budget, got %+v ok=%v", act, ok)
	}
}

func TestStepCooldownBlocksFlapping(t *testing.T) {
	p := New(cfg())
	hot := []Stat{{HAU: "a", StateBytes: 2000}}
	cold := []Stat{{HAU: "a", StateBytes: 50, Protected: true}}
	if _, ok := p.Step(t0, hot); !ok {
		t.Fatal("first protect must fire")
	}
	// Immediately cold again: inside the cooldown nothing may happen.
	if act, ok := p.Step(t0.Add(10*time.Millisecond), cold); ok {
		t.Fatalf("inside cooldown, want no action, got %+v", act)
	}
	if act, ok := p.Step(t0.Add(2*time.Second), cold); !ok || act.Mode != ModeCheckpoint {
		t.Fatalf("after cooldown, want demote, got %+v ok=%v", act, ok)
	}
}

func TestStepFailedActionRetriesAfterCooldown(t *testing.T) {
	p := New(cfg())
	hot := []Stat{{HAU: "a", StateBytes: 2000}}
	if _, ok := p.Step(t0, hot); !ok {
		t.Fatal("first protect must fire")
	}
	// The arm failed: next tick's stats still show "a" unprotected. Within
	// the cooldown the planner stays quiet, after it the protect re-fires.
	if act, ok := p.Step(t0.Add(500*time.Millisecond), hot); ok {
		t.Fatalf("failed action must not retry inside cooldown, got %+v", act)
	}
	if act, ok := p.Step(t0.Add(2*time.Second), hot); !ok || act.HAU != "a" || act.Mode != ModeStandby {
		t.Fatalf("want retry protect a, got %+v ok=%v", act, ok)
	}
}

func TestStepDisabledWatermarks(t *testing.T) {
	// ProtectAbove <= 0 disables protection entirely; DemoteBelow <= 0
	// means never demote on size.
	p := New(Config{DemoteBelow: 100, MaxStandbys: 1})
	if act, ok := p.Step(t0, []Stat{{HAU: "a", StateBytes: 1 << 30}}); ok {
		t.Fatalf("protection disabled, got %+v", act)
	}
	p = New(Config{ProtectAbove: 1000, MaxStandbys: 1})
	if act, ok := p.Step(t0, []Stat{{HAU: "a", StateBytes: 1, Protected: true}}); ok {
		t.Fatalf("demotion disabled, got %+v", act)
	}
}

func TestModeString(t *testing.T) {
	if ModeStandby.String() != "standby" || ModeCheckpoint.String() != "checkpoint" {
		t.Fatalf("mode strings: %q %q", ModeStandby, ModeCheckpoint)
	}
}
