// Package kmeans implements Lloyd's k-means clustering with k-means++
// seeding. It is the kernel of the TMI application (paper §II-B2): "a
// k-means operator retains input tuples in an internal pool and clusters
// the tuples at the end of the time window".
package kmeans

import (
	"errors"
	"math"
	"math/rand"
)

// Point is a feature vector. All points passed to Cluster must share one
// dimensionality.
type Point []float64

// Result holds the outcome of a clustering run.
type Result struct {
	Centroids  []Point
	Assignment []int // Assignment[i] = index of the centroid of point i
	Inertia    float64
	Iterations int
}

// Config controls the clustering.
type Config struct {
	K        int
	MaxIter  int   // 0 = default 50
	Seed     int64 // deterministic seeding
	MinDelta float64
}

// ErrBadInput reports empty input or invalid K.
var ErrBadInput = errors.New("kmeans: need at least K points and K >= 1")

// Cluster partitions points into cfg.K clusters.
func Cluster(points []Point, cfg Config) (*Result, error) {
	if cfg.K < 1 || len(points) < cfg.K {
		return nil, ErrBadInput
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, errors.New("kmeans: inconsistent dimensions")
		}
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cents := seedPlusPlus(points, cfg.K, rng)
	assign := make([]int, len(points))
	res := &Result{}
	prev := math.Inf(1)
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		// Assignment step.
		inertia := 0.0
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range cents {
				if d := sqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			inertia += bestD
		}
		res.Inertia = inertia
		// Update step.
		sums := make([]Point, cfg.K)
		counts := make([]int, cfg.K)
		for c := range sums {
			sums[c] = make(Point, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := range p {
				sums[c][d] += p[d]
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				// Empty cluster: reseed to the farthest point.
				cents[c] = append(Point(nil), points[farthest(points, cents)]...)
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			cents[c] = sums[c]
		}
		if prev-inertia < cfg.MinDelta && iter > 1 {
			break
		}
		prev = inertia
	}
	// Final assignment against the last update.
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, cent := range cents {
			if d := sqDist(p, cent); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	res.Centroids = cents
	res.Assignment = assign
	return res, nil
}

// seedPlusPlus implements k-means++ initialization: the first centroid is
// uniform, each next is sampled proportionally to squared distance from the
// nearest chosen centroid.
func seedPlusPlus(points []Point, k int, rng *rand.Rand) []Point {
	cents := make([]Point, 0, k)
	cents = append(cents, append(Point(nil), points[rng.Intn(len(points))]...))
	d2 := make([]float64, len(points))
	for len(cents) < k {
		var total float64
		for i, p := range points {
			d2[i] = sqDist(p, cents[0])
			for _, c := range cents[1:] {
				if d := sqDist(p, c); d < d2[i] {
					d2[i] = d
				}
			}
			total += d2[i]
		}
		if total == 0 {
			// All points identical to chosen centroids; duplicate one.
			cents = append(cents, append(Point(nil), points[0]...))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		cents = append(cents, append(Point(nil), points[pick]...))
	}
	return cents
}

func farthest(points []Point, cents []Point) int {
	best, bestD := 0, -1.0
	for i, p := range points {
		d := math.Inf(1)
		for _, c := range cents {
			if dd := sqDist(p, c); dd < d {
				d = dd
			}
		}
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func sqDist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SqDist exposes squared Euclidean distance for tests and callers.
func SqDist(a, b Point) float64 { return sqDist(a, b) }
