package chaos

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestChaosElasticSmoke runs the full schedule with fleet-elasticity chaos
// enabled on every topology: each round either performs a clean
// grow-then-drain cycle before its kill or draws one of the mid-scale-in
// instants, and both oracles must still pass.
func TestChaosElasticSmoke(t *testing.T) {
	for _, top := range Topologies {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology: top,
					Seed:     seed,
					Elastic:  true,
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				churned := false
				for _, rd := range res.RoundList {
					churned = churned || rd.Added >= 0 || rd.Drained >= 0
				}
				if !churned {
					t.Fatal("elastic chaos enabled but no round churned the fleet")
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosMidScaleInKill forces every round onto the mid-scale-in
// instant: a node is added, another starts draining its HAUs off via live
// migration, and the burst plus the draining node itself is killed while
// moves are in flight. The drain must abort or have retired the node, and
// the whole-application recovery must re-place each HAU exactly once —
// the exactly-once and state-equivalence oracles check that the draining
// node's HAUs are neither lost nor double-recovered.
func TestChaosMidScaleInKill(t *testing.T) {
	for _, top := range Topologies {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology: top,
					Seed:     seed,
					Elastic:  true,
					Points:   []InjectionPoint{KillMidScaleIn},
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				for i, rd := range res.RoundList {
					if rd.Point != KillMidScaleIn {
						t.Fatalf("round %d ran %s, want forced %s", i, rd.Point, KillMidScaleIn)
					}
					if rd.Drained < 0 || rd.DrainKill < 0 {
						t.Fatalf("round %d recorded no mid-drain kill: %+v", i, rd)
					}
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosScaleInDestKill forces every round onto the scale-in
// destination-kill instant: a drain starts and the burst plus the
// DESTINATION node of its in-flight migration is killed — the handoff
// target vanishes mid-move. The migration and the drain must abort (or
// the freshly-landed HAU must recover) without breaking either oracle.
func TestChaosScaleInDestKill(t *testing.T) {
	for _, top := range Topologies {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology: top,
					Seed:     seed,
					Elastic:  true,
					Points:   []InjectionPoint{KillScaleInDest},
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				for i, rd := range res.RoundList {
					if rd.Point != KillScaleInDest {
						t.Fatalf("round %d ran %s, want forced %s", i, rd.Point, KillScaleInDest)
					}
					if rd.Drained < 0 || rd.DestKill < 0 {
						t.Fatalf("round %d recorded no destination kill: %+v", i, rd)
					}
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosElasticReproducible pins seed replayability for elastic mode:
// two runs with the same configuration must draw the identical kill
// schedule. (Drain victims are picked from the live placement, which
// timing can shift, so only the rng-driven parts are pinned — the victim
// draw consumes a fixed number of draws either way.)
func TestChaosElasticReproducible(t *testing.T) {
	type schedule struct {
		Burst       []int
		SecondBurst []int
		Point       InjectionPoint
		ExtraKill   int
	}
	extract := func(res *Result) []schedule {
		out := make([]schedule, 0, len(res.RoundList))
		for _, rd := range res.RoundList {
			out = append(out, schedule{rd.Burst, rd.SecondBurst, rd.Point, rd.ExtraKill})
		}
		return out
	}
	cfg := Config{Topology: FanIn, Seed: 11, Rounds: 3, Elastic: true}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := extract(a), extract(b); !reflect.DeepEqual(sa, sb) {
		t.Fatalf("elastic mode: same seed produced different schedules:\n%+v\n%+v", sa, sb)
	}
}

// TestChaosElasticReplayCommand pins the replay invocation: an elastic
// run's failure output must name the -elastic flag, or the printed command
// would replay a different (smaller) sample space.
func TestChaosElasticReplayCommand(t *testing.T) {
	res := &Result{Topology: Chain, Seed: 5, Rounds: 3, Nodes: 4, Elastic: true}
	cmd := res.ReplayCommand()
	if !strings.Contains(cmd, " -elastic") {
		t.Fatalf("replay command %q does not carry -elastic", cmd)
	}
}
