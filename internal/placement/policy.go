package placement

import (
	"fmt"
	"sort"
	"time"
)

// HAUInfo is one HAU's placement and load as the cluster sees it.
type HAUInfo struct {
	Node       int
	StateBytes int64  // last sampled operator state size
	Processed  uint64 // cumulative tuples processed since start
	// Weight scales the HAU's load contributions by its application's
	// fairness weight, so a heavy tenant's HAUs look proportionally larger
	// to load-aware placement and the rebalancer. Zero means 1 (unweighted,
	// the single-tenant default).
	Weight float64
}

// weight returns the effective fairness weight (zero-value reads as 1).
func (i HAUInfo) weight() float64 {
	if i.Weight <= 0 {
		return 1
	}
	return i.Weight
}

// View is a consistent snapshot of the cluster a policy decides against:
// the failure-domain topology, node liveness, every HAU's current
// placement and load, and per-node cumulative disk busy time.
type View struct {
	Topo     Topology
	Alive    []bool
	HAUs     map[string]HAUInfo
	DiskBusy []time.Duration // per node, cumulative modelled busy time
}

// AliveNodes returns the indices of alive nodes in ascending order. When
// nothing is alive every node is returned — the caller is about to revive
// replacement hardware and a policy must still produce a placement.
func (v View) AliveNodes() []int {
	out := make([]int, 0, len(v.Alive))
	for i, a := range v.Alive {
		if a {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		for i := range v.Alive {
			out = append(out, i)
		}
	}
	return out
}

// Policy decides which node hosts each HAU. Initial placement, recovery
// re-placement, and rebalancer migrations all go through the active
// policy.
type Policy interface {
	Name() string
	// Assign places ids onto alive nodes. Entries of v.HAUs not in ids
	// are pinned context (they stay where they are); entries for the ids
	// themselves describe the placement being abandoned and are ignored.
	// The returned map holds a node for every id. Assign must be
	// deterministic in (ids, v).
	Assign(ids []string, v View) map[string]int
}

// Parse resolves a policy by name. The empty string selects round-robin
// (the historical default).
func Parse(name string) (Policy, error) {
	switch name {
	case "", "roundrobin", "rr":
		return RoundRobin{}, nil
	case "rackspread", "rack":
		return RackSpread{}, nil
	case "loadaware", "load":
		return LoadAware{}, nil
	default:
		return nil, fmt.Errorf("placement: unknown policy %q (want roundrobin, rackspread or loadaware)", name)
	}
}

// Names lists the accepted policy names for CLI help strings.
func Names() []string { return []string{"roundrobin", "rackspread", "loadaware"} }

// RoundRobin reproduces the cluster's original behaviour: ids in order
// onto alive nodes in index order. It ignores topology and load entirely —
// it is the baseline the failure-domain-aware policies are measured
// against.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "roundrobin" }

// Assign implements Policy.
func (RoundRobin) Assign(ids []string, v View) map[string]int {
	alive := v.AliveNodes()
	out := make(map[string]int, len(ids))
	for i, id := range ids {
		out[id] = alive[i%len(alive)]
	}
	return out
}

// RackSpread minimizes co-located HAUs of the application per failure
// domain: each id goes to the alive node in the least-loaded rack,
// counting both pinned HAUs and the ids already placed in this call.
// Greedy min-count placement keeps rack occupancies within one of each
// other, so no rack ever holds more than ⌈HAUs/aliveRacks⌉ of the app —
// the bound a single rack- or power-aligned burst can destroy.
type RackSpread struct{}

// Name implements Policy.
func (RackSpread) Name() string { return "rackspread" }

// Assign implements Policy.
func (RackSpread) Assign(ids []string, v View) map[string]int {
	alive := v.AliveNodes()
	moving := make(map[string]bool, len(ids))
	for _, id := range ids {
		moving[id] = true
	}
	rackCount := make(map[int]int)
	nodeCount := make(map[int]int)
	for id, info := range v.HAUs {
		if moving[id] {
			continue
		}
		if info.Node >= 0 && info.Node < len(v.Alive) && v.Alive[info.Node] {
			rackCount[v.Topo.RackOf(info.Node)]++
			nodeCount[info.Node]++
		}
	}
	out := make(map[string]int, len(ids))
	for _, id := range ids {
		best := -1
		for _, n := range alive {
			if best < 0 {
				best = n
				continue
			}
			rn, rb := v.Topo.RackOf(n), v.Topo.RackOf(best)
			switch {
			case rackCount[rn] < rackCount[rb]:
				best = n
			case rackCount[rn] == rackCount[rb] && nodeCount[n] < nodeCount[best]:
				best = n
			}
		}
		out[id] = best
		rackCount[v.Topo.RackOf(best)]++
		nodeCount[best]++
	}
	return out
}

// LoadAware balances nodes by observed load: state bytes (what a
// checkpoint writes and a recovery reloads), processed-tuple counts (CPU),
// and disk busy time. Each component is normalized to its cluster-wide
// total so the three units compose; HAU count breaks ties toward the
// emptier node. Within equal load it also prefers emptier racks, so it
// degrades toward rack-spread instead of toward packing.
type LoadAware struct{}

// Name implements Policy.
func (LoadAware) Name() string { return "loadaware" }

// Assign implements Policy.
func (LoadAware) Assign(ids []string, v View) map[string]int {
	alive := v.AliveNodes()
	moving := make(map[string]bool, len(ids))
	for _, id := range ids {
		moving[id] = true
	}
	state := make([]float64, len(v.Alive))
	procd := make([]float64, len(v.Alive))
	count := make([]int, len(v.Alive))
	rackCount := make(map[int]int)
	var stateTotal, procTotal, busyTotal float64
	for id, info := range v.HAUs {
		w := info.weight()
		stateTotal += w * float64(info.StateBytes)
		procTotal += w * float64(info.Processed)
		if moving[id] || info.Node < 0 || info.Node >= len(v.Alive) || !v.Alive[info.Node] {
			continue
		}
		state[info.Node] += w * float64(info.StateBytes)
		procd[info.Node] += w * float64(info.Processed)
		count[info.Node]++
		rackCount[v.Topo.RackOf(info.Node)]++
	}
	busy := make([]float64, len(v.Alive))
	for i := range v.DiskBusy {
		if i < len(busy) {
			busy[i] = float64(v.DiskBusy[i])
			busyTotal += busy[i]
		}
	}
	frac := func(x, total float64) float64 {
		if total <= 0 {
			return 0
		}
		return x / total
	}
	score := func(n int) float64 {
		return frac(state[n], stateTotal) + frac(procd[n], procTotal) + frac(busy[n], busyTotal)
	}
	// Place heavier HAUs first so the greedy fill packs well.
	order := append([]string(nil), ids...)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := v.HAUs[order[i]], v.HAUs[order[j]]
		if a.StateBytes != b.StateBytes {
			return a.StateBytes > b.StateBytes
		}
		return a.Processed > b.Processed
	})
	out := make(map[string]int, len(ids))
	for _, id := range order {
		best := -1
		for _, n := range alive {
			if best < 0 {
				best = n
				continue
			}
			sn, sb := score(n), score(best)
			switch {
			case sn < sb:
				best = n
			case sn == sb && count[n] < count[best]:
				best = n
			case sn == sb && count[n] == count[best] &&
				rackCount[v.Topo.RackOf(n)] < rackCount[v.Topo.RackOf(best)]:
				best = n
			}
		}
		out[id] = best
		info := v.HAUs[id]
		w := info.weight()
		state[best] += w * float64(info.StateBytes)
		procd[best] += w * float64(info.Processed)
		count[best]++
		rackCount[v.Topo.RackOf(best)]++
	}
	return out
}
