package partition

import (
	"math/rand"
	"testing"
)

// scrambled returns an assignment over slots with every slot owned by a
// random replica in [0, m).
func scrambled(rng *rand.Rand, slots, m int) *Assignment {
	a := NewAssignment(slots)
	a.replicas = m
	for s := range a.owner {
		a.owner[s] = rng.Intn(m)
	}
	return a
}

// TestRescaleWeightedUniformAgreesExactly is the satellite property test:
// on uniform weights RescaleWeighted must agree with plain Rescale slot for
// slot — it moves exactly the same (minimal) slot set. Randomized over
// slot-ring sizes, starting replica counts and targets.
func TestRescaleWeightedUniformAgreesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		slots := 1 + rng.Intn(512)
		m := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		base := scrambled(rng, slots, m)
		plain := base.Clone()
		weighted := base.Clone()
		level := int64(1 + rng.Intn(5)) // any constant weight, not just 1
		w := make(Weights, slots)
		for s := range w {
			w[s] = level
		}
		movedPlain := plain.Rescale(n)
		movedWeighted := weighted.RescaleWeighted(n, w)
		if len(movedPlain) != len(movedWeighted) {
			t.Fatalf("slots=%d m=%d n=%d: uniform weighted moved %d slots, plain moved %d",
				slots, m, n, len(movedWeighted), len(movedPlain))
		}
		for i := range movedPlain {
			if movedPlain[i] != movedWeighted[i] {
				t.Fatalf("slots=%d m=%d n=%d: moved sets differ at %d: %d vs %d",
					slots, m, n, i, movedWeighted[i], movedPlain[i])
			}
		}
		for s := 0; s < slots; s++ {
			if plain.Owner(s) != weighted.Owner(s) {
				t.Fatalf("slots=%d m=%d n=%d: owner of slot %d: weighted %d, plain %d",
					slots, m, n, s, weighted.Owner(s), plain.Owner(s))
			}
		}
	}
}

// TestRescaleWeightedNilDelegates checks the no-information fallbacks: nil,
// wrong-length and all-zero weights behave exactly like plain Rescale.
func TestRescaleWeightedNilDelegates(t *testing.T) {
	for _, w := range []Weights{nil, make(Weights, 10), make(Weights, DefaultSlots)} {
		a := NewAssignment(DefaultSlots)
		b := NewAssignment(DefaultSlots)
		a.Rescale(3)
		b.RescaleWeighted(3, w)
		for s := 0; s < DefaultSlots; s++ {
			if a.Owner(s) != b.Owner(s) {
				t.Fatalf("weights %v: slot %d owner %d, want %d", w, s, b.Owner(s), a.Owner(s))
			}
		}
	}
}

// TestRescaleWeightedBalancesSkew: a Zipf-ish skewed weight vector must end
// up measurably better balanced under RescaleWeighted than under the
// count-balanced Rescale, and the invariants (every slot owned by a live
// replica, replica count updated) must hold.
func TestRescaleWeightedBalancesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		slots := 64 + rng.Intn(512)
		n := 2 + rng.Intn(7)
		w := make(Weights, slots)
		for s := range w {
			w[s] = int64(rng.Intn(3)) // long cold tail, some zero slots
		}
		// A few hot slots dominate.
		for h := 0; h < 1+rng.Intn(4); h++ {
			w[rng.Intn(slots)] = int64(1000 + rng.Intn(5000))
		}
		count := NewAssignment(slots)
		count.Rescale(n)
		weighted := NewAssignment(slots)
		weighted.RescaleWeighted(n, w)
		if weighted.Replicas() != n {
			t.Fatalf("replicas = %d, want %d", weighted.Replicas(), n)
		}
		for s := 0; s < slots; s++ {
			if o := weighted.Owner(s); o < 0 || o >= n {
				t.Fatalf("slot %d owned by %d, out of range [0,%d)", s, o, n)
			}
		}
		rc := ImbalanceRatio(count.LoadOf(w))
		rw := ImbalanceRatio(weighted.LoadOf(w))
		if rw > rc+1e-9 {
			t.Fatalf("slots=%d n=%d: weighted imbalance %.3f worse than count-balanced %.3f", slots, n, rw, rc)
		}
	}
}

// TestRescaleWeightedZeroWeightSlotsStayPut: slots that carry no load never
// move off a surviving owner — the minimal-move property for don't-care
// slots.
func TestRescaleWeightedZeroWeightSlotsStayPut(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		slots := 32 + rng.Intn(256)
		m := 1 + rng.Intn(4)
		n := m + 1 + rng.Intn(4) // grow: every old owner survives
		a := scrambled(rng, slots, m)
		before := append([]int(nil), a.owner...)
		w := make(Weights, slots)
		for s := range w {
			if rng.Intn(2) == 0 {
				w[s] = int64(1 + rng.Intn(100))
			}
		}
		w[rng.Intn(slots)] = 10000 // ensure non-uniform
		a.RescaleWeighted(n, w)
		for s := 0; s < slots; s++ {
			if w[s] == 0 && a.Owner(s) != before[s] {
				t.Fatalf("zero-weight slot %d moved %d -> %d", s, before[s], a.Owner(s))
			}
		}
	}
}

// TestRebalanceReducesImbalance: on a skewed table Rebalance must not
// increase the imbalance ratio, must keep the replica count, and must only
// move slots with positive weight.
func TestRebalanceReducesImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		slots := 32 + rng.Intn(512)
		n := 2 + rng.Intn(7)
		a := scrambled(rng, slots, n)
		before := append([]int(nil), a.owner...)
		w := make(Weights, slots)
		for s := range w {
			w[s] = int64(rng.Intn(50))
		}
		pre := ImbalanceRatio(a.LoadOf(w))
		moved := a.Rebalance(w)
		post := ImbalanceRatio(a.LoadOf(w))
		if a.Replicas() != n {
			t.Fatalf("replicas changed %d -> %d", n, a.Replicas())
		}
		if post > pre+1e-9 {
			t.Fatalf("rebalance worsened imbalance %.4f -> %.4f", pre, post)
		}
		movedSet := make(map[int]bool, len(moved))
		for _, s := range moved {
			movedSet[s] = true
		}
		for s := 0; s < slots; s++ {
			if a.Owner(s) != before[s] && !movedSet[s] {
				t.Fatalf("slot %d moved but not reported", s)
			}
			if movedSet[s] && w[s] <= 0 {
				t.Fatalf("zero-weight slot %d moved", s)
			}
		}
	}
}

// TestRebalanceConvergesOnHotSlotDrift models the drifting-hotspot
// scenario: a table balanced for yesterday's hotspot sees today's traffic
// concentrated elsewhere; one Rebalance pass must bring the ratio down to
// what slot granularity allows (here well under 1.25).
func TestRebalanceConvergesOnHotSlotDrift(t *testing.T) {
	a := NewAssignment(DefaultSlots)
	a.Rescale(4)
	w := make(Weights, DefaultSlots)
	for s := range w {
		w[s] = 10
	}
	// Today's hot range: 8 slots that all landed on replica 0's count-
	// balanced share, carrying ~80% of the traffic.
	for s := 0; s < 8; s++ {
		w[s] = 1500
	}
	if pre := ImbalanceRatio(a.LoadOf(w)); pre < 2 {
		t.Fatalf("scenario not skewed enough: pre ratio %.2f", pre)
	}
	moved := a.Rebalance(w)
	if len(moved) == 0 {
		t.Fatal("rebalance moved nothing on a skewed table")
	}
	if post := ImbalanceRatio(a.LoadOf(w)); post > 1.25 {
		t.Fatalf("post-rebalance imbalance %.3f > 1.25", post)
	}
}

// TestRebalanceNoOps: unsplit tables, nil weights and zero totals are
// no-ops.
func TestRebalanceNoOps(t *testing.T) {
	a := NewAssignment(DefaultSlots)
	if moved := a.Rebalance(make(Weights, DefaultSlots)); moved != nil {
		t.Fatalf("unsplit rebalance moved %v", moved)
	}
	a.Rescale(3)
	if moved := a.Rebalance(nil); moved != nil {
		t.Fatalf("nil-weight rebalance moved %v", moved)
	}
	if moved := a.Rebalance(make(Weights, DefaultSlots)); moved != nil {
		t.Fatalf("zero-weight rebalance moved %v", moved)
	}
}

// TestRouterLoads: routed tuples are counted against the right slots,
// survive a same-size Update, and reset on a ring-size change.
func TestRouterLoads(t *testing.T) {
	a := NewAssignment(16)
	a.Rescale(2)
	r := NewRouter(a)
	keys := []string{"alpha", "beta", "gamma", "alpha", "alpha"}
	for _, k := range keys {
		r.Route(k)
	}
	w := r.Loads()
	if got := w.Total(); got != int64(len(keys)) {
		t.Fatalf("total routed %d, want %d", got, len(keys))
	}
	if got := w[SlotOf("alpha", 16)]; got != 3 {
		t.Fatalf("alpha slot counted %d, want 3", got)
	}
	r.Update(a) // same ring size: counters survive
	if got := r.Loads().Total(); got != int64(len(keys)) {
		t.Fatalf("after same-size update total %d, want %d", got, len(keys))
	}
	r.Update(NewAssignment(32)) // ring-size change: counters reset
	if got := r.Loads().Total(); got != 0 {
		t.Fatalf("after resize total %d, want 0", got)
	}
}

// TestWeightsSub covers the windowed-delta helper, including the
// router-replaced case (shorter prev).
func TestWeightsSub(t *testing.T) {
	cur := Weights{10, 5, 7}
	prev := Weights{4, 9, 7}
	d := cur.Sub(prev)
	if d[0] != 6 || d[1] != 5 || d[2] != 0 {
		t.Fatalf("delta = %v, want [6 5 0]", d)
	}
	if d := cur.Sub(nil); d[0] != 10 || d[1] != 5 || d[2] != 7 {
		t.Fatalf("delta vs nil = %v", d)
	}
}

// TestImbalanceRatioAndShares pins down the summary-stat semantics used by
// the autoscaler trigger and msrun output.
func TestImbalanceRatioAndShares(t *testing.T) {
	if r := ImbalanceRatio([]int64{100, 100, 100, 100}); r != 1 {
		t.Fatalf("balanced ratio %v, want 1", r)
	}
	if r := ImbalanceRatio([]int64{400, 0, 0, 0}); r != 4 {
		t.Fatalf("worst-case ratio %v, want 4", r)
	}
	if r := ImbalanceRatio(nil); r != 1 {
		t.Fatalf("empty ratio %v, want 1", r)
	}
	sh := Shares([]int64{30, 10})
	if sh[0] != 0.75 || sh[1] != 0.25 {
		t.Fatalf("shares %v, want [0.75 0.25]", sh)
	}
}

// TestSlotBytes: the per-slot state-byte estimate tracks the encoded
// table's payload lengths and ignores non-table buffers.
func TestSlotBytes(t *testing.T) {
	table := AppendTable(nil, []byte("res"), [][]byte{nil, []byte("abc"), []byte("zz")})
	w := SlotBytes(table)
	if len(w) != 3 || w[0] != 0 || w[1] != 3 || w[2] != 2 {
		t.Fatalf("slot bytes %v, want [0 3 2]", w)
	}
	if w := SlotBytes([]byte("not a table")); w != nil {
		t.Fatalf("non-table slot bytes %v, want nil", w)
	}
}

// BenchmarkRouterRoute is the split-path cost guard: one Route call —
// slot hash, owner lookup, and the sharded load-counter bump — must stay
// allocation-free and a few tens of nanoseconds, since it sits on every
// tuple an upstream forwards to a split operator.
func BenchmarkRouterRoute(b *testing.B) {
	a := NewAssignment(DefaultSlots)
	a.Rescale(4)
	r := NewRouter(a)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "bench-key-" + string(rune('a'+i%26)) + string(rune('0'+i%10))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r.Route(keys[i&63])
			i++
		}
	})
}
