package operator

import (
	"encoding/binary"
	"errors"
	"math/rand"

	"meteorshower/internal/tuple"
)

// PayloadFn builds the payload and key for the i-th tuple of a source.
type PayloadFn func(id uint64, rng *rand.Rand) (key string, data []byte)

// RateSource generates tuples at a fixed average rate. It models the
// paper's data sources (base stations, cameras, on-vehicle sensors,
// iPhones): "a large number of data sources and at each data source the
// input data rate is low".
//
// Generation is deterministic given the seed and tuple id, so a restarted
// source regenerates the identical stream — required for recovery to be
// exact.
type RateSource struct {
	Base
	ID        string  // source HAU id stamped into tuples
	RatePerMS float64 // average tuples per simulated millisecond
	Payload   PayloadFn
	Seed      int64
	// CatchUpCap bounds how many tuples one Generate call may emit, so a
	// recovering application drains its backlog gradually ("it can
	// process the replayed tuples faster than usual to catch up").
	CatchUpCap int
	// MaxRate makes the source elastic: every Generate call offers
	// CatchUpCap tuples and downstream backpressure does the pacing —
	// modelling the paper's evaluation sources, which replay recorded
	// datasets as fast as the system absorbs them.
	MaxRate bool
	// Limit, when non-zero, stops generation once the cursor reaches it:
	// the source emits exactly the ids [0, Limit). A bounded stream gives
	// the chaos harness and the replay-equivalence tests a quiescent end
	// state to compare against.
	Limit uint64
	// RateFn, when set, makes the rate time-varying: it is evaluated at
	// every Generate call with the current clock and overrides RatePerMS.
	// Workload scenarios (diurnal curves, flash crowds) shape load with it;
	// tuple CONTENT stays a pure function of id, so bounded runs remain
	// replay-identical — only the emission timing moves.
	RateFn func(nowNS int64) float64

	nextID  uint64
	started bool
	credit  float64 // fractional tuples carried between calls
	lastNS  int64
	rng     *rand.Rand // reused across tuples, re-seeded per tuple

	snapped bool   // an AppendSnapshot encoding exists
	snapID  uint64 // cursor value it captured
}

// NewRateSource returns a source emitting ratePerMS tuples per millisecond.
func NewRateSource(id string, ratePerMS float64, seed int64, payload PayloadFn) *RateSource {
	return &RateSource{
		Base:       Base{OpName: id},
		ID:         id,
		RatePerMS:  ratePerMS,
		Payload:    payload,
		Seed:       seed,
		CatchUpCap: 256,
	}
}

// OnTuple is never called on a source (sources have no inputs).
func (s *RateSource) OnTuple(int, *tuple.Tuple, Emitter) error {
	return errors.New("source: received input tuple")
}

// Generate emits the tuples scheduled between the previous call and now.
func (s *RateSource) Generate(now int64) []*tuple.Tuple {
	if !s.started {
		s.started = true
		s.lastNS = now
		return nil
	}
	elapsedMS := float64(now-s.lastNS) / 1e6
	s.lastNS = now
	var n int
	if s.MaxRate {
		n = s.CatchUpCap
		if n <= 0 {
			n = 1
		}
	} else {
		rate := s.RatePerMS
		if s.RateFn != nil {
			rate = s.RateFn(now)
		}
		s.credit += elapsedMS * rate
		n = int(s.credit)
		if n <= 0 {
			return nil
		}
		if s.CatchUpCap > 0 && n > s.CatchUpCap {
			n = s.CatchUpCap
		}
		s.credit -= float64(n)
	}
	if s.Limit > 0 {
		if s.nextID >= s.Limit {
			return nil
		}
		if left := s.Limit - s.nextID; uint64(n) > left {
			n = int(left)
		}
	}
	if s.rng == nil {
		s.rng = rand.New(new(splitmix64))
	}
	out := make([]*tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		id := s.nextID
		s.nextID++
		// Re-keying the generator per tuple keeps regeneration
		// deterministic from any id, and splitmix64 makes the reseed O(1)
		// (math/rand's own source refills a 607-word table per Seed).
		s.rng.Seed(s.Seed ^ int64(id*2654435761))
		key, data := s.Payload(id, s.rng)
		out = append(out, tuple.NewAt(id, s.ID, key, now, data))
	}
	return out
}

// splitmix64 is a tiny rand.Source64 whose Seed is a single word store.
// Sources re-key it for every tuple, so constant-time seeding matters far
// more than period; splitmix64 passes BigCrush and is the standard
// seeder/stream-splitter for exactly this use.
type splitmix64 struct{ s uint64 }

func (m *splitmix64) Seed(seed int64) { m.s = uint64(seed) }

func (m *splitmix64) Uint64() uint64 {
	m.s += 0x9E3779B97F4A7C15
	z := m.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (m *splitmix64) Int63() int64 { return int64(m.Uint64() >> 1) }

// SkipPast advances the generator cursor past lastID. Recovery calls this
// after replaying preserved tuples so the source does not regenerate them.
func (s *RateSource) SkipPast(lastID uint64) {
	if lastID+1 > s.nextID {
		s.nextID = lastID + 1
	}
}

// NextID returns the id the next generated tuple will carry.
func (s *RateSource) NextID() uint64 { return s.nextID }

// Exhausted reports whether a bounded source has emitted its whole stream.
func (s *RateSource) Exhausted() bool { return s.Limit > 0 && s.nextID >= s.Limit }

// StateSize of a source is its fixed cursor block.
func (s *RateSource) StateSize() int64 { return 32 }

// Snapshot serializes the generation cursor.
func (s *RateSource) Snapshot() ([]byte, error) {
	buf := make([]byte, 0, 24)
	buf = binary.LittleEndian.AppendUint64(buf, s.nextID)
	buf = binary.LittleEndian.AppendUint64(buf, 0) // reserved
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.lastNS))
	return buf, nil
}

// AppendSnapshot implements IncrementalSnapshotter. Only the cursor
// survives a restore (Restore resets the clock fields), so the incremental
// encoding zeroes them: a source that generated nothing since the previous
// epoch is byte-identical and contributes no freeze cost.
func (s *RateSource) AppendSnapshot(buf []byte) ([]byte, bool, error) {
	if s.snapped && s.snapID == s.nextID {
		return buf, false, nil
	}
	s.snapped = true
	s.snapID = s.nextID
	buf = binary.LittleEndian.AppendUint64(buf, s.nextID)
	buf = binary.LittleEndian.AppendUint64(buf, 0) // reserved
	buf = binary.LittleEndian.AppendUint64(buf, 0) // clock field, reset on restore
	return buf, true, nil
}

// Restore rebuilds the cursor. The time fields are reset so a restarted
// source resumes cleanly on the recovering node's clock.
func (s *RateSource) Restore(buf []byte) error {
	s.snapped = false
	if len(buf) < 24 {
		return errors.New("source: short snapshot")
	}
	s.nextID = binary.LittleEndian.Uint64(buf)
	s.started = false
	s.lastNS = 0
	s.credit = 0
	return nil
}

// BytePayload returns a PayloadFn producing fixed-size opaque payloads with
// a key drawn from nKeys buckets.
func BytePayload(size, nKeys int) PayloadFn {
	return func(id uint64, rng *rand.Rand) (string, []byte) {
		data := make([]byte, size)
		rng.Read(data)
		return "k" + itoa(int(id)%nKeys), data
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
