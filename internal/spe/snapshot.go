package spe

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// snapshotMagic marks a version-2 section-table checkpoint blob. A v1 blob
// begins with the HAU's out-port count, which is always tiny, so the first
// u32 distinguishes the layouts unambiguously.
const snapshotMagic uint32 = 0x4d535632 // "MSV2"

// sectionBuf is a reference-counted encode buffer holding one section of a
// checkpoint blob. Sections are shared between the HAU's per-operator cache
// and any in-flight checkpoint snapshots, so a buffer returns to the pool
// only when the last holder releases it — and a dirty re-encode always goes
// into a fresh buffer, never into one a previous epoch may still be
// flattening.
type sectionBuf struct {
	b      []byte
	refs   atomic.Int32
	pooled bool
}

var sectionPool = sync.Pool{New: func() any { return &sectionBuf{pooled: true} }}

// getSection returns an empty pooled buffer with one reference.
func getSection() *sectionBuf {
	s := sectionPool.Get().(*sectionBuf)
	s.b = s.b[:0]
	s.refs.Store(1)
	return s
}

// newSection wraps caller-owned bytes (the Snapshot() fallback path) with
// one reference. It never returns to the pool.
func newSection(b []byte) *sectionBuf {
	s := &sectionBuf{b: b}
	s.refs.Store(1)
	return s
}

func (s *sectionBuf) retain() { s.refs.Add(1) }

func (s *sectionBuf) release() {
	if s.refs.Add(-1) == 0 && s.pooled {
		sectionPool.Put(s)
	}
}

// stateSnapshot is the on-loop capture of an HAU's state: the runtime
// section (counters, retained tuples) plus one section per operator, each
// either freshly encoded or a retained reference to the cached encoding of
// an unchanged operator. Capturing is the freeze window; flattening into a
// contiguous blob happens off-loop on the checkpoint writer.
type stateSnapshot struct {
	sections []*sectionBuf
	dirty    int64 // bytes re-encoded during capture
}

// flatLen returns the length of the flattened blob.
func (s *stateSnapshot) flatLen() int {
	n := 8 + 4*len(s.sections)
	for _, sec := range s.sections {
		n += len(sec.b)
	}
	return n
}

// flatten serializes the snapshot into a fresh contiguous v2 blob:
//
//	u32 magic; u32 nSections; nSections x u32 sectionLen; payloads
//
// The result is newly allocated and never pooled, so it can be handed to
// the store and kept as the delta base without copies.
func (s *stateSnapshot) flatten() []byte {
	out := make([]byte, 0, s.flatLen())
	out = binary.LittleEndian.AppendUint32(out, snapshotMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.sections)))
	for _, sec := range s.sections {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(sec.b)))
	}
	for _, sec := range s.sections {
		out = append(out, sec.b...)
	}
	return out
}

// release drops the snapshot's section references.
func (s *stateSnapshot) release() {
	for i, sec := range s.sections {
		sec.release()
		s.sections[i] = nil
	}
	s.sections = nil
}
