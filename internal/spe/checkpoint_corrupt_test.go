package spe

import (
	"encoding/binary"
	"testing"

	"meteorshower/internal/operator"
	"meteorshower/internal/tuple"
)

// mkRestorable builds an HAU with 1 in, 1 out and a counter op.
func mkRestorable(t testing.TB) *HAU {
	t.Helper()
	h, err := New(Config{
		ID: "H", Scheme: MSSrcAP, Ops: []operator.Operator{operator.NewCounter("c")},
		In:  []*Edge{NewEdge("a", "H", 0)},
		Out: []*Edge{NewEdge("H", "z", 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRestoreFromTruncatedEverywhere(t *testing.T) {
	src := mkRestorable(t)
	src.outSeq[0] = 5
	src.lastInSeq[0] = 3
	src.lastSrcID[0]["S"] = 9
	blob := src.SnapshotNow()
	// Every proper prefix must be rejected, never panic.
	for cut := 0; cut < len(blob); cut++ {
		h := mkRestorable(t)
		if err := h.RestoreFrom(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(blob))
		}
	}
	// The full blob restores.
	h := mkRestorable(t)
	if err := h.RestoreFrom(blob); err != nil {
		t.Fatal(err)
	}
	if h.lastSrcID[0]["S"] != 9 {
		t.Fatal("per-source dedup state not restored")
	}
}

func TestRestoreFromCorruptRetainedTuple(t *testing.T) {
	src := mkRestorable(t)
	src.retained = []retainedTuple{{port: 0, t: tuple.New(1, "S", "k", []byte("x"))}}
	blob := src.SnapshotNow()
	// Find the retained tuple bytes and corrupt the magic.
	// v2 header: magic(4), nSections(4), 2 section lengths (4 each).
	// Runtime section: outSeq(4+8), inSeq(4+8), srcIDs(4), epoch(8),
	// nRetained(4), port(4), len(4), then the tuple encoding.
	off := 4 + 4 + 2*4 + 4 + 8 + 4 + 8 + 4 + 8 + 4 + 4 + 4
	if off+2 > len(blob) {
		t.Fatalf("layout assumption broken: blob %d bytes", len(blob))
	}
	bad := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint16(bad[off:], 0xBEEF)
	h := mkRestorable(t)
	if err := h.RestoreFrom(bad); err == nil {
		t.Fatal("corrupt retained tuple accepted")
	}
}

func TestRestoreFromOpCountMismatch(t *testing.T) {
	src := mkRestorable(t)
	blob := src.SnapshotNow()
	h2, err := New(Config{
		ID: "H", Scheme: MSSrcAP,
		Ops: []operator.Operator{operator.NewCounter("c"), operator.NewCounter("c2")},
		In:  []*Edge{NewEdge("a", "H", 0)},
		Out: []*Edge{NewEdge("H", "z", 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.RestoreFrom(blob); err == nil {
		t.Fatal("op count mismatch accepted")
	}
}
