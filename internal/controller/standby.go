package controller

import (
	"sync"
	"time"

	"meteorshower/internal/spe"
	"meteorshower/internal/statesize"
)

// State is the controller's replicable state: everything a standby needs
// to take over mid-run without reusing epoch numbers or re-profiling. The
// paper notes "the controller is not necessarily a single point of
// failure. Hot standby architecture [17] and active standby technique [18]
// can provide redundancy for the controller" (§III-A).
type State struct {
	Epoch     uint64
	Profile   statesize.Profile
	Dynamic   []string
	LastPrune uint64
}

// ExportState snapshots the replicable state.
func (c *Controller) ExportState() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := State{
		Epoch:     c.epoch,
		Profile:   c.cfg.Profile,
		LastPrune: c.lastPrune,
	}
	for id := range c.dynamic {
		st.Dynamic = append(st.Dynamic, id)
	}
	return st
}

// ImportState installs a replicated snapshot (the promoted standby's first
// act). Epoch only moves forward so a stale snapshot cannot cause epoch
// reuse.
func (c *Controller) ImportState(st State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st.Epoch > c.epoch {
		c.epoch = st.Epoch
	}
	if st.Profile.Smax > 0 {
		c.cfg.Profile = st.Profile
	}
	if st.LastPrune > c.lastPrune {
		c.lastPrune = st.LastPrune
	}
	c.dynamic = make(map[string]bool, len(st.Dynamic))
	for _, id := range st.Dynamic {
		c.dynamic[id] = true
	}
}

// Standby is a warm replica of a primary controller: it periodically pulls
// the primary's state and can be promoted into a full controller when the
// primary's node fails.
type Standby struct {
	cfg Config

	mu   sync.Mutex
	last State
	haus map[string]*spe.HAU
}

// NewStandby returns a standby that will take over with cfg (typically the
// same Config the primary was built with).
func NewStandby(cfg Config) *Standby {
	return &Standby{cfg: cfg, haus: make(map[string]*spe.HAU)}
}

// Sync replicates the primary's current state and HAU registry into the
// standby. Production systems ship this over the network; the simulation
// calls it on a timer.
func (s *Standby) Sync(primary *Controller) {
	st := primary.ExportState()
	haus := primary.hauSnapshot()
	s.mu.Lock()
	if st.Epoch >= s.last.Epoch {
		s.last = st
	}
	s.haus = haus
	s.mu.Unlock()
}

// LastSynced returns the most recent replicated state.
func (s *Standby) LastSynced() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Promote builds a fresh controller from the replicated state. The caller
// starts its Run loop; epoch numbering continues from the last sync, so
// checkpoints initiated by the old primary are never repeated.
func (s *Standby) Promote() *Controller {
	s.mu.Lock()
	st := s.last
	haus := make(map[string]*spe.HAU, len(s.haus))
	for id, h := range s.haus {
		haus[id] = h
	}
	s.mu.Unlock()

	c := New(s.cfg)
	c.SetHAUs(haus)
	c.ImportState(st)
	return c
}

// SyncEvery runs Sync on a ticker until stop is closed — the standby's
// replication loop.
func (s *Standby) SyncEvery(primary *Controller, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.Sync(primary)
		}
	}
}
