// Command msscale benchmarks keyed-state re-partitioning and regenerates
// BENCH_rescale.json. Two experiments:
//
//  1. Split/merge downtime vs state size: a sharded operator carrying a
//     padded slot table (64 KB – 4 MB) is split across two replicas and
//     merged back, recording the drain / re-shard / restore / downtime
//     decomposition of each direction.
//
//  2. Throughput vs replica count: a compute-bound Pair stage fed a
//     skewed-key TMI workload by elastic sources is run whole, split 2
//     ways and split 4 ways; the sink delivery rate over a fixed window
//     shows how splitting a hot operator raises application throughput.
//
//     msscale                 # full run, writes BENCH_rescale.json
//     msscale -out -          # print JSON to stdout instead
//     msscale -quick          # reduced grids (CI smoke)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/cluster"
	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/partition"
	"meteorshower/internal/placement"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

func main() {
	var (
		out    = flag.String("out", "BENCH_rescale.json", `output path; "-" prints to stdout`)
		window = flag.Duration("window", 600*time.Millisecond, "sink-rate measurement window for the throughput experiment")
		workNS = flag.Int64("work-ns", 50000, "per-tuple service time in the Pair stage (models a compute-bound operator)")
		quick  = flag.Bool("quick", false, "reduced grids")
	)
	flag.Parse()

	pads := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	reps := []int{1, 2, 4}
	if *quick {
		pads = []int{64 << 10, 1 << 20}
		reps = []int{1, 2}
		if *window > 250*time.Millisecond {
			*window = 250 * time.Millisecond
		}
	}

	doc := map[string]any{
		"benchmark": "rescale",
		"environment": map[string]string{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
		},
		"regenerate": "go run ./cmd/msscale",
	}

	fmt.Fprintln(os.Stderr, "== split/merge downtime vs state size ==")
	down, err := rescaleDowntime(pads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msscale: downtime experiment: %v\n", err)
		os.Exit(1)
	}
	doc["rescale_downtime"] = down

	fmt.Fprintln(os.Stderr, "== throughput vs replica count, skewed-key pair stage ==")
	tput, err := throughputVsReplicas(reps, *window, *workNS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msscale: throughput experiment: %v\n", err)
		os.Exit(1)
	}
	doc["throughput_vs_replicas"] = tput

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "msscale: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "msscale: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func fastDisk() storage.DiskSpec {
	return storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond, TimeScale: 0}
}

// shardOp is a pass-through operator whose keyed state is a padded slot
// table — the state-size knob for the downtime experiment. Each slot
// carries total/slots bytes, so a 2-way split moves half the pad to each
// replica.
type shardOp struct {
	operator.Base
	slots [][]byte
}

func newShardOp(name string, total int) *shardOp {
	s := make([][]byte, partition.DefaultSlots)
	per := total / partition.DefaultSlots
	for i := range s {
		s[i] = make([]byte, per)
	}
	return &shardOp{Base: operator.Base{OpName: name}, slots: s}
}

func (o *shardOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	emit(0, t)
	return nil
}

func (o *shardOp) StateSize() int64 {
	var n int64
	for _, sl := range o.slots {
		n += int64(len(sl))
	}
	return n
}

// PartitionSlots implements operator.PartitionedState.
func (o *shardOp) PartitionSlots() int { return partition.DefaultSlots }

func (o *shardOp) Snapshot() ([]byte, error) {
	return partition.AppendTable(nil, nil, o.slots), nil
}

func (o *shardOp) Restore(buf []byte) error {
	if !partition.IsTable(buf) {
		return errors.New("shardOp: snapshot is not a slot table")
	}
	_, slots, err := partition.ParseTable(buf)
	if err != nil {
		return err
	}
	o.slots = slots
	return nil
}

type phaseMS struct {
	MovedBytes int64   `json:"moved_bytes"`
	DrainMS    float64 `json:"drain_ms"`
	ReshardMS  float64 `json:"reshard_ms"`
	RestoreMS  float64 `json:"restore_ms"`
	DowntimeMS float64 `json:"downtime_ms"`
}

func toPhaseMS(st cluster.RescaleStats) phaseMS {
	return phaseMS{
		MovedBytes: st.Bytes,
		DrainMS:    float64(st.Drain.Microseconds()) / 1000,
		ReshardMS:  float64(st.Reshard.Microseconds()) / 1000,
		RestoreMS:  float64(st.Restore.Microseconds()) / 1000,
		DowntimeMS: float64(st.Downtime.Microseconds()) / 1000,
	}
}

type downtimePoint struct {
	StateBytes int64   `json:"state_bytes"`
	Split      phaseMS `json:"split"`
	Merge      phaseMS `json:"merge"`
}

// rescaleDowntime splits and re-merges a padded sharded operator once per
// state size and records both directions' timing decomposition.
func rescaleDowntime(pads []int) ([]downtimePoint, error) {
	var out []downtimePoint
	for _, pad := range pads {
		split, merge, err := oneDowntimeTrial(pad)
		if err != nil {
			return nil, fmt.Errorf("pad %d: %w", pad, err)
		}
		out = append(out, downtimePoint{StateBytes: int64(pad), Split: toPhaseMS(split), Merge: toPhaseMS(merge)})
		fmt.Fprintf(os.Stderr, "  state %8d B: split downtime %7.3f ms (drain %7.3f), merge downtime %7.3f ms (drain %7.3f)\n",
			pad, float64(split.Downtime.Microseconds())/1000, float64(split.Drain.Microseconds())/1000,
			float64(merge.Downtime.Microseconds())/1000, float64(merge.Drain.Microseconds())/1000)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StateBytes < out[j].StateBytes })
	return out, nil
}

func oneDowntimeTrial(pad int) (cluster.RescaleStats, cluster.RescaleStats, error) {
	var zero cluster.RescaleStats
	g := graph.New()
	g.MustAddNode("S")
	g.MustAddNode("P")
	g.MustAddNode("K")
	g.MustAddEdge("S", "P")
	g.MustAddEdge("P", "K")
	spec := cluster.AppSpec{
		Name:  "scalebench",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id[0] {
			case 'S':
				return []operator.Operator{operator.NewRateSource("S", 100, 1, operator.BytePayload(64, 16))}
			case 'P':
				return []operator.Operator{newShardOp(id, pad)}
			default:
				return []operator.Operator{operator.NewSink("K", nil)}
			}
		},
	}
	cl, err := cluster.New(cluster.Config{
		App:           spec,
		Scheme:        spe.MSSrcAP,
		Nodes:         4,
		NodesPerRack:  2,
		Placement:     placement.RackSpread{},
		LocalDiskSpec: fastDisk(),
		SharedSpec:    fastDisk(),
		TickEvery:     time.Millisecond,
		SourceFlush:   256,
		Seed:          1,
	})
	if err != nil {
		return zero, zero, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		return zero, zero, err
	}
	defer cl.StopAll()
	if err := waitFor(10*time.Second, func() bool { return cl.ProcessedTotal() > 100 }); err != nil {
		return zero, zero, fmt.Errorf("stream never warmed up: %w", err)
	}
	split, err := cl.SplitHAU(ctx, "P", 2)
	if err != nil {
		return zero, zero, fmt.Errorf("split: %w", err)
	}
	if err := waitFor(10*time.Second, func() bool { return cl.ProcessedTotal() > 400 }); err != nil {
		return zero, zero, fmt.Errorf("stream stalled after split: %w", err)
	}
	merge, err := cl.MergeHAU(ctx, "P")
	if err != nil {
		return zero, zero, fmt.Errorf("merge: %w", err)
	}
	return split, merge, nil
}

// skewedPositions generates a hot-key-heavy TMI position stream: 80% of a
// source's tuples land on 32 hot phones, the rest spread over 256 cold
// ones — skewed enough that per-key state is far from uniform, wide
// enough that the hot set straddles every replica's slot range. Keys are
// per-source so the two sources' timestamp sequences never interleave on
// one phone.
func skewedPositions(srcIdx int) operator.PayloadFn {
	hot := "ph" + fmt.Sprint(srcIdx) + "-hot-"
	cold := "ph" + fmt.Sprint(srcIdx) + "-"
	return func(id uint64, rng *rand.Rand) (string, []byte) {
		var key string
		if rng.Float64() < 0.8 {
			key = hot + fmt.Sprint(id%32)
		} else {
			key = cold + fmt.Sprint(id%256)
		}
		pos := apps.Position{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, TsMS: int64(id)}
		return key, pos.Encode()
	}
}

type throughputPoint struct {
	Replicas    int     `json:"replicas"`
	WindowMS    float64 `json:"window_ms"`
	SinkTuples  uint64  `json:"sink_tuples"`
	TuplesPerMS float64 `json:"tuples_per_ms"`
	SpeedupVs1  float64 `json:"speedup_vs_1"`
}

// throughputVsReplicas runs the skewed-key pair stage whole and split
// n ways, measuring the sink delivery rate over the window each time.
func throughputVsReplicas(reps []int, window time.Duration, workNS int64) ([]throughputPoint, error) {
	var out []throughputPoint
	var base float64
	for _, n := range reps {
		rate, err := oneThroughputTrial(n, window, workNS)
		if err != nil {
			return nil, fmt.Errorf("%d replica(s): %w", n, err)
		}
		pt := throughputPoint{
			Replicas:    n,
			WindowMS:    float64(window.Microseconds()) / 1000,
			SinkTuples:  uint64(rate * float64(window.Milliseconds())),
			TuplesPerMS: rate,
		}
		if base == 0 {
			base = rate
		}
		pt.SpeedupVs1 = rate / base
		out = append(out, pt)
		fmt.Fprintf(os.Stderr, "  %d replica(s): %.1f tuples/ms (%.2fx)\n", n, rate, pt.SpeedupVs1)
	}
	return out, nil
}

func oneThroughputTrial(replicas int, window time.Duration, workNS int64) (float64, error) {
	g := graph.New()
	g.MustAddNode("S0")
	g.MustAddNode("S1")
	g.MustAddNode("P")
	g.MustAddNode("K")
	g.MustAddEdge("S0", "P")
	g.MustAddEdge("S1", "P")
	g.MustAddEdge("P", "K")
	col := metrics.NewCollector()
	spec := cluster.AppSpec{
		Name:  "scaletput",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id[0] {
			case 'S':
				idx := int(id[1] - '0')
				src := operator.NewRateSource(id, 64, int64(idx+1), skewedPositions(idx))
				src.MaxRate = true
				// The sources must offer far more than one Pair replica
				// absorbs, or the measurement is source-bound and replica
				// count cannot matter.
				src.CatchUpCap = 256
				return []operator.Operator{src}
			case 'P':
				p := apps.NewPairOp(id)
				p.WorkNS = workNS
				return []operator.Operator{p}
			default:
				return []operator.Operator{operator.NewSink("K", col)}
			}
		},
	}
	cl, err := cluster.New(cluster.Config{
		App:           spec,
		Scheme:        spe.MSSrcAP,
		Nodes:         6,
		NodesPerRack:  2,
		Placement:     placement.RackSpread{},
		LocalDiskSpec: fastDisk(),
		SharedSpec:    fastDisk(),
		TickEvery:     time.Millisecond,
		SourceFlush:   4 << 10,
		Seed:          1,
	})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		return 0, err
	}
	defer cl.StopAll()
	if err := waitFor(10*time.Second, func() bool { return col.Count() > 200 }); err != nil {
		return 0, fmt.Errorf("stream never warmed up: %w", err)
	}
	if replicas > 1 {
		if _, err := cl.SplitHAU(ctx, "P", replicas); err != nil {
			return 0, fmt.Errorf("split: %w", err)
		}
		// Let the replicas drain the backlog the split paused on before
		// the measurement window opens.
		time.Sleep(100 * time.Millisecond)
	}
	n0 := col.Count()
	time.Sleep(window)
	n1 := col.Count()
	return float64(n1-n0) / (float64(window.Microseconds()) / 1000), nil
}

func waitFor(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return errors.New("timeout")
}
