// Extensions example: the three mechanisms the paper names as
// complementary, demonstrated together — delta-checkpointing, distributed
// (scatter) checkpointing, and controller hot-standby failover — plus load
// shedding under deliberate overload.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"meteorshower/internal/cluster"
	"meteorshower/internal/controller"
	"meteorshower/internal/core"
	"meteorshower/internal/delta"
	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

func main() {
	demoDelta()
	demoScatter()
	demoStandby()
	demoShedding()
}

// demoDelta checkpoints a slowly-changing state twice and shows the second
// write shrinking to the changed blocks.
func demoDelta() {
	state := make([]byte, 64<<10)
	for i := range state {
		state[i] = byte(i)
	}
	next := append([]byte(nil), state...)
	next[1000] ^= 0xFF // one dirty block
	diff := delta.Diff(state, next, delta.DefaultBlockSize)
	fmt.Printf("delta-checkpointing: 64KB state, 1 dirty block -> %d-byte delta (%.0f%% saved)\n",
		len(diff), delta.Savings(diff, len(next))*100)
	restored, err := delta.Apply(state, diff)
	if err != nil || len(restored) != len(next) {
		log.Fatal("delta apply failed")
	}
}

// demoScatter writes one blob at several scatter widths.
func demoScatter() {
	blob := make([]byte, 512<<10)
	spec := storage.DiskSpec{BandwidthBps: 4 << 20, Latency: 2 * time.Millisecond, TimeScale: 1}
	fmt.Println("distributed checkpointing: 512KB state write")
	for _, width := range []int{1, 4} {
		sc := storage.NewScatter(width, spec)
		start := time.Now()
		if _, err := sc.Put("state", blob); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d storage nodes: %s\n", width, time.Since(start).Truncate(time.Millisecond))
	}
}

// demoStandby promotes a standby controller mid-run and shows epoch
// numbering continuing.
func demoStandby() {
	cat := storage.NewCatalog(storage.NewStore(storage.DiskSpec{BandwidthBps: 1 << 30}), nil)
	cfg := controller.Config{Scheme: spe.MSSrcAP, Catalog: cat, Period: time.Hour}
	primary := controller.New(cfg)
	standby := controller.NewStandby(cfg)
	primary.TriggerCheckpoint()
	primary.TriggerCheckpoint()
	standby.Sync(primary)
	// Primary's node fails; promote.
	promoted := standby.Promote()
	next := promoted.TriggerCheckpoint()
	fmt.Printf("hot standby: primary died after epoch 2; promoted controller issued epoch %d\n", next)
	if next != 3 {
		log.Fatal("epoch numbering broke across failover")
	}
}

// demoShedding overloads a tiny pipeline and shows shedding keeping
// latency bounded while dropping the excess.
func demoShedding() {
	g := graph.New()
	g.MustAddNode("S")
	g.MustAddNode("slow")
	g.MustAddNode("K")
	g.MustAddEdge("S", "slow")
	g.MustAddEdge("slow", "K")
	col := metrics.NewCollector()
	spec := cluster.AppSpec{
		Name:  "overload",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id {
			case "S":
				src := operator.NewRateSource("S", 0, 1, func(n uint64, rng *rand.Rand) (string, []byte) {
					return "k", make([]byte, 64)
				})
				src.MaxRate = true
				src.CatchUpCap = 64
				return []operator.Operator{src}
			case "slow":
				// An artificially slow stage: 300us of "work" per tuple.
				return []operator.Operator{operator.NewMap("slow", func(t *tuple.Tuple) *tuple.Tuple {
					time.Sleep(300 * time.Microsecond)
					return t
				})}
			default:
				return []operator.Operator{operator.NewSink("K", col)}
			}
		},
	}
	sys, err := core.NewSystem(core.Options{
		App:           spec,
		Scheme:        spe.MSSrcAP,
		Nodes:         2,
		TickEvery:     time.Millisecond,
		EdgeBuffer:    32,
		Seed:          1,
		ShedWatermark: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	time.Sleep(time.Second)
	shed := sys.Cluster().HAU("S").ShedCount()
	fmt.Printf("load shedding: overloaded stage; %d tuples delivered, %d shed, mean latency %s\n",
		col.Count(), shed, col.MeanLatency().Truncate(time.Microsecond))
	if shed == 0 {
		log.Fatal("expected shedding under overload")
	}
}
