// Package core is the top-level Meteor Shower API: it assembles a stream
// application, a fault-tolerance scheme, a simulated cluster and the
// controller into a runnable System, and provides the measurement helpers
// the evaluation harness (and any downstream user) builds on.
//
// Typical use:
//
//	sys, _ := core.NewSystem(core.Options{App: app, Scheme: spe.MSSrcAPAA, ...})
//	defer sys.Stop()
//	sys.Start(ctx)
//	sys.StartController(ctx)      // scheme-driven checkpoint scheduling
//	...                           // let it stream
//	sum := sys.Summarize(col, window)
package core

import (
	"context"
	"errors"
	"time"

	"meteorshower/internal/cluster"
	"meteorshower/internal/controller"
	"meteorshower/internal/elastic"
	"meteorshower/internal/metrics"
	"meteorshower/internal/partition"
	"meteorshower/internal/placement"
	"meteorshower/internal/spe"
	"meteorshower/internal/statesize"
	"meteorshower/internal/storage"
)

// Options configures a System. Zero values select sensible defaults.
type Options struct {
	App    cluster.AppSpec
	Scheme spe.Scheme
	Nodes  int

	// Apps runs several applications on one shared fleet (multi-tenancy).
	// When set, App is ignored; every spec needs a unique non-empty Name
	// and its HAU ids are namespaced "Name/id". Apps[0] anchors the fleet
	// control loops (rebalance, autoscale, elastic, HA, arbiter).
	Apps []cluster.AppSpec
	// ArbiterEvery enables the fair-share arbiter loop with the given
	// period when at least two Apps share the fleet; 0 disables it. The
	// arbiter computes weighted max-min fair node shares from observed
	// per-app demand and migrates HAUs of over-share apps off nodes
	// claimed by under-share apps.
	ArbiterEvery time.Duration
	// ArbiterMaxMoves bounds migrations per arbiter tick (0 = 1).
	ArbiterMaxMoves int

	// Placement chooses which node hosts each HAU (initially and when
	// recovery re-places the HAUs of dead nodes). nil keeps round-robin.
	Placement placement.Policy
	// NodesPerRack is the failure-domain geometry placement policies see;
	// 0 puts every node in one rack.
	NodesPerRack int
	// RebalanceEvery enables the controller's live-migration rebalancer
	// loop with the given period; 0 disables it.
	RebalanceEvery      time.Duration
	RebalanceHysteresis float64
	RebalanceMaxMoves   int

	// AutoscaleEvery enables the controller's split/merge autoscaler loop
	// with the given period; 0 disables it. The detector splits an
	// operator whose aggregate keyed state exceeds SplitAbove across
	// replicas (doubling, up to AutoscaleMaxReplicas) and merges a split
	// one back when it falls below MergeBelow.
	AutoscaleEvery time.Duration
	SplitAbove     int64
	MergeBelow     int64
	// AutoscaleMaxReplicas caps how many replicas a split may create
	// (0 = 4).
	AutoscaleMaxReplicas int
	// RescaleCooldown is the minimum spacing between rescales of the same
	// operator (0 = 2x AutoscaleEvery) — the detector's hysteresis.
	RescaleCooldown time.Duration
	// ImbalanceAbove arms the autoscaler's skew trigger: when a split
	// operator's max/mean replica load stays above this watermark for
	// ImbalanceViolations of the last ImbalanceWindow ticks, the
	// controller rebalances its hot slots (escalating to a weighted split
	// when rebalancing alone cannot fix it). Values <= 1 disable the
	// trigger. Requires AutoscaleEvery.
	ImbalanceAbove float64
	// ImbalanceWindow is the skew trigger's tick window (0 = 5).
	ImbalanceWindow int
	// ImbalanceViolations is how many ticks of the window must violate the
	// watermark before acting (0 = 3, capped at the window).
	ImbalanceViolations int

	// ElasticEvery enables the controller's fleet-elasticity loop with the
	// given period; 0 disables it. The engine samples per-node utilization
	// and adds nodes (letting the rebalancer spread HAUs onto them) or
	// drains them via live migration per the Elastic trigger config.
	ElasticEvery time.Duration
	Elastic      elastic.Config
	// NodeCores enables the per-node CPU capacity model feeding the
	// elasticity trigger's utilization signal; 0 disables it.
	NodeCores float64

	// CheckpointPeriod is the checkpoint period T (controller-driven for
	// MS schemes, per-HAU for the baseline). Zero disables periodic
	// checkpointing (epochs can still be triggered manually).
	CheckpointPeriod time.Duration

	// TimeScale compresses simulated disk time: 1.0 = real time, 0.01 =
	// 100x faster, 0 = no disk sleeping (unit tests).
	TimeScale float64
	// LocalDisk / SharedDisk override the default disk models. TimeScale
	// is applied on top when they are zero-valued.
	LocalDisk  storage.DiskSpec
	SharedDisk storage.DiskSpec

	EdgeBuffer     int
	EdgeBatch      int // tuples per edge micro-batch (0 = default)
	TickEvery      time.Duration
	PreserveMemCap int64 // baseline in-memory preservation cap
	SourceFlush    int64 // source-log group commit threshold
	PerTupleDelay  time.Duration
	Seed           int64

	// AutoRecover wires the controller's failure detector to whole
	// application recovery (Meteor Shower's behaviour in production).
	AutoRecover bool

	// DeltaCheckpoint writes block deltas instead of full state when the
	// delta is smaller (paper §V: "delta-checkpointing ... could be
	// applied jointly" with Meteor Shower).
	DeltaCheckpoint bool
	// ShedWatermark enables load shedding above this output-queue
	// occupancy (paper §III); it trades exactly-once for liveness under
	// long-term overload, so it is off by default.
	ShedWatermark float64

	Listener spe.Listener // optional extra event listener
	// Metrics, when set, receives per-phase recovery timings in addition
	// to whatever sink-side collector the app spec itself wires up.
	Metrics *metrics.Collector
}

func (o *Options) applyDefaults() {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	zero := storage.DiskSpec{}
	if o.LocalDisk == zero {
		o.LocalDisk = storage.DefaultLocalDisk()
		o.LocalDisk.TimeScale = o.TimeScale
	}
	if o.SharedDisk == zero {
		o.SharedDisk = storage.DefaultSharedStore()
		o.SharedDisk.TimeScale = o.TimeScale
	}
	if o.TickEvery <= 0 {
		o.TickEvery = 2 * time.Millisecond
	}
	if o.SourceFlush == 0 {
		o.SourceFlush = 4 << 10
	}
}

// System is a running Meteor Shower deployment.
type System struct {
	opts Options
	cl   *cluster.Cluster
}

// NewSystem validates opts and builds the deployment.
func NewSystem(opts Options) (*System, error) {
	opts.applyDefaults()
	cl, err := cluster.New(cluster.Config{
		App:                 opts.App,
		Apps:                opts.Apps,
		ArbiterEvery:        opts.ArbiterEvery,
		ArbiterMaxMoves:     opts.ArbiterMaxMoves,
		Scheme:              opts.Scheme,
		Nodes:               opts.Nodes,
		Placement:           opts.Placement,
		NodesPerRack:        opts.NodesPerRack,
		RebalanceEvery:      opts.RebalanceEvery,
		RebalanceHysteresis: opts.RebalanceHysteresis,
		RebalanceMaxMoves:   opts.RebalanceMaxMoves,
		AutoscaleEvery:      opts.AutoscaleEvery,
		SplitAbove:          opts.SplitAbove,
		MergeBelow:          opts.MergeBelow,
		MaxReplicas:         opts.AutoscaleMaxReplicas,
		RescaleCooldown:     opts.RescaleCooldown,
		ImbalanceAbove:      opts.ImbalanceAbove,
		ImbalanceWindow:     opts.ImbalanceWindow,
		ImbalanceViolations: opts.ImbalanceViolations,
		ElasticEvery:        opts.ElasticEvery,
		Elastic:             opts.Elastic,
		NodeCores:           opts.NodeCores,
		LocalDiskSpec:       opts.LocalDisk,
		SharedSpec:          opts.SharedDisk,
		EdgeBuffer:          opts.EdgeBuffer,
		EdgeBatch:           opts.EdgeBatch,
		TickEvery:           opts.TickEvery,
		CkptPeriod:          opts.CheckpointPeriod,
		PreserveMemCap:      opts.PreserveMemCap,
		SourceFlush:         opts.SourceFlush,
		PerTupleDelay:       opts.PerTupleDelay,
		Seed:                opts.Seed,
		Listener:            opts.Listener,
		DeltaCheckpoint:     opts.DeltaCheckpoint,
		ShedWatermark:       opts.ShedWatermark,
		Metrics:             opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &System{opts: opts, cl: cl}, nil
}

// Cluster exposes the underlying simulated cluster.
func (s *System) Cluster() *cluster.Cluster { return s.cl }

// Controller exposes the controller.
func (s *System) Controller() *controller.Controller { return s.cl.Controller() }

// Catalog exposes the checkpoint catalog.
func (s *System) Catalog() *storage.Catalog { return s.cl.Catalog() }

// Scheme returns the configured scheme.
func (s *System) Scheme() spe.Scheme { return s.opts.Scheme }

// Start launches the HAU goroutines.
func (s *System) Start(ctx context.Context) error {
	if err := s.cl.Start(ctx); err != nil {
		return err
	}
	if s.opts.AutoRecover {
		if len(s.opts.Apps) > 1 {
			// Multi-tenant: recover ONLY the application whose controller
			// detected the failure. A co-tenant sharing the dead node has
			// its own controller and triggers its own rollback; apps that
			// lost nothing keep streaming untouched.
			s.cl.SetAppFailureHandler(func(app string, _ []string) {
				go s.cl.RecoverApp(ctx, app) //nolint:errcheck // recovery errors surface via HAU state
			})
		} else {
			s.cl.SetFailureHandler(func([]string) {
				go s.cl.RecoverAll(ctx) //nolint:errcheck // recovery errors surface via HAU state
			})
		}
	}
	return nil
}

// StartController launches scheme-driven checkpoint scheduling and failure
// detection.
func (s *System) StartController(ctx context.Context) {
	s.cl.StartController(ctx)
}

// TriggerCheckpoint fires the next checkpoint epoch and returns it.
func (s *System) TriggerCheckpoint() uint64 {
	return s.cl.Controller().TriggerCheckpoint()
}

// WaitForEpoch blocks until the application checkpoint for epoch completes
// or the timeout elapses.
func (s *System) WaitForEpoch(epoch uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if e, ok := s.cl.Catalog().MostRecentComplete(); ok && e >= epoch {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return errors.New("core: epoch did not complete in time")
}

// Profile runs the application-aware profiling phase (MS-src+ap+aa).
func (s *System) Profile(ctx context.Context, dur time.Duration) statesize.Profile {
	return s.cl.Controller().ProfileApplication(ctx, dur)
}

// KillNode fail-stops one node.
func (s *System) KillNode(idx int) { s.cl.KillNode(idx) }

// KillNodes fail-stops a correlated burst of nodes.
func (s *System) KillNodes(idxs []int) { s.cl.KillNodes(idxs) }

// KillAll fail-stops every worker node.
func (s *System) KillAll() { s.cl.KillAll() }

// RecoverAll rolls the whole application back to the MRC.
func (s *System) RecoverAll(ctx context.Context) (cluster.RecoveryStats, error) {
	return s.cl.RecoverAll(ctx)
}

// RecoverAllWithRetry rolls the application back, retrying transient
// failures (store briefly down, nodes dying mid-recovery) with backoff.
func (s *System) RecoverAllWithRetry(ctx context.Context, attempts int, backoff time.Duration) (cluster.RecoveryStats, error) {
	return s.cl.RecoverAllWithRetry(ctx, attempts, backoff)
}

// RecoverHAU restarts one HAU from its latest individual checkpoint
// (baseline recovery).
func (s *System) RecoverHAU(ctx context.Context, id string) (cluster.RecoveryStats, error) {
	return s.cl.RecoverHAU(ctx, id)
}

// MigrateHAU live-migrates one HAU to another node with exactly-once
// semantics (token-aligned drain, snapshot, restore, edge rerouting).
func (s *System) MigrateHAU(ctx context.Context, id string, dest int) (cluster.MigrationStats, error) {
	return s.cl.MigrateHAU(ctx, id, dest)
}

// SplitHAU re-partitions one operator's keyed state across n HAU replicas,
// live and exactly-once.
func (s *System) SplitHAU(ctx context.Context, id string, n int) (cluster.RescaleStats, error) {
	return s.cl.SplitHAU(ctx, id, n)
}

// MergeHAU merges a split operator back into a single HAU.
func (s *System) MergeHAU(ctx context.Context, id string) (cluster.RescaleStats, error) {
	return s.cl.MergeHAU(ctx, id)
}

// SplitHAUWeighted is SplitHAU with per-slot load weights driving the new
// assignment; nil weights use the operator's observed load.
func (s *System) SplitHAUWeighted(ctx context.Context, id string, n int, w partition.Weights) (cluster.RescaleStats, error) {
	return s.cl.SplitHAUWeighted(ctx, id, n, w)
}

// RebalanceHAU shifts hot slots between a split operator's existing
// replicas to fix observed load skew without changing the replica count.
func (s *System) RebalanceHAU(ctx context.Context, id string, w partition.Weights) (cluster.RescaleStats, error) {
	return s.cl.RebalanceHAU(ctx, id, w)
}

// LoadShares returns a split operator's per-replica load fractions and
// max/mean imbalance ratio under the observed load (nil weights).
func (s *System) LoadShares(id string, w partition.Weights) ([]float64, float64) {
	return s.cl.LoadShares(id, w)
}

// Replicas returns the live incarnation ids of operator id (itself when
// unsplit).
func (s *System) Replicas(id string) []string { return s.cl.Replicas(id) }

// AppNames lists the registered applications in registry order
// (multi-tenant deployments).
func (s *System) AppNames() []string { return s.cl.AppNames() }

// RecoverApp rolls ONE application back to its most recent complete
// checkpoint, leaving co-tenants untouched.
func (s *System) RecoverApp(ctx context.Context, name string) (cluster.RecoveryStats, error) {
	return s.cl.RecoverApp(ctx, name)
}

// ArbiterShares returns the fair-share arbiter's latest per-app node
// shares (nil until the first arbitration tick).
func (s *System) ArbiterShares() map[string]float64 { return s.cl.ArbiterShares() }

// Stop shuts down all HAUs.
func (s *System) Stop() { s.cl.StopAll() }

// Summary holds the headline measurements of one run — the quantities
// Figs. 12/13 plot.
type Summary struct {
	App         string
	Scheme      string
	Window      time.Duration
	Tuples      uint64
	TuplesPerMS float64
	MeanLatency time.Duration
	P50, P99    time.Duration
	Checkpoints int
}

// Summarize reads the collector and controller into a Summary covering
// deliveries since 'since' (UnixNano); window is used for the rate.
func (s *System) Summarize(col *metrics.Collector, since int64, window time.Duration) Summary {
	completed := 0
	for _, st := range s.cl.Controller().EpochStats() {
		if st.Complete {
			completed++
		}
	}
	n := col.CountSince(since)
	return Summary{
		App:         s.opts.App.Name,
		Scheme:      s.opts.Scheme.String(),
		Window:      window,
		Tuples:      n,
		TuplesPerMS: float64(n) / float64(window.Milliseconds()),
		MeanLatency: col.MeanLatency(),
		P50:         col.Quantile(0.50),
		P99:         col.Quantile(0.99),
		Checkpoints: completed,
	}
}
