package cluster

import (
	"errors"
	"fmt"
)

// ErrNoCheckpoint means the catalog has no complete application checkpoint
// at all: there is nothing to roll back to, and the caller must restart
// the application from scratch. Retrying cannot help.
var ErrNoCheckpoint = errors.New("cluster: no complete checkpoint to recover from")

// MissingCheckpointError reports that the catalog advertised an epoch as
// complete but one of its blobs could not be loaded from the shared store
// — lost, corrupted, or the store itself is unreachable. errors.Is on the
// wrapped cause distinguishes a permanently lost blob
// (storage.ErrNotFound) from a store that may come back
// (storage.ErrUnavailable).
type MissingCheckpointError struct {
	Epoch uint64
	HAU   string
	Err   error
}

func (e *MissingCheckpointError) Error() string {
	return fmt.Sprintf("cluster: checkpoint epoch %d unusable (hau %s): %v", e.Epoch, e.HAU, e.Err)
}

func (e *MissingCheckpointError) Unwrap() error { return e.Err }

// ErrRecoveryDiverged means a recovery completed but some HAUs landed on
// nodes that died while it ran; the application is not fully live and the
// recovery must be re-driven.
var ErrRecoveryDiverged = errors.New("cluster: nodes died during recovery")
