// TMI example: run Transportation Mode Inference (paper Fig. 2) under
// application-aware checkpointing. It profiles the k-means sawtooth,
// prints the learnt alert threshold, and shows checkpoints landing near
// state-size minima.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/core"
	"meteorshower/internal/metrics"
	"meteorshower/internal/spe"
)

func main() {
	col := metrics.NewCollector()
	cfg := apps.TMIPaper(col, 400*time.Millisecond) // k-means window
	cfg.SinkRef = &apps.SinkRef{}
	spec := apps.TMI(cfg)
	fmt.Printf("TMI query network: %d operators, %d streams, sources %v\n",
		spec.Graph.NumNodes(), spec.Graph.NumEdges(), spec.Graph.Sources())

	sys, err := core.NewSystem(core.Options{
		App:              spec,
		Scheme:           spe.MSSrcAPAA,
		Nodes:            8,
		CheckpointPeriod: 500 * time.Millisecond,
		TickEvery:        time.Millisecond,
		SourceFlush:      64 << 10,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// Profiling phase (§III-C2): learn the state-size pattern.
	prof := sys.Profile(ctx, 900*time.Millisecond)
	fmt.Printf("profile: smax=%dB smin=%dB alpha=%.2f dynamic HAUs=%v\n",
		prof.Smax, prof.Smin, prof.Alpha, sys.Controller().Dynamic())

	// Actual execution: the controller fires checkpoints in alert mode.
	sys.StartController(ctx)
	start := time.Now()
	for time.Since(start) < 2*time.Second {
		time.Sleep(250 * time.Millisecond)
		var total int64
		for _, id := range sys.Cluster().GraphNodes() {
			if h := sys.Cluster().HAU(id); h != nil {
				total += h.CachedStateSize()
			}
		}
		fmt.Printf("t=%-6s state=%-8dB alert=%-5v epochs=%d\n",
			time.Since(start).Truncate(50*time.Millisecond), total,
			sys.Controller().InAlertMode(), sys.Controller().Epoch())
	}

	// Report what each checkpoint actually saved.
	for _, st := range sys.Controller().EpochStats() {
		if !st.Complete {
			continue
		}
		var bytes int64
		for _, b := range st.Breakdown {
			bytes += b.StateBytes
		}
		fmt.Printf("epoch %d: checkpointed %dB across %d HAUs (slowest: %s)\n",
			st.Epoch, bytes, len(st.Breakdown), st.SlowestBreakdown().Total().Truncate(time.Microsecond))
	}
	fmt.Printf("sink: %d cluster summaries, mean latency %s\n",
		col.Count(), col.MeanLatency().Truncate(time.Microsecond))
}
