package statesize

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sawtoothPolyline(periods int, period, peak int64) *Polyline {
	var p Polyline
	for i := 0; i < periods; i++ {
		base := int64(i) * period
		p.Append(Sample{At: base, Size: peak}) // falls to trough mid-period
		p.Append(Sample{At: base + period/2, Size: 10})
	}
	p.Append(Sample{At: int64(periods) * period, Size: peak})
	return &p
}

func TestTroughTimes(t *testing.T) {
	p := sawtoothPolyline(3, 100, 500)
	troughs := TroughTimes(p)
	if len(troughs) != 3 {
		t.Fatalf("troughs = %v", troughs)
	}
	if troughs[0] != 50 || troughs[1] != 150 || troughs[2] != 250 {
		t.Fatalf("trough times = %v", troughs)
	}
}

func TestTroughTimesMonotone(t *testing.T) {
	var p Polyline
	p.Append(Sample{At: 0, Size: 1})
	p.Append(Sample{At: 10, Size: 2})
	p.Append(Sample{At: 20, Size: 3})
	if got := TroughTimes(&p); len(got) != 0 {
		t.Fatalf("monotone series has troughs: %v", got)
	}
}

func TestPeriodicity(t *testing.T) {
	period, ok := Periodicity([]int64{50, 150, 250, 350})
	if !ok || period != 100 {
		t.Fatalf("period = %d, %v", period, ok)
	}
	if _, ok := Periodicity([]int64{50}); ok {
		t.Fatal("single trough forecastable")
	}
	// Wildly irregular gaps: not periodic.
	if _, ok := Periodicity([]int64{0, 10, 20, 500}); ok {
		t.Fatal("irregular gaps accepted")
	}
}

func TestForecastNextTrough(t *testing.T) {
	troughs := []int64{50, 150, 250}
	next, ok := ForecastNextTrough(troughs, 260)
	if !ok || next != 350 {
		t.Fatalf("forecast = %d, %v", next, ok)
	}
	// Far future: keeps stepping by the period.
	next, ok = ForecastNextTrough(troughs, 999)
	if !ok || next != 1050 {
		t.Fatalf("far forecast = %d, %v", next, ok)
	}
	if _, ok := ForecastNextTrough([]int64{1}, 0); ok {
		t.Fatal("unforecastable input accepted")
	}
}

// Property: for perfectly periodic troughs with jitter-free spacing, the
// forecast is always a trough time of the ideal process.
func TestQuickForecastPeriodic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		period := int64(10 + rng.Intn(1000))
		start := int64(rng.Intn(100))
		var troughs []int64
		for i := 0; i < 3+rng.Intn(10); i++ {
			troughs = append(troughs, start+int64(i)*period)
		}
		after := troughs[len(troughs)-1] + int64(rng.Intn(int(period*3)))
		next, ok := ForecastNextTrough(troughs, after)
		if !ok {
			return false
		}
		return next > after && (next-start)%period == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
