// Package tenant implements multi-tenancy primitives for a shared Meteor
// Shower fleet: per-application specs with fairness weights, app-namespaced
// HAU ids, weighted max-min fair shares computed from observed demand, and
// an Arbiter that turns shares into bounded, cooldown-guarded placement
// actions. The cluster layer owns the mechanics (migration, recovery); this
// package owns the policy and stays free of cluster imports so it can be
// unit-tested in isolation.
package tenant

import (
	"sort"
	"strings"
	"time"
)

// Sep separates the application namespace from the local HAU id. Replica
// tags use '~' (partition.ReplicaID), so '/' is safe: BaseID("B/P0~1")
// yields "B/P0", whose app is "B" and local id "P0". Single-app clusters
// keep the empty prefix and bare ids — byte-compatible with every existing
// checkpoint key and test.
const Sep = "/"

// Spec names one application sharing the fleet and its fairness weight.
// Weights are relative: an app with weight 3 is entitled to 3x the fleet
// share of an app with weight 1. Zero or negative weights count as 1.
type Spec struct {
	Name   string
	Weight float64
}

// NormWeight returns the spec's effective weight (>= a small positive
// floor, so a zero-valued spec still gets a share).
func (s Spec) NormWeight() float64 {
	if s.Weight <= 0 {
		return 1
	}
	return s.Weight
}

// Qualify namespaces a local HAU id with its application. The empty app
// name returns the id unchanged (single-tenant mode).
func Qualify(app, id string) string {
	if app == "" {
		return id
	}
	return app + Sep + id
}

// AppOf extracts the application name from a namespaced HAU id ("" for a
// bare single-tenant id).
func AppOf(id string) string {
	if i := strings.Index(id, Sep); i >= 0 {
		return id[:i]
	}
	return ""
}

// LocalID strips the application namespace from an HAU id.
func LocalID(id string) string {
	if i := strings.Index(id, Sep); i >= 0 {
		return id[i+len(Sep):]
	}
	return id
}

// Demand is one application's observed resource appetite, aggregated by the
// cluster from its live HAUs: CPU busy time attributed over the sampling
// interval, cached state bytes, and queued input backlog.
type Demand struct {
	App        string
	Weight     float64
	CPUBusy    time.Duration
	StateBytes int64
	Backlog    int
	HAUs       int
}

// load collapses one demand to a scalar. CPU busy dominates (it is what
// nodes actually run out of); state and backlog act as tie-breakers so an
// idle-but-stateful app is not starved to zero.
func (d Demand) load() float64 {
	l := float64(d.CPUBusy)
	l += float64(d.StateBytes) / 1024 // 1 KiB of state ~ 1ns of CPU
	l += float64(d.Backlog) * 1e3     // 1 queued tuple ~ 1µs of CPU
	return l
}

// FairShares computes weighted max-min fair shares (water-filling) over the
// demands: each app is entitled to weight_i/Σweights of the capacity; apps
// demanding less than their entitlement keep their demand, and the surplus
// is redistributed among the still-unsatisfied apps in proportion to their
// weights. capacity is the total load the fleet can absorb in the same
// units as Demand.load (core-nanoseconds over the sampling interval);
// demands may over-subscribe it, which is when the weighted entitlements
// bind. capacity <= 0 falls back to the total observed load (shares then
// degenerate to demand fractions). Shares are returned as fractions of
// capacity summing to at most 1. An app with zero observed demand still
// receives a floor share proportional to its weight so a cold-starting
// tenant is never squeezed out entirely.
func FairShares(demands []Demand, capacity float64) map[string]float64 {
	shares := make(map[string]float64, len(demands))
	if len(demands) == 0 {
		return shares
	}
	var totalLoad float64
	for _, d := range demands {
		totalLoad += d.load()
	}
	if capacity <= 0 {
		capacity = totalLoad
	}
	// Demand fraction of capacity per app; with no load at all, everyone
	// demands exactly their entitlement (pure weight split).
	demand := make(map[string]float64, len(demands))
	weight := make(map[string]float64, len(demands))
	var totalW float64
	for _, d := range demands {
		w := Spec{Weight: d.Weight}.NormWeight()
		weight[d.App] = w
		totalW += w
	}
	for _, d := range demands {
		if totalLoad > 0 {
			demand[d.App] = d.load() / capacity
		} else {
			demand[d.App] = weight[d.App] / totalW
		}
	}
	// Water-filling: satisfy apps whose demand fits under their
	// entitlement, redistribute the surplus by weight among the rest.
	unsat := make([]string, 0, len(demands))
	for _, d := range demands {
		unsat = append(unsat, d.App)
	}
	sort.Strings(unsat) // determinism
	free := 1.0
	remW := totalW
	for len(unsat) > 0 {
		progressed := false
		still := unsat[:0]
		for _, app := range unsat {
			ent := free * weight[app] / remW
			if demand[app] <= ent {
				shares[app] += demand[app]
				free -= demand[app]
				remW -= weight[app]
				progressed = true
			} else {
				still = append(still, app)
			}
		}
		unsat = still
		if !progressed {
			// Everyone left wants more than their entitlement: split the
			// remaining capacity by weight and stop.
			for _, app := range unsat {
				shares[app] += free * weight[app] / remW
			}
			break
		}
		if remW <= 0 {
			break
		}
	}
	// Floor: a tenant never drops below 10% of its pure-weight entitlement,
	// so a momentarily idle app keeps a foothold to ramp back up on.
	for _, d := range demands {
		floor := 0.1 * weight[d.App] / totalW
		if shares[d.App] < floor {
			shares[d.App] = floor
		}
	}
	return shares
}

// NodeQuotas converts fair shares into integer per-app node counts over a
// fleet of n nodes using largest-remainder rounding. Every app with live
// HAUs gets at least one node when the fleet is large enough to allow it.
func NodeQuotas(shares map[string]float64, demands []Demand, n int) map[string]int {
	quotas := make(map[string]int, len(shares))
	if n <= 0 || len(shares) == 0 {
		return quotas
	}
	apps := make([]string, 0, len(shares))
	var total float64
	for app, s := range shares {
		apps = append(apps, app)
		total += s
	}
	sort.Strings(apps)
	if total <= 0 {
		total = 1
	}
	type rem struct {
		app  string
		frac float64
	}
	var rems []rem
	used := 0
	for _, app := range apps {
		exact := shares[app] / total * float64(n)
		q := int(exact)
		quotas[app] = q
		used += q
		rems = append(rems, rem{app, exact - float64(q)})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].app < rems[j].app
	})
	for i := 0; used < n && i < len(rems); i++ {
		quotas[rems[i].app]++
		used++
	}
	// Minimum footprint: an app with HAUs needs at least one node.
	if n >= len(apps) {
		hasHAUs := make(map[string]bool, len(demands))
		for _, d := range demands {
			if d.HAUs > 0 {
				hasHAUs[d.App] = true
			}
		}
		for _, app := range apps {
			if quotas[app] == 0 && hasHAUs[app] {
				// Take a node from the largest quota.
				donor, best := "", 1
				for _, a := range apps {
					if quotas[a] > best {
						donor, best = a, quotas[a]
					}
				}
				if donor != "" {
					quotas[donor]--
					quotas[app]++
				}
			}
		}
	}
	return quotas
}

// HAUView is one live HAU as the arbiter sees it.
type HAUView struct {
	ID      string
	App     string
	Node    int
	Movable bool // live-migratable right now (not a replica, not pinned, not mid-op)
}

// View is the cluster snapshot the arbiter plans over. Capacity is the
// total load the schedulable fleet can absorb over the sampling interval
// (core-nanoseconds, same units as Demand.load); zero degenerates shares to
// demand fractions.
type View struct {
	Nodes    []int // schedulable node indices
	Capacity float64
	Demands  []Demand
	HAUs     []HAUView
}

// Action is one bounded arbitration step: migrate HAU of App from node From
// to node To. Reason is human-readable ("quota", shown in logs).
type Action struct {
	App    string
	HAU    string
	From   int
	To     int
	Reason string
}

// Config tunes the arbiter.
type Config struct {
	// Cooldown is the minimum gap between action batches (0 = 1s).
	Cooldown time.Duration
	// MaxMoves bounds migrations per step (0 = 1).
	MaxMoves int
	// Logf receives arbitration decisions (optional).
	Logf func(format string, args ...any)
}

// Arbiter computes per-app fair shares from observed demand and emits
// migration actions that segregate applications onto disjoint weighted node
// sets. Node-level segregation is what makes fair shares real under the
// per-node CPU capacity model: co-located HAUs of different tenants contend
// for the same cores, so a greedy tenant's flash crowd steals cycles from a
// co-tenant unless the arbiter keeps their node sets apart (the quota-based
// isolation Chiron argues for).
type Arbiter struct {
	cfg     Config
	lastAct time.Time
}

// NewArbiter returns an arbiter with the given tuning.
func NewArbiter(cfg Config) *Arbiter {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 1
	}
	return &Arbiter{cfg: cfg}
}

// Shares exposes the fair-share computation for the given view (tooling).
func (a *Arbiter) Shares(v View) map[string]float64 {
	return FairShares(v.Demands, v.Capacity)
}

// Step plans at most MaxMoves migrations toward the fair-share node
// partition. It owns nodes greedily: each app claims the nodes where it
// already hosts the most HAUs (minimizing churn), then HAUs stranded on
// foreign nodes are moved onto their app's claimed set. Within a cooldown
// window Step returns nil.
func (a *Arbiter) Step(now time.Time, v View) []Action {
	if len(v.Demands) < 2 || len(v.Nodes) == 0 {
		return nil
	}
	if !a.lastAct.IsZero() && now.Sub(a.lastAct) < a.cfg.Cooldown {
		return nil
	}
	shares := FairShares(v.Demands, v.Capacity)
	quotas := NodeQuotas(shares, v.Demands, len(v.Nodes))

	// Per-node, per-app HAU counts.
	schedulable := make(map[int]bool, len(v.Nodes))
	for _, n := range v.Nodes {
		schedulable[n] = true
	}
	count := make(map[int]map[string]int)
	for _, h := range v.HAUs {
		if !schedulable[h.Node] {
			continue
		}
		if count[h.Node] == nil {
			count[h.Node] = make(map[string]int)
		}
		count[h.Node][h.App]++
	}

	// Claim nodes: apps in descending quota order pick the nodes where they
	// already host the most HAUs, which minimizes the migrations needed to
	// realize the partition.
	apps := make([]string, 0, len(quotas))
	for app := range quotas {
		apps = append(apps, app)
	}
	sort.Slice(apps, func(i, j int) bool {
		if quotas[apps[i]] != quotas[apps[j]] {
			return quotas[apps[i]] > quotas[apps[j]]
		}
		return apps[i] < apps[j]
	})
	owner := make(map[int]string, len(v.Nodes))
	claimed := make(map[int]bool, len(v.Nodes))
	for _, app := range apps {
		want := quotas[app]
		cands := append([]int(nil), v.Nodes...)
		sort.Slice(cands, func(i, j int) bool {
			ci, cj := count[cands[i]][app], count[cands[j]][app]
			if ci != cj {
				return ci > cj
			}
			return cands[i] < cands[j]
		})
		for _, n := range cands {
			if want == 0 {
				break
			}
			if claimed[n] {
				continue
			}
			owner[n] = app
			claimed[n] = true
			want--
		}
	}

	// Move stranded HAUs: any movable HAU sitting on a node owned by a
	// different app migrates to its own app's least-crowded node.
	var actions []Action
	loads := make(map[int]int, len(v.Nodes))
	for _, h := range v.HAUs {
		loads[h.Node]++
	}
	for _, h := range v.HAUs {
		if len(actions) >= a.cfg.MaxMoves {
			break
		}
		own, ok := owner[h.Node]
		if !ok || own == h.App || !h.Movable {
			continue
		}
		// Least-loaded node owned by h.App.
		dest, destLoad := -1, 0
		for _, n := range v.Nodes {
			if owner[n] != h.App {
				continue
			}
			if dest < 0 || loads[n] < destLoad {
				dest, destLoad = n, loads[n]
			}
		}
		if dest < 0 || dest == h.Node {
			continue
		}
		actions = append(actions, Action{App: h.App, HAU: h.ID, From: h.Node, To: dest, Reason: "quota"})
		loads[h.Node]--
		loads[dest]++
	}
	if len(actions) > 0 {
		a.lastAct = now
		if a.cfg.Logf != nil {
			for _, act := range actions {
				a.cfg.Logf("tenant: arbiter moves %s (%s) node %d -> %d (%s)",
					act.HAU, act.App, act.From, act.To, act.Reason)
			}
		}
	}
	return actions
}
