// Command msskew benchmarks skew-aware weighted slot assignment and
// regenerates BENCH_skew.json. Two experiments:
//
//  1. Throughput vs assignment policy under Zipf key skew (s in {0.9,
//     1.1, 1.3}): a compute-bound Pair stage whose hot keys hash into one
//     replica's count-balanced slot range is run whole, split 4 ways
//     count-balanced, and split 4 ways weighted by the key distribution.
//     The count-balanced split leaves the hot range on one replica and
//     plateaus; the weighted split spreads the hot slots and recovers
//     near-linear scaling. Gated: at s=1.1 the weighted rate must be
//     >= 1.8x the count-balanced rate.
//
//  2. Drifting hotspot: a 4-way split balanced for one hot band drifts
//     onto slots co-located on a single replica; RebalanceHAU with the
//     drifted weights must restore the imbalance ratio to <= 1.25 without
//     changing the replica count.
//
//     msskew                 # full run, writes BENCH_skew.json
//     msskew -out -          # print JSON to stdout instead
//     msskew -quick          # reduced grids (CI smoke)
//
// A failed gate exits non-zero after writing the document.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/cluster"
	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/partition"
	"meteorshower/internal/placement"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
)

const (
	replicas  = 4   // split width both experiments drive toward
	ranks     = 256 // Zipf key-universe size per source
	hotRanks  = 64  // top ranks constrained into the hot slot band
	gateZipfS = 1.1
	gateRatio = 1.8  // weighted split must beat count-balanced by this
	maxDrift  = 1.25 // post-rebalance imbalance ceiling
)

func main() {
	var (
		out    = flag.String("out", "BENCH_skew.json", `output path; "-" prints to stdout`)
		window = flag.Duration("window", 500*time.Millisecond, "sink-rate measurement window")
		workNS = flag.Int64("work-ns", 50000, "per-tuple service time in the Pair stage")
		quick  = flag.Bool("quick", false, "reduced grids")
	)
	flag.Parse()

	svals := []float64{0.9, 1.1, 1.3}
	driftAt := uint64(4000)
	if *quick {
		svals = []float64{1.1}
		driftAt = 2500
		if *window > 250*time.Millisecond {
			*window = 250 * time.Millisecond
		}
	}

	doc := map[string]any{
		"benchmark": "skew",
		"environment": map[string]string{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
		},
		"regenerate": "go run ./cmd/msskew",
	}
	failed := false

	fmt.Fprintln(os.Stderr, "== throughput vs assignment policy, Zipf keyed pair stage ==")
	var points []policyPoint
	for _, s := range svals {
		pt, err := policyTrials(s, *window, *workNS)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msskew: s=%.1f: %v\n", s, err)
			os.Exit(1)
		}
		points = append(points, pt)
		fmt.Fprintf(os.Stderr, "  s=%.1f: base %.1f/ms, count %.1f/ms (%.2fx), weighted %.1f/ms (%.2fx) -> weighted/count %.2fx\n",
			s, pt.BaseRate, pt.CountRate, pt.CountSpeedup, pt.WeightedRate, pt.WeightedSpeedup, pt.WeightedVsCount)
	}
	doc["throughput_vs_policy"] = points
	gate := map[string]any{"zipf_s": gateZipfS, "weighted_vs_count_min": gateRatio}
	for _, pt := range points {
		if pt.ZipfS == gateZipfS {
			pass := pt.WeightedVsCount >= gateRatio
			gate["weighted_vs_count"] = pt.WeightedVsCount
			gate["pass"] = pass
			if !pass {
				failed = true
				fmt.Fprintf(os.Stderr, "msskew: GATE FAILED: weighted/count %.2fx < %.2fx at s=%.1f\n",
					pt.WeightedVsCount, gateRatio, gateZipfS)
			}
		}
	}
	doc["gate"] = gate

	fmt.Fprintln(os.Stderr, "== drifting hotspot: weighted rebalance without resplit ==")
	drift, err := driftTrial(gateZipfS, driftAt, *workNS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msskew: drift experiment: %v\n", err)
		os.Exit(1)
	}
	doc["drifting_hotspot"] = drift
	fmt.Fprintf(os.Stderr, "  pre-rebalance ratio %.2f -> post %.2f (ceiling %.2f), %d slot(s) moved, replicas %d unchanged=%v\n",
		drift.PreRatio, drift.PostRatio, maxDrift, drift.MovedSlots, drift.Replicas, !drift.ReplicasChanged)
	if !drift.Pass {
		failed = true
		fmt.Fprintf(os.Stderr, "msskew: GATE FAILED: drift rebalance post ratio %.2f > %.2f or replica count changed\n",
			drift.PostRatio, maxDrift)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "msskew: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "msskew: %v\n", err)
		os.Exit(1)
	} else {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

func fastDisk() storage.DiskSpec {
	return storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond, TimeScale: 0}
}

// --- Zipf workload construction ----------------------------------------------

// zipfCDF returns the cumulative probabilities of a Zipf(s) distribution
// over n ranks (p(r) proportional to 1/(r+1)^s). Unlike math/rand's Zipf
// it accepts any s > 0, covering the s=0.9 grid point.
func zipfCDF(s float64, n int) []float64 {
	cum := make([]float64, n)
	var total float64
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		cum[r] = total
	}
	for r := range cum {
		cum[r] /= total
	}
	return cum
}

// bandKey returns a key for rank i whose slot lies in [lo, hi) — the salt
// search models real deployments where a hot key range happens to hash
// into one replica's slots.
func bandKey(prefix string, i, lo, hi int) string {
	for salt := 0; ; salt++ {
		k := fmt.Sprintf("%s%d-%d", prefix, i, salt)
		if s := partition.SlotOf(k, partition.DefaultSlots); s >= lo && s < hi {
			return k
		}
	}
}

// slotSetKey is bandKey over an arbitrary slot set.
func slotSetKey(prefix string, i int, want map[int]bool) string {
	for salt := 0; ; salt++ {
		k := fmt.Sprintf("%s%d-%d", prefix, i, salt)
		if want[partition.SlotOf(k, partition.DefaultSlots)] {
			return k
		}
	}
}

// zipfKeys builds one source's key universe for experiment 1: the top
// hotRanks ranks hash into slots [0, hotRanks) — exactly the slot range a
// count-balanced 4-way split leaves on replica 0 — and the cold tail is
// unconstrained.
func zipfKeys(src int) []string {
	keys := make([]string, ranks)
	for r := range keys {
		p := fmt.Sprintf("z%d-", src)
		if r < hotRanks {
			keys[r] = bandKey(p, r, 0, hotRanks)
		} else {
			keys[r] = p + fmt.Sprint(r)
		}
	}
	return keys
}

// analyticWeights folds each source's Zipf mass into per-slot weights —
// the profile a production controller would read off the key routers.
func analyticWeights(cdf []float64, keySets ...[]string) partition.Weights {
	w := make(partition.Weights, partition.DefaultSlots)
	for _, keys := range keySets {
		prev := 0.0
		for r, k := range keys {
			p := cdf[r] - prev
			prev = cdf[r]
			w[partition.SlotOf(k, partition.DefaultSlots)] += int64(p * 1e6)
		}
	}
	return w
}

// zipfPositions samples keys from the Zipf CDF and emits TMI positions.
// keysB (when non-nil) takes over once a source's tuple id crosses
// driftAt — the drifting-hotspot workload.
func zipfPositions(cdf []float64, keysA, keysB []string, driftAt uint64) operator.PayloadFn {
	return func(id uint64, rng *rand.Rand) (string, []byte) {
		keys := keysA
		if keysB != nil && id >= driftAt {
			keys = keysB
		}
		r := sort.SearchFloat64s(cdf, rng.Float64())
		if r >= len(keys) {
			r = len(keys) - 1
		}
		pos := apps.Position{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, TsMS: int64(id)}
		return keys[r], pos.Encode()
	}
}

// --- shared cluster harness --------------------------------------------------

type trial struct {
	cl  *cluster.Cluster
	col *metrics.Collector
	cancel,
	stop func()
}

func (t *trial) Close() {
	t.stop()
	t.cancel()
}

// startTrial boots the two-source keyed Pair topology with the given
// per-source payload functions and waits for first deliveries.
func startTrial(payloads [2]operator.PayloadFn, workNS int64) (*trial, error) {
	g := graph.New()
	g.MustAddNode("S0")
	g.MustAddNode("S1")
	g.MustAddNode("P")
	g.MustAddNode("K")
	g.MustAddEdge("S0", "P")
	g.MustAddEdge("S1", "P")
	g.MustAddEdge("P", "K")
	col := metrics.NewCollector()
	spec := cluster.AppSpec{
		Name:  "skewbench",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id[0] {
			case 'S':
				idx := int(id[1] - '0')
				src := operator.NewRateSource(id, 64, int64(idx+1), payloads[idx])
				src.MaxRate = true
				// The sources must offer far more than one Pair replica
				// absorbs, or the measurement is source-bound and the slot
				// assignment cannot matter.
				src.CatchUpCap = 256
				return []operator.Operator{src}
			case 'P':
				p := apps.NewPairOp(id)
				p.WorkNS = workNS
				return []operator.Operator{p}
			default:
				return []operator.Operator{operator.NewSink("K", col)}
			}
		},
	}
	cl, err := cluster.New(cluster.Config{
		App:           spec,
		Scheme:        spe.MSSrcAP,
		Nodes:         6,
		NodesPerRack:  2,
		Placement:     placement.RackSpread{},
		LocalDiskSpec: fastDisk(),
		SharedSpec:    fastDisk(),
		TickEvery:     time.Millisecond,
		SourceFlush:   4 << 10,
		Seed:          1,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := cl.Start(ctx); err != nil {
		cancel()
		return nil, err
	}
	t := &trial{cl: cl, col: col, cancel: cancel, stop: cl.StopAll}
	if err := waitFor(10*time.Second, func() bool { return col.Count() > 200 }); err != nil {
		t.Close()
		return nil, fmt.Errorf("stream never warmed up: %w", err)
	}
	return t, nil
}

func (t *trial) sinkRate(window time.Duration) float64 {
	n0 := t.col.Count()
	time.Sleep(window)
	n1 := t.col.Count()
	return float64(n1-n0) / (float64(window.Microseconds()) / 1000)
}

func waitFor(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return errors.New("timeout")
}

// --- experiment 1: throughput vs assignment policy ---------------------------

type policyPoint struct {
	ZipfS           float64 `json:"zipf_s"`
	WindowMS        float64 `json:"window_ms"`
	BaseRate        float64 `json:"base_tuples_per_ms"`
	CountRate       float64 `json:"count_tuples_per_ms"`
	WeightedRate    float64 `json:"weighted_tuples_per_ms"`
	CountSpeedup    float64 `json:"count_speedup_vs_1"`
	WeightedSpeedup float64 `json:"weighted_speedup_vs_1"`
	WeightedVsCount float64 `json:"weighted_vs_count"`
}

func policyTrials(s float64, window time.Duration, workNS int64) (policyPoint, error) {
	cdf := zipfCDF(s, ranks)
	k0, k1 := zipfKeys(0), zipfKeys(1)
	w := analyticWeights(cdf, k0, k1)
	payloads := [2]operator.PayloadFn{
		zipfPositions(cdf, k0, nil, 0),
		zipfPositions(cdf, k1, nil, 0),
	}
	run := func(split func(*trial) error) (float64, error) {
		t, err := startTrial(payloads, workNS)
		if err != nil {
			return 0, err
		}
		defer t.Close()
		if split != nil {
			if err := split(t); err != nil {
				return 0, err
			}
			// Let the replicas drain the backlog the split paused on
			// before the measurement window opens.
			time.Sleep(100 * time.Millisecond)
		}
		return t.sinkRate(window), nil
	}
	pt := policyPoint{ZipfS: s, WindowMS: float64(window.Microseconds()) / 1000}
	var err error
	if pt.BaseRate, err = run(nil); err != nil {
		return pt, fmt.Errorf("whole: %w", err)
	}
	if pt.CountRate, err = run(func(t *trial) error {
		_, err := t.cl.SplitHAU(context.Background(), "P", replicas)
		return err
	}); err != nil {
		return pt, fmt.Errorf("count-balanced: %w", err)
	}
	if pt.WeightedRate, err = run(func(t *trial) error {
		_, err := t.cl.SplitHAUWeighted(context.Background(), "P", replicas, w)
		return err
	}); err != nil {
		return pt, fmt.Errorf("weighted: %w", err)
	}
	pt.CountSpeedup = pt.CountRate / pt.BaseRate
	pt.WeightedSpeedup = pt.WeightedRate / pt.BaseRate
	pt.WeightedVsCount = pt.WeightedRate / pt.CountRate
	return pt, nil
}

// --- experiment 2: drifting hotspot ------------------------------------------

type driftPoint struct {
	ZipfS           float64 `json:"zipf_s"`
	Replicas        int     `json:"replicas"`
	PreRatio        float64 `json:"pre_rebalance_ratio"`
	PostRatio       float64 `json:"post_rebalance_ratio"`
	MaxPostRatio    float64 `json:"max_post_ratio"`
	MovedSlots      int     `json:"moved_slots"`
	ReplicasChanged bool    `json:"replicas_changed"`
	Pass            bool    `json:"pass"`
}

// driftTrial splits the Pair stage 4 ways balanced for hot band A, lets
// the workload drift onto band-B keys whose slots all live on ONE replica
// of that assignment, then rebalances with the drifted weights and checks
// the imbalance ratio recovers without a resplit.
func driftTrial(s float64, driftAt uint64, workNS int64) (driftPoint, error) {
	pt := driftPoint{ZipfS: s, MaxPostRatio: maxDrift}
	cdf := zipfCDF(s, ranks)
	a0, a1 := zipfKeys(0), zipfKeys(1)
	wA := analyticWeights(cdf, a0, a1)

	// Mirror the weighted split locally (same deterministic algorithm the
	// cluster runs) to find which replica each slot lands on, then aim the
	// drifted hot band at slots co-located on the replica owning band A's
	// heaviest slot — the adversarial drift a static assignment cannot
	// absorb.
	mirror := partition.NewAssignment(partition.DefaultSlots)
	mirror.RescaleWeighted(replicas, wA)
	hotSlot := 0
	for sl, v := range wA {
		if v > wA[hotSlot] {
			hotSlot = sl
		}
	}
	target := mirror.Owner(hotSlot)
	driftSlots := map[int]bool{}
	for sl := hotRanks; sl < partition.DefaultSlots && len(driftSlots) < 24; sl++ {
		if mirror.Owner(sl) == target {
			driftSlots[sl] = true
		}
	}
	driftKey := func(src int) []string {
		keys := make([]string, ranks)
		for r := range keys {
			p := fmt.Sprintf("d%d-", src)
			if r < hotRanks {
				keys[r] = slotSetKey(p, r, driftSlots)
			} else {
				keys[r] = p + fmt.Sprint(r)
			}
		}
		return keys
	}
	b0, b1 := driftKey(0), driftKey(1)
	wB := analyticWeights(cdf, b0, b1)

	payloads := [2]operator.PayloadFn{
		zipfPositions(cdf, a0, b0, driftAt),
		zipfPositions(cdf, a1, b1, driftAt),
	}
	t, err := startTrial(payloads, workNS)
	if err != nil {
		return pt, err
	}
	defer t.Close()
	ctx := context.Background()
	if _, err := t.cl.SplitHAUWeighted(ctx, "P", replicas, wA); err != nil {
		return pt, fmt.Errorf("weighted split: %w", err)
	}
	before := t.cl.Replicas("P")
	pt.Replicas = len(before)

	// Wait for both sources to cross the drift point (ids are emitted per
	// source, the sink sees both streams).
	if err := waitFor(30*time.Second, func() bool {
		return t.col.Count() > 2*driftAt+2000
	}); err != nil {
		return pt, fmt.Errorf("workload never drifted: %w", err)
	}

	_, pt.PreRatio = t.cl.LoadShares("P", wB)
	stats, err := t.cl.RebalanceHAU(ctx, "P", wB)
	if err != nil {
		return pt, fmt.Errorf("rebalance: %w", err)
	}
	pt.MovedSlots = stats.Moved
	after := t.cl.Replicas("P")
	pt.ReplicasChanged = len(after) != len(before)
	_, pt.PostRatio = t.cl.LoadShares("P", wB)
	pt.Pass = !pt.ReplicasChanged && pt.PostRatio <= maxDrift
	return pt, nil
}
