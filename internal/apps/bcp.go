package apps

import (
	"meteorshower/internal/cluster"
	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
)

// BCPConfig sizes the Bus Capacity Prediction application (paper §II-B2,
// Fig. 3): camera sources S0..3 feed dispatchers D, people counters C and
// historical image processors H; boarding models B join into J; on-vehicle
// sensor sources S4..7 feed noise filters N, arrival models A and
// alighting models L; groups G merge into crowdedness predictors P and the
// sink K.
type BCPConfig struct {
	CameraGroups  int // S/D/H/B per group; C = 4x
	SensorGroups  int // sensor S/N/A/L per group
	CamsPerSource int
	ImgW, ImgH    int
	MaxPeople     int
	ArriveEvery   int // frames between bus arrivals at a camera
	CamRatePerMS  float64
	SensRatePerMS float64
	MaxRate       bool // elastic sources: replay as fast as absorbed
	CamBurst      int
	SensBurst     int
	Seed          int64

	Collector     *metrics.Collector
	SinkRef       *SinkRef
	TrackIdentity bool
}

// BCPPaper returns the 55-operator configuration (4 camera groups: 4 S +
// 4 D + 16 C + 4 H + 4 B + 2 J; 4 sensor groups: 4 S + 4 N + 4 A + 4 L;
// 2 G + 2 P + 1 K).
func BCPPaper(col *metrics.Collector) BCPConfig {
	return BCPConfig{
		CameraGroups: 4, SensorGroups: 4, CamsPerSource: 6,
		ImgW: 48, ImgH: 32, MaxPeople: 6, ArriveEvery: 20,
		CamRatePerMS: 0.20, SensRatePerMS: 0.30,
		MaxRate: true, CamBurst: 4, SensBurst: 4, Seed: 2,
		Collector: col,
	}
}

// BCPSmall returns a compact configuration for tests: 1 camera group with
// 2 counters, 1 sensor group, 13 operators total.
func BCPSmall(col *metrics.Collector) BCPConfig {
	return BCPConfig{
		CameraGroups: 1, SensorGroups: 1, CamsPerSource: 2,
		ImgW: 32, ImgH: 24, MaxPeople: 3, ArriveEvery: 4,
		CamRatePerMS: 0.5, SensRatePerMS: 1, Seed: 2,
		Collector: col,
	}
}

// countersPerGroup is the number of Counter pipelines per camera group.
const countersPerGroup = 4

// BCP builds the application spec.
func BCP(cfg BCPConfig) cluster.AppSpec {
	g := graph.New()
	addAll := func(ids ...string) {
		for _, id := range ids {
			g.MustAddNode(id)
		}
	}
	// Camera side.
	for c := 0; c < cfg.CameraGroups; c++ {
		addAll("S"+itoa(c), "D"+itoa(c), "H"+itoa(c), "B"+itoa(c))
		for k := 0; k < countersPerGroup; k++ {
			addAll("C" + itoa(c*countersPerGroup+k))
		}
	}
	nJoins := (cfg.CameraGroups + 1) / 2
	for j := 0; j < nJoins; j++ {
		addAll("J" + itoa(j))
	}
	// Sensor side.
	for s := 0; s < cfg.SensorGroups; s++ {
		addAll("S"+itoa(cfg.CameraGroups+s), "N"+itoa(s), "A"+itoa(s), "L"+itoa(s))
	}
	nGroups := (cfg.SensorGroups + 1) / 2
	if nJoins > nGroups {
		nGroups = nJoins
	}
	for gi := 0; gi < nGroups; gi++ {
		addAll("G"+itoa(gi), "P"+itoa(gi))
	}
	addAll("K")

	// Camera wiring: S -> D -> {C..., H}; C,H -> B; B pairs -> J.
	for c := 0; c < cfg.CameraGroups; c++ {
		g.MustAddEdge("S"+itoa(c), "D"+itoa(c))
		for k := 0; k < countersPerGroup; k++ {
			g.MustAddEdge("D"+itoa(c), "C"+itoa(c*countersPerGroup+k))
		}
		g.MustAddEdge("D"+itoa(c), "H"+itoa(c))
		for k := 0; k < countersPerGroup; k++ {
			g.MustAddEdge("C"+itoa(c*countersPerGroup+k), "B"+itoa(c))
		}
		g.MustAddEdge("H"+itoa(c), "B"+itoa(c))
		g.MustAddEdge("B"+itoa(c), "J"+itoa(c/2))
	}
	// A J with a single camera group still needs two inputs: loop the
	// same B? Joins require two ports; for odd group counts the last join
	// reuses the previous B.
	for j := 0; j < nJoins; j++ {
		if g.InDegree("J"+itoa(j)) == 1 {
			src := "B" + itoa(2*j)
			if 2*j > 0 {
				src = "B" + itoa(2*j-1)
			} else if cfg.CameraGroups > 1 {
				src = "B1"
			}
			if g.PortOf(src, "J"+itoa(j)) < 0 {
				g.MustAddEdge(src, "J"+itoa(j))
			}
		}
	}
	// Sensor wiring: S -> N -> {A, L}.
	for s := 0; s < cfg.SensorGroups; s++ {
		g.MustAddEdge("S"+itoa(cfg.CameraGroups+s), "N"+itoa(s))
		g.MustAddEdge("N"+itoa(s), "A"+itoa(s))
		g.MustAddEdge("N"+itoa(s), "L"+itoa(s))
	}
	// Groups: J j -> G j; A/L pairs -> their group; G -> P -> K.
	for j := 0; j < nJoins; j++ {
		g.MustAddEdge("J"+itoa(j), "G"+itoa(j%nGroups))
	}
	for s := 0; s < cfg.SensorGroups; s++ {
		gi := s / 2
		if gi >= nGroups {
			gi = nGroups - 1
		}
		g.MustAddEdge("A"+itoa(s), "G"+itoa(gi))
		g.MustAddEdge("L"+itoa(s), "G"+itoa(gi))
	}
	for gi := 0; gi < nGroups; gi++ {
		g.MustAddEdge("G"+itoa(gi), "P"+itoa(gi))
		g.MustAddEdge("P"+itoa(gi), "K")
	}

	camSources := cfg.CameraGroups
	return cluster.AppSpec{
		Name:  "BCP",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			idx := atoi(id[1:])
			switch id[0] {
			case 'S':
				if idx < camSources {
					src := operator.NewRateSource(
						id, cfg.CamRatePerMS, cfg.Seed+int64(idx),
						ImagePayload(idx, cfg.CamsPerSource, cfg.ImgW, cfg.ImgH, cfg.MaxPeople),
					)
					src.MaxRate = cfg.MaxRate
					if cfg.CamBurst > 0 {
						src.CatchUpCap = cfg.CamBurst
					}
					return []operator.Operator{src}
				}
				src := operator.NewRateSource(
					id, cfg.SensRatePerMS, cfg.Seed+int64(idx),
					SensorPayload(idx, cfg.CamsPerSource, 50),
				)
				src.MaxRate = cfg.MaxRate
				if cfg.SensBurst > 0 {
					src.CatchUpCap = cfg.SensBurst
				}
				return []operator.Operator{src}
			case 'D':
				return []operator.Operator{NewFrameDispatchOp(id, countersPerGroup, countersPerGroup)}
			case 'C':
				return []operator.Operator{NewCountPeopleOp(id)}
			case 'H':
				return []operator.Operator{NewHistoryOp(id, cfg.ArriveEvery)}
			case 'B':
				return []operator.Operator{NewEMAPredictOp(id, 0.3)}
			case 'J':
				return []operator.Operator{NewCombineOp(id, func(a, b float64) float64 { return (a + b) / 2 })}
			case 'N':
				return []operator.Operator{NewRangeFilterOp(id, 0, 60, 2)}
			case 'A':
				return []operator.Operator{NewEMAPredictOp(id, 0.4)}
			case 'L':
				return []operator.Operator{NewEMAPredictOp(id, 0.4)}
			case 'G':
				return []operator.Operator{operator.NewPassthrough(id, 1)}
			case 'P':
				return []operator.Operator{NewEMAPredictOp(id, 0.5)}
			default:
				return []operator.Operator{newSink(id, cfg.Collector, cfg.SinkRef, cfg.TrackIdentity)}
			}
		},
	}
}

func atoi(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			break
		}
		n = n*10 + int(s[i]-'0')
	}
	return n
}
