// Command msbench regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	msbench -exp all                     # everything (slow)
//	msbench -exp fig12 -window 3s        # one experiment, bigger window
//	msbench -exp fig14 -app SignalGuru   # one app
//	msbench -exp table1
//
// Experiments: table1, fig5, fig12, fig13, fig14, fig15, fig16, ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"meteorshower/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1|fig5|fig12|fig13|fig14|fig15|fig16|ablations|soak|all")
		window = flag.Duration("window", 2*time.Second, "measurement window (the paper's 10-minute window, scaled)")
		warmup = flag.Duration("warmup", 0, "warmup/profiling time (default window/4)")
		nodes  = flag.Int("nodes", 8, "worker nodes")
		app    = flag.String("app", "", "restrict per-app experiments to TMI|BCP|SignalGuru")
		quick  = flag.Bool("quick", false, "reduced grids")
		seed   = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	p := bench.Params{Window: *window, Warmup: *warmup, Nodes: *nodes, Quick: *quick, Seed: *seed}
	apps := bench.AllApps()
	if *app != "" {
		apps = nil
		for _, k := range bench.AllApps() {
			if strings.EqualFold(k.String(), *app) {
				apps = append(apps, k)
			}
		}
		if len(apps) == 0 {
			fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
			os.Exit(2)
		}
	}

	run := func(name string, fn func() error) {
		fmt.Printf("== %s ==\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", name, time.Since(start).Truncate(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("table1", func() error {
			bench.FprintTable1(os.Stdout, bench.RunTable1(*seed))
			return nil
		})
	}
	if want("fig5") {
		run("fig5", func() error {
			traces, err := bench.RunFig5(p)
			if err != nil {
				return err
			}
			bench.FprintFig5(os.Stdout, traces)
			return nil
		})
	}
	if want("fig12") || want("fig13") {
		run("fig12+fig13", func() error {
			cc, err := bench.RunCommonCase(p, os.Stdout)
			if err != nil {
				return err
			}
			if want("fig12") || *exp == "all" {
				cc.FprintFig12(os.Stdout)
			}
			if want("fig13") || *exp == "all" {
				cc.FprintFig13(os.Stdout)
			}
			fmt.Printf("\nsource preservation gain @0 ckpts: %.2fx (paper: ~1.35x avg)\n",
				cc.SourcePreservationGain())
			fmt.Printf("async gain MS-src+ap/MS-src @3 ckpts: %.2fx (paper: ~1.28x avg)\n",
				cc.AsyncGainAt(3))
			return nil
		})
	}
	if want("fig14") {
		run("fig14", func() error {
			for _, k := range apps {
				rows, err := bench.RunFig14(p, k)
				if err != nil {
					return err
				}
				bench.FprintFig14(os.Stdout, k.String(), rows)
			}
			return nil
		})
	}
	if want("fig15") {
		run("fig15", func() error {
			for _, k := range apps {
				series, err := bench.RunFig15(p, k)
				if err != nil {
					return err
				}
				bench.FprintFig15(os.Stdout, series)
			}
			return nil
		})
	}
	if want("fig16") {
		run("fig16", func() error {
			for _, k := range apps {
				rows, err := bench.RunFig16(p, k)
				if err != nil {
					return err
				}
				bench.FprintFig16(os.Stdout, k.String(), rows)
			}
			return nil
		})
	}
	if want("soak") {
		run("soak", func() error {
			res, err := bench.RunSoak(p, bench.TMIApp, bench.MSSoakScheme(), 3)
			if err != nil {
				return err
			}
			bench.FprintSoak(os.Stdout, res)
			return nil
		})
	}
	if want("ablations") {
		run("ablations", func() error {
			var all []bench.AblationRow
			for _, job := range []struct {
				fn   func(bench.Params, bench.AppKind) ([]bench.AblationRow, error)
				kind bench.AppKind
			}{
				{bench.RunAblationBufferSize, bench.TMIApp},
				{bench.RunAblationAsync, bench.BCPApp}, // dense sink stream
				{bench.RunAblationAware, bench.TMIApp},
				{bench.RunAblationGroupCommit, bench.TMIApp},
			} {
				rows, err := job.fn(p, job.kind)
				if err != nil {
					return err
				}
				all = append(all, rows...)
			}
			rows, err := bench.RunAblationDelta(p, bench.BCPApp)
			if err != nil {
				return err
			}
			all = append(all, rows...)
			all = append(all, bench.RunAblationScatter(p, 1<<20)...)
			bench.FprintAblations(os.Stdout, all)
			return nil
		})
	}
}
