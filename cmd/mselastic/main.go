// Command mselastic benchmarks metrics-driven fleet elasticity and
// regenerates BENCH_elasticity.json. Two workload scenarios run on the
// same four-pipeline application, each once with the elasticity engine on
// (fleet 2..5) and once on a static two-node fleet:
//
//   - flash crowd: steady base load, then a 10x rate spike, then back.
//     The fleet must grow during the spike, hold p99 below the static
//     fleet's, and drain back down afterwards — with the sink's
//     exactly-once oracle clean across every migration.
//   - diurnal: a sine-modulated rate over two periods. The fleet should
//     track the curve, growing near the peaks and shrinking in the
//     troughs.
//
// Each run records a fleet/rate timeline, the executed scale events, and
// latency over the scenario's high-load window.
//
//	mselastic                 # full run, writes BENCH_elasticity.json
//	mselastic -out -          # print JSON to stdout instead
//	mselastic -quick          # shorter phases (CI smoke)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"meteorshower/internal/cluster"
	"meteorshower/internal/elastic"
	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/placement"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
)

const (
	pipelines     = 4                     // S_i -> M_i -> K fan-in width
	perTupleDelay = 60 * time.Microsecond // modelled service time per tuple per receiving stage
	minNodes      = 2
	maxNodes      = 5
)

func main() {
	var (
		out   = flag.String("out", "BENCH_elasticity.json", `output path; "-" prints to stdout`)
		quick = flag.Bool("quick", false, "shorter phases (CI smoke)")
	)
	flag.Parse()

	doc := map[string]any{
		"benchmark": "elasticity",
		"environment": map[string]string{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
		},
		"regenerate": "go run ./cmd/mselastic",
	}

	scenarios := []scenario{flashCrowd(*quick), diurnal(*quick)}
	failed := false
	for _, sc := range scenarios {
		fmt.Fprintf(os.Stderr, "== %s ==\n", sc.name)
		cmp, err := runComparison(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mselastic: %s: %v\n", sc.name, err)
			os.Exit(1)
		}
		doc[sc.name] = cmp
		for _, p := range cmp.check(sc, *quick) {
			fmt.Fprintf(os.Stderr, "FAIL %s: %s\n", sc.name, p)
			failed = true
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mselastic: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mselastic: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

// scenario shapes the offered load: rate is tuples/ms per source as a
// function of elapsed time, and [measFrom, measTo] is the high-load window
// the latency comparison is scored over.
type scenario struct {
	name     string
	total    time.Duration
	measFrom time.Duration
	measTo   time.Duration
	rate     func(elapsed time.Duration) float64
}

// flashCrowd holds a light base rate, spikes 10x, and drops back. The
// measurement window is the tail of the spike: the static fleet's backlog
// has built up by then, while the elastic fleet has had time to grow.
func flashCrowd(quick bool) scenario {
	const base = 0.5
	warm, crowd, tail := 800*time.Millisecond, 1500*time.Millisecond, 1900*time.Millisecond
	if quick {
		warm, crowd, tail = 500*time.Millisecond, 1000*time.Millisecond, 700*time.Millisecond
	}
	crowdEnd := warm + crowd
	return scenario{
		name:     "flash_crowd",
		total:    crowdEnd + tail,
		measFrom: warm + crowd/2,
		measTo:   crowdEnd,
		rate: func(elapsed time.Duration) float64 {
			if elapsed >= warm && elapsed < crowdEnd {
				return base * 10
			}
			return base
		},
	}
}

// diurnal modulates the rate with a sine over two periods; the measurement
// window brackets the first peak.
func diurnal(quick bool) scenario {
	// The sine peak (base * 1.9 per source) must exceed two nodes' service
	// capacity, or the static baseline never falls behind and the
	// comparison is just migration jitter.
	const base = 3.0
	period := 2400 * time.Millisecond
	if quick {
		period = 1600 * time.Millisecond
	}
	return scenario{
		name:     "diurnal",
		total:    2 * period,
		measFrom: period / 8,
		measTo:   period / 2,
		rate: func(elapsed time.Duration) float64 {
			phase := 2 * math.Pi * float64(elapsed) / float64(period)
			r := base * (1 + 0.9*math.Sin(phase))
			if r < 0.05 {
				r = 0.05
			}
			return r
		},
	}
}

// timelinePoint is one 50ms sample of the run.
type timelinePoint struct {
	TMS       int64   `json:"t_ms"`
	Fleet     int     `json:"fleet"`
	RatePerMS float64 `json:"offered_rate_per_source"`
	Sink      uint64  `json:"sink_tuples"`
}

type scaleEvent struct {
	TMS   int64  `json:"t_ms"`
	Kind  string `json:"kind"`
	Node  int    `json:"node"`
	Fleet int    `json:"fleet_after"`
}

// runResult is one run's record (elastic or static).
type runResult struct {
	Timeline    []timelinePoint `json:"timeline"`
	Events      []scaleEvent    `json:"events,omitempty"`
	MaxFleet    int             `json:"max_fleet"`
	FinalFleet  int             `json:"final_fleet"`
	Delivered   uint64          `json:"delivered"`
	Violations  uint64          `json:"exactly_once_violations"`
	CrowdCount  uint64          `json:"window_tuples"`
	CrowdP99MS  float64         `json:"window_p99_ms"`
	CrowdMeanMS float64         `json:"window_mean_ms"`
}

type comparison struct {
	Elastic runResult `json:"elastic"`
	Static  runResult `json:"static"`
	P99Gain float64   `json:"p99_speedup_vs_static"`
}

// check returns the acceptance violations of one scenario comparison.
// The flash crowd is the latency experiment: its measurement window must
// show elastic p99 strictly below the static fleet's, and (outside quick
// mode, whose shortened tail is too brief for the scale-in cooldowns) the
// fleet must have drained back down by the end. The diurnal scenario is
// the tracking experiment: the fleet must oscillate with the sine — both
// scale directions executed — while p99 is reported, not gated; a trailing
// trigger cannot beat a ramp it has not seen yet in every window.
func (c comparison) check(sc scenario, quick bool) []string {
	var probs []string
	if c.Elastic.Violations != 0 || c.Static.Violations != 0 {
		probs = append(probs, fmt.Sprintf("exactly-once violated (elastic %d, static %d)",
			c.Elastic.Violations, c.Static.Violations))
	}
	if c.Elastic.MaxFleet <= minNodes {
		probs = append(probs, "fleet never grew under load")
	}
	switch sc.name {
	case "flash_crowd":
		// The latency comparison only gates full runs: quick mode's
		// measurement window is a few hundred milliseconds, where host
		// scheduling noise can outweigh the real backlog difference.
		if !quick && c.Elastic.CrowdP99MS >= c.Static.CrowdP99MS {
			probs = append(probs, fmt.Sprintf("elastic crowd p99 %.3fms not better than static %.3fms",
				c.Elastic.CrowdP99MS, c.Static.CrowdP99MS))
		}
		if !quick && c.Elastic.FinalFleet >= c.Elastic.MaxFleet {
			probs = append(probs, fmt.Sprintf("fleet never shrank back (max %d, final %d)",
				c.Elastic.MaxFleet, c.Elastic.FinalFleet))
		}
	case "diurnal":
		outs, ins := 0, 0
		for _, ev := range c.Elastic.Events {
			switch ev.Kind {
			case elastic.ScaleOut.String():
				outs++
			case elastic.ScaleIn.String():
				ins++
			}
		}
		if outs < 2 || ins < 1 {
			probs = append(probs, fmt.Sprintf("fleet did not track the sine (%d scale-outs, %d scale-ins)", outs, ins))
		}
	}
	return probs
}

func runComparison(sc scenario) (comparison, error) {
	el, err := runScenario(sc, true)
	if err != nil {
		return comparison{}, fmt.Errorf("elastic run: %w", err)
	}
	st, err := runScenario(sc, false)
	if err != nil {
		return comparison{}, fmt.Errorf("static run: %w", err)
	}
	cmp := comparison{Elastic: el, Static: st}
	if el.CrowdP99MS > 0 {
		cmp.P99Gain = st.CrowdP99MS / el.CrowdP99MS
	}
	fmt.Fprintf(os.Stderr,
		"  elastic: fleet %d..%d, window p99 %8.3f ms (%d tuples), violations %d\n",
		minNodes, el.MaxFleet, el.CrowdP99MS, el.CrowdCount, el.Violations)
	fmt.Fprintf(os.Stderr,
		"  static:  fleet %d,    window p99 %8.3f ms (%d tuples), violations %d\n",
		minNodes, st.CrowdP99MS, st.CrowdCount, st.Violations)
	return cmp, nil
}

// sinkBox tracks the live sink instance (migration re-instantiates it).
type sinkBox struct {
	mu   sync.Mutex
	sink *operator.Sink
}

func (b *sinkBox) set(s *operator.Sink) {
	b.mu.Lock()
	b.sink = s
	b.mu.Unlock()
}

func (b *sinkBox) get() *operator.Sink {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sink
}

// benchApp builds S0..S3 -> M0..M3 -> K with rate-driven sources. startNS
// anchors the scenario clock: sources offer sc.rate(now - start).
func benchApp(sc scenario, startNS *atomic.Int64, col *metrics.Collector, box *sinkBox) cluster.AppSpec {
	g := graph.New()
	for i := 0; i < pipelines; i++ {
		s, m := fmt.Sprintf("S%d", i), fmt.Sprintf("M%d", i)
		g.MustAddNode(s)
		g.MustAddNode(m)
		g.MustAddEdge(s, m)
	}
	g.MustAddNode("K")
	for i := 0; i < pipelines; i++ {
		g.MustAddEdge(fmt.Sprintf("M%d", i), "K")
	}
	return cluster.AppSpec{
		Name:  "elasticbench",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id[0] {
			case 'S':
				idx := int64(id[1] - '0')
				src := operator.NewRateSource(id, 0, idx+1, operator.BytePayload(32, 8))
				src.CatchUpCap = 512
				src.RateFn = func(nowNS int64) float64 {
					start := startNS.Load()
					if start == 0 {
						return 0
					}
					return sc.rate(time.Duration(nowNS - start))
				}
				return []operator.Operator{src}
			case 'M':
				return []operator.Operator{operator.NewPassthrough(id, 1)}
			default:
				s := operator.NewSink("K", col)
				s.TrackIdentity = true
				box.set(s)
				return []operator.Operator{s}
			}
		},
	}
}

func fastDisk() storage.DiskSpec {
	return storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond, TimeScale: 0}
}

func runScenario(sc scenario, elasticOn bool) (runResult, error) {
	var res runResult
	col := metrics.NewCollector()
	box := &sinkBox{}
	var startNS atomic.Int64

	cfg := cluster.Config{
		App:            benchApp(sc, &startNS, col, box),
		Scheme:         spe.MSSrcAP,
		Nodes:          minNodes,
		NodeCores:      1,
		PerTupleDelay:  perTupleDelay,
		Placement:      placement.LoadAware{},
		RebalanceEvery: 50 * time.Millisecond,
		LocalDiskSpec:  fastDisk(),
		SharedSpec:     fastDisk(),
		EdgeBuffer:     8 << 10,
		TickEvery:      time.Millisecond,
		CkptPeriod:     100 * time.Millisecond,
		PreserveMemCap: 1 << 20,
		SourceFlush:    256,
		Seed:           1,
		Metrics:        col,
	}
	if elasticOn {
		cfg.ElasticEvery = 50 * time.Millisecond
		cfg.Elastic = elastic.Config{
			// 2-of-3 at a 50ms tick reacts ~150ms into an overload; the
			// longer CooldownIn keeps a dip on a rising ramp from handing
			// a node back that the next peak needs.
			Window: 3, Violations: 2,
			ScaleOutUtil: 0.7, ScaleInUtil: 0.15, ScaleOutQueue: 400,
			CooldownOut: 200 * time.Millisecond, CooldownIn: 400 * time.Millisecond,
			MinNodes: minNodes, MaxNodes: maxNodes,
		}
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return res, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		return res, err
	}
	defer cl.StopAll()
	cl.StartController(ctx)

	start := time.Now()
	startNS.Store(start.UnixNano())
	res.MaxFleet = cl.FleetSize()
	for elapsed := time.Duration(0); elapsed < sc.total; elapsed = time.Since(start) {
		time.Sleep(50 * time.Millisecond)
		fleet := cl.FleetSize()
		if fleet > res.MaxFleet {
			res.MaxFleet = fleet
		}
		res.Timeline = append(res.Timeline, timelinePoint{
			TMS:       time.Since(start).Milliseconds(),
			Fleet:     fleet,
			RatePerMS: sc.rate(time.Since(start)),
			Sink:      col.Count(),
		})
	}
	res.FinalFleet = cl.FleetSize()
	cl.StopAll()

	if elasticOn {
		for _, ev := range cl.Elastic().Events() {
			res.Events = append(res.Events, scaleEvent{
				TMS:   ev.At.Sub(start).Milliseconds(),
				Kind:  ev.Kind.String(),
				Node:  ev.Node,
				Fleet: ev.Fleet,
			})
		}
	}
	s := box.get()
	if s == nil {
		return res, fmt.Errorf("sink never instantiated")
	}
	res.Delivered = s.Delivered()
	res.Violations = s.Report().TotalViolations()
	ws := col.Window(start.Add(sc.measFrom).UnixNano(), start.Add(sc.measTo).UnixNano())
	res.CrowdCount = ws.Count
	res.CrowdP99MS = float64(ws.P99.Microseconds()) / 1000
	res.CrowdMeanMS = float64(ws.Mean.Microseconds()) / 1000
	if res.CrowdCount == 0 {
		return res, fmt.Errorf("no deliveries inside the measurement window")
	}
	return res, nil
}
