package operator

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"meteorshower/internal/tuple"
)

// AggKind selects the aggregate a window computes.
type AggKind uint8

const (
	// AggSum totals the values.
	AggSum AggKind = iota
	// AggAvg averages the values.
	AggAvg
	// AggMin keeps the minimum.
	AggMin
	// AggMax keeps the maximum.
	AggMax
	// AggCount counts tuples.
	AggCount
)

func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	default:
		return "unknown-agg"
	}
}

// ValueFn extracts the numeric value a window aggregates from a tuple.
// Implementations must be pure.
type ValueFn func(*tuple.Tuple) (float64, error)

// Float64Value decodes the payload's first 8 bytes as a float64 — matches
// the encoding of apps.Reading and apps.Speed.
func Float64Value(t *tuple.Tuple) (float64, error) {
	if len(t.Data) < 8 {
		return 0, errors.New("operator: payload too short for float64 value")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(t.Data)), nil
}

// TumblingWindow computes a per-key aggregate over fixed, non-overlapping
// event-time windows. When a window closes (its end passes, observed via
// tick), one result tuple per key is emitted with the aggregate encoded as
// a big-endian-free float64 (same layout Float64Value reads).
type TumblingWindow struct {
	id       identityCounter
	Kind     AggKind
	WindowNS int64
	Value    ValueFn

	winStart int64
	sums     map[string]float64
	mins     map[string]float64
	maxs     map[string]float64
	counts   map[string]uint64
}

// NewTumblingWindow returns a tumbling-window aggregate operator.
func NewTumblingWindow(name string, kind AggKind, windowNS int64, value ValueFn) *TumblingWindow {
	if value == nil {
		value = Float64Value
	}
	w := &TumblingWindow{id: identityCounter{name: name}, Kind: kind, WindowNS: windowNS, Value: value}
	w.reset()
	return w
}

func (w *TumblingWindow) reset() {
	w.sums = make(map[string]float64)
	w.mins = make(map[string]float64)
	w.maxs = make(map[string]float64)
	w.counts = make(map[string]uint64)
}

// Name implements Operator.
func (w *TumblingWindow) Name() string { return w.id.name }

// OnTuple folds t into the open window.
func (w *TumblingWindow) OnTuple(_ int, t *tuple.Tuple, _ Emitter) error {
	v, err := w.Value(t)
	if err != nil {
		return err
	}
	if w.winStart == 0 {
		w.winStart = t.Ts
	}
	k := t.Key
	if w.counts[k] == 0 {
		w.mins[k] = v
		w.maxs[k] = v
	} else {
		if v < w.mins[k] {
			w.mins[k] = v
		}
		if v > w.maxs[k] {
			w.maxs[k] = v
		}
	}
	w.sums[k] += v
	w.counts[k]++
	return nil
}

// OnTick closes the window when its span has elapsed and emits one result
// tuple per key (keys sorted for determinism).
func (w *TumblingWindow) OnTick(now int64, emit Emitter) error {
	if w.winStart == 0 || now-w.winStart < w.WindowNS {
		return nil
	}
	keys := make([]string, 0, len(w.counts))
	for k := range w.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var v float64
		switch w.Kind {
		case AggSum:
			v = w.sums[k]
		case AggAvg:
			v = w.sums[k] / float64(w.counts[k])
		case AggMin:
			v = w.mins[k]
		case AggMax:
			v = w.maxs[k]
		case AggCount:
			v = float64(w.counts[k])
		}
		out := &tuple.Tuple{Key: k, Ts: now, Data: binary.LittleEndian.AppendUint64(nil, math.Float64bits(v))}
		emit(0, w.id.stamp(out))
	}
	w.reset()
	w.winStart = 0
	return nil
}

// StateSize reports the open window's footprint.
func (w *TumblingWindow) StateSize() int64 {
	var n int64
	for k := range w.counts {
		n += int64(len(k)) + 32
	}
	return n
}

// Snapshot serializes the open window deterministically.
func (w *TumblingWindow) Snapshot() ([]byte, error) {
	buf := w.id.snapshot()
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.winStart))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.counts)))
	keys := make([]string, 0, len(w.counts))
	for k := range w.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w.sums[k]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w.mins[k]))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w.maxs[k]))
		buf = binary.LittleEndian.AppendUint64(buf, w.counts[k])
	}
	return buf, nil
}

// Restore rebuilds the open window.
func (w *TumblingWindow) Restore(buf []byte) error {
	if err := w.id.restore(&buf); err != nil {
		return err
	}
	if len(buf) < 12 {
		return errors.New("window: short snapshot")
	}
	w.winStart = int64(binary.LittleEndian.Uint64(buf))
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	buf = buf[12:]
	w.reset()
	for i := 0; i < n; i++ {
		if len(buf) < 2 {
			return errors.New("window: truncated snapshot")
		}
		kl := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < kl+32 {
			return errors.New("window: truncated snapshot")
		}
		k := string(buf[:kl])
		w.sums[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[kl:]))
		w.mins[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[kl+8:]))
		w.maxs[k] = math.Float64frombits(binary.LittleEndian.Uint64(buf[kl+16:]))
		w.counts[k] = binary.LittleEndian.Uint64(buf[kl+24:])
		buf = buf[kl+32:]
	}
	return nil
}

// TopK tracks the K highest-valued keys seen (by latest value) and emits
// the current ranking whenever it changes.
type TopK struct {
	id    identityCounter
	K     int
	Value ValueFn

	latest map[string]float64
}

// NewTopK returns a top-k ranking operator.
func NewTopK(name string, k int, value ValueFn) *TopK {
	if k <= 0 {
		k = 1
	}
	if value == nil {
		value = Float64Value
	}
	return &TopK{id: identityCounter{name: name}, K: k, Value: value, latest: make(map[string]float64)}
}

// Name implements Operator.
func (t *TopK) Name() string { return t.id.name }

// Ranking returns the current top-K keys, highest first.
func (t *TopK) Ranking() []string {
	keys := make([]string, 0, len(t.latest))
	for k := range t.latest {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if t.latest[keys[i]] != t.latest[keys[j]] {
			return t.latest[keys[i]] > t.latest[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > t.K {
		keys = keys[:t.K]
	}
	return keys
}

// OnTuple updates the key's value and emits the leader when the ranking's
// head changes.
func (t *TopK) OnTuple(_ int, tp *tuple.Tuple, emit Emitter) error {
	v, err := t.Value(tp)
	if err != nil {
		return err
	}
	var prevHead string
	if r := t.Ranking(); len(r) > 0 {
		prevHead = r[0]
	}
	t.latest[tp.Key] = v
	if r := t.Ranking(); len(r) > 0 && r[0] != prevHead {
		out := &tuple.Tuple{Key: r[0], Ts: tp.Ts,
			Data: binary.LittleEndian.AppendUint64(nil, math.Float64bits(t.latest[r[0]]))}
		emit(0, t.id.stamp(out))
	}
	return nil
}

// StateSize reports the tracked keys.
func (t *TopK) StateSize() int64 {
	var n int64
	for k := range t.latest {
		n += int64(len(k)) + 8
	}
	return n
}

// Snapshot serializes the tracked values deterministically.
func (t *TopK) Snapshot() ([]byte, error) {
	buf := t.id.snapshot()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.latest)))
	keys := make([]string, 0, len(t.latest))
	for k := range t.latest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.latest[k]))
	}
	return buf, nil
}

// Restore rebuilds the tracked values.
func (t *TopK) Restore(buf []byte) error {
	if err := t.id.restore(&buf); err != nil {
		return err
	}
	if len(buf) < 4 {
		return errors.New("topk: short snapshot")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	t.latest = make(map[string]float64, n)
	for i := 0; i < n; i++ {
		if len(buf) < 2 {
			return errors.New("topk: truncated snapshot")
		}
		kl := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < kl+8 {
			return errors.New("topk: truncated snapshot")
		}
		t.latest[string(buf[:kl])] = math.Float64frombits(binary.LittleEndian.Uint64(buf[kl:]))
		buf = buf[kl+8:]
	}
	return nil
}

// Sampler forwards every Nth tuple — deterministic decimation for
// downsampling heavy streams. Determinism keeps recovery replay exact.
type Sampler struct {
	id    identityCounter
	Every uint64
	seen  uint64
}

// NewSampler returns a 1-in-every sampler.
func NewSampler(name string, every uint64) *Sampler {
	if every == 0 {
		every = 1
	}
	return &Sampler{id: identityCounter{name: name}, Every: every}
}

// Name implements Operator.
func (s *Sampler) Name() string { return s.id.name }

// OnTuple forwards every Every-th tuple.
func (s *Sampler) OnTuple(_ int, t *tuple.Tuple, emit Emitter) error {
	s.seen++
	if s.seen%s.Every == 0 {
		out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: t.Data}
		emit(0, s.id.stamp(out))
	}
	return nil
}

// StateSize is the counter block.
func (s *Sampler) StateSize() int64 { return 16 }

// Snapshot serializes the decimation counter.
func (s *Sampler) Snapshot() ([]byte, error) {
	buf := s.id.snapshot()
	return binary.LittleEndian.AppendUint64(buf, s.seen), nil
}

// Restore rebuilds the counter.
func (s *Sampler) Restore(buf []byte) error {
	if err := s.id.restore(&buf); err != nil {
		return err
	}
	if len(buf) < 8 {
		return errors.New("sampler: short snapshot")
	}
	s.seen = binary.LittleEndian.Uint64(buf)
	return nil
}

// identityCounter stamps derived tuples with a per-operator identity so
// that baseline recovery's per-source dedup covers derived streams (the
// apps package has its own copy; this one serves the operator library).
type identityCounter struct {
	name string
	next uint64
}

func (c *identityCounter) stamp(t *tuple.Tuple) *tuple.Tuple {
	c.next++
	t.Src = c.name
	t.ID = c.next
	return t
}

func (c *identityCounter) snapshot() []byte {
	return binary.LittleEndian.AppendUint64(nil, c.next)
}

// restore consumes 8 bytes from *buf.
func (c *identityCounter) restore(buf *[]byte) error {
	if len(*buf) < 8 {
		return errors.New("operator: short identity snapshot")
	}
	c.next = binary.LittleEndian.Uint64(*buf)
	*buf = (*buf)[8:]
	return nil
}
