// Package delta implements block-based delta-checkpointing: instead of
// writing an HAU's full state every epoch, only the blocks that changed
// since the previous checkpoint are saved. The paper's related work
// (Cooperative HA Solution [4]) "experiments with delta-checkpointing
// (saving only the changed part of the state) to reduce the state size",
// and §V notes it "complement[s] Meteor Shower's application-aware
// checkpointing and could be applied jointly".
//
// The encoding is position-aligned: the new state is split into fixed-size
// blocks, and each block either matches the same-offset block of the base
// (COPY) or carries literal bytes (DATA). This is the scheme used by
// page-grained copy-on-write checkpoints; content-defined chunking would
// handle insertions better but checkpoint states here are struct dumps
// whose layout is stable.
package delta

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultBlockSize balances delta granularity against per-block overhead.
const DefaultBlockSize = 1024

const (
	opCopy uint8 = iota // block identical to base at the same offset
	opData              // literal block payload follows
)

var (
	// ErrCorrupt reports an undecodable delta.
	ErrCorrupt = errors.New("delta: corrupt encoding")
	// ErrBaseMismatch reports a base of the wrong length for this delta.
	ErrBaseMismatch = errors.New("delta: base length mismatch")
)

// Encoding layout (little endian):
//
//	magic      uint16 = 0x4d44 ("MD")
//	blockSize  uint32
//	baseLen    uint64
//	curLen     uint64
//	per block: op uint8 [+ payload for opData; last block may be short]
const magic uint16 = 0x4d44

// Diff encodes cur against base. blockSize <= 0 selects the default. The
// result is self-describing; Apply(base, diff) == cur always holds, even
// when lengths differ or base is nil.
func Diff(base, cur []byte, blockSize int) []byte {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	out := make([]byte, 0, len(cur)/8+32)
	out = binary.LittleEndian.AppendUint16(out, magic)
	out = binary.LittleEndian.AppendUint32(out, uint32(blockSize))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(base)))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(cur)))
	for off := 0; off < len(cur); off += blockSize {
		end := off + blockSize
		if end > len(cur) {
			end = len(cur)
		}
		cb := cur[off:end]
		if off+len(cb) <= len(base) && bytes.Equal(cb, base[off:off+len(cb)]) {
			out = append(out, opCopy)
			continue
		}
		out = append(out, opData)
		out = append(out, cb...)
	}
	return out
}

// Apply reconstructs the new state from base and a diff produced by Diff.
func Apply(base, diff []byte) ([]byte, error) {
	if len(diff) < 22 {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint16(diff) != magic {
		return nil, ErrCorrupt
	}
	blockSize := int(binary.LittleEndian.Uint32(diff[2:]))
	baseLen := int(binary.LittleEndian.Uint64(diff[6:]))
	curLen := int(binary.LittleEndian.Uint64(diff[14:]))
	if blockSize <= 0 || curLen < 0 {
		return nil, ErrCorrupt
	}
	if baseLen != len(base) {
		return nil, fmt.Errorf("%w: diff expects %d, base has %d", ErrBaseMismatch, baseLen, len(base))
	}
	out := make([]byte, 0, curLen)
	p := diff[22:]
	for off := 0; off < curLen; off += blockSize {
		n := blockSize
		if off+n > curLen {
			n = curLen - off
		}
		if len(p) < 1 {
			return nil, ErrCorrupt
		}
		op := p[0]
		p = p[1:]
		switch op {
		case opCopy:
			if off+n > len(base) {
				return nil, ErrCorrupt
			}
			out = append(out, base[off:off+n]...)
		case opData:
			if len(p) < n {
				return nil, ErrCorrupt
			}
			out = append(out, p[:n]...)
			p = p[n:]
		default:
			return nil, ErrCorrupt
		}
	}
	if len(p) != 0 {
		return nil, ErrCorrupt
	}
	return out, nil
}

// IsDelta reports whether blob looks like a Diff encoding.
func IsDelta(blob []byte) bool {
	return len(blob) >= 2 && binary.LittleEndian.Uint16(blob) == magic
}

// Savings returns 1 - len(diff)/len(cur): the fraction of write volume a
// delta checkpoint avoids (negative when the delta is larger than the
// state, which Diff callers should detect and fall back to full saves).
func Savings(diff []byte, curLen int) float64 {
	if curLen == 0 {
		return 0
	}
	return 1 - float64(len(diff))/float64(curLen)
}
