// Quickstart: build a custom three-stage stream application, run it under
// Meteor Shower's parallel-asynchronous checkpointing, take a checkpoint,
// fail the whole cluster, and recover with exactly-once delivery.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"meteorshower/internal/cluster"
	"meteorshower/internal/core"
	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/spe"
)

func main() {
	// 1. Describe the query network: sensors -> word counter -> sink.
	g := graph.New()
	g.MustAddNode("sensor-a")
	g.MustAddNode("sensor-b")
	g.MustAddNode("count")
	g.MustAddNode("sink")
	g.MustAddEdge("sensor-a", "count")
	g.MustAddEdge("sensor-b", "count")
	g.MustAddEdge("count", "sink")

	// 2. Bind operators. The factory is called again during recovery, so
	// it must return fresh instances.
	col := metrics.NewCollector()
	var lastSink *operator.Sink
	spec := cluster.AppSpec{
		Name:  "quickstart",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id {
			case "sensor-a", "sensor-b":
				return []operator.Operator{operator.NewRateSource(id, 5, 42,
					func(n uint64, rng *rand.Rand) (string, []byte) {
						words := []string{"meteor", "shower", "stream", "token"}
						return words[rng.Intn(len(words))], []byte("payload")
					})}
			case "count":
				return []operator.Operator{operator.NewCounter("count")}
			default:
				s := operator.NewSink("sink", col)
				s.TrackIdentity = true
				lastSink = s
				return []operator.Operator{s}
			}
		},
	}

	// 3. Assemble the system: 3 simulated nodes, MS-src+ap scheme.
	sys, err := core.NewSystem(core.Options{
		App:       spec,
		Scheme:    spe.MSSrcAP,
		Nodes:     3,
		TickEvery: time.Millisecond,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()

	// 4. Stream for a while, then checkpoint.
	time.Sleep(300 * time.Millisecond)
	epoch := sys.TriggerCheckpoint()
	if err := sys.WaitForEpoch(epoch, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint epoch %d complete; sink delivered %d tuples\n",
		epoch, col.Count())

	// 5. Large-scale burst failure: every node dies at once.
	time.Sleep(200 * time.Millisecond)
	sys.KillAll()
	stats, err := sys.RecoverAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d HAUs from epoch %d\n", stats.HAUs, stats.Epoch)

	// 6. The restarted sink replays the gap exactly once.
	time.Sleep(400 * time.Millisecond)
	fmt.Printf("after recovery: delivered=%d duplicates=%d mean latency=%s\n",
		lastSink.Delivered(), lastSink.Duplicates(), col.MeanLatency().Truncate(time.Microsecond))
	if lastSink.Duplicates() > 0 {
		log.Fatal("exactly-once violated")
	}
	fmt.Println("ok: exactly-once held across a whole-cluster failure")
}
