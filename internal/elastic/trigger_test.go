package elastic

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// utilsN builds n identical schedulable, drainable node utilizations.
func utilsN(n int, cpu float64, queue int) []Util {
	us := make([]Util, n)
	for i := range us {
		us[i] = Util{Node: i, CPU: cpu, Queue: queue, HAUs: 1, Sched: true, Drainable: true}
	}
	return us
}

// TestTriggerTable drives scripted sample sequences through the trigger
// and checks the decision after each one — the N-of-M window edge cases.
func TestTriggerTable(t *testing.T) {
	base := Config{
		Window: 3, Violations: 2,
		ScaleOutUtil: 0.8, ScaleInUtil: 0.2,
		MinNodes: 1, MaxNodes: 8,
	}
	queueCfg := base
	queueCfg.ScaleOutQueue = 100

	hot := utilsN(2, 0.95, 0)
	mid := utilsN(2, 0.5, 0)
	cold := utilsN(2, 0.05, 0)

	cases := []struct {
		name  string
		cfg   Config
		fleet int
		feed  [][]Util
		want  []DecisionKind
	}{
		{
			// No decision of any kind until Window samples exist.
			name: "fewer samples than window", cfg: base, fleet: 2,
			feed: [][]Util{hot, hot},
			want: []DecisionKind{None, None},
		},
		{
			// Exactly Violations of Window over threshold fires.
			name: "exactly n of m fires", cfg: base, fleet: 2,
			feed: [][]Util{hot, mid, hot},
			want: []DecisionKind{None, None, ScaleOut},
		},
		{
			// One short of Violations must not fire.
			name: "n minus one holds", cfg: base, fleet: 2,
			feed: [][]Util{hot, mid, mid},
			want: []DecisionKind{None, None, None},
		},
		{
			// Queue depth is an independent scale-out signal: CPU idle but
			// a queue over the threshold still counts as a violation.
			name: "queue signal fires", cfg: queueCfg, fleet: 2,
			feed: [][]Util{utilsN(2, 0.1, 500), utilsN(2, 0.1, 500), utilsN(2, 0.1, 500)},
			want: []DecisionKind{None, None, ScaleOut},
		},
		{
			// At MaxNodes the out decision is suppressed entirely.
			name: "max nodes blocks scale-out", cfg: base, fleet: 8,
			feed: [][]Util{hot, hot, hot},
			want: []DecisionKind{None, None, None},
		},
		{
			// At MinNodes the in decision is suppressed entirely.
			name: "min nodes blocks scale-in", cfg: base, fleet: 1,
			feed: [][]Util{cold, cold, cold},
			want: []DecisionKind{None, None, None},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTrigger(tc.cfg)
			now := time.Unix(0, 0)
			for i, utils := range tc.feed {
				d := tr.Observe(now, tc.fleet, utils)
				if d.Kind != tc.want[i] {
					t.Fatalf("sample %d: got %s (%s), want %s", i, d.Kind, d.Reason, tc.want[i])
				}
				now = now.Add(100 * time.Millisecond)
			}
		})
	}
}

// TestTriggerScaleInRanking pins the candidate list: cold drainable nodes
// only, least-loaded first, hot and undrainable nodes never included.
func TestTriggerScaleInRanking(t *testing.T) {
	tr := NewTrigger(Config{
		Window: 3, Violations: 3,
		ScaleOutUtil: 0.9, ScaleInUtil: 0.3,
		MinNodes: 1,
	})
	sample := []Util{
		{Node: 0, CPU: 0.10, Sched: true, Drainable: true},
		{Node: 1, CPU: 0.05, Sched: true, Drainable: true},
		{Node: 2, CPU: 0.08, Sched: true, Drainable: false}, // cold but pinned
		{Node: 3, CPU: 0.85, Sched: true, Drainable: true},  // hot
	}
	now := time.Unix(0, 0)
	var d Decision
	for i := 0; i < 3; i++ {
		d = tr.Observe(now, 4, sample)
		now = now.Add(100 * time.Millisecond)
	}
	if d.Kind != ScaleIn {
		t.Fatalf("got %s (%s), want scale-in", d.Kind, d.Reason)
	}
	if want := []int{1, 0}; !reflect.DeepEqual(d.Candidates, want) {
		t.Fatalf("candidates %v, want %v (coldest first, node 2 pinned, node 3 hot)", d.Candidates, want)
	}
}

// TestTriggerScaleInCapacityProjection pins the projection guard: a cold
// drainable node must not be recommended while the surviving fleet would
// sit above the scale-out threshold — an overloaded fleet that just grew
// would otherwise hand its fresh, still-empty node straight back.
func TestTriggerScaleInCapacityProjection(t *testing.T) {
	tr := NewTrigger(Config{
		Window: 3, Violations: 3,
		ScaleOutUtil: 0.7, ScaleInUtil: 0.2,
		MinNodes: 1, MaxNodes: 3, // fleet at cap: scale-out suppressed too
	})
	sample := []Util{
		{Node: 0, CPU: 0.92, Sched: true, Drainable: true},
		{Node: 1, CPU: 0.95, Sched: true, Drainable: true},
		{Node: 2, CPU: 0.01, Sched: true, Drainable: true}, // fresh and empty
	}
	now := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		if d := tr.Observe(now, 3, sample); d.Kind != None {
			t.Fatalf("sample %d: overloaded fleet recommended %s (%s)", i, d.Kind, d.Reason)
		}
		now = now.Add(100 * time.Millisecond)
	}
}

// TestTriggerFlappingAtThresholdHolds feeds load that oscillates around
// the scale-out threshold every sample. The N-of-M rule must absorb the
// noise: neither direction may ever reach its violation count.
func TestTriggerFlappingAtThresholdHolds(t *testing.T) {
	tr := NewTrigger(Config{
		Window: 4, Violations: 3,
		ScaleOutUtil: 0.8, ScaleInUtil: 0.3,
		MinNodes: 1, MaxNodes: 8,
	})
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		utils := utilsN(3, 0.85, 0) // just over
		if i%2 == 1 {
			utils = utilsN(3, 0.5, 0) // comfortably between both thresholds
		}
		if d := tr.Observe(now, 3, utils); d.Kind != None {
			t.Fatalf("sample %d: flapping load fired %s (%s)", i, d.Kind, d.Reason)
		}
		now = now.Add(100 * time.Millisecond)
	}
}

// TestTriggerCooldownStopsOscillation scales out under load, then drops
// the load to idle instantly. CooldownIn must hold the shrink back until
// the hysteresis interval has passed since the commit — otherwise a brief
// dip after a grow would immediately give the node back.
func TestTriggerCooldownStopsOscillation(t *testing.T) {
	const cooldownIn = 5 * time.Second
	tr := NewTrigger(Config{
		Window: 3, Violations: 3,
		ScaleOutUtil: 0.8, ScaleInUtil: 0.3,
		CooldownOut: time.Second, CooldownIn: cooldownIn,
		MinNodes: 1, MaxNodes: 8,
	})
	now := time.Unix(0, 0)
	var d Decision
	for i := 0; i < 3; i++ {
		d = tr.Observe(now, 2, utilsN(2, 0.95, 0))
		now = now.Add(100 * time.Millisecond)
	}
	if d.Kind != ScaleOut {
		t.Fatalf("got %s, want scale-out under sustained load", d.Kind)
	}
	tr.Commit(now)
	committed := now

	// Idle fleet immediately after the grow: everything inside the
	// cooldown window must hold.
	sawScaleIn := false
	for i := 0; i < 100; i++ {
		now = now.Add(100 * time.Millisecond)
		d = tr.Observe(now, 3, utilsN(3, 0.02, 0))
		if d.Kind == ScaleOut {
			t.Fatalf("idle fleet recommended scale-out: %s", d.Reason)
		}
		if d.Kind == ScaleIn {
			if since := now.Sub(committed); since < cooldownIn {
				t.Fatalf("scale-in fired %v after commit, inside %v cooldown", since, cooldownIn)
			}
			sawScaleIn = true
			break
		}
	}
	if !sawScaleIn {
		t.Fatal("scale-in never fired after the cooldown elapsed")
	}
}

// TestTriggerCommitClearsWindow pins that a commit discards pre-action
// evidence: the violation count must restart from zero, so a decision
// right after a commit is impossible even with cooldowns disabled.
func TestTriggerCommitClearsWindow(t *testing.T) {
	tr := NewTrigger(Config{
		Window: 3, Violations: 2,
		ScaleOutUtil: 0.8, ScaleInUtil: 0.2,
		MinNodes: 1,
	})
	now := time.Unix(0, 0)
	var d Decision
	for i := 0; i < 3; i++ {
		d = tr.Observe(now, 2, utilsN(2, 0.95, 0))
		now = now.Add(100 * time.Millisecond)
	}
	if d.Kind != ScaleOut {
		t.Fatalf("got %s, want scale-out", d.Kind)
	}
	tr.Commit(now)
	for i := 0; i < 2; i++ {
		now = now.Add(100 * time.Millisecond)
		if d = tr.Observe(now, 3, utilsN(3, 0.95, 0)); d.Kind != None {
			t.Fatalf("sample %d after commit: got %s, want none (window must refill)", i, d.Kind)
		}
	}
}

// TestTriggerNeverRecommendsUndrainable is the scale-in safety property:
// across randomized load, a node that is never drainable (it hosts an HAU
// with no live migration destination) must never appear in a scale-in
// candidate list, no matter how cold it runs.
func TestTriggerNeverRecommendsUndrainable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nodes = 6
	pinned := map[int]bool{1: true, 4: true} // fixed per-node property
	tr := NewTrigger(Config{
		Window: 4, Violations: 2,
		ScaleOutUtil: 0.8, ScaleInUtil: 0.5,
		MinNodes: 1,
	})
	now := time.Unix(0, 0)
	for i := 0; i < 5000; i++ {
		utils := make([]Util, nodes)
		for j := range utils {
			utils[j] = Util{
				Node:      j,
				CPU:       rng.Float64(),
				Queue:     rng.Intn(4),
				HAUs:      1,
				Sched:     rng.Intn(10) > 0,
				Drainable: !pinned[j],
			}
		}
		d := tr.Observe(now, nodes, utils)
		if d.Kind == ScaleIn {
			for _, c := range d.Candidates {
				if pinned[c] {
					t.Fatalf("step %d: undrainable node %d recommended for scale-in (%v)", i, c, d.Candidates)
				}
			}
			if rng.Intn(2) == 0 {
				tr.Commit(now)
			}
		}
		now = now.Add(50 * time.Millisecond)
	}
}
