package operator

import (
	"strings"
	"testing"

	"meteorshower/internal/tuple"
)

func oracleSink() *Sink {
	s := NewSink("K", nil)
	s.TrackIdentity = true
	return s
}

func deliver(s *Sink, src string, ids ...uint64) {
	for _, id := range ids {
		s.OnTuple(0, tuple.New(id, src, "k", nil), nil)
	}
}

func TestSinkOracleCleanRun(t *testing.T) {
	s := oracleSink()
	deliver(s, "S0", 0, 1, 2, 3, 4)
	deliver(s, "S1", 0, 1, 2)
	rep := s.Report()
	if len(rep) != 2 {
		t.Fatalf("report covers %d sources, want 2", len(rep))
	}
	for src, sr := range rep {
		if sr.Gaps != 0 || sr.Duplicates != 0 || sr.Reorders != 0 {
			t.Fatalf("%s: clean run reported violations: %+v", src, sr)
		}
	}
	if rep["S0"].Delivered != 5 || rep["S0"].MaxID != 4 {
		t.Fatalf("S0 report = %+v", rep["S0"])
	}
	if v := rep.TotalViolations(); v != 0 {
		t.Fatalf("TotalViolations = %d, want 0", v)
	}
}

func TestSinkOracleGap(t *testing.T) {
	s := oracleSink()
	deliver(s, "S0", 0, 1, 2, 5, 6) // 3 and 4 lost
	sr := s.Report()["S0"]
	if sr.Gaps != 2 {
		t.Fatalf("gaps = %d, want 2 (report: %+v)", sr.Gaps, sr)
	}
	// Ids still ascend, so the missing range is a gap, not a reorder.
	if sr.Duplicates != 0 || sr.Reorders != 0 {
		t.Fatalf("gap misclassified: %+v", sr)
	}
	if got := s.MissingIDs("S0", 10); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("MissingIDs = %v, want [3 4]", got)
	}
	if v := s.Report().TotalViolations(); v != 2 {
		t.Fatalf("TotalViolations = %d, want 2", v)
	}
}

func TestSinkOracleDuplicate(t *testing.T) {
	s := oracleSink()
	deliver(s, "S0", 0, 1, 2, 1, 2, 2)
	sr := s.Report()["S0"]
	if sr.Duplicates != 3 {
		t.Fatalf("duplicates = %d, want 3 (report: %+v)", sr.Duplicates, sr)
	}
	if sr.Gaps != 0 || sr.Reorders != 0 {
		t.Fatalf("duplicate misclassified: %+v", sr)
	}
	if s.Duplicates() != 3 {
		t.Fatalf("global duplicate counter = %d, want 3", s.Duplicates())
	}
}

func TestSinkOracleReorder(t *testing.T) {
	s := oracleSink()
	deliver(s, "S0", 0, 1, 3, 2, 4) // 2 arrives late but does arrive
	sr := s.Report()["S0"]
	if sr.Reorders != 1 {
		t.Fatalf("reorders = %d, want 1 (report: %+v)", sr.Reorders, sr)
	}
	if sr.Gaps != 0 || sr.Duplicates != 0 {
		t.Fatalf("reorder misclassified: %+v", sr)
	}
	// A reorder alone is not an exactly-once violation.
	if v := s.Report().TotalViolations(); v != 0 {
		t.Fatalf("TotalViolations = %d, want 0", v)
	}
}

func TestSinkOraclePerSourceIsolation(t *testing.T) {
	s := oracleSink()
	deliver(s, "S0", 0, 1, 2)
	deliver(s, "S1", 0, 2) // gap at 1
	deliver(s, "S1", 0)    // duplicate
	rep := s.Report()
	if sr := rep["S0"]; sr.Gaps != 0 || sr.Duplicates != 0 {
		t.Fatalf("S0 polluted by S1 violations: %+v", sr)
	}
	if sr := rep["S1"]; sr.Gaps != 1 || sr.Duplicates != 1 {
		t.Fatalf("S1 report = %+v, want 1 gap + 1 dupe", sr)
	}
	out := rep.String()
	if !strings.Contains(out, "S1: delivered=2 ids=[0,2] gaps=1 dupes=1") {
		t.Fatalf("String() = %q", out)
	}
}

func TestSinkOracleSnapshotCarriesCounters(t *testing.T) {
	s := oracleSink()
	deliver(s, "S0", 0, 2, 1, 1) // reorder at 1, duplicate at second 1
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := oracleSink()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	sr := s2.Report()["S0"]
	if sr.Delivered != 3 || sr.MinID != 0 || sr.MaxID != 2 || sr.Duplicates != 1 || sr.Reorders != 1 {
		t.Fatalf("restored report = %+v", sr)
	}
	// Post-restore deliveries continue the same record: 3 closes the run
	// without new violations.
	deliver(s2, "S0", 3)
	sr = s2.Report()["S0"]
	if sr.Gaps != 0 || sr.Reorders != 1 || sr.Duplicates != 1 {
		t.Fatalf("post-restore report = %+v", sr)
	}
}
