// Keyed-state re-partitioning: splitting a hot operator's key space across
// several HAU replicas and merging cold replicas back, live and
// exactly-once. The mechanism composes three existing pieces — the quiesce
// epoch and migration-token barrier from live migration, the slot-table
// state layout from the partition package, and the blob-v2 per-operator
// sections from incremental checkpointing — so a split never re-encodes
// operator state: it carves the drained slot tables by owner, and a merge
// concatenates them.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/partition"
	"meteorshower/internal/spe"
)

// ErrRescaleAborted marks a split/merge that could not complete — an
// incarnation died mid-drain, a whole-application recovery superseded it,
// or the quiesce/drain timed out. When the abort happens after the divert
// commands were sent, upstream output ports already feed the new (never
// started) incarnations, so the application needs a whole-application
// recovery to heal; the failure detector or chaos harness drives one in
// every abort path that matters (a node died). The pre-divert abort paths
// leave the topology untouched.
var ErrRescaleAborted = errors.New("cluster: rescale aborted")

// partState is the live partition geometry of one split operator.
type partState struct {
	Base     string
	Replicas []string // incarnation ids, replica order = slot-owner index
	Assign   *partition.Assignment
	Router   *partition.Router
	// StateBytes is the per-slot state-byte estimate measured from the
	// drained slot tables at the last re-shard — the skew signal available
	// before any traffic has been routed under the new geometry.
	StateBytes partition.Weights
}

// geomEntry journals the partition geometry as of one checkpoint epoch:
// blobs saved at or after epoch (until the next entry) were written by the
// incarnations this geometry names. Recovery picks the newest entry at or
// below the epoch it restores.
type geomEntry struct {
	epoch uint64
	parts map[string]*partState
}

// RescaleStats decomposes one re-partitioning, Fig. 16-style.
type RescaleStats struct {
	HAU      string
	From, To int // replica counts before and after
	Moved    int // slots that changed owner
	Bytes    int64
	Drain    time.Duration // divert commands sent -> last state blob handed over
	Reshard  time.Duration // slot carve/merge of the drained blobs
	Restore  time.Duration // new incarnations built, restored and started
	Downtime time.Duration // old incarnations stopped -> new ones started
	Replicas []string      // the new incarnation ids
}

// expandedLocked returns the live incarnation ids of graph node id, in
// replica order. Unsplit operators expand to themselves. Held lock: cl.mu.
func (cl *Cluster) expandedLocked(id string) []string {
	if ps := cl.parts[id]; ps != nil {
		return ps.Replicas
	}
	return []string{id}
}

// freshInGridLocked allocates the input-edge grid for one incarnation of
// graph node base under the CURRENT partition geometry. Held lock: cl.mu.
func (cl *Cluster) freshInGridLocked(base, inc string) [][]*spe.Edge {
	g := cl.graph
	ups := g.Upstream(base)
	grid := make([][]*spe.Edge, len(ups))
	for p, up := range ups {
		upIncs := cl.expandedLocked(up)
		grid[p] = make([]*spe.Edge, len(upIncs))
		for k, uinc := range upIncs {
			grid[p][k] = spe.NewEdgeBatch(uinc, inc, cl.cfg.EdgeBuffer, cl.cfg.EdgeBatch)
		}
	}
	return grid
}

// snapshotPartsLocked deep-copies app a's live geometry for its journal.
// Routers are rebuilt on adoption, not stored. Held lock: cl.mu.
func (cl *Cluster) snapshotPartsLocked(a *appState) map[string]*partState {
	out := make(map[string]*partState)
	for id, ps := range cl.parts {
		if cl.appOf(id) != a {
			continue
		}
		out[id] = &partState{
			Base:       id,
			Replicas:   append([]string(nil), ps.Replicas...),
			Assign:     ps.Assign.Clone(),
			StateBytes: append(partition.Weights(nil), ps.StateBytes...),
		}
	}
	return out
}

// adoptGeometryLocked installs the partition geometry app a journalled for
// epoch (the newest entry at or below it), resets a's catalog membership to
// match, and prunes bookkeeping for a's incarnations the adopted geometry
// does not name. Co-tenant geometry and bookkeeping are untouched. Held
// lock: cl.mu.
func (cl *Cluster) adoptGeometryLocked(a *appState, epoch uint64) {
	var best *geomEntry
	for i := range a.geom { // entries are appended in ascending epoch order
		if a.geom[i].epoch <= epoch {
			best = &a.geom[i]
		}
	}
	for id := range cl.parts {
		if cl.appOf(id) == a {
			delete(cl.parts, id)
		}
	}
	if best != nil {
		for id, ps := range best.parts {
			as := ps.Assign.Clone()
			cl.parts[id] = &partState{
				Base:       id,
				Replicas:   append([]string(nil), ps.Replicas...),
				Assign:     as,
				Router:     partition.NewRouter(as),
				StateBytes: append(partition.Weights(nil), ps.StateBytes...),
			}
		}
	}
	members := cl.incarnationsOfLocked(a)
	valid := make(map[string]bool, len(members))
	for _, inc := range members {
		valid[inc] = true
	}
	a.catalog.SetMembers(members)
	for inc := range cl.hauNode {
		if cl.appOf(inc) != a {
			continue
		}
		if !valid[inc] {
			delete(cl.haus, inc)
			delete(cl.cancels, inc)
			delete(cl.inEdges, inc)
			delete(cl.hauNode, inc)
		}
	}
}

// Replicas returns the live incarnation ids of operator id (itself when
// unsplit).
func (cl *Cluster) Replicas(id string) []string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]string(nil), cl.expandedLocked(id)...)
}

// probeSlots checks that a fresh operator chain for the rescale target can
// partition its state, and returns the slot-ring size its keyed operators
// agree on.
func probeSlots(ops []operator.Operator) (int, error) {
	slots := 0
	for _, op := range ops {
		ps, ok := op.(operator.PartitionedState)
		if !ok {
			return 0, fmt.Errorf("cluster: operator %q does not partition its state", op.Name())
		}
		n := ps.PartitionSlots()
		if n == 0 {
			continue // residue-only: replicated to every incarnation
		}
		if slots == 0 {
			slots = n
		} else if slots != n {
			return 0, fmt.Errorf("cluster: operators disagree on slot-ring size: %d vs %d", slots, n)
		}
	}
	if slots == 0 {
		return 0, errors.New("cluster: no keyed state to re-partition")
	}
	return slots, nil
}

// SplitHAU splits operator id across n >= 2 replicas: upstream output ports
// grow a key router over the slot ring, the operator's keyed state is
// carved by slot owner, and each replica runs as its own HAU placed in a
// distinct failure domain where the topology allows.
func (cl *Cluster) SplitHAU(ctx context.Context, id string, n int) (RescaleStats, error) {
	if n < 2 {
		return RescaleStats{}, fmt.Errorf("cluster: split needs at least 2 replicas, got %d", n)
	}
	return cl.RescaleHAU(ctx, id, n)
}

// SplitHAUWeighted is SplitHAU with per-slot load weights: the new slot
// assignment equalizes weighted load across the replicas instead of slot
// counts. Nil weights fall back to the operator's observed load (tuples
// routed, else state bytes), which for a first split of an unobserved
// operator degrades to the count-balanced assignment.
func (cl *Cluster) SplitHAUWeighted(ctx context.Context, id string, n int, w partition.Weights) (RescaleStats, error) {
	if n < 2 {
		return RescaleStats{}, fmt.Errorf("cluster: split needs at least 2 replicas, got %d", n)
	}
	return cl.RescaleHAUWeighted(ctx, id, n, w)
}

// MergeHAU merges a split operator back into a single HAU: the replicas'
// slot tables are concatenated and the key routers removed.
func (cl *Cluster) MergeHAU(ctx context.Context, id string) (RescaleStats, error) {
	return cl.RescaleHAU(ctx, id, 1)
}

// RescaleHAUWeighted is RescaleHAU with per-slot load weights driving the
// new slot assignment. Nil weights fall back to the observed load.
func (cl *Cluster) RescaleHAUWeighted(ctx context.Context, id string, n int, w partition.Weights) (RescaleStats, error) {
	if w == nil {
		cl.mu.Lock()
		w = cl.observedWeightsLocked(id)
		cl.mu.Unlock()
	}
	return cl.rescaleHAU(ctx, id, n, w, false)
}

// RebalanceHAU redistributes slots between a split operator's EXISTING
// replicas to fix observed load skew: the replica count stays the same, a
// fresh incarnation set drains and restores through the usual quiesce +
// token-barrier + carve machinery, and only the hot slots change owner. It
// is the cheap answer to a drifting hotspot — a low-ms drain instead of a
// split. Nil weights use the operator's observed load (tuples routed under
// the current geometry, else the state-byte estimate from the last
// re-shard). A table the weights cannot improve returns a zero-move
// no-op without disturbing the running replicas.
func (cl *Cluster) RebalanceHAU(ctx context.Context, id string, w partition.Weights) (RescaleStats, error) {
	if w == nil {
		cl.mu.Lock()
		w = cl.observedWeightsLocked(id)
		cl.mu.Unlock()
	}
	return cl.rescaleHAU(ctx, id, 0, w, true)
}

// observedWeightsLocked returns the per-slot load observed for operator id
// under its current geometry: tuples routed since its router was installed,
// falling back to the state-byte estimate from the last re-shard when no
// traffic has been routed yet. Unsplit operators have no observations.
// Held lock: cl.mu.
func (cl *Cluster) observedWeightsLocked(id string) partition.Weights {
	ps := cl.parts[id]
	if ps == nil {
		return nil
	}
	if ps.Router != nil {
		if w := ps.Router.Loads(); w.Total() > 0 {
			return w
		}
	}
	return ps.StateBytes
}

// LoadShares returns the per-replica load fractions and imbalance ratio
// of a split operator under weights w (nil = the observed load: tuples
// routed under the current geometry, else state bytes). The ratio is
// max/mean — 1.0 is perfectly balanced. Unsplit or unknown operators
// report nil shares and a ratio of 1.
func (cl *Cluster) LoadShares(id string, w partition.Weights) ([]float64, float64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	ps := cl.parts[id]
	if ps == nil || ps.Assign == nil {
		return nil, 1
	}
	if w == nil {
		w = cl.observedWeightsLocked(id)
	}
	loads := ps.Assign.LoadOf(w)
	return partition.Shares(loads), partition.ImbalanceRatio(loads)
}

// RescaleHAU re-partitions operator id to n replicas, live and
// exactly-once:
//
//  1. Quiesce: checkpoint triggers pause, then one fresh epoch is driven to
//     completion so no token alignment is in flight.
//  2. Divert: every upstream incarnation gets CmdRescaleOut — it flushes a
//     migration token onto each OLD edge of the port, then swaps the port
//     to fresh edges feeding the new incarnations, routed by the new slot
//     assignment.
//  3. Drain: each old incarnation processes up to the tokens, flushes its
//     outputs, hands its state blob over, and exits.
//  4. Re-shard: the drained blob-v2 sections are slot tables — a split
//     carves each table by slot owner, a merge concatenates the replicas'
//     tables. No operator-level re-encode happens.
//  5. Restore: the new incarnations start from synthesized blobs (fresh
//     runtime section, carved operator sections); downstream incarnations
//     attach the new input ports once the old ports hang up, which orders
//     old-incarnation output strictly before new-incarnation output.
//  6. Commit: a forced checkpoint epoch records the new membership, and
//     the geometry journal maps that epoch to the new replica set so a
//     later recovery rebuilds the matching topology.
//
// Under the unaligned scheme the quiesce and commit epochs complete without
// stalling (captures log channel tuples instead of pausing ports), and any
// capture still armed when a CmdRescaleOut migration token reaches an HAU is
// force-sealed (aborted) by the HAU itself — once upstreams divert to fresh
// edges the capture's remaining tokens may never arrive, and the drain must
// not wait on a never-pausing port. A capture that can never seal surfaces
// as a quiesce timeout wrapped in ErrRescaleAborted.
func (cl *Cluster) RescaleHAU(ctx context.Context, id string, n int) (RescaleStats, error) {
	return cl.rescaleHAU(ctx, id, n, nil, false)
}

// rescaleHAU is the shared core behind RescaleHAU, RescaleHAUWeighted and
// RebalanceHAU. Weights (when non-empty) drive the new slot assignment so
// replicas equalize load rather than slot counts; rebalance keeps the
// replica count (n is ignored) and only shifts slot ownership between
// fresh incarnations of the existing replica set.
func (cl *Cluster) rescaleHAU(ctx context.Context, id string, n int, w partition.Weights, rebalance bool) (RescaleStats, error) {
	var stats RescaleStats
	if cl.cfg.Scheme == spe.Baseline {
		return stats, errors.New("cluster: rescale requires a token scheme (not Baseline)")
	}
	if !rebalance && n < 1 {
		return stats, fmt.Errorf("cluster: rescale to %d replicas", n)
	}
	if partition.IsReplica(id) {
		return stats, fmt.Errorf("cluster: rescale targets the base id, not replica %q", id)
	}

	cl.mu.Lock()
	if !cl.started {
		cl.mu.Unlock()
		return stats, errors.New("cluster: not started")
	}
	g := cl.graph
	if len(g.Upstream(id)) == 0 || len(g.Downstream(id)) == 0 {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: only interior operators rescale, not %q", id)
	}
	oldIncs := append([]string(nil), cl.expandedLocked(id)...)
	m := len(oldIncs)
	if rebalance {
		if m < 2 {
			cl.mu.Unlock()
			return stats, fmt.Errorf("cluster: rebalance of %q needs a split operator, have %d replica(s)", id, m)
		}
		n = m
	} else if m == n {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: HAU %q already has %d replicas", id, n)
	}
	if cl.rescaling[id] || cl.migrating[id] {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: HAU %q already rescaling or migrating", id)
	}
	if cl.haPinnedLocked(id) {
		cl.mu.Unlock()
		return stats, fmt.Errorf("cluster: HAU %q is pinned by active-standby replication (protected or adjacent to a protected HAU); demote first", id)
	}
	app := cl.appOf(id)
	slots, err := probeSlots(cl.newOperators(app, id))
	if err != nil {
		cl.mu.Unlock()
		return stats, err
	}
	var oldAssign *partition.Assignment
	if ps := cl.parts[id]; ps != nil {
		oldAssign = ps.Assign.Clone()
	}
	if rebalance {
		// A table the weights cannot improve is a no-op: don't drain a
		// healthy replica set for nothing.
		if oldAssign == nil || len(oldAssign.Clone().Rebalance(w)) == 0 {
			cl.mu.Unlock()
			stats.HAU, stats.From, stats.To = id, m, m
			stats.Replicas = oldIncs
			return stats, nil
		}
	}
	cl.rescaling[id] = true
	grd := cl.appGuardLocked(app, ErrRescaleAborted)
	cl.mu.Unlock()
	defer func() {
		cl.mu.Lock()
		delete(cl.rescaling, id)
		cl.mu.Unlock()
	}()
	stats.HAU, stats.From, stats.To = id, m, n

	// Phase 1: quiesce (see MigrateHAU for why a FRESH epoch is driven).
	app.ctrl.PauseCheckpoints()
	defer app.ctrl.ResumeCheckpoints()
	if _, err := grd.quiesce(ctx); err != nil {
		return stats, err
	}

	// Build the target geometry and all new edges under the lock, but do not
	// install any of it yet — the commit below re-checks the generation.
	cl.mu.Lock()
	if grd.supersededLocked() {
		cl.mu.Unlock()
		return stats, grd.errf("superseded before divert")
	}
	assign := oldAssign
	if assign == nil {
		assign = partition.NewAssignment(slots)
	}
	var movedSlots []int
	switch {
	case rebalance:
		movedSlots = assign.Rebalance(w)
	case len(w) > 0:
		movedSlots = assign.RescaleWeighted(n, w)
	default:
		movedSlots = assign.Rescale(n)
	}
	stats.Moved = len(movedSlots)
	var newIncs []string
	if n == 1 {
		newIncs = []string{id}
	} else {
		tag := cl.nextTag[id]
		for j := 0; j < n; j++ {
			tag++
			newIncs = append(newIncs, partition.ReplicaID(id, tag))
		}
		cl.nextTag[id] = tag
	}
	router := partition.NewRouter(assign)

	// Place the new incarnations; the policy sees the cluster without the
	// old incarnations (rack-spread puts replicas in distinct domains).
	exclude := make(map[string]bool, m)
	for _, oinc := range oldIncs {
		exclude[oinc] = true
	}
	placed := cl.policy.Assign(newIncs, cl.viewLocked(exclude))
	nodeOf := make(map[string]int, n)
	for _, inc := range newIncs {
		nd, ok := placed[inc]
		if !ok || nd < 0 || nd >= len(cl.nodes) || !cl.nodes[nd].alive.Load() {
			nd = cl.firstHealthyLocked()
			if nd < 0 {
				cl.mu.Unlock()
				return stats, fmt.Errorf("%w: no healthy node for %q", ErrRescaleAborted, inc)
			}
		}
		nodeOf[inc] = nd
	}

	// Fresh input grids for the new incarnations. The upstream expansion
	// uses the CURRENT geometry — only this operator's own row structure
	// changes at commit.
	newInGrids := make(map[string][][]*spe.Edge, n)
	for _, inc := range newIncs {
		newInGrids[inc] = cl.freshInGridLocked(id, inc)
	}
	// Fresh rows replacing each downstream incarnation's input edges from
	// this operator: row[j] is the edge from new incarnation j, matching its
	// slot-owner index.
	type downRow struct {
		dinc string
		port int
		row  []*spe.Edge
	}
	var rows []downRow
	for _, down := range g.Downstream(id) {
		dp := g.PortOf(id, down)
		for _, dinc := range cl.expandedLocked(down) {
			row := make([]*spe.Edge, n)
			for j, ninc := range newIncs {
				row[j] = spe.NewEdgeBatch(ninc, dinc, cl.cfg.EdgeBuffer, cl.cfg.EdgeBatch)
			}
			rows = append(rows, downRow{dinc, dp, row})
		}
	}
	// Divert commands: every upstream incarnation swaps its out port for id
	// to the new edge set, routed by the new assignment.
	type divertCmd struct {
		h   *spe.HAU
		cmd spe.Command
	}
	var diverts []divertCmd
	for upPortIdx, up := range g.Upstream(id) {
		outPort := -1
		for p, d := range g.Downstream(up) {
			if d == id {
				outPort = p
				break
			}
		}
		if outPort < 0 {
			continue
		}
		for k, uinc := range cl.expandedLocked(up) {
			uh := cl.haus[uinc]
			if uh == nil {
				cl.mu.Unlock()
				return stats, fmt.Errorf("%w: upstream incarnation %q missing", ErrRescaleAborted, uinc)
			}
			edges := make([]*spe.Edge, n)
			for j, ninc := range newIncs {
				edges[j] = newInGrids[ninc][upPortIdx][k]
			}
			rt := spe.KeyRouter(router)
			if n == 1 {
				rt = nil // merged back: single downstream, no routing
			}
			diverts = append(diverts, divertCmd{uh, spe.Command{
				Kind: spe.CmdRescaleOut, Port: outPort, Edges: edges, Router: rt,
			}})
		}
	}
	oldHAUs := make([]*spe.HAU, m)
	for i, oinc := range oldIncs {
		oldHAUs[i] = cl.haus[oinc]
		if oldHAUs[i] == nil {
			cl.mu.Unlock()
			return stats, fmt.Errorf("%w: incarnation %q missing", ErrRescaleAborted, oinc)
		}
	}
	cl.mu.Unlock()

	// Phases 2+3: divert and drain every old incarnation in parallel. The
	// migration tokens flushed by CmdRescaleOut form per-edge barriers; each
	// old incarnation aligns on them, flushes, replies with its state, and
	// exits.
	drainStart := time.Now()
	for _, d := range diverts {
		d.h.Command(d.cmd)
	}
	replies := make([]chan []byte, m)
	for i, h := range oldHAUs {
		replies[i] = make(chan []byte, 1)
		h.Command(spe.Command{Kind: spe.CmdMigrateSnap, Reply: replies[i]})
	}
	blobs := make([][]byte, m)
	drainDeadline := time.After(drainTimeout)
	for i, h := range oldHAUs {
		var err error
		if blobs[i], err = grd.drainBlob(ctx, oldIncs[i], h, replies[i], drainDeadline); err != nil {
			return stats, err
		}
	}
	stats.Drain = time.Since(drainStart)
	// Every old incarnation has exited: the downtime window opens.
	downStart := time.Now()

	// Phase 4: re-shard. Split each blob into its runtime and per-operator
	// sections, merge the per-operator slot tables across the old replicas,
	// then carve by the new slot owners.
	reshardStart := time.Now()
	opsSecs := make([][][]byte, m)
	var localEpoch uint64
	for i, b := range blobs {
		rt, ops, err := spe.SplitBlob(b)
		if err != nil {
			return stats, fmt.Errorf("cluster: rescale of %q: blob of %q: %w", id, oldIncs[i], err)
		}
		if i == 0 {
			if localEpoch, err = spe.RuntimeEpoch(rt); err != nil {
				return stats, fmt.Errorf("cluster: rescale of %q: %w", id, err)
			}
		}
		opsSecs[i] = ops
		stats.Bytes += int64(len(b))
	}
	nOps := len(opsSecs[0])
	for i := 1; i < m; i++ {
		if len(opsSecs[i]) != nOps {
			return stats, fmt.Errorf("cluster: rescale of %q: replica blobs disagree on operator count", id)
		}
	}
	newOpSecs := make([][][]byte, n)
	var stateBytes partition.Weights
	for oi := 0; oi < nOps; oi++ {
		merged := opsSecs[0][oi]
		if m > 1 {
			tables := make([][]byte, m)
			for i := range opsSecs {
				tables[i] = opsSecs[i][oi]
			}
			var err error
			if merged, err = partition.Merge(tables); err != nil {
				return stats, fmt.Errorf("cluster: rescale of %q: merge op %d: %w", id, oi, err)
			}
		}
		// Per-slot state bytes, summed across the operator chain — the skew
		// estimate available to the next weighted action before any traffic
		// is routed under the new geometry.
		if n > 1 {
			if sb := partition.SlotBytes(merged); sb != nil {
				if stateBytes == nil {
					stateBytes = make(partition.Weights, len(sb))
				}
				for s := range sb {
					if s < len(stateBytes) {
						stateBytes[s] += sb[s]
					}
				}
			}
		}
		if n == 1 {
			newOpSecs[0] = append(newOpSecs[0], merged)
			continue
		}
		for j := 0; j < n; j++ {
			j := j
			piece, err := partition.Carve(merged, func(s int) bool { return assign.Owner(s) == j })
			if err != nil {
				return stats, fmt.Errorf("cluster: rescale of %q: carve op %d: %w", id, oi, err)
			}
			newOpSecs[j] = append(newOpSecs[j], piece)
		}
	}
	stats.Reshard = time.Since(reshardStart)

	// Phase 5: commit the new geometry and start the new incarnations.
	restoreStart := time.Now()
	cl.mu.Lock()
	if grd.supersededLocked() {
		cl.mu.Unlock()
		return stats, grd.errf("superseded during drain")
	}
	for _, oinc := range oldIncs {
		if c := cl.cancels[oinc]; c != nil {
			c() // release the old incarnation's forwarder goroutines
		}
		delete(cl.cancels, oinc)
		delete(cl.haus, oinc)
		delete(cl.hauNode, oinc)
		delete(cl.inEdges, oinc)
	}
	// Close the old rows feeding each downstream (their senders have
	// exited) and install the new rows. The hangup is what releases each
	// downstream's CmdAddInPort barrier.
	type attachSet struct {
		h    *spe.HAU
		cmds []spe.Command
	}
	var attaches []attachSet
	for _, dr := range rows {
		for _, e := range cl.inEdges[dr.dinc][dr.port] {
			e.Close()
		}
		cl.inEdges[dr.dinc][dr.port] = dr.row
		if dh := cl.haus[dr.dinc]; dh != nil {
			cmds := make([]spe.Command, 0, n)
			for _, e := range dr.row {
				cmds = append(cmds, spe.Command{
					Kind: spe.CmdAddInPort, Edge: e, Logical: dr.port, AfterFrom: oldIncs,
				})
			}
			attaches = append(attaches, attachSet{dh, cmds})
		}
	}
	if n == 1 {
		delete(cl.parts, id)
	} else {
		cl.parts[id] = &partState{Base: id, Replicas: newIncs, Assign: assign, Router: router, StateBytes: stateBytes}
	}
	for _, inc := range newIncs {
		cl.inEdges[inc] = newInGrids[inc]
		cl.hauNode[inc] = nodeOf[inc]
	}
	app.catalog.SetMembers(cl.incarnationsOfLocked(app))
	for j, inc := range newIncs {
		cfg, _ := cl.prepareHAU(inc)
		nOut := 0
		for _, op := range cfg.OutPorts {
			nOut += len(op.Edges)
		}
		blob := spe.BuildBlob(spe.NewRuntimeSection(nOut, localEpoch), newOpSecs[j])
		h, _, err := constructHAU(cfg, blob)
		if err != nil {
			cl.mu.Unlock()
			return stats, fmt.Errorf("cluster: rescale restore of %q: %w", inc, err)
		}
		cl.haus[inc] = h
		hctx, cancel := context.WithCancel(cl.rootCtx)
		cl.cancels[inc] = cancel
		h.Start(hctx)
	}
	cl.installControllerHAUs()
	cl.mu.Unlock()
	for _, a := range attaches {
		for _, cmd := range a.cmds {
			a.h.Command(cmd)
		}
	}
	stats.Restore = time.Since(restoreStart)
	stats.Downtime = time.Since(downStart)
	stats.Replicas = newIncs

	// Phase 6: commit epoch. The first complete checkpoint under the new
	// membership; journal it so recovery rebuilds the matching topology.
	commitEp, err := grd.quiesce(ctx)
	if err != nil {
		// The new geometry is live but has no durable epoch: a recovery
		// before the next complete checkpoint restores the pre-rescale
		// topology via the journal, which is consistent.
		return stats, fmt.Errorf("commit epoch: %w", err)
	}
	cl.mu.Lock()
	if !grd.supersededLocked() {
		app.geom = append(app.geom, geomEntry{epoch: commitEp, parts: cl.snapshotPartsLocked(app)})
	}
	cl.mu.Unlock()

	if cl.cfg.Metrics != nil {
		cl.cfg.Metrics.RecordRescale(metrics.Rescale{
			At:       cl.cfg.Now(),
			App:      app.name,
			HAU:      id,
			From:     m,
			To:       n,
			Bytes:    stats.Bytes,
			Drain:    stats.Drain,
			Reshard:  stats.Reshard,
			Restore:  stats.Restore,
			Downtime: stats.Downtime,
		})
		if len(w) > 0 && n > 1 {
			action := "split:weighted"
			if rebalance {
				action = "rebalance"
			} else if n < m {
				action = "merge:weighted"
			}
			loads := assign.LoadOf(w)
			cl.cfg.Metrics.RecordSkew(metrics.Skew{
				At:       cl.cfg.Now(),
				App:      app.name,
				HAU:      id,
				Replicas: n,
				Shares:   partition.Shares(loads),
				Ratio:    partition.ImbalanceRatio(loads),
				Action:   action,
				Moved:    stats.Moved,
			})
		}
	}
	return stats, nil
}

// autoscaleStep is the controller's split/merge detector: it compares each
// interior operator's aggregate cached state size against the hysteresis
// watermarks and performs at most one rescale per invocation — with a skew
// pass first, because shifting hot slots between existing replicas is
// cheaper than changing the replica count. Returns the number of rescales
// performed.
func (cl *Cluster) autoscaleStep() (int, error) {
	cl.mu.Lock()
	if !cl.started {
		cl.mu.Unlock()
		return 0, nil
	}
	g := cl.graph
	ctx := cl.rootCtx
	maxRep := cl.cfg.MaxReplicas
	if maxRep <= 0 {
		maxRep = 4
	}
	cool := cl.cfg.RescaleCooldown
	if cool <= 0 {
		cool = 2 * cl.cfg.AutoscaleEvery
	}
	now := time.Now()

	// Skew pass: N-of-M violations of the imbalance watermark on a split
	// operator's per-tick routed load fire a rebalance, escalating to a
	// weighted split when the previous rebalance didn't stick.
	skewID, skewN, skewW := cl.skewStepLocked(now, cool, maxRep)
	if skewID != "" {
		cl.mu.Unlock()
		var err error
		if skewN > 0 {
			_, err = cl.rescaleHAU(ctx, skewID, skewN, skewW, false)
		} else {
			_, err = cl.rescaleHAU(ctx, skewID, 0, skewW, true)
		}
		if err != nil {
			return 0, err
		}
		cl.mu.Lock()
		cl.lastRescale[skewID] = now
		if skewN > 0 {
			cl.lastSkewAct[skewID] = "split"
		} else {
			cl.lastSkewAct[skewID] = "rebalance"
		}
		// The action installed a fresh router: stale snapshots and the
		// violation window would misjudge the new geometry.
		delete(cl.lastLoads, skewID)
		delete(cl.skewHits, skewID)
		cl.mu.Unlock()
		return 1, nil
	}

	var pickID string
	var pickN int
	for _, id := range g.Nodes() {
		if len(g.Upstream(id)) == 0 || len(g.Downstream(id)) == 0 {
			continue
		}
		if now.Sub(cl.lastRescale[id]) < cool {
			continue
		}
		incs := cl.expandedLocked(id)
		var agg int64
		for _, inc := range incs {
			if h := cl.haus[inc]; h != nil {
				agg += h.CachedStateSize()
			}
		}
		m := len(incs)
		switch {
		case cl.cfg.SplitAbove > 0 && agg > cl.cfg.SplitAbove && m < maxRep:
			pickN = m * 2
			if pickN > maxRep {
				pickN = maxRep
			}
			pickID = id
		case cl.cfg.MergeBelow > 0 && m > 1 && agg < cl.cfg.MergeBelow:
			pickID, pickN = id, 1
		}
		if pickID != "" {
			break
		}
	}
	cl.mu.Unlock()
	if pickID == "" {
		return 0, nil
	}
	if _, err := cl.RescaleHAU(ctx, pickID, pickN); err != nil {
		return 0, err
	}
	cl.mu.Lock()
	cl.lastRescale[pickID] = now
	cl.mu.Unlock()
	return 1, nil
}

// skewStepLocked evaluates the imbalance watermark for every split operator
// and picks at most one skew action: the per-tick routed-load delta gives
// each replica's share, N-of-M watermark violations (plus the per-operator
// cooldown) arm an action, and the action is a rebalance in place unless
// the previous rebalance didn't stick — then it escalates to a weighted
// split. Returns the chosen operator (empty for none), the split target (0
// means rebalance) and the weights driving the action. Held lock: cl.mu.
func (cl *Cluster) skewStepLocked(now time.Time, cool time.Duration, maxRep int) (string, int, partition.Weights) {
	if cl.cfg.ImbalanceAbove <= 1 {
		return "", 0, nil
	}
	win := cl.cfg.ImbalanceWindow
	if win <= 0 {
		win = 5
	}
	need := cl.cfg.ImbalanceViolations
	if need <= 0 {
		need = 3
	}
	if need > win {
		need = win
	}
	var pickID string
	var pickN int
	var pickW partition.Weights
	for _, id := range cl.graph.Nodes() {
		ps := cl.parts[id]
		if ps == nil || ps.Router == nil || len(ps.Replicas) < 2 {
			delete(cl.skewHits, id)
			continue
		}
		m := len(ps.Replicas)
		cur := ps.Router.Loads()
		delta := cur.Sub(cl.lastLoads[id])
		cl.lastLoads[id] = cur
		judged := delta.Total() >= int64(2*m) // enough traffic to judge this tick
		violated := false
		if judged {
			loads := ps.Assign.LoadOf(delta)
			ratio := partition.ImbalanceRatio(loads)
			violated = ratio > cl.cfg.ImbalanceAbove
			if !violated {
				// A genuinely balanced observation: the next skew episode
				// starts with a rebalance again.
				delete(cl.lastSkewAct, id)
			} else if cl.cfg.Metrics != nil {
				cl.cfg.Metrics.RecordSkew(metrics.Skew{
					At: cl.cfg.Now(), App: cl.appOf(id).name, HAU: id, Replicas: m,
					Shares: partition.Shares(loads), Ratio: ratio, Action: "observe",
				})
			}
		}
		hits := append(cl.skewHits[id], violated)
		if len(hits) > win {
			hits = hits[len(hits)-win:]
		}
		cl.skewHits[id] = hits
		if pickID != "" || now.Sub(cl.lastRescale[id]) < cool {
			continue
		}
		nHits := 0
		for _, h := range hits {
			if h {
				nHits++
			}
		}
		if nHits < need {
			continue
		}
		w := cl.observedWeightsLocked(id)
		if w.Total() <= 0 {
			continue
		}
		canMove := len(ps.Assign.Clone().Rebalance(w)) > 0
		switch {
		case canMove && cl.lastSkewAct[id] != "rebalance":
			pickID, pickN, pickW = id, 0, w
		case m < maxRep:
			n := m * 2
			if n > maxRep {
				n = maxRep
			}
			pickID, pickN, pickW = id, n, w
		case canMove:
			pickID, pickN, pickW = id, 0, w // at the replica cap: rebalance is all we have
		}
	}
	return pickID, pickN, pickW
}
