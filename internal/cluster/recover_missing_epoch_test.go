package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"meteorshower/internal/metrics"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
)

// newManualCkptCluster is newTestCluster without periodic checkpointing:
// every epoch in these tests is triggered explicitly, so the set of
// complete epochs — and therefore which blobs exist to delete or corrupt —
// is deterministic.
func newManualCkptCluster(t *testing.T, nodes int) (*Cluster, *metrics.Collector, *sinkRegistry) {
	t.Helper()
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:            testApp(col, reg),
		Scheme:         spe.MSSrcAP,
		Nodes:          nodes,
		LocalDiskSpec:  local,
		SharedSpec:     shared,
		TickEvery:      time.Millisecond,
		PreserveMemCap: 1 << 20,
		SourceFlush:    256,
		RetainEpochs:   2,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, col, reg
}

// checkpointAt drives one explicit checkpoint epoch to completion.
func checkpointAt(t *testing.T, cl *Cluster) uint64 {
	t.Helper()
	ep := cl.Controller().TriggerCheckpoint()
	waitFor(t, 10*time.Second, fmt.Sprintf("epoch %d complete", ep), func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e >= ep
	})
	return ep
}

// blobKeys returns the shared-store keys holding HAU's checkpoint blobs,
// across every epoch, newest-first order not guaranteed.
func blobKeys(cl *Cluster, hau string) []string {
	var out []string
	for _, k := range cl.SharedStore().Keys("ckpt/") {
		if strings.HasSuffix(k, "/"+hau) {
			out = append(out, k)
		}
	}
	return out
}

// TestRecoverAllNoCheckpointSentinel pins the typed error: with no
// complete checkpoint at all, RecoverAll must return ErrNoCheckpoint
// immediately rather than hanging or recovering garbage.
func TestRecoverAllNoCheckpointSentinel(t *testing.T) {
	cl, col, _ := newManualCkptCluster(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 20 })
	cl.KillAll()
	if _, err := cl.RecoverAll(ctx); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	// Permanent condition: the retry wrapper must not burn attempts on it.
	start := time.Now()
	if _, err := cl.RecoverAllWithRetry(ctx, 5, 100*time.Millisecond); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("retry err = %v, want ErrNoCheckpoint", err)
	}
	if time.Since(start) > 90*time.Millisecond {
		t.Fatal("RecoverAllWithRetry retried a permanent ErrNoCheckpoint")
	}
	cl.StopAll()
}

// TestRecoverAllMissingEpochTypedError deletes one HAU's blob from every
// complete epoch: recovery must fail with a *MissingCheckpointError naming
// the newest epoch and the missing HAU — not hang, not restore a torn cut.
func TestRecoverAllMissingEpochTypedError(t *testing.T) {
	cl, col, _ := newManualCkptCluster(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 20 })
	newest := checkpointAt(t, cl)
	cl.KillAll()

	keys := blobKeys(cl, "M")
	if len(keys) == 0 {
		t.Fatal("no checkpoint blobs for M in the shared store")
	}
	for _, k := range keys {
		if err := cl.SharedStore().Delete(k); err != nil {
			t.Fatal(err)
		}
	}

	_, err := cl.RecoverAll(ctx)
	var miss *MissingCheckpointError
	if !errors.As(err, &miss) {
		t.Fatalf("err = %v, want *MissingCheckpointError", err)
	}
	if miss.HAU != "M" || miss.Epoch != newest {
		t.Fatalf("error names (epoch %d, hau %s), want (%d, M)", miss.Epoch, miss.HAU, newest)
	}
	if !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("cause = %v, want to wrap storage.ErrNotFound", err)
	}
	// Blobs gone from a healthy store are permanent: no retries.
	if _, err := cl.RecoverAllWithRetry(ctx, 3, 10*time.Millisecond); !errors.As(err, &miss) {
		t.Fatalf("retry err = %v, want *MissingCheckpointError", err)
	}
	cl.StopAll()
}

// TestRecoverAllFallsBackToOlderEpoch loses the newest epoch's blobs but
// keeps an older complete epoch intact: recovery must fall back to it and
// resume the application exactly-once from the older cut.
func TestRecoverAllFallsBackToOlderEpoch(t *testing.T) {
	cl, col, reg := newManualCkptCluster(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 20 })
	older := checkpointAt(t, cl)
	waitFor(t, 10*time.Second, "progress past older epoch", func() bool { return col.Count() >= 60 })
	newest := checkpointAt(t, cl)
	if newest <= older {
		t.Fatalf("epochs not monotonic: %d then %d", older, newest)
	}
	cl.KillAll()

	key := fmt.Sprintf("ckpt/%016d/M", newest)
	if !cl.SharedStore().Has(key) {
		t.Fatalf("expected blob %s in shared store", key)
	}
	if err := cl.SharedStore().Delete(key); err != nil {
		t.Fatal(err)
	}

	stats, err := cl.RecoverAll(ctx)
	if err != nil {
		t.Fatalf("recovery did not fall back: %v", err)
	}
	if stats.Epoch != older {
		t.Fatalf("recovered from epoch %d, want fallback to %d", stats.Epoch, older)
	}
	before := col.Count()
	waitFor(t, 10*time.Second, "post-recovery progress", func() bool { return col.Count() > before+20 })
	if d := reg.get().Duplicates(); d != 0 {
		t.Fatalf("fallback recovery delivered %d duplicates", d)
	}
	cl.StopAll()
}

// TestRecoverAllCorruptBlobFallsBack corrupts (rather than deletes) the
// newest epoch's blob for one HAU: the undecodable blob must condemn that
// epoch the same way a missing one does, falling back to the older
// complete epoch instead of wedging or restoring a torn cut.
func TestRecoverAllCorruptBlobFallsBack(t *testing.T) {
	cl, col, _ := newManualCkptCluster(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 20 })
	older := checkpointAt(t, cl)
	newest := checkpointAt(t, cl)
	cl.KillAll()

	key := fmt.Sprintf("ckpt/%016d/M", newest)
	if _, err := cl.SharedStore().Put(key, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}

	stats, err := cl.RecoverAll(ctx)
	if err != nil {
		t.Fatalf("recovery did not survive the corrupt blob: %v", err)
	}
	if stats.Epoch != older {
		t.Fatalf("recovered from epoch %d, want fallback to %d", stats.Epoch, older)
	}
	cl.StopAll()
}

// TestRecoverAllStoreDownFailsFastThenRetrySucceeds takes the shared store
// down: RecoverAll must fail fast with storage.ErrUnavailable (walking
// older epochs on the same dead store is pointless), and
// RecoverAllWithRetry must win once the store comes back — the
// standby-promotion scenario a correlated burst produces.
func TestRecoverAllStoreDownFailsFastThenRetrySucceeds(t *testing.T) {
	cl, col, _ := newManualCkptCluster(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 20 })
	checkpointAt(t, cl)
	cl.KillAll()
	cl.SharedStore().SetDown(true)

	if _, err := cl.RecoverAll(ctx); !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("err = %v, want storage.ErrUnavailable", err)
	}

	go func() {
		time.Sleep(60 * time.Millisecond)
		cl.SharedStore().SetDown(false)
	}()
	stats, err := cl.RecoverAllWithRetry(ctx, 6, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("retry after store revival failed: %v", err)
	}
	if stats.HAUs == 0 {
		t.Fatalf("stats = %+v, want live HAUs", stats)
	}
	before := col.Count()
	waitFor(t, 10*time.Second, "post-recovery progress", func() bool { return col.Count() > before+20 })
	cl.StopAll()
}
