package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"meteorshower/internal/spe"
)

// TestMigrateRacesUnalignedCheckpoint is the satellite regression for the
// token-barrier drain path: a checkpoint is triggered under the unaligned
// scheme and a live migration of the fan-in HAU starts immediately, so the
// migration's quiesce, divert tokens and CmdMigrateSnap race whatever
// capture state the HAUs are in. The move must complete (force-sealing any
// in-flight capture) without deadlocking, and delivery stays exactly-once.
func TestMigrateRacesUnalignedCheckpoint(t *testing.T) {
	cl, _, reg := newTestCluster(t, spe.MSSrcAPU, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 50
	})

	from := cl.NodeOf("M")
	dest := (from + 1) % 4
	// Fire the checkpoint and start the migration in the same breath: the
	// unaligned captures it arms are mid-flight when the migration's
	// quiesce and divert begin.
	cl.Controller().TriggerCheckpoint()
	stats, err := cl.MigrateHAU(ctx, "M", dest)
	if err != nil {
		t.Fatalf("MigrateHAU racing unaligned checkpoint: %v", err)
	}
	if cl.NodeOf("M") != dest {
		t.Fatalf("M on node %d after migration, want %d", cl.NodeOf("M"), dest)
	}
	if stats.MovedBytes <= 0 {
		t.Fatalf("moved %d bytes, want > 0", stats.MovedBytes)
	}

	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-migration deliveries", func() bool {
		return reg.get().Delivered() > after+50
	})
	cl.StopAll()
	if rep := reg.get().Report(); rep.TotalViolations() != 0 {
		t.Fatalf("exactly-once violated across migration racing a capture:\n%s", rep)
	}
}

// TestMigrateAbortsOnWedgedUnalignedCapture pins the reject path: an HAU
// wedged in a capture that can never seal (a bogus far-future epoch, so no
// upstream token or controller command will ever resolve it) must make the
// migration fail with the typed ErrMigrationAborted when its quiesce epoch
// cannot complete — bounded by the quiesce timeout, never a deadlock.
func TestMigrateAbortsOnWedgedUnalignedCapture(t *testing.T) {
	cl, _, reg := newTestCluster(t, spe.MSSrcAPU, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 0
	})

	cl.mu.Lock()
	m := cl.haus["M"]
	cl.mu.Unlock()
	m.Command(spe.Command{Kind: spe.CmdCheckpoint, Epoch: 1 << 20})

	start := time.Now()
	_, err := cl.MigrateHAU(ctx, "M", (cl.NodeOf("M")+1)%3)
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("migration with wedged capture: err = %v, want ErrMigrationAborted", err)
	}
	if elapsed := time.Since(start); elapsed > quiesceTimeout+3*time.Second {
		t.Fatalf("abort took %v, not bounded by the quiesce timeout", elapsed)
	}
}
