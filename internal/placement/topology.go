// Package placement owns where HAUs live and how they move. It models the
// cluster's failure-domain topology (racks / power domains, the same
// NodesPerRack geometry internal/failure samples correlated bursts from),
// provides pluggable placement policies — round-robin, rack-spread, and
// load-aware — and a rebalancer that watches per-node load with hysteresis
// and issues live migrations through the cluster layer.
//
// The design point follows the failure model (paper §II-B1): large bursts
// are rack- or power-aligned, so a placement that packs an application's
// HAUs into one failure domain turns a routine rack event into a
// whole-application outage. Rack-spread placement bounds the loss of any
// single-domain burst to ⌈HAUs/racks⌉.
package placement

// Topology maps worker-node indices onto failure domains. Nodes are
// numbered contiguously and racks are contiguous ranges of NodesPerRack
// nodes — identical to the geometry failure.Generate kills by, so a
// "rack" here is exactly the co-failure unit of the burst model.
type Topology struct {
	Nodes        int
	NodesPerRack int
}

// NewTopology returns the failure-domain geometry for a cluster.
// nodesPerRack <= 0 (or >= nodes) collapses to a single failure domain.
func NewTopology(nodes, nodesPerRack int) Topology {
	if nodes < 1 {
		nodes = 1
	}
	if nodesPerRack <= 0 || nodesPerRack > nodes {
		nodesPerRack = nodes
	}
	return Topology{Nodes: nodes, NodesPerRack: nodesPerRack}
}

// Racks returns the number of failure domains (the last may be partial).
func (t Topology) Racks() int {
	if t.NodesPerRack <= 0 {
		return 1
	}
	return (t.Nodes + t.NodesPerRack - 1) / t.NodesPerRack
}

// RackOf returns the failure domain of a node.
func (t Topology) RackOf(node int) int {
	if t.NodesPerRack <= 0 {
		return 0
	}
	return node / t.NodesPerRack
}

// RackNodes returns the node indices of one rack.
func (t Topology) RackNodes(rack int) []int {
	start := rack * t.NodesPerRack
	if start >= t.Nodes {
		return nil
	}
	end := start + t.NodesPerRack
	if end > t.Nodes {
		end = t.Nodes
	}
	out := make([]int, 0, end-start)
	for n := start; n < end; n++ {
		out = append(out, n)
	}
	return out
}
