package statesize

import "sort"

// Forecasting utilities: the profiling phase observes when state-size
// minima occur; when the rhythm is periodic (TMI's fixed k-means window,
// SignalGuru's dwell times), the next minimum can be predicted and a
// checkpoint scheduled for it in advance — the idea behind the paper's
// Oracle, which "is obtained from observing prior runs".

// TroughTimes extracts the times of local minima from a polyline.
func TroughTimes(p *Polyline) []int64 {
	pts := p.Points()
	var out []int64
	for i := 1; i < len(pts)-1; i++ {
		if pts[i].Size < pts[i-1].Size && pts[i].Size < pts[i+1].Size {
			out = append(out, pts[i].At)
		}
	}
	return out
}

// Periodicity estimates the dominant trough-to-trough interval as the
// median gap. It returns ok=false with fewer than two troughs or when the
// gaps disagree wildly (max gap more than 3x the median), which means the
// process is not periodic enough to forecast.
func Periodicity(troughs []int64) (int64, bool) {
	if len(troughs) < 2 {
		return 0, false
	}
	gaps := make([]int64, 0, len(troughs)-1)
	for i := 1; i < len(troughs); i++ {
		g := troughs[i] - troughs[i-1]
		if g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return 0, false
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	median := gaps[len(gaps)/2]
	if gaps[len(gaps)-1] > 3*median {
		return 0, false
	}
	return median, true
}

// ForecastNextTrough predicts the first state-size minimum strictly after
// `after`, extrapolating the last observed trough by the estimated period.
func ForecastNextTrough(troughs []int64, after int64) (int64, bool) {
	period, ok := Periodicity(troughs)
	if !ok {
		return 0, false
	}
	last := troughs[len(troughs)-1]
	next := last
	for next <= after {
		next += period
	}
	return next, true
}
