package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"meteorshower/internal/failure"
	"meteorshower/internal/spe"
	"meteorshower/internal/statesize"
)

// Table1Row is one cluster column of Table I.
type Table1Row struct {
	Cluster string
	AFN100  map[failure.Cause]float64
	Burst   float64
}

// RunTable1 regenerates Table I from the failure generator.
func RunTable1(seed int64) []Table1Row {
	var rows []Table1Row
	for _, prof := range []failure.Profile{failure.GoogleDC(), failure.AbeCluster()} {
		events := failure.Generate(prof, 2400, failure.Year, seed)
		rows = append(rows, Table1Row{
			Cluster: prof.Name,
			AFN100:  failure.AFN100(events, 2400, failure.Year),
			Burst:   failure.BurstFraction(events),
		})
	}
	return rows
}

// FprintTable1 prints Table I with the paper's reference values.
func FprintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I — commodity data center failure models (AFN100)")
	fmt.Fprintf(w, "%-14s", "Failure Source")
	for _, r := range rows {
		fmt.Fprintf(w, "%24s", r.Cluster)
	}
	fmt.Fprintf(w, "%24s\n", "paper (Google / Abe)")
	ref := map[failure.Cause]string{
		failure.Network:     ">300 / ~250",
		failure.Environment: "100~150 / NA",
		failure.Ooops:       "~100 / ~40",
		failure.Disk:        "1.7~8.6 / 2~6",
		failure.Memory:      "1.3 / NA",
	}
	for _, c := range failure.Causes() {
		fmt.Fprintf(w, "%-14s", c)
		for _, r := range rows {
			fmt.Fprintf(w, "%24.1f", r.AFN100[c])
		}
		fmt.Fprintf(w, "%24s\n", ref[c])
	}
	for _, r := range rows {
		fmt.Fprintf(w, "burst fraction (%s): %.1f%% (paper: ~10%%)\n", r.Cluster, r.Burst*100)
	}
	n, afn := failure.GoogleNetworkExample()
	fmt.Fprintf(w, "worked example: %d network node-failures/year -> AFN100 = %.1f (paper: 7640 -> >300)\n", n, afn)
}

// Fig5Trace is one application's state-size series.
type Fig5Trace struct {
	App     string
	Samples []statesize.Sample
	Min     int64
	Max     int64
	Avg     int64
}

// RunFig5 runs each application without checkpoints and records the
// aggregate operator state size over time — the Fig. 5 traces whose local
// minima motivate application-aware checkpointing.
func RunFig5(p Params) ([]Fig5Trace, error) {
	p = p.withDefaults()
	var traces []Fig5Trace
	for _, kind := range p.Apps() {
		tr, err := runFig5One(p, kind)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

func runFig5One(p Params, kind AppKind) (Fig5Trace, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, err := startSystem(ctx, p, kind, spe.MSSrcAP, 0)
	if err != nil {
		return Fig5Trace{}, err
	}
	defer r.sys.Stop()
	sleepCtx(ctx, p.Warmup)

	tr := Fig5Trace{App: kind.String(), Min: 1 << 62}
	start := time.Now()
	for time.Since(start) < p.Window {
		var total int64
		for _, id := range nodeIDs(r) {
			if h := r.sys.Cluster().HAU(id); h != nil {
				total += h.CachedStateSize()
			}
		}
		tr.Samples = append(tr.Samples, statesize.Sample{
			At:   int64(time.Since(start)),
			Size: total,
		})
		if total < tr.Min {
			tr.Min = total
		}
		if total > tr.Max {
			tr.Max = total
		}
		sleepCtx(ctx, 20*time.Millisecond)
	}
	var sum int64
	for _, s := range tr.Samples {
		sum += s.Size
	}
	if len(tr.Samples) > 0 {
		tr.Avg = sum / int64(len(tr.Samples))
	}
	return tr, nil
}

func nodeIDs(r *runner) []string {
	return r.sys.Cluster().GraphNodes()
}

// FprintFig5 prints per-app state-size envelopes and a coarse trace.
func FprintFig5(w io.Writer, traces []Fig5Trace) {
	fmt.Fprintln(w, "Fig. 5 — state size fluctuation (sim KB ~ paper MB)")
	for _, tr := range traces {
		fmt.Fprintf(w, "\n(%s) min=%dKB max=%dKB avg=%dKB", tr.App, tr.Min>>10, tr.Max>>10, tr.Avg>>10)
		if tr.Min*2 < tr.Avg {
			fmt.Fprintf(w, "  [dynamic: min < avg/2]")
		}
		fmt.Fprintln(w)
		step := len(tr.Samples) / 24
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(tr.Samples); i += step {
			s := tr.Samples[i]
			fmt.Fprintf(w, "  t=%-8s %8d bytes %s\n",
				time.Duration(s.At).Truncate(10*time.Millisecond), s.Size, bar(s.Size, tr.Max, 40))
		}
	}
}

func bar(v, max int64, width int) string {
	if max <= 0 {
		return ""
	}
	n := int(v * int64(width) / max)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
