package placement

import (
	"errors"
	"sort"
	"sync"
)

// Move records one migration the rebalancer issued.
type Move struct {
	HAU      string
	From, To int
}

// RebalancerConfig wires a Rebalancer to the cluster layer. View and
// Migrate are the only coupling points, so the rebalancer itself stays
// free of cluster imports and is testable against stubs.
type RebalancerConfig struct {
	Policy Policy
	// View snapshots current placement and load.
	View func() View
	// Migrate live-migrates one HAU; it blocks until the move completes
	// or aborts.
	Migrate func(id string, dest int) error
	// Hysteresis is the imbalance dead-band: a migration is considered
	// only when the hottest node's load exceeds (1+Hysteresis) times the
	// mean. Default 0.25. Without the dead-band the rebalancer would
	// chase measurement noise and oscillate HAUs between nodes.
	Hysteresis float64
	// MaxMoves bounds migrations per Step (default 1): load numbers are
	// stale the moment the first migration lands, so further moves in the
	// same step act on fiction.
	MaxMoves int
	Logf     func(format string, args ...any)
}

// Rebalancer periodically compares per-node load and migrates HAUs off the
// hottest node. Load is measured as deltas between successive views
// (tuple-rate and disk-busy are cumulative counters), so the first Step
// only records a baseline.
type Rebalancer struct {
	cfg RebalancerConfig

	mu      sync.Mutex
	prev    View
	hasPrev bool
	moves   []Move
}

// NewRebalancer validates cfg and returns a stopped rebalancer; the
// controller (or a test) drives it by calling Step.
func NewRebalancer(cfg RebalancerConfig) *Rebalancer {
	if cfg.Policy == nil {
		cfg.Policy = RoundRobin{}
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 0.25
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Rebalancer{cfg: cfg}
}

// Moves returns every migration issued so far, oldest first.
func (r *Rebalancer) Moves() []Move {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Move(nil), r.moves...)
}

// Step takes one load reading and issues at most MaxMoves migrations.
// Returns how many migrations were performed.
func (r *Rebalancer) Step() (int, error) {
	if r.cfg.View == nil || r.cfg.Migrate == nil {
		return 0, errors.New("placement: rebalancer not wired to a cluster")
	}
	v := r.cfg.View()

	r.mu.Lock()
	prev, hasPrev := r.prev, r.hasPrev
	r.prev, r.hasPrev = v, true
	r.mu.Unlock()
	if !hasPrev || len(v.Alive) < 2 {
		return 0, nil // first reading is the rate baseline
	}

	score, own := r.scores(v, prev)
	alive := v.AliveNodes()
	if len(alive) < 2 {
		return 0, nil
	}
	var mean float64
	for _, n := range alive {
		mean += score[n]
	}
	mean /= float64(len(alive))

	moved := 0
	for moved < r.cfg.MaxMoves {
		hot := alive[0]
		for _, n := range alive {
			if score[n] > score[hot] {
				hot = n
			}
		}
		if mean <= 0 || score[hot] <= mean*(1+r.cfg.Hysteresis) {
			return moved, nil // within the dead-band: leave it alone
		}
		cand := r.candidates(v, hot, own)
		if len(cand) == 0 {
			return moved, nil
		}
		issued := false
		for _, id := range cand {
			dest, ok := r.cfg.Policy.Assign([]string{id}, v)[id]
			if !ok || dest == hot || dest < 0 || dest >= len(v.Alive) || !v.Alive[dest] {
				continue
			}
			r.cfg.Logf("rebalance: migrating %s node %d -> %d (load %.3f > mean %.3f)",
				id, hot, dest, score[hot], mean)
			if err := r.cfg.Migrate(id, dest); err != nil {
				return moved, err
			}
			r.mu.Lock()
			r.moves = append(r.moves, Move{HAU: id, From: hot, To: dest})
			// The stored baseline still places id on hot; fix it so the
			// next Step's rate deltas follow the HAU to its new node.
			if info, ok := r.prev.HAUs[id]; ok {
				info.Node = dest
				r.prev.HAUs[id] = info
			}
			r.mu.Unlock()
			score[hot] -= own[id]
			score[dest] += own[id]
			info := v.HAUs[id]
			info.Node = dest
			v.HAUs[id] = info
			moved++
			issued = true
			break
		}
		if !issued {
			return moved, nil
		}
	}
	return moved, nil
}

// scores computes one load number per node — normalized state bytes plus
// normalized tuple rate plus normalized disk-busy delta — and each HAU's
// own contribution (used to pick migration candidates).
func (r *Rebalancer) scores(v, prev View) (map[int]float64, map[string]float64) {
	stateN := make(map[int]float64)
	rateN := make(map[int]float64)
	ownState := make(map[string]float64)
	ownRate := make(map[string]float64)
	var stateTotal, rateTotal, busyTotal float64
	for id, info := range v.HAUs {
		w := info.weight()
		st := w * float64(info.StateBytes)
		var rate float64
		if p, ok := prev.HAUs[id]; ok && info.Processed >= p.Processed {
			rate = w * float64(info.Processed-p.Processed)
		}
		ownState[id], ownRate[id] = st, rate
		stateTotal += st
		rateTotal += rate
		if info.Node >= 0 && info.Node < len(v.Alive) {
			stateN[info.Node] += st
			rateN[info.Node] += rate
		}
	}
	busyN := make(map[int]float64)
	for n := range v.DiskBusy {
		var d float64
		if n < len(prev.DiskBusy) && v.DiskBusy[n] >= prev.DiskBusy[n] {
			d = float64(v.DiskBusy[n] - prev.DiskBusy[n])
		}
		busyN[n] = d
		busyTotal += d
	}
	frac := func(x, total float64) float64 {
		if total <= 0 {
			return 0
		}
		return x / total
	}
	score := make(map[int]float64, len(v.Alive))
	for n := range v.Alive {
		score[n] = frac(stateN[n], stateTotal) + frac(rateN[n], rateTotal) + frac(busyN[n], busyTotal)
	}
	own := make(map[string]float64, len(v.HAUs))
	for id := range v.HAUs {
		own[id] = frac(ownState[id], stateTotal) + frac(ownRate[id], rateTotal)
	}
	return score, own
}

// candidates lists the hottest node's HAUs, heaviest first — moving the
// largest contributor unloads the node with the fewest migrations.
func (r *Rebalancer) candidates(v View, hot int, own map[string]float64) []string {
	var ids []string
	for id, info := range v.HAUs {
		if info.Node == hot {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if own[ids[i]] != own[ids[j]] {
			return own[ids[i]] > own[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
