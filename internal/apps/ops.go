// Package apps implements the paper's three evaluation applications —
// Transportation Mode Inference (TMI), Bus Capacity Prediction (BCP) and
// SignalGuru — as query networks over the operator library, with synthetic
// workload generators shaped to reproduce the published state-size
// behaviour (Fig. 5).
//
// All derived tuples are stamped with the emitting operator's own identity
// (Src = operator name, ID = monotonic counter) so baseline recovery's
// per-source duplicate suppression stays sound for derived streams.
package apps

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
	"time"

	"meteorshower/internal/kmeans"
	"meteorshower/internal/operator"
	"meteorshower/internal/partition"
	"meteorshower/internal/svm"
	"meteorshower/internal/tuple"
	"meteorshower/internal/vision"
)

// identity stamps derived tuples with a stable per-operator identity.
type identity struct {
	name string
	next uint64
}

func (id *identity) stamp(t *tuple.Tuple) *tuple.Tuple {
	id.next++
	t.Src = id.name
	t.ID = id.next
	return t
}

func (id *identity) snapshot() []byte {
	return binary.LittleEndian.AppendUint64(nil, id.next)
}

func (id *identity) restore(buf []byte) error {
	if len(buf) < 8 {
		return errors.New("apps: short identity snapshot")
	}
	id.next = binary.LittleEndian.Uint64(buf)
	return nil
}

// --- payload encodings -----------------------------------------------------

func putF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func getF64(buf []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf))
}

// Position is a phone position report (TMI source payload).
type Position struct {
	X, Y float64
	TsMS int64
}

// Encode serializes p.
func (p Position) Encode() []byte {
	buf := make([]byte, 0, 24)
	buf = putF64(buf, p.X)
	buf = putF64(buf, p.Y)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.TsMS))
	return buf
}

// DecodePosition parses a Position payload.
func DecodePosition(buf []byte) (Position, error) {
	if len(buf) < 24 {
		return Position{}, errors.New("apps: short position payload")
	}
	return Position{
		X:    getF64(buf),
		Y:    getF64(buf[8:]),
		TsMS: int64(binary.LittleEndian.Uint64(buf[16:])),
	}, nil
}

// Speed is a derived speed observation (TMI pair output).
type Speed struct {
	V        float64
	RefSpeed float64 // filled in by the GoogleMap operator
}

// Encode serializes s.
func (s Speed) Encode() []byte {
	buf := make([]byte, 0, 16)
	buf = putF64(buf, s.V)
	buf = putF64(buf, s.RefSpeed)
	return buf
}

// DecodeSpeed parses a Speed payload.
func DecodeSpeed(buf []byte) (Speed, error) {
	if len(buf) < 16 {
		return Speed{}, errors.New("apps: short speed payload")
	}
	return Speed{V: getF64(buf), RefSpeed: getF64(buf[8:])}, nil
}

// Reading is a scalar sensor observation (BCP infrared, SignalGuru phase).
type Reading struct {
	Value float64
	TsMS  int64
}

// Encode serializes r.
func (r Reading) Encode() []byte {
	buf := make([]byte, 0, 16)
	buf = putF64(buf, r.Value)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TsMS))
	return buf
}

// DecodeReading parses a Reading payload.
func DecodeReading(buf []byte) (Reading, error) {
	if len(buf) < 16 {
		return Reading{}, errors.New("apps: short reading payload")
	}
	return Reading{Value: getF64(buf), TsMS: int64(binary.LittleEndian.Uint64(buf[8:]))}, nil
}

// --- TMI operators ----------------------------------------------------------

// PairOp is TMI's Pair operator: "calculating speed from position data". It
// keeps the previous position per phone and emits a Speed tuple for each
// consecutive pair. Its keyed state is sharded over the partition slot ring
// (operator.PartitionedState) so a hot Pair HAU can be split across
// replicas.
type PairOp struct {
	id   identity
	last map[string]Position

	// WorkNS models a compute-bound operator: every tuple costs WorkNS
	// nanoseconds of service time on the replica's own (simulated) node.
	// Used by the rescale benchmark to show throughput scaling with
	// replica count. Zero in production topologies.
	WorkNS int64
	// debt is unserved WorkNS time; it is paid in ~1ms timer sleeps
	// (yielding the simulation host) rather than busy-spins, so host core
	// count does not serialize the simulated replicas.
	debt int64
}

// NewPairOp returns an empty pair operator.
func NewPairOp(name string) *PairOp {
	return &PairOp{id: identity{name: name}, last: make(map[string]Position)}
}

// Name implements operator.Operator.
func (p *PairOp) Name() string { return p.id.name }

// OnTuple pairs the position with the phone's previous one.
func (p *PairOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	pos, err := DecodePosition(t.Data)
	if err != nil {
		return err
	}
	if p.WorkNS > 0 {
		p.debt += p.WorkNS
		if p.debt >= int64(time.Millisecond) {
			start := time.Now()
			time.Sleep(time.Duration(p.debt))
			p.debt -= time.Since(start).Nanoseconds() // oversleep is credit
		}
	}
	prev, ok := p.last[t.Key]
	p.last[t.Key] = pos
	if !ok || pos.TsMS <= prev.TsMS {
		return nil
	}
	dx, dy := pos.X-prev.X, pos.Y-prev.Y
	v := math.Sqrt(dx*dx+dy*dy) / float64(pos.TsMS-prev.TsMS)
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: Speed{V: v}.Encode()}
	emit(0, p.id.stamp(out))
	return nil
}

// StateSize reports the per-phone position map.
func (p *PairOp) StateSize() int64 {
	var n int64
	for k := range p.last {
		n += int64(len(k)) + 32
	}
	return n
}

// PartitionSlots implements operator.PartitionedState.
func (p *PairOp) PartitionSlots() int { return partition.DefaultSlots }

// Snapshot serializes the map as a partition slot table; the identity
// counter rides in the residue so every replica of a split continues the
// numbering (downstream operators restamp, so replica overlap is harmless).
func (p *PairOp) Snapshot() ([]byte, error) {
	slots := make([][]byte, partition.DefaultSlots)
	for _, k := range sortedKeys(p.last) {
		s := partition.SlotOf(k, len(slots))
		slots[s] = binary.LittleEndian.AppendUint16(slots[s], uint16(len(k)))
		slots[s] = append(slots[s], k...)
		slots[s] = append(slots[s], p.last[k].Encode()...)
	}
	return partition.AppendTable(nil, p.id.snapshot(), slots), nil
}

// Restore rebuilds the map from a slot table (possibly carved) or the
// legacy flat encoding.
func (p *PairOp) Restore(buf []byte) error {
	if partition.IsTable(buf) {
		residue, slots, err := partition.ParseTable(buf)
		if err != nil {
			return err
		}
		if err := p.id.restore(residue); err != nil {
			return err
		}
		p.last = make(map[string]Position)
		for _, sl := range slots {
			for len(sl) > 0 {
				if len(sl) < 2 {
					return errors.New("apps: truncated pair snapshot")
				}
				kl := int(binary.LittleEndian.Uint16(sl))
				sl = sl[2:]
				if len(sl) < kl+24 {
					return errors.New("apps: truncated pair snapshot")
				}
				pos, err := DecodePosition(sl[kl:])
				if err != nil {
					return err
				}
				p.last[string(sl[:kl])] = pos
				sl = sl[kl+24:]
			}
		}
		return nil
	}
	if err := p.id.restore(buf); err != nil {
		return err
	}
	buf = buf[8:]
	if len(buf) < 4 {
		return errors.New("apps: short pair snapshot")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	p.last = make(map[string]Position, n)
	for i := 0; i < n; i++ {
		if len(buf) < 2 {
			return errors.New("apps: truncated pair snapshot")
		}
		kl := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < kl+24 {
			return errors.New("apps: truncated pair snapshot")
		}
		k := string(buf[:kl])
		pos, err := DecodePosition(buf[kl:])
		if err != nil {
			return err
		}
		buf = buf[kl+24:]
		p.last[k] = pos
	}
	return nil
}

// RefSpeedOp is TMI's GoogleMap operator: it annotates each Speed with the
// reference speed for the phone's current road (derived deterministically
// from the key — the paper downloads it from Google Maps) and broadcasts
// the result to all Group operators.
type RefSpeedOp struct {
	id     identity
	Fanout int
}

// NewRefSpeedOp returns a reference-speed annotator with the given fanout.
func NewRefSpeedOp(name string, fanout int) *RefSpeedOp {
	if fanout <= 0 {
		fanout = 1
	}
	return &RefSpeedOp{id: identity{name: name}, Fanout: fanout}
}

// Name implements operator.Operator.
func (m *RefSpeedOp) Name() string { return m.id.name }

// OnTuple annotates and routes to the Group operator chosen by key hash.
// (Each GoogleMap connects to all Groups; any single tuple goes to the
// group that owns its phone.)
func (m *RefSpeedOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	sp, err := DecodeSpeed(t.Data)
	if err != nil {
		return err
	}
	sp.RefSpeed = refSpeedFor(t.Key)
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: sp.Encode()}
	emit(int(hash(t.Key)%uint64(m.Fanout)), m.id.stamp(out))
	return nil
}

func refSpeedFor(key string) float64 {
	return 5 + float64(hash(key)%90) // 5..95 "km/h" per road
}

// StateSize is zero (stateless annotator).
func (m *RefSpeedOp) StateSize() int64 { return 0 }

// Snapshot carries only the identity counter.
func (m *RefSpeedOp) Snapshot() ([]byte, error) { return m.id.snapshot(), nil }

// Restore rebuilds the identity counter.
func (m *RefSpeedOp) Restore(buf []byte) error { return m.id.restore(buf) }

// KMeansOp is TMI's k-means operator: it pools Speed tuples for a window,
// clusters them at the window boundary, emits one tuple per cluster, then
// discards the pool — producing the sawtooth state of Fig. 5a.
type KMeansOp struct {
	id       identity
	K        int
	WindowNS int64
	Seed     int64

	pool    []kmeans.Point
	poolB   int64
	firstAt int64
	lastAt  int64
}

// NewKMeansOp returns a k-means operator over windowNS windows.
func NewKMeansOp(name string, k int, windowNS int64, seed int64) *KMeansOp {
	return &KMeansOp{id: identity{name: name}, K: k, WindowNS: windowNS, Seed: seed}
}

// Name implements operator.Operator.
func (a *KMeansOp) Name() string { return a.id.name }

// OnTuple pools the speed observation.
func (a *KMeansOp) OnTuple(_ int, t *tuple.Tuple, _ operator.Emitter) error {
	sp, err := DecodeSpeed(t.Data)
	if err != nil {
		return err
	}
	if len(a.pool) == 0 {
		a.firstAt = t.Ts
	}
	if t.Ts > a.lastAt {
		a.lastAt = t.Ts
	}
	a.pool = append(a.pool, kmeans.Point{sp.V, sp.RefSpeed})
	a.poolB += 16 + 24 // vector + slice overhead: mirrors retained tuples
	return nil
}

// OnTick clusters and flushes at the window boundary.
func (a *KMeansOp) OnTick(now int64, emit operator.Emitter) error {
	if len(a.pool) == 0 || now-a.firstAt < a.WindowNS {
		return nil
	}
	k := a.K
	if k > len(a.pool) {
		k = len(a.pool)
	}
	res, err := kmeans.Cluster(a.pool, kmeans.Config{K: k, Seed: a.Seed, MaxIter: 10})
	if err != nil {
		return err
	}
	for i, c := range res.Centroids {
		out := &tuple.Tuple{
			Key: "cluster" + itoa(i),
			// Carry the newest pooled observation's event time so the
			// sink's end-to-end latency reflects pipeline delays rather
			// than resetting at every window boundary.
			Ts:   a.lastAt,
			Data: Speed{V: c[0], RefSpeed: c[1]}.Encode(),
		}
		emit(0, a.id.stamp(out))
	}
	a.pool = nil
	a.poolB = 0
	return nil
}

// PoolLen returns the number of pooled observations.
func (a *KMeansOp) PoolLen() int { return len(a.pool) }

// StateSize reports the pooled bytes — the sawtooth.
func (a *KMeansOp) StateSize() int64 { return a.poolB }

// Snapshot serializes the pool.
func (a *KMeansOp) Snapshot() ([]byte, error) {
	buf := a.id.snapshot()
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.firstAt))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.lastAt))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.pool)))
	for _, p := range a.pool {
		buf = putF64(buf, p[0])
		buf = putF64(buf, p[1])
	}
	return buf, nil
}

// Restore rebuilds the pool.
func (a *KMeansOp) Restore(buf []byte) error {
	if err := a.id.restore(buf); err != nil {
		return err
	}
	buf = buf[8:]
	if len(buf) < 20 {
		return errors.New("apps: short kmeans snapshot")
	}
	a.firstAt = int64(binary.LittleEndian.Uint64(buf))
	a.lastAt = int64(binary.LittleEndian.Uint64(buf[8:]))
	n := int(binary.LittleEndian.Uint32(buf[16:]))
	buf = buf[20:]
	if len(buf) < n*16 {
		return errors.New("apps: truncated kmeans snapshot")
	}
	a.pool = make([]kmeans.Point, n)
	a.poolB = 0
	for i := 0; i < n; i++ {
		a.pool[i] = kmeans.Point{getF64(buf), getF64(buf[8:])}
		buf = buf[16:]
		a.poolB += 16 + 24
	}
	return nil
}

// --- BCP operators ----------------------------------------------------------

// CountPeopleOp is BCP's Counter: it decodes a camera image and counts the
// people in it via connected components.
type CountPeopleOp struct {
	id identity
}

// NewCountPeopleOp returns a people counter.
func NewCountPeopleOp(name string) *CountPeopleOp {
	return &CountPeopleOp{id: identity{name: name}}
}

// Name implements operator.Operator.
func (c *CountPeopleOp) Name() string { return c.id.name }

// OnTuple counts blobs and emits the count. Only the analysis thumbnail at
// the front of the payload is decoded.
func (c *CountPeopleOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	im, _, err := vision.UnmarshalImagePrefix(t.Data)
	if err != nil {
		return err
	}
	n := vision.CountBlobs(im, 150, 4)
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: Reading{Value: float64(n), TsMS: t.Ts / 1e6}.Encode()}
	emit(0, c.id.stamp(out))
	return nil
}

// StateSize is zero.
func (c *CountPeopleOp) StateSize() int64 { return 0 }

// Snapshot carries only the identity counter.
func (c *CountPeopleOp) Snapshot() ([]byte, error) { return c.id.snapshot(), nil }

// Restore rebuilds the identity counter.
func (c *CountPeopleOp) Restore(buf []byte) error { return c.id.restore(buf) }

// HistoryOp is BCP's Historical image processing operator: it saves the
// recent images of each camera (to disambiguate occluded people), and
// discards a camera's images upon bus arrival — every ArriveEvery images —
// producing the fluctuating state of Fig. 5b. On each arrival it emits the
// stationary-person count derived from the history.
type HistoryOp struct {
	id          identity
	ArriveEvery int

	frames map[string][]*vision.Image
	counts map[string]int
	bytes  int64
}

// NewHistoryOp returns a historical-image operator; a bus "arrives" at a
// camera after every arriveEvery frames.
func NewHistoryOp(name string, arriveEvery int) *HistoryOp {
	if arriveEvery <= 0 {
		arriveEvery = 16
	}
	return &HistoryOp{
		id:          identity{name: name},
		ArriveEvery: arriveEvery,
		frames:      make(map[string][]*vision.Image),
		counts:      make(map[string]int),
	}
}

// Name implements operator.Operator.
func (h *HistoryOp) Name() string { return h.id.name }

// OnTuple stores the frame; on bus arrival it analyses and clears the
// camera's history.
func (h *HistoryOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	im, _, err := vision.UnmarshalImagePrefix(t.Data)
	if err != nil {
		return err
	}
	h.frames[t.Key] = append(h.frames[t.Key], im)
	h.bytes += im.ByteSize()
	h.counts[t.Key]++
	if h.counts[t.Key]%h.ArriveEvery != 0 {
		return nil
	}
	// Bus arrival: waiting people are those present across frames.
	mask, err := vision.StationaryBright(h.frames[t.Key], 150, 0.6)
	if err != nil {
		return err
	}
	n := vision.CountBlobs(mask, 150, 4)
	for _, f := range h.frames[t.Key] {
		h.bytes -= f.ByteSize()
	}
	delete(h.frames, t.Key)
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: Reading{Value: float64(n), TsMS: t.Ts / 1e6}.Encode()}
	emit(0, h.id.stamp(out))
	return nil
}

// FrameCount returns the stored frame total.
func (h *HistoryOp) FrameCount() int {
	n := 0
	for _, fs := range h.frames {
		n += len(fs)
	}
	return n
}

// StateSize reports stored image bytes.
func (h *HistoryOp) StateSize() int64 { return h.bytes }

// Snapshot serializes the per-camera histories.
func (h *HistoryOp) Snapshot() ([]byte, error) {
	buf := h.id.snapshot()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.frames)))
	for _, k := range sortedKeys(h.frames) {
		fs := h.frames[k]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(h.counts[k]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fs)))
		for _, f := range fs {
			enc := f.Marshal()
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
			buf = append(buf, enc...)
		}
	}
	// Cameras with counts but no pending frames.
	var rest []string
	for _, k := range sortedKeys(h.counts) {
		if _, ok := h.frames[k]; !ok {
			rest = append(rest, k)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rest)))
	for _, k := range rest {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(h.counts[k]))
	}
	return buf, nil
}

// Restore rebuilds the histories.
func (h *HistoryOp) Restore(buf []byte) error {
	if err := h.id.restore(buf); err != nil {
		return err
	}
	buf = buf[8:]
	r := bufReader{buf: buf}
	nCam, err := r.u32()
	if err != nil {
		return err
	}
	h.frames = make(map[string][]*vision.Image, nCam)
	h.counts = make(map[string]int)
	h.bytes = 0
	for i := uint32(0); i < nCam; i++ {
		k, err := r.str16()
		if err != nil {
			return err
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		h.counts[k] = int(cnt)
		nf, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nf; j++ {
			enc, err := r.bytes()
			if err != nil {
				return err
			}
			im, err := vision.UnmarshalImage(enc)
			if err != nil {
				return err
			}
			h.frames[k] = append(h.frames[k], im)
			h.bytes += im.ByteSize()
		}
	}
	nRest, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nRest; i++ {
		k, err := r.str16()
		if err != nil {
			return err
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		h.counts[k] = int(cnt)
	}
	return nil
}

// EMAPredictOp is a one-value-per-key exponential-moving-average predictor
// — BCP's boarding (B), bus-arrival (A) and alighting (L) prediction
// models. It emits its updated prediction for the key on every input.
type EMAPredictOp struct {
	id    identity
	Alpha float64
	ema   map[string]float64
}

// NewEMAPredictOp returns an EMA predictor with smoothing alpha.
func NewEMAPredictOp(name string, alpha float64) *EMAPredictOp {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &EMAPredictOp{id: identity{name: name}, Alpha: alpha, ema: make(map[string]float64)}
}

// Name implements operator.Operator.
func (e *EMAPredictOp) Name() string { return e.id.name }

// OnTuple updates the EMA and emits the prediction.
func (e *EMAPredictOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	rd, err := DecodeReading(t.Data)
	if err != nil {
		return err
	}
	prev, ok := e.ema[t.Key]
	if !ok {
		prev = rd.Value
	}
	cur := e.Alpha*rd.Value + (1-e.Alpha)*prev
	e.ema[t.Key] = cur
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: Reading{Value: cur, TsMS: rd.TsMS}.Encode()}
	emit(0, e.id.stamp(out))
	return nil
}

// Prediction returns the current EMA for key.
func (e *EMAPredictOp) Prediction(key string) (float64, bool) {
	v, ok := e.ema[key]
	return v, ok
}

// StateSize reports the EMA map.
func (e *EMAPredictOp) StateSize() int64 {
	var n int64
	for k := range e.ema {
		n += int64(len(k)) + 8
	}
	return n
}

// Snapshot serializes the EMA map.
func (e *EMAPredictOp) Snapshot() ([]byte, error) {
	buf := e.id.snapshot()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.ema)))
	for _, k := range sortedKeys(e.ema) {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = putF64(buf, e.ema[k])
	}
	return buf, nil
}

// Restore rebuilds the EMA map.
func (e *EMAPredictOp) Restore(buf []byte) error {
	if err := e.id.restore(buf); err != nil {
		return err
	}
	r := bufReader{buf: buf[8:]}
	n, err := r.u32()
	if err != nil {
		return err
	}
	e.ema = make(map[string]float64, n)
	for i := uint32(0); i < n; i++ {
		k, err := r.str16()
		if err != nil {
			return err
		}
		v, err := r.f64()
		if err != nil {
			return err
		}
		e.ema[k] = v
	}
	return nil
}

// RangeFilterOp drops readings outside [Lo, Hi] — BCP's noise filter (N).
// In-range readings are forwarded to every output port (BCP's N feeds both
// the arrival and the alighting predictors).
type RangeFilterOp struct {
	id     identity
	Lo, Hi float64
	Fanout int
}

// NewRangeFilterOp returns a band filter for sensor readings.
func NewRangeFilterOp(name string, lo, hi float64, fanout int) *RangeFilterOp {
	if fanout <= 0 {
		fanout = 1
	}
	return &RangeFilterOp{id: identity{name: name}, Lo: lo, Hi: hi, Fanout: fanout}
}

// Name implements operator.Operator.
func (f *RangeFilterOp) Name() string { return f.id.name }

// OnTuple forwards in-range readings to all output ports.
func (f *RangeFilterOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	rd, err := DecodeReading(t.Data)
	if err != nil {
		return err
	}
	if rd.Value < f.Lo || rd.Value > f.Hi {
		return nil
	}
	out := f.id.stamp(&tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: t.Data})
	for port := 0; port < f.Fanout; port++ {
		if port == f.Fanout-1 {
			emit(port, out)
		} else {
			emit(port, out.Clone())
		}
	}
	return nil
}

// StateSize is zero.
func (f *RangeFilterOp) StateSize() int64 { return 0 }

// Snapshot carries only the identity counter.
func (f *RangeFilterOp) Snapshot() ([]byte, error) { return f.id.snapshot(), nil }

// Restore rebuilds the identity counter.
func (f *RangeFilterOp) Restore(buf []byte) error { return f.id.restore(buf) }

// CombineOp is BCP's crowdedness predictor (P) and Join (J): it keeps the
// latest value per key from each of two input streams and emits their
// combination whenever either side updates and both are known.
type CombineOp struct {
	id      identity
	Combine func(a, b float64) float64
	sides   [2]map[string]float64
}

// NewCombineOp returns a two-stream combiner.
func NewCombineOp(name string, combine func(a, b float64) float64) *CombineOp {
	c := &CombineOp{id: identity{name: name}, Combine: combine}
	c.sides[0] = make(map[string]float64)
	c.sides[1] = make(map[string]float64)
	return c
}

// Name implements operator.Operator.
func (c *CombineOp) Name() string { return c.id.name }

// OnTuple records the side's value and emits the combination.
func (c *CombineOp) OnTuple(port int, t *tuple.Tuple, emit operator.Emitter) error {
	if port < 0 || port > 1 {
		return errors.New("apps: combine op has two ports")
	}
	rd, err := DecodeReading(t.Data)
	if err != nil {
		return err
	}
	c.sides[port][t.Key] = rd.Value
	other, ok := c.sides[1-port][t.Key]
	if !ok {
		return nil
	}
	a, b := rd.Value, other
	if port == 1 {
		a, b = other, rd.Value
	}
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: Reading{Value: c.Combine(a, b), TsMS: rd.TsMS}.Encode()}
	emit(0, c.id.stamp(out))
	return nil
}

// StateSize reports both sides.
func (c *CombineOp) StateSize() int64 {
	var n int64
	for s := 0; s < 2; s++ {
		for k := range c.sides[s] {
			n += int64(len(k)) + 8
		}
	}
	return n
}

// Snapshot serializes both sides.
func (c *CombineOp) Snapshot() ([]byte, error) {
	buf := c.id.snapshot()
	for s := 0; s < 2; s++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.sides[s])))
		for _, k := range sortedKeys(c.sides[s]) {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
			buf = append(buf, k...)
			buf = putF64(buf, c.sides[s][k])
		}
	}
	return buf, nil
}

// Restore rebuilds both sides.
func (c *CombineOp) Restore(buf []byte) error {
	if err := c.id.restore(buf); err != nil {
		return err
	}
	r := bufReader{buf: buf[8:]}
	for s := 0; s < 2; s++ {
		n, err := r.u32()
		if err != nil {
			return err
		}
		c.sides[s] = make(map[string]float64, n)
		for i := uint32(0); i < n; i++ {
			k, err := r.str16()
			if err != nil {
				return err
			}
			v, err := r.f64()
			if err != nil {
				return err
			}
			c.sides[s][k] = v
		}
	}
	return nil
}

// FrameDispatchOp is the camera/phone Dispatcher (D) of BCP and
// SignalGuru: it routes each frame to one of Workers parallel pipelines by
// camera key, and — when CopyPort >= 0 — also hands a copy to the
// historical processing operator on that port.
type FrameDispatchOp struct {
	id       identity
	Workers  int
	CopyPort int // -1 = no history copy
}

// NewFrameDispatchOp returns a dispatcher over `workers` pipelines with an
// optional extra copy port.
func NewFrameDispatchOp(name string, workers int, copyPort int) *FrameDispatchOp {
	if workers <= 0 {
		workers = 1
	}
	return &FrameDispatchOp{id: identity{name: name}, Workers: workers, CopyPort: copyPort}
}

// Name implements operator.Operator.
func (d *FrameDispatchOp) Name() string { return d.id.name }

// OnTuple routes by key hash; the original tuple's source identity is
// preserved so per-edge FIFO-per-source dedup remains valid.
func (d *FrameDispatchOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	if d.CopyPort >= 0 {
		emit(d.CopyPort, t.Clone())
	}
	emit(int(hash(t.Key)%uint64(d.Workers)), t)
	return nil
}

// StateSize is zero.
func (d *FrameDispatchOp) StateSize() int64 { return 0 }

// Snapshot carries only the identity counter.
func (d *FrameDispatchOp) Snapshot() ([]byte, error) { return d.id.snapshot(), nil }

// Restore rebuilds the identity counter.
func (d *FrameDispatchOp) Restore(buf []byte) error { return d.id.restore(buf) }

// --- SignalGuru operators ----------------------------------------------------

// BandFilterOp is SignalGuru's color filter (C): it band-passes the image
// so only signal-lamp-intensity pixels survive. It keeps a per-camera
// frame count (the paper's filters expose per-stream statistics for the
// dispatcher's load feedback), which makes it the fan-out topologies'
// keyed re-partition target: the count map shards over the slot ring, so
// a hot filter can be split across HAU replicas.
type BandFilterOp struct {
	id     identity
	Lo, Hi uint8
	// MaxKeys caps the counter map; zero means bandFilterMaxKeys. When the
	// map outgrows the cap every count is halved and zeroes are evicted, so
	// hot cameras keep (decayed) counts while one-off keys age out and the
	// state stays bounded under arbitrarily skewed key churn.
	MaxKeys int
	seen    map[string]uint64
}

// bandFilterMaxKeys bounds the per-camera counter map: past this many
// distinct keys the counts decay (halve, evict zeroes) until the map fits.
const bandFilterMaxKeys = 4096

// NewBandFilterOp returns an intensity band filter.
func NewBandFilterOp(name string, lo, hi uint8) *BandFilterOp {
	return &BandFilterOp{id: identity{name: name}, Lo: lo, Hi: hi, seen: make(map[string]uint64)}
}

// Name implements operator.Operator.
func (b *BandFilterOp) Name() string { return b.id.name }

// OnTuple filters the thumbnail and forwards the raw frame untouched.
func (b *BandFilterOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	im, n, err := vision.UnmarshalImagePrefix(t.Data)
	if err != nil {
		return err
	}
	b.seen[t.Key]++
	if len(b.seen) > b.maxKeys() {
		b.decay()
	}
	data := vision.BandPass(im, b.Lo, b.Hi).Marshal()
	data = append(data, t.Data[n:]...)
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: data}
	emit(0, b.id.stamp(out))
	return nil
}

// Seen returns the number of frames filtered for key (tests).
func (b *BandFilterOp) Seen(key string) uint64 { return b.seen[key] }

func (b *BandFilterOp) maxKeys() int {
	if b.MaxKeys > 0 {
		return b.MaxKeys
	}
	return bandFilterMaxKeys
}

// decay halves every count and evicts keys that reach zero, repeating until
// the map fits under the cap. Counts only shrink, so the loop terminates,
// and the result depends only on the tuple order — a recovered replica
// replaying the same stream decays identically, which keeps the chaos
// harness's reference-replay state oracle valid.
func (b *BandFilterOp) decay() {
	for max := b.maxKeys(); len(b.seen) > max; {
		for k, v := range b.seen {
			v >>= 1
			if v == 0 {
				delete(b.seen, k)
			} else {
				b.seen[k] = v
			}
		}
	}
}

// StateSize reports the per-camera counter map.
func (b *BandFilterOp) StateSize() int64 {
	var n int64
	for k := range b.seen {
		n += int64(len(k)) + 8
	}
	return n
}

// PartitionSlots implements operator.PartitionedState.
func (b *BandFilterOp) PartitionSlots() int { return partition.DefaultSlots }

// Snapshot serializes the counter map as a partition slot table; the
// identity counter rides in the residue (downstream filters restamp, so
// replica overlap is harmless).
func (b *BandFilterOp) Snapshot() ([]byte, error) {
	slots := make([][]byte, partition.DefaultSlots)
	for _, k := range sortedKeys(b.seen) {
		s := partition.SlotOf(k, len(slots))
		slots[s] = binary.LittleEndian.AppendUint16(slots[s], uint16(len(k)))
		slots[s] = append(slots[s], k...)
		slots[s] = binary.LittleEndian.AppendUint64(slots[s], b.seen[k])
	}
	return partition.AppendTable(nil, b.id.snapshot(), slots), nil
}

// Restore rebuilds the counters from a slot table (possibly carved) or the
// legacy residue-only encoding.
func (b *BandFilterOp) Restore(buf []byte) error {
	if partition.IsTable(buf) {
		residue, slots, err := partition.ParseTable(buf)
		if err != nil {
			return err
		}
		if err := b.id.restore(residue); err != nil {
			return err
		}
		b.seen = make(map[string]uint64)
		for _, sl := range slots {
			for len(sl) > 0 {
				if len(sl) < 2 {
					return errors.New("apps: truncated band-filter snapshot")
				}
				kl := int(binary.LittleEndian.Uint16(sl))
				sl = sl[2:]
				if len(sl) < kl+8 {
					return errors.New("apps: truncated band-filter snapshot")
				}
				b.seen[string(sl[:kl])] = binary.LittleEndian.Uint64(sl[kl:])
				sl = sl[kl+8:]
			}
		}
		return nil
	}
	if err := b.id.restore(buf); err != nil {
		return err
	}
	b.seen = make(map[string]uint64)
	return nil
}

// ShapeFilterOp is SignalGuru's shape filter (A): it zeroes blobs whose
// aspect ratio cannot be a signal housing.
type ShapeFilterOp struct {
	id     identity
	Lo, Hi float64
}

// NewShapeFilterOp returns a shape filter keeping ratios in [lo, hi].
func NewShapeFilterOp(name string, lo, hi float64) *ShapeFilterOp {
	return &ShapeFilterOp{id: identity{name: name}, Lo: lo, Hi: hi}
}

// Name implements operator.Operator.
func (s *ShapeFilterOp) Name() string { return s.id.name }

// OnTuple keeps only shape-plausible blobs in the thumbnail and forwards
// the raw frame untouched.
func (s *ShapeFilterOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	im, n, err := vision.UnmarshalImagePrefix(t.Data)
	if err != nil {
		return err
	}
	keep := vision.FilterByShape(vision.Blobs(im, 150, 2), s.Lo, s.Hi)
	out := vision.NewImage(im.W, im.H)
	for _, b := range keep {
		for y := b.MinY; y <= b.MaxY; y++ {
			for x := b.MinX; x <= b.MaxX; x++ {
				out.Set(x, y, im.At(x, y))
			}
		}
	}
	data := out.Marshal()
	data = append(data, t.Data[n:]...)
	res := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: data}
	emit(0, s.id.stamp(res))
	return nil
}

// StateSize is zero.
func (s *ShapeFilterOp) StateSize() int64 { return 0 }

// PartitionSlots implements operator.PartitionedState (residue-only).
func (s *ShapeFilterOp) PartitionSlots() int { return 0 }

// Snapshot carries only the identity counter (as slot-table residue).
func (s *ShapeFilterOp) Snapshot() ([]byte, error) {
	return partition.AppendTable(nil, s.id.snapshot(), nil), nil
}

// Restore rebuilds the identity counter.
func (s *ShapeFilterOp) Restore(buf []byte) error {
	if partition.IsTable(buf) {
		residue, _, err := partition.ParseTable(buf)
		if err != nil {
			return err
		}
		return s.id.restore(residue)
	}
	return s.id.restore(buf)
}

// MotionFilterOp is SignalGuru's motion filter (M): it preserves all
// pictures taken by a phone at an intersection until the vehicle leaves
// (every DwellFrames frames, 10–40 s in the paper), then intersects them to
// find the stationary lights and reports the detected count — producing the
// large fluctuating state of Fig. 5c.
type MotionFilterOp struct {
	id          identity
	DwellFrames int

	// frames holds the raw preserved payloads (analysis thumbnail plus
	// full-resolution frame bytes): "the preserved images become the
	// operator's state as long as the vehicle remains in the vicinity of
	// an intersection" — so the big raw frames dominate state size.
	frames map[string][][]byte
	bytes  int64
}

// NewMotionFilterOp returns a motion filter; a vehicle leaves after
// dwellFrames frames.
func NewMotionFilterOp(name string, dwellFrames int) *MotionFilterOp {
	if dwellFrames <= 0 {
		dwellFrames = 24
	}
	return &MotionFilterOp{
		id:          identity{name: name},
		DwellFrames: dwellFrames,
		frames:      make(map[string][][]byte),
	}
}

// Name implements operator.Operator.
func (m *MotionFilterOp) Name() string { return m.id.name }

// OnTuple stores the frame; when the vehicle leaves, detect and clear.
func (m *MotionFilterOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	if _, _, err := vision.UnmarshalImagePrefix(t.Data); err != nil {
		return err
	}
	raw := append([]byte(nil), t.Data...)
	m.frames[t.Key] = append(m.frames[t.Key], raw)
	m.bytes += int64(len(raw))
	if len(m.frames[t.Key]) < m.DwellFrames {
		return nil
	}
	thumbs := make([]*vision.Image, 0, len(m.frames[t.Key]))
	for _, enc := range m.frames[t.Key] {
		im, _, err := vision.UnmarshalImagePrefix(enc)
		if err != nil {
			return err
		}
		thumbs = append(thumbs, im)
	}
	mask, err := vision.StationaryBright(thumbs, 150, 0.7)
	if err != nil {
		return err
	}
	n := vision.CountBlobs(mask, 150, 2)
	for _, enc := range m.frames[t.Key] {
		m.bytes -= int64(len(enc))
	}
	delete(m.frames, t.Key)
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: Reading{Value: float64(n), TsMS: t.Ts / 1e6}.Encode()}
	emit(0, m.id.stamp(out))
	return nil
}

// StateSize reports preserved image bytes.
func (m *MotionFilterOp) StateSize() int64 { return m.bytes }

// Snapshot serializes the preserved frames.
func (m *MotionFilterOp) Snapshot() ([]byte, error) {
	buf := m.id.snapshot()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.frames)))
	for _, k := range sortedKeys(m.frames) {
		fs := m.frames[k]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fs)))
		for _, enc := range fs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
			buf = append(buf, enc...)
		}
	}
	return buf, nil
}

// Restore rebuilds the preserved frames.
func (m *MotionFilterOp) Restore(buf []byte) error {
	if err := m.id.restore(buf); err != nil {
		return err
	}
	r := bufReader{buf: buf[8:]}
	n, err := r.u32()
	if err != nil {
		return err
	}
	m.frames = make(map[string][][]byte, n)
	m.bytes = 0
	for i := uint32(0); i < n; i++ {
		k, err := r.str16()
		if err != nil {
			return err
		}
		nf, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nf; j++ {
			enc, err := r.bytes()
			if err != nil {
				return err
			}
			m.frames[k] = append(m.frames[k], append([]byte(nil), enc...))
			m.bytes += int64(len(enc))
		}
	}
	return nil
}

// VotingOp is SignalGuru's voting operator (V): it collects detection
// counts per intersection and emits the majority count every VoteSize
// observations.
type VotingOp struct {
	id       identity
	VoteSize int
	votes    map[string][]float64
}

// NewVotingOp returns a majority voter over voteSize observations.
func NewVotingOp(name string, voteSize int) *VotingOp {
	if voteSize <= 0 {
		voteSize = 3
	}
	return &VotingOp{id: identity{name: name}, VoteSize: voteSize, votes: make(map[string][]float64)}
}

// Name implements operator.Operator.
func (v *VotingOp) Name() string { return v.id.name }

// OnTuple collects and, at quorum, emits the plurality value.
func (v *VotingOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	rd, err := DecodeReading(t.Data)
	if err != nil {
		return err
	}
	v.votes[t.Key] = append(v.votes[t.Key], rd.Value)
	if len(v.votes[t.Key]) < v.VoteSize {
		return nil
	}
	counts := make(map[float64]int)
	best, bestN := 0.0, 0
	for _, val := range v.votes[t.Key] {
		counts[val]++
		if counts[val] > bestN {
			best, bestN = val, counts[val]
		}
	}
	delete(v.votes, t.Key)
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: Reading{Value: best, TsMS: rd.TsMS}.Encode()}
	emit(0, v.id.stamp(out))
	return nil
}

// StateSize reports pending votes.
func (v *VotingOp) StateSize() int64 {
	var n int64
	for k, vs := range v.votes {
		n += int64(len(k)) + int64(len(vs))*8
	}
	return n
}

// Snapshot serializes pending votes.
func (v *VotingOp) Snapshot() ([]byte, error) {
	buf := v.id.snapshot()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.votes)))
	for _, k := range sortedKeys(v.votes) {
		vs := v.votes[k]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vs)))
		for _, val := range vs {
			buf = putF64(buf, val)
		}
	}
	return buf, nil
}

// Restore rebuilds pending votes.
func (v *VotingOp) Restore(buf []byte) error {
	if err := v.id.restore(buf); err != nil {
		return err
	}
	r := bufReader{buf: buf[8:]}
	n, err := r.u32()
	if err != nil {
		return err
	}
	v.votes = make(map[string][]float64, n)
	for i := uint32(0); i < n; i++ {
		k, err := r.str16()
		if err != nil {
			return err
		}
		nv, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nv; j++ {
			val, err := r.f64()
			if err != nil {
				return err
			}
			v.votes[k] = append(v.votes[k], val)
		}
	}
	return nil
}

// SVMPredictOp is SignalGuru's prediction model (P): a pre-trained linear
// SVM classifying whether the signal will switch within the advisory
// horizon, from (detected count, time-of-cycle) features.
type SVMPredictOp struct {
	id    identity
	model *svm.Model
}

// NewSVMPredictOp returns a predictor with a deterministic pre-trained
// model (the paper trains offline from historical transitions).
func NewSVMPredictOp(name string, seed int64) *SVMPredictOp {
	x, y := trainingSet(seed)
	model, err := svm.Train(x, y, svm.Config{Seed: seed, Epochs: 15})
	if err != nil {
		// Training on the deterministic synthetic set cannot fail.
		panic(err)
	}
	return &SVMPredictOp{id: identity{name: name}, model: model}
}

func trainingSet(seed int64) ([][]float64, []float64) {
	// Deterministic separable set: switch soon iff phase > count.
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		phase := float64((i*7 + int(seed)) % 20)
		count := float64(i % 10)
		label := 1.0
		if count >= phase {
			label = -1
		}
		x = append(x, []float64{phase, count})
		y = append(y, label)
	}
	return x, y
}

// Name implements operator.Operator.
func (p *SVMPredictOp) Name() string { return p.id.name }

// OnTuple emits 1 (switch imminent) or -1.
func (p *SVMPredictOp) OnTuple(_ int, t *tuple.Tuple, emit operator.Emitter) error {
	rd, err := DecodeReading(t.Data)
	if err != nil {
		return err
	}
	phase := float64(rd.TsMS % 20)
	pred := p.model.Predict([]float64{phase, rd.Value})
	out := &tuple.Tuple{Key: t.Key, Ts: t.Ts, Data: Reading{Value: pred, TsMS: rd.TsMS}.Encode()}
	emit(0, p.id.stamp(out))
	return nil
}

// StateSize covers the (fixed) model weights.
func (p *SVMPredictOp) StateSize() int64 { return int64(len(p.model.W))*8 + 8 }

// Snapshot serializes the model and identity.
func (p *SVMPredictOp) Snapshot() ([]byte, error) {
	buf := p.id.snapshot()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.model.W)))
	for _, w := range p.model.W {
		buf = putF64(buf, w)
	}
	buf = putF64(buf, p.model.B)
	return buf, nil
}

// Restore rebuilds the model.
func (p *SVMPredictOp) Restore(buf []byte) error {
	if err := p.id.restore(buf); err != nil {
		return err
	}
	r := bufReader{buf: buf[8:]}
	n, err := r.u32()
	if err != nil {
		return err
	}
	w := make([]float64, n)
	for i := range w {
		if w[i], err = r.f64(); err != nil {
			return err
		}
	}
	b, err := r.f64()
	if err != nil {
		return err
	}
	p.model = &svm.Model{W: w, B: b}
	return nil
}

// --- helpers -----------------------------------------------------------------

type bufReader struct {
	buf []byte
}

var errShort = errors.New("apps: short snapshot")

func (r *bufReader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *bufReader) f64() (float64, error) {
	if len(r.buf) < 8 {
		return 0, errShort
	}
	v := getF64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *bufReader) str16() (string, error) {
	if len(r.buf) < 2 {
		return "", errShort
	}
	n := int(binary.LittleEndian.Uint16(r.buf))
	r.buf = r.buf[2:]
	if len(r.buf) < n {
		return "", errShort
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

func (r *bufReader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if len(r.buf) < int(n) {
		return nil, errShort
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}

// sortedKeys returns the map keys sorted, so snapshots are deterministic
// (identical state -> identical bytes), which delta-checkpointing needs.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
