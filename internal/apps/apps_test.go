package apps

import (
	"context"
	"testing"
	"time"

	"meteorshower/internal/cluster"
	"meteorshower/internal/core"
	"meteorshower/internal/metrics"
	"meteorshower/internal/spe"
)

func TestTMIPaperTopology(t *testing.T) {
	col := metrics.NewCollector()
	spec := TMI(TMIPaper(col, time.Second))
	if err := spec.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := spec.Graph.NumNodes(); got != 55 {
		t.Fatalf("TMI operators = %d, want 55 (paper: each app has 55 operators)", got)
	}
	if got := len(spec.Graph.Sources()); got != 10 {
		t.Fatalf("TMI sources = %d, want 10", got)
	}
	if got := spec.Graph.Sinks(); len(got) != 1 || got[0] != "K" {
		t.Fatalf("TMI sinks = %v", got)
	}
	// Each GoogleMap connects to all Group operators.
	for i := 0; i < 12; i++ {
		if d := spec.Graph.OutDegree("M" + itoa(i)); d != 10 {
			t.Fatalf("M%d out-degree = %d, want 10", i, d)
		}
	}
}

func TestBCPPaperTopology(t *testing.T) {
	col := metrics.NewCollector()
	spec := BCP(BCPPaper(col))
	if err := spec.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := spec.Graph.NumNodes(); got != 55 {
		t.Fatalf("BCP operators = %d, want 55", got)
	}
	if got := len(spec.Graph.Sources()); got != 8 {
		t.Fatalf("BCP sources = %d, want 8 (4 camera + 4 sensor)", got)
	}
	// Dispatchers feed 4 counters and one history operator.
	for c := 0; c < 4; c++ {
		if d := spec.Graph.OutDegree("D" + itoa(c)); d != 5 {
			t.Fatalf("D%d out-degree = %d, want 5", c, d)
		}
	}
}

func TestSGPaperTopology(t *testing.T) {
	col := metrics.NewCollector()
	spec := SG(SGPaper(col))
	if err := spec.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := spec.Graph.NumNodes(); got != 55 {
		t.Fatalf("SignalGuru operators = %d, want 55", got)
	}
	if got := len(spec.Graph.Sources()); got != 4 {
		t.Fatalf("SG sources = %d, want 4", got)
	}
	// Each filter pipeline is C -> A -> M.
	for i := 0; i < 12; i++ {
		down := spec.Graph.Downstream("C" + itoa(i))
		if len(down) != 1 || down[0] != "A"+itoa(i) {
			t.Fatalf("C%d downstream = %v", i, down)
		}
	}
}

func TestSmallTopologiesValidate(t *testing.T) {
	col := metrics.NewCollector()
	for _, spec := range []cluster.AppSpec{
		TMI(TMISmall(col)),
		BCP(BCPSmall(col)),
		SG(SGSmall(col)),
	} {
		if err := spec.Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}

// runSmoke boots an app under a scheme and waits for sink deliveries.
func runSmoke(t *testing.T, spec cluster.AppSpec, col *metrics.Collector, want uint64, timeout time.Duration) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		App:       spec,
		Scheme:    spe.MSSrcAP,
		Nodes:     4,
		TimeScale: 0, // no disk sleeping in tests
		TickEvery: time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if col.Count() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s: only %d tuples reached the sink (want %d)", spec.Name, col.Count(), want)
}

func TestTMIEndToEnd(t *testing.T) {
	col := metrics.NewCollector()
	cfg := TMISmall(col)
	runSmoke(t, TMI(cfg), col, 5, 20*time.Second)
}

func TestBCPEndToEnd(t *testing.T) {
	col := metrics.NewCollector()
	cfg := BCPSmall(col)
	runSmoke(t, BCP(cfg), col, 5, 20*time.Second)
}

func TestSGEndToEnd(t *testing.T) {
	col := metrics.NewCollector()
	cfg := SGSmall(col)
	runSmoke(t, SG(cfg), col, 2, 20*time.Second)
}

func TestTMICheckpointAndRecover(t *testing.T) {
	col := metrics.NewCollector()
	ref := &SinkRef{}
	cfg := TMISmall(col)
	cfg.SinkRef = ref
	cfg.TrackIdentity = true
	sys, err := core.NewSystem(core.Options{
		App:       TMI(cfg),
		Scheme:    spe.MSSrcAP,
		Nodes:     3,
		TimeScale: 0,
		TickEvery: time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	deadline := time.Now().Add(20 * time.Second)
	for col.Count() < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ep := sys.TriggerCheckpoint()
	if err := sys.WaitForEpoch(ep, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	sys.KillAll()
	if _, err := sys.RecoverAll(ctx); err != nil {
		t.Fatal(err)
	}
	before := ref.Get().Delivered()
	deadline = time.Now().Add(20 * time.Second)
	for ref.Get().Delivered() <= before+3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ref.Get().Duplicates() != 0 {
		t.Fatalf("TMI recovery delivered %d duplicates", ref.Get().Duplicates())
	}
}

// recoverySmoke checkpoints, kills everything, recovers and verifies
// exactly-once for one app spec.
func recoverySmoke(t *testing.T, spec cluster.AppSpec, col *metrics.Collector, ref *SinkRef, minFlow uint64) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		App:       spec,
		Scheme:    spe.MSSrcAP,
		Nodes:     3,
		TimeScale: 0,
		TickEvery: time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	deadline := time.Now().Add(20 * time.Second)
	for col.Count() < minFlow && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if col.Count() < minFlow {
		t.Fatalf("%s: warmup starved (%d deliveries)", spec.Name, col.Count())
	}
	ep := sys.TriggerCheckpoint()
	if err := sys.WaitForEpoch(ep, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	sys.KillAll()
	if _, err := sys.RecoverAll(ctx); err != nil {
		t.Fatal(err)
	}
	before := ref.Get().Delivered()
	deadline = time.Now().Add(20 * time.Second)
	for ref.Get().Delivered() <= before+minFlow/2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d := ref.Get().Duplicates(); d != 0 {
		t.Fatalf("%s: %d duplicates after recovery", spec.Name, d)
	}
}

func TestBCPCheckpointAndRecover(t *testing.T) {
	col := metrics.NewCollector()
	ref := &SinkRef{}
	cfg := BCPSmall(col)
	cfg.SinkRef = ref
	cfg.TrackIdentity = true
	recoverySmoke(t, BCP(cfg), col, ref, 10)
}

func TestSGCheckpointAndRecover(t *testing.T) {
	col := metrics.NewCollector()
	ref := &SinkRef{}
	cfg := SGSmall(col)
	cfg.SinkRef = ref
	cfg.TrackIdentity = true
	recoverySmoke(t, SG(cfg), col, ref, 2)
}

func TestTMIBaselineRunsEndToEnd(t *testing.T) {
	col := metrics.NewCollector()
	cfg := TMISmall(col)
	sys, err := core.NewSystem(core.Options{
		App:              TMI(cfg),
		Scheme:           spe.Baseline,
		Nodes:            3,
		TimeScale:        0,
		TickEvery:        time.Millisecond,
		CheckpointPeriod: 50 * time.Millisecond,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	deadline := time.Now().Add(20 * time.Second)
	for col.Count() < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if col.Count() < 5 {
		t.Fatal("baseline TMI starved")
	}
	// Baseline HAUs checkpoint on their own timers.
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := sys.Catalog().LatestEpochFor("A0"); ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("baseline never checkpointed A0")
}
