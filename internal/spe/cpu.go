package spe

import (
	"sync"
	"time"
)

// CPUGate models one node's finite compute as a single-server virtual busy
// clock shared by every HAU the node hosts. Each tuple's modelled service
// time is charged against the clock: the charge advances the clock by
// cost/cores and the charging HAU sleeps until the clock's new position, so
// co-located HAUs contend for the same capacity instead of sleeping
// independently. Utilization over a window is the growth of BusyTotal
// divided by wall-clock time — the CPU-proxy the elasticity trigger
// consumes.
//
// Charge and BusyTotal are safe for concurrent use.
type CPUGate struct {
	mu    sync.Mutex
	busy  time.Time     // virtual clock: when the CPU frees up
	total time.Duration // cumulative busy time charged
	cores float64
}

// cpuChargeChunk amortizes gate charges: per-tuple service times accumulate
// as loop-local debt and hit the gate's lock and timer only once the debt
// reaches this chunk, keeping sub-100µs costs off the per-tuple fast path.
const cpuChargeChunk = 100 * time.Microsecond

// cpuSlack is how far the virtual busy clock may run ahead of the wall
// clock before a charge blocks. OS timers overshoot short sleeps badly
// (~1ms floor on common kernels); sleeping on every sub-millisecond charge
// would burn the overshoot as invisible idle time and a saturated node
// would read ~0.3 utilization. Sleeping only on the excess beyond a slack
// window absorbs the overshoot — under sustained overload the clock hugs
// now+slack and measured utilization stays ~1 — at the cost of service
// bursts of at most cpuSlack*cores.
const cpuSlack = 10 * time.Millisecond

// NewCPUGate returns a gate with the given core count (values <= 0 are
// treated as one core).
func NewCPUGate(cores float64) *CPUGate {
	if cores <= 0 {
		cores = 1
	}
	return &CPUGate{cores: cores}
}

// Charge bills cost of modelled service time to the node and, when the
// virtual clock has run more than cpuSlack ahead of the wall clock, blocks
// for the excess. Sleep inaccuracy never corrupts the model: overshoot is
// absorbed by the slack window, and the next charge starts from
// max(now, clock), so long-run throughput is bounded by capacity
// regardless of timer resolution.
func (g *CPUGate) Charge(cost time.Duration) {
	if g == nil || cost <= 0 {
		return
	}
	scaled := time.Duration(float64(cost) / g.cores)
	g.mu.Lock()
	now := time.Now()
	start := g.busy
	if now.After(start) {
		start = now
	}
	g.busy = start.Add(scaled)
	lead := g.busy.Sub(now)
	g.total += scaled
	g.mu.Unlock()
	if lead > cpuSlack {
		time.Sleep(lead - cpuSlack)
	}
}

// BusyTotal returns the cumulative busy time charged to the node.
func (g *CPUGate) BusyTotal() time.Duration {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.total
}
