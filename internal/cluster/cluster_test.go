package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// sinkRegistry tracks the most recent sink instance (recovery replaces it).
type sinkRegistry struct {
	mu   sync.Mutex
	sink *operator.Sink
}

func (r *sinkRegistry) set(s *operator.Sink) {
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

func (r *sinkRegistry) get() *operator.Sink {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink
}

// testApp builds S0,S1 -> M -> K.
func testApp(col *metrics.Collector, reg *sinkRegistry) AppSpec {
	g := graph.New()
	for _, id := range []string{"S0", "S1", "M", "K"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("S0", "M")
	g.MustAddEdge("S1", "M")
	g.MustAddEdge("M", "K")
	return AppSpec{
		Name:  "test",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id {
			case "S0", "S1":
				return []operator.Operator{operator.NewRateSource(id, 3, 7, operator.BytePayload(16, 4))}
			case "M":
				return []operator.Operator{operator.NewPassthrough("M", 1)}
			default:
				s := operator.NewSink("K", col)
				s.TrackIdentity = true
				reg.set(s)
				return []operator.Operator{s}
			}
		},
	}
}

func fastSpecs() (local, shared storage.DiskSpec) {
	local = storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond, TimeScale: 0}
	shared = local
	return
}

func newTestCluster(t *testing.T, scheme spe.Scheme, nodes int) (*Cluster, *metrics.Collector, *sinkRegistry) {
	t.Helper()
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:            testApp(col, reg),
		Scheme:         scheme,
		Nodes:          nodes,
		LocalDiskSpec:  local,
		SharedSpec:     shared,
		TickEvery:      time.Millisecond,
		CkptPeriod:     40 * time.Millisecond,
		PreserveMemCap: 1 << 20,
		SourceFlush:    256,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, col, reg
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestNewValidatesSpec(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	g := graph.New()
	g.MustAddNode("a")
	g.MustAddNode("b")
	g.MustAddNode("c")
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	g.MustAddEdge("c", "a")
	_, err := New(Config{App: AppSpec{Graph: g, NewOperators: func(string) []operator.Operator { return nil }}})
	if err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestClusterRunsApp(t *testing.T) {
	cl, col, _ := newTestCluster(t, spe.MSSrcAP, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "tuples at sink", func() bool { return col.Count() >= 100 })
	if err := cl.Start(ctx); err == nil {
		t.Fatal("double start accepted")
	}
	cl.StopAll()
}

func TestPlacementRoundRobin(t *testing.T) {
	cl, _, _ := newTestCluster(t, spe.MSSrc, 2)
	seen := map[int]int{}
	for _, id := range []string{"S0", "S1", "M", "K"} {
		seen[cl.NodeOf(id)]++
	}
	if seen[0] != 2 || seen[1] != 2 {
		t.Fatalf("placement skewed: %v", seen)
	}
}

func TestCheckpointEpochCompletes(t *testing.T) {
	cl, col, _ := newTestCluster(t, spe.MSSrcAP, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 30 })
	ep := cl.Controller().TriggerCheckpoint()
	waitFor(t, 10*time.Second, "epoch completion", func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e == ep
	})
	st, ok := cl.Controller().Stat(ep)
	if !ok || len(st.Breakdown) != 4 {
		t.Fatalf("epoch stat incomplete: %+v", st)
	}
	cl.StopAll()
}

func TestSourceLogsPrunedAfterEpoch(t *testing.T) {
	cl, col, _ := newTestCluster(t, spe.MSSrc, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 50 })
	before := cl.ReplayableTuples()
	if before == 0 {
		t.Fatal("sources preserved nothing")
	}
	ep := cl.Controller().TriggerCheckpoint()
	waitFor(t, 10*time.Second, "epoch completion", func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e == ep
	})
	// After completion, epoch-0 segments must be gone; only post-epoch
	// tuples remain.
	waitFor(t, 10*time.Second, "log prune", func() bool {
		logs := 0
		for _, id := range []string{"S0", "S1"} {
			if l := cl.SourceLog(id); l != nil && l.Epoch() == ep {
				logs++
			}
		}
		return logs == 2
	})
	cl.StopAll()
}

func TestKillAllAndRecoverExactlyOnce(t *testing.T) {
	cl, col, reg := newTestCluster(t, spe.MSSrcAP, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 50 })
	ep := cl.Controller().TriggerCheckpoint()
	waitFor(t, 10*time.Second, "epoch completion", func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e == ep
	})
	// Let the app run past the checkpoint, then fail everything.
	waitFor(t, 10*time.Second, "post-ckpt progress", func() bool { return col.Count() >= 150 })
	cl.KillAll()

	stats, err := cl.RecoverAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != ep || stats.HAUs != 4 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	newSink := reg.get()
	// The restored sink must remember its pre-cut deliveries and replay
	// must fill the gap without duplicates.
	preCut := newSink.Delivered()
	waitFor(t, 10*time.Second, "post-recovery flow", func() bool {
		return reg.get().Delivered() > preCut+100
	})
	if d := reg.get().Duplicates(); d != 0 {
		t.Fatalf("sink saw %d duplicate tuples after recovery", d)
	}
	// Eventually every generated id up to some prefix is delivered
	// exactly once: spot-check the earliest post-cut ids.
	waitFor(t, 10*time.Second, "gap filled", func() bool {
		s := reg.get()
		return s.Seen("S0", 1) && s.Seen("S1", 1)
	})
	cl.StopAll()
}

// TestRecoverAllParallelRestore runs whole-application recovery with the
// bounded restore pool and verifies exactly-once still holds, and that the
// metrics collector received per-checkpoint breakdowns with the freeze
// window recorded separately from the writer-side phases.
func TestRecoverAllParallelRestore(t *testing.T) {
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:            testApp(col, reg),
		Scheme:         spe.MSSrcAP,
		Nodes:          3,
		LocalDiskSpec:  local,
		SharedSpec:     shared,
		TickEvery:      time.Millisecond,
		CkptPeriod:     40 * time.Millisecond,
		PreserveMemCap: 1 << 20,
		SourceFlush:    256,
		Seed:           1,
		RestoreWorkers: 8,
		Metrics:        col,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 50 })
	ep := cl.Controller().TriggerCheckpoint()
	waitFor(t, 10*time.Second, "epoch completion", func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e == ep
	})
	cks := col.Checkpoints()
	if len(cks) == 0 {
		t.Fatal("no checkpoint breakdowns recorded")
	}
	for _, ck := range cks {
		if !ck.Async {
			t.Fatalf("MSSrcAP checkpoint recorded as synchronous: %+v", ck)
		}
		if ck.DirtyBytes <= 0 || ck.StateBytes <= 0 {
			t.Fatalf("checkpoint missing byte counts: %+v", ck)
		}
	}
	cl.KillAll()

	stats, err := cl.RecoverAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != ep || stats.HAUs != 4 {
		t.Fatalf("recovery stats = %+v", stats)
	}
	preCut := reg.get().Delivered()
	waitFor(t, 10*time.Second, "post-recovery flow", func() bool {
		return reg.get().Delivered() > preCut+100
	})
	if d := reg.get().Duplicates(); d != 0 {
		t.Fatalf("sink saw %d duplicates after parallel restore", d)
	}
	cl.StopAll()
}

func TestRecoverAllWithoutCheckpointFails(t *testing.T) {
	cl, _, _ := newTestCluster(t, spe.MSSrcAP, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cl.KillAll()
	if _, err := cl.RecoverAll(ctx); err == nil {
		t.Fatal("recovery without a checkpoint must fail")
	}
	cl.StopAll()
}

func TestBaselineSingleHAURecovery(t *testing.T) {
	cl, col, reg := newTestCluster(t, spe.Baseline, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 80 })
	// Wait for M to have a checkpoint of its own.
	waitFor(t, 10*time.Second, "M checkpoint", func() bool {
		_, ok := cl.Catalog().LatestEpochFor("M")
		return ok
	})
	// Fail the node hosting M only.
	cl.KillNode(cl.NodeOf("M"))
	waitFor(t, 10*time.Second, "M stopped", func() bool {
		select {
		case <-cl.HAU("M").Done():
			return true
		default:
			return false
		}
	})
	before := reg.get().Delivered()
	stats, err := cl.RecoverHAU(ctx, "M")
	if err != nil {
		t.Fatal(err)
	}
	if stats.HAUs != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	waitFor(t, 10*time.Second, "flow resumes", func() bool {
		return reg.get().Delivered() > before+50
	})
	if d := reg.get().Duplicates(); d != 0 {
		t.Fatalf("sink saw %d duplicates after baseline recovery", d)
	}
	cl.StopAll()
}

func TestFailureDetectionViaPing(t *testing.T) {
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	var mu sync.Mutex
	var detected []string
	cl, err := New(Config{
		App:           testApp(col, reg),
		Scheme:        spe.MSSrcAP,
		Nodes:         2,
		LocalDiskSpec: local,
		SharedSpec:    shared,
		TickEvery:     time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Wire detection after start (controller cfg callbacks are fixed at
	// New; use the cluster-level helper instead).
	cl.SetFailureHandler(func(dead []string) {
		mu.Lock()
		detected = append(detected, dead...)
		mu.Unlock()
	})
	cl.StartController(ctx)
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 20 })
	cl.KillNode(0)
	waitFor(t, 10*time.Second, "failure detected", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(detected) > 0
	})
	cl.StopAll()
}

func TestKillNodesBurst(t *testing.T) {
	cl, col, _ := newTestCluster(t, spe.MSSrcAP, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 30 })
	ep := cl.Controller().TriggerCheckpoint()
	waitFor(t, 10*time.Second, "epoch", func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e == ep
	})
	// Correlated burst: half the cluster at once.
	cl.KillNodes([]int{0, 1})
	if _, err := cl.RecoverAll(ctx); err != nil {
		t.Fatal(err)
	}
	before := col.Count()
	waitFor(t, 10*time.Second, "post-burst flow", func() bool { return col.Count() > before+50 })
	cl.StopAll()
}

func TestTupleSeqStampedOnEdges(t *testing.T) {
	// White-box: edges carry monotonically increasing seqs per port.
	e := spe.NewEdge("a", "b", 8)
	_ = e
	tp := tuple.New(1, "S", "k", nil)
	if tp.Seq != 0 {
		t.Fatal("fresh tuples must be unsequenced")
	}
}

func TestRecoverHAUErrors(t *testing.T) {
	cl, col, _ := newTestCluster(t, spe.Baseline, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 10 })
	if _, err := cl.RecoverHAU(ctx, "nope"); err == nil {
		t.Fatal("unknown HAU accepted")
	}
	// M exists but may not have checkpointed yet if we ask immediately;
	// force the no-checkpoint path with a fresh HAU id check instead:
	// kill and recover M before any checkpoint completes.
	if _, ok := cl.Catalog().LatestEpochFor("M"); !ok {
		if _, err := cl.RecoverHAU(ctx, "M"); err == nil {
			t.Fatal("recovery without checkpoint accepted")
		}
	}
}

func TestExtraListenerReceivesEvents(t *testing.T) {
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	lis := &recordingListener{}
	cl, err := New(Config{
		App:           testApp(col, reg),
		Scheme:        spe.MSSrcAP,
		Nodes:         2,
		LocalDiskSpec: local,
		SharedSpec:    shared,
		TickEvery:     time.Millisecond,
		Seed:          1,
		Listener:      lis,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 10 })
	ep := cl.Controller().TriggerCheckpoint()
	waitFor(t, 10*time.Second, "epoch", func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e == ep
	})
	waitFor(t, 10*time.Second, "extra listener", func() bool { return lis.ckpts.Load() >= 4 })
}

type recordingListener struct {
	ckpts atomic.Int64
}

func (l *recordingListener) CheckpointDone(string, uint64, spe.CheckpointBreakdown) {
	l.ckpts.Add(1)
}
func (l *recordingListener) TurningPoint(string, int64, int64, float64, bool) {}
func (l *recordingListener) Stopped(string, error)                            {}

func TestAccessorsAndStats(t *testing.T) {
	cl, _, _ := newTestCluster(t, spe.MSSrc, 2)
	if cl.SharedStore() == nil || cl.Catalog() == nil || cl.Controller() == nil {
		t.Fatal("nil accessors")
	}
	if got := len(cl.GraphNodes()); got != 4 {
		t.Fatalf("GraphNodes = %d", got)
	}
	if cl.HAU("S0") != nil {
		t.Fatal("HAU exists before Start")
	}
	if cl.Preserver("M") != nil {
		t.Fatal("preserver exists for MS scheme")
	}
}

func TestKillDuringCheckpointFallsBackToCompleteEpoch(t *testing.T) {
	// Use slow shared storage so an epoch is guaranteed to be in flight
	// when the failure hits: some HAUs will have saved epoch 2, others not.
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, _ := fastSpecs()
	slowShared := storage.DiskSpec{BandwidthBps: 1 << 20, Latency: 5 * time.Millisecond, TimeScale: 1}
	cl, err := New(Config{
		App:           testApp(col, reg),
		Scheme:        spe.MSSrcAP,
		Nodes:         2,
		LocalDiskSpec: local,
		SharedSpec:    slowShared,
		TickEvery:     time.Millisecond,
		SourceFlush:   1 << 20, // keep source-log flushes off the slow disk
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	waitFor(t, 10*time.Second, "warmup", func() bool { return col.Count() >= 20 })

	ep1 := cl.Controller().TriggerCheckpoint()
	waitFor(t, 20*time.Second, "epoch 1", func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e == ep1
	})
	// Epoch 2 starts; kill the cluster before it can complete.
	cl.Controller().TriggerCheckpoint()
	cl.KillAll()

	stats, err := cl.RecoverAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != ep1 {
		t.Fatalf("recovered from epoch %d, want the complete epoch %d", stats.Epoch, ep1)
	}
	before := reg.get().Delivered()
	waitFor(t, 20*time.Second, "post-recovery flow", func() bool {
		return reg.get().Delivered() > before+20
	})
	if d := reg.get().Duplicates(); d != 0 {
		t.Fatalf("%d duplicates after mid-checkpoint failure", d)
	}
}
