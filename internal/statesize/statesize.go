// Package statesize implements the state-size analytics behind
// application-aware checkpointing (paper §III-C): turning-point (local
// extremum) detection on a per-HAU size series, instantaneous change rate
// (ICR) estimation, linear interpolation between turning points, dynamic-HAU
// classification, and the runtime profiler that derives the alert-mode
// threshold smax.
//
// The paper obtains sizes from precompiler-generated state_size()
// functions; here operators implement the Sizer interface instead (see
// DESIGN.md, substitutions).
package statesize

import (
	"math"
	"sort"
	"sync"
)

// Sizer is implemented by anything that can report its current state size
// in bytes. Every operator implements it; an HAU's size is the sum over its
// operators.
type Sizer interface {
	StateSize() int64
}

// Sample is one observation of a state-size series.
type Sample struct {
	At   int64 // ns since run start
	Size int64 // bytes
}

// PointKind classifies a turning point.
type PointKind uint8

const (
	// Trough is a local minimum — the candidate moment for checkpointing.
	Trough PointKind = iota
	// Peak is a local maximum.
	Peak
)

func (k PointKind) String() string {
	if k == Trough {
		return "trough"
	}
	return "peak"
}

// TurningPoint is a local extremum of a size series, annotated with the ICR
// measured just after the turn (paper Fig. 11: "P5(40,60)" = size 40,
// ICR +60 per unit time). ICR is in bytes per second.
type TurningPoint struct {
	At   int64
	Size int64
	Kind PointKind
	ICR  float64
}

// Tracker detects turning points in a streaming size series. The paper's
// dynamic HAUs "record their recent few state sizes and detect the turning
// points"; the tracker does the same with O(1) state. Detection is one
// sample late by construction: a turn at sample i is confirmed (and its
// post-turn ICR measured) when sample i+1 establishes the new direction.
// Tracker is not goroutine-safe; each HAU owns one.
type Tracker struct {
	hasPrev bool
	prev    Sample
	dir     int // direction established by the last movement: +1, -1, 0
}

// Observe feeds one sample and returns a confirmed turning point, or nil.
// Flat segments (equal consecutive sizes) do not change direction.
func (tr *Tracker) Observe(s Sample) *TurningPoint {
	if !tr.hasPrev {
		tr.hasPrev = true
		tr.prev = s
		return nil
	}
	defer func() { tr.prev = s }()
	var d int
	switch {
	case s.Size > tr.prev.Size:
		d = 1
	case s.Size < tr.prev.Size:
		d = -1
	default:
		return nil
	}
	prevDir := tr.dir
	tr.dir = d
	if prevDir == 0 || d == prevDir {
		return nil
	}
	tp := &TurningPoint{At: tr.prev.At, Size: tr.prev.Size, ICR: icr(tr.prev, s)}
	if d > 0 {
		tp.Kind = Trough
	} else {
		tp.Kind = Peak
	}
	return tp
}

// Last returns the most recent sample observed.
func (tr *Tracker) Last() (Sample, bool) { return tr.prev, tr.hasPrev }

func icr(from, to Sample) float64 {
	dt := to.At - from.At
	if dt <= 0 {
		return 0
	}
	return float64(to.Size-from.Size) / (float64(dt) / 1e9)
}

// Polyline is a piecewise-linear state-size function built from samples
// (typically turning points). "The state size at any time point between two
// adjacent turning points can be roughly recovered by linear interpolation"
// (§III-C2). Points must be appended in time order.
type Polyline struct {
	pts []Sample
}

// Append adds a vertex. Out-of-order vertices are inserted at the right
// position (slow path; normal operation appends).
func (p *Polyline) Append(s Sample) {
	if n := len(p.pts); n == 0 || p.pts[n-1].At <= s.At {
		p.pts = append(p.pts, s)
		return
	}
	i := sort.Search(len(p.pts), func(i int) bool { return p.pts[i].At > s.At })
	p.pts = append(p.pts, Sample{})
	copy(p.pts[i+1:], p.pts[i:])
	p.pts[i] = s
}

// Len returns the vertex count.
func (p *Polyline) Len() int { return len(p.pts) }

// Points returns the vertices (shared slice; callers must not mutate).
func (p *Polyline) Points() []Sample { return p.pts }

// At evaluates the polyline at time t. Before the first vertex it returns
// the first size; after the last, the last size.
func (p *Polyline) At(t int64) int64 {
	n := len(p.pts)
	if n == 0 {
		return 0
	}
	if t <= p.pts[0].At {
		return p.pts[0].Size
	}
	if t >= p.pts[n-1].At {
		return p.pts[n-1].Size
	}
	i := sort.Search(n, func(i int) bool { return p.pts[i].At > t }) - 1
	a, b := p.pts[i], p.pts[i+1]
	if b.At == a.At {
		return b.Size
	}
	frac := float64(t-a.At) / float64(b.At-a.At)
	return a.Size + int64(frac*float64(b.Size-a.Size))
}

// MinOn returns the minimum value of the polyline on [t0, t1] and the time
// at which it is attained. Both interval endpoints and every interior
// vertex are candidates (a linear function attains extrema at endpoints).
func (p *Polyline) MinOn(t0, t1 int64) (at, size int64) {
	at, size = t0, p.At(t0)
	if v := p.At(t1); v < size {
		at, size = t1, v
	}
	for _, pt := range p.pts {
		if pt.At > t0 && pt.At < t1 && pt.Size < size {
			at, size = pt.At, pt.Size
		}
	}
	return at, size
}

// IsDynamic reports whether a size series belongs to a dynamic HAU: "HAUs
// whose minimum state size is less than half of its average state size are
// deemed dynamic" (§III-C2).
func IsDynamic(samples []Sample) bool {
	if len(samples) == 0 {
		return false
	}
	var sum float64
	min := int64(math.MaxInt64)
	for _, s := range samples {
		sum += float64(s.Size)
		if s.Size < min {
			min = s.Size
		}
	}
	avg := sum / float64(len(samples))
	return float64(min) < avg/2
}

// MinRelaxation is the paper's floor on the relaxation factor: smax is
// raised until (smax-smin)/smin >= 20%, giving alert mode enough occasions
// to trigger each period.
const MinRelaxation = 0.20

// Profile is the outcome of the profiling phase for one application.
type Profile struct {
	Smax  int64   // alert-mode threshold
	Smin  int64   // lowest per-period minimum observed
	Alpha float64 // relaxation factor (smax-smin)/smin after flooring
	// BestTimes holds, per checkpoint period, the moment of minimal
	// aggregate state (the red circles in Fig. 10).
	BestTimes []int64
	// BestSizes holds the corresponding minima.
	BestSizes []int64
}

// BuildProfile analyses the aggregate dynamic-HAU state function over
// [start, end) partitioned into checkpoint periods of length period, and
// derives the alert threshold: smax is the highest per-period minimum
// ("the y-coordinates of the highest and lowest red-circled points are
// called smax and smin"), then relaxed to at least MinRelaxation above
// smin.
func BuildProfile(f *Polyline, start, end, period int64) Profile {
	var p Profile
	if period <= 0 || end <= start || f.Len() == 0 {
		return p
	}
	p.Smin = math.MaxInt64
	for t0 := start; t0 < end; t0 += period {
		t1 := t0 + period
		if t1 > end {
			t1 = end
		}
		at, size := f.MinOn(t0, t1)
		p.BestTimes = append(p.BestTimes, at)
		p.BestSizes = append(p.BestSizes, size)
		if size > p.Smax {
			p.Smax = size
		}
		if size < p.Smin {
			p.Smin = size
		}
	}
	if p.Smin == math.MaxInt64 {
		p.Smin = 0
	}
	// Conservatively widen the band (§III-C2): bound alpha below.
	if p.Smin > 0 {
		alpha := float64(p.Smax-p.Smin) / float64(p.Smin)
		if alpha < MinRelaxation {
			p.Smax = p.Smin + int64(math.Ceil(MinRelaxation*float64(p.Smin)))
			alpha = float64(p.Smax-p.Smin) / float64(p.Smin)
		}
		p.Alpha = alpha
	} else if p.Smax == 0 {
		// Degenerate: state hits zero every period. Any positive
		// threshold works; keep a small one so alert mode still arms.
		p.Smax = 1
	}
	return p
}

// Aggregator sums the latest reported sizes of a set of dynamic HAUs and
// their latest ICRs. The controller holds one; HAUs report turning points
// into it. Safe for concurrent use.
type Aggregator struct {
	mu    sync.Mutex
	size  map[string]int64
	icr   map[string]float64
	lines map[string]*Polyline
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		size:  make(map[string]int64),
		icr:   make(map[string]float64),
		lines: make(map[string]*Polyline),
	}
}

// Report records HAU id's state size (and optionally ICR) at time at.
func (a *Aggregator) Report(id string, at int64, size int64, icr float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.size[id] = size
	a.icr[id] = icr
	pl := a.lines[id]
	if pl == nil {
		pl = &Polyline{}
		a.lines[id] = pl
	}
	pl.Append(Sample{At: at, Size: size})
}

// TotalSize returns the sum of the latest sizes.
func (a *Aggregator) TotalSize() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, s := range a.size {
		n += s
	}
	return n
}

// TotalICR returns the sum of the latest ICRs ("the controller sums all
// ICRs"; a positive sum foretells growth).
func (a *Aggregator) TotalICR() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n float64
	for _, v := range a.icr {
		n += v
	}
	return n
}

// Line returns the polyline of one reporter's size series, or nil if the
// reporter never reported.
func (a *Aggregator) Line(id string) *Polyline {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lines[id]
}

// AggregatePolyline returns the sum of all per-HAU polylines sampled at the
// union of their vertex times — the "Total State Size" curve of Fig. 10.
func (a *Aggregator) AggregatePolyline() *Polyline {
	a.mu.Lock()
	defer a.mu.Unlock()
	timeSet := make(map[int64]bool)
	for _, pl := range a.lines {
		for _, pt := range pl.pts {
			timeSet[pt.At] = true
		}
	}
	times := make([]int64, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := &Polyline{}
	for _, t := range times {
		var sum int64
		for _, pl := range a.lines {
			sum += pl.At(t)
		}
		out.Append(Sample{At: t, Size: sum})
	}
	return out
}

// Reset clears all reports (between profiling and execution phases).
func (a *Aggregator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.size = make(map[string]int64)
	a.icr = make(map[string]float64)
	a.lines = make(map[string]*Polyline)
}
