// Package operator defines the stream operator abstraction and a library
// of reusable operators. An operator is "executed repeatedly to process the
// incoming data" (paper §II-A); whenever it finishes processing a unit of
// input it emits output tuples downstream.
//
// Operators are single-goroutine objects owned by their HAU; they need no
// internal locking. Everything an operator keeps between invocations is its
// *state*, which must be exposed through StateSize (the paper generates
// state_size() with a precompiler; Go operators implement it directly) and
// must round-trip through Snapshot/Restore for checkpointing.
package operator

import (
	"encoding/binary"
	"errors"
	"sort"

	"meteorshower/internal/partition"
	"meteorshower/internal/tuple"
)

// Emitter delivers an output tuple to one of the operator's output ports.
// Port numbering follows the query network's downstream order.
type Emitter func(port int, t *tuple.Tuple)

// Operator is the unit of stream processing logic.
type Operator interface {
	// Name identifies the operator for diagnostics.
	Name() string
	// OnTuple processes one data tuple arriving on the given input port.
	OnTuple(port int, t *tuple.Tuple, emit Emitter) error
	// StateSize returns the operator's current state footprint in bytes
	// (statesize.Sizer).
	StateSize() int64
	// Snapshot serializes the operator state for a checkpoint.
	Snapshot() ([]byte, error)
	// Restore rebuilds the operator state from a snapshot.
	Restore([]byte) error
}

// Ticker is implemented by operators that need time-driven execution, e.g.
// window flushes. The HAU calls OnTick periodically with the current time.
type Ticker interface {
	OnTick(now int64, emit Emitter) error
}

// IncrementalSnapshotter is an optional checkpoint fast path for operators
// that track their own dirtiness. AppendSnapshot appends the encoded state
// to buf and reports whether the bytes differ from the previous
// AppendSnapshot call; when it reports false it must append nothing, and
// the caller reuses its cached copy of the previous encoding. The contract:
//
//   - The first call after construction MUST append and report true.
//   - Restore MUST mark the operator dirty, so the call after a restore
//     re-encodes (the caller's cache is gone).
//   - Reporting false promises the previously appended bytes are still
//     byte-identical — the encoding must be deterministic.
//
// Implement this on concrete operator types only, never on an embedded
// helper like Base: an embedded implementation would silently satisfy the
// interface for every operator that embeds it, capturing empty state.
type IncrementalSnapshotter interface {
	Operator
	AppendSnapshot(buf []byte) ([]byte, bool, error)
}

// PartitionedState is implemented by operators whose keyed state can be
// re-sharded across HAU replicas. The contract: Snapshot/AppendSnapshot
// encode the state as a partition slot table (partition.AppendTable) with
// PartitionSlots slots — each slot holding the state of exactly the keys
// with partition.SlotOf(key, PartitionSlots()) == slot — and Restore
// accepts any such table, including carved ones where foreign slots are
// empty. Non-keyed state (identity counters, models) goes in the table's
// residue, which a split copies to every replica and a merge takes from the
// first.
//
// PartitionSlots may return 0 for operators with no keyed state at all
// (residue-only); they are splittable because every replica just gets a
// residue copy.
//
// With this contract a split is "carve slots out of the drained blob" and a
// merge is slot-table concatenation — no operator-level re-encode.
type PartitionedState interface {
	Operator
	// PartitionSlots returns the slot-ring size of the snapshot encoding
	// (normally partition.DefaultSlots), or 0 for residue-only state.
	PartitionSlots() int
}

// SlotWeights snapshots a partitioned operator and returns its per-slot
// state bytes as partition weights — the skew signal available from state
// alone, before any traffic has been routed. Residue-only operators (and
// non-table snapshots) report nil: they carry no keyed state to weigh.
func SlotWeights(op PartitionedState) (partition.Weights, error) {
	if op.PartitionSlots() == 0 {
		return nil, nil
	}
	buf, err := op.Snapshot()
	if err != nil {
		return nil, err
	}
	return partition.SlotBytes(buf), nil
}

// Source is implemented by source operators: instead of consuming inputs
// they generate tuples. Generate is called by the HAU's clock; it returns
// the next batch (possibly empty). Generated tuples must carry fresh IDs so
// preservation and replay can identify them.
type Source interface {
	Operator
	Generate(now int64) []*tuple.Tuple
}

// Base provides Name and empty-state defaults for stateless operators.
type Base struct {
	OpName string
}

// Name returns the operator name.
func (b *Base) Name() string { return b.OpName }

// StateSize is zero for stateless operators.
func (b *Base) StateSize() int64 { return 0 }

// Snapshot of a stateless operator is empty.
func (b *Base) Snapshot() ([]byte, error) { return nil, nil }

// Restore of a stateless operator accepts any snapshot.
func (b *Base) Restore([]byte) error { return nil }

// ---------------------------------------------------------------------------

// Map applies a pure function to each tuple. A nil result drops the tuple
// (making Map double as a filter).
type Map struct {
	Base
	Fn func(*tuple.Tuple) *tuple.Tuple
}

// NewMap returns a stateless map/filter operator.
func NewMap(name string, fn func(*tuple.Tuple) *tuple.Tuple) *Map {
	return &Map{Base: Base{OpName: name}, Fn: fn}
}

// OnTuple applies Fn and forwards non-nil results to port 0.
func (m *Map) OnTuple(_ int, t *tuple.Tuple, emit Emitter) error {
	if out := m.Fn(t); out != nil {
		emit(0, out)
	}
	return nil
}

// Passthrough forwards every input tuple to every output port — the
// paper's Group operators (fan-in) and broadcast stages.
type Passthrough struct {
	Base
	Fanout int // number of output ports; 0 means 1
}

// NewPassthrough returns a fan-in/fan-out relay.
func NewPassthrough(name string, fanout int) *Passthrough {
	if fanout <= 0 {
		fanout = 1
	}
	return &Passthrough{Base: Base{OpName: name}, Fanout: fanout}
}

// OnTuple forwards t to all output ports.
func (p *Passthrough) OnTuple(_ int, t *tuple.Tuple, emit Emitter) error {
	for port := 0; port < p.Fanout; port++ {
		if port == p.Fanout-1 {
			emit(port, t)
		} else {
			emit(port, t.Clone())
		}
	}
	return nil
}

// Dispatch routes tuples to one of N output ports by key hash — the
// paper's Dispatcher operators (D) that spread camera/phone feeds over
// parallel pipelines.
type Dispatch struct {
	Base
	Ports int
}

// NewDispatch returns a key-hash router over ports outputs.
func NewDispatch(name string, ports int) *Dispatch {
	if ports <= 0 {
		ports = 1
	}
	return &Dispatch{Base: Base{OpName: name}, Ports: ports}
}

// OnTuple routes t by FNV-1a hash of its key.
func (d *Dispatch) OnTuple(_ int, t *tuple.Tuple, emit Emitter) error {
	emit(int(fnv1a(t.Key)%uint64(d.Ports)), t)
	return nil
}

func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ---------------------------------------------------------------------------

// Batcher accumulates tuples and flushes them as a batch when the batch
// reaches MaxTuples or when MaxAge elapses since the first buffered tuple.
// It is the schema of the paper's data-analysis kernels: "data mining and
// image processing algorithms ... manipulate data in batches. At the
// boundaries of the batches, the operator state is puny."
//
// Flush receives the batch and emits results; after it returns the pool is
// discarded, which is exactly the moment of minimal state.
type Batcher struct {
	Base
	MaxTuples int
	MaxAge    int64 // ns; 0 = no time bound
	Flush     func(batch []*tuple.Tuple, emit Emitter)

	pool      []*tuple.Tuple
	poolBytes int64
	firstAt   int64
	clean     bool // true while the pool matches the last AppendSnapshot
}

// NewBatcher returns a batching operator.
func NewBatcher(name string, maxTuples int, maxAge int64, flush func([]*tuple.Tuple, Emitter)) *Batcher {
	return &Batcher{Base: Base{OpName: name}, MaxTuples: maxTuples, MaxAge: maxAge, Flush: flush}
}

// OnTuple pools t and flushes when the tuple bound is hit.
func (b *Batcher) OnTuple(_ int, t *tuple.Tuple, emit Emitter) error {
	if len(b.pool) == 0 {
		b.firstAt = t.Ts
	}
	b.pool = append(b.pool, t)
	b.poolBytes += t.Size()
	b.clean = false
	if b.MaxTuples > 0 && len(b.pool) >= b.MaxTuples {
		b.doFlush(emit)
	}
	return nil
}

// OnTick flushes by age.
func (b *Batcher) OnTick(now int64, emit Emitter) error {
	if b.MaxAge > 0 && len(b.pool) > 0 && now-b.firstAt >= b.MaxAge {
		b.doFlush(emit)
	}
	return nil
}

func (b *Batcher) doFlush(emit Emitter) {
	if b.Flush != nil {
		b.Flush(b.pool, emit)
	}
	b.pool = nil
	b.poolBytes = 0
	b.clean = false
}

// PoolLen returns the number of pooled tuples.
func (b *Batcher) PoolLen() int { return len(b.pool) }

// StateSize reports the pooled bytes — the fluctuating state the
// application-aware checkpointing exploits.
func (b *Batcher) StateSize() int64 { return b.poolBytes }

// Snapshot serializes the pool.
func (b *Batcher) Snapshot() ([]byte, error) {
	return b.appendState(nil), nil
}

// AppendSnapshot implements IncrementalSnapshotter: an untouched pool
// (common at batch boundaries, where state is puny) encodes as zero bytes.
func (b *Batcher) AppendSnapshot(buf []byte) ([]byte, bool, error) {
	if b.clean {
		return buf, false, nil
	}
	b.clean = true
	return b.appendState(buf), true, nil
}

func (b *Batcher) appendState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.firstAt))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.pool)))
	buf = append(buf, tuple.MarshalMany(b.pool)...)
	return buf
}

// Restore rebuilds the pool.
func (b *Batcher) Restore(buf []byte) error {
	b.clean = false
	if len(buf) < 12 {
		return errors.New("batcher: short snapshot")
	}
	b.firstAt = int64(binary.LittleEndian.Uint64(buf))
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	pool, err := tuple.UnmarshalMany(buf[12:])
	if err != nil {
		return err
	}
	if len(pool) != n {
		return errors.New("batcher: snapshot count mismatch")
	}
	b.pool = pool
	b.poolBytes = 0
	for _, t := range pool {
		b.poolBytes += t.Size()
	}
	return nil
}

// ---------------------------------------------------------------------------

// Join is a windowed symmetric hash join on Key over two input ports. A
// tuple arriving on one port joins with every retained tuple of the other
// port that shares its key; matched pairs are emitted as a combined tuple.
// Tuples older than Window ns are evicted on tick.
type Join struct {
	Base
	Window  int64
	Combine func(left, right *tuple.Tuple) *tuple.Tuple

	sides [2]map[string][]*tuple.Tuple
	bytes int64
	clean bool // true while both sides match the last AppendSnapshot
}

// NewJoin returns a windowed equi-join.
func NewJoin(name string, window int64, combine func(l, r *tuple.Tuple) *tuple.Tuple) *Join {
	j := &Join{Base: Base{OpName: name}, Window: window, Combine: combine}
	j.sides[0] = make(map[string][]*tuple.Tuple)
	j.sides[1] = make(map[string][]*tuple.Tuple)
	return j
}

// OnTuple joins t against the opposite side and retains it.
func (j *Join) OnTuple(port int, t *tuple.Tuple, emit Emitter) error {
	if port != 0 && port != 1 {
		return errors.New("join: only ports 0 and 1 supported")
	}
	other := j.sides[1-port]
	for _, o := range other[t.Key] {
		var l, r = t, o
		if port == 1 {
			l, r = o, t
		}
		if out := j.Combine(l, r); out != nil {
			emit(0, out)
		}
	}
	j.sides[port][t.Key] = append(j.sides[port][t.Key], t)
	j.bytes += t.Size()
	j.clean = false
	return nil
}

// OnTick evicts tuples older than the window.
func (j *Join) OnTick(now int64, _ Emitter) error {
	if j.Window <= 0 {
		return nil
	}
	for s := range j.sides {
		for k, list := range j.sides[s] {
			kept := list[:0]
			for _, t := range list {
				if now-t.Ts < j.Window {
					kept = append(kept, t)
				} else {
					j.bytes -= t.Size()
					j.clean = false
				}
			}
			if len(kept) == 0 {
				delete(j.sides[s], k)
			} else {
				j.sides[s][k] = kept
			}
		}
	}
	return nil
}

// StateSize reports retained bytes on both sides.
func (j *Join) StateSize() int64 { return j.bytes }

// Snapshot serializes both sides.
func (j *Join) Snapshot() ([]byte, error) {
	return j.appendState(nil), nil
}

// AppendSnapshot implements IncrementalSnapshotter: a window with no
// arrivals or evictions since the previous call encodes as zero bytes.
func (j *Join) AppendSnapshot(buf []byte) ([]byte, bool, error) {
	if j.clean {
		return buf, false, nil
	}
	j.clean = true
	return j.appendState(buf), true, nil
}

func (j *Join) appendState(buf []byte) []byte {
	for s := 0; s < 2; s++ {
		var all []*tuple.Tuple
		for _, list := range j.sides[s] {
			all = append(all, list...)
		}
		enc := tuple.MarshalMany(all)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf
}

// Restore rebuilds both sides.
func (j *Join) Restore(buf []byte) error {
	j.clean = false
	j.bytes = 0
	for s := 0; s < 2; s++ {
		j.sides[s] = make(map[string][]*tuple.Tuple)
		if len(buf) < 4 {
			return errors.New("join: short snapshot")
		}
		n := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < n {
			return errors.New("join: truncated snapshot")
		}
		ts, err := tuple.UnmarshalMany(buf[:n])
		if err != nil {
			return err
		}
		buf = buf[n:]
		for _, t := range ts {
			j.sides[s][t.Key] = append(j.sides[s][t.Key], t)
			j.bytes += t.Size()
		}
	}
	return nil
}

// ---------------------------------------------------------------------------

// Counter counts tuples per key — a simple stateful aggregate used in
// tests and the quickstart example.
type Counter struct {
	Base
	counts map[string]uint64
	clean  bool // true while counts match the last AppendSnapshot encoding
}

// NewCounter returns an empty per-key counter.
func NewCounter(name string) *Counter {
	return &Counter{Base: Base{OpName: name}, counts: make(map[string]uint64)}
}

// OnTuple increments the count for t.Key and emits a copy annotated with
// nothing (the running count stays internal).
func (c *Counter) OnTuple(_ int, t *tuple.Tuple, emit Emitter) error {
	c.counts[t.Key]++
	c.clean = false
	emit(0, t)
	return nil
}

// Count returns the current count for key.
func (c *Counter) Count(key string) uint64 { return c.counts[key] }

// Total returns the sum over all keys.
func (c *Counter) Total() uint64 {
	var n uint64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// StateSize reports the map footprint.
func (c *Counter) StateSize() int64 {
	var n int64
	for k := range c.counts {
		n += int64(len(k)) + 8
	}
	return n
}

// PartitionSlots implements PartitionedState: counts are sharded over the
// default slot ring so a Counter HAU can be split across replicas.
func (c *Counter) PartitionSlots() int { return partition.DefaultSlots }

// Snapshot serializes the counts as a partition slot table. Keys are sorted
// within each slot so identical states produce identical bytes — a
// requirement for delta-checkpointing to find unchanged blocks.
func (c *Counter) Snapshot() ([]byte, error) {
	return c.appendState(nil), nil
}

// AppendSnapshot implements IncrementalSnapshotter: counts unchanged since
// the previous call encode as zero bytes.
func (c *Counter) AppendSnapshot(buf []byte) ([]byte, bool, error) {
	if c.clean {
		return buf, false, nil
	}
	c.clean = true
	return c.appendState(buf), true, nil
}

func (c *Counter) appendState(buf []byte) []byte {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	slots := make([][]byte, partition.DefaultSlots)
	for _, k := range keys {
		s := partition.SlotOf(k, len(slots))
		slots[s] = binary.LittleEndian.AppendUint16(slots[s], uint16(len(k)))
		slots[s] = append(slots[s], k...)
		slots[s] = binary.LittleEndian.AppendUint64(slots[s], c.counts[k])
	}
	return partition.AppendTable(buf, nil, slots)
}

// Restore rebuilds the counts from a slot table (possibly carved, with
// foreign slots empty) or the legacy flat encoding.
func (c *Counter) Restore(buf []byte) error {
	c.clean = false
	if partition.IsTable(buf) {
		_, slots, err := partition.ParseTable(buf)
		if err != nil {
			return err
		}
		c.counts = make(map[string]uint64)
		for _, sl := range slots {
			for len(sl) > 0 {
				if len(sl) < 2 {
					return errors.New("counter: truncated snapshot")
				}
				kl := int(binary.LittleEndian.Uint16(sl))
				sl = sl[2:]
				if len(sl) < kl+8 {
					return errors.New("counter: truncated snapshot")
				}
				c.counts[string(sl[:kl])] = binary.LittleEndian.Uint64(sl[kl:])
				sl = sl[kl+8:]
			}
		}
		return nil
	}
	if len(buf) < 4 {
		return errors.New("counter: short snapshot")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	c.counts = make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		if len(buf) < 2 {
			return errors.New("counter: truncated snapshot")
		}
		kl := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < kl+8 {
			return errors.New("counter: truncated snapshot")
		}
		k := string(buf[:kl])
		v := binary.LittleEndian.Uint64(buf[kl:])
		buf = buf[kl+8:]
		c.counts[k] = v
	}
	return nil
}
