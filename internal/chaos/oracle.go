package chaos

import (
	"fmt"
	"sort"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/cluster"
	"meteorshower/internal/operator"
	"meteorshower/internal/tuple"
)

// referenceReplay runs the application single-threaded: every source's
// bounded stream is regenerated and pushed depth-first through the
// operator graph with plain function calls — no goroutines, no edges, no
// checkpoints, no failures. For Audit-mode workloads (no tick-driven or
// arrival-order-sensitive operators) the resulting sink delivery state is
// the ground truth a chaos run must converge to regardless of how many
// times it was killed and recovered.
//
// The replay mirrors HAU semantics exactly where they affect data:
// operator chains pipe Ops[i] into Ops[i+1], the last operator's emissions
// route along the query network's downstream port order, and sources
// broadcast each generated tuple to every output port with header copies
// (operators restamp tuples in place, so branches must not share headers).
func referenceReplay(spec cluster.AppSpec, ref *apps.SinkRef) (operator.SinkReport, error) {
	g := spec.Graph
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	chains := make(map[string][]operator.Operator, len(order))
	for _, id := range order {
		chains[id] = spec.NewOperators(id)
	}

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	var process func(id string, port int, t *tuple.Tuple)
	var emitFrom func(id string, i int) operator.Emitter
	emitFrom = func(id string, i int) operator.Emitter {
		chain := chains[id]
		if i == len(chain)-1 {
			downs := g.Downstream(id)
			return func(port int, t *tuple.Tuple) {
				if firstErr != nil {
					return
				}
				if port < 0 || port >= len(downs) {
					fail(fmt.Errorf("chaos: %s emitted to invalid port %d", id, port))
					return
				}
				process(downs[port], g.PortOf(id, downs[port]), t)
			}
		}
		return func(port int, t *tuple.Tuple) {
			if firstErr != nil {
				return
			}
			if err := chain[i+1].OnTuple(port, t, emitFrom(id, i+1)); err != nil {
				fail(err)
			}
		}
	}
	process = func(id string, port int, t *tuple.Tuple) {
		if firstErr != nil {
			return
		}
		if err := chains[id][0].OnTuple(port, t, emitFrom(id, 0)); err != nil {
			fail(err)
		}
	}

	for _, id := range g.Sources() {
		src, ok := chains[id][0].(operator.Source)
		if !ok {
			return nil, fmt.Errorf("chaos: source HAU %s has no Source operator", id)
		}
		rs, bounded := chains[id][0].(*operator.RateSource)
		if !bounded || rs.Limit == 0 {
			return nil, fmt.Errorf("chaos: reference replay needs bounded sources (%s is unbounded)", id)
		}
		downs := g.Downstream(id)
		emit := emitFrom(id, 0)
		now := int64(0)
		for !rs.Exhausted() {
			now += int64(time.Millisecond)
			for _, t := range src.Generate(now) {
				for p := range downs {
					out := t
					if p < len(downs)-1 {
						out = t.Retain()
					}
					emit(p, out)
				}
			}
			if firstErr != nil {
				return nil, firstErr
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	sink := ref.Get()
	if sink == nil {
		return nil, fmt.Errorf("chaos: reference replay built no sink")
	}
	return sink.Report(), nil
}

// diffReports compares the chaos run's terminal sink state against the
// reference replay's, ignoring reorders (arrival order across fan-in paths
// is timing, not correctness). It returns one human-readable line per
// divergence; empty means the states are equivalent.
func diffReports(got, want operator.SinkReport) []string {
	var diffs []string
	srcs := make(map[string]bool, len(got)+len(want))
	for s := range got {
		srcs[s] = true
	}
	for s := range want {
		srcs[s] = true
	}
	keys := make([]string, 0, len(srcs))
	for s := range srcs {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	for _, s := range keys {
		gs, gok := got[s]
		ws, wok := want[s]
		switch {
		case !gok:
			diffs = append(diffs, fmt.Sprintf("%s: absent from chaos run, reference delivered %d", s, ws.Delivered))
		case !wok:
			diffs = append(diffs, fmt.Sprintf("%s: delivered %d but absent from reference replay", s, gs.Delivered))
		default:
			gs.Reorders, ws.Reorders = 0, 0
			if gs != ws {
				diffs = append(diffs, fmt.Sprintf(
					"%s: chaos delivered=%d ids=[%d,%d] gaps=%d dupes=%d; reference delivered=%d ids=[%d,%d] gaps=%d dupes=%d",
					s, gs.Delivered, gs.MinID, gs.MaxID, gs.Gaps, gs.Duplicates,
					ws.Delivered, ws.MinID, ws.MaxID, ws.Gaps, ws.Duplicates))
			}
		}
	}
	return diffs
}
