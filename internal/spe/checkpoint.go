package spe

import (
	"encoding/binary"
	"errors"
	"fmt"

	"meteorshower/internal/operator"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// HAU checkpoint blob, version 2 (little endian):
//
//	u32 magic 0x4d535632
//	u32 nSections
//	nSections x u32 sectionLen
//	section payloads, concatenated
//
// Section 0 is the runtime section; sections 1..N are the operators'
// snapshots in chain order. An unaligned checkpoint appends one optional
// channel-state section (storage.ChannelSectionMagic) after the operator
// sections, carrying the in-flight tuples logged while ports sealed.
// The runtime section layout (shared with v1):
//
//	u32 nOut;  nOut  x u64 outSeq
//	u32 nIn;   nIn   x u64 lastInSeq
//	nIn x { u32 nSrc; nSrc x { u16 len, src, u64 id } }  per-source IDs
//	u64 localEpoch
//	u32 nRetained; per retained: u32 port, u32 len, tuple bytes
//	u32 nLabels;  nLabels x { u16 len, upstream id }   (v2 only, optional)
//
// The retained tuples are the in-flight tuples "between the incoming and
// the output tokens" (§III-B) that recovery must re-send downstream. The
// trailing label block names each input port's upstream incarnation
// (Edge.From) so restore can match ports by upstream identity when the
// HAU's input geometry changed across a rescale. It exists only inside a
// v2 section (which is length-delimited); the v1 decoder must not look for
// it because v1 runs straight into the operator data.
//
// A version-1 blob has no header: the runtime section is followed directly
// by u32 nOps and length-prefixed operator snapshots. RestoreFrom decodes
// both; the first u32 (magic vs out-port count) tells them apart.

var errShortSnapshot = errors.New("spe: short HAU snapshot")

// appendRuntimeState encodes the HAU's runtime counters and retained
// in-flight tuples (the runtime section) onto buf.
func (h *HAU) appendRuntimeState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.outSeq)))
	for _, s := range h.outSeq {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.lastInSeq)))
	for _, s := range h.lastInSeq {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	for _, m := range h.lastSrcID {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m)))
		for src, id := range m {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(src)))
			buf = append(buf, src...)
			buf = binary.LittleEndian.AppendUint64(buf, id)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, h.localEpoch)
	// pendingOut holds in-flight tuples restored from a snapshot but not yet
	// re-emitted (non-empty only before Start); encoding it alongside the
	// retained list keeps a restore -> snapshot round trip lossless.
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.retained)+len(h.pendingOut)))
	for _, rts := range [][]retainedTuple{h.retained, h.pendingOut} {
		for _, rt := range rts {
			enc := rt.t.Marshal()
			buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.port))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
			buf = append(buf, enc...)
		}
	}
	return buf
}

// appendInLabels encodes the input-port label block. Only v2 writers call
// it: a v1 blob has no room for trailing data in its runtime section.
func (h *HAU) appendInLabels(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.inFrom)))
	for _, from := range h.inFrom {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(from)))
		buf = append(buf, from...)
	}
	return buf
}

// captureState takes the on-loop snapshot: the runtime section is encoded
// into a pooled buffer, and each operator either re-encodes (dirty, or no
// fast path) or contributes its cached section from the previous epoch.
// This is the entire freeze window — flatten, delta and I/O all run on the
// checkpoint writer. A failed operator snapshot aborts the whole capture so
// a torn checkpoint is never saved.
func (h *HAU) captureState() (*stateSnapshot, error) {
	snap := &stateSnapshot{sections: make([]*sectionBuf, 0, len(h.cfg.Ops)+1)}
	rt := getSection()
	rt.b = h.appendInLabels(h.appendRuntimeState(rt.b))
	snap.dirty += int64(len(rt.b))
	snap.sections = append(snap.sections, rt)
	for i, op := range h.cfg.Ops {
		sec, changed, err := h.captureOp(i, op)
		if err != nil {
			snap.release()
			return nil, err
		}
		if changed {
			snap.dirty += int64(len(sec.b))
		}
		snap.sections = append(snap.sections, sec)
	}
	return snap, nil
}

// captureOp encodes one operator's section. Incremental operators that
// report no change since their previous capture contribute the cached
// section; dirty ones encode into a fresh pooled buffer, which becomes the
// new cache entry (the old entry keeps serving any checkpoint still
// holding a reference to it).
func (h *HAU) captureOp(i int, op operator.Operator) (*sectionBuf, bool, error) {
	if inc, ok := op.(operator.IncrementalSnapshotter); ok {
		fresh := getSection()
		b, changed, err := inc.AppendSnapshot(fresh.b)
		if err != nil {
			fresh.release()
			return nil, false, fmt.Errorf("spe: snapshot of %s: %w", op.Name(), err)
		}
		fresh.b = b
		if cached := h.opSecs[i]; !changed && cached != nil {
			fresh.release()
			cached.retain()
			return cached, false, nil
		}
		if cached := h.opSecs[i]; cached != nil {
			cached.release()
		}
		fresh.retain() // the cache's reference
		h.opSecs[i] = fresh
		return fresh, true, nil
	}
	snap, err := op.Snapshot()
	if err != nil {
		return nil, false, fmt.Errorf("spe: snapshot of %s: %w", op.Name(), err)
	}
	return newSection(snap), true, nil
}

// encodeState captures and flattens the HAU state into one contiguous v2
// blob — the synchronous path used by migration drains and SnapshotNow.
func (h *HAU) encodeState() ([]byte, error) {
	snap, err := h.captureState()
	if err != nil {
		return nil, err
	}
	blob := snap.flatten()
	snap.release()
	return blob, nil
}

// RestoreFrom rebuilds the HAU from a checkpoint blob (either layout
// version). Must be called before Start. Retained in-flight tuples are
// queued for re-emission when the loop starts.
func (h *HAU) RestoreFrom(blob []byte) error {
	r := reader{buf: blob}
	first, err := r.u32()
	if err != nil {
		return err
	}
	if first != snapshotMagic {
		return h.restoreV1(blob)
	}
	nSec, err := r.u32()
	if err != nil {
		return err
	}
	// len(Ops)+1 sections is the plain layout; an unaligned checkpoint
	// appends one channel-state section after the operator sections,
	// giving len(Ops)+2. Whether the extra section really is channel state
	// is checked by its magic below.
	hasChannel := int(nSec) == len(h.cfg.Ops)+2
	if int(nSec) != len(h.cfg.Ops)+1 && !hasChannel {
		return fmt.Errorf("spe: snapshot has %d sections, HAU wants %d", nSec, len(h.cfg.Ops)+1)
	}
	lens := make([]int, nSec)
	total := 0
	for i := range lens {
		n, err := r.u32()
		if err != nil {
			return err
		}
		lens[i] = int(n)
		total += int(n)
	}
	if total != len(r.buf) {
		return fmt.Errorf("%w: section table wants %d payload bytes, have %d", errShortSnapshot, total, len(r.buf))
	}
	rt := reader{buf: r.buf[:lens[0]]}
	if err := h.restoreRuntime(&rt, true); err != nil {
		return err
	}
	if len(rt.buf) != 0 {
		return fmt.Errorf("spe: %d trailing bytes in runtime section", len(rt.buf))
	}
	off := lens[0]
	for i, op := range h.cfg.Ops {
		sec := r.buf[off : off+lens[i+1]]
		off += lens[i+1]
		if len(sec) == 0 {
			sec = nil
		}
		if err := op.Restore(sec); err != nil {
			return fmt.Errorf("spe: restore of %s: %w", op.Name(), err)
		}
	}
	if hasChannel {
		sec := r.buf[off : off+lens[nSec-1]]
		if !storage.IsChannelSection(sec) {
			return fmt.Errorf("spe: snapshot has %d sections but the extra one is not channel state", nSec)
		}
		if err := h.restoreChannelState(sec); err != nil {
			return err
		}
	}
	return nil
}

// restoreChannelState decodes an unaligned checkpoint's channel-state
// section and queues the logged tuples for replay through the input path
// when the loop starts. Streams are matched to input ports by upstream
// label, consuming one port per stream so duplicate labels pair up in
// order.
func (h *HAU) restoreChannelState(sec []byte) error {
	streams, err := storage.DecodeChannelSection(sec)
	if err != nil {
		return fmt.Errorf("spe: %s channel state: %w", h.cfg.ID, err)
	}
	h.chanReplay = h.chanReplay[:0]
	used := make([]bool, len(h.inFrom))
	for _, s := range streams {
		port := -1
		for i, f := range h.inFrom {
			if !used[i] && f == s.Label {
				port = i
				break
			}
		}
		if port < 0 {
			return fmt.Errorf("spe: %s channel state for unknown upstream %q", h.cfg.ID, s.Label)
		}
		used[port] = true
		ts, err := tuple.UnmarshalMany(s.Payload)
		if err != nil {
			return fmt.Errorf("spe: %s channel state for %q: %w", h.cfg.ID, s.Label, err)
		}
		if len(ts) != s.Count {
			return fmt.Errorf("spe: %s channel state for %q: %d tuples, header says %d", h.cfg.ID, s.Label, len(ts), s.Count)
		}
		h.chanReplay = append(h.chanReplay, chanReplayStream{port: port, ts: ts})
	}
	return nil
}

// restoreV1 decodes the headerless version-1 layout: runtime section, then
// u32 nOps and length-prefixed operator snapshots.
func (h *HAU) restoreV1(blob []byte) error {
	r := reader{buf: blob}
	if err := h.restoreRuntime(&r, false); err != nil {
		return err
	}
	nOps, err := r.u32()
	if err != nil {
		return err
	}
	if int(nOps) != len(h.cfg.Ops) {
		return fmt.Errorf("spe: snapshot has %d ops, HAU has %d", nOps, len(h.cfg.Ops))
	}
	for _, op := range h.cfg.Ops {
		snap, err := r.bytes()
		if err != nil {
			return err
		}
		if len(snap) == 0 {
			snap = nil
		}
		if err := op.Restore(snap); err != nil {
			return fmt.Errorf("spe: restore of %s: %w", op.Name(), err)
		}
	}
	return nil
}

// restoreRuntime decodes the runtime section from r. labeled marks a v2
// section, which may end with an input-port label block; when it does and
// the blob's input geometry differs from the HAU's, ports are matched by
// upstream label instead of position — a replica restoring a carved blob
// has fresh input edges the base never had, and vice versa after a merge.
func (h *HAU) restoreRuntime(r *reader, labeled bool) error {
	nOut, err := r.u32()
	if err != nil {
		return err
	}
	if int(nOut) != len(h.outSeq) {
		return fmt.Errorf("spe: snapshot has %d out ports, HAU has %d", nOut, len(h.outSeq))
	}
	for i := range h.outSeq {
		if h.outSeq[i], err = r.u64(); err != nil {
			return err
		}
	}
	nIn, err := r.u32()
	if err != nil {
		return err
	}
	inSeq := make([]uint64, nIn)
	for i := range inSeq {
		if inSeq[i], err = r.u64(); err != nil {
			return err
		}
	}
	srcIDs := make([]map[string]uint64, nIn)
	for i := range srcIDs {
		nSrc, err := r.u32()
		if err != nil {
			return err
		}
		srcIDs[i] = make(map[string]uint64, nSrc)
		for j := uint32(0); j < nSrc; j++ {
			src, err := r.str16()
			if err != nil {
				return err
			}
			id, err := r.u64()
			if err != nil {
				return err
			}
			srcIDs[i][src] = id
		}
	}
	if h.localEpoch, err = r.u64(); err != nil {
		return err
	}
	nRet, err := r.u32()
	if err != nil {
		return err
	}
	h.pendingOut = h.pendingOut[:0]
	for i := uint32(0); i < nRet; i++ {
		port, err := r.u32()
		if err != nil {
			return err
		}
		enc, err := r.bytes()
		if err != nil {
			return err
		}
		t, _, err := tuple.Unmarshal(enc)
		if err != nil {
			return fmt.Errorf("spe: retained tuple %d: %w", i, err)
		}
		h.pendingOut = append(h.pendingOut, retainedTuple{port: int(port), t: t})
	}
	var labels []string
	labelsPresent := false
	if labeled && len(r.buf) > 0 {
		nLab, err := r.u32()
		if err != nil {
			return err
		}
		if nLab != nIn {
			return fmt.Errorf("spe: snapshot has %d in-port labels for %d in ports", nLab, nIn)
		}
		labels = make([]string, nLab)
		for i := range labels {
			if labels[i], err = r.str16(); err != nil {
				return err
			}
		}
		labelsPresent = true
	}
	byLabel := make(map[string]int, len(labels))
	for i, l := range labels {
		byLabel[l] = i
	}
	allFound := true
	for _, f := range h.inFrom {
		if _, ok := byLabel[f]; !ok {
			allFound = false
			break
		}
	}
	useLabels := labelsPresent && (int(nIn) != len(h.lastInSeq) || allFound)
	if !useLabels {
		if int(nIn) != len(h.lastInSeq) {
			return fmt.Errorf("spe: snapshot has %d in ports, HAU has %d", nIn, len(h.lastInSeq))
		}
		copy(h.lastInSeq, inSeq)
		copy(h.lastSrcID, srcIDs)
		return nil
	}
	for i, f := range h.inFrom {
		if j, ok := byLabel[f]; ok {
			h.lastInSeq[i] = inSeq[j]
			h.lastSrcID[i] = srcIDs[j]
		} else {
			// A fresh edge the blob never saw: sequence numbers restart.
			h.lastInSeq[i] = 0
			h.lastSrcID[i] = make(map[string]uint64)
		}
	}
	return nil
}

// SplitBlob splits a v2 checkpoint blob into its runtime section and
// per-operator sections, aliasing the blob's backing array. The cluster's
// rescale path carves and re-assembles blobs at this level without knowing
// any section's internal layout.
func SplitBlob(blob []byte) (runtime []byte, ops [][]byte, err error) {
	r := reader{buf: blob}
	magic, err := r.u32()
	if err != nil {
		return nil, nil, err
	}
	if magic != snapshotMagic {
		return nil, nil, errors.New("spe: not a v2 snapshot blob")
	}
	nSec, err := r.u32()
	if err != nil {
		return nil, nil, err
	}
	if nSec == 0 {
		return nil, nil, errors.New("spe: v2 snapshot with no sections")
	}
	lens := make([]int, nSec)
	total := 0
	for i := range lens {
		n, err := r.u32()
		if err != nil {
			return nil, nil, err
		}
		lens[i] = int(n)
		total += int(n)
	}
	if total != len(r.buf) {
		return nil, nil, fmt.Errorf("%w: section table wants %d payload bytes, have %d", errShortSnapshot, total, len(r.buf))
	}
	off := lens[0]
	runtime = r.buf[:off]
	ops = make([][]byte, nSec-1)
	for i := range ops {
		ops[i] = r.buf[off : off+lens[i+1]]
		off += lens[i+1]
	}
	return runtime, ops, nil
}

// BuildBlob assembles a v2 checkpoint blob from a runtime section and
// operator sections — the inverse of SplitBlob.
func BuildBlob(runtime []byte, ops [][]byte) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, snapshotMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ops)+1))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(runtime)))
	for _, op := range ops {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op)))
	}
	buf = append(buf, runtime...)
	for _, op := range ops {
		buf = append(buf, op...)
	}
	return buf
}

// NewRuntimeSection synthesizes a runtime section for a freshly created
// rescale incarnation: nOut zeroed output counters, no inputs (the label
// block is present but empty, so a restore zero-fills whatever input ports
// the new HAU has), the given localEpoch, and no retained tuples.
func NewRuntimeSection(nOut int, localEpoch uint64) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(nOut))
	buf = append(buf, make([]byte, 8*nOut)...)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // nIn
	buf = binary.LittleEndian.AppendUint64(buf, localEpoch)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // nRetained
	buf = binary.LittleEndian.AppendUint32(buf, 0) // nLabels
	return buf
}

// RuntimeEpoch extracts localEpoch from a runtime section.
func RuntimeEpoch(runtime []byte) (uint64, error) {
	r := reader{buf: runtime}
	nOut, err := r.u32()
	if err != nil {
		return 0, err
	}
	for i := uint32(0); i < nOut; i++ {
		if _, err := r.u64(); err != nil {
			return 0, err
		}
	}
	nIn, err := r.u32()
	if err != nil {
		return 0, err
	}
	for i := uint32(0); i < nIn; i++ {
		if _, err := r.u64(); err != nil {
			return 0, err
		}
	}
	for i := uint32(0); i < nIn; i++ {
		nSrc, err := r.u32()
		if err != nil {
			return 0, err
		}
		for j := uint32(0); j < nSrc; j++ {
			if _, err := r.str16(); err != nil {
				return 0, err
			}
			if _, err := r.u64(); err != nil {
				return 0, err
			}
		}
	}
	return r.u64()
}

// SnapshotNow serializes the HAU state outside the protocol — used by
// tests and by recovery verification tooling. Only safe when the HAU loop
// is not running. Returns nil if an operator snapshot fails.
func (h *HAU) SnapshotNow() []byte {
	blob, err := h.encodeState()
	if err != nil {
		h.setErr(err)
		return nil
	}
	return blob
}

type reader struct {
	buf []byte
}

func (r *reader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, errShortSnapshot
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, errShortSnapshot
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *reader) str16() (string, error) {
	if len(r.buf) < 2 {
		return "", errShortSnapshot
	}
	n := int(binary.LittleEndian.Uint16(r.buf))
	r.buf = r.buf[2:]
	if len(r.buf) < n {
		return "", errShortSnapshot
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if len(r.buf) < int(n) {
		return nil, errShortSnapshot
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}
