package storage

import (
	"fmt"
	"sync"
	"time"

	"meteorshower/internal/delta"
)

// Catalog tracks application checkpoints on a Store. An application
// checkpoint for epoch e is complete once every member HAU has saved its
// individual checkpoint for e (paper §III-A: "an application's checkpoint
// contains the individual checkpoints of all HAUs"). Recovery always uses
// the Most Recent *Complete* Checkpoint: a failure can strike mid-epoch, in
// which case the half-written epoch must be ignored.
type Catalog struct {
	store *Store

	mu       sync.Mutex
	members  map[string]bool
	done     map[uint64]map[string]bool
	complete []uint64 // ascending epochs with all members saved
	// deltaBase records, for delta-checkpointed entries, the epoch the
	// delta was computed against: deltaBase[epoch][hau] = base epoch.
	deltaBase map[uint64]map[string]uint64
}

// NewCatalog returns a catalog over store for an application whose HAU ids
// are members.
func NewCatalog(store *Store, members []string) *Catalog {
	m := make(map[string]bool, len(members))
	for _, id := range members {
		m[id] = true
	}
	return &Catalog{
		store:     store,
		members:   m,
		done:      make(map[uint64]map[string]bool),
		deltaBase: make(map[uint64]map[string]uint64),
	}
}

// Store returns the backing store.
func (c *Catalog) Store() *Store { return c.store }

// SetMembers replaces the member set — a rescale changes which incarnations
// an application checkpoint must contain. Epochs already marked complete
// stay complete; in-flight epochs are judged against the new membership, so
// callers must quiesce checkpointing across the change.
func (c *Catalog) SetMembers(members []string) {
	m := make(map[string]bool, len(members))
	for _, id := range members {
		m[id] = true
	}
	c.mu.Lock()
	c.members = m
	c.mu.Unlock()
}

// Members returns the current member ids (unordered).
func (c *Catalog) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.members))
	for id := range c.members {
		out = append(out, id)
	}
	return out
}

func stateKey(epoch uint64, hau string) string {
	return fmt.Sprintf("ckpt/%016d/%s", epoch, hau)
}

// SaveState persists one HAU's individual checkpoint for epoch and records
// progress toward epoch completion. It returns the modelled write duration
// and whether this save completed the application checkpoint. The caller
// keeps ownership of state.
func (c *Catalog) SaveState(epoch uint64, hau string, state []byte) (time.Duration, bool, error) {
	return c.saveState(epoch, hau, state, false)
}

// SaveStateOwned is SaveState with ownership transfer: state is stored
// without a defensive copy and the caller must not mutate it afterwards.
func (c *Catalog) SaveStateOwned(epoch uint64, hau string, state []byte) (time.Duration, bool, error) {
	return c.saveState(epoch, hau, state, true)
}

func (c *Catalog) saveState(epoch uint64, hau string, state []byte, owned bool) (time.Duration, bool, error) {
	c.mu.Lock()
	if !c.members[hau] {
		c.mu.Unlock()
		return 0, false, fmt.Errorf("catalog: unknown HAU %q", hau)
	}
	c.mu.Unlock()

	var d time.Duration
	var err error
	if owned {
		d, err = c.store.PutOwned(stateKey(epoch, hau), state)
	} else {
		d, err = c.store.Put(stateKey(epoch, hau), state)
	}
	if err != nil {
		return d, false, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.done[epoch]
	if set == nil {
		set = make(map[string]bool)
		c.done[epoch] = set
	}
	set[hau] = true
	if len(set) == len(c.members) {
		c.complete = append(c.complete, epoch)
		// Keep ascending order; epochs normally arrive in order but a
		// slow writer can complete an older epoch late.
		for i := len(c.complete) - 1; i > 0 && c.complete[i] < c.complete[i-1]; i-- {
			c.complete[i], c.complete[i-1] = c.complete[i-1], c.complete[i]
		}
		return d, true, nil
	}
	return d, false, nil
}

// SaveStateDelta persists one HAU's checkpoint as a delta against its
// checkpoint for base (delta-checkpointing, paper §V). Progress tracking
// matches SaveState; recovery resolves the chain transparently.
func (c *Catalog) SaveStateDelta(epoch uint64, hau string, diff []byte, base uint64) (time.Duration, bool, error) {
	return c.saveStateDelta(epoch, hau, diff, base, false)
}

// SaveStateDeltaOwned is SaveStateDelta with ownership transfer of diff.
func (c *Catalog) SaveStateDeltaOwned(epoch uint64, hau string, diff []byte, base uint64) (time.Duration, bool, error) {
	return c.saveStateDelta(epoch, hau, diff, base, true)
}

func (c *Catalog) saveStateDelta(epoch uint64, hau string, diff []byte, base uint64, owned bool) (time.Duration, bool, error) {
	c.mu.Lock()
	if !c.members[hau] {
		c.mu.Unlock()
		return 0, false, fmt.Errorf("catalog: unknown HAU %q", hau)
	}
	if c.done[base] == nil || !c.done[base][hau] {
		c.mu.Unlock()
		return 0, false, fmt.Errorf("catalog: delta base epoch %d missing for %q", base, hau)
	}
	m := c.deltaBase[epoch]
	if m == nil {
		m = make(map[string]uint64)
		c.deltaBase[epoch] = m
	}
	m[hau] = base
	c.mu.Unlock()
	return c.saveState(epoch, hau, diff, owned)
}

// LoadState reads one HAU's individual checkpoint for epoch, resolving
// delta chains back to the most recent full save. The returned duration
// accumulates every read in the chain — delta recovery really does cost
// extra reads, which the Fig. 16 ablation measures.
func (c *Catalog) LoadState(epoch uint64, hau string) ([]byte, time.Duration, error) {
	blob, dur, err := c.store.Get(stateKey(epoch, hau))
	if err != nil {
		return nil, dur, err
	}
	c.mu.Lock()
	base, isDelta := c.deltaBase[epoch][hau]
	c.mu.Unlock()
	if !isDelta {
		return blob, dur, nil
	}
	baseBlob, baseDur, err := c.LoadState(base, hau)
	if err != nil {
		return nil, dur + baseDur, fmt.Errorf("catalog: delta base for epoch %d: %w", epoch, err)
	}
	full, err := delta.Apply(baseBlob, blob)
	if err != nil {
		return nil, dur + baseDur, fmt.Errorf("catalog: epoch %d hau %s: %w", epoch, hau, err)
	}
	return full, dur + baseDur, nil
}

// MostRecentComplete returns the highest epoch whose application checkpoint
// is complete, and false if no complete checkpoint exists yet (in which
// case recovery restarts the application from scratch).
func (c *Catalog) MostRecentComplete() (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.complete) == 0 {
		return 0, false
	}
	return c.complete[len(c.complete)-1], true
}

// CompleteEpochs returns every complete epoch, newest first. Recovery
// walks this list when the newest complete checkpoint turns out to be
// unloadable (lost or corrupted blobs) and an older one must serve.
func (c *Catalog) CompleteEpochs() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, len(c.complete))
	for i, e := range c.complete {
		out[len(c.complete)-1-i] = e
	}
	return out
}

// LatestEpochFor returns the highest epoch hau has saved an individual
// checkpoint for. Baseline recovery uses per-HAU latest checkpoints since
// its HAUs checkpoint independently rather than per application epoch.
func (c *Catalog) LatestEpochFor(hau string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best uint64
	found := false
	for e, set := range c.done {
		if set[hau] && (!found || e > best) {
			best = e
			found = true
		}
	}
	return best, found
}

// EpochProgress reports how many members have saved epoch.
func (c *Catalog) EpochProgress(epoch uint64) (saved, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done[epoch]), len(c.members)
}

// GC removes all checkpoint blobs older than keep, freeing simulated
// storage. The epoch `keep` itself, anything newer, and any older epochs
// that a retained delta chain still needs as bases all survive.
func (c *Catalog) GC(keep uint64) {
	c.mu.Lock()
	// Walk delta chains from every retained epoch down to their bases.
	minNeeded := keep
	for e := range c.done {
		if e < keep {
			continue
		}
		cur := e
		for {
			bases, ok := c.deltaBase[cur]
			if !ok || len(bases) == 0 {
				break
			}
			var lowest uint64
			first := true
			for _, b := range bases {
				if first || b < lowest {
					lowest = b
					first = false
				}
			}
			if lowest >= cur {
				break
			}
			cur = lowest
			if cur < minNeeded {
				minNeeded = cur
			}
		}
	}
	keep = minNeeded
	var drop []uint64
	for e := range c.done {
		if e < keep {
			drop = append(drop, e)
		}
	}
	for _, e := range drop {
		delete(c.deltaBase, e)
	}
	for _, e := range drop {
		delete(c.done, e)
	}
	kept := c.complete[:0]
	for _, e := range c.complete {
		if e >= keep {
			kept = append(kept, e)
		}
	}
	c.complete = kept
	members := make([]string, 0, len(c.members))
	for id := range c.members {
		members = append(members, id)
	}
	c.mu.Unlock()

	for _, e := range drop {
		for _, id := range members {
			_ = c.store.Delete(stateKey(e, id))
		}
	}
}
