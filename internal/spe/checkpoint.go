package spe

import (
	"encoding/binary"
	"errors"
	"fmt"

	"meteorshower/internal/tuple"
)

// HAU checkpoint blob layout (little endian):
//
//	u32 nOut;  nOut  x u64 outSeq
//	u32 nIn;   nIn   x u64 lastInSeq
//	nIn x { u32 nSrc; nSrc x { u16 len, src, u64 id } }  per-source IDs
//	u64 localEpoch
//	u32 nRetained; per retained: u32 port, u32 len, tuple bytes
//	u32 nOps;      per op:       u32 len, snapshot bytes
//
// The retained tuples are the in-flight tuples "between the incoming and
// the output tokens" (§III-B) that recovery must re-send downstream.

var errShortSnapshot = errors.New("spe: short HAU snapshot")

// encodeState serializes the HAU's runtime counters, retained in-flight
// tuples, and every operator's snapshot.
func (h *HAU) encodeState() []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.outSeq)))
	for _, s := range h.outSeq {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.lastInSeq)))
	for _, s := range h.lastInSeq {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	for _, m := range h.lastSrcID {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m)))
		for src, id := range m {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(src)))
			buf = append(buf, src...)
			buf = binary.LittleEndian.AppendUint64(buf, id)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, h.localEpoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.retained)))
	for _, rt := range h.retained {
		enc := rt.t.Marshal()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.port))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.cfg.Ops)))
	for _, op := range h.cfg.Ops {
		snap, err := op.Snapshot()
		if err != nil {
			h.setErr(fmt.Errorf("spe: snapshot of %s: %w", op.Name(), err))
			snap = nil
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snap)))
		buf = append(buf, snap...)
	}
	return buf
}

// RestoreFrom rebuilds the HAU from a checkpoint blob. Must be called
// before Start. Retained in-flight tuples are queued for re-emission when
// the loop starts.
func (h *HAU) RestoreFrom(blob []byte) error {
	r := reader{buf: blob}
	nOut, err := r.u32()
	if err != nil {
		return err
	}
	if int(nOut) != len(h.outSeq) {
		return fmt.Errorf("spe: snapshot has %d out ports, HAU has %d", nOut, len(h.outSeq))
	}
	for i := range h.outSeq {
		if h.outSeq[i], err = r.u64(); err != nil {
			return err
		}
	}
	nIn, err := r.u32()
	if err != nil {
		return err
	}
	if int(nIn) != len(h.lastInSeq) {
		return fmt.Errorf("spe: snapshot has %d in ports, HAU has %d", nIn, len(h.lastInSeq))
	}
	for i := range h.lastInSeq {
		if h.lastInSeq[i], err = r.u64(); err != nil {
			return err
		}
	}
	for i := range h.lastSrcID {
		nSrc, err := r.u32()
		if err != nil {
			return err
		}
		h.lastSrcID[i] = make(map[string]uint64, nSrc)
		for j := uint32(0); j < nSrc; j++ {
			src, err := r.str16()
			if err != nil {
				return err
			}
			id, err := r.u64()
			if err != nil {
				return err
			}
			h.lastSrcID[i][src] = id
		}
	}
	if h.localEpoch, err = r.u64(); err != nil {
		return err
	}
	nRet, err := r.u32()
	if err != nil {
		return err
	}
	h.pendingOut = h.pendingOut[:0]
	for i := uint32(0); i < nRet; i++ {
		port, err := r.u32()
		if err != nil {
			return err
		}
		enc, err := r.bytes()
		if err != nil {
			return err
		}
		t, _, err := tuple.Unmarshal(enc)
		if err != nil {
			return fmt.Errorf("spe: retained tuple %d: %w", i, err)
		}
		h.pendingOut = append(h.pendingOut, retainedTuple{port: int(port), t: t})
	}
	nOps, err := r.u32()
	if err != nil {
		return err
	}
	if int(nOps) != len(h.cfg.Ops) {
		return fmt.Errorf("spe: snapshot has %d ops, HAU has %d", nOps, len(h.cfg.Ops))
	}
	for _, op := range h.cfg.Ops {
		snap, err := r.bytes()
		if err != nil {
			return err
		}
		if len(snap) == 0 {
			snap = nil
		}
		if err := op.Restore(snap); err != nil {
			return fmt.Errorf("spe: restore of %s: %w", op.Name(), err)
		}
	}
	return nil
}

// SnapshotNow serializes the HAU state outside the protocol — used by
// tests and by recovery verification tooling. Only safe when the HAU loop
// is not running.
func (h *HAU) SnapshotNow() []byte { return h.encodeState() }

type reader struct {
	buf []byte
}

func (r *reader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, errShortSnapshot
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, errShortSnapshot
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *reader) str16() (string, error) {
	if len(r.buf) < 2 {
		return "", errShortSnapshot
	}
	n := int(binary.LittleEndian.Uint16(r.buf))
	r.buf = r.buf[2:]
	if len(r.buf) < n {
		return "", errShortSnapshot
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if len(r.buf) < int(n) {
		return nil, errShortSnapshot
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}
