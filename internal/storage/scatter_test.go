package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func scatterSpec() DiskSpec {
	return DiskSpec{BandwidthBps: 1 << 20, Latency: time.Millisecond, TimeScale: 0}
}

func TestScatterRoundTrip(t *testing.T) {
	s := NewScatter(4, scatterSpec())
	data := make([]byte, 10_001) // not divisible by 4
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := s.Put("state", data); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get("state")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("scatter round trip mismatch")
	}
}

func TestScatterEmptyAndTiny(t *testing.T) {
	s := NewScatter(8, scatterSpec())
	for _, data := range [][]byte{nil, {1}, {1, 2, 3}} {
		if _, err := s.Put("k", data); err != nil {
			t.Fatal(err)
		}
		got, _, err := s.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("tiny round trip mismatch at %d bytes", len(data))
		}
	}
}

func TestScatterSpreadsBytes(t *testing.T) {
	s := NewScatter(4, scatterSpec())
	data := make([]byte, 40_000)
	s.Put("k", data)
	for i, st := range s.Stores() {
		w := st.Disk().Stats().BytesWritten
		if w < 9_000 || w > 11_000 {
			t.Fatalf("store %d wrote %d bytes, want ~10000", i, w)
		}
	}
}

func TestScatterParallelSpeedup(t *testing.T) {
	// With real sleeping, a scatter write of X bytes over 4 stores takes
	// about a quarter of the single-store time.
	spec := DiskSpec{BandwidthBps: 1 << 20, Latency: 0, TimeScale: 1}
	data := make([]byte, 100<<10) // 100KB at 1MB/s = ~100ms single
	single := NewScatter(1, spec)
	start := time.Now()
	single.Put("k", data)
	singleDur := time.Since(start)

	wide := NewScatter(4, spec)
	start = time.Now()
	wide.Put("k", data)
	wideDur := time.Since(start)
	if wideDur > singleDur*2/3 {
		t.Fatalf("scatter not parallel: 1-wide %v vs 4-wide %v", singleDur, wideDur)
	}
}

func TestScatterGetMissing(t *testing.T) {
	s := NewScatter(2, scatterSpec())
	if _, _, err := s.Get("nope"); err == nil {
		t.Fatal("missing key accepted")
	}
}

func TestScatterDelete(t *testing.T) {
	s := NewScatter(3, scatterSpec())
	s.Put("k", []byte("hello"))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("k"); err == nil {
		t.Fatal("deleted key still readable")
	}
}

func TestScatterWidthClamp(t *testing.T) {
	if NewScatter(0, scatterSpec()).Width() != 1 {
		t.Fatal("zero width not clamped")
	}
}

func TestQuickScatterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScatter(1+rng.Intn(8), scatterSpec())
		data := make([]byte, rng.Intn(5000))
		rng.Read(data)
		if _, err := s.Put("k", data); err != nil {
			return false
		}
		got, _, err := s.Get("k")
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
