package storage

import (
	"encoding/binary"
	"fmt"
)

// Channel-state section (unaligned checkpoints).
//
// An unaligned individual checkpoint appends one extra section to the v2
// blob carrying the tuples that were in flight on not-yet-tokened input
// edges when the HAU snapshotted. The section is self-describing so a
// restore can distinguish it from an operator section:
//
//	u32 magic = 0x4d534348 ("MSCH")
//	u32 nStreams
//	per stream:
//	  str16 label    (upstream HAU id the edge comes from)
//	  u32   count    (number of logged tuples)
//	  u32   len      (payload length in bytes)
//	  payload        (concatenated tuple encodings, tuple.MarshalMany)
//
// The payload bytes are opaque to this package: the SPE owns the tuple
// codec, storage owns the section framing — mirroring how the rest of the
// blob keeps section tables here and section contents above.

// ChannelSectionMagic marks a channel-state section inside a v2 blob.
const ChannelSectionMagic uint32 = 0x4d534348 // "MSCH"

// ChannelStream is one input edge's logged in-flight tuples, identified by
// the upstream HAU the edge comes from.
type ChannelStream struct {
	Label   string // upstream HAU id
	Count   int    // number of tuples in Payload
	Payload []byte // concatenated tuple encodings
}

// IsChannelSection reports whether b begins with the channel-state magic.
func IsChannelSection(b []byte) bool {
	return len(b) >= 4 && binary.LittleEndian.Uint32(b) == ChannelSectionMagic
}

// EncodeChannelSection serializes streams into a channel-state section.
func EncodeChannelSection(streams []ChannelStream) []byte {
	n := 8
	for _, s := range streams {
		n += 2 + len(s.Label) + 8 + len(s.Payload)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, ChannelSectionMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(streams)))
	for _, s := range streams {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Label)))
		out = append(out, s.Label...)
		out = binary.LittleEndian.AppendUint32(out, uint32(s.Count))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Payload)))
		out = append(out, s.Payload...)
	}
	return out
}

// DecodeChannelSection parses a section produced by EncodeChannelSection.
// It rejects anything that does not carry the channel magic — in
// particular v1 blobs and operator sections — with a clear error.
func DecodeChannelSection(b []byte) ([]ChannelStream, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("storage: channel section too short (%d bytes)", len(b))
	}
	if !IsChannelSection(b) {
		return nil, fmt.Errorf("storage: not a channel-state section (magic %#x, want %#x)",
			binary.LittleEndian.Uint32(b), ChannelSectionMagic)
	}
	nStreams := int(binary.LittleEndian.Uint32(b[4:]))
	off := 8
	streams := make([]ChannelStream, 0, nStreams)
	for i := 0; i < nStreams; i++ {
		if len(b) < off+2 {
			return nil, fmt.Errorf("storage: channel stream %d: truncated label length", i)
		}
		ln := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if len(b) < off+ln+8 {
			return nil, fmt.Errorf("storage: channel stream %d: truncated header", i)
		}
		label := string(b[off : off+ln])
		off += ln
		count := int(binary.LittleEndian.Uint32(b[off:]))
		plen := int(binary.LittleEndian.Uint32(b[off+4:]))
		off += 8
		if plen < 0 || len(b) < off+plen {
			return nil, fmt.Errorf("storage: channel stream %d (%q): truncated payload (want %d bytes, have %d)",
				i, label, plen, len(b)-off)
		}
		streams = append(streams, ChannelStream{Label: label, Count: count, Payload: b[off : off+plen]})
		off += plen
	}
	if off != len(b) {
		return nil, fmt.Errorf("storage: channel section has %d trailing bytes", len(b)-off)
	}
	return streams, nil
}
