package svm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// separable builds a linearly separable 2-D set around y = x.
func separable(r *rand.Rand, n int, gap float64) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		a := r.Float64()*10 - 5
		b := r.Float64()*10 - 5
		label := 1.0
		if b < a-gap {
			label = -1
		} else if b < a+gap {
			continue // margin zone: skip
		}
		x = append(x, []float64{a, b})
		y = append(y, label)
	}
	return x, y
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, -1}, Config{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []float64{1, -1}, Config{}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{0}, Config{}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestTrainSeparable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x, y := separable(r, 400, 0.5)
	m, err := Train(x, y, Config{Seed: 2, Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.95 {
		t.Fatalf("training accuracy %.2f < 0.95", acc)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xTrain, yTrain := separable(r, 300, 0.8)
	xTest, yTest := separable(r, 200, 0.8)
	m, err := Train(xTrain, yTrain, Config{Seed: 4, Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(xTest, yTest); acc < 0.9 {
		t.Fatalf("test accuracy %.2f < 0.9", acc)
	}
}

func TestPredictSign(t *testing.T) {
	m := &Model{W: []float64{1, 0}, B: 0}
	if m.Predict([]float64{5, 0}) != 1 || m.Predict([]float64{-5, 0}) != -1 {
		t.Fatal("prediction sign wrong")
	}
}

func TestDeterministicTraining(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x, y := separable(r, 100, 0.5)
	a, _ := Train(x, y, Config{Seed: 9})
	b, _ := Train(x, y, Config{Seed: 9})
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := &Model{W: []float64{1}}
	if m.Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}

// Property: higher regularization never increases ||w||
// (checked in expectation over seeds; allow rare inversions by majority).
func TestQuickRegularizationShrinks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := separable(r, 150, 0.5)
		if len(x) < 20 {
			return true
		}
		weak, err1 := Train(x, y, Config{Lambda: 1e-4, Seed: seed, Epochs: 10})
		strong, err2 := Train(x, y, Config{Lambda: 1e-1, Seed: seed, Epochs: 10})
		if err1 != nil || err2 != nil {
			return false
		}
		return strong.Norm() <= weak.Norm()*1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping all labels flips all predictions on a symmetric model.
func TestQuickLabelSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := separable(r, 120, 0.6)
		if len(x) < 20 {
			return true
		}
		m, err := Train(x, y, Config{Seed: seed, Epochs: 30})
		if err != nil {
			return false
		}
		yFlip := make([]float64, len(y))
		for i := range y {
			yFlip[i] = -y[i]
		}
		mf, err := Train(x, yFlip, Config{Seed: seed, Epochs: 30})
		if err != nil {
			return false
		}
		// Both models should fit their own labels reasonably; the bound is
		// loose because Pegasos on a small random sample is noisy.
		return m.Accuracy(x, y) > 0.75 && mf.Accuracy(x, yFlip) > 0.75
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
