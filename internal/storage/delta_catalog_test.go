package storage

import (
	"bytes"
	"testing"

	"meteorshower/internal/delta"
)

func TestCatalogDeltaChainLoad(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h"})
	full := bytes.Repeat([]byte{1}, 4096)
	if _, _, err := c.SaveState(1, "h", full); err != nil {
		t.Fatal(err)
	}
	v2 := append([]byte(nil), full...)
	v2[100] = 9
	d1 := delta.Diff(full, v2, 256)
	if _, _, err := c.SaveStateDelta(2, "h", d1, 1); err != nil {
		t.Fatal(err)
	}
	v3 := append([]byte(nil), v2...)
	v3[2000] = 7
	d2 := delta.Diff(v2, v3, 256)
	if _, _, err := c.SaveStateDelta(3, "h", d2, 2); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.LoadState(3, "h")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v3) {
		t.Fatal("delta chain did not reconstruct v3")
	}
	got2, _, err := c.LoadState(2, "h")
	if err != nil || !bytes.Equal(got2, v2) {
		t.Fatal("delta chain did not reconstruct v2")
	}
}

func TestCatalogDeltaLoadCostsAccumulate(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h"})
	full := bytes.Repeat([]byte{1}, 8192)
	c.SaveState(1, "h", full)
	v2 := append([]byte(nil), full...)
	v2[0] = 2
	c.SaveStateDelta(2, "h", delta.Diff(full, v2, 1024), 1)
	_, fullDur, err := c.LoadState(1, "h")
	if err != nil {
		t.Fatal(err)
	}
	_, chainDur, err := c.LoadState(2, "h")
	if err != nil {
		t.Fatal(err)
	}
	if chainDur <= fullDur {
		t.Fatalf("chain load (%v) must cost more than a full load (%v)", chainDur, fullDur)
	}
}

func TestCatalogDeltaMissingBase(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h"})
	if _, _, err := c.SaveStateDelta(2, "h", []byte("x"), 1); err == nil {
		t.Fatal("delta without a saved base accepted")
	}
	if _, _, err := c.SaveStateDelta(2, "intruder", []byte("x"), 1); err == nil {
		t.Fatal("unknown HAU accepted")
	}
}

func TestCatalogGCKeepsDeltaBases(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h"})
	full := bytes.Repeat([]byte{5}, 2048)
	c.SaveState(1, "h", full)
	cur := full
	for e := uint64(2); e <= 4; e++ {
		next := append([]byte(nil), cur...)
		next[int(e)*10] = byte(e)
		c.SaveStateDelta(e, "h", delta.Diff(cur, next, 256), e-1)
		cur = next
	}
	// Keep epoch 4: its chain reaches back to the full save at epoch 1,
	// so GC must not collect epochs 1..3.
	c.GC(4)
	got, _, err := c.LoadState(4, "h")
	if err != nil {
		t.Fatalf("chain broken after GC: %v", err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("reconstruction wrong after GC")
	}
}

func TestCatalogGCDropsStaleChains(t *testing.T) {
	c := NewCatalog(NewStore(fastSpec()), []string{"h"})
	c.SaveState(1, "h", []byte("old full"))
	c.SaveState(2, "h", []byte("new full")) // full save: chain break
	c.GC(2)
	if _, _, err := c.LoadState(1, "h"); err == nil {
		t.Fatal("stale full save survived GC")
	}
	if got, _, err := c.LoadState(2, "h"); err != nil || string(got) != "new full" {
		t.Fatalf("kept epoch lost: %q %v", got, err)
	}
}
