package spe

import (
	"encoding/binary"
	"errors"
	"fmt"

	"meteorshower/internal/operator"
	"meteorshower/internal/tuple"
)

// HAU checkpoint blob, version 2 (little endian):
//
//	u32 magic 0x4d535632
//	u32 nSections
//	nSections x u32 sectionLen
//	section payloads, concatenated
//
// Section 0 is the runtime section; sections 1..N are the operators'
// snapshots in chain order. The runtime section layout (shared with v1):
//
//	u32 nOut;  nOut  x u64 outSeq
//	u32 nIn;   nIn   x u64 lastInSeq
//	nIn x { u32 nSrc; nSrc x { u16 len, src, u64 id } }  per-source IDs
//	u64 localEpoch
//	u32 nRetained; per retained: u32 port, u32 len, tuple bytes
//
// The retained tuples are the in-flight tuples "between the incoming and
// the output tokens" (§III-B) that recovery must re-send downstream.
//
// A version-1 blob has no header: the runtime section is followed directly
// by u32 nOps and length-prefixed operator snapshots. RestoreFrom decodes
// both; the first u32 (magic vs out-port count) tells them apart.

var errShortSnapshot = errors.New("spe: short HAU snapshot")

// appendRuntimeState encodes the HAU's runtime counters and retained
// in-flight tuples (the runtime section) onto buf.
func (h *HAU) appendRuntimeState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.outSeq)))
	for _, s := range h.outSeq {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.lastInSeq)))
	for _, s := range h.lastInSeq {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	for _, m := range h.lastSrcID {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m)))
		for src, id := range m {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(src)))
			buf = append(buf, src...)
			buf = binary.LittleEndian.AppendUint64(buf, id)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, h.localEpoch)
	// pendingOut holds in-flight tuples restored from a snapshot but not yet
	// re-emitted (non-empty only before Start); encoding it alongside the
	// retained list keeps a restore -> snapshot round trip lossless.
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(h.retained)+len(h.pendingOut)))
	for _, rts := range [][]retainedTuple{h.retained, h.pendingOut} {
		for _, rt := range rts {
			enc := rt.t.Marshal()
			buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.port))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(enc)))
			buf = append(buf, enc...)
		}
	}
	return buf
}

// captureState takes the on-loop snapshot: the runtime section is encoded
// into a pooled buffer, and each operator either re-encodes (dirty, or no
// fast path) or contributes its cached section from the previous epoch.
// This is the entire freeze window — flatten, delta and I/O all run on the
// checkpoint writer. A failed operator snapshot aborts the whole capture so
// a torn checkpoint is never saved.
func (h *HAU) captureState() (*stateSnapshot, error) {
	snap := &stateSnapshot{sections: make([]*sectionBuf, 0, len(h.cfg.Ops)+1)}
	rt := getSection()
	rt.b = h.appendRuntimeState(rt.b)
	snap.dirty += int64(len(rt.b))
	snap.sections = append(snap.sections, rt)
	for i, op := range h.cfg.Ops {
		sec, changed, err := h.captureOp(i, op)
		if err != nil {
			snap.release()
			return nil, err
		}
		if changed {
			snap.dirty += int64(len(sec.b))
		}
		snap.sections = append(snap.sections, sec)
	}
	return snap, nil
}

// captureOp encodes one operator's section. Incremental operators that
// report no change since their previous capture contribute the cached
// section; dirty ones encode into a fresh pooled buffer, which becomes the
// new cache entry (the old entry keeps serving any checkpoint still
// holding a reference to it).
func (h *HAU) captureOp(i int, op operator.Operator) (*sectionBuf, bool, error) {
	if inc, ok := op.(operator.IncrementalSnapshotter); ok {
		fresh := getSection()
		b, changed, err := inc.AppendSnapshot(fresh.b)
		if err != nil {
			fresh.release()
			return nil, false, fmt.Errorf("spe: snapshot of %s: %w", op.Name(), err)
		}
		fresh.b = b
		if cached := h.opSecs[i]; !changed && cached != nil {
			fresh.release()
			cached.retain()
			return cached, false, nil
		}
		if cached := h.opSecs[i]; cached != nil {
			cached.release()
		}
		fresh.retain() // the cache's reference
		h.opSecs[i] = fresh
		return fresh, true, nil
	}
	snap, err := op.Snapshot()
	if err != nil {
		return nil, false, fmt.Errorf("spe: snapshot of %s: %w", op.Name(), err)
	}
	return newSection(snap), true, nil
}

// encodeState captures and flattens the HAU state into one contiguous v2
// blob — the synchronous path used by migration drains and SnapshotNow.
func (h *HAU) encodeState() ([]byte, error) {
	snap, err := h.captureState()
	if err != nil {
		return nil, err
	}
	blob := snap.flatten()
	snap.release()
	return blob, nil
}

// RestoreFrom rebuilds the HAU from a checkpoint blob (either layout
// version). Must be called before Start. Retained in-flight tuples are
// queued for re-emission when the loop starts.
func (h *HAU) RestoreFrom(blob []byte) error {
	r := reader{buf: blob}
	first, err := r.u32()
	if err != nil {
		return err
	}
	if first != snapshotMagic {
		return h.restoreV1(blob)
	}
	nSec, err := r.u32()
	if err != nil {
		return err
	}
	if int(nSec) != len(h.cfg.Ops)+1 {
		return fmt.Errorf("spe: snapshot has %d sections, HAU wants %d", nSec, len(h.cfg.Ops)+1)
	}
	lens := make([]int, nSec)
	total := 0
	for i := range lens {
		n, err := r.u32()
		if err != nil {
			return err
		}
		lens[i] = int(n)
		total += int(n)
	}
	if total != len(r.buf) {
		return fmt.Errorf("%w: section table wants %d payload bytes, have %d", errShortSnapshot, total, len(r.buf))
	}
	rt := reader{buf: r.buf[:lens[0]]}
	if err := h.restoreRuntime(&rt); err != nil {
		return err
	}
	if len(rt.buf) != 0 {
		return fmt.Errorf("spe: %d trailing bytes in runtime section", len(rt.buf))
	}
	off := lens[0]
	for i, op := range h.cfg.Ops {
		sec := r.buf[off : off+lens[i+1]]
		off += lens[i+1]
		if len(sec) == 0 {
			sec = nil
		}
		if err := op.Restore(sec); err != nil {
			return fmt.Errorf("spe: restore of %s: %w", op.Name(), err)
		}
	}
	return nil
}

// restoreV1 decodes the headerless version-1 layout: runtime section, then
// u32 nOps and length-prefixed operator snapshots.
func (h *HAU) restoreV1(blob []byte) error {
	r := reader{buf: blob}
	if err := h.restoreRuntime(&r); err != nil {
		return err
	}
	nOps, err := r.u32()
	if err != nil {
		return err
	}
	if int(nOps) != len(h.cfg.Ops) {
		return fmt.Errorf("spe: snapshot has %d ops, HAU has %d", nOps, len(h.cfg.Ops))
	}
	for _, op := range h.cfg.Ops {
		snap, err := r.bytes()
		if err != nil {
			return err
		}
		if len(snap) == 0 {
			snap = nil
		}
		if err := op.Restore(snap); err != nil {
			return fmt.Errorf("spe: restore of %s: %w", op.Name(), err)
		}
	}
	return nil
}

// restoreRuntime decodes the runtime section from r.
func (h *HAU) restoreRuntime(r *reader) error {
	nOut, err := r.u32()
	if err != nil {
		return err
	}
	if int(nOut) != len(h.outSeq) {
		return fmt.Errorf("spe: snapshot has %d out ports, HAU has %d", nOut, len(h.outSeq))
	}
	for i := range h.outSeq {
		if h.outSeq[i], err = r.u64(); err != nil {
			return err
		}
	}
	nIn, err := r.u32()
	if err != nil {
		return err
	}
	if int(nIn) != len(h.lastInSeq) {
		return fmt.Errorf("spe: snapshot has %d in ports, HAU has %d", nIn, len(h.lastInSeq))
	}
	for i := range h.lastInSeq {
		if h.lastInSeq[i], err = r.u64(); err != nil {
			return err
		}
	}
	for i := range h.lastSrcID {
		nSrc, err := r.u32()
		if err != nil {
			return err
		}
		h.lastSrcID[i] = make(map[string]uint64, nSrc)
		for j := uint32(0); j < nSrc; j++ {
			src, err := r.str16()
			if err != nil {
				return err
			}
			id, err := r.u64()
			if err != nil {
				return err
			}
			h.lastSrcID[i][src] = id
		}
	}
	if h.localEpoch, err = r.u64(); err != nil {
		return err
	}
	nRet, err := r.u32()
	if err != nil {
		return err
	}
	h.pendingOut = h.pendingOut[:0]
	for i := uint32(0); i < nRet; i++ {
		port, err := r.u32()
		if err != nil {
			return err
		}
		enc, err := r.bytes()
		if err != nil {
			return err
		}
		t, _, err := tuple.Unmarshal(enc)
		if err != nil {
			return fmt.Errorf("spe: retained tuple %d: %w", i, err)
		}
		h.pendingOut = append(h.pendingOut, retainedTuple{port: int(port), t: t})
	}
	return nil
}

// SnapshotNow serializes the HAU state outside the protocol — used by
// tests and by recovery verification tooling. Only safe when the HAU loop
// is not running. Returns nil if an operator snapshot fails.
func (h *HAU) SnapshotNow() []byte {
	blob, err := h.encodeState()
	if err != nil {
		h.setErr(err)
		return nil
	}
	return blob
}

type reader struct {
	buf []byte
}

func (r *reader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, errShortSnapshot
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, errShortSnapshot
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *reader) str16() (string, error) {
	if len(r.buf) < 2 {
		return "", errShortSnapshot
	}
	n := int(binary.LittleEndian.Uint16(r.buf))
	r.buf = r.buf[2:]
	if len(r.buf) < n {
		return "", errShortSnapshot
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if len(r.buf) < int(n) {
		return nil, errShortSnapshot
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}
