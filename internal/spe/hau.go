package spe

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"meteorshower/internal/buffer"
	"meteorshower/internal/delta"
	"meteorshower/internal/operator"
	"meteorshower/internal/statesize"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// DefaultEdgeBuffer is the per-stream capacity in tuples. A bounded edge
// is the in-flight window of the simulated TCP connection: full edge =
// backpressure on the sender.
const DefaultEdgeBuffer = 512

// DefaultBatchSize is how many tuples a sender accumulates before one
// channel send. Tokens and tick deadlines force earlier flushes, so
// batching trades at most one tick of latency for an order of magnitude
// fewer channel operations.
const DefaultBatchSize = 32

// Edge is a stream between two HAUs. Tuples cross it in micro-batches:
// the sending HAU appends to a pending batch and flushes it on batch-full,
// on its tick deadline, when its input side goes idle, or immediately when
// a token is emitted. The channel carries batch containers; per-edge FIFO
// order is the append order.
//
// Append/Flush/DropPending are owned by the sending HAU's loop. Inject and
// Recv are safe for concurrent use (tests and external producers).
type Edge struct {
	From, To string
	C        chan *tuple.Batch

	batch    int // max tuples per batch
	tupleCap int // logical capacity in tuples

	pending *tuple.Batch // sender-side accumulation
	queued  atomic.Int64 // tuples sent and not yet received
}

// NewEdge returns an edge with the given buffer capacity in tuples
// (0 = default) and the default batch size.
func NewEdge(from, to string, buf int) *Edge {
	return NewEdgeBatch(from, to, buf, 0)
}

// NewEdgeBatch returns an edge with explicit buffer capacity and batch
// size (0 = defaults). The batch size is clamped to the buffer capacity,
// and the channel holds ceil(buf/batch) batch slots so a full channel of
// full batches matches the configured tuple capacity.
func NewEdgeBatch(from, to string, buf, batch int) *Edge {
	if buf <= 0 {
		buf = DefaultEdgeBuffer
	}
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > buf {
		batch = buf
	}
	slots := (buf + batch - 1) / batch
	return &Edge{
		From: from, To: to,
		C:        make(chan *tuple.Batch, slots),
		batch:    batch,
		tupleCap: buf,
	}
}

// Cap returns the edge's logical capacity in tuples.
func (e *Edge) Cap() int { return e.tupleCap }

// BatchSize returns the sender's batch size in tuples.
func (e *Edge) BatchSize() int { return e.batch }

// Append adds t to the pending batch without sending. Sender-loop only.
func (e *Edge) Append(t *tuple.Tuple) {
	if e.pending == nil {
		e.pending = tuple.GetBatch()
	}
	e.pending.Tuples = append(e.pending.Tuples, t)
}

// Full reports whether the pending batch reached the batch size.
func (e *Edge) Full() bool {
	return e.pending != nil && len(e.pending.Tuples) >= e.batch
}

// PendingLen returns how many tuples are accumulated but not yet sent.
func (e *Edge) PendingLen() int {
	if e.pending == nil {
		return 0
	}
	return len(e.pending.Tuples)
}

// Flush sends the pending batch. Returns false only if ctx died while the
// channel was full; the batch stays pending in that case.
func (e *Edge) Flush(ctx context.Context) bool {
	if e.pending == nil || len(e.pending.Tuples) == 0 {
		return true
	}
	b := e.pending
	// Count before the send: the channel transfers batch ownership, so the
	// receiver may recycle b the moment the send completes.
	n := int64(len(b.Tuples))
	if ctx == nil {
		e.pending = nil
		e.queued.Add(n)
		e.C <- b
		return true
	}
	select {
	case e.C <- b:
		e.pending = nil
		e.queued.Add(n)
		return true
	case <-ctx.Done():
		return false
	}
}

// DropPending abandons the pending batch (edge swap-out: the tuples are
// already preserved and will be covered by replay).
func (e *Edge) DropPending() {
	if e.pending != nil {
		tuple.PutBatch(e.pending)
		e.pending = nil
	}
}

// Inject sends ts as one batch, bypassing the pending accumulation. Safe
// for concurrent use; tests and external producers feed edges with it.
// A nil ctx blocks until the send completes.
func (e *Edge) Inject(ctx context.Context, ts ...*tuple.Tuple) bool {
	b := tuple.BatchOf(ts...)
	if ctx == nil {
		e.queued.Add(int64(len(ts)))
		e.C <- b
		return true
	}
	select {
	case e.C <- b:
		e.queued.Add(int64(len(ts)))
		return true
	case <-ctx.Done():
		tuple.PutBatch(b)
		return false
	}
}

// Recv pops one batch, keeping the occupancy count accurate. Returns
// (nil, false) when the edge is closed or ctx died. Receivers that read
// e.C directly instead must not rely on Queued.
func (e *Edge) Recv(ctx context.Context) (*tuple.Batch, bool) {
	if ctx == nil {
		b, ok := <-e.C
		if ok {
			e.queued.Add(-int64(len(b.Tuples)))
		}
		return b, ok
	}
	select {
	case b, ok := <-e.C:
		if ok {
			e.queued.Add(-int64(len(b.Tuples)))
		}
		return b, ok
	case <-ctx.Done():
		return nil, false
	}
}

// Close ends the stream: the receiver's forwarder drains the remaining
// batches and then treats the edge as a permanent upstream hangup (the
// port counts as aligned forever). Sender-side only, after the final
// Flush; no Append/Flush/Inject may follow.
func (e *Edge) Close() { close(e.C) }

// Queued returns the number of tuples sent on the edge and not yet
// received — the channel occupancy in tuples.
func (e *Edge) Queued() int { return int(e.queued.Load()) }

// Occupancy returns queued plus pending tuples: everything emitted on
// this edge that the receiver has not picked up. Load shedding compares
// it against the watermark.
func (e *Edge) Occupancy() int { return e.Queued() + e.PendingLen() }

// OutPort is one logical output port: one edge per downstream replica plus
// the key router choosing among them. A nil Router means the port has a
// single edge (Edges[0]) — the common un-split case.
type OutPort struct {
	Edges  []*Edge
	Router KeyRouter
}

// flattenPorts lays the ports' edges out port-major and returns the flat
// list plus each port's base physical index.
func flattenPorts(out []OutPort) ([]*Edge, []int) {
	var phys []*Edge
	base := make([]int, len(out))
	for p, op := range out {
		base[p] = len(phys)
		phys = append(phys, op.Edges...)
	}
	return phys, base
}

// Config assembles one HAU. The cluster layer builds these; tests build
// them directly.
type Config struct {
	ID     string
	Scheme Scheme
	// Ops is the operator chain: Ops[0] receives the HAU's inputs, each
	// operator's emissions feed the next, and the last operator's output
	// ports map to Out edges. In the paper's evaluation every HAU holds
	// exactly one operator.
	Ops []operator.Operator
	In  []*Edge
	Out []*Edge

	// OutPorts is the routed alternative to Out: when non-nil it wins, and
	// each logical port may fan over several edges (one per downstream
	// replica) chosen by the port's key router. Out is the shorthand for
	// all-single-edge ports.
	OutPorts []OutPort
	// InLogical maps each physical input port (index into In) to the
	// logical port number passed to Ops[0].OnTuple — several physical ports
	// collapse onto one logical port when the upstream is split into
	// replicas. nil means identity.
	InLogical []int

	Catalog   *storage.Catalog  // individual checkpoint destination
	SourceLog *buffer.SourceLog // source preservation (MS schemes, source HAUs)
	Preserver *buffer.Preserver // input preservation (baseline, all HAUs)
	// AckUpstream delivers a checkpoint ack for input port inPort
	// covering sequences <= seq (baseline). Wired by the cluster.
	AckUpstream func(inPort int, seq uint64)

	Listener Listener

	TickEvery  time.Duration // operator tick / source generation period
	CkptPeriod time.Duration // baseline: self-checkpoint period (0 = off)
	CkptPhase  time.Duration // baseline: random phase of first checkpoint

	// PerTupleDelay models per-tuple CPU cost beyond the operators' real
	// work. Zero for most tests.
	PerTupleDelay time.Duration
	// CPU, when set, is the hosting node's shared compute gate: instead of
	// sleeping PerTupleDelay independently, the HAU charges it against the
	// node's virtual busy clock, so co-located HAUs contend for capacity
	// and the node's utilization becomes observable. Charges are amortized
	// into >=cpuChargeChunk debts to stay off the per-tuple fast path.
	CPU *CPUGate

	// DeltaCheckpoint enables delta-checkpointing (paper §V): checkpoints
	// write only the blocks changed since the previous epoch, with a full
	// snapshot every DeltaFullEvery epochs.
	DeltaCheckpoint bool
	DeltaFullEvery  int // 0 = default 4

	// ShedWatermark enables load shedding (paper §III: long-term overload
	// "require[s] load shedding"): when an output edge is fuller than
	// this fraction of its capacity, new data tuples for it are dropped
	// instead of blocking the operator. 0 disables shedding.
	ShedWatermark float64

	// Standby starts the HAU as a suppressed active standby: it executes
	// the operator chain and stamps output sequence numbers, but writes
	// nothing to its output edges (which are shared with the live primary)
	// until CmdPromote. Stamped tuples are kept in a bounded per-edge
	// suppression ring so a promotion can re-emit whatever the dead
	// primary may not have delivered; downstream dedup drops the overlap.
	// It acks checkpoint tokens but never writes blobs and never
	// broadcasts tokens while suppressed.
	Standby bool
	// StandbyRing caps each output edge's suppression ring in tuples
	// (0 = 4x the edge's capacity+batch — comfortably more than the
	// primary can have stamped but not yet delivered).
	StandbyRing int

	Now func() int64 // clock; defaults to wall time
}

type retainedTuple struct {
	port int
	t    *tuple.Tuple
}

// chanReplayStream is one restored port's logged channel tuples.
type chanReplayStream struct {
	port int
	ts   []*tuple.Tuple
}

// inItem is one delivery on the merged input channel: a batch from one
// input edge, a seal handoff from a forwarder's unaligned-capture drain,
// or (both nil) a marker that the edge closed.
type inItem struct {
	port  int
	batch *tuple.Batch
	seal  *portSeal
}

// portSeal is a forwarder's capture handoff: the data tuples it overtook
// on its edge between entering drain mode and finding the capture token.
// It travels on the merged channel, so FIFO order guarantees the loop has
// already seen (and logged) every tuple the forwarder sent before the
// drain began.
type portSeal struct {
	epoch uint64
	log   []*tuple.Tuple
}

// portGate pauses one input edge's forwarder during token alignment, so
// an aligning port exerts backpressure on exactly that edge while the
// other inputs keep flowing. For unaligned checkpoints it is never
// paused; instead it carries the capture arming state that switches the
// forwarder into drain mode.
type portGate struct {
	mu     sync.Mutex
	paused bool
	resume chan struct{}

	// Unaligned-capture arming: non-zero capEpoch tells the forwarder to
	// enter drain mode for that epoch; capCancel is closed when the port
	// seals (or the capture aborts) so a drain waiting for a token that
	// already passed in-band exits immediately.
	capEpoch  uint64
	capCancel chan struct{}
}

// arm switches the gate into unaligned-capture mode for epoch.
func (g *portGate) arm(epoch uint64) {
	g.mu.Lock()
	if g.capCancel != nil {
		close(g.capCancel)
	}
	g.capEpoch = epoch
	g.capCancel = make(chan struct{})
	g.mu.Unlock()
}

// disarm ends capture mode, waking any forwarder drain. Idempotent.
func (g *portGate) disarm() {
	g.mu.Lock()
	if g.capCancel != nil {
		close(g.capCancel)
		g.capCancel = nil
	}
	g.capEpoch = 0
	g.mu.Unlock()
}

// capture returns the current arming state.
func (g *portGate) capture() (uint64, chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.capEpoch, g.capCancel
}

func (g *portGate) pause() {
	g.mu.Lock()
	if !g.paused {
		g.paused = true
		g.resume = make(chan struct{})
	}
	g.mu.Unlock()
}

func (g *portGate) unpause() {
	g.mu.Lock()
	if g.paused {
		g.paused = false
		close(g.resume)
	}
	g.mu.Unlock()
}

// wait blocks while the gate is paused. Returns false if ctx died.
func (g *portGate) wait(ctx context.Context) bool {
	for {
		g.mu.Lock()
		if !g.paused {
			g.mu.Unlock()
			return true
		}
		ch := g.resume
		g.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return false
		}
	}
}

// HAU is a running High Availability Unit: "the smallest unit of work that
// can be checkpointed and recovered independently".
type HAU struct {
	cfg Config
	src operator.Source // cfg.Ops[0] if it is a source
	ctx context.Context // loop context, set by run

	ctrl   chan Command
	merged chan inItem // fan-in of all input edges
	gates  []*portGate

	// Output geometry. out holds the logical ports; physOut flattens their
	// edges port-major, and outBase[p] is the physical index of out[p]'s
	// first edge. All per-edge state (outSeq, presPending, retained ports)
	// is indexed by physical edge.
	out     []OutPort
	physOut []*Edge
	outBase []int

	// Active-standby replication. mirror holds, per physical out edge, the
	// standby's tee edge (nil = port not teed): stamped tuples and tokens
	// are copied there carrying the main edge's sequence numbers. rings
	// holds, on a suppressed standby, the bounded per-edge FIFO of stamped
	// tuples awaiting a possible promotion. standbyFlag is read by the
	// hot path and by the cluster/tests, written only by the loop
	// (construction and CmdPromote).
	mirror      []*Edge
	rings       [][]*tuple.Tuple
	standbyFlag atomic.Bool
	mirrorBytes atomic.Int64
	ringCount   atomic.Int64

	// Input geometry. in/inFrom/inLogical grow when a rescale attaches new
	// ports (CmdAddInPort); physical indexes of existing ports never change,
	// closed ports just stay inert. inFrom labels each port with its
	// upstream incarnation id (Edge.From) — checkpoints record the labels so
	// restore can match ports across geometry changes.
	in        []*Edge
	inFrom    []string
	inLogical []int
	attachQ   []Command // CmdAddInPort waiting for AfterFrom ports to close

	// Loop-owned state (no locks needed).
	cpuDebt     time.Duration // accumulated service time not yet charged to cfg.CPU
	outSeq      []uint64
	lastInSeq   []uint64
	lastSrcID   []map[string]uint64 // per in port: per-source high-water ID
	aligned     []bool
	closed      []bool           // input edge hung up; counts as aligned
	parked      [][]*tuple.Batch // per port: batches held during alignment
	presPending [][]*tuple.Tuple // per physical out edge: retained copies awaiting preservation
	awaiting    bool
	pendingEp   uint64
	doneEpoch   uint64 // highest token epoch already checkpointed
	alignStart  int64
	retaining   bool
	retained    []retainedTuple
	nextCkpt    int64
	localEpoch  uint64
	reportAll   bool
	alert       bool
	tracker     statesize.Tracker
	lastPeak    int64
	emitters    []operator.Emitter
	pendingOut  []retainedTuple // in-flight tuples restored from a snapshot
	srcReplay   []*tuple.Tuple  // preserved source tuples to re-send first

	// Unaligned-capture state (MSSrcAPU), loop-owned. While armed, the
	// operator snapshot for ucapEpoch is already taken (ucapSnap) and the
	// loop is collecting in-flight channel tuples on not-yet-sealed ports
	// into ucapLog; data batches are parked until the capture finalizes.
	ucapArmed     bool
	ucapEpoch     uint64
	ucapStart     int64
	ucapSerialize time.Duration
	ucapSnap      *stateSnapshot
	ucapSealed    []bool
	ucapLog       *buffer.ChannelCapture

	// pausedAt records, per input port, when alignment paused its
	// forwarder — the per-port alignment stall reported in the breakdown.
	pausedAt []int64

	// chanReplay holds channel tuples decoded from an unaligned
	// checkpoint's channel-state section, replayed through the input path
	// before normal processing resumes.
	chanReplay []chanReplayStream

	// Live-migration drain state: armed by CmdMigrateSnap, completed when
	// every input has delivered its migration token (or closed). migStay
	// (CmdStandbySnap) hands the blob over and keeps running instead of
	// exiting — the clone-a-live-primary path.
	migArmed bool
	migStay  bool
	migSeen  []bool
	migReply chan<- []byte

	// opSecs caches each operator's most recent encoded section so clean
	// incremental operators cost one pointer per epoch. Loop-owned.
	opSecs []*sectionBuf

	// Checkpoint writer: one FIFO goroutine per HAU flattens snapshots,
	// computes deltas, and writes to the catalog, keeping everything but the
	// raw capture off the processing loop. The FIFO also guarantees a delta's
	// base epoch is durable before the delta save referencing it. Launched
	// lazily by the first async checkpoint; wstate is owned by the writer for
	// async schemes and by the loop for synchronous ones.
	ckptCh     chan ckptJob
	writerDone chan struct{}
	wstate     ckptWriterState

	cachedSize atomic.Int64
	processed  atomic.Uint64
	shed       atomic.Uint64
	writerWG   sync.WaitGroup

	startOnce sync.Once
	done      chan struct{}
	failed    atomic.Bool
	errMu     sync.Mutex
	err       error
}

// New validates cfg and returns a ready-to-start HAU.
func New(cfg Config) (*HAU, error) {
	if cfg.ID == "" {
		return nil, errors.New("spe: empty HAU id")
	}
	if len(cfg.Ops) == 0 {
		return nil, fmt.Errorf("spe: HAU %s has no operators", cfg.ID)
	}
	if cfg.Listener == nil {
		cfg.Listener = NopListener{}
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 2 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	// Logical output ports: OutPorts wins; Out is all-single-edge shorthand.
	out := cfg.OutPorts
	if out == nil {
		out = make([]OutPort, len(cfg.Out))
		for i, e := range cfg.Out {
			out[i] = OutPort{Edges: []*Edge{e}}
		}
	}
	physOut, outBase := flattenPorts(out)
	inLogical := cfg.InLogical
	if inLogical == nil {
		inLogical = make([]int, len(cfg.In))
		for i := range inLogical {
			inLogical[i] = i
		}
	} else if len(inLogical) != len(cfg.In) {
		return nil, fmt.Errorf("spe: HAU %s has %d in edges but %d logical mappings", cfg.ID, len(cfg.In), len(inLogical))
	}
	if cfg.Standby && !cfg.Scheme.OneHopTokens() {
		return nil, fmt.Errorf("spe: standby HAU %s requires a 1-hop token scheme, got %s", cfg.ID, cfg.Scheme)
	}
	h := &HAU{
		cfg:         cfg,
		ctrl:        make(chan Command, 64),
		opSecs:      make([]*sectionBuf, len(cfg.Ops)),
		out:         out,
		physOut:     physOut,
		outBase:     outBase,
		mirror:      make([]*Edge, len(physOut)),
		rings:       make([][]*tuple.Tuple, len(physOut)),
		in:          append([]*Edge(nil), cfg.In...),
		inLogical:   append([]int(nil), inLogical...),
		outSeq:      make([]uint64, len(physOut)),
		lastInSeq:   make([]uint64, len(cfg.In)),
		lastSrcID:   make([]map[string]uint64, len(cfg.In)),
		aligned:     make([]bool, len(cfg.In)),
		closed:      make([]bool, len(cfg.In)),
		pausedAt:    make([]int64, len(cfg.In)),
		migSeen:     make([]bool, len(cfg.In)),
		parked:      make([][]*tuple.Batch, len(cfg.In)),
		presPending: make([][]*tuple.Tuple, len(physOut)),
		gates:       make([]*portGate, len(cfg.In)),
		done:        make(chan struct{}),
	}
	h.inFrom = make([]string, len(h.in))
	for i, e := range h.in {
		h.inFrom[i] = e.From
	}
	for i := range h.lastSrcID {
		h.lastSrcID[i] = make(map[string]uint64)
		h.gates[i] = &portGate{}
	}
	// Always allocated: a rescale can attach input ports to an HAU later.
	h.merged = make(chan inItem, 2*len(cfg.In)+4)
	if s, ok := cfg.Ops[0].(operator.Source); ok {
		h.src = s
		if len(cfg.In) > 0 {
			return nil, fmt.Errorf("spe: source HAU %s must not have inputs", cfg.ID)
		}
		if cfg.Standby {
			return nil, fmt.Errorf("spe: source HAU %s cannot run as a standby", cfg.ID)
		}
	}
	h.standbyFlag.Store(cfg.Standby)
	h.emitters = make([]operator.Emitter, len(cfg.Ops))
	for i := range cfg.Ops {
		i := i
		if i == len(cfg.Ops)-1 {
			h.emitters[i] = func(port int, t *tuple.Tuple) { h.deliverOut(port, t) }
		} else {
			h.emitters[i] = func(port int, t *tuple.Tuple) {
				if err := h.cfg.Ops[i+1].OnTuple(port, t, h.emitters[i+1]); err != nil {
					h.setErr(err)
				}
			}
		}
	}
	return h, nil
}

// ID returns the HAU id.
func (h *HAU) ID() string { return h.cfg.ID }

// Scheme returns the configured fault-tolerance scheme.
func (h *HAU) Scheme() Scheme { return h.cfg.Scheme }

// IsSource reports whether this HAU hosts a source operator.
func (h *HAU) IsSource() bool { return h.src != nil }

// Ops exposes the operator chain (read-only use).
func (h *HAU) Ops() []operator.Operator { return h.cfg.Ops }

// Command enqueues a controller command. Blocks only if the command queue
// is saturated.
func (h *HAU) Command(cmd Command) {
	select {
	case h.ctrl <- cmd:
	case <-h.done:
	}
}

// CachedStateSize returns the last sampled state size — the controller's
// size query (§III-C3) reads this without disturbing the HAU loop.
func (h *HAU) CachedStateSize() int64 { return h.cachedSize.Load() }

// Standby reports whether the HAU is currently a suppressed standby.
// Flips to false when CmdPromote is processed.
func (h *HAU) Standby() bool { return h.standbyFlag.Load() }

// MirrorBytes returns the total tuple bytes copied to standby mirror
// edges — the duplicate-traffic cost of protecting downstream HAUs.
func (h *HAU) MirrorBytes() int64 { return h.mirrorBytes.Load() }

// ProcessedCount returns how many data tuples this HAU has processed (or,
// for sources, generated) since it started — the throughput numerator.
func (h *HAU) ProcessedCount() uint64 { return h.processed.Load() }

// ShedCount returns how many tuples load shedding dropped.
func (h *HAU) ShedCount() uint64 { return h.shed.Load() }

// Operators returns the HAU's operator chain (tests, tooling). Operator
// state is owned by the HAU loop — read it only after Done is closed.
func (h *HAU) Operators() []operator.Operator { return h.cfg.Ops }

// Done is closed when the HAU loop exits.
func (h *HAU) Done() <-chan struct{} { return h.done }

// Err returns the terminal error, if any.
func (h *HAU) Err() error {
	h.errMu.Lock()
	defer h.errMu.Unlock()
	return h.err
}

func (h *HAU) setErr(err error) {
	if err == nil {
		return
	}
	h.errMu.Lock()
	if h.err == nil {
		h.err = err
	}
	h.errMu.Unlock()
	h.failed.Store(true)
}

// SetSourceReplay queues preserved tuples for re-emission before normal
// processing starts. Must be called before Start. Recovery uses this to
// replay the source log; the generator cursor is advanced past the highest
// replayed id.
func (h *HAU) SetSourceReplay(ts []*tuple.Tuple) {
	h.srcReplay = ts
}

// Start launches the HAU loop. Safe to call once.
func (h *HAU) Start(ctx context.Context) {
	h.startOnce.Do(func() { go h.run(ctx) })
}

// WaitWriters blocks until any in-flight asynchronous checkpoint writers
// finish (used by tests and orderly shutdown).
func (h *HAU) WaitWriters() { h.writerWG.Wait() }

func (h *HAU) now() int64 { return h.cfg.Now() }

// forward is the per-input-edge forwarder goroutine: it moves batches from
// the edge channel onto the merged channel, preserving per-edge FIFO
// order. While its gate is paused (token alignment) it forwards nothing,
// so the bounded edge fills and the upstream sender blocks — backpressure
// on exactly the aligning edge.
// The gate is passed by value-pointer rather than read from h.gates so a
// concurrent port attach (which appends to the slice) cannot race with a
// running forwarder.
func (h *HAU) forward(ctx context.Context, port int, g *portGate, e *Edge) {
	var capDone uint64
	for {
		if !g.wait(ctx) {
			return
		}
		if ep, cancel := g.capture(); ep != 0 && ep > capDone {
			capDone = ep
			if !h.drainCapture(ctx, port, e, ep, cancel) {
				return
			}
			continue
		}
		b, ok := e.Recv(ctx)
		if !ok {
			if ctx.Err() != nil {
				return
			}
			// Edge closed: deliver the hangup marker, then exit.
			select {
			case h.merged <- inItem{port: port}:
			case <-ctx.Done():
			}
			return
		}
		select {
		case h.merged <- inItem{port: port, batch: b}:
		case <-ctx.Done():
			return
		}
	}
}

// sendItem delivers one item to the merged channel.
func (h *HAU) sendItem(ctx context.Context, it inItem) bool {
	select {
	case h.merged <- it:
		return true
	case <-ctx.Done():
		return false
	}
}

// drainCapture is the forwarder's unaligned-capture mode: instead of
// handing batches to the (possibly backlogged) merged channel one send at
// a time, it pulls the edge dry hunting for the capture token — the
// barrier overtakes the queued backlog — logging the data tuples it
// passes. Everything pulled is buffered and forwarded afterwards in FIFO
// order, so live processing sees the exact same stream; the log is handed
// to the loop as the port's seal and becomes part of the checkpoint's
// channel-state section. The drain exits without sealing when the capture
// is cancelled (the loop saw the token in-band first, or the capture
// aborted), when a migration token or a newer epoch's token preempts it,
// or when the edge closes. Returns false when the forwarder should exit.
func (h *HAU) drainCapture(ctx context.Context, port int, e *Edge, epoch uint64, cancel chan struct{}) bool {
	var logged []*tuple.Tuple
	var buffered []*tuple.Batch
	sealed := false
	hangup := false
	preempted := false
scan:
	for {
		var b *tuple.Batch
		var ok bool
		select {
		case b, ok = <-e.C:
			if !ok {
				hangup = true
				break scan
			}
			e.queued.Add(-int64(len(b.Tuples)))
		case <-cancel:
			preempted = true
			break scan
		case <-ctx.Done():
			for _, t := range logged {
				tuple.Put(t)
			}
			return false
		}
		for _, t := range b.Tuples {
			if t.IsToken() {
				tok := t.Tok
				switch {
				case tok.Kind == tuple.OneHop && tok.Epoch == epoch:
					sealed = true
				case tok.Kind == tuple.Migration || tok.Epoch > epoch:
					// A migration drain or a newer epoch preempts this
					// capture; the loop sees the token in-band and aborts.
					preempted = true
				}
			} else if !sealed && !preempted {
				logged = append(logged, t.Retain())
			}
		}
		buffered = append(buffered, b)
		if sealed || preempted {
			break
		}
	}
	if sealed || hangup {
		// Seal first: FIFO order means the loop stops logging this port
		// before it processes the buffered (post-token) tuples below.
		if !h.sendItem(ctx, inItem{port: port, seal: &portSeal{epoch: epoch, log: logged}}) {
			return false
		}
	} else {
		for _, t := range logged {
			tuple.Put(t)
		}
	}
	for _, b := range buffered {
		if !h.sendItem(ctx, inItem{port: port, batch: b}) {
			return false
		}
	}
	if hangup {
		h.sendItem(ctx, inItem{port: port})
		return false
	}
	return true
}

func (h *HAU) run(ctx context.Context) {
	h.ctx = ctx
	defer func() {
		if h.ckptCh != nil {
			close(h.ckptCh)
			<-h.writerDone
		}
		h.writerWG.Wait()
		for i, sec := range h.opSecs {
			if sec != nil {
				sec.release()
				h.opSecs[i] = nil
			}
		}
		for phys, ring := range h.rings {
			for i, t := range ring {
				tuple.Put(t)
				ring[i] = nil
			}
			h.rings[phys] = nil
		}
		h.cfg.Listener.Stopped(h.cfg.ID, h.Err())
		close(h.done)
	}()

	// Phase 0: recovery replay. In-flight tuples captured by the MRC
	// snapshot go out first (they carry their original sequence numbers
	// and are already preserved), then preserved source tuples.
	for _, rt := range h.pendingOut {
		// Retained ports are physical: the tuples keep their original
		// sequence numbers, so they must return to the exact edge slot.
		if rt.port < 0 || rt.port >= len(h.physOut) {
			continue
		}
		if h.standbyFlag.Load() {
			// The primary already delivered these (the standby snapshot is
			// cut on a quiesced drain, so this is defensive); ring them so
			// a promotion re-emits and downstream dedup decides.
			h.ringPush(rt.port, rt.t)
			continue
		}
		e := h.physOut[rt.port]
		e.Append(rt.t)
		if e.Full() && !e.Flush(ctx) {
			return
		}
	}
	h.pendingOut = nil
	var maxReplayed uint64
	for _, t := range h.srcReplay {
		for port := range h.out {
			out := t
			if port < len(h.out)-1 {
				out = t.Retain()
			}
			if !h.deliverOut(port, out) {
				return
			}
		}
		if t.ID >= maxReplayed {
			maxReplayed = t.ID + 1
		}
	}
	if len(h.srcReplay) > 0 && h.src != nil {
		if rs, ok := h.src.(*operator.RateSource); ok {
			rs.SkipPast(maxReplayed - 1)
		}
	}
	h.srcReplay = nil
	// Channel tuples logged by an unaligned checkpoint replay through the
	// normal input path (dedup, operator chain, output stamping) before
	// the forwarders start — exactly as if the edges delivered them first.
	// Their sequence numbers pick up right after the snapshot's lastInSeq,
	// and upstream re-emissions resume right after them.
	for _, cs := range h.chanReplay {
		var n uint64
		for _, t := range cs.ts {
			if h.failed.Load() {
				break
			}
			if h.onData(cs.port, t) {
				n++
			}
		}
		if n > 0 {
			h.processed.Add(n)
		}
	}
	h.chanReplay = nil
	if !h.flushAll(ctx) {
		return
	}

	if h.cfg.CkptPeriod > 0 {
		h.nextCkpt = h.now() + int64(h.cfg.CkptPhase)
	}

	for i, e := range h.in {
		go h.forward(ctx, i, h.gates[i], e)
	}

	ticker := time.NewTicker(h.cfg.TickEvery)
	defer ticker.Stop()

	for {
		if h.failed.Load() {
			return // fail-stop: the operator stops functioning
		}
		select {
		case <-ctx.Done():
			return
		case cmd := <-h.ctrl:
			h.onCommand(ctx, cmd)
		case <-ticker.C:
			h.onTick(ctx)
		case it := <-h.merged:
			switch {
			case it.seal != nil:
				h.onSeal(it.port, it.seal)
			case it.batch == nil:
				// Upstream hung up; treat as quiescence, keep serving
				// other inputs.
				h.closed[it.port] = true
				if h.ucapArmed {
					h.sealUnalignedPort(it.port)
				}
				h.checkAlignment(ctx)
				h.tryAttach(ctx)
			case h.ucapArmed:
				h.captureScan(ctx, it.port, it.batch)
			case h.aligned[it.port]:
				// Stream boundary: hold in-flight batches until the
				// remaining tokens arrive.
				h.parked[it.port] = append(h.parked[it.port], it.batch)
			default:
				h.processBatch(ctx, it.port, it.batch)
			}
			h.drainParked(ctx)
		}
		// Migration drain complete: everything routed to this incarnation
		// has been processed, nothing is parked, and no checkpoint is in
		// flight. Hand the state to the cluster and exit; the destination
		// incarnation resumes from the blob. A standby-arming drain
		// (CmdStandbySnap) instead hands the blob over and keeps running —
		// the clone continues as the suppressed standby.
		if h.migArmed && !h.awaiting && !h.ucapArmed && h.migrationAligned() {
			if !h.flushAll(ctx) {
				return
			}
			blob, err := h.encodeState()
			if err != nil {
				// No state handed over: the migration aborts when this
				// incarnation's Done closes, and recovery takes over.
				h.setErr(err)
				return
			}
			h.migReply <- blob
			if !h.migStay {
				return
			}
			h.migArmed = false
			h.migStay = false
			h.migReply = nil
			for i := range h.migSeen {
				h.migSeen[i] = false
			}
		}
		// Idle flush: when no input is waiting, push partial batches out
		// instead of sitting on them until the next tick. Under load the
		// merged channel stays busy and batches fill up instead.
		if len(h.merged) == 0 && !h.flushAll(ctx) {
			return
		}
	}
}

// migrationAligned reports whether every input port has delivered its
// migration token or closed. A port that still has parked batches (an
// interleaved checkpoint alignment) is not done: its token order must be
// preserved, so completion waits for drainParked to empty it.
func (h *HAU) migrationAligned() bool {
	for i := range h.migSeen {
		if !h.migSeen[i] && !h.closed[i] {
			return false
		}
		if len(h.parked[i]) > 0 {
			return false
		}
	}
	return true
}

// processBatch runs the tuples of one batch through the operator chain.
// Tokens force a flush at the sender, so a token is normally the last
// tuple of its batch; if alignment begins mid-batch anyway, the remainder
// is re-parked at the front of the port's parked queue to preserve FIFO
// order.
func (h *HAU) processBatch(ctx context.Context, port int, b *tuple.Batch) {
	ts := b.Tuples
	var n uint64
	for i := 0; i < len(ts); i++ {
		if h.failed.Load() {
			break
		}
		t := ts[i]
		if t.IsToken() {
			tok := *t.Tok
			ts[i] = nil
			tuple.Put(t)
			h.onToken(ctx, port, tok)
			if h.aligned[port] && i+1 < len(ts) {
				rem := tuple.GetBatch()
				rem.Tuples = append(rem.Tuples, ts[i+1:]...)
				h.parked[port] = append([]*tuple.Batch{rem}, h.parked[port]...)
				break
			}
			continue
		}
		if h.onData(port, t) {
			n++
		}
	}
	if n > 0 {
		h.processed.Add(n)
	}
	tuple.PutBatch(b)
}

// drainParked processes batches parked during alignment as soon as their
// port reopens, before any newer merged deliveries — preserving per-edge
// FIFO order across an alignment pause.
func (h *HAU) drainParked(ctx context.Context) {
	if h.ucapArmed {
		// Parked batches wait out the capture: processing them now would
		// delay the remaining ports' seals behind per-tuple work.
		return
	}
	for {
		progressed := false
		for p := range h.parked {
			for len(h.parked[p]) > 0 && !h.aligned[p] && !h.failed.Load() {
				b := h.parked[p][0]
				h.parked[p] = h.parked[p][1:]
				h.processBatch(ctx, p, b)
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// flushAll pushes every output edge's pending batch (and preservation
// backlog) downstream. Called on ticks and when the input side idles.
// A suppressed standby never touches its output edges — they are shared
// with the live primary, whose loop owns their pending batches.
func (h *HAU) flushAll(ctx context.Context) bool {
	if h.standbyFlag.Load() {
		return true
	}
	for phys := range h.physOut {
		if !h.flushPort(ctx, phys) {
			return false
		}
	}
	return true
}

// flushPres appends the port's pending retained copies to the preserver.
// Must run before the corresponding edge flush: a tuple is preserved
// before it becomes visible downstream.
func (h *HAU) flushPres(port int) bool {
	if h.cfg.Preserver == nil || len(h.presPending[port]) == 0 {
		return true
	}
	pend := h.presPending[port]
	err := h.cfg.Preserver.AppendBatch(port, pend)
	for i := range pend {
		pend[i] = nil
	}
	h.presPending[port] = pend[:0]
	if err != nil {
		h.setErr(err)
		return false
	}
	return true
}

// flushPort flushes one physical output edge (preservation first, then the
// standby mirror so copies are never newer than the originals downstream).
func (h *HAU) flushPort(ctx context.Context, phys int) bool {
	if !h.flushPres(phys) {
		return false
	}
	if m := h.mirror[phys]; m != nil && !m.Flush(ctx) {
		return false
	}
	return h.physOut[phys].Flush(ctx)
}

func (h *HAU) onCommand(ctx context.Context, cmd Command) {
	switch cmd.Kind {
	case CmdCheckpoint:
		h.onCheckpointCmd(ctx, cmd.Epoch)
	case CmdAlertOn:
		h.alert = true
	case CmdAlertOff:
		h.alert = false
	case CmdReportAll:
		h.reportAll = true
	case CmdReportNormal:
		h.reportAll = false
	case CmdSwapOutEdge:
		if cmd.Port >= 0 && cmd.Port < len(h.out) && len(h.out[cmd.Port].Edges) == 1 && cmd.Edge != nil {
			// Preserve stamped-but-unflushed tuples before abandoning the
			// old edge; replay reads them back from the preserver. The old
			// edge's pending batch is dropped, not leaked to the dead peer.
			phys := h.outBase[cmd.Port]
			h.flushPres(phys)
			h.physOut[phys].DropPending()
			h.out[cmd.Port].Edges[0] = cmd.Edge
			h.physOut[phys] = cmd.Edge
		}
	case CmdMigrateOut:
		if cmd.Port >= 0 && cmd.Port < len(h.out) && len(h.out[cmd.Port].Edges) == 1 && cmd.Edge != nil {
			// Everything already stamped for the old edge must reach it —
			// the migrating peer processes up to the token, and tuples lost
			// here would be sequence gaps downstream (no rollback covers a
			// migration). Flush pending plus the token, then divert.
			phys := h.outBase[cmd.Port]
			h.flushPres(phys)
			old := h.physOut[phys]
			old.Append(tuple.NewTokenAt(tuple.Token{Kind: tuple.Migration, From: h.cfg.ID}, h.now()))
			if !old.Flush(ctx) {
				return // ctx died: the whole migration aborts with us
			}
			h.out[cmd.Port].Edges[0] = cmd.Edge
			h.physOut[phys] = cmd.Edge
		}
	case CmdMigrateSnap:
		if cmd.Reply != nil {
			// Force-seal an in-flight unaligned capture: its remaining
			// tokens may never arrive once upstreams divert, and the drain
			// must not deadlock behind it. The epoch simply never
			// completes; recovery uses an older complete one.
			h.abortUnaligned()
			h.migArmed = true
			h.migReply = cmd.Reply
		}
	case CmdStandbySnap:
		if cmd.Reply != nil {
			// Same barrier drain as CmdMigrateSnap, but the HAU keeps
			// running after handing the blob over — the state clone a
			// fresh standby is built from.
			h.abortUnaligned()
			h.migArmed = true
			h.migStay = true
			h.migReply = cmd.Reply
		}
	case CmdTeeOut:
		if cmd.Port >= 0 && cmd.Port < len(h.out) && len(h.out[cmd.Port].Edges) == 1 && cmd.Edge != nil {
			phys := h.outBase[cmd.Port]
			if h.mirror[phys] != nil {
				return // already teed
			}
			// Flush pending plus a migration token to the main edge — the
			// cut the standby's snapshot drain aligns on. Every tuple
			// stamped after this instant is copied to the mirror.
			h.flushPres(phys)
			e := h.physOut[phys]
			e.Append(tuple.NewTokenAt(tuple.Token{Kind: tuple.Migration, From: h.cfg.ID}, h.now()))
			if !e.Flush(ctx) {
				return
			}
			h.mirror[phys] = cmd.Edge
		}
	case CmdTeeDrop:
		if cmd.Port >= 0 && cmd.Port < len(h.out) && len(h.out[cmd.Port].Edges) == 1 {
			phys := h.outBase[cmd.Port]
			if m := h.mirror[phys]; m != nil {
				h.mirror[phys] = nil
				if m.Flush(ctx) {
					m.Close()
				}
			}
		}
	case CmdTeeSwap:
		if cmd.Port >= 0 && cmd.Port < len(h.out) && len(h.out[cmd.Port].Edges) == 1 {
			phys := h.outBase[cmd.Port]
			m := h.mirror[phys]
			if m == nil {
				return
			}
			h.mirror[phys] = nil
			// The dead primary reads neither the pending batch nor the
			// channel; every stamped tuple already has a mirror copy.
			old := h.physOut[phys]
			old.DropPending()
			old.Close()
			if !m.Flush(ctx) {
				return
			}
			h.out[cmd.Port].Edges[0] = m
			h.physOut[phys] = m
		}
	case CmdPromote:
		h.promote(ctx)
	case CmdRescaleOut:
		h.onRescaleOut(ctx, cmd)
	case CmdAddInPort:
		if cmd.Edge != nil {
			h.attachQ = append(h.attachQ, cmd)
			h.tryAttach(ctx)
		}
	case CmdReplayOutput:
		if h.cfg.Preserver == nil || cmd.Port < 0 || cmd.Port >= len(h.out) || len(h.out[cmd.Port].Edges) != 1 {
			return
		}
		phys := h.outBase[cmd.Port]
		// Push anything already pending first so replayed tuples keep
		// sequence order on the wire.
		if !h.flushPort(ctx, phys) {
			return
		}
		ts, err := h.cfg.Preserver.Replay(phys, 0)
		if err != nil {
			h.setErr(err)
			return
		}
		e := h.physOut[phys]
		for _, t := range ts {
			e.Append(t)
			if e.Full() && !e.Flush(ctx) {
				return
			}
		}
		e.Flush(ctx)
	}
}

// onRescaleOut replaces one logical output port's edge set: the split or
// merge coordinator diverts this HAU's output from the old downstream
// incarnation(s) to the new one(s). Each old edge receives the pending
// flush plus a migration token (its downstream drains on it); the new
// edges start with fresh sequence counters. Must run while checkpoints are
// quiesced — the retained list is empty, so physical out indexes can be
// re-laid out safely.
func (h *HAU) onRescaleOut(ctx context.Context, cmd Command) {
	if cmd.Port < 0 || cmd.Port >= len(h.out) || len(cmd.Edges) == 0 {
		return
	}
	oldPort := h.out[cmd.Port]
	base := h.outBase[cmd.Port]
	for i, old := range oldPort.Edges {
		h.flushPres(base + i)
		old.Append(tuple.NewTokenAt(tuple.Token{Kind: tuple.Migration, From: h.cfg.ID}, h.now()))
		if !old.Flush(ctx) {
			return // ctx died: the rescale aborts with us
		}
	}
	if len(h.retained) > 0 {
		// Retained entries hold physical indexes about to be re-laid out;
		// the coordinator quiesces checkpoints first, so this is a protocol
		// violation rather than a recoverable state.
		h.setErr(fmt.Errorf("spe: %s rescaled out port %d with %d retained tuples", h.cfg.ID, cmd.Port, len(h.retained)))
		return
	}
	h.out[cmd.Port] = OutPort{Edges: cmd.Edges, Router: cmd.Router}
	h.physOut, h.outBase = flattenPorts(h.out)
	h.outSeq = spliceU64(h.outSeq, base, len(oldPort.Edges), len(cmd.Edges))
	h.presPending = splicePres(h.presPending, base, len(oldPort.Edges), len(cmd.Edges))
	h.mirror = spliceEdges(h.mirror, base, len(oldPort.Edges), len(cmd.Edges))
	h.rings = splicePres(h.rings, base, len(oldPort.Edges), len(cmd.Edges))
}

// spliceEdges replaces the n entries at base with m nils.
func spliceEdges(s []*Edge, base, n, m int) []*Edge {
	out := make([]*Edge, 0, len(s)-n+m)
	out = append(out, s[:base]...)
	out = append(out, make([]*Edge, m)...)
	return append(out, s[base+n:]...)
}

// spliceU64 replaces the n entries at base with m zeros.
func spliceU64(s []uint64, base, n, m int) []uint64 {
	out := make([]uint64, 0, len(s)-n+m)
	out = append(out, s[:base]...)
	out = append(out, make([]uint64, m)...)
	return append(out, s[base+n:]...)
}

// splicePres replaces the n entries at base with m empty slots.
func splicePres(s [][]*tuple.Tuple, base, n, m int) [][]*tuple.Tuple {
	out := make([][]*tuple.Tuple, 0, len(s)-n+m)
	out = append(out, s[:base]...)
	out = append(out, make([][]*tuple.Tuple, m)...)
	return append(out, s[base+n:]...)
}

// tryAttach attaches queued input ports whose ordering barrier is met:
// every existing port fed by an upstream named in AfterFrom has closed.
// This serializes the old incarnation's stream strictly before the replica
// streams that replace it.
func (h *HAU) tryAttach(ctx context.Context) {
	kept := h.attachQ[:0]
	for _, cmd := range h.attachQ {
		if h.afterClosed(cmd.AfterFrom) {
			h.attachInPort(ctx, cmd.Edge, cmd.Logical)
		} else {
			kept = append(kept, cmd)
		}
	}
	h.attachQ = kept
}

func (h *HAU) afterClosed(after []string) bool {
	for _, from := range after {
		for i, f := range h.inFrom {
			if f == from && !h.closed[i] {
				return false
			}
		}
	}
	return true
}

// attachInPort appends one input port and spawns its forwarder. The new
// port starts unaligned and unclosed with zeroed dedup state — its edge is
// fresh, so sequence numbers restart at 1.
func (h *HAU) attachInPort(ctx context.Context, e *Edge, logical int) {
	// The per-capture port arrays are sized at arming; a geometry change
	// mid-capture aborts it (the rescale coordinator quiesces checkpoints,
	// so this is a defensive guard, not a normal path).
	h.abortUnaligned()
	port := len(h.in)
	h.in = append(h.in, e)
	h.inFrom = append(h.inFrom, e.From)
	h.inLogical = append(h.inLogical, logical)
	h.lastInSeq = append(h.lastInSeq, 0)
	h.lastSrcID = append(h.lastSrcID, make(map[string]uint64))
	h.aligned = append(h.aligned, false)
	h.closed = append(h.closed, false)
	h.pausedAt = append(h.pausedAt, 0)
	h.migSeen = append(h.migSeen, false)
	h.parked = append(h.parked, nil)
	g := &portGate{}
	h.gates = append(h.gates, g)
	go h.forward(ctx, port, g, e)
}

func (h *HAU) onCheckpointCmd(ctx context.Context, epoch uint64) {
	if h.cfg.Scheme.UsesTokens() {
		// A token for this epoch may have raced ahead of the command (the
		// upstream handled its command first); in that case the HAU is
		// already armed — or already done — and a second arming would
		// broadcast duplicate tokens and stall the next epoch.
		if epoch <= h.doneEpoch || (h.awaiting && epoch <= h.pendingEp) ||
			(h.ucapArmed && epoch <= h.ucapEpoch) {
			return
		}
		if h.awaiting {
			// Still aligning an older epoch (a backlogged input keeps its
			// token in flight longer than the checkpoint period). Adopting
			// the newer epoch here would stamp its number on a snapshot cut
			// at the OLD barrier — sources would then be one epoch ahead of
			// this HAU inside the "complete" checkpoint, and rollback would
			// lose the inter-barrier window. Skip the command: the newer
			// epoch's tokens are already in-band behind the current ones and
			// arm it through onToken once this alignment finishes.
			return
		}
	}
	switch {
	case h.cfg.Scheme == MSSrc && h.src != nil:
		// §III-A step 1: checkpoint, then trickle a cascading token.
		h.alignStart = h.now()
		h.doneEpoch = epoch
		h.doCheckpoint(ctx, epoch, 0, 0, 0)
		h.beginSourceEpoch(epoch)
		h.broadcastToken(ctx, tuple.Token{Epoch: epoch, Kind: tuple.Cascading, From: h.cfg.ID})
	case h.cfg.Scheme.OneHopTokens():
		// §III-B: emit 1-hop tokens immediately, then await alignment.
		h.broadcastToken(ctx, tuple.Token{Epoch: epoch, Kind: tuple.OneHop, From: h.cfg.ID})
		if h.src != nil {
			h.beginSourceEpoch(epoch)
		}
		if len(h.in) == 0 {
			// Sources align trivially.
			h.alignStart = h.now()
			h.doneEpoch = epoch
			h.doCheckpoint(ctx, epoch, 0, 0, 0)
			return
		}
		if h.cfg.Scheme.Unaligned() {
			// Snapshot immediately and log in-flight channel tuples
			// instead of pausing forwarders for alignment.
			h.armUnaligned(ctx, epoch)
			return
		}
		h.awaiting = true
		h.pendingEp = epoch
		h.alignStart = h.now()
		h.retaining = true
	case h.cfg.Scheme == Baseline:
		// The baseline checkpoints on its own timer; an explicit command
		// forces one now (used by tests).
		h.baselineCheckpoint(ctx)
	}
}

func (h *HAU) beginSourceEpoch(epoch uint64) {
	if h.cfg.SourceLog != nil {
		if err := h.cfg.SourceLog.BeginEpoch(epoch); err != nil {
			h.setErr(err)
		}
	}
}

// onData runs one data tuple through duplicate suppression and the
// operator chain. Reports whether the tuple was processed (not a
// replay duplicate).
func (h *HAU) onData(port int, t *tuple.Tuple) bool {
	// Duplicate suppression. Meteor Shower rolls the whole application back
	// to one consistent cut, so per-edge sequence numbers are reliable.
	// The baseline restarts a single HAU whose re-emissions may interleave
	// multi-input processing differently, so its receivers match tuples by
	// per-source id instead (per edge and source, ids are FIFO-ordered).
	if h.cfg.Scheme == Baseline {
		if t.Src != "" {
			if last, ok := h.lastSrcID[port][t.Src]; ok && t.ID <= last {
				return false
			}
			h.lastSrcID[port][t.Src] = t.ID
		}
		if t.Seq > h.lastInSeq[port] {
			h.lastInSeq[port] = t.Seq // tracked for checkpoint acks
		}
	} else if t.Seq != 0 {
		if t.Seq <= h.lastInSeq[port] {
			return false // duplicate from a replay
		}
		h.lastInSeq[port] = t.Seq
	}
	if h.cfg.PerTupleDelay > 0 {
		if h.cfg.CPU != nil {
			h.cpuDebt += h.cfg.PerTupleDelay
			if h.cpuDebt >= cpuChargeChunk {
				h.cfg.CPU.Charge(h.cpuDebt)
				h.cpuDebt = 0
			}
		} else {
			time.Sleep(h.cfg.PerTupleDelay)
		}
	}
	if err := h.cfg.Ops[0].OnTuple(h.inLogical[port], t, h.emitters[0]); err != nil {
		h.setErr(err)
	}
	return true
}

func (h *HAU) onToken(ctx context.Context, port int, tok tuple.Token) {
	if tok.Kind == tuple.Migration {
		// Migration tokens carry no epoch; they mark that this input's
		// upstream has diverted to the new incarnation's edge. Completion
		// is checked in the run loop once all ports are marked. An
		// in-flight unaligned capture is force-sealed (aborted): its
		// remaining tokens may never arrive once upstreams divert, and the
		// migration drain must not wait on a never-pausing port.
		h.abortUnaligned()
		if port >= 0 && port < len(h.migSeen) {
			h.migSeen[port] = true
		}
		return
	}
	if tok.Epoch <= h.doneEpoch {
		return // stale duplicate from a late command broadcast
	}
	if h.cfg.Scheme.Unaligned() {
		h.onUnalignedToken(ctx, port, tok)
		return
	}
	if !h.awaiting {
		if h.cfg.Scheme.OneHopTokens() {
			// Token raced ahead of the controller command (possible when
			// the upstream processed its command first). Arm now exactly
			// as the command would.
			h.broadcastToken(ctx, tuple.Token{Epoch: tok.Epoch, Kind: tuple.OneHop, From: h.cfg.ID})
			h.awaiting = true
			h.pendingEp = tok.Epoch
			h.alignStart = h.now()
			h.retaining = true
		} else {
			h.awaiting = true
			h.pendingEp = tok.Epoch
			h.alignStart = h.now()
		}
	}
	h.aligned[port] = true
	h.pausedAt[port] = h.now()
	h.gates[port].pause()
	h.checkAlignment(ctx)
}

// checkAlignment completes the individual checkpoint once every input is
// either tokened or closed.
func (h *HAU) checkAlignment(ctx context.Context) {
	if !h.awaiting {
		return
	}
	n := 0
	for i := range h.aligned {
		if h.aligned[i] || h.closed[i] {
			n++
		}
	}
	if n < len(h.aligned) {
		return // stream boundary: stop reading tokened inputs, keep the rest
	}
	// All tokens received: individual checkpoint.
	now := h.now()
	tokenWait := time.Duration(now - h.alignStart)
	var alignMax, alignSum time.Duration
	for i := range h.aligned {
		if h.aligned[i] && h.pausedAt[i] > 0 {
			d := time.Duration(now - h.pausedAt[i])
			alignSum += d
			if d > alignMax {
				alignMax = d
			}
		}
		h.pausedAt[i] = 0
	}
	epoch := h.pendingEp
	h.awaiting = false
	h.doneEpoch = epoch
	for i := range h.aligned {
		h.aligned[i] = false // erase tokens, reopen inputs
		h.gates[i].unpause()
	}
	h.doCheckpoint(ctx, epoch, tokenWait, alignMax, alignSum)
	if h.cfg.Scheme == MSSrc {
		h.broadcastToken(ctx, tuple.Token{Epoch: epoch, Kind: tuple.Cascading, From: h.cfg.ID})
	}
}

func (h *HAU) onTick(ctx context.Context) {
	now := h.now()
	if h.src != nil {
		gen := h.src.Generate(now)
		for _, t := range gen {
			if h.cfg.SourceLog != nil {
				// Source preservation: stable write *before* sending.
				if err := h.cfg.SourceLog.Append(t); err != nil {
					h.setErr(err)
					return
				}
			}
			for port := range h.out {
				out := t
				if port < len(h.out)-1 {
					out = t.Retain()
				}
				if !h.deliverOut(port, out) {
					return
				}
			}
		}
		if len(gen) > 0 {
			h.processed.Add(uint64(len(gen)))
		}
	}
	for i, op := range h.cfg.Ops {
		if tk, ok := op.(operator.Ticker); ok {
			if err := tk.OnTick(now, h.emitters[i]); err != nil {
				h.setErr(err)
			}
		}
	}
	h.sampleState(now)
	if h.cfg.Scheme == Baseline && h.cfg.CkptPeriod > 0 && now >= h.nextCkpt {
		h.baselineCheckpoint(ctx)
		h.nextCkpt = now + int64(h.cfg.CkptPeriod)
	}
	h.flushAll(ctx)
}

func (h *HAU) sampleState(now int64) {
	size := h.stateSize()
	h.cachedSize.Store(size)
	tp := h.tracker.Observe(statesize.Sample{At: now, Size: size})
	if tp == nil {
		return
	}
	halved := false
	if tp.Kind == statesize.Peak {
		h.lastPeak = tp.Size
	} else if h.lastPeak > 0 && tp.Size*2 < h.lastPeak {
		halved = true
	}
	// Passive mode: only notify on halvings; active/alert/profiling mode
	// reports every turning point with its ICR (§III-C3).
	if h.reportAll || h.alert || halved {
		h.cfg.Listener.TurningPoint(h.cfg.ID, tp.At, tp.Size, tp.ICR, halved)
	}
}

func (h *HAU) stateSize() int64 {
	var n int64
	for _, op := range h.cfg.Ops {
		n += op.StateSize()
	}
	for _, rt := range h.retained {
		n += rt.t.Size()
	}
	return n
}

func (h *HAU) baselineCheckpoint(ctx context.Context) {
	h.localEpoch++
	h.alignStart = h.now()
	h.doCheckpoint(ctx, h.localEpoch, 0, 0, 0)
	// Ack upstream neighbours so they trim their preservation buffers.
	if h.cfg.AckUpstream != nil {
		for port := range h.in {
			h.cfg.AckUpstream(port, h.lastInSeq[port])
		}
	}
}

// releaseRetained recycles the retained in-flight copies after they have
// been encoded into a checkpoint. They are Retain copies owned exclusively
// by the HAU loop, so the headers go back to the pool.
func (h *HAU) releaseRetained() {
	for _, rt := range h.retained {
		tuple.Put(rt.t)
	}
	h.retaining = false
	h.retained = nil
}

// ckptJob is one captured checkpoint handed from the loop to the writer.
type ckptJob struct {
	epoch uint64
	snap  *stateSnapshot
	b     CheckpointBreakdown
}

// ckptWriterState is the delta-checkpoint bookkeeping owned by whichever
// goroutine performs the writes: the writer goroutine for asynchronous
// schemes, the HAU loop for synchronous ones.
type ckptWriterState struct {
	lastBlob  []byte // previous flattened state (delta base)
	lastEpoch uint64
	sinceFull int
}

// doCheckpoint takes the individual checkpoint for epoch. The loop only
// captures the state sections (freeze cost scales with dirty bytes);
// flatten, delta and the stable write run on the per-HAU writer goroutine
// for asynchronous schemes, or inline for synchronous ones. A failed
// operator snapshot aborts the individual checkpoint — nothing is saved, so
// the catalog can never mark a torn epoch complete.
func (h *HAU) doCheckpoint(ctx context.Context, epoch uint64, tokenWait, alignMax, alignSum time.Duration) {
	if h.cfg.Catalog == nil || h.standbyFlag.Load() {
		// A suppressed standby acks tokens (alignment ran) but writes no
		// blobs — the primary owns this HAU id's checkpoints.
		h.releaseRetained()
		return
	}
	serStart := time.Now()
	snap, err := h.captureState()
	serialize := time.Since(serStart)
	h.releaseRetained()
	if err != nil {
		h.setErr(err)
		return
	}
	h.submitCheckpoint(ckptJob{
		epoch: epoch,
		snap:  snap,
		b: CheckpointBreakdown{
			TokenWait:     tokenWait,
			Serialize:     serialize,
			AlignStallMax: alignMax,
			AlignStallSum: alignSum,
			DirtyBytes:    snap.dirty,
			Async:         h.cfg.Scheme.Asynchronous(),
		},
	})
}

// submitCheckpoint hands a captured snapshot to the writer — inline for
// synchronous schemes, the per-HAU writer goroutine otherwise.
func (h *HAU) submitCheckpoint(job ckptJob) {
	if !job.b.Async {
		h.writeCheckpoint(job)
		return
	}
	if h.ckptCh == nil {
		h.ckptCh = make(chan ckptJob, 16)
		h.writerDone = make(chan struct{})
		go h.writerLoop()
	}
	h.writerWG.Add(1)
	h.ckptCh <- job // bounded: backpressure if the writer falls 16 epochs behind
}

// armUnaligned starts an unaligned capture for epoch: the operator state
// is snapshotted immediately (the token-broadcast instant is the cut) and
// every open input port switches to channel logging until its token
// lands. Forwarders are never paused — their gates are armed so they
// overtake the edge backlog hunting for the token.
func (h *HAU) armUnaligned(ctx context.Context, epoch uint64) {
	if h.migArmed {
		return // migration drain in progress: no new captures
	}
	if h.ucapArmed {
		// A newer epoch preempts an unfinished capture; the old epoch can
		// never complete application-wide once the controller moved on.
		h.abortUnaligned()
	}
	h.ucapArmed = true
	h.ucapEpoch = epoch
	h.ucapStart = h.now()
	h.ucapSerialize = 0
	h.ucapSealed = make([]bool, len(h.in))
	h.ucapLog = buffer.NewChannelCapture(epoch, len(h.in))
	if h.cfg.Catalog != nil && !h.standbyFlag.Load() {
		serStart := time.Now()
		snap, err := h.captureState()
		h.ucapSerialize = time.Since(serStart)
		if err != nil {
			h.setErr(err)
			h.abortUnaligned()
			return
		}
		h.ucapSnap = snap
	}
	for port := range h.in {
		if h.closed[port] {
			h.ucapSealed[port] = true
		} else {
			h.gates[port].arm(epoch)
		}
	}
	h.maybeFinalizeUnaligned()
}

// onUnalignedToken handles a checkpoint token under the unaligned scheme:
// the first token of a new epoch arms the capture (broadcasting our own
// token downstream, exactly as the controller command would), and a token
// for the armed epoch seals its port — no pausing, no alignment stall.
func (h *HAU) onUnalignedToken(ctx context.Context, port int, tok tuple.Token) {
	if !h.ucapArmed || tok.Epoch > h.ucapEpoch {
		h.broadcastToken(ctx, tuple.Token{Epoch: tok.Epoch, Kind: tuple.OneHop, From: h.cfg.ID})
		h.armUnaligned(ctx, tok.Epoch)
	}
	if h.ucapArmed && tok.Epoch == h.ucapEpoch {
		h.sealUnalignedPort(port)
	}
}

// sealUnalignedPort marks one port's channel log complete: its token has
// landed (or its edge closed), so no further tuples on it belong to the
// capture's cut.
func (h *HAU) sealUnalignedPort(port int) {
	if !h.ucapArmed || port < 0 || port >= len(h.ucapSealed) || h.ucapSealed[port] {
		return
	}
	h.ucapSealed[port] = true
	h.gates[port].disarm()
	h.maybeFinalizeUnaligned()
}

// onSeal absorbs a forwarder's drain log: the tuples it overtook on the
// edge between the capture arming and the token. Stale seals (the capture
// aborted or was preempted) release their log.
func (h *HAU) onSeal(port int, s *portSeal) {
	if !h.ucapArmed || s.epoch != h.ucapEpoch || port < 0 || port >= len(h.ucapSealed) || h.ucapSealed[port] {
		for _, t := range s.log {
			tuple.Put(t)
		}
		return
	}
	h.ucapLog.Absorb(port, s.log)
	h.sealUnalignedPort(port)
}

// captureScan handles one merged data batch while a capture is armed:
// data tuples on unsealed ports are logged into the capture, every data
// tuple is parked for processing after the capture finalizes (so the loop
// reaches the remaining seals without paying per-tuple processing cost in
// the capture window), and tokens are handled inline — they steer the
// capture itself.
func (h *HAU) captureScan(ctx context.Context, port int, b *tuple.Batch) {
	var park *tuple.Batch
	for i := 0; i < len(b.Tuples); i++ {
		t := b.Tuples[i]
		if t.IsToken() {
			tok := *t.Tok
			b.Tuples[i] = nil
			tuple.Put(t)
			h.onToken(ctx, port, tok)
			continue
		}
		if h.ucapArmed && port < len(h.ucapSealed) && !h.ucapSealed[port] {
			h.ucapLog.Log(port, t)
		}
		if park == nil {
			park = tuple.GetBatch()
		}
		park.Tuples = append(park.Tuples, t)
	}
	if park != nil {
		h.parked[port] = append(h.parked[port], park)
	}
	tuple.PutBatch(b)
}

// maybeFinalizeUnaligned completes the capture once every port is sealed
// or closed: the per-port channel logs are encoded into a channel-state
// section appended to the snapshot taken at arming, and the whole blob
// goes to the off-loop writer.
func (h *HAU) maybeFinalizeUnaligned() {
	if !h.ucapArmed {
		return
	}
	for port := range h.ucapSealed {
		if !h.ucapSealed[port] && !h.closed[port] {
			return
		}
	}
	epoch := h.ucapEpoch
	tokenWait := time.Duration(h.now() - h.ucapStart)
	snap := h.ucapSnap
	log := h.ucapLog
	h.ucapArmed = false
	h.ucapSnap = nil
	h.ucapLog = nil
	h.doneEpoch = epoch
	for _, g := range h.gates {
		g.disarm()
	}
	if snap == nil {
		log.Release()
		return // no catalog: capture protocol ran, nothing to persist
	}
	var chBytes int64
	if streams := log.Streams(h.inFrom); len(streams) > 0 {
		sec := storage.EncodeChannelSection(streams)
		chBytes = int64(len(sec))
		snap.sections = append(snap.sections, newSection(sec))
	}
	log.Release()
	h.submitCheckpoint(ckptJob{
		epoch: epoch,
		snap:  snap,
		b: CheckpointBreakdown{
			TokenWait:    tokenWait,
			Serialize:    h.ucapSerialize,
			DirtyBytes:   snap.dirty,
			ChannelBytes: chBytes,
			Async:        true,
		},
	})
}

// abortUnaligned force-seals an in-flight capture without persisting it:
// the snapshot sections and channel logs are released and the forwarder
// drains cancelled. The epoch never completes in the catalog, so recovery
// simply uses an older complete one — safe because every logged tuple was
// also processed live. Idempotent.
func (h *HAU) abortUnaligned() {
	if !h.ucapArmed {
		return
	}
	h.ucapArmed = false
	if h.ucapSnap != nil {
		h.ucapSnap.release()
		h.ucapSnap = nil
	}
	if h.ucapLog != nil {
		h.ucapLog.Release()
		h.ucapLog = nil
	}
	for _, g := range h.gates {
		g.disarm()
	}
}

// writerLoop drains checkpoint jobs in FIFO order until the HAU loop closes
// the channel on exit.
func (h *HAU) writerLoop() {
	defer close(h.writerDone)
	for job := range h.ckptCh {
		h.writeCheckpoint(job)
		h.writerWG.Done()
	}
}

// writeCheckpoint flattens one captured snapshot, computes the block delta
// against the previous epoch when enabled, and saves through the catalog's
// ownership-transferring path (the flattened blob is fresh and immutable,
// so the store keeps it without a defensive copy).
func (h *HAU) writeCheckpoint(job ckptJob) {
	flatStart := time.Now()
	blob := job.snap.flatten()
	job.snap.release()
	job.b.Flatten = time.Since(flatStart)

	w := &h.wstate
	writeBlob := blob
	baseEpoch := uint64(0)
	useDelta := false
	if h.cfg.DeltaCheckpoint && w.lastBlob != nil {
		fullEvery := h.cfg.DeltaFullEvery
		if fullEvery <= 0 {
			fullEvery = 4
		}
		if w.sinceFull+1 < fullEvery {
			diffStart := time.Now()
			diff := delta.Diff(w.lastBlob, blob, delta.DefaultBlockSize)
			job.b.Diff = time.Since(diffStart)
			if len(diff) < len(blob) {
				writeBlob = diff
				baseEpoch = w.lastEpoch
				useDelta = true
			}
		}
	}
	if useDelta {
		w.sinceFull++
	} else {
		w.sinceFull = 0
	}
	w.lastBlob = blob
	w.lastEpoch = job.epoch

	job.b.StateBytes = int64(len(writeBlob))
	job.b.Delta = useDelta
	var d time.Duration
	var err error
	if useDelta {
		d, _, err = h.cfg.Catalog.SaveStateDeltaOwned(job.epoch, h.cfg.ID, writeBlob, baseEpoch)
	} else {
		d, _, err = h.cfg.Catalog.SaveStateOwned(job.epoch, h.cfg.ID, writeBlob)
	}
	if err != nil {
		h.setErr(err)
		return
	}
	job.b.DiskIO = d
	h.cfg.Listener.CheckpointDone(h.cfg.ID, job.epoch, job.b)
}

// broadcastToken appends a token to every output port and flushes
// immediately: tokens are never delayed by batching, so checkpoint
// latency is unaffected by the micro-batches. Teed ports copy the token
// to their mirror so the standby aligns on the same cuts as its
// downstream peers. A suppressed standby broadcasts nothing — its output
// edges belong to the live primary (CmdPromote re-broadcasts the latest
// epochs to restore token liveness after a failover).
func (h *HAU) broadcastToken(ctx context.Context, tok tuple.Token) {
	if h.standbyFlag.Load() {
		return
	}
	now := h.now()
	for phys, e := range h.physOut {
		if m := h.mirror[phys]; m != nil {
			m.Append(tuple.NewTokenAt(tok, now))
		}
		e.Append(tuple.NewTokenAt(tok, now))
		if !h.flushPort(ctx, phys) {
			return
		}
	}
}

// deliverOut stamps, preserves, retains and enqueues a data tuple on a
// logical output port, flushing when the batch fills. On a routed port the
// key router picks the edge (one per downstream replica); sequence numbers
// and preservation are per physical edge. Returns false if the context died
// mid-send.
func (h *HAU) deliverOut(port int, t *tuple.Tuple) bool {
	if port < 0 || port >= len(h.out) {
		h.setErr(fmt.Errorf("spe: %s emitted to invalid port %d", h.cfg.ID, port))
		return false
	}
	op := h.out[port]
	idx := 0
	if op.Router != nil {
		idx = op.Router.Route(t.Key)
		if idx < 0 || idx >= len(op.Edges) {
			h.setErr(fmt.Errorf("spe: %s port %d router chose edge %d of %d", h.cfg.ID, port, idx, len(op.Edges)))
			return false
		}
	}
	phys := h.outBase[port] + idx
	e := op.Edges[idx]
	if h.standbyFlag.Load() {
		// Suppressed standby: stamp the sequence (the seq->tuple mapping
		// must match the primary's exactly) and ring the tuple for a
		// possible promotion, but never touch the shared edge. Shedding is
		// skipped — it would desynchronize the sequence streams, which is
		// why protection requires shedding disabled.
		h.outSeq[phys]++
		t.Seq = h.outSeq[phys]
		h.ringPush(phys, t)
		return true
	}
	if h.cfg.ShedWatermark > 0 {
		if float64(e.Occupancy()) > h.cfg.ShedWatermark*float64(e.Cap()) {
			h.shed.Add(1)
			return true // overload: drop instead of blocking upstream
		}
	}
	h.outSeq[phys]++
	t.Seq = h.outSeq[phys]
	if h.cfg.Preserver != nil {
		// Copy-on-retain: the preserver takes ownership of a header copy
		// sharing the (immutable) payload; the original continues
		// downstream. The actual append is batched into flushPres.
		h.presPending[phys] = append(h.presPending[phys], t.Retain())
	}
	if h.retaining {
		h.retained = append(h.retained, retainedTuple{port: phys, t: t.Retain()})
	}
	if m := h.mirror[phys]; m != nil {
		// Tee after stamping so the copy carries the main edge's sequence
		// number — the standby's view of this stream.
		cp := t.Retain()
		h.mirrorBytes.Add(cp.Size())
		m.Append(cp)
		if m.Full() && !m.Flush(h.ctx) {
			return false
		}
	}
	e.Append(t)
	if e.Full() {
		return h.flushPort(h.ctx, phys)
	}
	return true
}

// ringPush appends a stamped tuple to the standby's suppression ring for
// one physical edge, evicting the oldest entries past the cap. Evicted
// tuples are strictly older than anything the primary could still have
// undelivered, so downstream already has them.
func (h *HAU) ringPush(phys int, t *tuple.Tuple) {
	e := h.physOut[phys]
	max := h.cfg.StandbyRing
	if max <= 0 {
		max = 4 * (e.Cap() + e.BatchSize())
	}
	r := h.rings[phys]
	if n := len(r) - max + 1; n > 0 {
		for i := 0; i < n; i++ {
			tuple.Put(r[i])
			r[i] = nil
		}
		r = append(r[:0], r[n:]...)
		h.ringCount.Add(int64(-n))
	}
	h.rings[phys] = append(r, t)
	h.ringCount.Add(1)
}

// RingTuples returns how many suppressed output tuples the standby's
// rings currently hold (0 once promoted — the failover metric reads it
// just before CmdPromote re-emits them).
func (h *HAU) RingTuples() int64 { return h.ringCount.Load() }

// promote turns a suppressed standby into the live HAU: re-emit the
// suppression rings onto the (previously shared, now exclusively ours)
// output edges — downstream dedup drops whatever the dead primary already
// delivered — then re-broadcast the latest checkpoint tokens in case the
// primary died before broadcasting its own. Receivers drop stale
// duplicates, so the re-broadcast is idempotent.
func (h *HAU) promote(ctx context.Context) {
	if !h.standbyFlag.Load() {
		return
	}
	h.standbyFlag.Store(false)
	for phys, ring := range h.rings {
		e := h.physOut[phys]
		for i, t := range ring {
			e.Append(t)
			ring[i] = nil
			if e.Full() && !e.Flush(ctx) {
				return
			}
		}
		h.rings[phys] = nil
	}
	h.ringCount.Store(0)
	if !h.flushAll(ctx) {
		return
	}
	if h.doneEpoch > 0 {
		h.broadcastToken(ctx, tuple.Token{Epoch: h.doneEpoch, Kind: tuple.OneHop, From: h.cfg.ID})
	}
	switch {
	case h.awaiting:
		h.broadcastToken(ctx, tuple.Token{Epoch: h.pendingEp, Kind: tuple.OneHop, From: h.cfg.ID})
	case h.ucapArmed:
		h.broadcastToken(ctx, tuple.Token{Epoch: h.ucapEpoch, Kind: tuple.OneHop, From: h.cfg.ID})
	}
}
