package vision

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestImageAtSetBounds(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(2, 1, 9)
	if im.At(2, 1) != 9 {
		t.Fatal("Set/At round trip failed")
	}
	im.Set(-1, 0, 7) // must not panic
	im.Set(4, 0, 7)
	if im.At(-1, 0) != 0 || im.At(0, 3) != 0 {
		t.Fatal("out-of-bounds reads must be 0")
	}
}

func TestImageMarshalRoundTrip(t *testing.T) {
	im := Synthesize(SynthesizeOpts{W: 20, H: 10, Blobs: 2, Seed: 1})
	got, err := UnmarshalImage(im.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("dims %dx%d, want %dx%d", got.W, got.H, im.W, im.H)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d mismatch", i)
		}
	}
}

func TestUnmarshalImageCorrupt(t *testing.T) {
	if _, err := UnmarshalImage([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
	im := NewImage(4, 4)
	buf := im.Marshal()
	if _, err := UnmarshalImage(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
}

func TestImageClone(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, 5)
	c := im.Clone()
	c.Set(0, 0, 9)
	if im.At(0, 0) != 5 {
		t.Fatal("clone shares pixels")
	}
}

func TestByteSizeNil(t *testing.T) {
	var im *Image
	if im.ByteSize() != 0 {
		t.Fatal("nil image size must be 0")
	}
}

func TestSynthesizeCountRecoverable(t *testing.T) {
	for _, want := range []int{0, 1, 3, 7, 12} {
		im := Synthesize(SynthesizeOpts{W: 160, H: 120, Blobs: want, Seed: int64(want)})
		got := CountBlobs(im, 150, 4)
		if got != want {
			t.Fatalf("blobs=%d: counted %d", want, got)
		}
	}
}

func TestSynthesizeCapacityClamp(t *testing.T) {
	// Tiny image cannot fit 100 blobs; count must equal the clamped number
	// and not panic.
	im := Synthesize(SynthesizeOpts{W: 40, H: 40, Blobs: 100, Seed: 3})
	got := CountBlobs(im, 150, 4)
	if got == 0 || got > 100 {
		t.Fatalf("clamped count = %d", got)
	}
}

func TestBlobsGeometry(t *testing.T) {
	im := NewImage(20, 20)
	for y := 5; y < 9; y++ {
		for x := 3; x < 11; x++ {
			im.Set(x, y, 255)
		}
	}
	bs := Blobs(im, 200, 1)
	if len(bs) != 1 {
		t.Fatalf("blobs = %d", len(bs))
	}
	b := bs[0]
	if b.Area != 32 || b.Width() != 8 || b.Height() != 4 {
		t.Fatalf("blob = %+v", b)
	}
	if b.AspectRatio() != 2.0 {
		t.Fatalf("aspect = %v", b.AspectRatio())
	}
}

func TestBlobsMinArea(t *testing.T) {
	im := NewImage(10, 10)
	im.Set(1, 1, 255) // single speck
	for y := 5; y < 8; y++ {
		for x := 5; x < 8; x++ {
			im.Set(x, y, 255)
		}
	}
	if got := CountBlobs(im, 200, 2); got != 1 {
		t.Fatalf("minArea filter: got %d blobs, want 1", got)
	}
	if got := CountBlobs(im, 200, 1); got != 2 {
		t.Fatalf("without filter: got %d blobs, want 2", got)
	}
}

func TestBlobsLShapeConnectivity(t *testing.T) {
	// An L-shape must be one component under 4-connectivity.
	im := NewImage(10, 10)
	for y := 0; y < 5; y++ {
		im.Set(2, y, 255)
	}
	for x := 2; x < 7; x++ {
		im.Set(x, 4, 255)
	}
	if got := CountBlobs(im, 200, 1); got != 1 {
		t.Fatalf("L-shape split into %d components", got)
	}
}

func TestBlobsDiagonalNotConnected(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(0, 0, 255)
	im.Set(1, 1, 255)
	if got := CountBlobs(im, 200, 1); got != 2 {
		t.Fatalf("diagonal pixels merged: %d components", got)
	}
}

func TestBandPass(t *testing.T) {
	im := NewImage(3, 1)
	im.Set(0, 0, 10)
	im.Set(1, 0, 100)
	im.Set(2, 0, 250)
	out := BandPass(im, 50, 200)
	if out.At(0, 0) != 0 || out.At(1, 0) != 100 || out.At(2, 0) != 0 {
		t.Fatalf("band pass wrong: %v", out.Pix)
	}
}

func TestStationaryBright(t *testing.T) {
	// A "light" at (2,2) in all frames; a "car" moving along x.
	var frames []*Image
	for i := 0; i < 5; i++ {
		f := NewImage(10, 5)
		f.Set(2, 2, 255)   // stationary light
		f.Set(3+i, 4, 255) // moving object
		frames = append(frames, f)
	}
	mask, err := StationaryBright(frames, 200, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if mask.At(2, 2) != 255 {
		t.Fatal("stationary light filtered out")
	}
	for i := 0; i < 5; i++ {
		if mask.At(3+i, 4) != 0 {
			t.Fatal("moving object survived motion filter")
		}
	}
	if got := CountBlobs(mask, 200, 1); got != 1 {
		t.Fatalf("mask blob count = %d", got)
	}
}

func TestStationaryBrightErrors(t *testing.T) {
	if _, err := StationaryBright(nil, 200, 0.5); err == nil {
		t.Fatal("empty frame list accepted")
	}
	frames := []*Image{NewImage(2, 2), NewImage(3, 2)}
	if _, err := StationaryBright(frames, 200, 0.5); err == nil {
		t.Fatal("mismatched frame sizes accepted")
	}
}

func TestFilterByShape(t *testing.T) {
	blobs := []Blob{
		{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, // ratio 1
		{MinX: 0, MinY: 0, MaxX: 9, MaxY: 1}, // ratio 5
	}
	out := FilterByShape(blobs, 0.5, 2)
	if len(out) != 1 || out[0].AspectRatio() != 1 {
		t.Fatalf("shape filter = %+v", out)
	}
}

// Property: synthesized images always yield exactly the requested blob
// count (when within capacity) across random sizes and seeds.
func TestQuickSynthesizeCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		want := r.Intn(6)
		im := Synthesize(SynthesizeOpts{W: 120 + r.Intn(80), H: 100 + r.Intn(60), Blobs: want, Seed: seed})
		return CountBlobs(im, 150, 4) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: blob areas sum to the number of above-threshold pixels when
// minArea = 1.
func TestQuickBlobAreaConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		im := NewImage(20, 20)
		bright := 0
		for i := range im.Pix {
			if r.Intn(4) == 0 {
				im.Pix[i] = 255
				bright++
			}
		}
		total := 0
		for _, b := range Blobs(im, 200, 1) {
			total += b.Area
		}
		return total == bright
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountBlobs(b *testing.B) {
	im := Synthesize(SynthesizeOpts{W: 320, H: 240, Blobs: 20, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CountBlobs(im, 150, 4)
	}
}
