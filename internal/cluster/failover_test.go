package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/placement"
	"meteorshower/internal/spe"
)

// chainApp builds S -> A -> K: A is a single-input interior operator, the
// shape active-standby replication protects.
func chainApp(col *metrics.Collector, reg *sinkRegistry) AppSpec {
	g := graph.New()
	for _, id := range []string{"S", "A", "K"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("S", "A")
	g.MustAddEdge("A", "K")
	return AppSpec{
		Name:  "chain",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id {
			case "S":
				return []operator.Operator{operator.NewRateSource("S", 3, 7, operator.BytePayload(16, 4))}
			case "A":
				return []operator.Operator{operator.NewPassthrough("A", 1)}
			default:
				s := operator.NewSink("K", col)
				s.TrackIdentity = true
				reg.set(s)
				return []operator.Operator{s}
			}
		},
	}
}

func newChainCluster(t *testing.T, nodes, perRack int) (*Cluster, *metrics.Collector, *sinkRegistry) {
	t.Helper()
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:           chainApp(col, reg),
		Scheme:        spe.MSSrcAP,
		Nodes:         nodes,
		NodesPerRack:  perRack,
		Placement:     placement.RackSpread{},
		LocalDiskSpec: local,
		SharedSpec:    shared,
		TickEvery:     time.Millisecond,
		SourceFlush:   256,
		Seed:          1,
		Metrics:       col,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, col, reg
}

func TestProtectHAUValidation(t *testing.T) {
	cl, _, _ := newTestCluster(t, spe.MSSrcAP, 3) // S0,S1 -> M -> K
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := cl.ProtectHAU(ctx, "M"); err == nil {
		t.Fatal("protect before Start accepted")
	}
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	if _, err := cl.ProtectHAU(ctx, "M"); err == nil {
		t.Fatal("two-input operator accepted")
	}
	if _, err := cl.ProtectHAU(ctx, "S0"); err == nil {
		t.Fatal("source accepted")
	}
	if _, err := cl.ProtectHAU(ctx, "K"); err == nil {
		t.Fatal("sink accepted")
	}
	if _, err := cl.ProtectHAU(ctx, "nope"); err == nil {
		t.Fatal("unknown HAU accepted")
	}
}

func TestProtectHAURejectsBaselineAndShedding(t *testing.T) {
	cl, _, _ := newTestCluster(t, spe.Baseline, 3)
	ctx := context.Background()
	if _, err := cl.ProtectHAU(ctx, "M"); err == nil {
		t.Fatal("baseline scheme accepted")
	}
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	shedCl, err := New(Config{
		App:           chainApp(col, reg),
		Scheme:        spe.MSSrcAP,
		Nodes:         3,
		LocalDiskSpec: local,
		SharedSpec:    shared,
		TickEvery:     time.Millisecond,
		SourceFlush:   256,
		ShedWatermark: 0.9,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shedCl.ProtectHAU(ctx, "A"); err == nil {
		t.Fatal("load shedding accepted")
	}
}

// protectStreaming starts a chain cluster, waits for flow, and arms A.
func protectStreaming(t *testing.T, nodes, perRack int) (*Cluster, *metrics.Collector, *sinkRegistry, ProtectStats, context.Context) {
	t.Helper()
	cl, col, reg := newChainCluster(t, nodes, perRack)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 50
	})
	stats, err := cl.ProtectHAU(ctx, "A")
	if err != nil {
		t.Fatalf("ProtectHAU: %v", err)
	}
	return cl, col, reg, stats, ctx
}

// TestStandbySuppressed is the satellite-2 regression: an armed standby
// executes the stream (its ring fills) but emits ZERO tuples downstream —
// the identity-tracking sink would report every leaked tuple as a
// duplicate violation.
func TestStandbySuppressed(t *testing.T) {
	cl, _, reg, stats, _ := protectStreaming(t, 4, 2)
	if stats.CloneBytes <= 0 || stats.Drain <= 0 {
		t.Fatalf("implausible protect stats: %+v", stats)
	}
	if !cl.Protected("A") {
		t.Fatal("A not marked protected")
	}
	sb := cl.StandbyHAU("A")
	if sb == nil || !sb.Standby() {
		t.Fatal("no suppressed standby incarnation")
	}
	// Let both incarnations process the same stream for a while.
	before := reg.get().Delivered()
	waitFor(t, 5*time.Second, "deliveries with standby armed", func() bool {
		return reg.get().Delivered() > before+200
	})
	waitFor(t, 5*time.Second, "standby executed the mirrored stream", func() bool {
		return sb.RingTuples() > 0
	})
	cl.StopAll()
	rep := reg.get().Report()
	if v := rep.TotalViolations(); v != 0 {
		t.Fatalf("standby leaked output downstream:\n%s", rep)
	}
}

// TestFailoverExactlyOnce kills the protected primary's node and promotes
// the standby: the stream must resume through the promoted incarnation
// with exactly-once delivery — the ring re-emission overlaps what the
// dead primary already delivered, and downstream dedup must drop exactly
// that overlap.
func TestFailoverExactlyOnce(t *testing.T) {
	cl, col, reg, _, ctx := protectStreaming(t, 4, 2)
	sbNode, ok := cl.StandbyNodeOf("A")
	if !ok {
		t.Fatal("no standby node")
	}
	pNode := cl.NodeOf("A")
	if sbNode == pNode {
		t.Fatalf("standby co-located with primary on node %d", pNode)
	}
	if cl.topo.RackOf(sbNode) == cl.topo.RackOf(pNode) {
		t.Fatalf("standby rack %d == primary rack %d", cl.topo.RackOf(sbNode), cl.topo.RackOf(pNode))
	}

	if _, err := cl.FailoverHAU(ctx, "A"); err == nil {
		t.Fatal("failover with a live primary accepted")
	}

	cl.KillNode(pNode)
	fstats, err := cl.FailoverHAU(ctx, "A")
	if err != nil {
		t.Fatalf("FailoverHAU: %v", err)
	}
	if fstats.From != pNode || fstats.To != sbNode {
		t.Fatalf("failover route %d->%d, want %d->%d", fstats.From, fstats.To, pNode, sbNode)
	}
	if cl.NodeOf("A") != sbNode {
		t.Fatalf("A on node %d after failover, want %d", cl.NodeOf("A"), sbNode)
	}
	if cl.Protected("A") {
		t.Fatal("A still marked protected after promotion consumed the standby")
	}
	// The stream must keep flowing through the promoted incarnation.
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-failover deliveries", func() bool {
		return reg.get().Delivered() > after+200
	})
	cl.StopAll()
	rep := reg.get().Report()
	if v := rep.TotalViolations(); v != 0 {
		t.Fatalf("exactly-once violated across promotion:\n%s", rep)
	}
	fos := col.Failovers()
	if len(fos) != 1 || fos[0].HAU != "A" || fos[0].From != pNode || fos[0].To != sbNode {
		t.Fatalf("metrics failovers = %+v, want one record for A", fos)
	}
}

// TestFailoverAfterQuiet promotes a standby whose primary delivered output
// the standby still holds suppressed: the stream is stopped from flowing
// new tuples first (kill the source node too would break the upstream —
// instead just verify ring overlap was re-emitted and deduped in the
// streaming test above; here assert the ring counter resets on promote).
func TestFailoverRingReset(t *testing.T) {
	cl, _, reg, _, ctx := protectStreaming(t, 4, 2)
	sb := cl.StandbyHAU("A")
	waitFor(t, 5*time.Second, "ring fills", func() bool { return sb.RingTuples() > 0 })
	cl.KillNode(cl.NodeOf("A"))
	if _, err := cl.FailoverHAU(ctx, "A"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "ring drained by promotion", func() bool {
		return sb.RingTuples() == 0 && !sb.Standby()
	})
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-promotion flow", func() bool {
		return reg.get().Delivered() > after+50
	})
	cl.StopAll()
	if v := reg.get().Report().TotalViolations(); v != 0 {
		t.Fatal("exactly-once violated")
	}
}

// TestDemoteHAU disarms protection: the standby stops, the tee drops, the
// primary streams on undisturbed, and the HAU is migratable again.
func TestDemoteHAU(t *testing.T) {
	cl, _, reg, _, ctx := protectStreaming(t, 4, 2)
	if err := cl.DemoteHAU("A"); err != nil {
		t.Fatalf("DemoteHAU: %v", err)
	}
	if cl.Protected("A") {
		t.Fatal("still protected after demote")
	}
	if err := cl.DemoteHAU("A"); err == nil {
		t.Fatal("double demote accepted")
	}
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-demote deliveries", func() bool {
		return reg.get().Delivered() > after+100
	})
	// Unpinned again: migration must work.
	from := cl.NodeOf("A")
	dest := (from + 1) % 4
	if _, err := cl.MigrateHAU(ctx, "A", dest); err != nil {
		t.Fatalf("MigrateHAU after demote: %v", err)
	}
	cl.StopAll()
	if v := reg.get().Report().TotalViolations(); v != 0 {
		t.Fatal("exactly-once violated across demote+migrate")
	}
}

// TestProtectPinsNeighbours: while A is protected, neither A nor its
// tee-carrying upstream S (nor downstream K) may migrate or rescale, and
// nodes hosting the pair refuse to drain.
func TestProtectPinsNeighbours(t *testing.T) {
	cl, _, _, _, ctx := protectStreaming(t, 4, 2)
	defer cl.StopAll()
	for _, id := range []string{"S", "A", "K"} {
		dest := (cl.NodeOf(id) + 1) % 4
		if _, err := cl.MigrateHAU(ctx, id, dest); err == nil {
			t.Fatalf("migration of %q accepted while A is protected", id)
		}
	}
	if _, err := cl.ProtectHAU(ctx, "A"); err == nil {
		t.Fatal("double protect accepted")
	}
	sbNode, _ := cl.StandbyNodeOf("A")
	if cl.CanDrain(sbNode) {
		t.Fatal("standby host reported drainable")
	}
	if cl.CanDrain(cl.NodeOf("A")) {
		t.Fatal("protected primary's host reported drainable")
	}
}

// TestHybridRecoverRollsBackUnprotected: when the dead set includes an
// unprotected HAU, HybridRecover must fall back to whole-app rollback.
func TestHybridRecoverRollsBackUnprotected(t *testing.T) {
	cl, _, reg, _, ctx := protectStreaming(t, 4, 2)
	cl.Controller().TriggerCheckpoint()
	waitFor(t, 5*time.Second, "a complete checkpoint", func() bool {
		_, ok := cl.Catalog().MostRecentComplete()
		return ok
	})
	// Kill the sink's node: K is unprotected, so rollback must run even
	// though A's standby is armed (and is torn down by the rollback).
	cl.KillNode(cl.NodeOf("K"))
	n, rolledBack, err := cl.HybridRecover(ctx)
	if err != nil {
		t.Fatalf("HybridRecover: %v", err)
	}
	if n != 0 || !rolledBack {
		t.Fatalf("HybridRecover = (%d, %v), want rollback", n, rolledBack)
	}
	if cl.Protected("A") {
		t.Fatal("standby survived a whole-application rollback")
	}
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-rollback deliveries", func() bool {
		return reg.get().Delivered() > after+50
	})
	cl.StopAll()
	if v := reg.get().Report().TotalViolations(); v != 0 {
		t.Fatal("exactly-once violated across rollback with armed standby")
	}
}

// TestStandbyPlacementRackDisjoint is the satellite-3 cluster-level
// check: with >= 2 racks the standby must land outside the primary's
// rack; on a single-rack fleet protection still arms, co-racked, with a
// logged warning.
func TestStandbyPlacementRackDisjoint(t *testing.T) {
	cl, _, reg, stats, _ := protectStreaming(t, 4, 2)
	defer cl.StopAll()
	_ = reg
	if !stats.RackDisjoint {
		t.Fatalf("standby not rack-disjoint: %+v", stats)
	}
	if cl.topo.RackOf(stats.Standby) == cl.topo.RackOf(stats.Primary) {
		t.Fatal("standby co-racked with primary despite RackDisjoint=true")
	}
}

func TestStandbyPlacementSingleRackFallback(t *testing.T) {
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	var mu sync.Mutex
	var warnings []string
	cl, err := New(Config{
		App:           chainApp(col, reg),
		Scheme:        spe.MSSrcAP,
		Nodes:         3, // NodesPerRack 0: one rack
		LocalDiskSpec: local,
		SharedSpec:    shared,
		TickEvery:     time.Millisecond,
		SourceFlush:   256,
		Seed:          1,
		Logf: func(format string, args ...any) {
			mu.Lock()
			warnings = append(warnings, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 50
	})
	stats, err := cl.ProtectHAU(ctx, "A")
	if err != nil {
		t.Fatalf("ProtectHAU on single-rack fleet: %v", err)
	}
	if stats.RackDisjoint {
		t.Fatal("single-rack fleet reported rack-disjoint placement")
	}
	if stats.Standby == stats.Primary || stats.Standby < 0 {
		t.Fatalf("bad fallback placement: %+v", stats)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "rack") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no co-rack warning logged; warnings = %q", warnings)
	}
}

// TestFailoverAbortsWhenStandbyDead: the standby's node dying first must
// abort the promotion with ErrFailoverAborted so HybridRecover falls back
// to rollback.
func TestFailoverAbortsWhenStandbyDead(t *testing.T) {
	cl, _, reg, _, ctx := protectStreaming(t, 4, 2)
	sbNode, _ := cl.StandbyNodeOf("A")
	cl.Controller().TriggerCheckpoint()
	waitFor(t, 5*time.Second, "a complete checkpoint", func() bool {
		_, ok := cl.Catalog().MostRecentComplete()
		return ok
	})
	cl.KillNode(sbNode)
	cl.KillNode(cl.NodeOf("A"))
	_, err := cl.FailoverHAU(ctx, "A")
	if err == nil {
		t.Fatal("failover with a dead standby accepted")
	}
	// KillNode already tore the standby entry down, so the failure
	// surfaces as "not protected" — either way rollback heals it.
	if _, rolledBack, err := cl.HybridRecover(ctx); err != nil || !rolledBack {
		t.Fatalf("HybridRecover = (rolledBack=%v, err=%v), want rollback", rolledBack, err)
	}
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-rollback deliveries", func() bool {
		return reg.get().Delivered() > after+50
	})
	cl.StopAll()
	if v := reg.get().Report().TotalViolations(); v != 0 {
		t.Fatal("exactly-once violated")
	}
}

// TestDemoteRejectedWhenPrimaryDead: with the primary dead the standby is
// the only live copy of the state — demotion must be refused.
func TestDemoteRejectedWhenPrimaryDead(t *testing.T) {
	cl, _, _, _, ctx := protectStreaming(t, 4, 2)
	defer cl.StopAll()
	cl.KillNode(cl.NodeOf("A"))
	if err := cl.DemoteHAU("A"); err == nil {
		t.Fatal("demote of a dead primary's standby accepted")
	}
	if _, err := cl.FailoverHAU(ctx, "A"); err != nil {
		t.Fatalf("failover after rejected demote: %v", err)
	}
}

// TestFailoverSupersededByRecovery: a rollback racing the promotion must
// win — the failover aborts via the shared gen-counter contract.
func TestFailoverSupersededByRecovery(t *testing.T) {
	cl, _, _, _, ctx := protectStreaming(t, 4, 2)
	defer cl.StopAll()
	cl.Controller().TriggerCheckpoint()
	waitFor(t, 5*time.Second, "a complete checkpoint", func() bool {
		_, ok := cl.Catalog().MostRecentComplete()
		return ok
	})
	cl.KillNode(cl.NodeOf("A"))
	if _, err := cl.RecoverAllWithRetry(ctx, 10, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The rollback consumed the standby; a failover attempt now must not
	// find one.
	if _, err := cl.FailoverHAU(ctx, "A"); err == nil {
		t.Fatal("failover accepted after recovery superseded it")
	}
	if errors.Is(ErrFailoverAborted, ErrMigrationAborted) {
		t.Fatal("sentinels aliased")
	}
}
