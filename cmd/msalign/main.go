// Command msalign runs the alignment ablation and regenerates
// BENCH_unaligned.json: aligned (MS-src+ap) vs unaligned
// (MS-src+ap+unaligned) checkpoint completion on a fan-in consumer whose
// input edges carry a backlog in front of the epoch tokens.
//
// Grid: scheme x fan-in {1,4,16} x backpressure {off,on} x edge batch
// {8,32}. Each cell reports the trigger-to-completion wall clock, the
// HAU-observed token wait, the per-port alignment stall (aligned only)
// and the channel-log size (unaligned only), so the snapshot-size
// overhead of logging in-flight tuples is quantified per cell.
//
//	msalign          # full grid, writes BENCH_unaligned.json
//	msalign -out -   # print JSON to stdout instead
//	msalign -quick   # reduced grid (CI smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"meteorshower/internal/bench"
	"meteorshower/internal/spe"
)

func main() {
	var (
		out   = flag.String("out", "BENCH_unaligned.json", `output path; "-" prints to stdout`)
		quick = flag.Bool("quick", false, "reduced grid")
	)
	flag.Parse()

	fanins := []int{1, 4, 16}
	batches := []int{8, 32}
	backlog, epochs := 64, 5
	if *quick {
		fanins = []int{1, 16}
		batches = []int{32}
		backlog, epochs = 32, 2
	}

	doc := map[string]any{
		"benchmark": "unaligned",
		"unit_note": "complete_us is trigger -> checkpoint completion wall clock; under backpressure the " +
			"aligned scheme must process the whole edge backlog before its tokens, the unaligned " +
			"scheme snapshots at the arm instant and logs the backlog it overtakes (channel_kb)",
		"environment": map[string]any{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
		"regenerate":                      "go run ./cmd/msalign",
		"backlog_per_edge":                backlog,
		"payload_bytes":                   64,
		"backpressure_delay_us_per_tuple": 200,
	}

	fmt.Fprintln(os.Stderr, "== checkpoint completion: aligned vs unaligned ==")
	var grid []bench.AlignCell
	// complete_us indexed [backpressure][fanin][batch] per scheme for the headline.
	aligned := map[string]float64{}
	unaligned := map[string]float64{}
	for _, scheme := range []spe.Scheme{spe.MSSrcAP, spe.MSSrcAPU} {
		for _, fanin := range fanins {
			for _, bp := range []bool{false, true} {
				for _, batch := range batches {
					cell, err := bench.RunAlignCell(bench.AlignParams{
						Scheme: scheme, FanIn: fanin, Backpressure: bp,
						EdgeBatch: batch, Backlog: backlog, Epochs: epochs, Seed: 1,
					})
					if err != nil {
						fatal(err)
					}
					grid = append(grid, cell)
					key := fmt.Sprintf("bp=%v/fanin=%d/batch=%d", bp, fanin, batch)
					if scheme == spe.MSSrcAP {
						aligned[key] = cell.CompleteUs
					} else {
						unaligned[key] = cell.CompleteUs
					}
					fmt.Fprintf(os.Stderr,
						"  %-19s fanin=%2d bp=%-5v batch=%2d complete %9.1fus stallMax %8.1fus channel %7.1fKB\n",
						cell.Scheme, cell.FanIn, cell.Backpressure, cell.EdgeBatch,
						cell.CompleteUs, cell.StallMaxUs, cell.ChannelKB)
				}
			}
		}
	}
	doc["grid"] = grid

	// Headline: the scenario the scheme exists for — deep fan-in under
	// backpressure, where aligned completion is gated on consumer progress.
	hk := fmt.Sprintf("bp=true/fanin=%d/batch=32", fanins[len(fanins)-1])
	if aligned[hk] > 0 && unaligned[hk] > 0 {
		ratio := aligned[hk] / unaligned[hk]
		doc["headline"] = map[string]any{
			"cell":                   hk,
			"aligned_complete_us":    aligned[hk],
			"unaligned_complete_us":  unaligned[hk],
			"aligned_over_unaligned": round1(ratio),
		}
		fmt.Fprintf(os.Stderr, "headline %s: aligned %.0fus / unaligned %.0fus = %.1fx\n",
			hk, aligned[hk], unaligned[hk], ratio)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "msalign: %v\n", err)
	os.Exit(1)
}
