package elastic

import (
	"fmt"
	"time"
)

// Trigger is the windowed N-of-M decision engine. It is a pure state
// machine over derived utilization samples: Observe pushes one sample and
// returns a recommendation; Commit records that a recommendation was
// executed, starting the cooldown clock and clearing the window so the
// next decision is based on post-action evidence only. Not safe for
// concurrent use — the engine serializes calls.
type Trigger struct {
	cfg        Config
	window     []windowSample
	lastAction time.Time
	acted      bool
}

// windowSample is one observation's violation verdicts.
type windowSample struct {
	outViolated bool
	inViolated  map[int]bool // per schedulable node: under the scale-in floor
	cpu         map[int]float64
}

// NewTrigger returns a trigger with cfg's defaults applied.
func NewTrigger(cfg Config) *Trigger {
	return &Trigger{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (t *Trigger) Config() Config { return t.cfg }

// Observe pushes one fleet sample and returns a recommendation. fleet is
// the current number of non-retired nodes; utils carries one entry per
// node (retired nodes may be omitted).
func (t *Trigger) Observe(now time.Time, fleet int, utils []Util) Decision {
	return t.ObserveApps(now, fleet, utils, nil)
}

// ObserveApps is Observe plus per-application aggregate backlog: the sum
// of every app's queued tuples also counts against ScaleOutQueue, so two
// tenants each at 60% of the per-node threshold still trip scale-out
// together. A nil or single-entry apps slice degenerates to Observe.
func (t *Trigger) ObserveApps(now time.Time, fleet int, utils []Util, apps []AppStat) Decision {
	ws := windowSample{
		inViolated: make(map[int]bool),
		cpu:        make(map[int]float64),
	}
	var cpuSum float64
	sched := 0
	maxQueue := 0
	for _, u := range utils {
		if !u.Sched {
			continue
		}
		sched++
		cpuSum += u.CPU
		if u.Queue > maxQueue {
			maxQueue = u.Queue
		}
		ws.cpu[u.Node] = u.CPU
	}
	meanCPU := 0.0
	if sched > 0 {
		meanCPU = cpuSum / float64(sched)
	}
	// Capacity projection: a drain removes one node's share of capacity,
	// so a node may only count as a scale-in violation if the surviving
	// schedulable fleet would still sit below the scale-out threshold.
	// Without this, an overloaded fleet that just grew would hand its
	// fresh (still empty, therefore cold) node straight back and
	// oscillate.
	projected := sched > 1
	if projected && t.cfg.ScaleOutUtil > 0 {
		projected = cpuSum/float64(sched-1) < t.cfg.ScaleOutUtil
	}
	if projected && t.cfg.ScaleInUtil > 0 {
		for _, u := range utils {
			if u.Sched && u.Drainable &&
				u.CPU < t.cfg.ScaleInUtil && u.Queue <= t.cfg.ScaleOutQueue {
				ws.inViolated[u.Node] = true
			}
		}
	}
	if t.cfg.ScaleOutUtil > 0 && meanCPU > t.cfg.ScaleOutUtil {
		ws.outViolated = true
	}
	if t.cfg.ScaleOutQueue > 0 && maxQueue > t.cfg.ScaleOutQueue {
		ws.outViolated = true
	}
	if t.cfg.ScaleOutQueue > 0 && len(apps) > 1 {
		appQueue := 0
		for _, a := range apps {
			appQueue += a.Queue
		}
		if appQueue > t.cfg.ScaleOutQueue {
			ws.outViolated = true
		}
	}

	t.window = append(t.window, ws)
	if len(t.window) > t.cfg.Window {
		t.window = t.window[len(t.window)-t.cfg.Window:]
	}
	if len(t.window) < t.cfg.Window {
		return Decision{Kind: None, Reason: "window filling"}
	}

	outCount := 0
	inCounts := make(map[int]int)
	for _, s := range t.window {
		if s.outViolated {
			outCount++
		}
		for n := range s.inViolated {
			inCounts[n]++
		}
	}

	if outCount >= t.cfg.Violations &&
		(t.cfg.MaxNodes <= 0 || fleet < t.cfg.MaxNodes) &&
		t.cooled(now, t.cfg.CooldownOut) {
		return Decision{
			Kind: ScaleOut,
			Reason: fmt.Sprintf("%d/%d samples over threshold (mean cpu %.2f, max queue %d)",
				outCount, t.cfg.Window, meanCPU, maxQueue),
		}
	}

	if fleet > t.cfg.MinNodes && t.cooled(now, t.cfg.CooldownIn) {
		// Candidates: schedulable nodes cold in >= Violations of the last
		// Window samples, least-loaded (by latest CPU) first. The fleet
		// must stay above MinNodes after the drain.
		var cands []int
		for n, c := range inCounts {
			if c >= t.cfg.Violations {
				cands = append(cands, n)
			}
		}
		if len(cands) > 0 {
			latest := t.window[len(t.window)-1].cpu
			for i := 0; i < len(cands); i++ {
				for j := i + 1; j < len(cands); j++ {
					ci, cj := latest[cands[i]], latest[cands[j]]
					if cj < ci || (cj == ci && cands[j] < cands[i]) {
						cands[i], cands[j] = cands[j], cands[i]
					}
				}
			}
			return Decision{
				Kind:       ScaleIn,
				Candidates: cands,
				Reason: fmt.Sprintf("%d nodes under %.2f for %d/%d samples",
					len(cands), t.cfg.ScaleInUtil, t.cfg.Violations, t.cfg.Window),
			}
		}
	}
	return Decision{Kind: None}
}

// cooled reports whether at least d has passed since the last committed
// action (always true before the first action, or when d is zero).
func (t *Trigger) cooled(now time.Time, d time.Duration) bool {
	if !t.acted || d <= 0 {
		return true
	}
	return now.Sub(t.lastAction) >= d
}

// Commit records that a recommendation was executed: the cooldown clock
// restarts and the window is cleared so the next decision is grounded in
// post-action samples only.
func (t *Trigger) Commit(now time.Time) {
	t.lastAction = now
	t.acted = true
	t.window = t.window[:0]
}
