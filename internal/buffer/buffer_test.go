package buffer

import (
	"testing"
	"testing/quick"
	"time"

	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

func fastDisk() *storage.Disk {
	return storage.NewDisk(storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond, TimeScale: 0})
}

func fastStore() *storage.Store {
	return storage.NewStore(storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond, TimeScale: 0})
}

func mk(id uint64, payload int) *tuple.Tuple {
	return tuple.New(id, "S", "k", make([]byte, payload))
}

func TestPreserverAppendReplay(t *testing.T) {
	p := NewPreserver(1, 1<<20, fastDisk())
	for i := uint64(1); i <= 5; i++ {
		seq, err := p.Append(0, mk(i, 10))
		if err != nil {
			t.Fatal(err)
		}
		if seq != i {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	got, err := p.Replay(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != 3 {
		t.Fatalf("Replay(after=2) = %d tuples, first ID %d", len(got), got[0].ID)
	}
}

func TestPreserverTrim(t *testing.T) {
	p := NewPreserver(1, 1<<20, fastDisk())
	for i := uint64(1); i <= 10; i++ {
		p.Append(0, mk(i, 10))
	}
	p.Trim(0, 7)
	got, _ := p.Replay(0, 0)
	if len(got) != 3 || got[0].ID != 8 {
		t.Fatalf("after trim: %d tuples, first %d", len(got), got[0].ID)
	}
	if s := p.Stats(); s.Entries != 3 {
		t.Fatalf("Stats.Entries = %d", s.Entries)
	}
}

func TestPreserverTrimAll(t *testing.T) {
	p := NewPreserver(1, 1<<20, nil)
	p.Append(0, mk(1, 10))
	p.Trim(0, 99)
	if s := p.Stats(); s.Entries != 0 || s.MemBytes != 0 {
		t.Fatalf("Stats after full trim = %+v", s)
	}
}

func TestPreserverPortsIndependent(t *testing.T) {
	p := NewPreserver(2, 1<<20, nil)
	p.Append(0, mk(1, 10))
	p.Append(1, mk(2, 10))
	p.Append(1, mk(3, 10))
	p.Trim(0, 10)
	got0, _ := p.Replay(0, 0)
	got1, _ := p.Replay(1, 0)
	if len(got0) != 0 || len(got1) != 2 {
		t.Fatalf("port isolation broken: %d, %d", len(got0), len(got1))
	}
}

func TestPreserverBadPort(t *testing.T) {
	p := NewPreserver(1, 1<<20, nil)
	if _, err := p.Append(1, mk(1, 1)); err == nil {
		t.Fatal("out-of-range port accepted")
	}
	if _, err := p.Replay(-1, 0); err == nil {
		t.Fatal("negative port accepted")
	}
}

func TestPreserverSpill(t *testing.T) {
	disk := fastDisk()
	p := NewPreserver(1, 200, disk) // tiny cap
	// Each tuple ~ 88 header + 1 src + 1 key + 50 payload = 140 bytes.
	p.Append(0, mk(1, 50))
	if disk.Stats().BytesWritten != 0 {
		t.Fatal("spilled below cap")
	}
	p.Append(0, mk(2, 50))
	st := disk.Stats()
	if st.BytesWritten == 0 {
		t.Fatal("no spill above cap")
	}
	if s := p.Stats(); s.MemBytes != 0 || s.SpilledBytes == 0 {
		t.Fatalf("post-spill stats = %+v", s)
	}
	// Replaying spilled entries charges disk reads.
	before := disk.Stats().BytesRead
	got, _ := p.Replay(0, 0)
	if len(got) != 2 {
		t.Fatalf("replay after spill = %d tuples", len(got))
	}
	if disk.Stats().BytesRead <= before {
		t.Fatal("spilled replay did not charge disk reads")
	}
}

func TestPreserverCloneIsolation(t *testing.T) {
	p := NewPreserver(1, 1<<20, nil)
	orig := mk(1, 4)
	p.Append(0, orig)
	orig.Data[0] = 0xFF
	got, _ := p.Replay(0, 0)
	if got[0].Data[0] == 0xFF {
		t.Fatal("preserver shares payload with caller")
	}
}

func TestSourceLogAppendReplay(t *testing.T) {
	l := NewSourceLog("S0", fastStore(), 0) // flush every append
	for i := uint64(1); i <= 4; i++ {
		if err := l.Append(mk(i, 8)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.ReplaySince(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0].ID != 1 || got[3].ID != 4 {
		t.Fatalf("replay = %v tuples", len(got))
	}
}

func TestSourceLogEpochSegmentation(t *testing.T) {
	l := NewSourceLog("S0", fastStore(), 0)
	l.Append(mk(1, 8))
	l.BeginEpoch(1)
	l.Append(mk(2, 8))
	l.Append(mk(3, 8))
	got, _ := l.ReplaySince(1)
	if len(got) != 2 || got[0].ID != 2 {
		t.Fatalf("ReplaySince(1) = %d tuples first=%v", len(got), got[0].ID)
	}
	all, _ := l.ReplaySince(0)
	if len(all) != 3 {
		t.Fatalf("ReplaySince(0) = %d tuples", len(all))
	}
}

func TestSourceLogPrune(t *testing.T) {
	st := fastStore()
	l := NewSourceLog("S0", st, 0)
	l.Append(mk(1, 8))
	l.BeginEpoch(1)
	l.Append(mk(2, 8))
	l.Prune(1)
	if n := l.PreservedCount(); n != 1 {
		t.Fatalf("PreservedCount after prune = %d", n)
	}
	if keys := st.Keys("preserve/S0/"); len(keys) != 1 {
		t.Fatalf("store keys after prune = %v", keys)
	}
	got, _ := l.ReplaySince(0)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("replay after prune = %+v", got)
	}
}

func TestSourceLogGroupCommit(t *testing.T) {
	st := fastStore()
	l := NewSourceLog("S0", st, 1<<20) // huge flush threshold
	l.Append(mk(1, 8))
	l.Append(mk(2, 8))
	if st.Disk().Stats().Ops != 0 {
		t.Fatal("flushed before threshold")
	}
	// Replay must still see pending tuples (it flushes first).
	got, _ := l.ReplaySince(0)
	if len(got) != 2 {
		t.Fatalf("replay = %d tuples", len(got))
	}
	if st.Disk().Stats().Ops == 0 {
		t.Fatal("replay did not flush pending batch")
	}
}

func TestSourceLogStableWriteBeforeSend(t *testing.T) {
	st := fastStore()
	l := NewSourceLog("S0", st, 0)
	l.Append(mk(1, 8))
	// With flushBytes=0 the tuple must be on stable storage already.
	if len(st.Keys("preserve/S0/")) != 1 {
		t.Fatal("tuple not persisted before send")
	}
}

func TestSourceLogEpochQuery(t *testing.T) {
	l := NewSourceLog("S0", nil, 0)
	if l.Epoch() != 0 {
		t.Fatal("fresh log epoch != 0")
	}
	l.BeginEpoch(7)
	if l.Epoch() != 7 {
		t.Fatal("BeginEpoch not visible")
	}
}

// Property: replay(after) ∘ trim(k) never yields a tuple with seq <= k and
// preserves order.
func TestQuickPreserverTrimReplay(t *testing.T) {
	f := func(n uint8, trimAt uint8) bool {
		p := NewPreserver(1, 1<<20, nil)
		total := uint64(n%64) + 1
		for i := uint64(1); i <= total; i++ {
			p.Append(0, mk(i, 4))
		}
		k := uint64(trimAt) % (total + 1)
		p.Trim(0, k)
		got, err := p.Replay(0, 0)
		if err != nil {
			return false
		}
		if uint64(len(got)) != total-k {
			return false
		}
		for i, tp := range got {
			if tp.ID != k+uint64(i)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a source log replay returns exactly the tuples appended since
// the queried epoch, in order, regardless of flush threshold.
func TestQuickSourceLogReplayExact(t *testing.T) {
	f := func(n uint8, flushEvery uint8, epochSwitch uint8) bool {
		l := NewSourceLog("S", fastStore(), int64(flushEvery%5)*40)
		total := uint64(n%50) + 1
		sw := uint64(epochSwitch) % (total + 1)
		for i := uint64(1); i <= total; i++ {
			if i == sw+1 {
				if err := l.BeginEpoch(1); err != nil {
					return false
				}
			}
			if err := l.Append(mk(i, 4)); err != nil {
				return false
			}
		}
		since := uint64(0)
		want := total
		got, err := l.ReplaySince(since)
		if err != nil || uint64(len(got)) != want {
			return false
		}
		for i, tp := range got {
			if tp.ID != uint64(i)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
