package apps

import (
	"testing"
	"testing/quick"
	"time"

	"meteorshower/internal/operator"
	"meteorshower/internal/tuple"
	"meteorshower/internal/vision"
)

type capture struct {
	byPort map[int][]*tuple.Tuple
}

func newCapture() *capture { return &capture{byPort: make(map[int][]*tuple.Tuple)} }

func (c *capture) emit(port int, t *tuple.Tuple) { c.byPort[port] = append(c.byPort[port], t) }

func (c *capture) total() int {
	n := 0
	for _, ts := range c.byPort {
		n += len(ts)
	}
	return n
}

func posTuple(id uint64, key string, x, y float64, tsMS int64) *tuple.Tuple {
	t := tuple.New(id, "S0", key, Position{X: x, Y: y, TsMS: tsMS}.Encode())
	return t
}

func readingTuple(id uint64, key string, v float64, tsMS int64) *tuple.Tuple {
	return tuple.New(id, "S0", key, Reading{Value: v, TsMS: tsMS}.Encode())
}

func imageTuple(id uint64, key string, blobs int) *tuple.Tuple {
	im := vision.Synthesize(vision.SynthesizeOpts{W: 96, H: 64, Blobs: blobs, Seed: int64(id)})
	return tuple.New(id, "S0", key, im.Marshal())
}

func TestPayloadRoundTrips(t *testing.T) {
	p := Position{X: 1.5, Y: -2.25, TsMS: 42}
	got, err := DecodePosition(p.Encode())
	if err != nil || got != p {
		t.Fatalf("position: %+v, %v", got, err)
	}
	s := Speed{V: 3.5, RefSpeed: 50}
	gs, err := DecodeSpeed(s.Encode())
	if err != nil || gs != s {
		t.Fatalf("speed: %+v, %v", gs, err)
	}
	r := Reading{Value: 7, TsMS: 9}
	gr, err := DecodeReading(r.Encode())
	if err != nil || gr != r {
		t.Fatalf("reading: %+v, %v", gr, err)
	}
	if _, err := DecodePosition(nil); err == nil {
		t.Fatal("short position accepted")
	}
	if _, err := DecodeSpeed([]byte{1}); err == nil {
		t.Fatal("short speed accepted")
	}
	if _, err := DecodeReading([]byte{1}); err == nil {
		t.Fatal("short reading accepted")
	}
}

func TestPairOpComputesSpeed(t *testing.T) {
	p := NewPairOp("P0")
	c := newCapture()
	p.OnTuple(0, posTuple(1, "ph", 0, 0, 100), c.emit)
	if c.total() != 0 {
		t.Fatal("emitted speed from a single position")
	}
	// Moved 30,40 (=50 units) over 10 ms: speed 5.
	p.OnTuple(0, posTuple(2, "ph", 30, 40, 110), c.emit)
	if c.total() != 1 {
		t.Fatal("no speed emitted")
	}
	sp, err := DecodeSpeed(c.byPort[0][0].Data)
	if err != nil || sp.V != 5 {
		t.Fatalf("speed = %+v, %v", sp, err)
	}
	if c.byPort[0][0].Src != "P0" || c.byPort[0][0].ID != 1 {
		t.Fatal("derived tuple identity not stamped")
	}
}

func TestPairOpIgnoresStaleTimestamps(t *testing.T) {
	p := NewPairOp("P0")
	c := newCapture()
	p.OnTuple(0, posTuple(1, "ph", 0, 0, 100), c.emit)
	p.OnTuple(0, posTuple(2, "ph", 9, 9, 100), c.emit) // same ts
	if c.total() != 0 {
		t.Fatal("emitted speed for non-advancing timestamp")
	}
}

func TestPairOpSnapshotRestore(t *testing.T) {
	p := NewPairOp("P0")
	c := newCapture()
	p.OnTuple(0, posTuple(1, "ph", 0, 0, 100), c.emit)
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPairOp("P0")
	if err := p2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if p2.StateSize() != p.StateSize() {
		t.Fatal("state size changed across restore")
	}
	// The restored op pairs against the restored position.
	p2.OnTuple(0, posTuple(2, "ph", 30, 40, 110), c.emit)
	if c.total() != 1 {
		t.Fatal("restored pair op lost its last position")
	}
	if err := p2.Restore([]byte{1}); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

func TestRefSpeedOpRoutesByKey(t *testing.T) {
	m := NewRefSpeedOp("M0", 4)
	c := newCapture()
	sp := Speed{V: 1}
	for i := 0; i < 16; i++ {
		tu := tuple.New(uint64(i), "P0", "ph"+itoa(i%2), sp.Encode())
		m.OnTuple(0, tu, c.emit)
	}
	used := 0
	for _, ts := range c.byPort {
		if len(ts) > 0 {
			used++
		}
	}
	if used == 0 || used > 2 {
		t.Fatalf("2 keys landed on %d ports", used)
	}
	out, _ := DecodeSpeed(c.byPort[firstPort(c)][0].Data)
	if out.RefSpeed < 5 || out.RefSpeed > 95 {
		t.Fatalf("ref speed = %v", out.RefSpeed)
	}
}

func firstPort(c *capture) int {
	for p, ts := range c.byPort {
		if len(ts) > 0 {
			return p
		}
	}
	return -1
}

func TestKMeansOpSawtoothAndFlush(t *testing.T) {
	const win = int64(100 * time.Millisecond)
	a := NewKMeansOp("A0", 2, win, 1)
	c := newCapture()
	base := int64(1e9)
	for i := 0; i < 20; i++ {
		tu := tuple.New(uint64(i), "G0", "ph", Speed{V: float64(i % 4), RefSpeed: 30}.Encode())
		tu.Ts = base + int64(i)
		if err := a.OnTuple(0, tu, c.emit); err != nil {
			t.Fatal(err)
		}
	}
	if a.StateSize() == 0 || a.PoolLen() != 20 {
		t.Fatal("pool not accumulating")
	}
	// Before the window: no flush.
	a.OnTick(base+win/2, c.emit)
	if c.total() != 0 {
		t.Fatal("flushed early")
	}
	a.OnTick(base+win+1, c.emit)
	if c.total() != 2 {
		t.Fatalf("emitted %d clusters, want 2", c.total())
	}
	if a.StateSize() != 0 || a.PoolLen() != 0 {
		t.Fatal("pool not discarded after clustering — no sawtooth")
	}
}

func TestKMeansOpSnapshotRestore(t *testing.T) {
	a := NewKMeansOp("A0", 2, 1e9, 1)
	for i := 0; i < 5; i++ {
		tu := tuple.New(uint64(i), "G0", "ph", Speed{V: float64(i)}.Encode())
		a.OnTuple(0, tu, func(int, *tuple.Tuple) {})
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a2 := NewKMeansOp("A0", 2, 1e9, 1)
	if err := a2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if a2.PoolLen() != 5 || a2.StateSize() != a.StateSize() {
		t.Fatalf("restored pool %d size %d", a2.PoolLen(), a2.StateSize())
	}
}

func TestCountPeopleOp(t *testing.T) {
	op := NewCountPeopleOp("C0")
	c := newCapture()
	if err := op.OnTuple(0, imageTuple(1, "cam", 3), c.emit); err != nil {
		t.Fatal(err)
	}
	rd, err := DecodeReading(c.byPort[0][0].Data)
	if err != nil || rd.Value != 3 {
		t.Fatalf("count = %+v, %v", rd, err)
	}
	if err := op.OnTuple(0, tuple.New(2, "S", "cam", []byte{1}), c.emit); err == nil {
		t.Fatal("corrupt image accepted")
	}
}

func TestHistoryOpArrivalClears(t *testing.T) {
	h := NewHistoryOp("H0", 4)
	c := newCapture()
	for i := 0; i < 3; i++ {
		if err := h.OnTuple(0, imageTuple(uint64(i), "cam0", 2), c.emit); err != nil {
			t.Fatal(err)
		}
	}
	if h.FrameCount() != 3 || h.StateSize() == 0 {
		t.Fatal("history not accumulating")
	}
	if c.total() != 0 {
		t.Fatal("emitted before arrival")
	}
	// 4th frame: bus arrives, history cleared, count emitted.
	if err := h.OnTuple(0, imageTuple(3, "cam0", 2), c.emit); err != nil {
		t.Fatal(err)
	}
	if h.FrameCount() != 0 || h.StateSize() != 0 {
		t.Fatal("history not cleared on arrival")
	}
	if c.total() != 1 {
		t.Fatal("no count emitted on arrival")
	}
}

func TestHistoryOpPerCameraIsolation(t *testing.T) {
	h := NewHistoryOp("H0", 4)
	c := newCapture()
	for i := 0; i < 4; i++ {
		h.OnTuple(0, imageTuple(uint64(i), "cam0", 1), c.emit)
	}
	h.OnTuple(0, imageTuple(9, "cam1", 1), c.emit)
	if h.FrameCount() != 1 {
		t.Fatalf("cam1 history affected by cam0 arrival: %d frames", h.FrameCount())
	}
}

func TestHistoryOpSnapshotRestore(t *testing.T) {
	h := NewHistoryOp("H0", 10)
	c := newCapture()
	for i := 0; i < 3; i++ {
		h.OnTuple(0, imageTuple(uint64(i), "cam0", 1), c.emit)
	}
	snap, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHistoryOp("H0", 10)
	if err := h2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if h2.FrameCount() != 3 || h2.StateSize() != h.StateSize() {
		t.Fatalf("restored: %d frames, %d bytes", h2.FrameCount(), h2.StateSize())
	}
}

func TestEMAPredictOp(t *testing.T) {
	e := NewEMAPredictOp("B0", 0.5)
	c := newCapture()
	e.OnTuple(0, readingTuple(1, "bus", 10, 1), c.emit)
	e.OnTuple(0, readingTuple(2, "bus", 20, 2), c.emit)
	v, ok := e.Prediction("bus")
	if !ok || v != 15 { // 0.5*20 + 0.5*10
		t.Fatalf("ema = %v, %v", v, ok)
	}
	if c.total() != 2 {
		t.Fatal("predictions not emitted")
	}
	snap, _ := e.Snapshot()
	e2 := NewEMAPredictOp("B0", 0.5)
	if err := e2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := e2.Prediction("bus"); v != 15 {
		t.Fatal("ema lost in restore")
	}
}

func TestRangeFilterOp(t *testing.T) {
	f := NewRangeFilterOp("N0", 0, 60, 2)
	c := newCapture()
	f.OnTuple(0, readingTuple(1, "bus", 30, 1), c.emit)
	f.OnTuple(0, readingTuple(2, "bus", 500, 2), c.emit) // noise
	if len(c.byPort[0]) != 1 || len(c.byPort[1]) != 1 {
		t.Fatalf("fanout filter: %d/%d", len(c.byPort[0]), len(c.byPort[1]))
	}
}

func TestCombineOp(t *testing.T) {
	j := NewCombineOp("J0", func(a, b float64) float64 { return a - b })
	c := newCapture()
	j.OnTuple(0, readingTuple(1, "bus", 10, 1), c.emit)
	if c.total() != 0 {
		t.Fatal("combined with missing side")
	}
	j.OnTuple(1, readingTuple(2, "bus", 4, 2), c.emit)
	if c.total() != 1 {
		t.Fatal("no combination emitted")
	}
	rd, _ := DecodeReading(c.byPort[0][0].Data)
	if rd.Value != 6 { // 10 - 4, port order preserved
		t.Fatalf("combined = %v", rd.Value)
	}
	if err := j.OnTuple(2, readingTuple(3, "bus", 1, 3), c.emit); err == nil {
		t.Fatal("port 2 accepted")
	}
	snap, _ := j.Snapshot()
	j2 := NewCombineOp("J0", func(a, b float64) float64 { return a - b })
	if err := j2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if j2.StateSize() != j.StateSize() {
		t.Fatal("combine state lost")
	}
}

func TestFrameDispatchOp(t *testing.T) {
	d := NewFrameDispatchOp("D0", 4, 4)
	c := newCapture()
	for i := 0; i < 12; i++ {
		d.OnTuple(0, imageTuple(uint64(i), "cam"+itoa(i%3), 1), c.emit)
	}
	if len(c.byPort[4]) != 12 {
		t.Fatalf("history copy port got %d, want 12", len(c.byPort[4]))
	}
	routed := 0
	for p := 0; p < 4; p++ {
		routed += len(c.byPort[p])
	}
	if routed != 12 {
		t.Fatalf("routed %d, want 12", routed)
	}
	// Same key always lands on the same worker.
	d2 := NewFrameDispatchOp("D1", 4, -1)
	c2 := newCapture()
	for i := 0; i < 8; i++ {
		d2.OnTuple(0, imageTuple(uint64(i), "fixed", 1), c2.emit)
	}
	nonEmpty := 0
	for _, ts := range c2.byPort {
		if len(ts) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("one key split over %d workers", nonEmpty)
	}
}

func TestBandAndShapeFilters(t *testing.T) {
	b := NewBandFilterOp("C0", 140, 255)
	s := NewShapeFilterOp("A0", 0.3, 3)
	c := newCapture()
	if err := b.OnTuple(0, imageTuple(1, "x", 2), c.emit); err != nil {
		t.Fatal(err)
	}
	out := c.byPort[0][0]
	c2 := newCapture()
	if err := s.OnTuple(0, out, c2.emit); err != nil {
		t.Fatal(err)
	}
	im, err := vision.UnmarshalImage(c2.byPort[0][0].Data)
	if err != nil {
		t.Fatal(err)
	}
	// Square-ish synthetic lights must survive both filters.
	if got := vision.CountBlobs(im, 150, 4); got != 2 {
		t.Fatalf("blobs after filters = %d, want 2", got)
	}
}

func TestBandFilterSeenBounded(t *testing.T) {
	b := NewBandFilterOp("C0", 140, 255)
	b.MaxKeys = 32
	c := newCapture()
	// One hot camera, then a churn of one-off keys well past the cap.
	for i := 0; i < 100; i++ {
		if err := b.OnTuple(0, imageTuple(uint64(i), "hot", 1), c.emit); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4*b.MaxKeys; i++ {
		if err := b.OnTuple(0, imageTuple(uint64(1000+i), "cold"+itoa(i), 1), c.emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(b.seen) > b.MaxKeys {
		t.Fatalf("seen map grew to %d keys, cap %d", len(b.seen), b.MaxKeys)
	}
	if b.StateSize() > int64(b.MaxKeys)*(8+16) {
		t.Fatalf("StateSize %d not bounded", b.StateSize())
	}
	// The hot key survives decay with a reduced but nonzero count.
	hot := b.Seen("hot")
	if hot == 0 || hot >= 100 {
		t.Fatalf("hot key count = %d, want decayed nonzero below 100", hot)
	}
	// Snapshot/restore round-trips the decayed map exactly.
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewBandFilterOp("C0", 140, 255)
	if err := b2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(b2.seen) != len(b.seen) {
		t.Fatalf("restored %d keys, want %d", len(b2.seen), len(b.seen))
	}
	for k, v := range b.seen {
		if b2.seen[k] != v {
			t.Fatalf("restored seen[%q] = %d, want %d", k, b2.seen[k], v)
		}
	}
	if b2.StateSize() != b.StateSize() {
		t.Fatalf("restored StateSize %d, want %d", b2.StateSize(), b.StateSize())
	}
}

func TestMotionFilterOpDwellAndClear(t *testing.T) {
	m := NewMotionFilterOp("M0", 3)
	c := newCapture()
	for i := 0; i < 2; i++ {
		if err := m.OnTuple(0, imageTuple(100, "x0", 2), c.emit); err != nil {
			t.Fatal(err)
		}
	}
	if m.StateSize() == 0 || c.total() != 0 {
		t.Fatal("frames not preserved during dwell")
	}
	if err := m.OnTuple(0, imageTuple(100, "x0", 2), c.emit); err != nil {
		t.Fatal(err)
	}
	if m.StateSize() != 0 {
		t.Fatal("frames not discarded when vehicle left")
	}
	if c.total() != 1 {
		t.Fatal("no detection emitted")
	}
	// Identical frames: the stationary lights survive the intersection.
	rd, _ := DecodeReading(c.byPort[0][0].Data)
	if rd.Value != 2 {
		t.Fatalf("detected %v lights, want 2", rd.Value)
	}
}

func TestMotionFilterSnapshotRestore(t *testing.T) {
	m := NewMotionFilterOp("M0", 10)
	c := newCapture()
	for i := 0; i < 4; i++ {
		m.OnTuple(0, imageTuple(uint64(i), "x0", 1), c.emit)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMotionFilterOp("M0", 10)
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m2.StateSize() != m.StateSize() {
		t.Fatal("motion filter state lost")
	}
}

func TestVotingOp(t *testing.T) {
	v := NewVotingOp("V0", 3)
	c := newCapture()
	v.OnTuple(0, readingTuple(1, "x0", 2, 1), c.emit)
	v.OnTuple(0, readingTuple(2, "x0", 3, 2), c.emit)
	if c.total() != 0 {
		t.Fatal("voted before quorum")
	}
	v.OnTuple(0, readingTuple(3, "x0", 3, 3), c.emit)
	if c.total() != 1 {
		t.Fatal("no vote emitted at quorum")
	}
	rd, _ := DecodeReading(c.byPort[0][0].Data)
	if rd.Value != 3 {
		t.Fatalf("majority = %v, want 3", rd.Value)
	}
	if v.StateSize() != 0 {
		t.Fatal("votes not cleared")
	}
}

func TestVotingOpSnapshotRestore(t *testing.T) {
	v := NewVotingOp("V0", 5)
	c := newCapture()
	v.OnTuple(0, readingTuple(1, "x0", 2, 1), c.emit)
	v.OnTuple(0, readingTuple(2, "x1", 4, 2), c.emit)
	snap, _ := v.Snapshot()
	v2 := NewVotingOp("V0", 5)
	if err := v2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v2.StateSize() != v.StateSize() {
		t.Fatal("votes lost in restore")
	}
}

func TestSVMPredictOp(t *testing.T) {
	p := NewSVMPredictOp("P0", 3)
	c := newCapture()
	if err := p.OnTuple(0, readingTuple(1, "x0", 2, 15), c.emit); err != nil {
		t.Fatal(err)
	}
	rd, _ := DecodeReading(c.byPort[0][0].Data)
	if rd.Value != 1 && rd.Value != -1 {
		t.Fatalf("prediction = %v", rd.Value)
	}
	snap, _ := p.Snapshot()
	p2 := NewSVMPredictOp("P0", 3)
	if err := p2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	c2 := newCapture()
	p2.OnTuple(0, readingTuple(1, "x0", 2, 15), c2.emit)
	a, _ := DecodeReading(c.byPort[0][0].Data)
	b, _ := DecodeReading(c2.byPort[0][0].Data)
	if a.Value != b.Value {
		t.Fatal("restored model predicts differently")
	}
}

func TestIdentityStamping(t *testing.T) {
	id := identity{name: "op"}
	t1 := id.stamp(&tuple.Tuple{})
	t2 := id.stamp(&tuple.Tuple{})
	if t1.ID != 1 || t2.ID != 2 || t1.Src != "op" {
		t.Fatalf("stamps: %d %d %s", t1.ID, t2.ID, t1.Src)
	}
	snap := id.snapshot()
	id2 := identity{name: "op"}
	if err := id2.restore(snap); err != nil {
		t.Fatal(err)
	}
	if id2.stamp(&tuple.Tuple{}).ID != 3 {
		t.Fatal("identity counter not restored")
	}
}

// Property: PairOp snapshot/restore round-trips arbitrary phone maps.
func TestQuickPairOpRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		p := NewPairOp("P")
		for i := 0; i < int(n%30); i++ {
			p.OnTuple(0, posTuple(uint64(i), "ph"+itoa(i%7), float64(i), float64(i), int64(i)), func(int, *tuple.Tuple) {})
		}
		snap, err := p.Snapshot()
		if err != nil {
			return false
		}
		p2 := NewPairOp("P")
		if err := p2.Restore(snap); err != nil {
			return false
		}
		return p2.StateSize() == p.StateSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

var _ operator.Operator = (*PairOp)(nil)
var _ operator.Operator = (*RefSpeedOp)(nil)
var _ operator.Ticker = (*KMeansOp)(nil)
var _ operator.Operator = (*CountPeopleOp)(nil)
var _ operator.Operator = (*HistoryOp)(nil)
var _ operator.Operator = (*EMAPredictOp)(nil)
var _ operator.Operator = (*RangeFilterOp)(nil)
var _ operator.Operator = (*CombineOp)(nil)
var _ operator.Operator = (*FrameDispatchOp)(nil)
var _ operator.Operator = (*BandFilterOp)(nil)
var _ operator.Operator = (*ShapeFilterOp)(nil)
var _ operator.Operator = (*MotionFilterOp)(nil)
var _ operator.Operator = (*VotingOp)(nil)
var _ operator.Operator = (*SVMPredictOp)(nil)
