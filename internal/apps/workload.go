package apps

import (
	"math/rand"
	"sync"

	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/vision"
)

// SinkRef tracks the live sink instance of an application. Recovery
// replaces operator instances, so tests and benchmarks read the sink
// through this indirection.
type SinkRef struct {
	mu   sync.Mutex
	sink *operator.Sink
}

// Set installs the current sink instance.
func (r *SinkRef) Set(s *operator.Sink) {
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// Get returns the current sink instance (nil before the app is built).
func (r *SinkRef) Get() *operator.Sink {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink
}

// PositionPayload generates phone position reports for TMI: each source
// serves `phones` phones walking randomly; the report timestamp is the
// tuple id, which is strictly increasing per phone. pad appends raw call
// detail record bytes beyond the position fields (cell ids, signal
// metadata) — the paper's records are full anonymized CDRs, not bare
// coordinates, and preservation pays for the whole record.
func PositionPayload(srcIdx, phones, pad int) operator.PayloadFn {
	return func(id uint64, rng *rand.Rand) (string, []byte) {
		phone := "ph" + itoa(srcIdx) + "-" + itoa(int(id)%phones)
		pos := Position{
			X:    rng.Float64() * 1000,
			Y:    rng.Float64() * 1000,
			TsMS: int64(id),
		}
		data := pos.Encode()
		if pad > 0 {
			raw := make([]byte, pad)
			rng.Read(raw)
			data = append(data, raw...)
		}
		return phone, data
	}
}

// ImagePayload generates synthetic camera frames: w x h grayscale images
// with up to maxBlobs people/lights, keyed round-robin over `keys` cameras
// or intersections.
func ImagePayload(srcIdx, keys, w, h, maxBlobs int) operator.PayloadFn {
	return ImagePayloadPadded(srcIdx, keys, w, h, maxBlobs, 0)
}

// ImagePayloadPadded appends pad bytes of raw full-resolution frame after
// the analysis thumbnail: operators decode only the thumbnail, but the
// tuple carries (and preservation pays for) the whole frame — how a real
// vision pipeline ships frames alongside downsampled working copies.
func ImagePayloadPadded(srcIdx, keys, w, h, maxBlobs, pad int) operator.PayloadFn {
	return func(id uint64, rng *rand.Rand) (string, []byte) {
		key := "cam" + itoa(srcIdx) + "-" + itoa(int(id)%keys)
		im := vision.Synthesize(vision.SynthesizeOpts{
			W: w, H: h,
			Blobs:    rng.Intn(maxBlobs + 1),
			BlobSize: 4, // small blobs so modest frames fit MaxBlobs people
			Seed:     int64(id) ^ int64(srcIdx)<<32,
		})
		data := im.Marshal()
		if pad > 0 {
			raw := make([]byte, pad)
			rng.Read(raw)
			data = append(data, raw...)
		}
		return key, data
	}
}

// SensorPayload generates scalar sensor readings in [0, max) with
// occasional out-of-range noise (filtered by BCP's noise filter).
func SensorPayload(srcIdx, keys int, max float64) operator.PayloadFn {
	return func(id uint64, rng *rand.Rand) (string, []byte) {
		key := "bus" + itoa(srcIdx) + "-" + itoa(int(id)%keys)
		v := rng.Float64() * max
		if rng.Intn(20) == 0 {
			v = max * 10 // noise spike
		}
		return key, Reading{Value: v, TsMS: int64(id)}.Encode()
	}
}

// newSink builds the application sink wired to col and registered in ref.
func newSink(name string, col *metrics.Collector, ref *SinkRef, trackIdentity bool) *operator.Sink {
	s := operator.NewSink(name, col)
	s.TrackIdentity = trackIdentity
	if ref != nil {
		ref.Set(s)
	}
	return s
}
