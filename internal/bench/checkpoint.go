package bench

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"meteorshower/internal/cluster"
	"meteorshower/internal/graph"
	"meteorshower/internal/operator"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// This file measures the checkpoint datapath: the on-loop freeze window as
// a function of dirty bytes (incremental capture), the writer-side
// flatten/diff/IO phases, and whole-application restore at varying worker
// widths. Results regenerate BENCH_checkpoint.json via cmd/msckpt.

// benchState is one operator section of the benchmark HAU's state: a block
// of pseudo-random bytes implementing the incremental-snapshot fast path.
// The driver arms it from outside the loop; the next OnTick mutates a few
// bytes and marks the section dirty, so dirtiness is controlled per epoch
// with loop-ownership intact.
type benchState struct {
	operator.Base
	state   []byte
	rng     uint64
	armed   atomic.Bool
	dirty   bool
	snapped bool
	// restoreDelay models the data-structure reconstruction the paper's
	// recovery phase 3 measures (hash tables and indexes rebuilt from the
	// flat snapshot). The byte copy alone would make the restore-width
	// experiment measure allocator throughput on the bench host instead of
	// the per-HAU restore latency the worker pool overlaps.
	restoreDelay time.Duration
}

func newBenchState(name string, size int64, seed uint64) *benchState {
	o := &benchState{Base: operator.Base{OpName: name}, state: make([]byte, size), rng: seed | 1}
	for i := range o.state {
		o.rng = o.rng*6364136223846793005 + 1442695040888963407
		o.state[i] = byte(o.rng >> 56)
	}
	return o
}

func (o *benchState) OnTuple(_ int, _ *tuple.Tuple, _ operator.Emitter) error { return nil }

func (o *benchState) OnTick(_ int64, _ operator.Emitter) error {
	if o.armed.CompareAndSwap(true, false) {
		for k := 0; k < 16; k++ {
			o.rng = o.rng*6364136223846793005 + 1442695040888963407
			o.state[o.rng%uint64(len(o.state))]++
		}
		o.dirty = true
	}
	return nil
}

func (o *benchState) StateSize() int64 { return int64(len(o.state)) }

func (o *benchState) Snapshot() ([]byte, error) {
	return append([]byte(nil), o.state...), nil
}

// AppendSnapshot implements operator.IncrementalSnapshotter.
func (o *benchState) AppendSnapshot(buf []byte) ([]byte, bool, error) {
	if o.snapped && !o.dirty {
		return buf, false, nil
	}
	o.snapped, o.dirty = true, false
	return append(buf, o.state...), true, nil
}

func (o *benchState) Restore(b []byte) error {
	o.state = append(o.state[:0:0], b...)
	o.snapped = false
	if o.restoreDelay > 0 {
		time.Sleep(o.restoreDelay)
	}
	return nil
}

// ckptCapture forwards checkpoint breakdowns to the driving goroutine.
type ckptCapture struct {
	ch chan spe.CheckpointBreakdown
}

func (l *ckptCapture) CheckpointDone(_ string, _ uint64, b spe.CheckpointBreakdown) { l.ch <- b }
func (l *ckptCapture) TurningPoint(string, int64, int64, float64, bool)             {}
func (l *ckptCapture) Stopped(string, error)                                        {}

// CheckpointParams configures one cell of the checkpoint-cost grid.
type CheckpointParams struct {
	StateBytes int64
	DirtyFrac  float64 // fraction of sections mutated per epoch
	Ops        int     // state sections (0 = 100)
	Epochs     int     // measured epochs after the warmup full capture (0 = 8)
	Delta      bool    // enable block-delta checkpoint writes
	Seed       int64
}

// CheckpointCell is one measured grid cell; durations are per-epoch means
// in microseconds.
type CheckpointCell struct {
	StateKB   int64   `json:"state_kb"`
	DirtyFrac float64 `json:"dirty_frac"`
	Delta     bool    `json:"delta"`
	Epochs    int     `json:"epochs"`
	FreezeUs  float64 `json:"freeze_us"` // on-loop capture (Serialize)
	FlattenUs float64 `json:"flatten_us"`
	DiffUs    float64 `json:"diff_us"`
	DiskUs    float64 `json:"disk_us"`
	DirtyKB   float64 `json:"dirty_kb"`   // bytes re-encoded per epoch
	WrittenKB float64 `json:"written_kb"` // bytes written per epoch
}

// RunCheckpointCell drives a real MSSrcAP HAU through Epochs checkpoints,
// arming DirtyFrac of its state sections before each, and averages the
// breakdowns the HAU reports. The first (all-dirty) capture is excluded —
// it is the cold-start cost, not the steady state the freeze window is
// about.
func RunCheckpointCell(p CheckpointParams) (CheckpointCell, error) {
	if p.Ops <= 0 {
		p.Ops = 100
	}
	if p.Epochs <= 0 {
		p.Epochs = 8
	}
	blockSize := p.StateBytes / int64(p.Ops)
	if blockSize < 1 {
		blockSize = 1
	}
	states := make([]*benchState, p.Ops)
	ops := make([]operator.Operator, p.Ops)
	for i := range ops {
		s := newBenchState(fmt.Sprintf("b%d", i), blockSize, uint64(p.Seed)*1000003+uint64(i))
		states[i] = s
		ops[i] = s
	}
	lis := &ckptCapture{ch: make(chan spe.CheckpointBreakdown, 16)}
	cat := storage.NewCatalog(storage.NewStore(storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond}), []string{"B"})
	h, err := spe.New(spe.Config{
		ID:              "B",
		Scheme:          spe.MSSrcAP,
		Ops:             ops,
		Catalog:         cat,
		Listener:        lis,
		TickEvery:       100 * time.Microsecond,
		DeltaCheckpoint: p.Delta,
	})
	if err != nil {
		return CheckpointCell{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	defer func() { cancel(); <-h.Done() }()

	await := func() (spe.CheckpointBreakdown, error) {
		select {
		case b := <-lis.ch:
			return b, nil
		case <-time.After(30 * time.Second):
			return spe.CheckpointBreakdown{}, fmt.Errorf("bench: checkpoint stalled (%v)", h.Err())
		}
	}

	// Warmup epoch: everything is dirty on the first capture by contract.
	epoch := uint64(1)
	h.Command(spe.Command{Kind: spe.CmdCheckpoint, Epoch: epoch})
	if _, err := await(); err != nil {
		return CheckpointCell{}, err
	}

	nDirty := int(math.Ceil(p.DirtyFrac * float64(p.Ops)))
	if nDirty > p.Ops {
		nDirty = p.Ops
	}
	cell := CheckpointCell{
		StateKB:   p.StateBytes >> 10,
		DirtyFrac: p.DirtyFrac,
		Delta:     p.Delta,
		Epochs:    p.Epochs,
	}
	for e := 0; e < p.Epochs; e++ {
		for j := 0; j < nDirty; j++ {
			states[(e*nDirty+j)%p.Ops].armed.Store(true)
		}
		// Wait for the loop's ticker to consume every armed flag so the
		// mutation happens before the capture, on the loop goroutine.
		deadline := time.Now().Add(10 * time.Second)
		for {
			pending := false
			for j := 0; j < nDirty; j++ {
				if states[(e*nDirty+j)%p.Ops].armed.Load() {
					pending = true
					break
				}
			}
			if !pending {
				break
			}
			if time.Now().After(deadline) {
				return CheckpointCell{}, fmt.Errorf("bench: ticker never consumed dirty flags (%v)", h.Err())
			}
			time.Sleep(50 * time.Microsecond)
		}
		epoch++
		h.Command(spe.Command{Kind: spe.CmdCheckpoint, Epoch: epoch})
		b, err := await()
		if err != nil {
			return CheckpointCell{}, err
		}
		cell.FreezeUs += float64(b.Serialize.Microseconds())
		cell.FlattenUs += float64(b.Flatten.Microseconds())
		cell.DiffUs += float64(b.Diff.Microseconds())
		cell.DiskUs += float64(b.DiskIO.Microseconds())
		cell.DirtyKB += float64(b.DirtyBytes) / 1024
		cell.WrittenKB += float64(b.StateBytes) / 1024
	}
	n := float64(p.Epochs)
	cell.FreezeUs /= n
	cell.FlattenUs /= n
	cell.DiffUs /= n
	cell.DiskUs /= n
	cell.DirtyKB /= n
	cell.WrittenKB /= n
	return cell, nil
}

// RestoreParams configures the parallel-restore experiment: Width
// stateful HAUs (each carrying StateBytes across 16 sections, plus one
// source per chain) checkpointed once, killed, and recovered with each
// worker count in Workers.
type RestoreParams struct {
	Width      int
	StateBytes int64
	Workers    []int
	Trials     int // recoveries per width, best (min deserialize) kept (0 = 3)
	Seed       int64
	// RestorePerMB is the modelled reconstruction cost per MB of operator
	// state (0 = 500us/MB). Real systems rebuild hash tables and indexes
	// during deserialization; the model keeps the experiment about how the
	// worker pool overlaps that latency rather than about the bench host's
	// memcpy throughput.
	RestorePerMB time.Duration
}

// RestoreCell is one recovery run at a given worker width.
type RestoreCell struct {
	Workers       int     `json:"workers"`
	HAUs          int     `json:"haus"`
	DeserializeUs float64 `json:"deserialize_us"` // wall-clock phase 3
	TotalUs       float64 `json:"total_us"`
}

// RunRestoreWidth measures whole-application recovery wall-clock at each
// worker count. Every run uses a fresh cluster with an identical app and
// seed so the only variable is Config.RestoreWorkers.
func RunRestoreWidth(p RestoreParams) ([]RestoreCell, error) {
	if p.Width <= 0 {
		p.Width = 16
	}
	if p.RestorePerMB <= 0 {
		p.RestorePerMB = 500 * time.Microsecond
	}
	if len(p.Workers) == 0 {
		p.Workers = []int{1, 2, 4, 8, 16}
	}
	if p.Trials <= 0 {
		p.Trials = 3
	}
	// Discarded warmup: the first recovery pays one-time heap growth for
	// the blob working set, which would otherwise be billed to whichever
	// worker count runs first.
	if _, err := runRestoreOnce(p, p.Workers[0]); err != nil {
		return nil, err
	}
	var out []RestoreCell
	for _, w := range p.Workers {
		var best RestoreCell
		for trial := 0; trial < p.Trials; trial++ {
			cell, err := runRestoreOnce(p, w)
			if err != nil {
				return nil, err
			}
			if trial == 0 || cell.DeserializeUs < best.DeserializeUs {
				best = cell
			}
		}
		out = append(out, best)
	}
	return out, nil
}

func runRestoreOnce(p RestoreParams, workers int) (RestoreCell, error) {
	g := graph.New()
	for i := 0; i < p.Width; i++ {
		g.MustAddNode(fmt.Sprintf("S%d", i))
		g.MustAddNode(fmt.Sprintf("B%d", i))
		g.MustAddEdge(fmt.Sprintf("S%d", i), fmt.Sprintf("B%d", i))
	}
	perOp := p.StateBytes / 16
	app := cluster.AppSpec{
		Name:  "restore-bench",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			if id[0] == 'S' {
				return []operator.Operator{operator.NewRateSource(id, 1, 7, operator.BytePayload(16, 4))}
			}
			ops := make([]operator.Operator, 16)
			for i := range ops {
				s := newBenchState(fmt.Sprintf("%s-%d", id, i), perOp, uint64(p.Seed)*7919+uint64(i))
				if i == 0 {
					// One sleep per HAU, sized for the whole HAU's state,
					// keeps the modelled cost well above kernel timer
					// granularity.
					s.restoreDelay = time.Duration(float64(p.RestorePerMB) * float64(p.StateBytes) / float64(1<<20))
				}
				ops[i] = s
			}
			return ops
		},
	}
	fast := storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond}
	cl, err := cluster.New(cluster.Config{
		App:            app,
		Scheme:         spe.MSSrcAP,
		Nodes:          4,
		LocalDiskSpec:  fast,
		SharedSpec:     fast,
		TickEvery:      time.Millisecond,
		SourceFlush:    256,
		Seed:           p.Seed,
		RestoreWorkers: workers,
	})
	if err != nil {
		return RestoreCell{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		return RestoreCell{}, err
	}
	defer cl.StopAll()
	ep := cl.Controller().TriggerCheckpoint()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if e, ok := cl.Catalog().MostRecentComplete(); ok && e == ep {
			break
		}
		if time.Now().After(deadline) {
			return RestoreCell{}, fmt.Errorf("bench: epoch %d never completed", ep)
		}
		time.Sleep(time.Millisecond)
	}
	cl.KillAll()
	stats, err := cl.RecoverAll(ctx)
	if err != nil {
		return RestoreCell{}, err
	}
	return RestoreCell{
		Workers:       workers,
		HAUs:          stats.HAUs,
		DeserializeUs: float64(stats.Deserialize.Microseconds()),
		TotalUs:       float64(stats.Total().Microseconds()),
	}, nil
}
