package failure

import (
	"sort"
	"time"
)

// Availability analytics over a failure trace: given the events (each with
// affected nodes and a recovery duration), compute per-node downtime and
// cluster-level availability. This turns Table I's rates into the
// service-level numbers an operator cares about, and quantifies why
// 1-safety is not enough: a k-safe scheme masks events affecting <= k
// nodes, so its visible downtime shrinks as k grows — but only a scheme
// that survives whole-burst failures masks the rack and power events that
// dominate the trace.

// Interval is a closed-open downtime interval for some set of nodes.
type Interval struct {
	Start time.Duration
	End   time.Duration
	Nodes int // how many nodes were down
}

// NodeDowntime returns each node's total downtime over the horizon,
// overlapping events merged per node.
func NodeDowntime(events []Event, nNodes int, horizon time.Duration) []time.Duration {
	type iv struct{ s, e time.Duration }
	perNode := make([][]iv, nNodes)
	for _, ev := range events {
		end := ev.At + ev.Recovery
		if end > horizon {
			end = horizon
		}
		for _, n := range ev.Nodes {
			if n >= 0 && n < nNodes {
				perNode[n] = append(perNode[n], iv{ev.At, end})
			}
		}
	}
	out := make([]time.Duration, nNodes)
	for n, ivs := range perNode {
		if len(ivs) == 0 {
			continue
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
		curS, curE := ivs[0].s, ivs[0].e
		for _, v := range ivs[1:] {
			if v.s <= curE {
				if v.e > curE {
					curE = v.e
				}
				continue
			}
			out[n] += curE - curS
			curS, curE = v.s, v.e
		}
		out[n] += curE - curS
	}
	return out
}

// NodeAvailability returns mean per-node availability: 1 - downtime/horizon
// averaged over nodes.
func NodeAvailability(events []Event, nNodes int, horizon time.Duration) float64 {
	if nNodes == 0 || horizon <= 0 {
		return 0
	}
	down := NodeDowntime(events, nNodes, horizon)
	var total time.Duration
	for _, d := range down {
		total += d
	}
	return 1 - float64(total)/(float64(horizon)*float64(nNodes))
}

// ApplicationDowntime returns how long an application is unavailable under
// a fault-tolerance scheme that masks failures affecting at most
// maskableNodes nodes simultaneously. Any event larger than that takes the
// application down for the event's recovery duration (overlaps merged).
// maskableNodes = 1 models the classic 1-safe schemes the paper critiques;
// a large value models Meteor Shower's whole-application rollback, whose
// downtime is its recovery time instead (pass recoveryPerEvent).
func ApplicationDowntime(events []Event, maskableNodes int, recoveryPerEvent time.Duration, horizon time.Duration) time.Duration {
	type iv struct{ s, e time.Duration }
	var ivs []iv
	for _, ev := range events {
		var end time.Duration
		if len(ev.Nodes) > maskableNodes {
			end = ev.At + ev.Recovery // unmaskable: down until nodes return
		} else if recoveryPerEvent > 0 {
			end = ev.At + recoveryPerEvent // masked, but pay recovery time
		} else {
			continue
		}
		if end > horizon {
			end = horizon
		}
		if end > ev.At {
			ivs = append(ivs, iv{ev.At, end})
		}
	}
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var total time.Duration
	curS, curE := ivs[0].s, ivs[0].e
	for _, v := range ivs[1:] {
		if v.s <= curE {
			if v.e > curE {
				curE = v.e
			}
			continue
		}
		total += curE - curS
		curS, curE = v.s, v.e
	}
	total += curE - curS
	return total
}

// ApplicationAvailability is 1 - ApplicationDowntime/horizon.
func ApplicationAvailability(events []Event, maskableNodes int, recoveryPerEvent, horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	d := ApplicationDowntime(events, maskableNodes, recoveryPerEvent, horizon)
	return 1 - float64(d)/float64(horizon)
}
