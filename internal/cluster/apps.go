// Multi-tenancy: the app registry. A Cluster historically ran exactly one
// application (cfg.App); this file generalizes it to a registry of
// applications sharing the fleet. Each application keeps its own namespaced
// graph, checkpoint catalog, source logs, geometry journal, controller (its
// own checkpoint epochs and failure pings) and recovery generation — so one
// tenant's whole-application rollback never touches a co-tenant. The
// weighted fair-share arbiter (internal/tenant) plans bounded migrations
// that segregate tenants onto disjoint node sets sized by their fairness
// weights.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"meteorshower/internal/buffer"
	"meteorshower/internal/controller"
	"meteorshower/internal/graph"
	"meteorshower/internal/operator"
	"meteorshower/internal/partition"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
	"meteorshower/internal/tenant"
)

// appState is everything one application owns on the shared fleet. The
// immutable identity fields (spec, name, prefix, weight, graph, catalog,
// sourceLogs map identity, ctrl) are set before the state is published; the
// mutable fields (geom, gen, ctrlCancel) are guarded by cl.mu.
type appState struct {
	spec   AppSpec
	name   string
	prefix string // id namespace; "" for the legacy single-app cluster
	weight float64
	// graph is the spec's query network with every id namespaced by prefix.
	graph *graph.Graph
	// catalog tracks this application's checkpoint epochs on the shared
	// store. Blob keys embed namespaced HAU ids, so co-tenant catalogs
	// never collide.
	catalog *storage.Catalog
	// ctrl runs this application's checkpoint ticks and failure pings over
	// its own HAUs only — per-app failure detection is what makes recovery
	// isolation real. Fleet-wide loops (rebalance, elastic, HA, arbiter)
	// ride on the first app's controller.
	ctrl       *controller.Controller
	ctrlCancel context.CancelFunc
	sourceLogs map[string]*buffer.SourceLog
	// geom journals this application's partition geometry per commit epoch
	// (see geomEntry); gen counts this application's recoveries — the
	// per-app half of the opGuard abort contract.
	geom []geomEntry
	gen  uint64
}

// validateAppSpec rejects specs the registry cannot host.
func validateAppSpec(spec AppSpec, named bool) error {
	if spec.Graph == nil || spec.NewOperators == nil {
		return errors.New("cluster: incomplete app spec")
	}
	if named {
		if spec.Name == "" {
			return errors.New("cluster: multi-tenant apps need a name")
		}
		if strings.Contains(spec.Name, tenant.Sep) || strings.Contains(spec.Name, "~") {
			return fmt.Errorf("cluster: app name %q may not contain %q or %q", spec.Name, tenant.Sep, "~")
		}
	}
	if err := spec.Graph.Validate(); err != nil {
		return fmt.Errorf("cluster: app %q: %w", spec.Name, err)
	}
	return nil
}

// newAppState builds the per-app state for spec under the given id prefix
// ("" keeps bare ids — byte-compatible with every single-app checkpoint).
func (cl *Cluster) newAppState(spec AppSpec, prefix string) *appState {
	g := spec.Graph.Renamed(func(id string) string { return tenant.Qualify(prefix, id) })
	return &appState{
		spec:       spec,
		name:       spec.Name,
		prefix:     prefix,
		weight:     tenant.Spec{Name: spec.Name, Weight: spec.Weight}.NormWeight(),
		graph:      g,
		catalog:    storage.NewCatalog(cl.shared, g.Nodes()),
		sourceLogs: make(map[string]*buffer.SourceLog),
	}
}

// appCtrlCfg assembles the per-app controller configuration: the app's own
// sources, catalog and source logs, shared cadence and liveness plumbing.
// Fleet hooks are layered on by New for the first app only.
func (cl *Cluster) appCtrlCfg(a *appState) controller.Config {
	return controller.Config{
		Scheme:       cl.cfg.Scheme,
		Sources:      a.graph.Sources(),
		Catalog:      a.catalog,
		SourceLogs:   a.sourceLogs,
		Period:       cl.cfg.CkptPeriod,
		RetainEpochs: cl.cfg.RetainEpochs,
		IsAlive:      cl.hauAlive,
		Now:          cl.cfg.Now,
	}
}

// appsSnapshot copies the registry slice. Safe under cl.mu (lock order is
// cl.mu then appMu) or lock-free.
func (cl *Cluster) appsSnapshot() []*appState {
	cl.appMu.RLock()
	defer cl.appMu.RUnlock()
	return append([]*appState(nil), cl.apps...)
}

// appOf resolves the application owning HAU id by its namespace prefix.
// Bare ids (and any id whose prefix is unknown, e.g. a legacy single-app id
// that happens to contain the separator) resolve to the first app.
func (cl *Cluster) appOf(id string) *appState {
	cl.appMu.RLock()
	defer cl.appMu.RUnlock()
	if a := cl.appByPrefix[tenant.AppOf(id)]; a != nil {
		return a
	}
	return cl.apps[0]
}

// newOperators builds a fresh operator chain for incarnation id of app a.
// Namespaced apps see their local id (the spec never learns its prefix);
// the legacy unnamed app sees the id verbatim.
func (cl *Cluster) newOperators(a *appState, id string) []operator.Operator {
	if a.prefix == "" {
		return a.spec.NewOperators(id)
	}
	return a.spec.NewOperators(tenant.LocalID(id))
}

// incarnationsLocked returns every live incarnation id across all apps,
// graph order then replica order. Held lock: cl.mu.
func (cl *Cluster) incarnationsLocked() []string {
	var out []string
	for _, id := range cl.graph.Nodes() {
		out = append(out, cl.expandedLocked(id)...)
	}
	return out
}

// incarnationsOfLocked returns app a's live incarnation ids, graph order
// then replica order — a's catalog membership set. Held lock: cl.mu.
func (cl *Cluster) incarnationsOfLocked(a *appState) []string {
	var out []string
	for _, id := range a.graph.Nodes() {
		out = append(out, cl.expandedLocked(id)...)
	}
	return out
}

// deadOfLocked returns app a's incarnations whose node is dead or that have
// no placement. Held lock: cl.mu.
func (cl *Cluster) deadOfLocked(a *appState) []string {
	var out []string
	for _, id := range a.graph.Nodes() {
		for _, inc := range cl.expandedLocked(id) {
			n, ok := cl.hauNode[inc]
			if !ok || !cl.nodes[n].alive.Load() {
				out = append(out, inc)
			}
		}
	}
	return out
}

// deadHAUsOf is deadOfLocked with locking — the per-app failure probe the
// quiesce/drain guards poll so a co-tenant's failure never aborts this
// app's operation.
func (cl *Cluster) deadHAUsOf(a *appState) []string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.deadOfLocked(a)
}

// AppNames lists the registered applications in registry order.
func (cl *Cluster) AppNames() []string {
	cl.appMu.RLock()
	defer cl.appMu.RUnlock()
	out := make([]string, len(cl.apps))
	for i, a := range cl.apps {
		out[i] = a.name
	}
	return out
}

// AppOfHAU returns the name of the application owning HAU id.
func (cl *Cluster) AppOfHAU(id string) string { return cl.appOf(id).name }

// AppController exposes the controller of the named application (nil for an
// unknown name). Tests drive per-app checkpoint epochs through it.
func (cl *Cluster) AppController(name string) *controller.Controller {
	cl.appMu.RLock()
	defer cl.appMu.RUnlock()
	for _, a := range cl.apps {
		if a.name == name {
			return a.ctrl
		}
	}
	return nil
}

// AppCatalog exposes the checkpoint catalog of the named application.
func (cl *Cluster) AppCatalog(name string) *storage.Catalog {
	cl.appMu.RLock()
	defer cl.appMu.RUnlock()
	for _, a := range cl.apps {
		if a.name == name {
			return a.catalog
		}
	}
	return nil
}

// ProcessedOf sums ProcessedCount over the named application's live HAUs —
// the per-tenant throughput numerator.
func (cl *Cluster) ProcessedOf(name string) uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var n uint64
	for id, h := range cl.haus {
		if cl.appOf(id).name == name {
			n += h.ProcessedCount()
		}
	}
	return n
}

// ArbiterShares returns the fair shares the arbiter computed on its latest
// step (app name -> fraction of fleet capacity); nil before the first step
// or when arbitration is off.
func (cl *Cluster) ArbiterShares() map[string]float64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.lastShares == nil {
		return nil
	}
	out := make(map[string]float64, len(cl.lastShares))
	for k, v := range cl.lastShares {
		out[k] = v
	}
	return out
}

// SetAppFailureHandler installs per-app failure callbacks: when an
// application's own ping loop detects dead HAUs, fn receives that app's
// name and the dead ids. Co-tenants keep running — the caller typically
// responds with RecoverApp(ctx, app), not a fleet-wide rollback.
func (cl *Cluster) SetAppFailureHandler(fn func(app string, dead []string)) {
	for _, a := range cl.appsSnapshot() {
		a := a
		a.ctrl.SetOnFailure(func(dead []string) { fn(a.name, dead) })
	}
}

// AddApp registers a new application on a running (or not-yet-started)
// fleet: its graph is namespaced and unioned into the cluster topology, a
// controller is created (and started when the fleet's controllers already
// run), its HAUs are placed by the active policy and started when the
// cluster is live. Weights take effect on the arbiter's next step.
func (cl *Cluster) AddApp(ctx context.Context, spec AppSpec) error {
	if err := validateAppSpec(spec, true); err != nil {
		return err
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.appMu.RLock()
	dup := cl.appByPrefix[spec.Name] != nil
	for _, a := range cl.apps {
		if a.name == spec.Name {
			dup = true
		}
	}
	cl.appMu.RUnlock()
	if dup {
		return fmt.Errorf("cluster: app %q already registered", spec.Name)
	}
	a := cl.newAppState(spec, spec.Name)
	union, err := graph.Union(cl.graph, a.graph)
	if err != nil {
		return fmt.Errorf("cluster: app %q: %w", spec.Name, err)
	}
	a.ctrl = controller.New(cl.appCtrlCfg(a))
	cl.graph = union
	cl.appMu.Lock()
	cl.apps = append(cl.apps, a)
	cl.appByPrefix[a.prefix] = a
	cl.appMu.Unlock()

	ids := a.graph.Nodes()
	placed := cl.policy.Assign(ids, cl.viewLocked(nil))
	for i, id := range ids {
		n, ok := placed[id]
		if !ok || n < 0 || n >= len(cl.nodes) || !cl.nodes[n].schedulable() {
			n = cl.firstHealthyLocked()
			if n < 0 {
				n = i % len(cl.nodes)
			}
		}
		cl.hauNode[id] = n
	}
	if cl.started {
		for _, id := range ids {
			cl.inEdges[id] = cl.freshInGridLocked(id, id)
		}
		for _, id := range ids {
			h, _, _, err := cl.buildHAU(id, nil)
			if err != nil {
				return fmt.Errorf("cluster: app %q: %w", spec.Name, err)
			}
			cl.haus[id] = h
		}
		cl.installControllerHAUs()
		for _, id := range ids {
			hctx, cancel := context.WithCancel(cl.rootCtx)
			cl.cancels[id] = cancel
			cl.haus[id].Start(hctx)
		}
	}
	if cl.ctrlCtx != nil {
		actx, cancel := context.WithCancel(cl.ctrlCtx)
		a.ctrlCancel = cancel
		go a.ctrl.Run(actx)
	}
	return nil
}

// RemoveApp unregisters an application: its HAUs and standbys stop, its
// bookkeeping is dropped, and its nodes become free capacity for the
// remaining tenants. The first app anchors the fleet control loops
// (rebalance, elasticity, HA, arbitration) and cannot be removed.
func (cl *Cluster) RemoveApp(name string) error {
	cl.mu.Lock()
	cl.appMu.RLock()
	var a *appState
	idx := -1
	for i, x := range cl.apps {
		if x.name == name {
			a, idx = x, i
			break
		}
	}
	cl.appMu.RUnlock()
	if a == nil {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: unknown app %q", name)
	}
	if idx == 0 {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: app %q anchors the fleet control loops and cannot be removed", name)
	}

	var cancels []context.CancelFunc
	var wait []*spe.HAU
	own := func(id string) bool { return cl.appOf(id) == a }
	for id, h := range cl.haus {
		if !own(id) {
			continue
		}
		if c := cl.cancels[id]; c != nil {
			cancels = append(cancels, c)
		}
		wait = append(wait, h)
		delete(cl.haus, id)
		delete(cl.cancels, id)
		delete(cl.inEdges, id)
		delete(cl.hauNode, id)
		delete(cl.preservers, id)
		delete(cl.migrating, id)
	}
	for id, sb := range cl.standbys {
		if !own(id) {
			continue
		}
		cancels = append(cancels, sb.cancel)
		wait = append(wait, sb.h)
		delete(cl.standbys, id)
	}
	for _, id := range a.graph.Nodes() {
		delete(cl.parts, id)
		delete(cl.nextTag, id)
		delete(cl.rescaling, id)
		delete(cl.lastRescale, id)
		delete(cl.lastLoads, id)
		delete(cl.skewHits, id)
		delete(cl.lastSkewAct, id)
	}
	cl.appMu.Lock()
	cl.apps = append(cl.apps[:idx], cl.apps[idx+1:]...)
	delete(cl.appByPrefix, a.prefix)
	rest := make([]*graph.Graph, len(cl.apps))
	for i, x := range cl.apps {
		rest[i] = x.graph
	}
	cl.appMu.Unlock()
	union, err := graph.Union(rest...)
	if err == nil { // disjoint by construction; defensive
		cl.graph = union
	}
	if cl.started {
		cl.installControllerHAUs()
	}
	ctrlCancel := a.ctrlCancel
	cl.mu.Unlock()

	for _, c := range cancels {
		c()
	}
	for _, h := range wait {
		<-h.Done()
	}
	if ctrlCancel != nil {
		ctrlCancel()
	}
	return nil
}

// RecoverApp performs whole-application rollback recovery for one named
// application only: its HAUs restart from its Most Recent Complete
// Checkpoint and its sources replay — co-tenant applications keep running
// untouched. This is the recovery-isolation half of multi-tenancy.
func (cl *Cluster) RecoverApp(ctx context.Context, name string) (RecoveryStats, error) {
	cl.appMu.RLock()
	var a *appState
	for _, x := range cl.apps {
		if x.name == name {
			a = x
			break
		}
	}
	cl.appMu.RUnlock()
	if a == nil {
		return RecoveryStats{}, fmt.Errorf("cluster: unknown app %q", name)
	}
	return cl.recoverApp(ctx, a)
}

// arbiterStep is the controller's arbitration tick (installed when
// ArbiterEvery is set and at least two apps share the fleet at build time).
// It snapshots per-app demand — CPU busy approximated from processed-tuple
// deltas times the per-tuple service cost, cached state bytes, queued
// backlog — computes weighted max-min fair shares against the fleet's
// capacity over the elapsed interval, and executes the arbiter's bounded
// migration plan toward the fair node partition.
func (cl *Cluster) arbiterStep() (int, error) {
	cl.mu.Lock()
	if !cl.started || cl.arb == nil {
		cl.mu.Unlock()
		return 0, nil
	}
	apps := cl.appsSnapshot()
	if len(apps) < 2 {
		cl.mu.Unlock()
		return 0, nil
	}
	now := time.Unix(0, cl.cfg.Now())
	var v tenant.View
	for i, n := range cl.nodes {
		if n.schedulable() {
			v.Nodes = append(v.Nodes, i)
		}
	}
	demands := make(map[string]*tenant.Demand, len(apps))
	procOf := make(map[string]uint64, len(apps))
	for _, a := range apps {
		demands[a.prefix] = &tenant.Demand{App: a.name, Weight: a.weight}
	}
	for id, nd := range cl.hauNode {
		a := cl.appOf(id)
		d := demands[a.prefix]
		if d == nil {
			continue
		}
		d.HAUs++
		if h := cl.haus[id]; h != nil {
			d.StateBytes += h.CachedStateSize()
			procOf[a.prefix] += h.ProcessedCount()
		}
		for _, row := range cl.inEdges[id] {
			for _, e := range row {
				d.Backlog += e.Queued()
			}
		}
		movable := !partition.IsReplica(id) && cl.parts[id] == nil &&
			!cl.migrating[id] && !cl.rescaling[partition.BaseID(id)] && !cl.haPinnedLocked(id)
		v.HAUs = append(v.HAUs, tenant.HAUView{ID: id, App: a.name, Node: nd, Movable: movable})
	}
	elapsed := now.Sub(cl.arbPrevAt)
	primed := cl.arbPrimed
	for p, cur := range procOf {
		if prev, ok := cl.arbPrevProc[p]; ok && cur >= prev {
			demands[p].CPUBusy = time.Duration(cur-prev) * cl.cfg.PerTupleDelay
		}
		cl.arbPrevProc[p] = cur
	}
	cl.arbPrevAt, cl.arbPrimed = now, true
	if !primed || elapsed <= 0 {
		cl.mu.Unlock()
		return 0, nil // first tick only primes the CPU deltas
	}
	cores := cl.cfg.NodeCores
	if cores <= 0 {
		cores = 1
	}
	v.Capacity = float64(len(v.Nodes)) * cores * float64(elapsed)
	for _, a := range apps {
		v.Demands = append(v.Demands, *demands[a.prefix])
	}
	cl.lastShares = cl.arb.Shares(v)
	acts := cl.arb.Step(now, v)
	ctx := cl.rootCtx
	cl.mu.Unlock()

	moved := 0
	for _, act := range acts {
		if _, err := cl.MigrateHAU(ctx, act.HAU, act.To); err != nil {
			// Lost a race (recovery, concurrent rescale); the next tick
			// replans from fresh observations.
			cl.logf("cluster: arbiter move of %q -> node %d: %v", act.HAU, act.To, err)
			return moved, nil
		}
		moved++
	}
	return moved, nil
}

// rankDrainCandidates orders scale-in candidates by cross-app disruption:
// fewest distinct applications hosted first, then fewest HAUs, then least
// state. Draining a single-tenant node disturbs one tenant's placement;
// draining a shared node churns several.
func (cl *Cluster) rankDrainCandidates(cands []int) []int {
	type load struct {
		apps  int
		haus  int
		state int64
	}
	cl.mu.Lock()
	loads := make(map[int]*load, len(cands))
	for _, n := range cands {
		loads[n] = &load{}
	}
	seen := make(map[int]map[string]bool, len(cands))
	for id, nd := range cl.hauNode {
		l := loads[nd]
		if l == nil {
			continue
		}
		l.haus++
		if h := cl.haus[id]; h != nil {
			l.state += h.CachedStateSize()
		}
		if seen[nd] == nil {
			seen[nd] = make(map[string]bool)
		}
		app := cl.appOf(id).name
		if !seen[nd][app] {
			seen[nd][app] = true
			l.apps++
		}
	}
	cl.mu.Unlock()
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := loads[cands[i]], loads[cands[j]]
		if a.apps != b.apps {
			return a.apps < b.apps
		}
		if a.haus != b.haus {
			return a.haus < b.haus
		}
		return a.state < b.state
	})
	return cands
}
