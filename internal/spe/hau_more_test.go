package spe

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"meteorshower/internal/buffer"
	"meteorshower/internal/operator"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// fluctOp is a stateful operator whose state size zig-zags over inputs, so
// the HAU's sampler must detect turning points.
type fluctOp struct {
	operator.Base
	size int64
	dir  int64
}

func (f *fluctOp) OnTuple(_ int, t *tuple.Tuple, _ operator.Emitter) error {
	if f.dir == 0 {
		f.dir = 100
	}
	f.size += f.dir
	if f.size >= 500 {
		f.dir = -100
	}
	if f.size <= 0 {
		f.dir = 100
	}
	return nil
}

func (f *fluctOp) StateSize() int64 { return f.size }

// tpListener records turning points.
type tpListener struct {
	NopListener
	mu   sync.Mutex
	tps  int
	alls []int64
}

func (l *tpListener) TurningPoint(_ string, _ int64, size int64, _ float64, _ bool) {
	l.mu.Lock()
	l.tps++
	l.alls = append(l.alls, size)
	l.mu.Unlock()
}

func (l *tpListener) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tps
}

func TestAccessors(t *testing.T) {
	gen := operator.NewRateSource("S", 1, 1, operator.BytePayload(4, 2))
	h, _ := New(Config{ID: "S", Scheme: MSSrcAP, Ops: []operator.Operator{gen}, Out: []*Edge{NewEdge("S", "x", 0)}})
	if h.ID() != "S" || h.Scheme() != MSSrcAP || !h.IsSource() || len(h.Ops()) != 1 {
		t.Fatal("accessors wrong")
	}
	if h.CachedStateSize() != 0 || h.ProcessedCount() != 0 || h.ShedCount() != 0 {
		t.Fatal("fresh counters non-zero")
	}
}

func TestNopListener(t *testing.T) {
	var l NopListener
	l.CheckpointDone("", 0, CheckpointBreakdown{})
	l.TurningPoint("", 0, 0, 0, false)
	l.Stopped("", nil)
}

func TestReportAllTurningPoints(t *testing.T) {
	in := NewEdge("x", "H", 0)
	lis := &tpListener{}
	h, _ := New(Config{
		ID: "H", Scheme: MSSrcAPAA, Ops: []operator.Operator{&fluctOp{Base: operator.Base{OpName: "f"}}},
		In: []*Edge{in}, Listener: lis, TickEvery: time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	h.Command(Command{Kind: CmdReportAll})
	go func() {
		for i := uint64(1); ; i++ {
			tp := tuple.New(i, "x", "k", nil)
			tp.Seq = i
			if !in.Inject(ctx, tp) {
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	waitFor(t, 10*time.Second, func() bool { return lis.count() >= 2 })
	if h.CachedStateSize() == 0 && lis.count() == 0 {
		t.Fatal("state never sampled")
	}
	// CmdReportNormal suppresses non-halving reports.
	h.Command(Command{Kind: CmdReportNormal})
	// CmdAlertOn re-enables them.
	h.Command(Command{Kind: CmdAlertOn})
	n := lis.count()
	waitFor(t, 10*time.Second, func() bool { return lis.count() > n })
	h.Command(Command{Kind: CmdAlertOff})
	cancel()
}

func TestOperatorErrorFailStops(t *testing.T) {
	in := NewEdge("x", "H", 0)
	bad := &failingOp{}
	h, _ := New(Config{
		ID: "H", Scheme: MSSrc, Ops: []operator.Operator{bad},
		In: []*Edge{in}, TickEvery: time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	tp := tuple.New(1, "x", "k", nil)
	tp.Seq = 1
	in.Inject(nil, tp)
	select {
	case <-h.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("HAU did not fail-stop on operator error")
	}
	if h.Err() == nil {
		t.Fatal("terminal error not recorded")
	}
}

type failingOp struct{ operator.Base }

func (f *failingOp) OnTuple(int, *tuple.Tuple, operator.Emitter) error {
	return errors.New("software error")
}

func TestCmdSwapOutEdgeAndReplay(t *testing.T) {
	oldOut := NewEdge("H", "down", 8)
	disk := fastDisk()
	pres := buffer.NewPreserver(1, 1<<20, disk)
	gen := operator.NewRateSource("H", 2, 1, operator.BytePayload(8, 2))
	h, _ := New(Config{
		ID: "H", Scheme: Baseline, Ops: []operator.Operator{gen},
		Out: []*Edge{oldOut}, Preserver: pres, TickEvery: time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	// Drain the old edge until a few tuples passed.
	oldR := newEdgeReader(oldOut)
	seen := 0
	deadline := time.Now().Add(5 * time.Second)
	for seen < 5 && time.Now().Before(deadline) {
		if oldR.next(10*time.Millisecond) != nil {
			seen++
		}
	}
	if seen < 5 {
		t.Fatal("no flow on original edge")
	}
	// Swap in a new edge and replay the preserved output onto it.
	newOut := NewEdge("H", "down", 256)
	h.Command(Command{Kind: CmdSwapOutEdge, Port: 0, Edge: newOut})
	h.Command(Command{Kind: CmdReplayOutput, Port: 0})
	newR := newEdgeReader(newOut)
	got := 0
	deadline = time.Now().Add(5 * time.Second)
	var first *tuple.Tuple
	for time.Now().Before(deadline) && got < 5 {
		if tp := newR.next(10 * time.Millisecond); tp != nil {
			if first == nil {
				first = tp
			}
			got++
		}
	}
	if got < 5 {
		t.Fatalf("replayed only %d tuples on the new edge", got)
	}
	if first.Seq != 1 {
		t.Fatalf("replay did not start from the beginning: seq %d", first.Seq)
	}
	// Out-of-range swap/replay commands are ignored, not fatal.
	h.Command(Command{Kind: CmdSwapOutEdge, Port: 9, Edge: newOut})
	h.Command(Command{Kind: CmdReplayOutput, Port: 9})
	time.Sleep(10 * time.Millisecond)
	if h.Err() != nil {
		t.Fatalf("bad port command killed the HAU: %v", h.Err())
	}
	cancel()
}

func TestBaselinePerSourceIDDedup(t *testing.T) {
	// Two interleavings of the same per-source streams: the second pass
	// (simulating a restarted upstream with different interleaving) must
	// be fully suppressed.
	in := NewEdge("x", "K", 0)
	col := newCountingRecorder()
	sinkOp := operator.NewSink("K", col)
	sinkOp.TrackIdentity = true
	h, _ := New(Config{
		ID: "K", Scheme: Baseline, Ops: []operator.Operator{sinkOp},
		In: []*Edge{in}, TickEvery: time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	send := func(src string, id uint64, seq uint64) {
		tp := tuple.New(id, src, "k", nil)
		tp.Seq = seq
		in.Inject(nil, tp)
	}
	// First delivery: A1 B1 A2 B2 with seqs 1..4.
	send("A", 1, 1)
	send("B", 1, 2)
	send("A", 2, 3)
	send("B", 2, 4)
	// Replay with a different interleaving and different seqs.
	send("B", 1, 5)
	send("B", 2, 6)
	send("A", 1, 7)
	send("A", 2, 8)
	waitFor(t, 5*time.Second, func() bool { return sinkOp.Delivered() >= 4 })
	time.Sleep(20 * time.Millisecond)
	if sinkOp.Delivered() != 4 {
		t.Fatalf("delivered %d, want 4 (replay suppressed)", sinkOp.Delivered())
	}
	if sinkOp.Duplicates() != 0 {
		t.Fatalf("duplicates = %d", sinkOp.Duplicates())
	}
	cancel()
}

type countingRecorder struct {
	mu sync.Mutex
	n  int
}

func newCountingRecorder() *countingRecorder { return &countingRecorder{} }

func (c *countingRecorder) RecordLatency(int64, time.Duration) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func fastDisk() *storage.Disk {
	return storage.NewDisk(storage.DiskSpec{BandwidthBps: 1 << 30, TimeScale: 0})
}
