package elastic

import (
	"fmt"
	"sync"
	"time"
)

// Hooks is everything the provisioner needs from the cluster. Sample,
// AddNode, Drain and CanDrain are required; Now and Logf are optional.
type Hooks struct {
	// Sample returns the current raw per-node counters.
	Sample func() Sample
	// AddNode grows the fleet by one schedulable node and returns its
	// index (the placement rebalancer spreads HAUs onto it afterwards).
	AddNode func() int
	// Drain live-migrates every HAU off the node and retires it.
	Drain func(node int) error
	// CanDrain reports whether the node's HAUs all have live migration
	// destinations right now (replica incarnations, for example, cannot
	// live-migrate). A node failing this check is never drained.
	CanDrain func(node int) bool
	// RankDrain, when set, reorders scale-in candidates before the engine
	// tries them (e.g. fewest distinct applications hosted first, so a
	// shrink disrupts as few tenants as possible). It may also drop
	// candidates by returning a shorter slice.
	RankDrain func(cands []int) []int
	Now       func() time.Time
	Logf      func(format string, args ...any)
}

// Engine is the provisioner: it derives per-interval utilization from
// successive samples, feeds the trigger, and executes its recommendations
// through the hooks. Step is the controller's elasticity tick; the
// controller guarantees Steps never overlap.
type Engine struct {
	cfg   Config
	hooks Hooks
	trig  *Trigger

	prev   map[int]prevStat
	prevAt time.Time
	primed bool
	mu     sync.Mutex
	events []Event
}

type prevStat struct {
	busy time.Duration
}

// NewEngine returns an engine with cfg's defaults applied.
func NewEngine(cfg Config, hooks Hooks) *Engine {
	return &Engine{
		cfg:   cfg.withDefaults(),
		hooks: hooks,
		trig:  NewTrigger(cfg),
		prev:  make(map[int]prevStat),
	}
}

func (e *Engine) now() time.Time {
	if e.hooks.Now != nil {
		return e.hooks.Now()
	}
	return time.Now()
}

func (e *Engine) logf(format string, args ...any) {
	if e.hooks.Logf != nil {
		e.hooks.Logf(format, args...)
	}
}

// Step samples the fleet, derives utilization, and executes at most one
// fleet action. Returns the number of nodes added (positive) or drained
// (negative, always -1) this step.
func (e *Engine) Step() (int, error) {
	s := e.hooks.Sample()
	now := s.At
	if now.IsZero() {
		now = e.now()
	}

	utils, fleet := e.derive(s, now)
	if !utils.ok {
		return 0, nil // first sample only primes the busy-time deltas
	}

	d := e.trig.ObserveApps(now, fleet, utils.utils, s.Apps)
	switch d.Kind {
	case ScaleOut:
		added := 0
		for i := 0; i < e.cfg.StepOut; i++ {
			if e.cfg.MaxNodes > 0 && fleet+added >= e.cfg.MaxNodes {
				break
			}
			idx := e.hooks.AddNode()
			added++
			e.record(Event{At: now, Kind: ScaleOut, Node: idx, Fleet: fleet + added})
			e.logf("elastic: scale-out -> node %d (fleet %d): %s", idx, fleet+added, d.Reason)
		}
		if added > 0 {
			e.trig.Commit(now)
		}
		return added, nil
	case ScaleIn:
		cands := d.Candidates
		if e.hooks.RankDrain != nil {
			cands = e.hooks.RankDrain(append([]int(nil), cands...))
		}
		for _, cand := range cands {
			if e.hooks.CanDrain != nil && !e.hooks.CanDrain(cand) {
				continue
			}
			if err := e.hooks.Drain(cand); err != nil {
				// The drain lost a race (node died, recovery superseded it);
				// leave the window and cooldown untouched and retry later.
				return 0, fmt.Errorf("elastic: drain node %d: %w", cand, err)
			}
			e.trig.Commit(now)
			e.record(Event{At: now, Kind: ScaleIn, Node: cand, Fleet: fleet - 1})
			e.logf("elastic: scale-in <- node %d (fleet %d): %s", cand, fleet-1, d.Reason)
			return -1, nil
		}
	}
	return 0, nil
}

type derived struct {
	ok    bool
	utils []Util
}

// derive turns a raw sample into per-interval utilization. CPU is the
// growth of the node's cumulative busy time over the wall-clock interval
// since the previous sample; a node first seen this sample reads as idle
// until the next step.
func (e *Engine) derive(s Sample, now time.Time) (derived, int) {
	fleet := 0
	var utils []Util
	wall := now.Sub(e.prevAt)
	for _, n := range s.Nodes {
		if !n.Retired {
			fleet++
		}
		if n.Retired || !n.Alive {
			delete(e.prev, n.Node)
			continue
		}
		u := Util{
			Node:      n.Node,
			Queue:     n.Queue,
			HAUs:      n.HAUs,
			Sched:     n.Schedulable(),
			Drainable: n.CanMove == n.HAUs,
		}
		if p, ok := e.prev[n.Node]; ok && wall > 0 {
			busy := n.CPUBusy - p.busy
			if busy < 0 {
				busy = 0 // node slot was recycled; its gate restarted
			}
			u.CPU = float64(busy) / float64(wall)
		}
		e.prev[n.Node] = prevStat{busy: n.CPUBusy}
		utils = append(utils, u)
	}
	primed := e.primed
	e.primed = true
	e.prevAt = now
	return derived{ok: primed, utils: utils}, fleet
}

func (e *Engine) record(ev Event) {
	e.mu.Lock()
	e.events = append(e.events, ev)
	e.mu.Unlock()
}

// Events returns every executed fleet action, oldest first. Safe to call
// while the engine steps.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Event(nil), e.events...)
}
