package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"meteorshower/internal/spe"
)

// quickParams shrinks runs so the suite stays fast.
func quickParams() Params {
	p := Params{
		Window: 500 * time.Millisecond,
		Warmup: 150 * time.Millisecond,
		Nodes:  4,
		Quick:  true,
		Seed:   1,
	}
	return p.withDefaults()
}

func TestAppKindStrings(t *testing.T) {
	if TMIApp.String() != "TMI" || BCPApp.String() != "BCP" || SGApp.String() != "SignalGuru" {
		t.Fatal("app names wrong")
	}
	if AppKind(9).String() != "unknown-app" {
		t.Fatal("unknown app name")
	}
	if len(AllApps()) != 3 || len(AllSchemes()) != 4 {
		t.Fatal("sweep sizes wrong")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Defaults()
	if p.Window <= 0 || p.Nodes <= 0 || p.SharedDisk.BandwidthBps == 0 {
		t.Fatalf("defaults incomplete: %+v", p)
	}
	if len(p.CkptCounts()) != 9 {
		t.Fatalf("full sweep = %v", p.CkptCounts())
	}
	p.Quick = true
	if len(p.CkptCounts()) != 2 || len(p.Apps()) != 1 {
		t.Fatal("quick sweep wrong")
	}
}

func TestRunCellBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c, err := RunCell(quickParams(), TMIApp, spe.Baseline, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Processed == 0 || c.TuplesPerMS == 0 {
		t.Fatalf("empty cell: %+v", c)
	}
	if c.App != "TMI" || c.Scheme != "Baseline" || c.Ckpts != 2 {
		t.Fatalf("labels wrong: %+v", c)
	}
}

func TestRunCellMSSchemesCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, scheme := range []spe.Scheme{spe.MSSrc, spe.MSSrcAP} {
		c, err := RunCell(quickParams(), TMIApp, scheme, 2)
		if err != nil {
			t.Fatal(err)
		}
		if c.Epochs == 0 {
			t.Fatalf("%v: no completed epochs", scheme)
		}
	}
}

func TestTable1(t *testing.T) {
	rows := RunTable1(1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].AFN100[0] <= 300 { // Network
		t.Fatalf("Google network AFN100 = %.1f", rows[0].AFN100[0])
	}
	var buf bytes.Buffer
	FprintTable1(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Network", "Ooops", "7640", "burst fraction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5TMISawtooth(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := quickParams()
	p.Window = 900 * time.Millisecond
	traces, err := RunFig5(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[0]
	if tr.App != "TMI" || len(tr.Samples) < 10 {
		t.Fatalf("trace = %s, %d samples", tr.App, len(tr.Samples))
	}
	// Fig. 5a: TMI state fluctuates strongly (min << avg).
	if tr.Max == 0 {
		t.Fatal("no state observed")
	}
	if tr.Min*2 >= tr.Max {
		t.Fatalf("TMI state not fluctuating: min=%d max=%d", tr.Min, tr.Max)
	}
	var buf bytes.Buffer
	FprintFig5(&buf, traces)
	if !strings.Contains(buf.String(), "TMI") {
		t.Fatal("Fig. 5 output missing app name")
	}
}

func TestFig14Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := quickParams()
	rows, err := RunFig14(p, TMIApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig14Row{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	// The paper's headline: MS-src takes far longer than MS-src+ap
	// because individual checkpoints run one after another.
	if byName["MS-src"].Total <= byName["MS-src+ap"].Total {
		t.Fatalf("MS-src (%v) should exceed MS-src+ap (%v)",
			byName["MS-src"].Total, byName["MS-src+ap"].Total)
	}
	var buf bytes.Buffer
	FprintFig14(&buf, "TMI", rows)
	if !strings.Contains(buf.String(), "MS-src+ap+aa") {
		t.Fatal("Fig. 14 output incomplete")
	}
}

func TestFig15SyncDisruptsMore(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := quickParams()
	series, err := RunFig15(p, BCPApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	peak := func(s Fig15Series) time.Duration {
		var m time.Duration
		for _, b := range s.Buckets {
			if b.MeanLat > m {
				m = b.MeanLat
			}
		}
		return m
	}
	// MS-src's synchronous checkpoint must disturb latency more than the
	// asynchronous variant (Fig. 15: "MS-src causes larger instantaneous
	// latency than MS-src+ap").
	if peak(series[0]) <= peak(series[1]) {
		t.Logf("warning: sync peak %v vs async peak %v (timing-sensitive)", peak(series[0]), peak(series[1]))
	}
	var buf bytes.Buffer
	FprintFig15(&buf, series)
	if !strings.Contains(buf.String(), "instantaneous latency") {
		t.Fatal("Fig. 15 output incomplete")
	}
}

func TestFig16RecoveryBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := quickParams()
	rows, err := RunFig16(p, TMIApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Fatalf("%s: empty recovery stats", r.Variant)
		}
		if r.Stats.HAUs != 55 {
			t.Fatalf("%s: recovered %d HAUs, want 55", r.Variant, r.Stats.HAUs)
		}
	}
	var buf bytes.Buffer
	FprintFig16(&buf, "TMI", rows)
	if !strings.Contains(buf.String(), "recovery time") {
		t.Fatal("Fig. 16 output incomplete")
	}
}

func TestCommonCaseQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cc, err := RunCommonCase(quickParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Cells) == 0 {
		t.Fatal("no cells")
	}
	base, ok := cc.Base["TMI"]
	if !ok || base.TuplesPerMS == 0 {
		t.Fatal("baseline reference missing")
	}
	if n := cc.NormalizedThroughput(base); n != 1.0 {
		t.Fatalf("baseline normalizes to %v", n)
	}
	var buf bytes.Buffer
	cc.FprintFig12(&buf)
	cc.FprintFig13(&buf)
	out := buf.String()
	if !strings.Contains(out, "normalized throughput") || !strings.Contains(out, "normalized latency") {
		t.Fatal("figure output incomplete")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := quickParams()
	rows, err := RunAblationBufferSize(p, TMIApp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("buffer ablation rows = %d", len(rows))
	}
	rows2, err := RunAblationGroupCommit(p, TMIApp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	FprintAblations(&buf, append(rows, rows2...))
	if !strings.Contains(buf.String(), "ablation") {
		t.Fatal("ablation output incomplete")
	}
}

func TestAblationDeltaAndScatter(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := quickParams()
	rows, err := RunAblationDelta(p, BCPApp)
	if err != nil {
		t.Fatal(err)
	}
	// Delta vs full bytes across separate runs is noisy (BCP state
	// fluctuates ~2x) and fast-churning state defeats position-aligned
	// deltas anyway; the unit tests prove delta correctness, so here we
	// only require both configurations to run and recover.
	byVal := map[string]float64{}
	for _, r := range rows {
		byVal[r.Value] = r.Result
	}
	for _, v := range []string{"full", "delta", "full-recovery", "delta-recovery"} {
		if byVal[v] <= 0 {
			t.Fatalf("ablation row %q empty: %v", v, byVal)
		}
	}
	sc := RunAblationScatter(p, 1<<20)
	if len(sc) != 4 {
		t.Fatalf("scatter rows = %d", len(sc))
	}
	// Wider scatter must be faster than a single store for a 1MB blob.
	if sc[3].Result >= sc[0].Result {
		t.Fatalf("8-wide scatter (%.1fms) not faster than 1-wide (%.1fms)", sc[3].Result, sc[0].Result)
	}
}

func TestBenchDeltaWithCommonCase(t *testing.T) {
	// Delta-checkpointing composes with the normal grid: a cell with delta
	// enabled still completes its epochs.
	if testing.Short() {
		t.Skip("short mode")
	}
	p := quickParams()
	cell, err := RunCell(p, BCPApp, spe.MSSrcAP, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Epochs == 0 {
		t.Fatal("no epochs completed")
	}
}

func TestSoakAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := quickParams()
	p.Window = 700 * time.Millisecond
	res, err := RunSoak(p, TMIApp, spe.MSSrcAP, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries == 0 {
		t.Fatal("no recoveries performed")
	}
	if res.Duplicates != 0 {
		t.Fatalf("soak observed %d duplicate deliveries", res.Duplicates)
	}
	// The system must stay substantially available through the bursts.
	if res.Availability < 0.3 {
		t.Fatalf("availability %.2f too low", res.Availability)
	}
	var buf bytes.Buffer
	FprintSoak(&buf, res)
	if !strings.Contains(buf.String(), "availability") {
		t.Fatal("soak output incomplete")
	}
}
