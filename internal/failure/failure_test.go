package failure

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGoogleNetworkExample(t *testing.T) {
	n, afn := GoogleNetworkExample()
	if n != 7640 {
		t.Fatalf("node failures = %d, want 7640 (paper §II-B1)", n)
	}
	if afn <= 300 {
		t.Fatalf("AFN100 = %.1f, paper says > 300", afn)
	}
}

func TestGenerateGoogleMatchesTable1(t *testing.T) {
	events := Generate(GoogleDC(), 2400, Year, 1)
	afn := AFN100(events, 2400, Year)
	if afn[Network] <= 300 {
		t.Fatalf("Network AFN100 = %.1f, want > 300", afn[Network])
	}
	if afn[Environment] < 100 || afn[Environment] > 160 {
		t.Fatalf("Environment AFN100 = %.1f, want 100~150", afn[Environment])
	}
	if afn[Ooops] < 80 || afn[Ooops] > 120 {
		t.Fatalf("Ooops AFN100 = %.1f, want ~100", afn[Ooops])
	}
	if afn[Disk] < 1.7 || afn[Disk] > 8.6 {
		t.Fatalf("Disk AFN100 = %.1f, want 1.7~8.6", afn[Disk])
	}
	if afn[Memory] < 0.5 || afn[Memory] > 2.5 {
		t.Fatalf("Memory AFN100 = %.1f, want ~1.3", afn[Memory])
	}
}

func TestGenerateAbeMatchesTable1(t *testing.T) {
	events := Generate(AbeCluster(), 2400, Year, 2)
	afn := AFN100(events, 2400, Year)
	if afn[Network] < 180 || afn[Network] > 320 {
		t.Fatalf("Abe Network AFN100 = %.1f, want ~250", afn[Network])
	}
	if afn[Ooops] < 25 || afn[Ooops] > 55 {
		t.Fatalf("Abe Ooops AFN100 = %.1f, want ~40", afn[Ooops])
	}
	if afn[Disk] < 2 || afn[Disk] > 6 {
		t.Fatalf("Abe Disk AFN100 = %.1f, want 2~6", afn[Disk])
	}
	if afn[Environment] != 0 {
		t.Fatalf("Abe Environment AFN100 = %.1f, want 0 (NA)", afn[Environment])
	}
}

func TestBurstFractionAround10Percent(t *testing.T) {
	events := Generate(GoogleDC(), 2400, Year, 3)
	f := BurstFraction(events)
	if f < 0.01 || f > 0.2 {
		t.Fatalf("burst fraction = %.3f, want ~0.10", f)
	}
}

func TestBurstsAreRackCorrelated(t *testing.T) {
	p := GoogleDC()
	events := Generate(p, 2400, Year, 4)
	sawRack := false
	for _, e := range events {
		if !e.Correlated() {
			continue
		}
		// Correlated node sets must be contiguous ranges.
		for i := 1; i < len(e.Nodes); i++ {
			if e.Nodes[i] != e.Nodes[i-1]+1 {
				t.Fatalf("burst nodes not contiguous: %v...", e.Nodes[:min(len(e.Nodes), 5)])
			}
		}
		if len(e.Nodes) == p.NodesPerRack && e.Nodes[0]%p.NodesPerRack == 0 {
			sawRack = true
		}
	}
	if !sawRack {
		t.Fatal("no rack-aligned burst generated in a full year")
	}
}

func TestGenerateSortedAndBounded(t *testing.T) {
	horizon := 30 * 24 * time.Hour
	events := Generate(GoogleDC(), 800, horizon, 5)
	for i, e := range events {
		if e.At < 0 || e.At >= horizon {
			t.Fatalf("event %d at %v outside horizon", i, e.At)
		}
		if i > 0 && e.At < events[i-1].At {
			t.Fatal("events not sorted by time")
		}
		if len(e.Nodes) == 0 {
			t.Fatalf("event %d affects no nodes", i)
		}
		for _, n := range e.Nodes {
			if n < 0 || n >= 800 {
				t.Fatalf("event %d node %d out of range", i, n)
			}
		}
		if e.Recovery <= 0 {
			t.Fatalf("event %d has no recovery time", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GoogleDC(), 2400, Year, 42)
	b := Generate(GoogleDC(), 2400, Year, 42)
	if len(a) != len(b) {
		t.Fatal("same seed, different event counts")
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Cause != b[i].Cause || len(a[i].Nodes) != len(b[i].Nodes) {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestAFN100Empty(t *testing.T) {
	if got := AFN100(nil, 0, 0); len(got) != 0 {
		t.Fatal("degenerate AFN100 must be empty")
	}
}

func TestBurstFractionEmpty(t *testing.T) {
	if BurstFraction(nil) != 0 {
		t.Fatal("empty trace burst fraction must be 0")
	}
}

func TestCauseStrings(t *testing.T) {
	want := []string{"Network", "Environment", "Ooops", "Disk", "Memory"}
	for i, c := range Causes() {
		if c.String() != want[i] {
			t.Fatalf("cause %d = %q", i, c.String())
		}
	}
	if Cause(99).String() == "" {
		t.Fatal("unknown cause must stringify")
	}
}

func TestSmallClusterNoRacks(t *testing.T) {
	// Clusters smaller than a rack must still generate valid events.
	events := Generate(GoogleDC(), 56, Year, 6)
	for _, e := range events {
		for _, n := range e.Nodes {
			if n < 0 || n >= 56 {
				t.Fatalf("node %d out of range for 56-node cluster", n)
			}
		}
	}
}

// Property: AFN100 scales linearly with horizon (double the horizon with
// the same per-year rates keeps the annualized number roughly constant).
func TestQuickAFN100Annualized(t *testing.T) {
	f := func(seed int64) bool {
		e1 := Generate(GoogleDC(), 2400, Year, seed)
		e2 := Generate(GoogleDC(), 2400, 2*Year, seed)
		a1 := AFN100(e1, 2400, Year)[Network]
		a2 := AFN100(e2, 2400, 2*Year)[Network]
		if a1 == 0 || a2 == 0 {
			return false
		}
		ratio := a1 / a2
		return ratio > 0.5 && ratio < 2.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
