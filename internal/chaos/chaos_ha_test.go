package chaos

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestChaosHASmoke runs the full schedule with hybrid fault-tolerance
// chaos enabled on every topology: each round arms an active standby on
// the topology's HA victim before its kill, recovery goes through the
// promote-or-rollback decision, and both oracles must still pass —
// including across any promotion boundary, where the standby's re-emitted
// ring overlaps the primary's last deliveries and downstream dedup must
// absorb the overlap.
func TestChaosHASmoke(t *testing.T) {
	for _, top := range Topologies {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology: top,
					Seed:     seed,
					HA:       true,
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				protected := false
				for _, rd := range res.RoundList {
					protected = protected || rd.Protected != ""
				}
				if !protected {
					t.Fatal("HA chaos enabled but no round armed a standby")
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosHAPrimaryKill forces every round onto the primary-kill
// instant: the burst plus the protected primary's node is killed, and
// HybridRecover must either promote the standby (when the burst spared
// every unprotected HAU) or roll the whole application back — exactly one
// of the two, with both oracles clean either way.
func TestChaosHAPrimaryKill(t *testing.T) {
	for _, top := range Topologies {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology: top,
					Seed:     seed,
					HA:       true,
					Points:   []InjectionPoint{KillHAPrimary},
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				for i, rd := range res.RoundList {
					if rd.Point != KillHAPrimary {
						t.Fatalf("round %d ran %s, want forced %s", i, rd.Point, KillHAPrimary)
					}
					if rd.Protected == "" || rd.PrimaryKill < 0 {
						t.Fatalf("round %d never killed a protected primary: %+v", i, rd)
					}
					if rd.Failovers == 0 && !rd.RolledBack {
						t.Fatalf("round %d neither promoted nor rolled back: %+v", i, rd)
					}
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosHAStandbyMidPromoteKill forces every round onto the
// standby-mid-promotion instant: the primary's node dies alone, a
// promotion starts, and the standby's node is killed synchronously at the
// promote step — the switchover loses the operator's only live copy and
// must abort, leaving whole-application rollback to heal everything. The
// mid-promotion kill can degrade (the burst of a previous step or
// co-location can pre-empt it), so the forced schedule must land it at
// least once per run, and every round must end healed with clean oracles.
func TestChaosHAStandbyMidPromoteKill(t *testing.T) {
	for _, top := range Topologies {
		for seed := int64(1); seed <= 3; seed++ {
			top, seed := top, seed
			t.Run(string(top)+"/seed="+string(rune('0'+seed)), func(t *testing.T) {
				res, err := Run(context.Background(), Config{
					Topology: top,
					Seed:     seed,
					HA:       true,
					Points:   []InjectionPoint{KillHAStandbyMidPromote},
				})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if err := res.Err(); err != nil {
					t.Fatal(err)
				}
				landed := false
				for i, rd := range res.RoundList {
					if rd.Point != KillHAStandbyMidPromote {
						t.Fatalf("round %d ran %s, want forced %s", i, rd.Point, KillHAStandbyMidPromote)
					}
					if rd.Protected == "" || rd.PrimaryKill < 0 {
						t.Fatalf("round %d never killed a protected primary: %+v", i, rd)
					}
					landed = landed || rd.StandbyKill >= 0
				}
				if !landed {
					t.Fatal("no round killed the standby mid-promotion")
				}
				t.Logf("%s", res)
			})
		}
	}
}

// TestChaosHAReproducible pins seed replayability for HA mode: two runs
// with the same configuration must draw the identical kill schedule (the
// rng-driven parts — protection arming and failover outcomes depend on
// live placement, which timing can shift).
func TestChaosHAReproducible(t *testing.T) {
	type schedule struct {
		Burst       []int
		SecondBurst []int
		Point       InjectionPoint
		ExtraKill   int
	}
	extract := func(res *Result) []schedule {
		out := make([]schedule, 0, len(res.RoundList))
		for _, rd := range res.RoundList {
			out = append(out, schedule{rd.Burst, rd.SecondBurst, rd.Point, rd.ExtraKill})
		}
		return out
	}
	cfg := Config{Topology: Chain, Seed: 7, Rounds: 3, HA: true}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := extract(a), extract(b); !reflect.DeepEqual(sa, sb) {
		t.Fatalf("HA mode: same seed produced different schedules:\n%+v\n%+v", sa, sb)
	}
}

// TestChaosHAReplayCommand pins the replay invocation: an HA run's
// failure output must name the -ha flag, or the printed command would
// replay a different (smaller) sample space.
func TestChaosHAReplayCommand(t *testing.T) {
	res := &Result{Topology: Chain, Seed: 5, Rounds: 3, Nodes: 4, HA: true}
	cmd := res.ReplayCommand()
	if !strings.Contains(cmd, " -ha") {
		t.Fatalf("replay command %q does not carry -ha", cmd)
	}
}
