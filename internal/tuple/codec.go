package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire/storage format (little endian):
//
//	magic   uint16 = 0x4d53 ("MS")
//	flags   uint8  (bit0: has token)
//	id      uint64
//	seq     uint64
//	ts      int64
//	src     len-prefixed string (uint16)
//	key     len-prefixed string (uint16)
//	data    len-prefixed bytes  (uint32)
//	[token] epoch uint64, kind uint8, from len-prefixed string (uint16)
//
// The codec is used by the preservation logs and the checkpoint files, so a
// round-trip must be loss-free; see TestMarshalRoundTrip and the
// testing/quick property in codec_test.go.

const magic uint16 = 0x4d53

var (
	// ErrShortBuffer reports a truncated encoding.
	ErrShortBuffer = errors.New("tuple: short buffer")
	// ErrBadMagic reports a buffer that does not start with a tuple.
	ErrBadMagic = errors.New("tuple: bad magic")
)

// MarshalledSize returns the exact number of bytes Marshal will produce.
func (t *Tuple) MarshalledSize() int {
	n := 2 + 1 + 8 + 8 + 8 + 2 + len(t.Src) + 2 + len(t.Key) + 4 + len(t.Data)
	if t.Tok != nil {
		n += 8 + 1 + 2 + len(t.Tok.From)
	}
	return n
}

// Marshal encodes t into a fresh byte slice.
func (t *Tuple) Marshal() []byte {
	buf := make([]byte, 0, t.MarshalledSize())
	return t.AppendMarshal(buf)
}

// AppendMarshal appends the encoding of t to buf and returns the result.
func (t *Tuple) AppendMarshal(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, magic)
	var flags uint8
	if t.Tok != nil {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, t.ID)
	buf = binary.LittleEndian.AppendUint64(buf, t.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Ts))
	buf = appendString16(buf, t.Src)
	buf = appendString16(buf, t.Key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Data)))
	buf = append(buf, t.Data...)
	if t.Tok != nil {
		buf = binary.LittleEndian.AppendUint64(buf, t.Tok.Epoch)
		buf = append(buf, uint8(t.Tok.Kind))
		buf = appendString16(buf, t.Tok.From)
	}
	return buf
}

// Unmarshal decodes one tuple from the front of buf and returns it together
// with the number of bytes consumed.
func Unmarshal(buf []byte) (*Tuple, int, error) {
	if len(buf) < 3 {
		return nil, 0, ErrShortBuffer
	}
	if binary.LittleEndian.Uint16(buf) != magic {
		return nil, 0, ErrBadMagic
	}
	flags := buf[2]
	off := 3
	if len(buf) < off+24 {
		return nil, 0, ErrShortBuffer
	}
	t := &Tuple{}
	t.ID = binary.LittleEndian.Uint64(buf[off:])
	t.Seq = binary.LittleEndian.Uint64(buf[off+8:])
	t.Ts = int64(binary.LittleEndian.Uint64(buf[off+16:]))
	off += 24
	var err error
	if t.Src, off, err = readString16(buf, off); err != nil {
		return nil, 0, err
	}
	if t.Key, off, err = readString16(buf, off); err != nil {
		return nil, 0, err
	}
	if len(buf) < off+4 {
		return nil, 0, ErrShortBuffer
	}
	dlen := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) < off+dlen {
		return nil, 0, ErrShortBuffer
	}
	if dlen > 0 {
		t.Data = append([]byte(nil), buf[off:off+dlen]...)
	}
	off += dlen
	if flags&1 != 0 {
		if len(buf) < off+9 {
			return nil, 0, ErrShortBuffer
		}
		tok := &Token{}
		tok.Epoch = binary.LittleEndian.Uint64(buf[off:])
		tok.Kind = TokenKind(buf[off+8])
		off += 9
		if tok.From, off, err = readString16(buf, off); err != nil {
			return nil, 0, err
		}
		t.Tok = tok
	}
	return t, off, nil
}

// MarshalMany concatenates the encodings of ts.
func MarshalMany(ts []*Tuple) []byte {
	var n int
	for _, t := range ts {
		n += t.MarshalledSize()
	}
	buf := make([]byte, 0, n)
	for _, t := range ts {
		buf = t.AppendMarshal(buf)
	}
	return buf
}

// UnmarshalMany decodes a concatenation produced by MarshalMany.
func UnmarshalMany(buf []byte) ([]*Tuple, error) {
	var out []*Tuple
	for len(buf) > 0 {
		t, n, err := Unmarshal(buf)
		if err != nil {
			return nil, fmt.Errorf("tuple %d: %w", len(out), err)
		}
		out = append(out, t)
		buf = buf[n:]
	}
	return out, nil
}

func appendString16(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readString16(buf []byte, off int) (string, int, error) {
	if len(buf) < off+2 {
		return "", off, ErrShortBuffer
	}
	n := int(binary.LittleEndian.Uint16(buf[off:]))
	off += 2
	if len(buf) < off+n {
		return "", off, ErrShortBuffer
	}
	return string(buf[off : off+n]), off + n, nil
}
