package buffer

import (
	"fmt"
	"sync"

	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// SourceLog implements source preservation: a source HAU writes every
// output tuple to stable storage before sending it downstream, so the
// preserved tuples remain accessible even if the source node fails (paper
// §III-A, step 3). Writes are group-committed: tuples accumulate in a small
// pending batch that is flushed as a single stable write once it reaches
// FlushBytes, keeping per-tuple latency overhead realistic for low-rate
// sensor sources.
//
// The log is segmented by checkpoint epoch. When the application checkpoint
// for epoch e completes, everything preserved for epochs < e is obsolete
// (the new checkpoint already contains its effects) and is dropped.
type SourceLog struct {
	src        string
	store      *storage.Store
	flushBytes int64

	mu       sync.Mutex
	epoch    uint64
	segments map[uint64][]*tuple.Tuple // epoch -> flushed tuples
	pending  []*tuple.Tuple
	pendingB int64
	segSeq   uint64
}

// NewSourceLog returns a log for source HAU src persisting into store.
// flushBytes <= 0 flushes on every append (strict write-before-send).
func NewSourceLog(src string, store *storage.Store, flushBytes int64) *SourceLog {
	return &SourceLog{
		src:        src,
		store:      store,
		flushBytes: flushBytes,
		segments:   make(map[uint64][]*tuple.Tuple),
	}
}

// Epoch returns the epoch new tuples are being preserved under.
func (l *SourceLog) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Append preserves t (a copy) under the current epoch. The call blocks for
// the stable-storage write when the pending batch flushes — modelling
// "saves these tuples in stable storage before sending them out".
func (l *SourceLog) Append(t *tuple.Tuple) error {
	l.mu.Lock()
	l.pending = append(l.pending, t.Clone())
	l.pendingB += t.Size()
	needFlush := l.pendingB >= l.flushBytes
	l.mu.Unlock()
	if needFlush {
		return l.Flush()
	}
	return nil
}

// Flush force-writes the pending batch to stable storage.
func (l *SourceLog) Flush() error {
	l.mu.Lock()
	if len(l.pending) == 0 {
		l.mu.Unlock()
		return nil
	}
	batch := l.pending
	bytes := l.pendingB
	epoch := l.epoch
	seq := l.segSeq
	l.segSeq++
	l.pending = nil
	l.pendingB = 0
	l.mu.Unlock()

	key := fmt.Sprintf("preserve/%s/%016d/%08d", l.src, epoch, seq)
	if l.store != nil {
		if _, err := l.store.Put(key, tuple.MarshalMany(batch)); err != nil {
			return fmt.Errorf("sourcelog %s: %w", l.src, err)
		}
	}
	_ = bytes
	l.mu.Lock()
	l.segments[epoch] = append(l.segments[epoch], batch...)
	l.mu.Unlock()
	return nil
}

// BeginEpoch starts preserving under epoch e. Called when the source HAU
// takes its individual checkpoint for e: tuples generated after the
// checkpoint belong to the new epoch.
func (l *SourceLog) BeginEpoch(e uint64) error {
	if err := l.Flush(); err != nil {
		return err
	}
	l.mu.Lock()
	l.epoch = e
	l.mu.Unlock()
	return nil
}

// Prune discards segments for epochs < keep: once the application
// checkpoint `keep` is complete, older preserved tuples can never be
// replayed again.
func (l *SourceLog) Prune(keep uint64) {
	l.mu.Lock()
	var drop []uint64
	for e := range l.segments {
		if e < keep {
			drop = append(drop, e)
		}
	}
	for _, e := range drop {
		delete(l.segments, e)
	}
	l.mu.Unlock()
	if l.store != nil {
		for _, e := range drop {
			prefix := fmt.Sprintf("preserve/%s/%016d/", l.src, e)
			for _, k := range l.store.Keys(prefix) {
				_ = l.store.Delete(k)
			}
		}
	}
}

// ReplaySince returns copies of every preserved tuple with epoch >= since,
// in preservation order, charging stable-storage read cost. Recovery calls
// this with the MRC epoch to re-feed the restarted application.
func (l *SourceLog) ReplaySince(since uint64) ([]*tuple.Tuple, error) {
	if err := l.Flush(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	var epochs []uint64
	for e := range l.segments {
		if e >= since {
			epochs = append(epochs, e)
		}
	}
	// Epoch numbers are strictly increasing over time, so sorting them
	// recovers preservation order.
	for i := 1; i < len(epochs); i++ {
		for j := i; j > 0 && epochs[j] < epochs[j-1]; j-- {
			epochs[j], epochs[j-1] = epochs[j-1], epochs[j]
		}
	}
	var out []*tuple.Tuple
	var bytes int64
	for _, e := range epochs {
		for _, t := range l.segments[e] {
			out = append(out, t.Clone())
			bytes += t.Size()
		}
	}
	l.mu.Unlock()
	if bytes > 0 && l.store != nil {
		l.store.Disk().Read(bytes)
	}
	return out, nil
}

// PreservedCount returns the number of flushed tuples currently retained.
func (l *SourceLog) PreservedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, seg := range l.segments {
		n += len(seg)
	}
	return n
}
