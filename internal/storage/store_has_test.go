package storage

import "testing"

// A zero-byte blob is a legal value — an operator with no state yet
// checkpoints an empty snapshot. Has must report presence by key lookup,
// not by comparing the stored value against nil (Put of an empty slice
// stores nil, which a value-based check mistook for "missing").
func TestHasZeroByteBlob(t *testing.T) {
	s := NewStore(DiskSpec{})
	if s.Has("empty") {
		t.Fatal("Has reported a key that was never stored")
	}
	if _, err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if !s.Has("empty") {
		t.Fatal("Has missed a stored zero-byte blob")
	}
	if _, err := s.Put("short", []byte{}); err != nil {
		t.Fatal(err)
	}
	if !s.Has("short") {
		t.Fatal("Has missed a stored empty-slice blob")
	}
	got, _, err := s.Get("empty")
	if err != nil {
		t.Fatalf("Get of zero-byte blob: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("zero-byte blob read back %d bytes", len(got))
	}
	if err := s.Delete("empty"); err != nil {
		t.Fatal(err)
	}
	if s.Has("empty") {
		t.Fatal("Has reported a deleted key")
	}
	s.SetDown(true)
	if s.Has("short") {
		t.Fatal("Has reported a key on a downed store")
	}
}
