// Command msfail prints the commodity-data-center failure model (Table I)
// and, optionally, a sampled failure trace for a cluster.
//
//	msfail                      # Table I for Google DC and Abe
//	msfail -trace -nodes 2400 -horizon 720h
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"meteorshower/internal/bench"
	"meteorshower/internal/failure"
)

func main() {
	var (
		trace   = flag.Bool("trace", false, "print a sampled failure trace")
		nodes   = flag.Int("nodes", 2400, "cluster size for the trace")
		horizon = flag.Duration("horizon", 30*24*time.Hour, "trace horizon")
		seed    = flag.Int64("seed", 1, "trace seed")
		abe     = flag.Bool("abe", false, "use the Abe cluster profile for the trace")
	)
	flag.Parse()

	bench.FprintTable1(os.Stdout, bench.RunTable1(*seed))

	// What the failure rates mean for an application: a 1-safe scheme
	// masks single-node failures only; Meteor Shower survives whole
	// bursts and pays a fast recovery instead.
	year := failure.Generate(failure.GoogleDC(), 2400, failure.Year, *seed)
	oneSafe := failure.ApplicationAvailability(year, 1, 10*time.Second, failure.Year)
	ms := failure.ApplicationAvailability(year, 1<<30, 30*time.Second, failure.Year)
	fmt.Printf("\napplication availability over a Google-model year (2400 nodes):\n")
	fmt.Printf("  1-safe scheme:  %.4f%%  (bursts are fatal)\n", oneSafe*100)
	fmt.Printf("  Meteor Shower:  %.4f%%  (whole-application recovery per event)\n", ms*100)

	if !*trace {
		return
	}
	prof := failure.GoogleDC()
	if *abe {
		prof = failure.AbeCluster()
	}
	events := failure.Generate(prof, *nodes, *horizon, *seed)
	fmt.Printf("\ntrace: %s, %d nodes, %s horizon, %d events\n",
		prof.Name, *nodes, *horizon, len(events))
	for _, e := range events {
		kind := "single"
		if e.Correlated() {
			kind = fmt.Sprintf("BURST x%d", len(e.Nodes))
		}
		fmt.Printf("  +%-10s %-12s %-10s recovery %s\n",
			e.At.Truncate(time.Minute), e.Cause, kind, e.Recovery.Truncate(time.Minute))
	}
}
