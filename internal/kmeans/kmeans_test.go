package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates n points around each of the given centers with the given
// spread.
func blobs(r *rand.Rand, centers []Point, n int, spread float64) []Point {
	var pts []Point
	for _, c := range centers {
		for i := 0; i < n; i++ {
			p := make(Point, len(c))
			for d := range c {
				p[d] = c[d] + r.NormFloat64()*spread
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestClusterBadInput(t *testing.T) {
	if _, err := Cluster(nil, Config{K: 1}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Cluster([]Point{{1}}, Config{K: 2}); err == nil {
		t.Fatal("K > len(points) accepted")
	}
	if _, err := Cluster([]Point{{1}, {2}}, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Cluster([]Point{{1, 2}, {3}}, Config{K: 1}); err == nil {
		t.Fatal("inconsistent dims accepted")
	}
}

func TestClusterSeparatedBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	centers := []Point{{0, 0}, {100, 0}, {0, 100}}
	pts := blobs(r, centers, 40, 1.5)
	res, err := Cluster(pts, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Every recovered centroid must be within 5 units of a true center.
	for _, c := range res.Centroids {
		best := math.Inf(1)
		for _, tc := range centers {
			if d := math.Sqrt(SqDist(c, tc)); d < best {
				best = d
			}
		}
		if best > 5 {
			t.Fatalf("centroid %v is %.1f from any true center", c, best)
		}
	}
	// Points from one blob should share a label.
	for b := 0; b < 3; b++ {
		label := res.Assignment[b*40]
		for i := 1; i < 40; i++ {
			if res.Assignment[b*40+i] != label {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := blobs(r, []Point{{0}, {50}}, 30, 2)
	a, _ := Cluster(pts, Config{K: 2, Seed: 42})
	b, _ := Cluster(pts, Config{K: 2, Seed: 42})
	if a.Inertia != b.Inertia || a.Iterations != b.Iterations {
		t.Fatal("same seed produced different runs")
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestClusterKEqualsN(t *testing.T) {
	pts := []Point{{0}, {10}, {20}}
	res, err := Cluster(pts, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("K=N inertia = %v, want 0", res.Inertia)
	}
}

func TestClusterIdenticalPoints(t *testing.T) {
	pts := []Point{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res, err := Cluster(pts, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia = %v", res.Inertia)
	}
}

// Property: every point is assigned to its nearest centroid.
func TestQuickNearestCentroidInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(80)
		k := 1 + r.Intn(4)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Float64() * 100, r.Float64() * 100}
		}
		res, err := Cluster(pts, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for i, p := range pts {
			got := SqDist(p, res.Centroids[res.Assignment[i]])
			for _, c := range res.Centroids {
				if SqDist(p, c) < got-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: inertia never exceeds the inertia of the trivial single
// centroid at the global mean when K >= 1.
func TestQuickInertiaBeatsGlobalMean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(50)
		pts := make([]Point, n)
		mean := Point{0, 0}
		for i := range pts {
			pts[i] = Point{r.Float64() * 10, r.Float64() * 10}
			mean[0] += pts[i][0] / float64(n)
			mean[1] += pts[i][1] / float64(n)
		}
		var trivial float64
		for _, p := range pts {
			trivial += SqDist(p, mean)
		}
		res, err := Cluster(pts, Config{K: 2, Seed: seed})
		if err != nil {
			return false
		}
		return res.Inertia <= trivial+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCluster1000x2(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pts := blobs(r, []Point{{0, 0}, {50, 50}, {0, 100}, {100, 0}}, 250, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(pts, Config{K: 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
