package bench

// Hot-path microbenchmark harness. Unlike the figure experiments, which
// reproduce the paper's numbers on the scaled simulation, this harness
// measures the raw tuple throughput of the HAU runtime itself: elastic
// sources blast tuples through a short pipeline with no artificial
// per-tuple delay, no checkpoints and no failure injection, so the cost
// under test is exactly the edge transport + event loop + delivery path.
// BENCH_hotpath.json records the numbers so later PRs cannot regress them.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"meteorshower/internal/buffer"
	"meteorshower/internal/operator"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// HotPathConfig shapes one hot-path run.
type HotPathConfig struct {
	// FanIn is the number of source HAUs feeding the middle HAU (>= 1).
	FanIn int
	// Preserve enables baseline-style input preservation on the middle
	// HAU, with a background trimmer standing in for checkpoint acks.
	Preserve bool
	// Tuples is how many data tuples the sink must deliver before the
	// run stops.
	Tuples int
	// Payload is the payload size per tuple in bytes.
	Payload int
	// EdgeBuffer overrides the per-edge buffer capacity (0 = default).
	EdgeBuffer int
}

// HotPathResult reports what a hot-path run measured.
type HotPathResult struct {
	Delivered uint64        // tuples the sink saw
	Elapsed   time.Duration // wall time from start to target delivery
}

// TuplesPerSec returns the headline throughput.
func (r HotPathResult) TuplesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Delivered) / r.Elapsed.Seconds()
}

// RunHotPath drives FanIn elastic sources -> map -> sink until the sink
// has delivered cfg.Tuples tuples, then tears the pipeline down and
// reports the elapsed time. Sources run in MaxRate mode so downstream
// backpressure does the pacing and the measured rate is the runtime's
// capacity, not the offered load.
func RunHotPath(cfg HotPathConfig) (HotPathResult, error) {
	if cfg.FanIn <= 0 {
		cfg.FanIn = 1
	}
	if cfg.Tuples <= 0 {
		cfg.Tuples = 1
	}
	if cfg.Payload < 0 {
		cfg.Payload = 0
	}
	scheme := spe.MSSrc
	if cfg.Preserve {
		scheme = spe.Baseline
	}

	// One shared payload buffer: the benchmark measures transport cost,
	// not payload generation, and emitted payloads are immutable.
	payload := make([]byte, cfg.Payload)
	payloadFn := func(id uint64, _ *rand.Rand) (string, []byte) {
		return "k", payload
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	haus := make([]*spe.HAU, 0, cfg.FanIn+2)
	inEdges := make([]*spe.Edge, cfg.FanIn)
	for i := 0; i < cfg.FanIn; i++ {
		id := fmt.Sprintf("S%d", i)
		src := operator.NewRateSource(id, 0, int64(i+1), payloadFn)
		src.MaxRate = true
		src.CatchUpCap = 8192
		e := spe.NewEdge(id, "M", cfg.EdgeBuffer)
		inEdges[i] = e
		h, err := spe.New(spe.Config{
			ID:        id,
			Scheme:    scheme,
			Ops:       []operator.Operator{src},
			Out:       []*spe.Edge{e},
			TickEvery: time.Millisecond,
		})
		if err != nil {
			return HotPathResult{}, err
		}
		haus = append(haus, h)
	}

	outEdge := spe.NewEdge("M", "K", cfg.EdgeBuffer)
	var pres *buffer.Preserver
	if cfg.Preserve {
		disk := storage.NewDisk(storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond, TimeScale: 0})
		pres = buffer.NewPreserver(1, buffer.DefaultMemCap, disk)
	}
	mid, err := spe.New(spe.Config{
		ID:        "M",
		Scheme:    scheme,
		Ops:       []operator.Operator{operator.NewMap("m", func(t *tuple.Tuple) *tuple.Tuple { return t })},
		In:        inEdges,
		Out:       []*spe.Edge{outEdge},
		Preserver: pres,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		return HotPathResult{}, err
	}
	haus = append(haus, mid)

	sink := operator.NewSink("K", nil)
	last, err := spe.New(spe.Config{
		ID:        "K",
		Scheme:    scheme,
		Ops:       []operator.Operator{sink},
		In:        []*spe.Edge{outEdge},
		TickEvery: time.Millisecond,
	})
	if err != nil {
		return HotPathResult{}, err
	}
	haus = append(haus, last)

	start := time.Now()
	for _, h := range haus {
		h.Start(ctx)
	}

	// Stand-in for checkpoint acks: trim the preservation buffer up to
	// what the sink has already seen, like a downstream ack would.
	if pres != nil {
		go func() {
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					pres.Trim(0, sink.Delivered())
				}
			}
		}()
	}

	target := uint64(cfg.Tuples)
	var elapsed time.Duration
	for {
		if sink.Delivered() >= target {
			elapsed = time.Since(start)
			break
		}
		if err := firstErr(haus); err != nil {
			cancel()
			return HotPathResult{}, err
		}
		time.Sleep(50 * time.Microsecond)
	}
	delivered := sink.Delivered()
	cancel()
	for _, h := range haus {
		select {
		case <-h.Done():
		case <-time.After(5 * time.Second):
			return HotPathResult{}, errors.New("bench: HAU failed to stop")
		}
	}
	return HotPathResult{Delivered: delivered, Elapsed: elapsed}, nil
}

func firstErr(haus []*spe.HAU) error {
	for _, h := range haus {
		if err := h.Err(); err != nil {
			return err
		}
	}
	return nil
}
