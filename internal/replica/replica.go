// Package replica decides which HAUs deserve an active standby. It is the
// policy half of hybrid fault tolerance: the cluster layer owns the
// mechanism (tee, suppression, failover), this package owns the per-HAU
// ModeStandby-vs-ModeCheckpoint assignment, derived from the state-size
// and recovery-time metrics the cluster already records.
//
// The shape follows "Tolerating Correlated Failures in Massively Parallel
// Stream Processing Engines" (Su & Zhou): replication beats rollback
// exactly for the operators whose state makes them dominate recovery
// time, and those are a small fraction of the graph — so the planner
// protects the few hottest operators under a budget instead of
// replicating everything. Hysteresis mirrors the cluster's autoscaler:
// per-HAU cooldowns and separated protect/demote watermarks keep an
// operator oscillating around a threshold from churning standbys, each of
// which costs a quiesce epoch and a state clone.
package replica

import (
	"sort"
	"time"
)

// Mode is an HAU's fault-tolerance assignment.
type Mode uint8

const (
	// ModeCheckpoint is the default: recover by whole-application
	// rollback to the last complete epoch.
	ModeCheckpoint Mode = iota
	// ModeStandby runs an active standby; failure is a sub-window
	// single-edge switchover instead of a rollback.
	ModeStandby
)

func (m Mode) String() string {
	if m == ModeStandby {
		return "standby"
	}
	return "checkpoint"
}

// Stat is one protectable HAU as the planner sees it.
type Stat struct {
	HAU         string
	StateBytes  int64         // last cached operator state size
	RecoverTime time.Duration // observed whole-application rollback time (0 = none yet)
	Protected   bool          // a standby is currently armed
}

// Action is one planner decision: set HAU's mode to Mode.
type Action struct {
	HAU  string
	Mode Mode
}

// Config tunes the planner's watermarks and budget.
type Config struct {
	// ProtectAbove arms a standby for an unprotected HAU whose state
	// exceeds it (bytes). <= 0 disables protection.
	ProtectAbove int64
	// DemoteBelow disarms a protected HAU whose state has fallen under
	// it. Keep well below ProtectAbove or a flat workload flaps.
	// <= 0 means never demote on size.
	DemoteBelow int64
	// MaxStandbys bounds the number of simultaneously protected HAUs —
	// each standby burns a core's worth of duplicate execution. <= 0
	// defaults to 1.
	MaxStandbys int
	// Cooldown is the per-HAU minimum time between mode changes.
	Cooldown time.Duration
}

// Planner assigns modes with hysteresis. Not safe for concurrent use; the
// controller's HA tick serializes calls.
type Planner struct {
	cfg  Config
	last map[string]time.Time // per-HAU last mode change
}

// New returns a Planner for cfg.
func New(cfg Config) *Planner {
	if cfg.MaxStandbys <= 0 {
		cfg.MaxStandbys = 1
	}
	return &Planner{cfg: cfg, last: make(map[string]time.Time)}
}

// Step picks at most one mode change from the current stats. Demotions are
// considered first — they free budget a pending protection may need.
// Candidates for protection are ranked by observed recovery time, then
// state size, then id (deterministic in stats). The caller reports the
// action's completion implicitly: next Step's stats show the new
// Protected flags, and a failed action simply leaves them unchanged, so
// the planner retries after the cooldown.
func (p *Planner) Step(now time.Time, stats []Stat) (Action, bool) {
	protected := 0
	for _, s := range stats {
		if s.Protected {
			protected++
		}
	}
	ordered := append([]Stat(nil), stats...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.RecoverTime != b.RecoverTime {
			return a.RecoverTime > b.RecoverTime
		}
		if a.StateBytes != b.StateBytes {
			return a.StateBytes > b.StateBytes
		}
		return a.HAU < b.HAU
	})
	cooled := func(id string) bool {
		return now.Sub(p.last[id]) >= p.cfg.Cooldown
	}
	if p.cfg.DemoteBelow > 0 {
		// Coldest protected HAU first (walk the ranking backwards).
		for i := len(ordered) - 1; i >= 0; i-- {
			s := ordered[i]
			if s.Protected && s.StateBytes < p.cfg.DemoteBelow && cooled(s.HAU) {
				p.last[s.HAU] = now
				return Action{HAU: s.HAU, Mode: ModeCheckpoint}, true
			}
		}
	}
	if p.cfg.ProtectAbove > 0 && protected < p.cfg.MaxStandbys {
		for _, s := range ordered {
			if !s.Protected && s.StateBytes > p.cfg.ProtectAbove && cooled(s.HAU) {
				p.last[s.HAU] = now
				return Action{HAU: s.HAU, Mode: ModeStandby}, true
			}
		}
	}
	return Action{}, false
}
