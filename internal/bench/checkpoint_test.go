package bench

import "testing"

// TestCheckpointHarness is a fast correctness check of the benchmark
// drivers: dirty-byte accounting must track the armed fraction, and the
// restore worker pool must overlap the modelled per-HAU restore latency.
func TestCheckpointHarness(t *testing.T) {
	sparse, err := RunCheckpointCell(CheckpointParams{StateBytes: 256 << 10, DirtyFrac: 0.05, Epochs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sparse %+v", sparse)
	if sparse.DirtyKB <= 0 || sparse.WrittenKB <= 0 {
		t.Fatal("no bytes measured")
	}
	full, err := RunCheckpointCell(CheckpointParams{StateBytes: 256 << 10, DirtyFrac: 1, Epochs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full %+v", full)
	if full.DirtyKB <= sparse.DirtyKB {
		t.Fatal("dirty accounting broken")
	}

	cells, err := RunRestoreWidth(RestoreParams{Width: 4, StateBytes: 1 << 20, Workers: []int{1, 4}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		t.Logf("restore %+v", c)
		if c.HAUs != 8 {
			t.Fatalf("want 8 HAUs, got %d", c.HAUs)
		}
	}
	if cells[1].DeserializeUs >= cells[0].DeserializeUs {
		t.Fatalf("4 workers (%vus) not faster than 1 (%vus)", cells[1].DeserializeUs, cells[0].DeserializeUs)
	}
}
