package cluster

import (
	"context"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/partition"
	"meteorshower/internal/placement"
	"meteorshower/internal/spe"
)

// keyedApp builds S0,S1 -> C -> K with a keyed counter in the middle — the
// smallest topology whose interior operator can be split by slot.
func keyedApp(col *metrics.Collector, reg *sinkRegistry) AppSpec {
	g := graph.New()
	for _, id := range []string{"S0", "S1", "C", "K"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("S0", "C")
	g.MustAddEdge("S1", "C")
	g.MustAddEdge("C", "K")
	return AppSpec{
		Name:  "keyed-test",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id[0] {
			case 'S':
				return []operator.Operator{operator.NewRateSource(id, 3, 7, operator.BytePayload(16, 64))}
			case 'C':
				return []operator.Operator{operator.NewCounter(id)}
			default:
				s := operator.NewSink("K", col)
				s.TrackIdentity = true
				reg.set(s)
				return []operator.Operator{s}
			}
		},
	}
}

func newKeyedCluster(t *testing.T, nodes int) (*Cluster, *metrics.Collector, *sinkRegistry) {
	t.Helper()
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:           keyedApp(col, reg),
		Scheme:        spe.MSSrcAP,
		Nodes:         nodes,
		NodesPerRack:  2,
		Placement:     placement.RackSpread{},
		LocalDiskSpec: local,
		SharedSpec:    shared,
		TickEvery:     time.Millisecond,
		SourceFlush:   256,
		RetainEpochs:  3,
		Seed:          1,
		Metrics:       col,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, col, reg
}

func TestRescaleValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Baseline scheme has no token barrier to drain with.
	blCl, _, _ := newTestCluster(t, spe.Baseline, 3)
	if _, err := blCl.SplitHAU(ctx, "M", 2); err == nil {
		t.Fatal("baseline rescale accepted")
	}

	cl, _, _ := newKeyedCluster(t, 4)
	if _, err := cl.SplitHAU(ctx, "C", 2); err == nil {
		t.Fatal("rescale before Start accepted")
	}
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	if _, err := cl.SplitHAU(ctx, "C", 1); err == nil {
		t.Fatal("split to one replica accepted")
	}
	if _, err := cl.SplitHAU(ctx, "S0", 2); err == nil {
		t.Fatal("source rescale accepted")
	}
	if _, err := cl.SplitHAU(ctx, "K", 2); err == nil {
		t.Fatal("sink rescale accepted")
	}
	if _, err := cl.RescaleHAU(ctx, "C~1", 2); err == nil {
		t.Fatal("replica id accepted as rescale target")
	}
	if _, err := cl.RescaleHAU(ctx, "C", 1); err == nil {
		t.Fatal("no-op rescale to current replica count accepted")
	}
	if _, err := cl.MergeHAU(ctx, "C"); err == nil {
		t.Fatal("merge of unsplit operator accepted")
	}

	// An app whose interior operator does not implement PartitionedState.
	plain, _, _ := newTestCluster(t, spe.MSSrcAP, 3)
	if err := plain.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer plain.StopAll()
	if _, err := plain.SplitHAU(ctx, "M", 2); err == nil {
		t.Fatal("non-partitionable operator accepted")
	}
}

// waitNoViolations polls until a sampled sink report shows zero gaps and
// duplicates — transient gaps from cross-replica interleaving close once
// the slower path's tuples land.
func waitNoViolations(t *testing.T, reg *sinkRegistry, what string) {
	t.Helper()
	var last operator.SinkReport
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		last = reg.get().Report()
		if last.TotalViolations() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("exactly-once violated (%s):\n%s", what, last)
}

// TestSplitThenMergeExactlyOnce splits the counter across two replicas while
// the application streams, checks flow continues with both replicas live,
// merges back, and verifies the sink saw every id exactly once throughout.
func TestSplitThenMergeExactlyOnce(t *testing.T) {
	cl, col, reg := newKeyedCluster(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 100
	})

	stats, err := cl.SplitHAU(ctx, "C", 2)
	if err != nil {
		t.Fatalf("SplitHAU: %v", err)
	}
	if stats.From != 1 || stats.To != 2 || len(stats.Replicas) != 2 {
		t.Fatalf("split stats = %+v", stats)
	}
	if stats.Bytes <= 0 || stats.Drain <= 0 || stats.Downtime <= 0 {
		t.Fatalf("implausible split timings: %+v", stats)
	}
	reps := cl.Replicas("C")
	if len(reps) != 2 || !partition.IsReplica(reps[0]) || partition.BaseID(reps[0]) != "C" {
		t.Fatalf("replicas = %v", reps)
	}
	for _, r := range reps {
		if cl.HAU(r) == nil {
			t.Fatalf("replica %s has no HAU", r)
		}
	}
	if cl.HAU("C") != nil {
		t.Fatal("old incarnation still installed after split")
	}
	// Both replicas must actually process: the two sources key tuples over
	// 64 distinct keys, so both slot shares receive traffic.
	waitFor(t, 5*time.Second, "both replicas processing", func() bool {
		for _, r := range cl.Replicas("C") {
			h := cl.HAU(r)
			if h == nil || h.ProcessedCount() == 0 {
				return false
			}
		}
		return true
	})
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-split deliveries", func() bool {
		return reg.get().Delivered() > after+200
	})
	waitNoViolations(t, reg, "after split")

	mstats, err := cl.MergeHAU(ctx, "C")
	if err != nil {
		t.Fatalf("MergeHAU: %v", err)
	}
	if mstats.From != 2 || mstats.To != 1 {
		t.Fatalf("merge stats = %+v", mstats)
	}
	if got := cl.Replicas("C"); len(got) != 1 || got[0] != "C" {
		t.Fatalf("replicas after merge = %v", got)
	}
	after = reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-merge deliveries", func() bool {
		return reg.get().Delivered() > after+200
	})
	waitNoViolations(t, reg, "after merge")

	res := col.Rescales()
	if len(res) != 2 {
		t.Fatalf("metrics recorded %d rescales, want 2", len(res))
	}
	if res[0].HAU != "C" || res[0].From != 1 || res[0].To != 2 ||
		res[1].From != 2 || res[1].To != 1 {
		t.Fatalf("rescale records = %+v", res)
	}
	for _, r := range res {
		if r.Bytes <= 0 || r.Drain <= 0 || r.Downtime <= 0 {
			t.Fatalf("rescale record missing phases: %+v", r)
		}
	}
	cl.StopAll()
	if d := reg.get().Duplicates(); d != 0 {
		t.Fatalf("sink saw %d duplicates across split+merge", d)
	}
}

// TestSplitStatePreserved checks the slot carve really moved state: the
// replicas' merged counts must equal what the single incarnation had
// counted, with no key counted twice.
func TestSplitStatePreserved(t *testing.T) {
	cl, _, reg := newKeyedCluster(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "warmup", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 200
	})
	if _, err := cl.SplitHAU(ctx, "C", 2); err != nil {
		t.Fatal(err)
	}
	// Post-split, the replicas' counter totals plus the sink's deliveries
	// stay consistent: every delivered tuple was counted by exactly one
	// replica. Quiesce the stream first so in-flight tuples settle.
	cl.StopAll()
	var repTotal uint64
	for _, r := range cl.Replicas("C") {
		h := cl.HAU(r)
		if h == nil {
			t.Fatalf("replica %s missing", r)
		}
		ops := h.Operators()
		cnt, ok := ops[0].(*operator.Counter)
		if !ok {
			t.Fatalf("replica %s operator is %T", r, ops[0])
		}
		total := cnt.Total()
		if total == 0 {
			t.Fatalf("replica %s counted nothing — carve moved no state", r)
		}
		repTotal += total
	}
	if delivered := reg.get().Delivered(); repTotal < delivered {
		t.Fatalf("replica totals %d < sink deliveries %d: state lost in carve", repTotal, delivered)
	}
}

// TestSplitSurvivesRecovery splits, lets the commit epoch land, kills the
// whole cluster, and verifies recovery rebuilds the two-replica geometry
// from the journal with exactly-once delivery intact.
func TestSplitSurvivesRecovery(t *testing.T) {
	cl, _, reg := newKeyedCluster(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "warmup", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 100
	})
	if _, err := cl.SplitHAU(ctx, "C", 2); err != nil {
		t.Fatal(err)
	}
	repsBefore := cl.Replicas("C")
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-split flow", func() bool {
		return reg.get().Delivered() > after+100
	})

	cl.KillAll()
	stats, err := cl.RecoverAllWithRetry(ctx, 10, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HAUs != 5 {
		t.Fatalf("recovered %d HAUs, want 5 (2 sources, 2 replicas, sink)", stats.HAUs)
	}
	if got := cl.Replicas("C"); len(got) != 2 || got[0] != repsBefore[0] || got[1] != repsBefore[1] {
		t.Fatalf("replicas after recovery = %v, want %v", got, repsBefore)
	}
	after = reg.get().Delivered()
	waitFor(t, 10*time.Second, "post-recovery flow", func() bool {
		return reg.get().Delivered() > after+100
	})
	waitNoViolations(t, reg, "after split+recovery")
	cl.StopAll()
	if d := reg.get().Duplicates(); d != 0 {
		t.Fatalf("sink saw %d duplicates across split+recovery", d)
	}
}

// TestAutoscaleSplitsHotOperator drives the controller's autoscaler: the
// counter's state grows without bound, crosses the watermark, and the
// detector splits it without an explicit SplitHAU call.
func TestAutoscaleSplitsHotOperator(t *testing.T) {
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:            keyedApp(col, reg),
		Scheme:         spe.MSSrcAP,
		Nodes:          4,
		LocalDiskSpec:  local,
		SharedSpec:     shared,
		TickEvery:      time.Millisecond,
		CkptPeriod:     50 * time.Millisecond,
		SourceFlush:    256,
		Seed:           1,
		Metrics:        col,
		AutoscaleEvery: 20 * time.Millisecond,
		SplitAbove:     1, // any keyed state at all counts as hot
		MaxReplicas:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cl.StartController(ctx)
	waitFor(t, 10*time.Second, "autoscale split", func() bool {
		return len(cl.Replicas("C")) == 2
	})
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-autoscale flow", func() bool {
		return reg.get().Delivered() > after+100
	})
	waitNoViolations(t, reg, "after autoscale split")
	cl.StopAll()
}

// TestGraphDownstreamReadOnly pins the read-only contract of the graph
// accessors the router swap relies on: mutating a returned slice must not
// corrupt the graph's adjacency.
func TestGraphDownstreamReadOnly(t *testing.T) {
	g := graph.New()
	for _, id := range []string{"a", "b", "c"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("a", "c")
	down := g.Downstream("a")
	down[0] = "corrupted"
	if got := g.Downstream("a"); got[0] != "b" || got[1] != "c" {
		t.Fatalf("Downstream leaked internal storage: %v", got)
	}
	up := g.Upstream("b")
	up[0] = "corrupted"
	if got := g.Upstream("b"); got[0] != "a" {
		t.Fatalf("Upstream leaked internal storage: %v", got)
	}
}

// TestSplitHAUWeighted splits with an explicitly skewed weight vector and
// checks the resulting assignment is measurably better balanced under
// those weights than the count-balanced split, with flow still
// exactly-once.
func TestSplitHAUWeighted(t *testing.T) {
	cl, _, reg := newKeyedCluster(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 100
	})
	w := make(partition.Weights, partition.DefaultSlots)
	for s := range w {
		w[s] = 1
	}
	for s := 0; s < 32; s++ {
		w[s] = 100 // hot range: the first 32 slots carry ~94% of the load
	}
	stats, err := cl.SplitHAUWeighted(ctx, "C", 2, w)
	if err != nil {
		t.Fatalf("SplitHAUWeighted: %v", err)
	}
	if stats.From != 1 || stats.To != 2 || stats.Moved == 0 {
		t.Fatalf("weighted split stats = %+v", stats)
	}
	cl.mu.Lock()
	assign := cl.parts["C"].Assign.Clone()
	cl.mu.Unlock()
	got := partition.ImbalanceRatio(assign.LoadOf(w))
	count := partition.NewAssignment(partition.DefaultSlots)
	count.Rescale(2)
	ref := partition.ImbalanceRatio(count.LoadOf(w))
	if got > 1.25 || got > ref {
		t.Fatalf("weighted split imbalance %.3f (count-balanced would be %.3f)", got, ref)
	}
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-split deliveries", func() bool {
		return reg.get().Delivered() > after+200
	})
	waitNoViolations(t, reg, "after weighted split")
	cl.StopAll()
}

// TestRebalanceHAU drives the slots-only redistribution: after a
// count-balanced split, a rebalance under a skewed weight vector must
// re-incarnate the SAME replica count with the hot slots spread out,
// keep the stream exactly-once, record a skew metric, and no-op when
// called again with the weights it just balanced for.
func TestRebalanceHAU(t *testing.T) {
	cl, col, reg := newKeyedCluster(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 100
	})
	if _, err := cl.RebalanceHAU(ctx, "C", nil); err == nil {
		t.Fatal("rebalance of unsplit operator accepted")
	}
	if _, err := cl.SplitHAU(ctx, "C", 2); err != nil {
		t.Fatalf("SplitHAU: %v", err)
	}
	oldReps := cl.Replicas("C")

	// Weights that concentrate the load on replica 0's slot share.
	cl.mu.Lock()
	assign := cl.parts["C"].Assign.Clone()
	cl.mu.Unlock()
	w := make(partition.Weights, assign.Slots())
	for s := range w {
		if assign.Owner(s) == 0 {
			w[s] = 100
		} else {
			w[s] = 1
		}
	}
	stats, err := cl.RebalanceHAU(ctx, "C", w)
	if err != nil {
		t.Fatalf("RebalanceHAU: %v", err)
	}
	if stats.From != 2 || stats.To != 2 || stats.Moved == 0 {
		t.Fatalf("rebalance stats = %+v", stats)
	}
	newReps := cl.Replicas("C")
	if len(newReps) != 2 {
		t.Fatalf("replica count changed by rebalance: %v", newReps)
	}
	for _, o := range oldReps {
		for _, n := range newReps {
			if o == n {
				t.Fatalf("incarnation id %s reused across rebalance", o)
			}
		}
	}
	cl.mu.Lock()
	after := cl.parts["C"].Assign.Clone()
	cl.mu.Unlock()
	if r := partition.ImbalanceRatio(after.LoadOf(w)); r > 1.25 {
		t.Fatalf("post-rebalance imbalance %.3f > 1.25", r)
	}
	delivered := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-rebalance deliveries", func() bool {
		return reg.get().Delivered() > delivered+200
	})
	waitNoViolations(t, reg, "after rebalance")

	var sawRebalance bool
	for _, s := range col.Skews() {
		if s.HAU == "C" && s.Action == "rebalance" && s.Moved == stats.Moved && s.Replicas == 2 {
			sawRebalance = true
		}
	}
	if !sawRebalance {
		t.Fatalf("no rebalance skew metric recorded: %+v", col.Skews())
	}

	// Balanced-for-these-weights table: the same call is now a no-op that
	// leaves the running incarnations alone.
	again, err := cl.RebalanceHAU(ctx, "C", w)
	if err != nil {
		t.Fatalf("no-op RebalanceHAU: %v", err)
	}
	if again.Moved != 0 {
		t.Fatalf("no-op rebalance moved %d slots", again.Moved)
	}
	if got := cl.Replicas("C"); got[0] != newReps[0] || got[1] != newReps[1] {
		t.Fatalf("no-op rebalance re-incarnated replicas: %v -> %v", newReps, got)
	}

	// Observed-weight path: nil weights read the router's live counters.
	if _, err := cl.RebalanceHAU(ctx, "C", nil); err != nil {
		t.Fatalf("observed-weight RebalanceHAU: %v", err)
	}
	if got := cl.Replicas("C"); len(got) != 2 {
		t.Fatalf("observed-weight rebalance changed replica count: %v", got)
	}
	waitNoViolations(t, reg, "after observed-weight rebalance")
	cl.StopAll()
	if d := reg.get().Duplicates(); d != 0 {
		t.Fatalf("sink saw %d duplicates across rebalances", d)
	}
}

// skewedKeyedApp is keyedApp with sources that only emit keys hashing into
// the FIRST half of the slot ring — after a count-balanced 2-way split,
// replica 0 owns every slot the traffic hits.
func skewedKeyedApp(col *metrics.Collector, reg *sinkRegistry) AppSpec {
	var hotKeys []string
	for i := 0; len(hotKeys) < 16; i++ {
		k := "h" + strconv.Itoa(i)
		if partition.SlotOf(k, partition.DefaultSlots) < partition.DefaultSlots/2 {
			hotKeys = append(hotKeys, k)
		}
	}
	payload := func(id uint64, _ *rand.Rand) (string, []byte) {
		return hotKeys[int(id)%len(hotKeys)], make([]byte, 16)
	}
	g := graph.New()
	for _, id := range []string{"S0", "S1", "C", "K"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("S0", "C")
	g.MustAddEdge("S1", "C")
	g.MustAddEdge("C", "K")
	return AppSpec{
		Name:  "skewed-keyed-test",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id[0] {
			case 'S':
				return []operator.Operator{operator.NewRateSource(id, 3, 7, payload)}
			case 'C':
				return []operator.Operator{operator.NewCounter(id)}
			default:
				s := operator.NewSink("K", col)
				s.TrackIdentity = true
				reg.set(s)
				return []operator.Operator{s}
			}
		},
	}
}

// TestAutoscaleImbalanceTrigger drives the controller's skew trigger end to
// end: a split counter receives deliberately skewed traffic (every key
// hashes into one replica's slot share), the N-of-M watermark fires, and
// the autoscaler rebalances without an explicit call.
func TestAutoscaleImbalanceTrigger(t *testing.T) {
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:                 skewedKeyedApp(col, reg),
		Scheme:              spe.MSSrcAP,
		Nodes:               4,
		LocalDiskSpec:       local,
		SharedSpec:          shared,
		TickEvery:           time.Millisecond,
		CkptPeriod:          50 * time.Millisecond,
		SourceFlush:         256,
		Seed:                1,
		Metrics:             col,
		AutoscaleEvery:      20 * time.Millisecond,
		MaxReplicas:         2,
		ImbalanceAbove:      1.3,
		ImbalanceWindow:     3,
		ImbalanceViolations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 100
	})
	// A count-balanced split hands replica 0 the first half of the ring —
	// exactly where all of this app's keys hash — so replica 1 sees no
	// traffic and the imbalance ratio sits at 2.0, above the watermark.
	if _, err := cl.SplitHAU(ctx, "C", 2); err != nil {
		t.Fatalf("SplitHAU: %v", err)
	}
	cl.StartController(ctx)
	// The skew trigger should observe the one-sided traffic and rebalance:
	// a fresh incarnation set at the same replica count. The skew record is
	// written after the commit epoch, so wait on it rather than on the
	// replica ids.
	before := cl.Replicas("C")
	waitFor(t, 10*time.Second, "autoscaler rebalance", func() bool {
		for _, s := range col.Skews() {
			if s.HAU == "C" && s.Action == "rebalance" {
				return true
			}
		}
		return false
	})
	got := cl.Replicas("C")
	if len(got) != 2 || (got[0] == before[0] && got[1] == before[1]) {
		t.Fatalf("rebalance did not re-incarnate at the same count: %v -> %v", before, got)
	}
	var observed bool
	for _, s := range col.Skews() {
		if s.HAU == "C" && s.Action == "observe" && s.Ratio > 1.3 {
			observed = true
		}
	}
	if !observed {
		t.Fatalf("no observe skew record above the watermark: %+v", col.Skews())
	}
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-trigger flow", func() bool {
		return reg.get().Delivered() > after+100
	})
	waitNoViolations(t, reg, "after autoscaler rebalance")
	cl.StopAll()
}
