// Package storage simulates the storage substrate of a commodity data
// center: per-node local disks and a GFS-like shared storage system (paper
// §III: "Meteor Shower assumes that there is a shared storage system in
// the data center"). Disk cost is modelled as latency + bytes/bandwidth and
// is *actually slept*, so checkpoint and recovery experiments observe
// realistic, contention-aware I/O times.
package storage

import (
	"sync"
	"sync/atomic"
	"time"
)

// DiskSpec describes a simulated disk or storage service.
type DiskSpec struct {
	// BandwidthBps is the sustained transfer rate in bytes per second of
	// one stripe.
	BandwidthBps int64
	// Latency is the fixed per-operation cost (seek / RPC round trip).
	Latency time.Duration
	// TimeScale compresses simulated time: the actual sleep is
	// cost * TimeScale. 1.0 = real time; 0.01 = 100x faster. Zero means
	// "no sleeping at all" (pure accounting), which unit tests use.
	TimeScale float64
	// Stripes is the number of independent spindles/chunkservers ops are
	// spread over (a GFS-like store has many; a node's SATA disk has 1).
	// Zero means 1.
	Stripes int
}

// DefaultLocalDisk mimics a commodity SATA disk (paper-era hardware).
func DefaultLocalDisk() DiskSpec {
	return DiskSpec{BandwidthBps: 80 << 20, Latency: 8 * time.Millisecond, TimeScale: 1}
}

// DefaultSharedStore mimics the shared storage node reached over 1 Gbps
// Ethernet: the network caps bandwidth below the disk's.
func DefaultSharedStore() DiskSpec {
	return DiskSpec{BandwidthBps: 100 << 20, Latency: 2 * time.Millisecond, TimeScale: 1}
}

// Cost returns the modelled (unscaled) duration of transferring n bytes.
func (s DiskSpec) Cost(n int64) time.Duration {
	d := s.Latency
	if s.BandwidthBps > 0 {
		d += time.Duration(float64(n) / float64(s.BandwidthBps) * float64(time.Second))
	}
	return d
}

// Disk is a simulated disk. Concurrent operations on the same stripe are
// serialized (simultaneous checkpoint writers queue behind each other);
// operations on different stripes overlap, modelling a distributed store.
type Disk struct {
	spec DiskSpec

	stripes   []sync.Mutex
	next      atomic.Uint64
	busyNS    atomic.Int64
	readBytes atomic.Int64
	wroteByte atomic.Int64
	ops       atomic.Int64
}

// NewDisk returns a disk with the given spec.
func NewDisk(spec DiskSpec) *Disk {
	n := spec.Stripes
	if n <= 0 {
		n = 1
	}
	return &Disk{spec: spec, stripes: make([]sync.Mutex, n)}
}

// Spec returns the disk's specification.
func (d *Disk) Spec() DiskSpec { return d.spec }

// Write charges (and sleeps) the cost of writing n bytes and returns the
// modelled unscaled duration.
func (d *Disk) Write(n int64) time.Duration {
	d.wroteByte.Add(n)
	return d.op(n)
}

// Read charges (and sleeps) the cost of reading n bytes and returns the
// modelled unscaled duration.
func (d *Disk) Read(n int64) time.Duration {
	d.readBytes.Add(n)
	return d.op(n)
}

func (d *Disk) op(n int64) time.Duration {
	cost := d.spec.Cost(n)
	d.ops.Add(1)
	d.busyNS.Add(int64(cost))
	if d.spec.TimeScale > 0 {
		s := &d.stripes[d.next.Add(1)%uint64(len(d.stripes))]
		s.Lock()
		time.Sleep(time.Duration(float64(cost) * d.spec.TimeScale))
		s.Unlock()
	}
	return cost
}

// Stats reports cumulative accounting since creation.
func (d *Disk) Stats() DiskStats {
	return DiskStats{
		Ops:          d.ops.Load(),
		BytesRead:    d.readBytes.Load(),
		BytesWritten: d.wroteByte.Load(),
		BusyTime:     time.Duration(d.busyNS.Load()),
	}
}

// DiskStats is a snapshot of a disk's lifetime counters.
type DiskStats struct {
	Ops          int64
	BytesRead    int64
	BytesWritten int64
	BusyTime     time.Duration // modelled (unscaled) cumulative busy time
}
