package spe

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"meteorshower/internal/buffer"
	"meteorshower/internal/delta"
	"meteorshower/internal/operator"
	"meteorshower/internal/statesize"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// DefaultEdgeBuffer is the per-stream channel capacity. A bounded channel
// is the in-flight window of the simulated TCP connection: full channel =
// backpressure on the sender.
const DefaultEdgeBuffer = 512

// Edge is a stream between two HAUs.
type Edge struct {
	From, To string
	C        chan *tuple.Tuple
}

// NewEdge returns an edge with the given buffer capacity (0 = default).
func NewEdge(from, to string, buf int) *Edge {
	if buf <= 0 {
		buf = DefaultEdgeBuffer
	}
	return &Edge{From: from, To: to, C: make(chan *tuple.Tuple, buf)}
}

// Config assembles one HAU. The cluster layer builds these; tests build
// them directly.
type Config struct {
	ID     string
	Scheme Scheme
	// Ops is the operator chain: Ops[0] receives the HAU's inputs, each
	// operator's emissions feed the next, and the last operator's output
	// ports map to Out edges. In the paper's evaluation every HAU holds
	// exactly one operator.
	Ops []operator.Operator
	In  []*Edge
	Out []*Edge

	Catalog   *storage.Catalog  // individual checkpoint destination
	SourceLog *buffer.SourceLog // source preservation (MS schemes, source HAUs)
	Preserver *buffer.Preserver // input preservation (baseline, all HAUs)
	// AckUpstream delivers a checkpoint ack for input port inPort
	// covering sequences <= seq (baseline). Wired by the cluster.
	AckUpstream func(inPort int, seq uint64)

	Listener Listener

	TickEvery  time.Duration // operator tick / source generation period
	CkptPeriod time.Duration // baseline: self-checkpoint period (0 = off)
	CkptPhase  time.Duration // baseline: random phase of first checkpoint

	// PerTupleDelay models per-tuple CPU cost beyond the operators' real
	// work. Zero for most tests.
	PerTupleDelay time.Duration

	// DeltaCheckpoint enables delta-checkpointing (paper §V): checkpoints
	// write only the blocks changed since the previous epoch, with a full
	// snapshot every DeltaFullEvery epochs.
	DeltaCheckpoint bool
	DeltaFullEvery  int // 0 = default 4

	// ShedWatermark enables load shedding (paper §III: long-term overload
	// "require[s] load shedding"): when an output channel is fuller than
	// this fraction of its capacity, new data tuples for it are dropped
	// instead of blocking the operator. 0 disables shedding.
	ShedWatermark float64

	Now func() int64 // clock; defaults to wall time
}

type retainedTuple struct {
	port int
	t    *tuple.Tuple
}

// HAU is a running High Availability Unit: "the smallest unit of work that
// can be checkpointed and recovered independently".
type HAU struct {
	cfg Config
	src operator.Source // cfg.Ops[0] if it is a source
	ctx context.Context // loop context, set by run

	ctrl chan Command

	// Loop-owned state (no locks needed).
	outSeq     []uint64
	lastInSeq  []uint64
	lastSrcID  []map[string]uint64 // per in port: per-source high-water ID
	aligned    []bool
	awaiting   bool
	pendingEp  uint64
	doneEpoch  uint64 // highest token epoch already checkpointed
	alignStart int64
	retaining  bool
	retained   []retainedTuple
	nextCkpt   int64
	localEpoch uint64
	reportAll  bool
	alert      bool
	tracker    statesize.Tracker
	lastPeak   int64
	emitters   []operator.Emitter
	pendingOut []retainedTuple // in-flight tuples restored from a snapshot
	srcReplay  []*tuple.Tuple  // preserved source tuples to re-send first

	lastBlob  []byte // previous checkpoint state (delta base)
	lastEpoch uint64
	sinceFull int

	cachedSize atomic.Int64
	processed  atomic.Uint64
	shed       atomic.Uint64
	writerWG   sync.WaitGroup

	startOnce sync.Once
	done      chan struct{}
	errMu     sync.Mutex
	err       error
}

// New validates cfg and returns a ready-to-start HAU.
func New(cfg Config) (*HAU, error) {
	if cfg.ID == "" {
		return nil, errors.New("spe: empty HAU id")
	}
	if len(cfg.Ops) == 0 {
		return nil, fmt.Errorf("spe: HAU %s has no operators", cfg.ID)
	}
	if cfg.Listener == nil {
		cfg.Listener = NopListener{}
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 2 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	h := &HAU{
		cfg:       cfg,
		ctrl:      make(chan Command, 64),
		outSeq:    make([]uint64, len(cfg.Out)),
		lastInSeq: make([]uint64, len(cfg.In)),
		lastSrcID: make([]map[string]uint64, len(cfg.In)),
		aligned:   make([]bool, len(cfg.In)),
		done:      make(chan struct{}),
	}
	for i := range h.lastSrcID {
		h.lastSrcID[i] = make(map[string]uint64)
	}
	if s, ok := cfg.Ops[0].(operator.Source); ok {
		h.src = s
		if len(cfg.In) > 0 {
			return nil, fmt.Errorf("spe: source HAU %s must not have inputs", cfg.ID)
		}
	}
	h.emitters = make([]operator.Emitter, len(cfg.Ops))
	for i := range cfg.Ops {
		i := i
		if i == len(cfg.Ops)-1 {
			h.emitters[i] = func(port int, t *tuple.Tuple) { h.deliverOut(port, t) }
		} else {
			h.emitters[i] = func(port int, t *tuple.Tuple) {
				if err := h.cfg.Ops[i+1].OnTuple(port, t, h.emitters[i+1]); err != nil {
					h.setErr(err)
				}
			}
		}
	}
	return h, nil
}

// ID returns the HAU id.
func (h *HAU) ID() string { return h.cfg.ID }

// Scheme returns the configured fault-tolerance scheme.
func (h *HAU) Scheme() Scheme { return h.cfg.Scheme }

// IsSource reports whether this HAU hosts a source operator.
func (h *HAU) IsSource() bool { return h.src != nil }

// Ops exposes the operator chain (read-only use).
func (h *HAU) Ops() []operator.Operator { return h.cfg.Ops }

// Command enqueues a controller command. Blocks only if the command queue
// is saturated.
func (h *HAU) Command(cmd Command) {
	select {
	case h.ctrl <- cmd:
	case <-h.done:
	}
}

// CachedStateSize returns the last sampled state size — the controller's
// size query (§III-C3) reads this without disturbing the HAU loop.
func (h *HAU) CachedStateSize() int64 { return h.cachedSize.Load() }

// ProcessedCount returns how many data tuples this HAU has processed (or,
// for sources, generated) since it started — the throughput numerator.
func (h *HAU) ProcessedCount() uint64 { return h.processed.Load() }

// ShedCount returns how many tuples load shedding dropped.
func (h *HAU) ShedCount() uint64 { return h.shed.Load() }

// Done is closed when the HAU loop exits.
func (h *HAU) Done() <-chan struct{} { return h.done }

// Err returns the terminal error, if any.
func (h *HAU) Err() error {
	h.errMu.Lock()
	defer h.errMu.Unlock()
	return h.err
}

func (h *HAU) setErr(err error) {
	if err == nil {
		return
	}
	h.errMu.Lock()
	if h.err == nil {
		h.err = err
	}
	h.errMu.Unlock()
}

// SetSourceReplay queues preserved tuples for re-emission before normal
// processing starts. Must be called before Start. Recovery uses this to
// replay the source log; the generator cursor is advanced past the highest
// replayed id.
func (h *HAU) SetSourceReplay(ts []*tuple.Tuple) {
	h.srcReplay = ts
}

// Start launches the HAU loop. Safe to call once.
func (h *HAU) Start(ctx context.Context) {
	h.startOnce.Do(func() { go h.run(ctx) })
}

// WaitWriters blocks until any in-flight asynchronous checkpoint writers
// finish (used by tests and orderly shutdown).
func (h *HAU) WaitWriters() { h.writerWG.Wait() }

func (h *HAU) now() int64 { return h.cfg.Now() }

func (h *HAU) run(ctx context.Context) {
	h.ctx = ctx
	defer func() {
		h.writerWG.Wait()
		h.cfg.Listener.Stopped(h.cfg.ID, h.Err())
		close(h.done)
	}()

	// Phase 0: recovery replay. In-flight tuples captured by the MRC
	// snapshot go out first (they carry their original sequence numbers),
	// then preserved source tuples.
	for _, rt := range h.pendingOut {
		if !h.rawSend(ctx, rt.port, rt.t) {
			return
		}
	}
	h.pendingOut = nil
	var maxReplayed uint64
	for _, t := range h.srcReplay {
		for port := range h.cfg.Out {
			out := t
			if port < len(h.cfg.Out)-1 {
				out = t.Clone()
			}
			if !h.deliverOut(port, out) {
				return
			}
		}
		if t.ID >= maxReplayed {
			maxReplayed = t.ID + 1
		}
	}
	if len(h.srcReplay) > 0 && h.src != nil {
		if rs, ok := h.src.(*operator.RateSource); ok {
			rs.SkipPast(maxReplayed - 1)
		}
	}
	h.srcReplay = nil

	if h.cfg.CkptPeriod > 0 {
		h.nextCkpt = h.now() + int64(h.cfg.CkptPhase)
	}

	ticker := time.NewTicker(h.cfg.TickEvery)
	defer ticker.Stop()

	for {
		if h.Err() != nil {
			return // fail-stop: the operator stops functioning
		}
		cases := make([]reflect.SelectCase, 0, 3+len(h.cfg.In))
		cases = append(cases,
			reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(ctx.Done())},
			reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(h.ctrl)},
			reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(ticker.C)},
		)
		ports := make([]int, 0, len(h.cfg.In))
		for i, e := range h.cfg.In {
			if h.aligned[i] {
				continue // blocked awaiting tokens on the other inputs
			}
			cases = append(cases, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(e.C)})
			ports = append(ports, i)
		}
		chosen, val, ok := reflect.Select(cases)
		switch chosen {
		case 0:
			return
		case 1:
			if ok {
				h.onCommand(ctx, val.Interface().(Command))
			}
		case 2:
			h.onTick(ctx)
		default:
			if !ok {
				// Upstream hung up; treat as quiescence, keep serving
				// other inputs. Mark aligned forever to drop the case.
				h.aligned[ports[chosen-3]] = true
				continue
			}
			h.onInput(ctx, ports[chosen-3], val.Interface().(*tuple.Tuple))
		}
	}
}

func (h *HAU) onCommand(ctx context.Context, cmd Command) {
	switch cmd.Kind {
	case CmdCheckpoint:
		h.onCheckpointCmd(ctx, cmd.Epoch)
	case CmdAlertOn:
		h.alert = true
	case CmdAlertOff:
		h.alert = false
	case CmdReportAll:
		h.reportAll = true
	case CmdReportNormal:
		h.reportAll = false
	case CmdSwapOutEdge:
		if cmd.Port >= 0 && cmd.Port < len(h.cfg.Out) && cmd.Edge != nil {
			h.cfg.Out[cmd.Port] = cmd.Edge
		}
	case CmdReplayOutput:
		if h.cfg.Preserver == nil || cmd.Port < 0 || cmd.Port >= len(h.cfg.Out) {
			return
		}
		ts, err := h.cfg.Preserver.Replay(cmd.Port, 0)
		if err != nil {
			h.setErr(err)
			return
		}
		for _, t := range ts {
			if !h.rawSend(ctx, cmd.Port, t) {
				return
			}
		}
	}
}

func (h *HAU) onCheckpointCmd(ctx context.Context, epoch uint64) {
	if h.cfg.Scheme.UsesTokens() {
		// A token for this epoch may have raced ahead of the command (the
		// upstream handled its command first); in that case the HAU is
		// already armed — or already done — and a second arming would
		// broadcast duplicate tokens and stall the next epoch.
		if epoch <= h.doneEpoch || (h.awaiting && epoch <= h.pendingEp) {
			return
		}
	}
	switch {
	case h.cfg.Scheme == MSSrc && h.src != nil:
		// §III-A step 1: checkpoint, then trickle a cascading token.
		h.alignStart = h.now()
		h.doneEpoch = epoch
		h.doCheckpoint(ctx, epoch, 0)
		h.beginSourceEpoch(epoch)
		h.broadcastToken(ctx, tuple.Token{Epoch: epoch, Kind: tuple.Cascading, From: h.cfg.ID})
	case h.cfg.Scheme.OneHopTokens():
		// §III-B: emit 1-hop tokens immediately, then await alignment.
		h.broadcastToken(ctx, tuple.Token{Epoch: epoch, Kind: tuple.OneHop, From: h.cfg.ID})
		if h.src != nil {
			h.beginSourceEpoch(epoch)
		}
		if len(h.cfg.In) == 0 {
			// Sources align trivially.
			h.alignStart = h.now()
			h.doneEpoch = epoch
			h.doCheckpoint(ctx, epoch, 0)
			return
		}
		h.awaiting = true
		h.pendingEp = epoch
		h.alignStart = h.now()
		h.retaining = true
	case h.cfg.Scheme == Baseline:
		// The baseline checkpoints on its own timer; an explicit command
		// forces one now (used by tests).
		h.baselineCheckpoint(ctx)
	}
}

func (h *HAU) beginSourceEpoch(epoch uint64) {
	if h.cfg.SourceLog != nil {
		if err := h.cfg.SourceLog.BeginEpoch(epoch); err != nil {
			h.setErr(err)
		}
	}
}

func (h *HAU) onInput(ctx context.Context, port int, t *tuple.Tuple) {
	if t.IsToken() {
		h.onToken(ctx, port, *t.Tok)
		return
	}
	// Duplicate suppression. Meteor Shower rolls the whole application back
	// to one consistent cut, so per-edge sequence numbers are reliable.
	// The baseline restarts a single HAU whose re-emissions may interleave
	// multi-input processing differently, so its receivers match tuples by
	// per-source id instead (per edge and source, ids are FIFO-ordered).
	if h.cfg.Scheme == Baseline {
		if t.Src != "" {
			if last, ok := h.lastSrcID[port][t.Src]; ok && t.ID <= last {
				return
			}
			h.lastSrcID[port][t.Src] = t.ID
		}
		if t.Seq > h.lastInSeq[port] {
			h.lastInSeq[port] = t.Seq // tracked for checkpoint acks
		}
	} else if t.Seq != 0 {
		if t.Seq <= h.lastInSeq[port] {
			return // duplicate from a replay
		}
		h.lastInSeq[port] = t.Seq
	}
	if h.cfg.PerTupleDelay > 0 {
		time.Sleep(h.cfg.PerTupleDelay)
	}
	h.processed.Add(1)
	if err := h.cfg.Ops[0].OnTuple(port, t, h.emitters[0]); err != nil {
		h.setErr(err)
	}
}

func (h *HAU) onToken(ctx context.Context, port int, tok tuple.Token) {
	if tok.Epoch <= h.doneEpoch {
		return // stale duplicate from a late command broadcast
	}
	if !h.awaiting {
		if h.cfg.Scheme.OneHopTokens() {
			// Token raced ahead of the controller command (possible when
			// the upstream processed its command first). Arm now exactly
			// as the command would.
			h.broadcastToken(ctx, tuple.Token{Epoch: tok.Epoch, Kind: tuple.OneHop, From: h.cfg.ID})
			h.awaiting = true
			h.pendingEp = tok.Epoch
			h.alignStart = h.now()
			h.retaining = true
		} else {
			h.awaiting = true
			h.pendingEp = tok.Epoch
			h.alignStart = h.now()
		}
	}
	h.aligned[port] = true
	n := 0
	for _, a := range h.aligned {
		if a {
			n++
		}
	}
	if n < len(h.cfg.In) {
		return // stream boundary: stop reading this input, keep the rest
	}
	// All tokens received: individual checkpoint.
	tokenWait := time.Duration(h.now() - h.alignStart)
	epoch := h.pendingEp
	h.awaiting = false
	h.doneEpoch = epoch
	for i := range h.aligned {
		h.aligned[i] = false // erase tokens, reopen inputs
	}
	h.doCheckpoint(ctx, epoch, tokenWait)
	if h.cfg.Scheme == MSSrc {
		h.broadcastToken(ctx, tuple.Token{Epoch: epoch, Kind: tuple.Cascading, From: h.cfg.ID})
	}
}

func (h *HAU) onTick(ctx context.Context) {
	now := h.now()
	if h.src != nil {
		for _, t := range h.src.Generate(now) {
			h.processed.Add(1)
			if h.cfg.SourceLog != nil {
				// Source preservation: stable write *before* sending.
				if err := h.cfg.SourceLog.Append(t); err != nil {
					h.setErr(err)
					return
				}
			}
			for port := range h.cfg.Out {
				out := t
				if port < len(h.cfg.Out)-1 {
					out = t.Clone()
				}
				if !h.deliverOut(port, out) {
					return
				}
			}
		}
	}
	for i, op := range h.cfg.Ops {
		if tk, ok := op.(operator.Ticker); ok {
			if err := tk.OnTick(now, h.emitters[i]); err != nil {
				h.setErr(err)
			}
		}
	}
	h.sampleState(now)
	if h.cfg.Scheme == Baseline && h.cfg.CkptPeriod > 0 && now >= h.nextCkpt {
		h.baselineCheckpoint(ctx)
		h.nextCkpt = now + int64(h.cfg.CkptPeriod)
	}
}

func (h *HAU) sampleState(now int64) {
	size := h.stateSize()
	h.cachedSize.Store(size)
	tp := h.tracker.Observe(statesize.Sample{At: now, Size: size})
	if tp == nil {
		return
	}
	halved := false
	if tp.Kind == statesize.Peak {
		h.lastPeak = tp.Size
	} else if h.lastPeak > 0 && tp.Size*2 < h.lastPeak {
		halved = true
	}
	// Passive mode: only notify on halvings; active/alert/profiling mode
	// reports every turning point with its ICR (§III-C3).
	if h.reportAll || h.alert || halved {
		h.cfg.Listener.TurningPoint(h.cfg.ID, tp.At, tp.Size, tp.ICR, halved)
	}
}

func (h *HAU) stateSize() int64 {
	var n int64
	for _, op := range h.cfg.Ops {
		n += op.StateSize()
	}
	for _, rt := range h.retained {
		n += rt.t.Size()
	}
	return n
}

func (h *HAU) baselineCheckpoint(ctx context.Context) {
	h.localEpoch++
	h.alignStart = h.now()
	h.doCheckpoint(ctx, h.localEpoch, 0)
	// Ack upstream neighbours so they trim their preservation buffers.
	if h.cfg.AckUpstream != nil {
		for port := range h.cfg.In {
			h.cfg.AckUpstream(port, h.lastInSeq[port])
		}
	}
}

// doCheckpoint takes the individual checkpoint for epoch. Synchronous
// schemes block the loop for the full write; asynchronous schemes snapshot
// in memory (the copy-on-write fork) and hand the write to a helper
// goroutine, resuming the stream immediately.
func (h *HAU) doCheckpoint(ctx context.Context, epoch uint64, tokenWait time.Duration) {
	if h.cfg.Catalog == nil {
		h.retaining = false
		h.retained = nil
		return
	}
	serStart := time.Now()
	blob := h.encodeState()
	serialize := time.Since(serStart)
	h.retaining = false
	h.retained = nil

	// Delta-checkpointing: write only changed blocks against the previous
	// epoch, falling back to full saves when the delta would not save
	// anything or on the periodic full-snapshot epoch.
	writeBlob := blob
	baseEpoch := uint64(0)
	useDelta := false
	if h.cfg.DeltaCheckpoint && h.lastBlob != nil {
		fullEvery := h.cfg.DeltaFullEvery
		if fullEvery <= 0 {
			fullEvery = 4
		}
		if h.sinceFull+1 < fullEvery {
			diff := delta.Diff(h.lastBlob, blob, delta.DefaultBlockSize)
			if len(diff) < len(blob) {
				writeBlob = diff
				baseEpoch = h.lastEpoch
				useDelta = true
			}
		}
	}
	if useDelta {
		h.sinceFull++
	} else {
		h.sinceFull = 0
	}
	h.lastBlob = blob
	h.lastEpoch = epoch

	b := CheckpointBreakdown{
		TokenWait:  tokenWait,
		Serialize:  serialize,
		StateBytes: int64(len(writeBlob)),
		Async:      h.cfg.Scheme.Asynchronous(),
	}
	id := h.cfg.ID
	save := func() (time.Duration, bool, error) {
		if useDelta {
			return h.cfg.Catalog.SaveStateDelta(epoch, id, writeBlob, baseEpoch)
		}
		return h.cfg.Catalog.SaveState(epoch, id, writeBlob)
	}
	if b.Async {
		h.writerWG.Add(1)
		go func() {
			defer h.writerWG.Done()
			d, _, err := save()
			if err != nil {
				h.setErr(err)
				return
			}
			b.DiskIO = d
			h.cfg.Listener.CheckpointDone(id, epoch, b)
		}()
		return
	}
	d, _, err := save()
	if err != nil {
		h.setErr(err)
		return
	}
	b.DiskIO = d
	h.cfg.Listener.CheckpointDone(id, epoch, b)
}

func (h *HAU) broadcastToken(ctx context.Context, tok tuple.Token) {
	for port := range h.cfg.Out {
		t := tuple.NewToken(tok)
		t.Ts = h.now()
		if !h.rawSend(ctx, port, t) {
			return
		}
	}
}

// deliverOut stamps, preserves, retains and sends a data tuple on an
// output port. Returns false if the context died mid-send.
func (h *HAU) deliverOut(port int, t *tuple.Tuple) bool {
	if port < 0 || port >= len(h.cfg.Out) {
		h.setErr(fmt.Errorf("spe: %s emitted to invalid port %d", h.cfg.ID, port))
		return false
	}
	if h.cfg.ShedWatermark > 0 {
		c := h.cfg.Out[port].C
		if float64(len(c)) > h.cfg.ShedWatermark*float64(cap(c)) {
			h.shed.Add(1)
			return true // overload: drop instead of blocking upstream
		}
	}
	h.outSeq[port]++
	t.Seq = h.outSeq[port]
	if h.cfg.Preserver != nil {
		if _, err := h.cfg.Preserver.Append(port, t); err != nil {
			h.setErr(err)
			return false
		}
	}
	if h.retaining {
		h.retained = append(h.retained, retainedTuple{port: port, t: t.Clone()})
	}
	return h.rawSend(h.ctx, port, t)
}

// rawSend pushes t on the port's channel without stamping or preservation.
func (h *HAU) rawSend(ctx context.Context, port int, t *tuple.Tuple) bool {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case h.cfg.Out[port].C <- t:
		return true
	case <-ctx.Done():
		return false
	}
}
