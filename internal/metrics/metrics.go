// Package metrics collects the two quantities the paper evaluates —
// end-to-end throughput ("the number of tuples processed by the
// application within a 10-minute time window") and latency ("the average
// processing time of these tuples") — plus the instantaneous-latency
// series used for Fig. 15.
package metrics

import (
	"sort"
	"sync"
	"time"
)

// Point is one latency observation.
type Point struct {
	At  int64 // ns timestamp of delivery
	Lat time.Duration
}

// Recovery is one whole-application recovery broken into the phases the
// paper's recovery-time analysis distinguishes (§VI-C): reloading
// checkpoint blobs from the shared store, disk I/O, deserializing state,
// and reconnecting/restarting the dataflow.
type Recovery struct {
	At          int64  // ns timestamp of recovery completion
	App         string // application id ("" until multi-tenant callers tag it)
	Epoch       uint64
	HAUs        int // HAUs rebuilt
	Reload      time.Duration
	DiskIO      time.Duration
	Deserialize time.Duration
	Reconnect   time.Duration
	Total       time.Duration
}

// Checkpoint is one individual checkpoint's cost decomposition. Serialize
// is the on-loop freeze window (the only phase that stalls the stream under
// asynchronous schemes); Flatten, Diff and DiskIO run on the HAU's
// checkpoint writer. DirtyBytes is how much state the capture re-encoded —
// the quantity the freeze window scales with.
type Checkpoint struct {
	At        int64  // ns timestamp of checkpoint durability
	App       string // application id ("" until multi-tenant callers tag it)
	HAU       string
	Epoch     uint64
	TokenWait time.Duration
	Serialize time.Duration // on-loop freeze window
	Flatten   time.Duration // writer-side section flatten
	Diff      time.Duration // writer-side block-delta computation
	DiskIO    time.Duration
	// AlignStallMax/AlignStallSum are how long tokened input ports sat
	// paused waiting for the slowest token (max over ports / sum across
	// ports); zero for baseline and unaligned checkpoints.
	AlignStallMax time.Duration
	AlignStallSum time.Duration
	StateBytes    int64 // bytes written (delta when Delta is set)
	DirtyBytes    int64 // bytes re-encoded during capture
	// ChannelBytes is the encoded size of in-flight channel tuples logged
	// into the blob — the snapshot-size overhead of unaligned checkpoints.
	ChannelBytes int64
	Delta        bool
	Async        bool
}

// Migration is one live HAU migration: the token-aligned drain of the old
// incarnation, the handoff downtime (neither incarnation processing), and
// the state restore on the destination node.
type Migration struct {
	At         int64  // ns timestamp of migration completion
	App        string // application id ("" until multi-tenant callers tag it)
	HAU        string
	From, To   int
	MovedBytes int64
	Drain      time.Duration // divert command -> state handoff
	Downtime   time.Duration // old incarnation stopped -> new one started
	Restore    time.Duration // state deserialization at the destination
}

// Rescale is one keyed-state re-partitioning (split or merge) of an
// operator across HAU replicas, decomposed Fig. 16-style: the token-aligned
// drain of the old incarnations, the slot-level re-shard of their state, and
// the restore/start of the new incarnations. Downtime is the window where no
// incarnation of the operator was processing.
type Rescale struct {
	At       int64         // ns timestamp of rescale completion
	App      string        // application id ("" until multi-tenant callers tag it)
	HAU      string        // base operator id
	From, To int           // replica counts before and after
	Bytes    int64         // state bytes re-sharded
	Drain    time.Duration // divert commands sent -> last state blob handed over
	Reshard  time.Duration // slot carve/merge of the drained blobs
	Restore  time.Duration // new incarnations built, restored and started
	Downtime time.Duration // old incarnations stopped -> new ones started
}

// Skew is one observation of how a split operator's load spreads across
// its replicas: Shares are the per-replica load fractions, Ratio is
// max/mean (1.0 balanced, Replicas worst case). Action records what the
// observation is: "observe" for a watermark evaluation that found skew,
// "rebalance" for slots shifted between the existing replicas, and
// "split:weighted"/"merge:weighted" for weighted replica-count changes
// (these report the projected post-action spread under the weights that
// drove the action).
type Skew struct {
	At       int64  // ns timestamp of the observation
	App      string // application id ("" until multi-tenant callers tag it)
	HAU      string
	Replicas int
	Shares   []float64
	Ratio    float64
	Action   string
	Moved    int // slots moved by the action, 0 for observations
}

// Failover is one standby promotion: a protected HAU's primary died and
// the cluster switched the live stream to its standby instead of rolling
// the application back. Wait is detection-to-promotion prep (draining the
// dead primary's edges), Switch is the single-edge switchover itself
// (tee swap + promote command) — the availability gap a protected failure
// costs, to compare against Recovery.Total.
type Failover struct {
	At       int64  // ns timestamp of failover completion
	App      string // application id ("" until multi-tenant callers tag it)
	HAU      string
	From, To int // primary node, standby node
	Wait     time.Duration
	Switch   time.Duration
	// RingTuples is how many suppressed output tuples the standby
	// re-emitted at promotion (downstream dedup drops the overlap).
	RingTuples int
}

// Collector accumulates sink-side observations. Safe for concurrent use —
// multiple sink HAUs may share one collector.
type Collector struct {
	mu          sync.Mutex
	count       uint64
	latSum      time.Duration
	points      []Point
	recoveries  []Recovery
	migrations  []Migration
	rescales    []Rescale
	checkpoints []Checkpoint
	failovers   []Failover
	skews       []Skew
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// RecordLatency implements operator.LatencyRecorder.
func (c *Collector) RecordLatency(at int64, lat time.Duration) {
	c.mu.Lock()
	c.count++
	c.latSum += lat
	c.points = append(c.points, Point{At: at, Lat: lat})
	c.mu.Unlock()
}

// Count returns the number of tuples delivered — the throughput numerator.
func (c *Collector) Count() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// MeanLatency returns the average end-to-end latency.
func (c *Collector) MeanLatency() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count == 0 {
		return 0
	}
	return c.latSum / time.Duration(c.count)
}

// Quantile returns the p-quantile (0 <= p <= 1) of all recorded latencies.
func (c *Collector) Quantile(p float64) time.Duration {
	c.mu.Lock()
	lats := make([]time.Duration, len(c.points))
	for i, pt := range c.points {
		lats[i] = pt.Lat
	}
	c.mu.Unlock()
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(p * float64(len(lats)-1))
	return lats[idx]
}

// Bucket is a time bucket of the instantaneous-latency series.
type Bucket struct {
	Start   int64
	Count   int
	MeanLat time.Duration
	MaxLat  time.Duration
}

// InstantSeries groups observations into fixed-width buckets — the
// instantaneous latency ("the processing time of each tuple during a
// checkpoint", Fig. 15). Empty buckets between observations are included
// with zero counts so plots keep their time base.
func (c *Collector) InstantSeries(width time.Duration) []Bucket {
	c.mu.Lock()
	points := append([]Point(nil), c.points...)
	c.mu.Unlock()
	if len(points) == 0 || width <= 0 {
		return nil
	}
	sort.Slice(points, func(i, j int) bool { return points[i].At < points[j].At })
	start := points[0].At
	end := points[len(points)-1].At
	n := int((end-start)/int64(width)) + 1
	buckets := make([]Bucket, n)
	for i := range buckets {
		buckets[i].Start = start + int64(i)*int64(width)
	}
	sums := make([]time.Duration, n)
	for _, p := range points {
		i := int((p.At - start) / int64(width))
		buckets[i].Count++
		sums[i] += p.Lat
		if p.Lat > buckets[i].MaxLat {
			buckets[i].MaxLat = p.Lat
		}
	}
	for i := range buckets {
		if buckets[i].Count > 0 {
			buckets[i].MeanLat = sums[i] / time.Duration(buckets[i].Count)
		}
	}
	return buckets
}

// WindowStats summarizes the deliveries inside one time window.
type WindowStats struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Window returns latency statistics for deliveries with since <= At < until
// (until <= 0 means no upper bound). The matching latencies are copied out
// under the lock and sorted outside it, so timeline samplers can call this
// concurrently with live collection.
func (c *Collector) Window(since, until int64) WindowStats {
	c.mu.Lock()
	var lats []time.Duration
	for _, p := range c.points {
		if p.At >= since && (until <= 0 || p.At < until) {
			lats = append(lats, p.Lat)
		}
	}
	c.mu.Unlock()
	var ws WindowStats
	if len(lats) == 0 {
		return ws
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	ws.Count = uint64(len(lats))
	ws.Mean = sum / time.Duration(len(lats))
	ws.P50 = lats[int(0.50*float64(len(lats)-1))]
	ws.P99 = lats[int(0.99*float64(len(lats)-1))]
	ws.Max = lats[len(lats)-1]
	return ws
}

// CountSince returns deliveries with At >= since.
func (c *Collector) CountSince(since int64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, p := range c.points {
		if p.At >= since {
			n++
		}
	}
	return n
}

// RecordRecovery appends one recovery's phase timings.
func (c *Collector) RecordRecovery(r Recovery) {
	c.mu.Lock()
	c.recoveries = append(c.recoveries, r)
	c.mu.Unlock()
}

// Recoveries returns every recorded recovery, oldest first.
func (c *Collector) Recoveries() []Recovery {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Recovery(nil), c.recoveries...)
}

// RecordCheckpoint appends one individual checkpoint's cost breakdown.
func (c *Collector) RecordCheckpoint(ck Checkpoint) {
	c.mu.Lock()
	c.checkpoints = append(c.checkpoints, ck)
	c.mu.Unlock()
}

// Checkpoints returns every recorded checkpoint, oldest first.
func (c *Collector) Checkpoints() []Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Checkpoint(nil), c.checkpoints...)
}

// RecordMigration appends one live migration's timings.
func (c *Collector) RecordMigration(m Migration) {
	c.mu.Lock()
	c.migrations = append(c.migrations, m)
	c.mu.Unlock()
}

// Migrations returns every recorded live migration, oldest first.
func (c *Collector) Migrations() []Migration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Migration(nil), c.migrations...)
}

// RecordRescale appends one split/merge re-partitioning's timings.
func (c *Collector) RecordRescale(r Rescale) {
	c.mu.Lock()
	c.rescales = append(c.rescales, r)
	c.mu.Unlock()
}

// Rescales returns every recorded re-partitioning, oldest first.
func (c *Collector) Rescales() []Rescale {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Rescale(nil), c.rescales...)
}

// RecordSkew appends one replica-load skew observation.
func (c *Collector) RecordSkew(s Skew) {
	c.mu.Lock()
	c.skews = append(c.skews, s)
	c.mu.Unlock()
}

// Skews returns every recorded skew observation, oldest first.
func (c *Collector) Skews() []Skew {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Skew(nil), c.skews...)
}

// RecordFailover appends one standby promotion's timings.
func (c *Collector) RecordFailover(f Failover) {
	c.mu.Lock()
	c.failovers = append(c.failovers, f)
	c.mu.Unlock()
}

// Failovers returns every recorded standby promotion, oldest first.
func (c *Collector) Failovers() []Failover {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Failover(nil), c.failovers...)
}

// MaxGap returns the largest interval between consecutive deliveries with
// since <= At < until (until <= 0 means no upper bound) — the sink-output
// gap an availability benchmark scores a failure by. The window edges
// count as virtual deliveries, so an outage running into the window's end
// is measured, but a delivery-free window returns the full window (or 0
// when unbounded).
func (c *Collector) MaxGap(since, until int64) time.Duration {
	c.mu.Lock()
	var ats []int64
	for _, p := range c.points {
		if p.At >= since && (until <= 0 || p.At < until) {
			ats = append(ats, p.At)
		}
	}
	c.mu.Unlock()
	sort.Slice(ats, func(i, j int) bool { return ats[i] < ats[j] })
	if until > 0 {
		ats = append(ats, until)
	}
	var gap time.Duration
	prev := since
	for _, at := range ats {
		if d := time.Duration(at - prev); d > gap {
			gap = d
		}
		prev = at
	}
	return gap
}

// RecoveriesFor returns the recoveries tagged with the given application
// id, oldest first. The empty id matches records from single-tenant
// clusters, which never tag.
func (c *Collector) RecoveriesFor(app string) []Recovery {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Recovery
	for _, r := range c.recoveries {
		if r.App == app {
			out = append(out, r)
		}
	}
	return out
}

// CheckpointsFor returns the checkpoints tagged with the given application
// id, oldest first.
func (c *Collector) CheckpointsFor(app string) []Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Checkpoint
	for _, ck := range c.checkpoints {
		if ck.App == app {
			out = append(out, ck)
		}
	}
	return out
}

// RescalesFor returns the re-partitionings tagged with the given
// application id, oldest first.
func (c *Collector) RescalesFor(app string) []Rescale {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Rescale
	for _, r := range c.rescales {
		if r.App == app {
			out = append(out, r)
		}
	}
	return out
}

// SkewsFor returns the skew observations tagged with the given application
// id, oldest first.
func (c *Collector) SkewsFor(app string) []Skew {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Skew
	for _, sk := range c.skews {
		if sk.App == app {
			out = append(out, sk)
		}
	}
	return out
}

// MigrationsFor returns the live migrations tagged with the given
// application id, oldest first.
func (c *Collector) MigrationsFor(app string) []Migration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Migration
	for _, m := range c.migrations {
		if m.App == app {
			out = append(out, m)
		}
	}
	return out
}

// Reset clears all observations.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.count = 0
	c.latSum = 0
	c.points = nil
	c.recoveries = nil
	c.migrations = nil
	c.rescales = nil
	c.checkpoints = nil
	c.failovers = nil
	c.skews = nil
	c.mu.Unlock()
}
