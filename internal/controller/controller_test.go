package controller

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"meteorshower/internal/buffer"
	"meteorshower/internal/spe"
	"meteorshower/internal/statesize"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

func fastStore() *storage.Store {
	return storage.NewStore(storage.DiskSpec{BandwidthBps: 1 << 30, TimeScale: 0})
}

// fakeClock provides a controllable Now.
type fakeClock struct{ t int64 }

func (f *fakeClock) now() int64 { return f.t }

func TestTriggerCheckpointAllocatesEpochs(t *testing.T) {
	c := New(Config{Scheme: spe.MSSrcAP, Catalog: storage.NewCatalog(fastStore(), nil)})
	if c.Epoch() != 0 {
		t.Fatal("fresh controller epoch != 0")
	}
	e1 := c.TriggerCheckpoint()
	e2 := c.TriggerCheckpoint()
	if e1 != 1 || e2 != 2 || c.Epoch() != 2 {
		t.Fatalf("epochs = %d, %d", e1, e2)
	}
	if _, ok := c.Stat(1); !ok {
		t.Fatal("epoch 1 has no stat")
	}
}

func TestCheckpointDoneCompletesEpoch(t *testing.T) {
	clk := &fakeClock{}
	c := New(Config{Scheme: spe.MSSrcAP, Catalog: storage.NewCatalog(fastStore(), nil), Now: clk.now})
	c.SetHAUs(map[string]*spe.HAU{"a": nil, "b": nil})
	clk.t = 100
	ep := c.TriggerCheckpoint()
	clk.t = 200
	c.CheckpointDone("a", ep, spe.CheckpointBreakdown{DiskIO: 5, Serialize: 1})
	st, _ := c.Stat(ep)
	if st.Complete {
		t.Fatal("epoch complete with one of two HAUs")
	}
	clk.t = 300
	c.CheckpointDone("b", ep, spe.CheckpointBreakdown{DiskIO: 9, Serialize: 2, TokenWait: 3})
	st, _ = c.Stat(ep)
	if !st.Complete {
		t.Fatal("epoch not complete")
	}
	if st.WallTime() != 200 {
		t.Fatalf("WallTime = %v, want 200", st.WallTime())
	}
}

func TestSlowestBreakdown(t *testing.T) {
	st := EpochStat{Breakdown: map[string]spe.CheckpointBreakdown{
		"fast": {DiskIO: 10},
		"slow": {DiskIO: 50, TokenWait: 5},
	}}
	if got := st.SlowestBreakdown(); got.DiskIO != 50 {
		t.Fatalf("slowest = %+v", got)
	}
}

func TestEpochCompletePrunesLogsAndGC(t *testing.T) {
	store := fastStore()
	cat := storage.NewCatalog(store, []string{"a"})
	log := buffer.NewSourceLog("a", store, 0)
	log.Append(tuple.New(1, "a", "k", nil))
	c := New(Config{
		Scheme:     spe.MSSrc,
		Catalog:    cat,
		SourceLogs: map[string]*buffer.SourceLog{"a": log},
	})
	c.SetHAUs(map[string]*spe.HAU{"a": nil})

	ep := c.TriggerCheckpoint()
	// Simulate the HAU: save state, rotate log, report done.
	cat.SaveState(ep, "a", []byte("s"))
	log.BeginEpoch(ep)
	log.Append(tuple.New(2, "a", "k", nil))
	c.CheckpointDone("a", ep, spe.CheckpointBreakdown{})
	if n := log.PreservedCount(); n != 1 {
		t.Fatalf("preserved after prune = %d, want 1 (only post-epoch)", n)
	}
}

func TestAlertModeFiresOnPositiveICR(t *testing.T) {
	cat := storage.NewCatalog(fastStore(), nil)
	c := New(Config{
		Scheme:  spe.MSSrcAPAA,
		Catalog: cat,
		Period:  time.Hour, // period never elapses during the test
		Profile: statesize.Profile{Smax: 1000, Smin: 100},
		Dynamic: []string{"d1", "d2"},
	})
	c.SetHAUs(map[string]*spe.HAU{"d1": nil, "d2": nil})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)

	// Run's startup calls maybeEnterAlert: total size of nil HAUs = 0 <
	// smax, so alert mode arms.
	deadline := time.Now().Add(2 * time.Second)
	for !c.InAlertMode() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !c.InAlertMode() {
		t.Fatal("alert mode not armed at period start")
	}
	// Fig. 11 at t2: ICRs -50 and +30 sum to -20: no checkpoint.
	c.TurningPoint("d1", 10, 140, -50, false)
	c.TurningPoint("d2", 10, 100, +30, false)
	time.Sleep(50 * time.Millisecond)
	if c.Epoch() != 0 {
		t.Fatal("checkpoint fired on negative aggregate ICR")
	}
	// Fig. 11 at t4: d1 turns with ICR +60; aggregate +90 > 0: fire.
	c.TurningPoint("d1", 20, 40, +60, false)
	deadline = time.Now().Add(2 * time.Second)
	for c.Epoch() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", c.Epoch())
	}
	if c.InAlertMode() {
		t.Fatal("alert mode not dismissed after checkpoint")
	}
	cancel()
	<-c.Done()
}

func TestPeriodEndForcesCheckpoint(t *testing.T) {
	cat := storage.NewCatalog(fastStore(), nil)
	c := New(Config{
		Scheme:  spe.MSSrcAPAA,
		Catalog: cat,
		Period:  30 * time.Millisecond,
		// smax = 0 profile: alert mode can never arm, forcing the
		// period-end fallback path.
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for c.Epoch() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Epoch() == 0 {
		t.Fatal("period end did not force a checkpoint")
	}
	cancel()
	<-c.Done()
}

func TestPeriodicTriggerNonAA(t *testing.T) {
	c := New(Config{
		Scheme:  spe.MSSrcAP,
		Catalog: storage.NewCatalog(fastStore(), nil),
		Period:  20 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for c.Epoch() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Epoch() < 2 {
		t.Fatalf("epochs = %d, want >= 2", c.Epoch())
	}
	cancel()
	<-c.Done()
}

func TestBaselineControllerDoesNotSchedule(t *testing.T) {
	c := New(Config{
		Scheme:  spe.Baseline,
		Catalog: storage.NewCatalog(fastStore(), nil),
		Period:  10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)
	time.Sleep(60 * time.Millisecond)
	if c.Epoch() != 0 {
		t.Fatalf("baseline controller scheduled %d epochs", c.Epoch())
	}
	cancel()
	<-c.Done()
}

func TestFailureDetection(t *testing.T) {
	var alive atomic.Bool
	alive.Store(true)
	var mu sync.Mutex
	var detected []string
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(detected)
	}
	c := New(Config{
		Scheme:    spe.MSSrcAP,
		Catalog:   storage.NewCatalog(fastStore(), nil),
		PingEvery: 5 * time.Millisecond,
		IsAlive:   func(string) bool { return alive.Load() },
	})
	c.SetOnFailure(func(dead []string) {
		mu.Lock()
		detected = append(detected, dead...)
		mu.Unlock()
	})
	c.SetHAUs(map[string]*spe.HAU{"x": nil})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Run(ctx)
	time.Sleep(20 * time.Millisecond)
	if count() != 0 {
		t.Fatal("false positive failure detection")
	}
	alive.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if count() == 0 {
		t.Fatal("failure not detected")
	}
	n := count()
	time.Sleep(30 * time.Millisecond)
	if count() != n {
		t.Fatal("failure reported more than once")
	}
	c.ClearFailure()
	deadline = time.Now().Add(2 * time.Second)
	for count() == n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if count() == n {
		t.Fatal("detection not re-armed after ClearFailure")
	}
	cancel()
	<-c.Done()
}

func TestProfileApplication(t *testing.T) {
	c := New(Config{
		Scheme:  spe.MSSrcAPAA,
		Catalog: storage.NewCatalog(fastStore(), nil),
		Period:  100 * time.Millisecond,
	})
	c.SetHAUs(map[string]*spe.HAU{"dyn": nil, "flat": nil})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan statesize.Profile, 1)
	go func() { done <- c.ProfileApplication(ctx, 150*time.Millisecond) }()
	// Feed a sawtooth for "dyn" (min << avg/2) and a flat line for "flat".
	base := time.Now().UnixNano()
	sec := int64(time.Millisecond * 10)
	for i := 0; i < 8; i++ {
		size := int64(10)
		if i%2 == 0 {
			size = 500
		}
		c.TurningPoint("dyn", base+int64(i)*sec, size, 0, false)
		c.TurningPoint("flat", base+int64(i)*sec, 300+int64(i%2), 0, false)
		time.Sleep(5 * time.Millisecond)
	}
	prof := <-done
	dyn := c.Dynamic()
	if len(dyn) != 1 || dyn[0] != "dyn" {
		t.Fatalf("dynamic HAUs = %v", dyn)
	}
	if prof.Smax <= 0 {
		t.Fatalf("profile smax = %d", prof.Smax)
	}
	if got := c.InstalledProfile(); got.Smax != prof.Smax {
		t.Fatal("profile not installed")
	}
}

func TestSetProfile(t *testing.T) {
	c := New(Config{Scheme: spe.MSSrcAPAA, Catalog: storage.NewCatalog(fastStore(), nil)})
	c.SetProfile(statesize.Profile{Smax: 77})
	if c.InstalledProfile().Smax != 77 {
		t.Fatal("SetProfile lost")
	}
}

func TestEpochStatsSnapshot(t *testing.T) {
	c := New(Config{Scheme: spe.MSSrcAP, Catalog: storage.NewCatalog(fastStore(), nil)})
	c.SetHAUs(map[string]*spe.HAU{"a": nil})
	ep := c.TriggerCheckpoint()
	c.CheckpointDone("a", ep, spe.CheckpointBreakdown{DiskIO: 7})
	stats := c.EpochStats()
	if len(stats) != 1 || stats[0].Breakdown["a"].DiskIO != 7 {
		t.Fatalf("stats = %+v", stats)
	}
	// Mutating the snapshot must not affect the controller.
	stats[0].Breakdown["a"] = spe.CheckpointBreakdown{DiskIO: 99}
	st, _ := c.Stat(ep)
	if st.Breakdown["a"].DiskIO == 99 {
		t.Fatal("EpochStats returned shared state")
	}
}
