package chaos

import (
	"fmt"

	"meteorshower/internal/apps"
	"meteorshower/internal/cluster"
	"meteorshower/internal/metrics"
)

// Topology names the query-network shape a chaos run exercises. All three
// are cut down from the paper's applications and run in Audit mode with
// bounded sources, so every run has a deterministic terminal sink state
// the oracles can check against a reference replay.
type Topology string

const (
	// Chain is TMI narrowed to one pipeline: S→P→M→G→A→K, every HAU
	// in-degree 1. Token alignment is trivial here, which isolates
	// source preservation and rollback from alignment effects.
	Chain Topology = "chain"
	// FanIn is the two-pipeline TMI: reference-speed operators fan out
	// across both group operators and the analyzers fan back into the
	// sink, so recovery must preserve exactly-once across merge points.
	FanIn Topology = "fanin"
	// FanOut is the one-phone SignalGuru: the dispatcher splits frames
	// across two filter pipelines that re-merge at the voter, stressing
	// alignment with diverging and reconverging token paths.
	FanOut Topology = "fanout"
)

// Topologies lists every topology the harness knows, in the order the CLI
// and the smoke tests iterate them.
var Topologies = []Topology{Chain, FanIn, FanOut}

// rescaleVictim names the interior operator rescale chaos splits and
// merges. It must carry keyed state (operator.PartitionedState with a
// non-zero slot ring) and be restamped downstream before the sink, so
// replica identities never reach the oracle: TMI's Pair is restamped by
// the GoogleMap operator, SignalGuru's color filter by the shape and
// motion filters.
func rescaleVictim(top Topology) string {
	switch top {
	case Chain, FanIn:
		return "P0"
	case FanOut:
		return "C0"
	default:
		return ""
	}
}

// haVictim names the interior operator HA chaos protects with an active
// standby. It must satisfy ProtectHAU's shape constraints — exactly one
// unsplit upstream, at least one downstream — and is deliberately distinct
// from rescaleVictim (whose splits would make the victim or its upstream
// ineligible): TMI's GoogleMap operator M0 (single input from its Pair)
// and SignalGuru's frame analyzer A0 (single input from the color filter).
func haVictim(top Topology) string {
	switch top {
	case Chain, FanIn:
		return "M0"
	case FanOut:
		return "A0"
	default:
		return ""
	}
}

// buildSpec returns a fresh application instance for the topology. Fresh
// matters: operators are stateful, so the cluster run and the reference
// replay each need their own instance built from identical parameters.
func buildSpec(top Topology, seed int64, limit uint64) (cluster.AppSpec, *metrics.Collector, *apps.SinkRef, error) {
	col := metrics.NewCollector()
	ref := &apps.SinkRef{}
	switch top {
	case Chain:
		cfg := apps.TMISmall(col)
		cfg.Sources, cfg.Pairs, cfg.Groups = 1, 1, 1
		cfg.Seed = seed
		cfg.SinkRef = ref
		cfg.TrackIdentity = true
		cfg.Audit = true
		cfg.SourceLimit = limit
		return apps.TMI(cfg), col, ref, nil
	case FanIn:
		cfg := apps.TMISmall(col)
		cfg.Seed = seed
		cfg.SinkRef = ref
		cfg.TrackIdentity = true
		cfg.Audit = true
		cfg.SourceLimit = limit
		return apps.TMI(cfg), col, ref, nil
	case FanOut:
		cfg := apps.SGSmall(col)
		cfg.Seed = seed
		cfg.SinkRef = ref
		cfg.TrackIdentity = true
		cfg.Audit = true
		cfg.SourceLimit = limit
		return apps.SG(cfg), col, ref, nil
	default:
		return cluster.AppSpec{}, nil, nil, fmt.Errorf("chaos: unknown topology %q", top)
	}
}
