package spe

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"meteorshower/internal/operator"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// failSnapOp snapshots successfully failAfter times, then fails forever.
type failSnapOp struct {
	operator.Base
	failAfter int
	calls     int
}

func (o *failSnapOp) OnTuple(_ int, _ *tuple.Tuple, _ operator.Emitter) error { return nil }

func (o *failSnapOp) Snapshot() ([]byte, error) {
	o.calls++
	if o.calls > o.failAfter {
		return nil, errors.New("snapshot failed")
	}
	return []byte("ok"), nil
}

// TestCheckpointAbortsOnSnapshotFailure is the regression for the historical
// behaviour where a failed op.Snapshot() was encoded as a zero-length
// section and the torn epoch still completed in the catalog. A snapshot
// failure must abort the individual checkpoint: nothing saved, the epoch
// never complete, the HAU fail-stopped.
func TestCheckpointAbortsOnSnapshotFailure(t *testing.T) {
	cat := storage.NewCatalog(storage.NewStore(storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond}), []string{"H"})
	h, err := New(Config{
		ID: "H", Scheme: MSSrcAP,
		Ops:     []operator.Operator{&failSnapOp{Base: operator.Base{OpName: "f"}, failAfter: 1}},
		Out:     []*Edge{NewEdge("H", "z", 0)},
		Catalog: cat,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)

	// Epoch 1: the snapshot succeeds and the epoch completes.
	h.Command(Command{Kind: CmdCheckpoint, Epoch: 1})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if e, ok := cat.MostRecentComplete(); ok && e == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("epoch 1 never completed")
		}
		time.Sleep(time.Millisecond)
	}

	// Epoch 2: the snapshot fails. The HAU must fail-stop without saving.
	h.Command(Command{Kind: CmdCheckpoint, Epoch: 2})
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("HAU did not stop after snapshot failure")
	}
	if h.Err() == nil {
		t.Fatal("snapshot failure not surfaced via Err")
	}
	if saved, _ := cat.EpochProgress(2); saved != 0 {
		t.Fatalf("torn epoch has %d saves; want 0", saved)
	}
	if e, _ := cat.MostRecentComplete(); e != 1 {
		t.Fatalf("most recent complete epoch = %d, want 1", e)
	}
}

// TestPooledSectionAliasing pins the refcounting contract: a snapshot
// captured before an operator mutation must flatten to the same bytes even
// if the flatten happens after later captures re-encoded the operator into
// new pooled buffers.
func TestPooledSectionAliasing(t *testing.T) {
	h := mkRestorable(t)
	c := h.cfg.Ops[0].(*operator.Counter)
	drop := func(int, *tuple.Tuple) {}
	if err := c.OnTuple(0, tuple.New(1, "S", "a", nil), drop); err != nil {
		t.Fatal(err)
	}

	snap1, err := h.captureState()
	if err != nil {
		t.Fatal(err)
	}
	want := snap1.flatten()

	// Mutate the operator and capture twice more; the second capture is
	// clean and must share the op section with the first by reference.
	if err := c.OnTuple(0, tuple.New(2, "S", "b", nil), drop); err != nil {
		t.Fatal(err)
	}
	snap2, err := h.captureState()
	if err != nil {
		t.Fatal(err)
	}
	snap3, err := h.captureState()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.sections[1] != snap3.sections[1] {
		t.Fatal("clean capture did not reuse the cached op section")
	}
	if snap3.dirty >= snap2.dirty {
		t.Fatalf("clean capture dirty=%d, dirty capture dirty=%d", snap3.dirty, snap2.dirty)
	}

	// The late flatten of the pre-mutation snapshot must be byte-identical
	// to its early flatten: the re-encodes above must not have scribbled
	// over snap1's pooled buffers.
	if got := snap1.flatten(); !bytes.Equal(want, got) {
		t.Fatal("pre-mutation snapshot changed after later captures")
	}
	snap1.release()
	snap2.release()
	snap3.release()

	// A post-release capture after another mutation still restores cleanly.
	if err := c.OnTuple(0, tuple.New(3, "S", "c", nil), drop); err != nil {
		t.Fatal(err)
	}
	blob := h.SnapshotNow()
	h2 := mkRestorable(t)
	if err := h2.RestoreFrom(blob); err != nil {
		t.Fatal(err)
	}
	c2 := h2.cfg.Ops[0].(*operator.Counter)
	for _, k := range []string{"a", "b", "c"} {
		if c2.Count(k) != 1 {
			t.Fatalf("restored count[%s] = %d, want 1", k, c2.Count(k))
		}
	}
}

// TestV1BlobRoundTrip hand-encodes a version-1 (headerless) blob, restores
// it, re-snapshots as v2, and restores that — the property v1 readers rely
// on across the format migration.
func TestV1BlobRoundTrip(t *testing.T) {
	src := mkRestorable(t)
	src.outSeq[0] = 11
	src.lastInSeq[0] = 7
	src.lastSrcID[0]["S"] = 42
	src.localEpoch = 3
	c := src.cfg.Ops[0].(*operator.Counter)
	drop := func(int, *tuple.Tuple) {}
	for i, k := range []string{"x", "y", "x"} {
		if err := c.OnTuple(0, tuple.New(uint64(i+1), "S", k, nil), drop); err != nil {
			t.Fatal(err)
		}
	}

	// v1 layout: runtime section, u32 nOps, length-prefixed op snapshots.
	v1 := src.appendRuntimeState(nil)
	opSnap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v1 = binary.LittleEndian.AppendUint32(v1, 1)
	v1 = binary.LittleEndian.AppendUint32(v1, uint32(len(opSnap)))
	v1 = append(v1, opSnap...)

	check := func(h *HAU, stage string) {
		t.Helper()
		if h.outSeq[0] != 11 || h.lastInSeq[0] != 7 || h.lastSrcID[0]["S"] != 42 || h.localEpoch != 3 {
			t.Fatalf("%s: runtime state mismatch: %+v", stage, h)
		}
		hc := h.cfg.Ops[0].(*operator.Counter)
		if hc.Count("x") != 2 || hc.Count("y") != 1 {
			t.Fatalf("%s: counts x=%d y=%d", stage, hc.Count("x"), hc.Count("y"))
		}
	}

	h1 := mkRestorable(t)
	if err := h1.RestoreFrom(v1); err != nil {
		t.Fatal(err)
	}
	check(h1, "v1 restore")

	v2 := h1.SnapshotNow()
	if v2 == nil {
		t.Fatal(h1.Err())
	}
	if binary.LittleEndian.Uint32(v2) != snapshotMagic {
		t.Fatal("re-snapshot is not version 2")
	}
	h2 := mkRestorable(t)
	if err := h2.RestoreFrom(v2); err != nil {
		t.Fatal(err)
	}
	check(h2, "v2 restore")
}
