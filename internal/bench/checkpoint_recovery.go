package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"meteorshower/internal/cluster"
	"meteorshower/internal/metrics"
	"meteorshower/internal/spe"
)

// Variant labels the Fig. 14/16 bars: the three Meteor Shower schemes plus
// the Oracle that checkpoints exactly at the observed state minimum.
type Variant int

const (
	VarMSSrc Variant = iota
	VarMSSrcAP
	VarMSSrcAPAA
	VarOracle
)

func (v Variant) String() string {
	switch v {
	case VarMSSrc:
		return "MS-src"
	case VarMSSrcAP:
		return "MS-src+ap"
	case VarMSSrcAPAA:
		return "MS-src+ap+aa"
	default:
		return "Oracle"
	}
}

func (v Variant) scheme() spe.Scheme {
	if v == VarMSSrc {
		return spe.MSSrc
	}
	return spe.MSSrcAP // aa and Oracle use the ap runtime; timing differs
}

// Fig14Row is one stacked bar of Fig. 14.
type Fig14Row struct {
	App        string
	Variant    string
	TokenWait  time.Duration // "token collection"
	DiskIO     time.Duration
	Other      time.Duration // serialization + process creation
	Total      time.Duration
	StateBytes int64
}

// RunFig14 measures the checkpoint time of each variant on one app. For
// MS-src only the total is reported (token propagation and individual
// checkpoints overlap); for the parallel variants the slowest individual
// checkpoint is broken down.
func RunFig14(p Params, kind AppKind) ([]Fig14Row, error) {
	p = p.withDefaults()
	var rows []Fig14Row
	for _, v := range []Variant{VarMSSrc, VarMSSrcAP, VarMSSrcAPAA, VarOracle} {
		row, err := runCheckpointOnce(p, kind, v, nil)
		if err != nil {
			return nil, fmt.Errorf("%v/%v: %w", kind, v, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runCheckpointOnce boots the app, fires one checkpoint with the variant's
// timing policy, and reports its breakdown. If col is non-nil it is left
// collecting through the checkpoint (used by Fig. 15).
func runCheckpointOnce(p Params, kind AppKind, v Variant, after func(*runner)) (Fig14Row, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, err := startSystem(ctx, p, kind, v.scheme(), 0)
	if err != nil {
		return Fig14Row{}, err
	}
	defer r.sys.Stop()
	sleepCtx(ctx, p.Warmup)

	switch v {
	case VarMSSrcAPAA, VarOracle:
		// Wait for a (near-)minimal aggregate state before triggering.
		min := observeMinimum(ctx, r, p.Window/2)
		tol := 1.25
		if v == VarOracle {
			tol = 1.05
		}
		waitUntil(p.Window, func() bool {
			return totalState(r) <= int64(float64(min)*tol)+1
		})
	}
	ep := r.sys.TriggerCheckpoint()
	st, err := waitEpoch(r.sys, ep, 30*time.Second)
	if err != nil {
		return Fig14Row{}, err
	}
	if after != nil {
		after(r)
	}

	row := Fig14Row{App: kind.String(), Variant: v.String()}
	if v == VarMSSrc {
		row.Total = st.WallTime()
		for _, b := range st.Breakdown {
			row.StateBytes += b.StateBytes
		}
	} else {
		slow := st.SlowestBreakdown()
		row.TokenWait = slow.TokenWait
		row.DiskIO = slow.DiskIO
		row.Other = slow.Serialize
		row.Total = slow.Total()
		for _, b := range st.Breakdown {
			row.StateBytes += b.StateBytes
		}
	}
	return row, nil
}

// observeMinimum watches the aggregate state size for dur and returns the
// smallest value seen (the Oracle's "complete picture ... from prior runs").
func observeMinimum(ctx context.Context, r *runner, dur time.Duration) int64 {
	min := int64(1 << 62)
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		if s := totalState(r); s < min {
			min = s
		}
		sleepCtx(ctx, 5*time.Millisecond)
	}
	return min
}

func totalState(r *runner) int64 {
	var total int64
	for _, id := range r.sys.Cluster().GraphNodes() {
		if h := r.sys.Cluster().HAU(id); h != nil {
			total += h.CachedStateSize()
		}
	}
	return total
}

// FprintFig14 prints the checkpoint-time table.
func FprintFig14(w io.Writer, app string, rows []Fig14Row) {
	fmt.Fprintf(w, "Fig. 14 — checkpoint time (%s), sim seconds\n", app)
	fmt.Fprintf(w, "%-14s %12s %12s %12s %12s %12s\n",
		"variant", "token", "disk I/O", "other", "total", "state bytes")
	for _, r := range rows {
		if r.Variant == "MS-src" {
			fmt.Fprintf(w, "%-14s %12s %12s %12s %12s %12d\n",
				r.Variant, "-", "-", "-", fmtDur(r.Total), r.StateBytes)
			continue
		}
		fmt.Fprintf(w, "%-14s %12s %12s %12s %12s %12d\n",
			r.Variant, fmtDur(r.TokenWait), fmtDur(r.DiskIO), fmtDur(r.Other),
			fmtDur(r.Total), r.StateBytes)
	}
}

// Fig15Series is the instantaneous latency around one checkpoint.
type Fig15Series struct {
	App     string
	Variant string
	Buckets []metrics.Bucket
}

// RunFig15 records instantaneous latency while each variant checkpoints.
func RunFig15(p Params, kind AppKind) ([]Fig15Series, error) {
	p = p.withDefaults()
	var out []Fig15Series
	for _, v := range []Variant{VarMSSrc, VarMSSrcAP, VarMSSrcAPAA} {
		series, err := runFig15One(p, kind, v)
		if err != nil {
			return nil, err
		}
		out = append(out, series)
	}
	return out, nil
}

func runFig15One(p Params, kind AppKind, v Variant) (Fig15Series, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, err := startSystem(ctx, p, kind, v.scheme(), 0)
	if err != nil {
		return Fig15Series{}, err
	}
	defer r.sys.Stop()
	sleepCtx(ctx, p.Warmup)
	r.col.Reset()
	sleepCtx(ctx, p.Window/8) // pre-checkpoint baseline

	if v == VarMSSrcAPAA {
		min := observeMinimum(ctx, r, p.Window/4)
		waitUntil(p.Window/2, func() bool { return totalState(r) <= int64(float64(min)*1.25)+1 })
	}
	ep := r.sys.TriggerCheckpoint()
	if _, err := waitEpoch(r.sys, ep, 30*time.Second); err != nil {
		return Fig15Series{}, err
	}
	sleepCtx(ctx, p.Window/4) // post-checkpoint tail
	return Fig15Series{
		App:     kind.String(),
		Variant: v.String(),
		Buckets: r.col.InstantSeries(50 * time.Millisecond),
	}, nil
}

// FprintFig15 prints the instantaneous-latency traces.
func FprintFig15(w io.Writer, series []Fig15Series) {
	for _, s := range series {
		fmt.Fprintf(w, "Fig. 15 — instantaneous latency (%s, %s)\n", s.App, s.Variant)
		var max time.Duration
		for _, b := range s.Buckets {
			if b.MeanLat > max {
				max = b.MeanLat
			}
		}
		for _, b := range s.Buckets {
			fmt.Fprintf(w, "  +%-8s n=%-5d mean=%-12s %s\n",
				time.Duration(b.Start-s.Buckets[0].Start).Truncate(10*time.Millisecond),
				b.Count, b.MeanLat.Truncate(time.Microsecond),
				bar(int64(b.MeanLat), int64(max), 40))
		}
	}
}

// Fig16Row is one recovery bar of Fig. 16.
type Fig16Row struct {
	App       string
	Variant   string
	Reconnect time.Duration
	DiskIO    time.Duration
	Other     time.Duration
	Total     time.Duration
	Stats     cluster.RecoveryStats
}

// RunFig16 measures worst-case recovery: every node fails and the whole
// application rolls back to the MRC. MS-src and MS-src+ap share a recovery
// path, so the paper reports them as one bar.
func RunFig16(p Params, kind AppKind) ([]Fig16Row, error) {
	p = p.withDefaults()
	var rows []Fig16Row
	for _, v := range []Variant{VarMSSrcAP, VarMSSrcAPAA, VarOracle} {
		row, err := runFig16One(p, kind, v)
		if err != nil {
			return nil, fmt.Errorf("%v/%v: %w", kind, v, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runFig16One(p Params, kind AppKind, v Variant) (Fig16Row, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, err := startSystem(ctx, p, kind, v.scheme(), 0)
	if err != nil {
		return Fig16Row{}, err
	}
	defer r.sys.Stop()
	sleepCtx(ctx, p.Warmup)

	switch v {
	case VarMSSrcAPAA, VarOracle:
		min := observeMinimum(ctx, r, p.Window/2)
		tol := 1.25
		if v == VarOracle {
			tol = 1.05
		}
		waitUntil(p.Window, func() bool { return totalState(r) <= int64(float64(min)*tol)+1 })
	}
	ep := r.sys.TriggerCheckpoint()
	if _, err := waitEpoch(r.sys, ep, 30*time.Second); err != nil {
		return Fig16Row{}, err
	}
	sleepCtx(ctx, p.Window/8)

	r.sys.KillAll()
	stats, err := r.sys.RecoverAll(ctx)
	if err != nil {
		return Fig16Row{}, err
	}
	name := v.String()
	if v == VarMSSrcAP {
		name = "MS-src(+ap)"
	}
	return Fig16Row{
		App:       kind.String(),
		Variant:   name,
		Reconnect: stats.Reconnect,
		DiskIO:    stats.DiskIO,
		Other:     stats.Reload + stats.Deserialize,
		Total:     stats.Total(),
		Stats:     stats,
	}, nil
}

// FprintFig16 prints the recovery-time table. Replay fetch is shown for
// completeness but excluded from the total, matching the paper.
func FprintFig16(w io.Writer, app string, rows []Fig16Row) {
	fmt.Fprintf(w, "Fig. 16 — worst-case recovery time (%s), sim seconds\n", app)
	fmt.Fprintf(w, "%-14s %12s %12s %12s %12s %14s\n", "variant", "reconnect", "disk I/O", "other", "total", "(replay fetch)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12s %12s %12s %12s %14s\n",
			r.Variant, fmtDur(r.Reconnect), fmtDur(r.DiskIO), fmtDur(r.Other),
			fmtDur(r.Total), fmtDur(r.Stats.ReplayFetch))
	}
}
