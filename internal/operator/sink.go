package operator

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"meteorshower/internal/tuple"
)

// LatencyRecorder receives per-tuple end-to-end latencies from sinks.
// metrics.Collector implements it.
type LatencyRecorder interface {
	RecordLatency(at int64, lat time.Duration)
}

// srcTrack is the per-source delivery record behind the exactly-once
// oracle: the distinct-id set plus running counters for each violation
// class the chaos harness checks.
type srcTrack struct {
	seen     map[uint64]bool
	minID    uint64 // lowest id delivered so far
	maxID    uint64 // highest id delivered so far
	lastID   uint64 // id of the most recent fresh delivery
	hasAny   bool
	dupes    uint64
	reorders uint64
}

// SrcReport summarizes delivery from one source, classifying the three
// ways exactly-once can fail:
//
//   - Gaps: ids inside [MinID, MaxID] that never arrived — lost tuples,
//     the failure mode source preservation exists to prevent. The base is
//     the lowest id seen, not 0: operators stamp ids from different
//     starting points (sources from 0, intermediate identities from 1).
//   - Duplicates: ids delivered more than once — replay that escaped the
//     Seq/ID suppression.
//   - Reorders: fresh deliveries whose id is below the previous fresh
//     delivery's id. On a single path this means the transport reordered;
//     across a fan-out/fan-in split it is expected and must be tolerated,
//     so reorders are reported separately from Violations.
type SrcReport struct {
	Delivered  uint64 // distinct ids delivered
	MinID      uint64 // lowest id delivered (valid when Delivered > 0)
	MaxID      uint64 // highest id delivered (valid when Delivered > 0)
	Gaps       uint64 // missing ids in [MinID, MaxID]
	Duplicates uint64
	Reorders   uint64
}

// SinkReport maps source id to its delivery report.
type SinkReport map[string]SrcReport

// TotalViolations counts gaps and duplicates across all sources. Reorders
// are excluded: they are only a violation on order-preserving topologies,
// which the caller knows and the sink does not.
func (r SinkReport) TotalViolations() uint64 {
	var n uint64
	for _, sr := range r {
		n += sr.Gaps + sr.Duplicates
	}
	return n
}

// String renders the report with sources sorted, for seed-reproducible
// failure messages.
func (r SinkReport) String() string {
	srcs := make([]string, 0, len(r))
	for src := range r {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	var b strings.Builder
	for _, src := range srcs {
		sr := r[src]
		fmt.Fprintf(&b, "%s: delivered=%d ids=[%d,%d] gaps=%d dupes=%d reorders=%d\n",
			src, sr.Delivered, sr.MinID, sr.MaxID, sr.Gaps, sr.Duplicates, sr.Reorders)
	}
	return b.String()
}

// Sink terminates a stream: it records end-to-end latency for every tuple
// and, when TrackIdentity is on, remembers which (source, id) pairs it has
// delivered — the exactly-once oracle used by the recovery property tests
// and the chaos harness. Unlike most operators, a Sink is observed
// concurrently (benchmarks and monitors read its counters while the HAU
// loop delivers), so it guards its state.
type Sink struct {
	Base
	Recorder      LatencyRecorder
	TrackIdentity bool
	Now           func() int64 // injectable clock; defaults to wall time

	delivered atomic.Uint64
	dupes     atomic.Uint64
	mu        sync.Mutex
	track     map[string]*srcTrack
}

// NewSink returns a sink reporting into rec (which may be nil).
func NewSink(name string, rec LatencyRecorder) *Sink {
	return &Sink{Base: Base{OpName: name}, Recorder: rec, track: make(map[string]*srcTrack)}
}

// OnTuple records the tuple's latency and identity.
func (s *Sink) OnTuple(_ int, t *tuple.Tuple, _ Emitter) error {
	s.delivered.Add(1)
	if s.Recorder != nil {
		// The clock read is the dominant cost of an unobserved sink, so
		// only pay for it when someone records the latency.
		now := time.Now().UnixNano()
		if s.Now != nil {
			now = s.Now()
		}
		s.Recorder.RecordLatency(now, time.Duration(now-t.Ts))
	}
	if s.TrackIdentity {
		s.mu.Lock()
		tr := s.track[t.Src]
		if tr == nil {
			tr = &srcTrack{seen: make(map[uint64]bool)}
			s.track[t.Src] = tr
		}
		if tr.seen[t.ID] {
			tr.dupes++
			s.dupes.Add(1)
		} else {
			if tr.hasAny && t.ID < tr.lastID {
				tr.reorders++
			}
			tr.seen[t.ID] = true
			if !tr.hasAny || t.ID > tr.maxID {
				tr.maxID = t.ID
			}
			if !tr.hasAny || t.ID < tr.minID {
				tr.minID = t.ID
			}
			tr.lastID = t.ID
			tr.hasAny = true
		}
		s.mu.Unlock()
	}
	return nil
}

// Delivered returns the tuple count since the last restore.
func (s *Sink) Delivered() uint64 { return s.delivered.Load() }

// Duplicates returns how many identity-tracked tuples arrived twice.
func (s *Sink) Duplicates() uint64 { return s.dupes.Load() }

// SeenCount returns how many distinct (source, id) pairs were delivered.
func (s *Sink) SeenCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, tr := range s.track {
		n += len(tr.seen)
	}
	return n
}

// Seen reports whether the sink has delivered tuple (src, id).
func (s *Sink) Seen(src string, id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := s.track[src]
	return tr != nil && tr.seen[id]
}

// Report classifies every tracked source's deliveries into the three
// violation classes. Gaps are derived, not stored: ids are dense within
// [minID, maxID], so missing = span - distinct.
func (s *Sink) Report() SinkReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(SinkReport, len(s.track))
	for src, tr := range s.track {
		sr := SrcReport{
			Delivered:  uint64(len(tr.seen)),
			Duplicates: tr.dupes,
			Reorders:   tr.reorders,
		}
		if tr.hasAny {
			sr.MinID = tr.minID
			sr.MaxID = tr.maxID
			sr.Gaps = tr.maxID - tr.minID + 1 - uint64(len(tr.seen))
		}
		out[src] = sr
	}
	return out
}

// MissingIDs lists up to max ids inside the source's [MinID, MaxID] span
// that never arrived — the concrete gaps, for failure messages.
func (s *Sink) MissingIDs(src string, max int) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := s.track[src]
	if tr == nil || !tr.hasAny {
		return nil
	}
	var out []uint64
	for id := tr.minID; id <= tr.maxID && len(out) < max; id++ {
		if !tr.seen[id] {
			out = append(out, id)
		}
	}
	return out
}

// StateSize covers the identity set.
func (s *Sink) StateSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64 = 16
	for src, tr := range s.track {
		n += int64(len(src)) + int64(len(tr.seen))*9 + 32
	}
	return n
}

// Snapshot serializes the delivery state, including the per-source
// violation counters so a recovered sink's report continues where the
// checkpointed one left off.
func (s *Sink) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, s.delivered.Load())
	buf = binary.LittleEndian.AppendUint64(buf, s.dupes.Load())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.track)))
	srcs := make([]string, 0, len(s.track))
	for src := range s.track {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		tr := s.track[src]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(src)))
		buf = append(buf, src...)
		buf = binary.LittleEndian.AppendUint64(buf, tr.dupes)
		buf = binary.LittleEndian.AppendUint64(buf, tr.reorders)
		buf = binary.LittleEndian.AppendUint64(buf, tr.lastID)
		if tr.hasAny {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tr.seen)))
		ids := make([]uint64, 0, len(tr.seen))
		for id := range tr.seen {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint64(buf, id)
		}
	}
	return buf, nil
}

// Restore rebuilds the delivery state.
func (s *Sink) Restore(buf []byte) error {
	if len(buf) < 20 {
		return errors.New("sink: short snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delivered.Store(binary.LittleEndian.Uint64(buf))
	s.dupes.Store(binary.LittleEndian.Uint64(buf[8:]))
	nsrc := int(binary.LittleEndian.Uint32(buf[16:]))
	buf = buf[20:]
	s.track = make(map[string]*srcTrack, nsrc)
	for i := 0; i < nsrc; i++ {
		if len(buf) < 2 {
			return errors.New("sink: truncated snapshot")
		}
		sl := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < sl+29 {
			return errors.New("sink: truncated snapshot")
		}
		src := string(buf[:sl])
		buf = buf[sl:]
		tr := &srcTrack{
			dupes:    binary.LittleEndian.Uint64(buf),
			reorders: binary.LittleEndian.Uint64(buf[8:]),
			lastID:   binary.LittleEndian.Uint64(buf[16:]),
			hasAny:   buf[24] != 0,
		}
		n := int(binary.LittleEndian.Uint32(buf[25:]))
		buf = buf[29:]
		if len(buf) < n*8 {
			return errors.New("sink: truncated snapshot")
		}
		tr.seen = make(map[uint64]bool, n)
		for j := 0; j < n; j++ {
			id := binary.LittleEndian.Uint64(buf[j*8:])
			tr.seen[id] = true
			// min/maxID are derivable: ids are stored sorted, but recompute
			// defensively rather than trust ordering.
			if j == 0 || id > tr.maxID {
				tr.maxID = id
			}
			if j == 0 || id < tr.minID {
				tr.minID = id
			}
		}
		if n > 0 {
			tr.hasAny = true
		}
		buf = buf[n*8:]
		s.track[src] = tr
	}
	return nil
}
