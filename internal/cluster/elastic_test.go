package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"meteorshower/internal/elastic"
	"meteorshower/internal/metrics"
	"meteorshower/internal/spe"
)

// TestAddNodeAndRetiredSlotReuse covers the provisioner's grow path: a new
// node joins schedulable, a drained node retires out of the fleet (its
// HAUs live-migrated off), and the next AddNode reincarnates the retired
// slot instead of growing the array — with exactly-once delivery intact
// across the whole cycle.
func TestAddNodeAndRetiredSlotReuse(t *testing.T) {
	cl, _, reg := newTestCluster(t, spe.MSSrcAP, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 50
	})

	if got := cl.AddNode(); got != 3 {
		t.Fatalf("AddNode returned %d, want fresh index 3", got)
	}
	if cl.NumNodes() != 4 || cl.FleetSize() != 4 {
		t.Fatalf("nodes=%d fleet=%d after grow, want 4/4", cl.NumNodes(), cl.FleetSize())
	}

	victim := cl.NodeOf("M")
	if err := cl.DrainNode(ctx, victim); err != nil {
		t.Fatalf("DrainNode(%d): %v", victim, err)
	}
	if !cl.NodeRetired(victim) {
		t.Fatalf("node %d not retired after drain", victim)
	}
	if cl.FleetSize() != 3 {
		t.Fatalf("fleet=%d after drain, want 3", cl.FleetSize())
	}
	for _, id := range cl.GraphNodes() {
		if cl.NodeOf(id) == victim {
			t.Fatalf("HAU %s still on drained node %d", id, victim)
		}
	}

	if got := cl.AddNode(); got != victim {
		t.Fatalf("AddNode returned %d, want reused retired slot %d", got, victim)
	}
	if cl.NodeRetired(victim) || cl.FleetSize() != 4 {
		t.Fatalf("slot %d not reincarnated (fleet=%d)", victim, cl.FleetSize())
	}

	// The stream must keep flowing, exactly-once, through all of it.
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-churn deliveries", func() bool {
		return reg.get().Delivered() > after+50
	})
	cl.StopAll()
	if rep := reg.get().Report(); rep.TotalViolations() != 0 {
		t.Fatalf("exactly-once violated across scale cycle:\n%s", rep)
	}
}

func TestDrainNodeValidation(t *testing.T) {
	cl, _, _ := newTestCluster(t, spe.MSSrcAP, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.DrainNode(ctx, 0); err == nil {
		t.Fatal("drain before Start accepted")
	}
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	if err := cl.DrainNode(ctx, 9); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	cl.KillNode(1)
	if err := cl.DrainNode(ctx, 1); err == nil {
		t.Fatal("dead node accepted")
	}
	if err := cl.DrainNode(ctx, 0); err == nil {
		t.Fatal("drain leaving no schedulable node accepted")
	}
}

// TestDrainAbortsWhenNodeDiesMidDrain is the drain half of the
// died-while-draining race: the node fails right as its first scale-in
// migration starts. The drain must give up with ErrDrainAborted, leave
// the node un-retired, and the subsequent whole-application recovery must
// re-place the dead node's HAUs exactly once — duplicates at the sink
// would mean the drain and the recovery both moved them.
func TestDrainAbortsWhenNodeDiesMidDrain(t *testing.T) {
	cl, _, reg := newTestCluster(t, spe.MSSrcAP, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 50
	})
	ep := cl.Controller().TriggerCheckpoint()
	waitFor(t, 5*time.Second, "first complete checkpoint", func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e >= ep
	})

	victim := cl.NodeOf("M")
	var once sync.Once
	cl.SetDrainObserver(func(id string, from, to int) {
		once.Do(func() { cl.KillNode(victim) })
	})
	err := cl.DrainNode(ctx, victim)
	cl.SetDrainObserver(nil)
	if !errors.Is(err, ErrDrainAborted) {
		t.Fatalf("DrainNode returned %v, want ErrDrainAborted", err)
	}
	if cl.NodeRetired(victim) {
		t.Fatalf("node %d retired despite aborted drain", victim)
	}
	if cl.NodeDraining(victim) {
		t.Fatalf("node %d still marked draining after abort", victim)
	}

	if _, err := cl.RecoverAllWithRetry(ctx, 10, 2*time.Millisecond); err != nil {
		t.Fatalf("recovery after aborted drain: %v", err)
	}
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-recovery deliveries", func() bool {
		return reg.get().Delivered() > after+50
	})
	cl.StopAll()
	if rep := reg.get().Report(); rep.TotalViolations() != 0 {
		t.Fatalf("HAUs double-recovered or lost across aborted drain:\n%s", rep)
	}
}

// TestDrainAbortsWhenRecoverySupersedes is the recovery half of the race:
// a DIFFERENT node fails while the drain is in flight and the failure
// handler drives whole-application recovery. The recovery's gen bump owns
// all placement from that moment — the drain must abort rather than keep
// moving (or retire a node the rollback may have re-placed HAUs onto),
// and the victim's HAUs must not be recovered twice.
func TestDrainAbortsWhenRecoverySupersedes(t *testing.T) {
	cl, _, reg := newTestCluster(t, spe.MSSrcAP, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 50
	})
	ep := cl.Controller().TriggerCheckpoint()
	waitFor(t, 5*time.Second, "first complete checkpoint", func() bool {
		e, ok := cl.Catalog().MostRecentComplete()
		return ok && e >= ep
	})

	victim := cl.NodeOf("M")
	other := (victim + 1) % 3
	var once sync.Once
	cl.SetDrainObserver(func(id string, from, to int) {
		once.Do(func() {
			cl.KillNode(other)
			if _, err := cl.RecoverAllWithRetry(ctx, 10, 2*time.Millisecond); err != nil {
				t.Errorf("recovery during drain: %v", err)
			}
		})
	})
	err := cl.DrainNode(ctx, victim)
	cl.SetDrainObserver(nil)
	if !errors.Is(err, ErrDrainAborted) {
		t.Fatalf("DrainNode returned %v, want ErrDrainAborted (superseded)", err)
	}
	if cl.NodeRetired(victim) || cl.NodeDraining(victim) {
		t.Fatalf("node %d left retired=%v draining=%v after superseded drain",
			victim, cl.NodeRetired(victim), cl.NodeDraining(victim))
	}

	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-recovery deliveries", func() bool {
		return reg.get().Delivered() > after+50
	})
	cl.StopAll()
	if rep := reg.get().Report(); rep.TotalViolations() != 0 {
		t.Fatalf("HAUs double-recovered or lost across superseded drain:\n%s", rep)
	}
}

// TestElasticEngineScalesOutUnderLoad wires the full loop — CPU gates,
// sampler, trigger, provisioner, controller tick — and checks that a
// saturated two-node fleet actually grows.
func TestElasticEngineScalesOutUnderLoad(t *testing.T) {
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:           testApp(col, reg),
		Scheme:        spe.MSSrcAP,
		Nodes:         2,
		NodeCores:     1,
		PerTupleDelay: 300 * time.Microsecond,
		ElasticEvery:  20 * time.Millisecond,
		Elastic: elastic.Config{
			Window: 3, Violations: 2,
			ScaleOutUtil: 0.7, ScaleInUtil: 0.05,
			MinNodes: 2, MaxNodes: 4,
		},
		LocalDiskSpec:  local,
		SharedSpec:     shared,
		TickEvery:      time.Millisecond,
		CkptPeriod:     40 * time.Millisecond,
		PreserveMemCap: 1 << 20,
		SourceFlush:    256,
		Seed:           1,
		Metrics:        col,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	cl.StartController(ctx)

	// 2 sources x 3 tuples/ms x 300us/tuple saturates two 1-core nodes; the
	// engine must add capacity once the window fills.
	waitFor(t, 10*time.Second, "scale-out under saturation", func() bool {
		return cl.FleetSize() > 2
	})
	evs := cl.Elastic().Events()
	if len(evs) == 0 || evs[0].Kind != elastic.ScaleOut {
		t.Fatalf("no scale-out event recorded: %+v", evs)
	}
}

// TestElasticSampleConcurrentStress hammers the sampling read path while
// the cluster checkpoints, migrates, drains and recovers — the collector
// and sampler must be race-free under concurrent collection (run with
// -race; the chaos-elastic CI target does).
func TestElasticSampleConcurrentStress(t *testing.T) {
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:            testApp(col, reg),
		Scheme:         spe.MSSrcAP,
		Nodes:          4,
		NodeCores:      1,
		PerTupleDelay:  5 * time.Microsecond,
		LocalDiskSpec:  local,
		SharedSpec:     shared,
		TickEvery:      time.Millisecond,
		CkptPeriod:     20 * time.Millisecond,
		PreserveMemCap: 1 << 20,
		SourceFlush:    256,
		Seed:           1,
		Metrics:        col,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	cl.StartController(ctx)
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 20
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := cl.elasticSample()
				_ = len(s.Nodes)
				_ = col.Window(0, 0)
				_ = col.Quantile(0.99)
				_ = cl.Controller().EpochStats()
				_ = cl.FleetSize()
				// Yield between rounds: the point is concurrent reads, not
				// starving the cluster's own loops off the scheduler.
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	// Drive churn under the samplers: checkpoints, a migration, a full
	// grow/drain cycle, and a recovery.
	for i := 0; i < 3; i++ {
		cl.Controller().TriggerCheckpoint()
		time.Sleep(10 * time.Millisecond)
	}
	dest := (cl.NodeOf("M") + 1) % 4
	if _, err := cl.MigrateHAU(ctx, "M", dest); err != nil {
		t.Fatalf("migrate under sampling: %v", err)
	}
	idx := cl.AddNode()
	// A drain can legitimately abort under heavy concurrent load (its
	// checkpoint quiesce may time out); that is not what this test is
	// checking, so retry a few times and accept a persistent abort.
	for i := 0; i < 3; i++ {
		err = cl.DrainNode(ctx, cl.NodeOf("M"))
		if err == nil || !errors.Is(err, ErrDrainAborted) {
			break
		}
	}
	if err != nil && !errors.Is(err, ErrDrainAborted) {
		t.Fatalf("drain under sampling: %v", err)
	}
	_ = idx
	cl.KillNode(cl.NodeOf("K"))
	if _, err := cl.RecoverAllWithRetry(ctx, 10, 2*time.Millisecond); err != nil {
		t.Fatalf("recovery under sampling: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}
