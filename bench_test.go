// Package meteorshower's root benchmark suite regenerates each table and
// figure of the paper once per benchmark iteration (b.N is normally 1 for
// these; each iteration is a full simulated experiment). Custom metrics
// carry the headline number of each figure so `go test -bench` output can
// be compared against the paper directly. Full-resolution runs live in
// cmd/msbench; these use the quick grid.
package meteorshower

import (
	"io"
	"testing"
	"time"

	"meteorshower/internal/bench"
	"meteorshower/internal/failure"
	"meteorshower/internal/spe"
)

func quickParams() bench.Params {
	p := bench.Params{
		Window: 800 * time.Millisecond,
		Warmup: 200 * time.Millisecond,
		Nodes:  4,
		Quick:  true,
		Seed:   1,
	}
	return p
}

// BenchmarkTable1 regenerates the failure model table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunTable1(int64(i + 1))
		b.ReportMetric(rows[0].AFN100[failure.Network], "google-net-AFN100")
		b.ReportMetric(rows[0].Burst*100, "burst-%")
	}
}

// BenchmarkFig5 runs the TMI state-size trace and reports its envelope.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces, err := bench.RunFig5(quickParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(traces[0].Max)/1024, "maxKB")
		b.ReportMetric(float64(traces[0].Min)/1024, "minKB")
	}
}

// BenchmarkFig12 measures normalized throughput: the reported metric is
// MS-src+ap / baseline at the quick grid's checkpoint count.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cc, err := bench.RunCommonCase(quickParams(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cc.Cells {
			if c.Scheme == "MS-src+ap" && c.Ckpts == 3 {
				b.ReportMetric(cc.NormalizedThroughput(c), "ms-src+ap/baseline-tput")
			}
		}
	}
}

// BenchmarkFig13 measures normalized latency on the same grid.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cc, err := bench.RunCommonCase(quickParams(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cc.Cells {
			if c.Scheme == "MS-src+ap" && c.Ckpts == 3 {
				b.ReportMetric(cc.NormalizedLatency(c), "ms-src+ap/baseline-lat")
			}
		}
	}
}

// BenchmarkFig14 measures checkpoint time per variant (TMI).
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig14(quickParams(), bench.TMIApp)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Variant {
			case "MS-src":
				b.ReportMetric(r.Total.Seconds()*1000, "ms-src-ckpt-ms")
			case "MS-src+ap":
				b.ReportMetric(r.Total.Seconds()*1000, "ms-src+ap-ckpt-ms")
			}
		}
	}
}

// BenchmarkFig15 measures peak instantaneous latency during a checkpoint.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.RunFig15(quickParams(), bench.TMIApp)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			var peak time.Duration
			for _, bk := range s.Buckets {
				if bk.MeanLat > peak {
					peak = bk.MeanLat
				}
			}
			if s.Variant == "MS-src" {
				b.ReportMetric(peak.Seconds()*1000, "sync-peak-ms")
			}
			if s.Variant == "MS-src+ap" {
				b.ReportMetric(peak.Seconds()*1000, "async-peak-ms")
			}
		}
	}
}

// BenchmarkFig16 measures worst-case recovery time.
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig16(quickParams(), bench.TMIApp)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant == "MS-src(+ap)" {
				b.ReportMetric(r.Total.Seconds()*1000, "ms-src-recovery-ms")
			}
			if r.Variant == "MS-src+ap+aa" {
				b.ReportMetric(r.Total.Seconds()*1000, "aa-recovery-ms")
			}
		}
	}
}

// BenchmarkAblationAsync isolates sync vs async checkpoint disruption.
func BenchmarkAblationAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAblationAsync(quickParams(), bench.TMIApp)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Value == "MS-src" {
				b.ReportMetric(r.Result, "sync-peak-ms")
			} else {
				b.ReportMetric(r.Result, "async-peak-ms")
			}
		}
	}
}

// BenchmarkAblationAware isolates checkpoint-timing state-size savings.
func BenchmarkAblationAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAblationAware(quickParams(), bench.TMIApp)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Value == "MS-src+ap" {
				b.ReportMetric(r.Result/1024, "random-timing-stateKB")
			}
			if r.Value == "Oracle" {
				b.ReportMetric(r.Result/1024, "oracle-stateKB")
			}
		}
	}
}

// BenchmarkAblationBufferSize sweeps the baseline preservation buffer.
func BenchmarkAblationBufferSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAblationBufferSize(quickParams(), bench.TMIApp)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Result/rows[0].Result, "200KB/10KB-tput-ratio")
	}
}

// BenchmarkAblationGroupCommit sweeps source-log flush thresholds.
func BenchmarkAblationGroupCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAblationGroupCommit(quickParams(), bench.TMIApp)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Result/rows[0].Result, "batched/strict-tput-ratio")
	}
}

// BenchmarkHotPath measures the raw tuple throughput of the HAU runtime:
// elastic sources through a map into a sink, no checkpoints, no injected
// per-tuple delay. One benchmark op = one tuple delivered at the sink, so
// ns/op, B/op and allocs/op are per-tuple costs of the transport itself.
// Baseline and current numbers are recorded in BENCH_hotpath.json.
func BenchmarkHotPath(b *testing.B) {
	cases := []struct {
		name string
		cfg  bench.HotPathConfig
	}{
		{"chain", bench.HotPathConfig{FanIn: 1, Payload: 64}},
		{"fanin2", bench.HotPathConfig{FanIn: 2, Payload: 64}},
		{"preserve", bench.HotPathConfig{FanIn: 1, Payload: 64, Preserve: true}},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := bc.cfg
			cfg.Tuples = b.N
			res, err := bench.RunHotPath(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TuplesPerSec(), "tuples/s")
		})
	}
}

// BenchmarkCheckpoint measures the checkpoint datapath: the on-loop
// freeze window as a function of the dirty fraction, the writer-side
// delta, and parallel restore. Each iteration is a full driven experiment
// (a real HAU through several checkpoints, or a checkpoint/kill/recover
// cycle); the full grid regenerates BENCH_checkpoint.json via cmd/msckpt.
func BenchmarkCheckpoint(b *testing.B) {
	freeze := func(dirtyFrac float64, delta bool) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell, err := bench.RunCheckpointCell(bench.CheckpointParams{
					StateBytes: 1 << 20, DirtyFrac: dirtyFrac, Epochs: 4, Delta: delta, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cell.FreezeUs, "freeze-us")
				b.ReportMetric(cell.DirtyKB, "dirtyKB")
				b.ReportMetric(cell.DiskUs, "disk-us")
			}
		}
	}
	b.Run("freeze/1MB-dirty1", freeze(0.01, false))
	b.Run("freeze/1MB-dirty100", freeze(1, false))
	b.Run("delta/1MB-dirty10", freeze(0.1, true))
	b.Run("restore/width4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cells, err := bench.RunRestoreWidth(bench.RestoreParams{
				Width: 4, StateBytes: 1 << 20, Workers: []int{1, 4}, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(cells[0].DeserializeUs, "w1-deser-us")
			b.ReportMetric(cells[1].DeserializeUs, "w4-deser-us")
		}
	})
}

// BenchmarkBaselineRecovery measures single-HAU baseline recovery.
func BenchmarkBaselineRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cell, err := bench.RunCell(quickParams(), bench.TMIApp, spe.Baseline, 3)
		if err != nil {
			b.Fatal(err)
		}
		_ = cell
	}
}
