package bench

// Alignment-ablation harness: aligned (MS-src+ap) vs unaligned
// (MS-src+ap+unaligned) checkpoint completion on a fan-in consumer whose
// input edges carry a backlog in front of the tokens. Under the aligned
// scheme the tokens are ordinary FIFO items, so completion waits for the
// whole backlog to be processed (and the first-tokened ports stall while
// it is); under the unaligned scheme the HAU snapshots at the arm instant
// and its forwarders overtake the backlog, logging what they pass, so
// completion is decoupled from consumer progress. Results regenerate
// BENCH_unaligned.json via cmd/msalign.

import (
	"fmt"
	"time"

	"context"

	"meteorshower/internal/operator"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// AlignParams configures one cell of the alignment-ablation grid.
type AlignParams struct {
	Scheme       spe.Scheme
	FanIn        int  // input edges on the consumer (>= 1)
	Backpressure bool // per-tuple processing delay on the consumer
	EdgeBatch    int  // edge batch size (0 = runtime default)
	Backlog      int  // tuples queued in front of each token (0 = 64)
	Payload      int  // payload bytes per tuple (0 = 64)
	Epochs       int  // measured checkpoint epochs (0 = 5)
	Seed         int64
}

// AlignCell is one measured grid cell; durations are per-epoch means in
// microseconds.
type AlignCell struct {
	Scheme       string  `json:"scheme"`
	FanIn        int     `json:"fan_in"`
	Backpressure bool    `json:"backpressure"`
	EdgeBatch    int     `json:"edge_batch"`
	Epochs       int     `json:"epochs"`
	CompleteUs   float64 `json:"complete_us"`        // trigger -> checkpoint done, wall clock
	TokenWaitUs  float64 `json:"token_wait_us"`      // arm -> last token observed by the HAU
	StallMaxUs   float64 `json:"align_stall_max_us"` // longest single-port pause (aligned only)
	StallSumUs   float64 `json:"align_stall_sum_us"` // summed port pauses (aligned only)
	SnapshotKB   float64 `json:"snapshot_kb"`        // operator state in the blob
	ChannelKB    float64 `json:"channel_kb"`         // logged in-flight tuples (unaligned only)
}

const alignBenchTimeout = 60 * time.Second

// RunAlignCell drives a FanIn-input consumer HAU through Epochs checkpoint
// epochs. Before each trigger, Backlog tuples are queued on every input
// edge and the epoch's tokens are injected BEHIND them, so the token
// position models a checkpoint racing real in-flight traffic. The cell
// averages the wall-clock from trigger to checkpoint completion plus the
// breakdown the HAU reports; between epochs the driver waits for the sink
// to absorb everything, so each epoch starts from the same queue state.
func RunAlignCell(p AlignParams) (AlignCell, error) {
	if p.FanIn <= 0 {
		p.FanIn = 1
	}
	if p.Backlog <= 0 {
		p.Backlog = 64
	}
	if p.Payload <= 0 {
		p.Payload = 64
	}
	if p.Epochs <= 0 {
		p.Epochs = 5
	}
	batch := p.EdgeBatch
	if batch <= 0 {
		batch = spe.DefaultBatchSize
	}
	var delay time.Duration
	if p.Backpressure {
		delay = 200 * time.Microsecond
	}

	// Each single-tuple Inject occupies one edge slot regardless of batch
	// size, so capacity is sized in slots: the whole backlog plus the token
	// must queue without blocking the driver.
	buf := (p.Backlog + 8) * batch
	in := make([]*spe.Edge, p.FanIn)
	for i := range in {
		in[i] = spe.NewEdgeBatch(alignSrc(i), "M", buf, batch)
	}
	out := spe.NewEdge("M", "K", (p.Backlog+8)*p.FanIn*32)

	fast := storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond}
	cat := storage.NewCatalog(storage.NewStore(fast), []string{"M", "K"})
	lis := &ckptCapture{ch: make(chan spe.CheckpointBreakdown, 4)}
	m, err := spe.New(spe.Config{
		ID:            "M",
		Scheme:        p.Scheme,
		Ops:           []operator.Operator{operator.NewCounter("c")},
		In:            in,
		Out:           []*spe.Edge{out},
		Catalog:       cat,
		Listener:      lis,
		TickEvery:     time.Millisecond,
		PerTupleDelay: delay,
	})
	if err != nil {
		return AlignCell{}, err
	}
	sink := operator.NewSink("K", nil)
	k, err := spe.New(spe.Config{
		ID:        "K",
		Scheme:    p.Scheme,
		Ops:       []operator.Operator{sink},
		In:        []*spe.Edge{out},
		Catalog:   cat,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		return AlignCell{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	k.Start(ctx)
	defer func() { cancel(); <-m.Done(); <-k.Done() }()

	payload := make([]byte, p.Payload)
	cell := AlignCell{
		Scheme:       p.Scheme.String(),
		FanIn:        p.FanIn,
		Backpressure: p.Backpressure,
		EdgeBatch:    batch,
		Epochs:       p.Epochs,
	}
	seq := make([]uint64, p.FanIn)
	var id uint64
	for e := 1; e <= p.Epochs; e++ {
		for i := 0; i < p.FanIn; i++ {
			for t := 0; t < p.Backlog; t++ {
				seq[i]++
				id++
				tp := tuple.New(id, alignSrc(i), "k", payload)
				tp.Seq = seq[i]
				in[i].Inject(nil, tp)
			}
		}
		t0 := time.Now()
		m.Command(spe.Command{Kind: spe.CmdCheckpoint, Epoch: uint64(e)})
		for i := 0; i < p.FanIn; i++ {
			in[i].Inject(nil, tuple.NewToken(tuple.Token{Epoch: uint64(e), Kind: tuple.OneHop, From: alignSrc(i)}))
		}
		var b spe.CheckpointBreakdown
		select {
		case b = <-lis.ch:
		case <-time.After(alignBenchTimeout):
			return AlignCell{}, fmt.Errorf("bench: epoch %d never completed under %v (%v)", e, p.Scheme, m.Err())
		}
		cell.CompleteUs += float64(time.Since(t0).Microseconds())
		cell.TokenWaitUs += float64(b.TokenWait.Microseconds())
		cell.StallMaxUs += float64(b.AlignStallMax.Microseconds())
		cell.StallSumUs += float64(b.AlignStallSum.Microseconds())
		cell.SnapshotKB += float64(b.StateBytes) / 1024
		cell.ChannelKB += float64(b.ChannelBytes) / 1024

		// Quiesce: the unaligned scheme completes long before the consumer
		// has worked through the backlog, so wait for the sink to absorb the
		// epoch's traffic before queuing the next one.
		want := uint64(e) * uint64(p.Backlog*p.FanIn)
		deadline := time.Now().Add(alignBenchTimeout)
		for sink.Delivered() < want {
			if err := m.Err(); err != nil {
				return AlignCell{}, err
			}
			if err := k.Err(); err != nil {
				return AlignCell{}, err
			}
			if time.Now().After(deadline) {
				return AlignCell{}, fmt.Errorf("bench: sink stuck at %d/%d after epoch %d", sink.Delivered(), want, e)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	n := float64(p.Epochs)
	cell.CompleteUs /= n
	cell.TokenWaitUs /= n
	cell.StallMaxUs /= n
	cell.StallSumUs /= n
	cell.SnapshotKB /= n
	cell.ChannelKB /= n
	return cell, nil
}

func alignSrc(i int) string { return fmt.Sprintf("u%d", i) }
