module meteorshower

go 1.22
