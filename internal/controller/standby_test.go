package controller

import (
	"context"
	"testing"
	"time"

	"meteorshower/internal/spe"
	"meteorshower/internal/statesize"
	"meteorshower/internal/storage"
)

func TestExportImportState(t *testing.T) {
	c := New(Config{Scheme: spe.MSSrcAPAA, Catalog: storage.NewCatalog(fastStore(), nil)})
	c.TriggerCheckpoint()
	c.TriggerCheckpoint()
	c.SetProfile(statesize.Profile{Smax: 500, Smin: 100})
	st := c.ExportState()
	if st.Epoch != 2 || st.Profile.Smax != 500 {
		t.Fatalf("export = %+v", st)
	}

	c2 := New(Config{Scheme: spe.MSSrcAPAA, Catalog: storage.NewCatalog(fastStore(), nil)})
	c2.ImportState(st)
	if c2.Epoch() != 2 || c2.InstalledProfile().Smax != 500 {
		t.Fatal("import incomplete")
	}
	// Stale import must not roll the epoch back.
	c2.TriggerCheckpoint() // epoch 3
	c2.ImportState(st)
	if c2.Epoch() != 3 {
		t.Fatal("stale import rolled the epoch back")
	}
}

func TestStandbyPromotionContinuesEpochs(t *testing.T) {
	cat := storage.NewCatalog(fastStore(), nil)
	cfg := Config{Scheme: spe.MSSrcAP, Catalog: cat, Period: time.Hour}
	primary := New(cfg)
	primary.SetHAUs(map[string]*spe.HAU{"a": nil})
	primary.TriggerCheckpoint()
	primary.TriggerCheckpoint()
	primary.TriggerCheckpoint()

	standby := NewStandby(cfg)
	standby.Sync(primary)
	if standby.LastSynced().Epoch != 3 {
		t.Fatalf("synced epoch = %d", standby.LastSynced().Epoch)
	}

	// Primary dies; the standby takes over and continues numbering.
	promoted := standby.Promote()
	ep := promoted.TriggerCheckpoint()
	if ep != 4 {
		t.Fatalf("promoted controller issued epoch %d, want 4", ep)
	}
}

func TestStandbySyncEvery(t *testing.T) {
	cfg := Config{Scheme: spe.MSSrcAP, Catalog: storage.NewCatalog(fastStore(), nil)}
	primary := New(cfg)
	standby := NewStandby(cfg)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		standby.SyncEvery(primary, 5*time.Millisecond, stop)
		close(done)
	}()
	primary.TriggerCheckpoint()
	deadline := time.Now().Add(2 * time.Second)
	for standby.LastSynced().Epoch != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if standby.LastSynced().Epoch != 1 {
		t.Fatal("replication loop never synced")
	}
}

func TestStandbySyncKeepsNewest(t *testing.T) {
	cfg := Config{Scheme: spe.MSSrcAP, Catalog: storage.NewCatalog(fastStore(), nil)}
	fresh := New(cfg)
	fresh.TriggerCheckpoint()
	stale := New(cfg)

	standby := NewStandby(cfg)
	standby.Sync(fresh)
	standby.Sync(stale) // a lagging replica source must not regress state
	if standby.LastSynced().Epoch != 1 {
		t.Fatalf("stale sync regressed epoch to %d", standby.LastSynced().Epoch)
	}
}

func TestPromotedControllerRuns(t *testing.T) {
	cfg := Config{Scheme: spe.MSSrcAP, Catalog: storage.NewCatalog(fastStore(), nil), Period: 20 * time.Millisecond}
	primary := New(cfg)
	standby := NewStandby(cfg)
	standby.Sync(primary)
	promoted := standby.Promote()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go promoted.Run(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for promoted.Epoch() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if promoted.Epoch() == 0 {
		t.Fatal("promoted controller did not schedule checkpoints")
	}
	cancel()
	<-promoted.Done()
}
