package tuple

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sameTuple(a, b *Tuple) bool {
	if a.ID != b.ID || a.Seq != b.Seq || a.Ts != b.Ts || a.Src != b.Src || a.Key != b.Key {
		return false
	}
	if !bytes.Equal(a.Data, b.Data) {
		return false
	}
	if (a.Tok == nil) != (b.Tok == nil) {
		return false
	}
	if a.Tok != nil && *a.Tok != *b.Tok {
		return false
	}
	return true
}

func TestMarshalRoundTrip(t *testing.T) {
	orig := &Tuple{ID: 42, Src: "S1", Key: "group-7", Ts: 123456789, Data: []byte("hello world")}
	got, n, err := Unmarshal(orig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if n != orig.MarshalledSize() {
		t.Fatalf("consumed %d, want %d", n, orig.MarshalledSize())
	}
	if !sameTuple(orig, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", orig, got)
	}
}

func TestMarshalRoundTripToken(t *testing.T) {
	orig := &Tuple{ID: 1, Ts: 5, Tok: &Token{Epoch: 9, Kind: OneHop, From: "H3"}}
	got, _, err := Unmarshal(orig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuple(orig, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", orig, got)
	}
}

func TestMarshalRoundTripEmpty(t *testing.T) {
	orig := &Tuple{}
	got, _, err := Unmarshal(orig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuple(orig, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", orig, got)
	}
}

func TestUnmarshalBadMagic(t *testing.T) {
	if _, _, err := Unmarshal([]byte{0, 0, 0, 0, 0}); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	full := (&Tuple{ID: 1, Src: "source", Key: "key", Data: []byte("0123456789")}).Marshal()
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Unmarshal(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(full))
		}
	}
}

func TestMarshalledSizeExact(t *testing.T) {
	tp := &Tuple{ID: 3, Src: "abc", Key: "de", Data: []byte{1, 2, 3, 4},
		Tok: &Token{Epoch: 1, From: "xy"}}
	if got := len(tp.Marshal()); got != tp.MarshalledSize() {
		t.Fatalf("MarshalledSize=%d, actual=%d", tp.MarshalledSize(), got)
	}
}

func TestMarshalManyRoundTrip(t *testing.T) {
	in := []*Tuple{
		New(1, "S0", "a", []byte("x")),
		NewToken(Token{Epoch: 2, Kind: Cascading, From: "S0"}),
		New(2, "S0", "b", nil),
	}
	out, err := UnmarshalMany(MarshalMany(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if !sameTuple(in[i], out[i]) {
			t.Fatalf("tuple %d mismatch", i)
		}
	}
}

func TestUnmarshalManyEmpty(t *testing.T) {
	out, err := UnmarshalMany(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: out=%v err=%v", out, err)
	}
}

func TestUnmarshalManyCorrupt(t *testing.T) {
	buf := MarshalMany([]*Tuple{New(1, "S", "k", []byte("ab"))})
	buf = append(buf, 0xFF) // trailing garbage
	if _, err := UnmarshalMany(buf); err == nil {
		t.Fatal("corrupt trailer not detected")
	}
}

// quickTuple builds an arbitrary tuple from the quick fuzzer's values.
func quickTuple(r *rand.Rand) *Tuple {
	t := &Tuple{
		ID:  r.Uint64(),
		Seq: r.Uint64(),
		Ts:  r.Int63(),
		Src: randString(r, 8),
		Key: randString(r, 16),
	}
	if n := r.Intn(64); n > 0 {
		t.Data = make([]byte, n)
		r.Read(t.Data)
	}
	if r.Intn(2) == 0 {
		t.Tok = &Token{Epoch: r.Uint64(), Kind: TokenKind(r.Intn(2)), From: randString(r, 6)}
	}
	return t
}

func randString(r *rand.Rand, max int) string {
	n := r.Intn(max + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := quickTuple(r)
		got, n, err := Unmarshal(orig.Marshal())
		return err == nil && n == orig.MarshalledSize() && sameTuple(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqualButDistinct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := quickTuple(r)
		c := orig.Clone()
		if !sameTuple(orig, c) {
			return false
		}
		// Mutating the clone must not touch the original.
		if len(c.Data) > 0 {
			c.Data[0]++
			if reflect.DeepEqual(orig.Data, c.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	tp := New(1, "S0", "key", make([]byte, 256))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tp.Marshal()
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	buf := New(1, "S0", "key", make([]byte, 256)).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
