package spe

import (
	"encoding/binary"
	"testing"

	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// appendBlobSection rewrites a v2 blob's section table with one extra
// section appended — the shape an unaligned checkpoint's channel-state
// section arrives in.
func appendBlobSection(blob, sec []byte) []byte {
	nSec := binary.LittleEndian.Uint32(blob[4:])
	out := append([]byte(nil), blob[:4]...)
	out = binary.LittleEndian.AppendUint32(out, nSec+1)
	out = append(out, blob[8:8+4*nSec]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(sec)))
	out = append(out, blob[8+4*nSec:]...)
	return append(out, sec...)
}

// FuzzRestoreFrom throws arbitrary bytes at the snapshot decoder. Both
// layout versions share the entry point, so the corpus seeds one valid blob
// of each plus a few near-misses. The decoder may reject anything, but it
// must never panic, and anything it accepts must re-encode (as v2) and
// restore again with the same runtime counters.
func FuzzRestoreFrom(f *testing.F) {
	src := mkRestorable(f)
	src.outSeq[0] = 5
	src.lastInSeq[0] = 3
	src.lastSrcID[0]["S"] = 9
	src.retained = []retainedTuple{{port: 0, t: tuple.New(1, "S", "k", []byte("x"))}}
	v2 := src.SnapshotNow()
	if v2 == nil {
		f.Fatal(src.Err())
	}

	// A v1 blob: runtime section, op count, length-prefixed op snapshot.
	v1 := src.appendRuntimeState(nil)
	opSnap, err := src.cfg.Ops[0].Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	v1 = binary.LittleEndian.AppendUint32(v1, 1)
	v1 = binary.LittleEndian.AppendUint32(v1, uint32(len(opSnap)))
	v1 = append(v1, opSnap...)

	f.Add(v2)
	f.Add(v1)
	f.Add(v2[:len(v2)/2])
	f.Add([]byte{})
	// Valid magic, absurd section count.
	bad := append([]byte(nil), v2[:8]...)
	binary.LittleEndian.PutUint32(bad[4:], 1<<30)
	f.Add(bad)
	// Unaligned-checkpoint layout: a non-empty channel-state section after
	// the operator sections, labelled with the real upstream.
	chTup := tuple.New(7, "S", "k", []byte("ch"))
	chTup.Seq = 4
	chSec := storage.EncodeChannelSection([]storage.ChannelStream{
		{Label: "a", Count: 1, Payload: tuple.MarshalMany([]*tuple.Tuple{chTup})},
	})
	f.Add(appendBlobSection(v2, chSec))
	// Extra section without the channel magic: must be rejected, not read
	// as an operator's.
	f.Add(appendBlobSection(v2, []byte("not a channel section")))
	// Channel section with a label no input port matches.
	f.Add(appendBlobSection(v2, storage.EncodeChannelSection([]storage.ChannelStream{
		{Label: "nobody", Count: 0, Payload: nil},
	})))
	// Channel magic but garbage behind it.
	f.Add(appendBlobSection(v2, binary.LittleEndian.AppendUint32(nil, storage.ChannelSectionMagic)))

	f.Fuzz(func(t *testing.T, data []byte) {
		h := mkRestorable(t)
		if err := h.RestoreFrom(data); err != nil {
			return
		}
		re := h.SnapshotNow()
		if re == nil {
			t.Fatalf("accepted blob failed to re-snapshot: %v", h.Err())
		}
		h2 := mkRestorable(t)
		if err := h2.RestoreFrom(re); err != nil {
			t.Fatalf("re-encoded blob rejected: %v", err)
		}
		if h2.outSeq[0] != h.outSeq[0] || h2.lastInSeq[0] != h.lastInSeq[0] ||
			h2.localEpoch != h.localEpoch || len(h2.pendingOut) != len(h.pendingOut) {
			t.Fatal("runtime state did not survive re-encoding")
		}
	})
}
