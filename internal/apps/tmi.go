package apps

import (
	"time"

	"meteorshower/internal/cluster"
	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
)

// TMIConfig sizes the Transportation Mode Inference application (paper
// §II-B2, Fig. 2): S sources collect phone positions from base stations,
// P pairs compute speeds, M GoogleMap operators annotate reference speeds,
// G groups partition phones, A k-means operators cluster each window, K is
// the sink.
type TMIConfig struct {
	Sources int // S operators (base-station aggregators)
	Pairs   int // P and M operators (1:1)
	Groups  int // G and A operators (1:1)

	RatePerMS float64 // tuples per simulated ms per source
	// RateFn, when set, overrides RatePerMS with a time-varying rate
	// (operator.RateSource.RateFn) — diurnal curves, flash crowds.
	RateFn          func(nowNS int64) float64
	MaxRate         bool // elastic sources: replay as fast as absorbed
	Burst           int  // tuples offered per tick when MaxRate
	RecordPad       int  // CDR bytes beyond the raw position fields
	PhonesPerSource int
	Window          time.Duration // the paper's N-minute k-means window, scaled
	K               int           // clusters (transportation modes)
	Seed            int64

	Collector     *metrics.Collector
	SinkRef       *SinkRef
	TrackIdentity bool

	// SourceLimit bounds every source to exactly the ids [0, SourceLimit)
	// (0 = unbounded). A bounded stream quiesces, giving the chaos harness
	// and the replay-equivalence tests a terminal state to compare.
	SourceLimit uint64
	// Audit swaps the wall-clock-windowed k-means analyzers (whose output
	// depends on tick timing) for passthroughs, so the sink output is a
	// pure function of the source streams. Replay-equivalence oracles
	// require this; throughput/latency measurements should leave it off.
	Audit bool
}

// TMIPaper returns the 55-operator configuration of the evaluation
// (10 S + 12 P + 12 M + 10 G + 10 A + 1 K), with the 10-minute window
// scaled to simulation time.
func TMIPaper(col *metrics.Collector, window time.Duration) TMIConfig {
	return TMIConfig{
		Sources: 10, Pairs: 12, Groups: 10,
		RatePerMS: 2.0, MaxRate: true, Burst: 8, RecordPad: 140, PhonesPerSource: 40,
		Window: window, K: 4, Seed: 1,
		Collector: col,
	}
}

// TMISmall returns a 7-operator configuration for tests.
func TMISmall(col *metrics.Collector) TMIConfig {
	return TMIConfig{
		Sources: 2, Pairs: 2, Groups: 2,
		RatePerMS: 1, PhonesPerSource: 8,
		Window: 50 * time.Millisecond, K: 2, Seed: 1,
		Collector: col,
	}
}

// TMI builds the application spec.
func TMI(cfg TMIConfig) cluster.AppSpec {
	g := graph.New()
	var sources, pairs, maps, groups, analyzers []string
	for i := 0; i < cfg.Sources; i++ {
		id := "S" + itoa(i)
		g.MustAddNode(id)
		sources = append(sources, id)
	}
	for i := 0; i < cfg.Pairs; i++ {
		p := "P" + itoa(i)
		m := "M" + itoa(i)
		g.MustAddNode(p)
		g.MustAddNode(m)
		pairs = append(pairs, p)
		maps = append(maps, m)
	}
	for i := 0; i < cfg.Groups; i++ {
		gr := "G" + itoa(i)
		a := "A" + itoa(i)
		g.MustAddNode(gr)
		g.MustAddNode(a)
		groups = append(groups, gr)
		analyzers = append(analyzers, a)
	}
	g.MustAddNode("K")
	// Base stations feed pairs round-robin; extra pairs reuse sources.
	for i, p := range pairs {
		g.MustAddEdge(sources[i%len(sources)], p)
	}
	for i := range pairs {
		g.MustAddEdge(pairs[i], maps[i])
	}
	// "Each GoogleMap operator connects to all Group operators."
	for _, m := range maps {
		for _, gr := range groups {
			g.MustAddEdge(m, gr)
		}
	}
	for i := range groups {
		g.MustAddEdge(groups[i], analyzers[i])
	}
	for _, a := range analyzers {
		g.MustAddEdge(a, "K")
	}

	srcIdx := make(map[string]int, len(sources))
	for i, id := range sources {
		srcIdx[id] = i
	}
	return cluster.AppSpec{
		Name:  "TMI",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			switch id[0] {
			case 'S':
				i := srcIdx[id]
				src := operator.NewRateSource(
					id, cfg.RatePerMS, cfg.Seed+int64(i),
					PositionPayload(i, cfg.PhonesPerSource, cfg.RecordPad),
				)
				src.MaxRate = cfg.MaxRate
				src.RateFn = cfg.RateFn
				if cfg.Burst > 0 {
					src.CatchUpCap = cfg.Burst
				}
				src.Limit = cfg.SourceLimit
				return []operator.Operator{src}
			case 'P':
				return []operator.Operator{NewPairOp(id)}
			case 'M':
				return []operator.Operator{NewRefSpeedOp(id, cfg.Groups)}
			case 'G':
				return []operator.Operator{operator.NewPassthrough(id, 1)}
			case 'A':
				if cfg.Audit {
					return []operator.Operator{operator.NewPassthrough(id, 1)}
				}
				return []operator.Operator{NewKMeansOp(id, cfg.K, int64(cfg.Window), cfg.Seed)}
			default:
				return []operator.Operator{newSink(id, cfg.Collector, cfg.SinkRef, cfg.TrackIdentity)}
			}
		},
	}
}
