// Package partition implements keyed-state sharding for operator
// re-partitioning: a fixed ring of virtual slots over tuple keys, a
// slots->replica assignment table with minimal-move rescaling, a concurrent
// KeyRouter installed on upstream output ports, and a slot-table snapshot
// codec that lets the cluster carve one HAU's checkpoint into per-replica
// blobs (split) or concatenate replica blobs back together (merge) without
// re-encoding operator state.
//
// The design follows the re-partitioning literature (consistent virtual
// sharding as in Flink/Dataflow key groups): the slot count is fixed for
// the life of the application, keys hash onto slots with FNV-1a, and only
// the slot->replica table changes during a rescale. A key's slot never
// changes, so "which replica owns key k" is always derivable from the
// table alone, and state moves in whole slots.
package partition

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultSlots is the virtual-slot ring size. 256 slots bound table size
// (one byte-sized owner per slot) while still spreading hot key ranges over
// many more shards than any realistic replica count.
const DefaultSlots = 256

// SlotOf maps a tuple key onto the slot ring with FNV-1a — the same hash
// the operator library's Dispatch uses, so routing is deterministic across
// processes and replays.
func SlotOf(key string, slots int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(slots))
}

// ReplicaID names the tag-th replica incarnation of a base HAU. Tags are
// never reused within one split generation, so incarnation ids stay unique
// per epoch.
func ReplicaID(base string, tag int) string {
	return base + "~" + strconv.Itoa(tag)
}

// BaseID strips the replica tag, returning the graph-level HAU id.
func BaseID(id string) string {
	if i := strings.IndexByte(id, '~'); i >= 0 {
		return id[:i]
	}
	return id
}

// IsReplica reports whether id names a replica incarnation rather than a
// graph-level HAU.
func IsReplica(id string) bool { return strings.IndexByte(id, '~') >= 0 }

// Assignment is the slots->replica table: Owner(slot) is the index of the
// replica that owns the slot. The zero replica count is invalid; use
// NewAssignment.
type Assignment struct {
	owner    []int
	replicas int
}

// NewAssignment returns a table with every slot owned by replica 0.
func NewAssignment(slots int) *Assignment {
	if slots <= 0 {
		slots = DefaultSlots
	}
	return &Assignment{owner: make([]int, slots), replicas: 1}
}

// Slots returns the ring size.
func (a *Assignment) Slots() int { return len(a.owner) }

// Replicas returns the current replica count.
func (a *Assignment) Replicas() int { return a.replicas }

// Owner returns the replica index owning slot.
func (a *Assignment) Owner(slot int) int { return a.owner[slot] }

// SlotsOf returns the slots owned by replica r, ascending.
func (a *Assignment) SlotsOf(r int) []int {
	var out []int
	for s, o := range a.owner {
		if o == r {
			out = append(out, s)
		}
	}
	return out
}

// Clone returns an independent copy.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{owner: append([]int(nil), a.owner...), replicas: a.replicas}
}

// targets returns the balanced per-replica slot quota for n replicas: the
// first slots%n replicas take one extra slot.
func targets(slots, n int) []int {
	t := make([]int, n)
	for i := range t {
		t[i] = slots / n
		if i < slots%n {
			t[i]++
		}
	}
	return t
}

// Rescale rebalances the table to n replicas with minimal movement: a slot
// moves only when its current owner is over the new balanced quota (grow)
// or no longer exists (shrink). Unmoved slots keep their owner — the
// stability property the router tests assert. Returns the moved slots.
func (a *Assignment) Rescale(n int) []int {
	if n <= 0 {
		n = 1
	}
	slots := len(a.owner)
	tgt := targets(slots, n)
	count := make([]int, n)
	var moved []int
	// First pass: credit every slot whose owner survives and is under quota.
	for s, o := range a.owner {
		if o < n && count[o] < tgt[o] {
			count[o]++
		} else {
			moved = append(moved, s)
		}
	}
	// Second pass: hand the moved slots to under-quota replicas in order.
	r := 0
	for _, s := range moved {
		for count[r] >= tgt[r] {
			r++
		}
		a.owner[s] = r
		count[r]++
	}
	a.replicas = n
	return moved
}

// loadShards spreads the per-slot load counters across independent banks so
// concurrent upstream forwarders routing the same hot slot don't serialize
// on one atomic word. Must be a power of two (shard pick masks a cheap
// per-goroutine random draw).
const loadShards = 8

// Router is the KeyRouter installed on upstream output ports: it resolves a
// tuple key to the replica index that owns its slot. Reads are lock-cheap
// (RWMutex read path); Update swaps the table during a rescale. Every Route
// also bumps a sharded per-slot counter, so the observed tuple distribution
// is available as Weights for skew-aware reassignment.
type Router struct {
	mu    sync.RWMutex
	slots int
	owner []int32
	loads []int64 // loadShards contiguous banks of per-slot counters
}

// NewRouter returns a router over the assignment's current table.
func NewRouter(a *Assignment) *Router {
	r := &Router{}
	r.Update(a)
	return r
}

// Slots returns the ring size.
func (r *Router) Slots() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.slots
}

// Route returns the replica index owning key's slot and counts the tuple
// against that slot's load.
func (r *Router) Route(key string) int {
	r.mu.RLock()
	slot := SlotOf(key, r.slots)
	idx := int(r.owner[slot])
	atomic.AddInt64(&r.loads[int(rand.Uint64()&(loadShards-1))*r.slots+slot], 1)
	r.mu.RUnlock()
	return idx
}

// Loads returns the tuples routed per slot since this router (or its
// current ring size) was installed. The snapshot is point-in-time:
// concurrent routing keeps counting while it runs.
func (r *Router) Loads() Weights {
	r.mu.RLock()
	defer r.mu.RUnlock()
	w := make(Weights, r.slots)
	for sh := 0; sh < loadShards; sh++ {
		base := sh * r.slots
		for s := 0; s < r.slots; s++ {
			w[s] += atomic.LoadInt64(&r.loads[base+s])
		}
	}
	return w
}

// RouteSlot returns the replica index owning slot.
func (r *Router) RouteSlot(slot int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return int(r.owner[slot])
}

// Update installs the assignment's current table. Load counters survive an
// update at the same ring size (the slots are the same slots); a ring-size
// change resets them.
func (r *Router) Update(a *Assignment) {
	owner := make([]int32, a.Slots())
	for s := range owner {
		owner[s] = int32(a.Owner(s))
	}
	r.mu.Lock()
	if r.slots != a.Slots() || r.loads == nil {
		r.loads = make([]int64, loadShards*a.Slots())
	}
	r.slots = a.Slots()
	r.owner = owner
	r.mu.Unlock()
}

// --- slot-table snapshot codec ----------------------------------------------
//
// Operators implementing operator.PartitionedState encode Snapshot() in this
// format (little endian):
//
//	u32 magic 0x4d535054 ("MSPT")
//	u32 nSlots (0 allowed: residue-only state)
//	u32 residueLen; residue bytes
//	nSlots x u32 slotLen
//	slot payloads, concatenated
//
// The residue is whatever per-operator state is not keyed (identity
// counters, models); a split copies it to every replica and a merge takes
// the first replica's. Slot payloads are self-contained per-slot state, so
// Carve and Merge are pure length-table surgery.

const tableMagic = 0x4d535054

var errShortTable = errors.New("partition: short slot table")

// AppendTable encodes a slot table onto buf.
func AppendTable(buf []byte, residue []byte, slots [][]byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, tableMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(slots)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(residue)))
	buf = append(buf, residue...)
	for _, s := range slots {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	}
	for _, s := range slots {
		buf = append(buf, s...)
	}
	return buf
}

// IsTable reports whether buf starts with the slot-table magic.
func IsTable(buf []byte) bool {
	return len(buf) >= 4 && binary.LittleEndian.Uint32(buf) == tableMagic
}

// ParseTable decodes a slot table. The returned slices alias buf.
func ParseTable(buf []byte) (residue []byte, slots [][]byte, err error) {
	if len(buf) < 12 {
		return nil, nil, errShortTable
	}
	if binary.LittleEndian.Uint32(buf) != tableMagic {
		return nil, nil, errors.New("partition: not a slot table")
	}
	nSlots := int(binary.LittleEndian.Uint32(buf[4:]))
	resLen := int(binary.LittleEndian.Uint32(buf[8:]))
	buf = buf[12:]
	if len(buf) < resLen {
		return nil, nil, errShortTable
	}
	residue = buf[:resLen]
	buf = buf[resLen:]
	if len(buf) < 4*nSlots {
		return nil, nil, errShortTable
	}
	lens := make([]int, nSlots)
	total := 0
	for i := range lens {
		lens[i] = int(binary.LittleEndian.Uint32(buf[4*i:]))
		total += lens[i]
	}
	buf = buf[4*nSlots:]
	if len(buf) != total {
		return nil, nil, fmt.Errorf("%w: table wants %d payload bytes, have %d", errShortTable, total, len(buf))
	}
	slots = make([][]byte, nSlots)
	off := 0
	for i, n := range lens {
		slots[i] = buf[off : off+n]
		off += n
	}
	return residue, slots, nil
}

// Carve returns a new slot table keeping only the slots keep reports true
// for; dropped slots become empty. The residue is always kept. This is how
// a split carves one replica's share out of the drained base snapshot.
func Carve(buf []byte, keep func(slot int) bool) ([]byte, error) {
	residue, slots, err := ParseTable(buf)
	if err != nil {
		return nil, err
	}
	kept := make([][]byte, len(slots))
	for s, payload := range slots {
		if keep(s) {
			kept[s] = payload
		}
	}
	return AppendTable(nil, residue, kept), nil
}

// Merge concatenates the slot tables of all replicas back into one: slot s
// takes the unique non-empty payload across tables, and the residue comes
// from the first table. Two tables claiming the same slot is a protocol
// violation (the assignment is disjoint) and errors out.
func Merge(tables [][]byte) ([]byte, error) {
	if len(tables) == 0 {
		return nil, errors.New("partition: merge of zero tables")
	}
	var residue []byte
	var slots [][]byte
	for i, t := range tables {
		res, sl, err := ParseTable(t)
		if err != nil {
			return nil, fmt.Errorf("partition: table %d: %w", i, err)
		}
		if i == 0 {
			residue = res
			slots = make([][]byte, len(sl))
		} else if len(sl) != len(slots) {
			return nil, fmt.Errorf("partition: table %d has %d slots, want %d", i, len(sl), len(slots))
		}
		for s, payload := range sl {
			if len(payload) == 0 {
				continue
			}
			if len(slots[s]) != 0 {
				return nil, fmt.Errorf("partition: slot %d owned by two replicas", s)
			}
			slots[s] = payload
		}
	}
	return AppendTable(nil, residue, slots), nil
}
