// Command mschaos runs the seed-replayable chaos harness: correlated
// burst kills injected at adversarial instants against a live simulated
// cluster, with whole-application recovery checked by the exactly-once
// sequence oracle and the reference-replay state oracle.
//
//	mschaos -seed 42                      # one run, chain topology
//	mschaos -topology all -seed 42        # every topology, same seed
//	mschaos -seed 42 -rounds 5 -nodes 6   # a longer, wider schedule
//	mschaos -seed 42 -placement rackspread -migrate
//	                                      # rack-spread placement + live-migration chaos
//	mschaos -seed 42 -placement rackspread -rescale
//	                                      # re-partition chaos: live splits/merges + mid-rescale kills
//	mschaos -seed 42 -placement rackspread -rebalance
//	                                      # hot-slot rebalance chaos: weighted slot moves + mid-rebalance kills
//	mschaos -seed 42 -elastic             # elasticity chaos: grow/drain cycles + mid-scale-in kills
//	mschaos -seed 42 -ha                  # hybrid fault tolerance: active standby on the victim + failover instants
//
// A failing run exits non-zero and prints the exact command that replays
// its schedule.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"meteorshower/internal/chaos"
	"meteorshower/internal/failure"
)

func main() {
	var (
		topology = flag.String("topology", "chain", `topology: "chain", "fanin", "fanout" or "all"`)
		scheme   = flag.String("scheme", "ms-src+ap", "checkpoint scheme: ms-src | ms-src+ap | ms-src+ap+aa | ms-src+ap+unaligned")
		seed     = flag.Int64("seed", 1, "schedule seed; a failing seed replays the identical schedule")
		rounds   = flag.Int("rounds", 3, "kill/recover rounds per run")
		nodes    = flag.Int("nodes", 4, "worker nodes")
		limit    = flag.Uint64("limit", 60, "tuple ids emitted per source")
		abe      = flag.Bool("abe", false, "sample bursts from the Abe cluster profile instead of Google's DC")
		verbose  = flag.Bool("v", false, "log per-round progress")

		place     = flag.String("placement", "", `placement policy: "roundrobin", "rackspread" or "loadaware" ("" = cluster default)`)
		npr       = flag.Int("nodes-per-rack", 0, "failure-domain geometry (0 = one rack)")
		migrate   = flag.Bool("migrate", false, "enable live-migration chaos, including the mid-migration kill instant")
		rescale   = flag.Bool("rescale", false, "enable re-partition chaos: clean splits/merges plus the mid-rescale kill instant")
		rebalance = flag.Bool("rebalance", false, "enable hot-slot rebalance chaos: clean weighted slot moves plus the mid-rebalance kill instant")
		elastic   = flag.Bool("elastic", false, "enable fleet-elasticity chaos: clean grow/drain cycles plus the mid-scale-in and scale-in-destination kill instants")
		ha        = flag.Bool("ha", false, "enable hybrid fault-tolerance chaos: an active standby on each topology's HA victim, hybrid promote-or-rollback recovery, plus the primary-kill and standby-mid-promotion instants")
	)
	flag.Parse()

	sch, err := chaos.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var tops []chaos.Topology
	if *topology == "all" {
		tops = chaos.Topologies
	} else {
		tops = []chaos.Topology{chaos.Topology(*topology)}
	}
	profile := failure.GoogleDC()
	if *abe {
		profile = failure.AbeCluster()
	}

	failed := false
	for _, top := range tops {
		cfg := chaos.Config{
			Topology:     top,
			Scheme:       sch,
			Seed:         *seed,
			Rounds:       *rounds,
			Nodes:        *nodes,
			SourceLimit:  *limit,
			Profile:      profile,
			Placement:    *place,
			NodesPerRack: *npr,
			Migrations:   *migrate,
			Rescales:     *rescale,
			Rebalances:   *rebalance,
			Elastic:      *elastic,
			HA:           *ha,
		}
		if *verbose {
			cfg.Logf = func(format string, args ...any) {
				fmt.Printf("[%s] "+format+"\n", append([]any{top}, args...)...)
			}
		}
		res, err := chaos.Run(context.Background(), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mschaos: %v\n", err)
			failed = true
			continue
		}
		fmt.Println(res)
		if err := res.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			failed = true
			continue
		}
		for _, rec := range res.Recoveries {
			fmt.Printf("  recovery epoch=%d haus=%d reload=%s diskio=%s deserialize=%s reconnect=%s total=%s\n",
				rec.Epoch, rec.HAUs, rec.Reload, rec.DiskIO, rec.Deserialize, rec.Reconnect, rec.Total)
		}
		for _, rs := range res.RescaleList {
			fmt.Printf("  rescale %s %d->%d bytes=%d drain=%s reshard=%s restore=%s downtime=%s\n",
				rs.HAU, rs.From, rs.To, rs.Bytes, rs.Drain, rs.Reshard, rs.Restore, rs.Downtime)
		}
	}
	if failed {
		os.Exit(1)
	}
}
