package cluster

import (
	"context"
	"testing"
	"time"

	"meteorshower/internal/metrics"
	"meteorshower/internal/placement"
	"meteorshower/internal/spe"
)

func TestMigrateHAURejectsBaseline(t *testing.T) {
	cl, _, _ := newTestCluster(t, spe.Baseline, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	if _, err := cl.MigrateHAU(ctx, "M", 1); err == nil {
		t.Fatal("baseline migration accepted")
	}
}

func TestMigrateHAUValidation(t *testing.T) {
	cl, _, _ := newTestCluster(t, spe.MSSrcAP, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := cl.MigrateHAU(ctx, "M", 1); err == nil {
		t.Fatal("migration before Start accepted")
	}
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	if _, err := cl.MigrateHAU(ctx, "nope", 1); err == nil {
		t.Fatal("unknown HAU accepted")
	}
	if _, err := cl.MigrateHAU(ctx, "M", 99); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := cl.MigrateHAU(ctx, "M", cl.NodeOf("M")); err == nil {
		t.Fatal("same-node migration accepted")
	}
	dead := (cl.NodeOf("M") + 1) % 3
	cl.KillNode(dead)
	if _, err := cl.MigrateHAU(ctx, "M", dead); err == nil {
		t.Fatal("dead destination accepted")
	}
}

// migrateStreaming migrates id while the application streams and verifies
// the sink saw exactly-once delivery across the move.
func migrateStreaming(t *testing.T, scheme spe.Scheme, id string) {
	t.Helper()
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:           testApp(col, reg),
		Scheme:        scheme,
		Nodes:         4,
		NodesPerRack:  2,
		Placement:     placement.RackSpread{},
		LocalDiskSpec: local,
		SharedSpec:    shared,
		TickEvery:     time.Millisecond,
		SourceFlush:   256,
		Seed:          1,
		Metrics:       col,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 50
	})
	from := cl.NodeOf(id)
	dest := -1
	for n := 0; n < 4; n++ {
		if n != from {
			dest = n
			break
		}
	}
	stats, err := cl.MigrateHAU(ctx, id, dest)
	if err != nil {
		t.Fatalf("MigrateHAU(%s -> %d): %v", id, dest, err)
	}
	if cl.NodeOf(id) != dest {
		t.Fatalf("HAU %s on node %d after migration, want %d", id, cl.NodeOf(id), dest)
	}
	if stats.From != from || stats.To != dest {
		t.Fatalf("stats route %d->%d, want %d->%d", stats.From, stats.To, from, dest)
	}
	if stats.MovedBytes <= 0 {
		t.Fatalf("moved %d bytes, want > 0", stats.MovedBytes)
	}
	if stats.Drain <= 0 || stats.Downtime <= 0 {
		t.Fatalf("implausible timings: drain=%v downtime=%v", stats.Drain, stats.Downtime)
	}
	// The stream must keep flowing through the new incarnation.
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-migration deliveries", func() bool {
		return reg.get().Delivered() > after+50
	})
	cl.StopAll()
	rep := reg.get().Report()
	if v := rep.TotalViolations(); v != 0 {
		t.Fatalf("exactly-once violated across migration:\n%s", rep)
	}
	migs := col.Migrations()
	if len(migs) != 1 || migs[0].HAU != id || migs[0].MovedBytes != stats.MovedBytes {
		t.Fatalf("metrics migrations = %+v, want one record for %s", migs, id)
	}
}

func TestMigrateHAUExactlyOnceMSSrcAP(t *testing.T) { migrateStreaming(t, spe.MSSrcAP, "M") }
func TestMigrateHAUExactlyOnceMSSrc(t *testing.T)   { migrateStreaming(t, spe.MSSrc, "M") }
func TestMigrateSourceHAU(t *testing.T)             { migrateStreaming(t, spe.MSSrcAP, "S0") }
func TestMigrateSinkHAU(t *testing.T)               { migrateStreaming(t, spe.MSSrcAP, "K") }

// TestMigrateThenRecover checks the two subsystems compose: a migration
// followed by a burst kill and whole-application recovery still yields
// exactly-once delivery, and recovery re-places the dead HAUs through the
// placement policy.
func TestMigrateThenRecover(t *testing.T) {
	col := metrics.NewCollector()
	reg := &sinkRegistry{}
	local, shared := fastSpecs()
	cl, err := New(Config{
		App:           testApp(col, reg),
		Scheme:        spe.MSSrcAP,
		Nodes:         4,
		NodesPerRack:  2,
		Placement:     placement.RackSpread{},
		LocalDiskSpec: local,
		SharedSpec:    shared,
		TickEvery:     time.Millisecond,
		SourceFlush:   256,
		RetainEpochs:  2,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial deliveries", func() bool {
		s := reg.get()
		return s != nil && s.Delivered() > 50
	})
	from := cl.NodeOf("M")
	dest := (from + 1) % 4
	if dest == from {
		dest = (from + 2) % 4
	}
	if _, err := cl.MigrateHAU(ctx, "M", dest); err != nil {
		t.Fatal(err)
	}
	cl.Controller().TriggerCheckpoint()
	waitFor(t, 5*time.Second, "post-migration checkpoint", func() bool {
		_, ok := cl.Catalog().MostRecentComplete()
		return ok
	})
	cl.KillNode(dest) // takes down the freshly migrated HAU
	if _, err := cl.RecoverAllWithRetry(ctx, 10, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !cl.nodes[cl.NodeOf("M")].alive.Load() {
		t.Fatalf("M re-placed on dead node %d", cl.NodeOf("M"))
	}
	after := reg.get().Delivered()
	waitFor(t, 5*time.Second, "post-recovery deliveries", func() bool {
		return reg.get().Delivered() > after+50
	})
	cl.StopAll()
	rep := reg.get().Report()
	if v := rep.TotalViolations(); v != 0 {
		t.Fatalf("exactly-once violated across migration+recovery:\n%s", rep)
	}
}
