// SignalGuru example: run the paper's heaviest application (Fig. 4) under
// the baseline and under Meteor Shower back to back and compare common-case
// throughput and latency — the §IV-A experiment in miniature.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/bench"
	"meteorshower/internal/core"
	"meteorshower/internal/metrics"
	"meteorshower/internal/spe"
)

func runOnce(scheme spe.Scheme, dur time.Duration) (tput float64, lat time.Duration) {
	col := metrics.NewCollector()
	cfg := apps.SGPaper(col)
	cfg.SinkRef = &apps.SinkRef{}
	p := bench.Defaults()

	sys, err := core.NewSystem(core.Options{
		App:              apps.SG(cfg),
		Scheme:           scheme,
		Nodes:            8,
		CheckpointPeriod: dur / 3,
		LocalDisk:        p.LocalDisk,
		SharedDisk:       p.SharedDisk,
		TickEvery:        time.Millisecond,
		PreserveMemCap:   50 << 10,
		SourceFlush:      64 << 10,
		EdgeBuffer:       64,
		Seed:             3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	sys.StartController(ctx)

	time.Sleep(dur / 4) // warmup
	base := sys.Cluster().ProcessedTotal()
	col.Reset()
	start := time.Now()
	time.Sleep(dur)
	n := sys.Cluster().ProcessedTotal() - base
	return float64(n) / float64(time.Since(start).Milliseconds()), col.MeanLatency()
}

func main() {
	const dur = 2 * time.Second
	fmt.Println("SignalGuru: baseline vs Meteor Shower (3 checkpoints per window)")
	baseTput, baseLat := runOnce(spe.Baseline, dur)
	fmt.Printf("  %-14s %8.1f tuples/ms   mean latency %s\n", "Baseline", baseTput, baseLat.Truncate(time.Microsecond))
	msTput, msLat := runOnce(spe.MSSrcAP, dur)
	fmt.Printf("  %-14s %8.1f tuples/ms   mean latency %s\n", "MS-src+ap", msTput, msLat.Truncate(time.Microsecond))
	if baseTput > 0 && baseLat > 0 {
		fmt.Printf("Meteor Shower: %.0f%% throughput, %.0f%% latency vs baseline\n",
			msTput/baseTput*100, float64(msLat)/float64(baseLat)*100)
		fmt.Println("(paper, SignalGuru: MS-src+ap ~148% throughput, ~lower latency at 3 ckpts)")
	}
}
