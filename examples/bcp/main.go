// BCP example: run Bus Capacity Prediction (paper Fig. 3) under Meteor
// Shower, inject a correlated rack failure that takes down half the
// cluster, and verify exactly-once recovery — the paper's headline: "most
// DSPSs can only handle single-node failures".
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/core"
	"meteorshower/internal/metrics"
	"meteorshower/internal/spe"
)

func main() {
	col := metrics.NewCollector()
	ref := &apps.SinkRef{}
	cfg := apps.BCPPaper(col)
	cfg.SinkRef = ref
	cfg.TrackIdentity = true
	spec := apps.BCP(cfg)
	fmt.Printf("BCP query network: %d operators (cameras, counters, history, predictors)\n",
		spec.Graph.NumNodes())

	sys, err := core.NewSystem(core.Options{
		App:              spec,
		Scheme:           spe.MSSrcAP,
		Nodes:            8,
		CheckpointPeriod: 600 * time.Millisecond,
		TickEvery:        time.Millisecond,
		SourceFlush:      64 << 10,
		Seed:             2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer sys.Stop()
	sys.StartController(ctx)

	time.Sleep(time.Second)
	if err := sys.WaitForEpoch(1, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed; sink has %d predictions\n", col.Count())

	// Correlated burst: nodes 0..3 share a rack whose switch dies.
	fmt.Println("injecting rack failure: nodes 0-3 down")
	sys.KillNodes([]int{0, 1, 2, 3})
	stats, err := sys.RecoverAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole-application rollback to epoch %d: %d HAUs, %s total\n",
		stats.Epoch, stats.HAUs, stats.Total().Truncate(time.Millisecond))

	time.Sleep(1200 * time.Millisecond)
	sink := ref.Get()
	fmt.Printf("after recovery: delivered=%d duplicates=%d distinct=%d\n",
		sink.Delivered(), sink.Duplicates(), sink.SeenCount())
	if sink.Duplicates() > 0 {
		log.Fatal("exactly-once violated")
	}
	fmt.Println("ok: crowdedness predictions survived a rack-scale burst failure")
}
