package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"meteorshower/internal/elastic"
	"meteorshower/internal/partition"
	"meteorshower/internal/placement"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
)

// ErrDrainAborted means a scale-in drain lost a race and gave up: the node
// died, a whole-application recovery superseded the drain (the gen counter
// moved, mirroring the migration abort contract), or a destination ran
// out. The node is left un-drained and schedulable again; the caller
// retries from fresh samples if it still wants the node gone.
var ErrDrainAborted = errors.New("cluster: drain aborted")

// AddNode grows the fleet by one schedulable node and returns its index.
// A retired slot is reincarnated first — replacement hardware arrives with
// a blank disk and a fresh CPU gate — before the node array grows (which
// also re-derives the rack topology from the configured geometry).
func (cl *Cluster) AddNode() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, n := range cl.nodes {
		if n.retired.Load() {
			n.disk = storage.NewDisk(cl.cfg.LocalDiskSpec)
			if cl.cfg.NodeCores > 0 {
				n.cpu = spe.NewCPUGate(cl.cfg.NodeCores)
			}
			n.draining.Store(false)
			n.alive.Store(true)
			n.retired.Store(false)
			return n.index
		}
	}
	n := &node{index: len(cl.nodes), disk: storage.NewDisk(cl.cfg.LocalDiskSpec)}
	if cl.cfg.NodeCores > 0 {
		n.cpu = spe.NewCPUGate(cl.cfg.NodeCores)
	}
	n.alive.Store(true)
	cl.nodes = append(cl.nodes, n)
	cl.topo = placement.NewTopology(len(cl.nodes), cl.cfg.NodesPerRack)
	return n.index
}

// DrainNode scales in node idx: it is marked draining (no longer a
// placement target), every hosted HAU is live-migrated to a policy-chosen
// destination via MigrateHAU (so scale-in inherits migration's
// exactly-once guarantees), and the emptied node is retired.
//
// The drain mirrors the migration gen-counter abort contract: a
// whole-application recovery bumping cl.gen supersedes the drain — the
// rollback already re-placed every HAU consistently, so continuing to move
// them (or double-recovering them) would race it. Any abort unmarks
// draining and returns ErrDrainAborted; the node stays in the fleet.
func (cl *Cluster) DrainNode(ctx context.Context, idx int) error {
	cl.mu.Lock()
	if !cl.started {
		cl.mu.Unlock()
		return errors.New("cluster: not started")
	}
	if idx < 0 || idx >= len(cl.nodes) {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", idx)
	}
	n := cl.nodes[idx]
	if n.retired.Load() {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: node %d already retired", idx)
	}
	if !n.alive.Load() {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: node %d is dead", idx)
	}
	if n.draining.Load() {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: node %d already draining", idx)
	}
	others := 0
	for i, m := range cl.nodes {
		if i != idx && m.schedulable() {
			others++
		}
	}
	if others == 0 {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: draining node %d would leave no schedulable node", idx)
	}
	n.draining.Store(true)
	grd := cl.guardLocked(ErrDrainAborted)
	cl.mu.Unlock()

	abort := func(err error) error {
		n.draining.Store(false)
		return err
	}
	for {
		cl.mu.Lock()
		if grd.supersededLocked() {
			cl.mu.Unlock()
			return abort(grd.errf("superseded by recovery"))
		}
		if !n.alive.Load() {
			cl.mu.Unlock()
			return abort(grd.errf("node %d died while draining", idx))
		}
		// Next hosted incarnation, in deterministic graph/replica order.
		var id string
		for _, inc := range cl.incarnationsLocked() {
			if cl.hauNode[inc] == idx {
				id = inc
				break
			}
		}
		if id == "" {
			cl.mu.Unlock()
			break
		}
		placed := cl.policy.Assign([]string{id}, cl.viewLocked(map[string]bool{id: true}))
		dest, ok := placed[id]
		if !ok || dest < 0 || dest >= len(cl.nodes) || dest == idx || !cl.nodes[dest].schedulable() {
			dest = -1 // policy bug: any schedulable node keeps the drain alive
			for i, m := range cl.nodes {
				if i != idx && m.schedulable() {
					dest = i
					break
				}
			}
		}
		obs := cl.drainObs
		cl.mu.Unlock()
		if dest < 0 {
			return abort(grd.errf("no live destination for %q", id))
		}
		if obs != nil {
			obs(id, idx, dest)
		}
		if _, err := cl.MigrateHAU(ctx, id, dest); err != nil {
			return abort(grd.errf("migrating %q to node %d: %v", id, dest, err))
		}
	}

	cl.mu.Lock()
	defer cl.mu.Unlock()
	if grd.supersededLocked() {
		// A recovery slipped in after the last migration; it may have
		// re-placed HAUs onto this node, so retiring it now would strand
		// them. The recovery owns placement — give up.
		return abort(grd.errf("superseded by recovery"))
	}
	for _, inc := range cl.incarnationsLocked() {
		if cl.hauNode[inc] == idx {
			return abort(grd.errf("%q reappeared on node %d", inc, idx))
		}
	}
	n.draining.Store(false)
	n.retired.Store(true)
	return nil
}

// elasticDrain adapts DrainNode for the elasticity engine (no ctx).
func (cl *Cluster) elasticDrain(idx int) error {
	cl.mu.Lock()
	ctx := cl.rootCtx
	cl.mu.Unlock()
	if ctx == nil {
		return errors.New("cluster: not started")
	}
	return cl.DrainNode(ctx, idx)
}

// CanDrain reports whether node idx could be drained right now: it is
// schedulable, another schedulable node exists to receive its HAUs, and
// every hosted incarnation is live-migratable (replica incarnations and
// split bases are pinned — MigrateHAU rejects them — so a node hosting
// one has no migration path and must never be recommended for scale-in).
func (cl *Cluster) CanDrain(idx int) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if idx < 0 || idx >= len(cl.nodes) || !cl.nodes[idx].schedulable() {
		return false
	}
	others := 0
	for i, m := range cl.nodes {
		if i != idx && m.schedulable() {
			others++
		}
	}
	if others == 0 {
		return false
	}
	// A node hosting a standby cannot drain: standbys are not migratable
	// incarnations (they exist to pin a failure domain), so the drain
	// could never empty the node.
	for _, sb := range cl.standbys {
		if sb.node == idx {
			return false
		}
	}
	for id, nd := range cl.hauNode {
		if nd != idx {
			continue
		}
		if partition.IsReplica(id) || cl.parts[id] != nil || cl.migrating[id] || cl.haPinnedLocked(id) {
			return false
		}
	}
	return true
}

// FleetSize returns the number of non-retired nodes (dead ones included:
// they are fleet members awaiting recovery, not scaled-in capacity).
func (cl *Cluster) FleetSize() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n := 0
	for _, nd := range cl.nodes {
		if !nd.retired.Load() {
			n++
		}
	}
	return n
}

// NumNodes returns the node-slot count, retired slots included; node
// indices are always in [0, NumNodes).
func (cl *Cluster) NumNodes() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.nodes)
}

// NodeDraining reports whether node idx is mid-scale-in.
func (cl *Cluster) NodeDraining(idx int) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return idx >= 0 && idx < len(cl.nodes) && cl.nodes[idx].draining.Load()
}

// NodeRetired reports whether node idx has been scaled in.
func (cl *Cluster) NodeRetired(idx int) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return idx >= 0 && idx < len(cl.nodes) && cl.nodes[idx].retired.Load()
}

// SetDrainObserver installs fn to be called just before each per-HAU
// migration a DrainNode performs (nil uninstalls). The chaos harness uses
// it to aim kills at the in-flight migration's destination.
func (cl *Cluster) SetDrainObserver(fn func(id string, from, to int)) {
	cl.mu.Lock()
	cl.drainObs = fn
	cl.mu.Unlock()
}

// elasticSample assembles the per-node counters the elasticity engine
// derives utilization from. Everything read here is either guarded by
// cl.mu or atomic (edge queue depths, gate busy totals), so sampling is
// safe while checkpoints, migrations and rescales run.
func (cl *Cluster) elasticSample() elastic.Sample {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	s := elastic.Sample{
		At:    time.Unix(0, cl.cfg.Now()),
		Nodes: make([]elastic.NodeStat, len(cl.nodes)),
	}
	for i, n := range cl.nodes {
		s.Nodes[i] = elastic.NodeStat{
			Node:     i,
			Alive:    n.alive.Load(),
			Draining: n.draining.Load(),
			Retired:  n.retired.Load(),
			CPUBusy:  n.cpu.BusyTotal(),
		}
	}
	for id, nd := range cl.hauNode {
		if nd < 0 || nd >= len(s.Nodes) {
			continue
		}
		st := &s.Nodes[nd]
		st.HAUs++
		if !partition.IsReplica(id) && cl.parts[id] == nil && !cl.migrating[id] && !cl.haPinnedLocked(id) {
			st.CanMove++
		}
		if h := cl.haus[id]; h != nil {
			st.State += h.CachedStateSize()
		}
		for _, row := range cl.inEdges[id] {
			for _, e := range row {
				st.Queue += e.Queued()
			}
		}
	}
	// Standbys occupy their host like any HAU (duplicate execution burns
	// real capacity) but are never migration candidates.
	for _, sb := range cl.standbys {
		if sb.node < 0 || sb.node >= len(s.Nodes) {
			continue
		}
		st := &s.Nodes[sb.node]
		st.HAUs++
		st.State += sb.h.CachedStateSize()
		st.Queue += sb.mirror.Queued()
	}
	// Per-app aggregates for the multi-tenant trigger: the fleet scales on
	// the SUM of every tenant's backlog, not any single app's.
	apps := cl.appsSnapshot()
	if len(apps) > 1 {
		agg := make(map[*appState]*elastic.AppStat, len(apps))
		for _, a := range apps {
			agg[a] = &elastic.AppStat{App: a.name, Weight: a.weight}
		}
		for id, nd := range cl.hauNode {
			if nd < 0 || nd >= len(s.Nodes) {
				continue
			}
			st := agg[cl.appOf(id)]
			if st == nil {
				continue
			}
			st.HAUs++
			if h := cl.haus[id]; h != nil {
				st.State += h.CachedStateSize()
			}
			for _, row := range cl.inEdges[id] {
				for _, e := range row {
					st.Queue += e.Queued()
				}
			}
		}
		for _, a := range apps {
			s.Apps = append(s.Apps, *agg[a])
		}
	}
	return s
}
