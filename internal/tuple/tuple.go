// Package tuple defines the unit of data exchanged between stream operators
// and the checkpoint tokens that Meteor Shower piggybacks on the dataflow.
//
// A tuple is the smallest unit of data passed along a stream. A token is "a
// piece of data embedded in the dataflow as an extra field in a tuple"
// (paper §III-A); here it is carried by the Tok field, and a pure control
// tuple is one whose payload is empty and whose Tok field is set.
package tuple

import "time"

// TokenKind distinguishes the two token flavours used by the Meteor Shower
// variants.
type TokenKind uint8

const (
	// Cascading tokens originate at source HAUs and are forwarded hop by
	// hop down the query network (MS-src).
	Cascading TokenKind = iota
	// OneHop tokens are emitted by every HAU simultaneously on a
	// controller command and are discarded after alignment (MS-src+ap).
	OneHop
	// Migration tokens mark the end of an input stream during a live HAU
	// migration: each upstream flushes one onto the old edge before
	// diverting its output to the destination's fresh edge. When the
	// migrating HAU has seen one on every input, everything routed to its
	// old incarnation has been processed and its state can move.
	Migration
)

func (k TokenKind) String() string {
	switch k {
	case Cascading:
		return "cascading"
	case OneHop:
		return "one-hop"
	case Migration:
		return "migration"
	default:
		return "unknown"
	}
}

// Token conveys a checkpoint command. It marks the stream boundary between
// tuples handled by the downstream HAU (preceding the token) and tuples
// handled by the upstream HAU (succeeding it).
type Token struct {
	Epoch uint64    // checkpoint epoch this token belongs to
	Kind  TokenKind // cascading (MS-src) or 1-hop (MS-src+ap)
	From  string    // id of the HAU that emitted this token
}

// Tuple is a unit of stream data. Payload bytes are opaque to the runtime;
// applications encode their records into Data. The runtime itself only
// reads the metadata fields.
type Tuple struct {
	ID  uint64 // sequence number, unique per source
	Src string // id of the source HAU that produced the originating event
	Key string // partitioning / grouping key
	Ts  int64  // event creation time, ns since epoch (virtual or wall)
	// Seq is the per-edge sequence number stamped by the sending HAU.
	// Receivers use it to drop duplicates during post-recovery replay;
	// zero means "unsequenced" (tokens, unit tests).
	Seq  uint64
	Data []byte // application payload
	Tok  *Token // non-nil when this tuple carries a checkpoint token
}

// New returns a data tuple stamped with the current wall time.
func New(id uint64, src, key string, data []byte) *Tuple {
	return &Tuple{ID: id, Src: src, Key: key, Ts: time.Now().UnixNano(), Data: data}
}

// NewToken returns a pure control tuple carrying tok.
func NewToken(tok Token) *Tuple {
	return &Tuple{Ts: time.Now().UnixNano(), Tok: &tok}
}

// IsToken reports whether t carries a checkpoint token.
func (t *Tuple) IsToken() bool { return t != nil && t.Tok != nil }

// Size returns the number of bytes this tuple occupies for the purposes of
// buffering, preservation and checkpoint accounting. It intentionally
// over-approximates by including the fixed header fields.
func (t *Tuple) Size() int64 {
	if t == nil {
		return 0
	}
	// ID + Ts + Seq fixed words, the Src/Key string headers, the Data
	// slice header and the Tok pointer — the full in-memory header on a
	// 64-bit platform.
	const header = 8 + 8 + 8 + 16 + 16 + 24 + 8
	n := int64(header + len(t.Src) + len(t.Key) + len(t.Data))
	if t.Tok != nil {
		n += int64(9 + len(t.Tok.From))
	}
	return n
}

// Clone returns a deep copy of t. The payload is copied so the clone can be
// retained (e.g. in a preservation buffer) while the original continues
// downstream.
func (t *Tuple) Clone() *Tuple {
	if t == nil {
		return nil
	}
	c := *t
	if t.Data != nil {
		c.Data = append([]byte(nil), t.Data...)
	}
	if t.Tok != nil {
		tok := *t.Tok
		c.Tok = &tok
	}
	return &c
}

// Age returns how long ago the tuple was created, relative to now (ns).
func (t *Tuple) Age(nowNS int64) time.Duration {
	return time.Duration(nowNS - t.Ts)
}
