package operator

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"meteorshower/internal/tuple"
)

// LatencyRecorder receives per-tuple end-to-end latencies from sinks.
// metrics.Collector implements it.
type LatencyRecorder interface {
	RecordLatency(at int64, lat time.Duration)
}

// Sink terminates a stream: it records end-to-end latency for every tuple
// and, when TrackIdentity is on, remembers which (source, id) pairs it has
// delivered — the exactly-once oracle used by the recovery property tests.
// Unlike most operators, a Sink is observed concurrently (benchmarks and
// monitors read its counters while the HAU loop delivers), so it guards
// its state.
type Sink struct {
	Base
	Recorder      LatencyRecorder
	TrackIdentity bool
	Now           func() int64 // injectable clock; defaults to wall time

	delivered atomic.Uint64
	dupes     atomic.Uint64
	mu        sync.Mutex
	seen      map[string]map[uint64]bool
}

// NewSink returns a sink reporting into rec (which may be nil).
func NewSink(name string, rec LatencyRecorder) *Sink {
	return &Sink{Base: Base{OpName: name}, Recorder: rec, seen: make(map[string]map[uint64]bool)}
}

// OnTuple records the tuple's latency and identity.
func (s *Sink) OnTuple(_ int, t *tuple.Tuple, _ Emitter) error {
	s.delivered.Add(1)
	if s.Recorder != nil {
		// The clock read is the dominant cost of an unobserved sink, so
		// only pay for it when someone records the latency.
		now := time.Now().UnixNano()
		if s.Now != nil {
			now = s.Now()
		}
		s.Recorder.RecordLatency(now, time.Duration(now-t.Ts))
	}
	if s.TrackIdentity {
		s.mu.Lock()
		m := s.seen[t.Src]
		if m == nil {
			m = make(map[uint64]bool)
			s.seen[t.Src] = m
		}
		if m[t.ID] {
			s.dupes.Add(1)
		}
		m[t.ID] = true
		s.mu.Unlock()
	}
	return nil
}

// Delivered returns the tuple count since the last restore.
func (s *Sink) Delivered() uint64 { return s.delivered.Load() }

// Duplicates returns how many identity-tracked tuples arrived twice.
func (s *Sink) Duplicates() uint64 { return s.dupes.Load() }

// SeenCount returns how many distinct (source, id) pairs were delivered.
func (s *Sink) SeenCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.seen {
		n += len(m)
	}
	return n
}

// Seen reports whether the sink has delivered tuple (src, id).
func (s *Sink) Seen(src string, id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[src][id]
}

// StateSize covers the identity set.
func (s *Sink) StateSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64 = 16
	for src, m := range s.seen {
		n += int64(len(src)) + int64(len(m))*9
	}
	return n
}

// Snapshot serializes the delivery state.
func (s *Sink) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, s.delivered.Load())
	buf = binary.LittleEndian.AppendUint64(buf, s.dupes.Load())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.seen)))
	srcs := make([]string, 0, len(s.seen))
	for src := range s.seen {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		m := s.seen[src]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(src)))
		buf = append(buf, src...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m)))
		ids := make([]uint64, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint64(buf, id)
		}
	}
	return buf, nil
}

// Restore rebuilds the delivery state.
func (s *Sink) Restore(buf []byte) error {
	if len(buf) < 20 {
		return errors.New("sink: short snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delivered.Store(binary.LittleEndian.Uint64(buf))
	s.dupes.Store(binary.LittleEndian.Uint64(buf[8:]))
	nsrc := int(binary.LittleEndian.Uint32(buf[16:]))
	buf = buf[20:]
	s.seen = make(map[string]map[uint64]bool, nsrc)
	for i := 0; i < nsrc; i++ {
		if len(buf) < 2 {
			return errors.New("sink: truncated snapshot")
		}
		sl := int(binary.LittleEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < sl+4 {
			return errors.New("sink: truncated snapshot")
		}
		src := string(buf[:sl])
		n := int(binary.LittleEndian.Uint32(buf[sl:]))
		buf = buf[sl+4:]
		if len(buf) < n*8 {
			return errors.New("sink: truncated snapshot")
		}
		m := make(map[uint64]bool, n)
		for j := 0; j < n; j++ {
			m[binary.LittleEndian.Uint64(buf[j*8:])] = true
		}
		buf = buf[n*8:]
		s.seen[src] = m
	}
	return nil
}
