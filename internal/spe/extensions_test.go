package spe

import (
	"context"
	"fmt"
	"testing"
	"time"

	"meteorshower/internal/operator"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// TestDeltaCheckpointWritesLess checkpoints a counter HAU twice with a tiny
// state change in between: the second write must be a small delta, and
// recovery from it must reconstruct the full state.
func TestDeltaCheckpointWritesLess(t *testing.T) {
	store := fastStore()
	cat := storage.NewCatalog(store, []string{"H"})
	in := NewEdge("x", "H", 0)
	out := NewEdge("H", "drain", 0)
	go func() {
		for range out.C {
		}
	}()
	cnt := operator.NewCounter("c")
	h, err := New(Config{
		ID: "H", Scheme: MSSrcAP, Ops: []operator.Operator{cnt},
		In: []*Edge{in}, Out: []*Edge{out}, Catalog: cat,
		TickEvery: time.Millisecond, DeltaCheckpoint: true, DeltaFullEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis := &recListener{}
	h.cfg.Listener = lis
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)

	// Build a multi-block state (distinct keys), then checkpoint epoch 1
	// (full).
	for i := uint64(1); i <= 400; i++ {
		tp := tuple.New(i, "x", fmt.Sprintf("key-%03d", i), nil)
		tp.Seq = i
		in.Inject(nil, tp)
	}
	in.Inject(nil, tuple.NewToken(tuple.Token{Epoch: 1, Kind: tuple.OneHop, From: "x"}))
	waitFor(t, 5*time.Second, func() bool { return lis.ckptCount() == 1 })

	// Bump one existing key, then epoch 2 (delta): the count updates in
	// place inside its slot, so only that slot's blocks change.
	tp := tuple.New(401, "x", "key-001", nil)
	tp.Seq = 401
	in.Inject(nil, tp)
	in.Inject(nil, tuple.NewToken(tuple.Token{Epoch: 2, Kind: tuple.OneHop, From: "x"}))
	waitFor(t, 5*time.Second, func() bool { return lis.ckptCount() == 2 })
	h.WaitWriters()

	lis.mu.Lock()
	fullBytes := lis.ckpts[0].b.StateBytes
	deltaBytes := lis.ckpts[1].b.StateBytes
	lis.mu.Unlock()
	if deltaBytes >= fullBytes {
		t.Fatalf("delta (%d) not smaller than full (%d)", deltaBytes, fullBytes)
	}

	// Recovery from the delta epoch reconstructs the counter.
	blob, _, err := cat.LoadState(2, "H")
	if err != nil {
		t.Fatal(err)
	}
	cnt2 := operator.NewCounter("c")
	h2, _ := New(Config{
		ID: "H", Scheme: MSSrcAP, Ops: []operator.Operator{cnt2},
		In: []*Edge{NewEdge("x", "H", 0)}, Out: []*Edge{NewEdge("H", "drain", 0)},
	})
	if err := h2.RestoreFrom(blob); err != nil {
		t.Fatal(err)
	}
	if cnt2.Total() != 401 {
		t.Fatalf("restored count = %d, want 401", cnt2.Total())
	}
	cancel()
}

// TestDeltaFullEveryForcesFullSaves verifies the periodic full snapshot.
func TestDeltaFullEveryForcesFullSaves(t *testing.T) {
	store := fastStore()
	cat := storage.NewCatalog(store, []string{"H"})
	in := NewEdge("x", "H", 0)
	out := NewEdge("H", "drain", 0)
	go func() {
		for range out.C {
		}
	}()
	h, _ := New(Config{
		ID: "H", Scheme: MSSrcAP, Ops: []operator.Operator{operator.NewCounter("c")},
		In: []*Edge{in}, Out: []*Edge{out}, Catalog: cat,
		TickEvery: time.Millisecond, DeltaCheckpoint: true, DeltaFullEvery: 2,
	})
	lis := &recListener{}
	h.cfg.Listener = lis
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	for e := uint64(1); e <= 4; e++ {
		tp := tuple.New(e, "x", "k", make([]byte, 500))
		tp.Seq = e
		in.Inject(nil, tp)
		in.Inject(nil, tuple.NewToken(tuple.Token{Epoch: e, Kind: tuple.OneHop, From: "x"}))
		waitFor(t, 5*time.Second, func() bool { return lis.ckptCount() == int(e) })
	}
	h.WaitWriters()
	// Epochs 1 and 3 are full (state includes a 0-byte... we just check
	// every epoch restores).
	for e := uint64(1); e <= 4; e++ {
		if _, _, err := cat.LoadState(e, "H"); err != nil {
			t.Fatalf("epoch %d unreadable: %v", e, err)
		}
	}
	cancel()
}

// TestLoadShedding saturates a consumer and verifies the producer drops
// instead of blocking once the output queue passes the watermark.
func TestLoadShedding(t *testing.T) {
	out := NewEdge("H", "slow", 10)
	gen := operator.NewRateSource("H", 0, 1, operator.BytePayload(8, 2))
	gen.MaxRate = true
	gen.CatchUpCap = 50
	h, err := New(Config{
		ID: "H", Scheme: MSSrc, Ops: []operator.Operator{gen},
		Out: []*Edge{out}, TickEvery: time.Millisecond,
		ShedWatermark: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	// Nobody drains `out`: the queue fills to the watermark and sheds
	// keep the HAU live instead of deadlocked.
	waitFor(t, 5*time.Second, func() bool { return h.ShedCount() > 100 })
	if q := out.Occupancy(); q > 8 {
		t.Fatalf("queue overfilled despite watermark: %d", q)
	}
	cancel()
}

// TestNoSheddingByDefault: with watermark 0 the producer must block, not
// drop.
func TestNoSheddingByDefault(t *testing.T) {
	out := NewEdge("H", "slow", 4)
	gen := operator.NewRateSource("H", 0, 1, operator.BytePayload(8, 2))
	gen.MaxRate = true
	gen.CatchUpCap = 50
	h, _ := New(Config{
		ID: "H", Scheme: MSSrc, Ops: []operator.Operator{gen},
		Out: []*Edge{out}, TickEvery: time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Start(ctx)
	waitFor(t, 5*time.Second, func() bool { return out.Queued() == 4 })
	time.Sleep(20 * time.Millisecond)
	if h.ShedCount() != 0 {
		t.Fatal("shed without watermark")
	}
	cancel()
}
