package apps

import (
	"meteorshower/internal/cluster"
	"meteorshower/internal/graph"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
)

// SGConfig sizes the SignalGuru application (paper §II-B2, Fig. 4):
// windshield-mounted iPhone sources S feed dispatchers D, color filters C,
// shape filters A and motion filters M; voting operators V merge parallel
// detections, groups G collect them, SVM predictors P forecast signal
// transitions, K is the sink.
type SGConfig struct {
	PhoneGroups    int // S and D count
	FiltersPerDisp int // C/A/M pipelines per dispatcher
	Predictors     int // P count
	Intersections  int // distinct intersections per phone group
	ImgW, ImgH     int
	FramePad       int // raw full-resolution bytes carried past the thumbnail
	MaxLights      int
	DwellFrames    int // frames a vehicle stays at an intersection
	RatePerMS      float64
	MaxRate        bool // elastic sources: replay as fast as absorbed
	Burst          int
	Seed           int64

	Collector     *metrics.Collector
	SinkRef       *SinkRef
	TrackIdentity bool

	// SourceLimit bounds every source to the ids [0, SourceLimit)
	// (0 = unbounded); see TMIConfig.SourceLimit.
	SourceLimit uint64
	// Audit swaps the fan-in stages — voting and SVM prediction, whose
	// re-stamped identities depend on cross-pipeline arrival order — for
	// passthroughs. The motion filters then stamp the last deterministic
	// identity each tuple carries to the sink.
	Audit bool
}

// SGPaper returns the 55-operator configuration (4 S + 4 D + 12 C + 12 A +
// 12 M + 4 V + 4 G + 2 P + 1 K).
func SGPaper(col *metrics.Collector) SGConfig {
	return SGConfig{
		PhoneGroups: 4, FiltersPerDisp: 3, Predictors: 2, Intersections: 3,
		ImgW: 48, ImgH: 32, FramePad: 14 << 10, MaxLights: 4, DwellFrames: 12,
		RatePerMS: 0.30, MaxRate: true, Burst: 1, Seed: 3,
		Collector: col,
	}
}

// SGSmall returns a compact configuration for tests.
func SGSmall(col *metrics.Collector) SGConfig {
	return SGConfig{
		PhoneGroups: 1, FiltersPerDisp: 2, Predictors: 1, Intersections: 2,
		ImgW: 32, ImgH: 24, MaxLights: 2, DwellFrames: 4,
		RatePerMS: 0.6, Seed: 3,
		Collector: col,
	}
}

// SG builds the application spec.
func SG(cfg SGConfig) cluster.AppSpec {
	g := graph.New()
	for p := 0; p < cfg.PhoneGroups; p++ {
		g.MustAddNode("S" + itoa(p))
		g.MustAddNode("D" + itoa(p))
		g.MustAddNode("V" + itoa(p))
		g.MustAddNode("G" + itoa(p))
	}
	nFilters := cfg.PhoneGroups * cfg.FiltersPerDisp
	for i := 0; i < nFilters; i++ {
		g.MustAddNode("C" + itoa(i))
		g.MustAddNode("A" + itoa(i))
		g.MustAddNode("M" + itoa(i))
	}
	for p := 0; p < cfg.Predictors; p++ {
		g.MustAddNode("P" + itoa(p))
	}
	g.MustAddNode("K")

	for p := 0; p < cfg.PhoneGroups; p++ {
		g.MustAddEdge("S"+itoa(p), "D"+itoa(p))
		for k := 0; k < cfg.FiltersPerDisp; k++ {
			i := p*cfg.FiltersPerDisp + k
			g.MustAddEdge("D"+itoa(p), "C"+itoa(i))
			g.MustAddEdge("C"+itoa(i), "A"+itoa(i))
			g.MustAddEdge("A"+itoa(i), "M"+itoa(i))
			g.MustAddEdge("M"+itoa(i), "V"+itoa(p))
		}
		g.MustAddEdge("V"+itoa(p), "G"+itoa(p))
		g.MustAddEdge("G"+itoa(p), "P"+itoa(p%cfg.Predictors))
	}
	for p := 0; p < cfg.Predictors; p++ {
		g.MustAddEdge("P"+itoa(p), "K")
	}

	return cluster.AppSpec{
		Name:  "SignalGuru",
		Graph: g,
		NewOperators: func(id string) []operator.Operator {
			idx := atoi(id[1:])
			switch id[0] {
			case 'S':
				src := operator.NewRateSource(
					id, cfg.RatePerMS, cfg.Seed+int64(idx),
					ImagePayloadPadded(idx, cfg.Intersections, cfg.ImgW, cfg.ImgH, cfg.MaxLights, cfg.FramePad),
				)
				src.MaxRate = cfg.MaxRate
				if cfg.Burst > 0 {
					src.CatchUpCap = cfg.Burst
				}
				src.Limit = cfg.SourceLimit
				return []operator.Operator{src}
			case 'D':
				return []operator.Operator{NewFrameDispatchOp(id, cfg.FiltersPerDisp, -1)}
			case 'C':
				return []operator.Operator{NewBandFilterOp(id, 140, 255)}
			case 'A':
				return []operator.Operator{NewShapeFilterOp(id, 0.3, 3)}
			case 'M':
				return []operator.Operator{NewMotionFilterOp(id, cfg.DwellFrames)}
			case 'V':
				if cfg.Audit {
					return []operator.Operator{operator.NewPassthrough(id, 1)}
				}
				return []operator.Operator{NewVotingOp(id, 3)}
			case 'G':
				return []operator.Operator{operator.NewPassthrough(id, 1)}
			case 'P':
				if cfg.Audit {
					return []operator.Operator{operator.NewPassthrough(id, 1)}
				}
				return []operator.Operator{NewSVMPredictOp(id, cfg.Seed)}
			default:
				return []operator.Operator{newSink(id, cfg.Collector, cfg.SinkRef, cfg.TrackIdentity)}
			}
		},
	}
}
