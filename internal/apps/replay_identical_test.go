package apps

import (
	"context"
	"reflect"
	"testing"
	"time"

	"meteorshower/internal/cluster"
	"meteorshower/internal/core"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/spe"
)

// runToQuiescence boots an app with bounded sources, optionally kills the
// whole cluster mid-stream and recovers, then waits for the sink to go
// quiet and returns its delivery report. With Audit on and sources
// bounded, the report is a pure function of the source streams — so a
// failed+recovered run must reproduce the unfailed one exactly.
func runToQuiescence(t *testing.T, spec cluster.AppSpec, col *metrics.Collector, ref *SinkRef, failMidway bool) operator.SinkReport {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		App:       spec,
		Scheme:    spe.MSSrcAP,
		Nodes:     3,
		TimeScale: 0,
		TickEvery: time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := sys.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()

	deadline := time.Now().Add(20 * time.Second)
	for col.Count() < 5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if col.Count() < 5 {
		t.Fatalf("%s: warmup starved (%d deliveries)", spec.Name, col.Count())
	}

	if failMidway {
		ep := sys.TriggerCheckpoint()
		if err := sys.WaitForEpoch(ep, 20*time.Second); err != nil {
			t.Fatal(err)
		}
		sys.KillAll()
		if _, err := sys.RecoverAllWithRetry(ctx, 3, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// Quiescence: bounded sources run dry, so the seen-set stops growing.
	// Wait for a full second without change before trusting the report.
	var lastSeen, stableSince = -1, time.Now()
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		n := ref.Get().SeenCount()
		if n != lastSeen {
			lastSeen, stableSince = n, time.Now()
		} else if time.Since(stableSince) > time.Second {
			return ref.Get().Report()
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s: sink never quiesced (seen=%d)", spec.Name, lastSeen)
	return nil
}

func tmiAudit() (cluster.AppSpec, *metrics.Collector, *SinkRef) {
	col := metrics.NewCollector()
	ref := &SinkRef{}
	cfg := TMISmall(col)
	cfg.SinkRef = ref
	cfg.TrackIdentity = true
	cfg.Audit = true
	cfg.SourceLimit = 80
	return TMI(cfg), col, ref
}

func sgAudit() (cluster.AppSpec, *metrics.Collector, *SinkRef) {
	col := metrics.NewCollector()
	ref := &SinkRef{}
	cfg := SGSmall(col)
	cfg.SinkRef = ref
	cfg.TrackIdentity = true
	cfg.Audit = true
	cfg.SourceLimit = 60
	return SG(cfg), col, ref
}

func replayIdentical(t *testing.T, build func() (cluster.AppSpec, *metrics.Collector, *SinkRef)) {
	t.Helper()
	spec, col, ref := build()
	want := runToQuiescence(t, spec, col, ref, false)
	if want.TotalViolations() != 0 {
		t.Fatalf("unfailed run reported violations:\n%s", want)
	}

	spec2, col2, ref2 := build()
	got := runToQuiescence(t, spec2, col2, ref2, true)
	if got.TotalViolations() != 0 {
		t.Fatalf("recovered run reported violations:\n%s", got)
	}
	// Reorders are timing-dependent even on an identical tuple set; the
	// identity sets themselves must match exactly.
	for src := range want {
		w, g := want[src], got[src]
		w.Reorders, g.Reorders = 0, 0
		want[src], got[src] = w, g
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered sink output differs from unfailed run\nunfailed:\n%srecovered:\n%s", want, got)
	}
}

// TestTMIReplayIdentical drives KillAll + RecoverAll on TMI and checks
// the recovered run's sink output is identical to an unfailed run with
// the same seeds — exactly-once end to end, not merely duplicate-free.
func TestTMIReplayIdentical(t *testing.T) {
	replayIdentical(t, tmiAudit)
}

// TestSGReplayIdentical is the same oracle over SignalGuru's
// fan-out/fan-in pipeline shape.
func TestSGReplayIdentical(t *testing.T) {
	replayIdentical(t, sgAudit)
}
