package chaos

// Multi-tenant chaos: two applications share one fleet, a node dies, and
// the oracles check that per-app recovery is isolated — every tenant's
// sink stays exactly-once, and only the tenant whose HAUs died rolls back.

import (
	"context"
	"testing"
	"time"

	"meteorshower/internal/apps"
	"meteorshower/internal/cluster"
	"meteorshower/internal/metrics"
	"meteorshower/internal/operator"
	"meteorshower/internal/spe"
	"meteorshower/internal/storage"
)

// multiApp is a two-tenant harness: a TMI chain and a SignalGuru fan-out
// (distinct app names) in Audit mode with bounded sources on one shared
// cluster, each with a single-threaded reference replay as ground truth.
type multiApp struct {
	cl    *cluster.Cluster
	col   *metrics.Collector
	names []string
	sinks map[string]*apps.SinkRef
	refs  map[string]operator.SinkReport
	seen  map[string]int // reference distinct-delivery count per app
}

func startMultiApp(t *testing.T, nodes int, seed int64) *multiApp {
	t.Helper()
	const limit = 40

	m := &multiApp{
		sinks: make(map[string]*apps.SinkRef),
		refs:  make(map[string]operator.SinkReport),
		seen:  make(map[string]int),
	}
	var specs []cluster.AppSpec
	for i, top := range []Topology{Chain, FanOut} {
		s := seed + int64(i)
		refSpec, _, refSink, err := buildSpec(top, s, limit)
		if err != nil {
			t.Fatalf("buildSpec(%s): %v", top, err)
		}
		want, err := referenceReplay(refSpec, refSink)
		if err != nil {
			t.Fatalf("reference replay (%s): %v", top, err)
		}
		spec, _, sink, err := buildSpec(top, s, limit)
		if err != nil {
			t.Fatalf("buildSpec(%s): %v", top, err)
		}
		spec.Weight = float64(i + 1)
		specs = append(specs, spec)
		m.names = append(m.names, spec.Name)
		m.sinks[spec.Name] = sink
		m.refs[spec.Name] = want
		for _, sr := range want {
			m.seen[spec.Name] += int(sr.Delivered)
		}
	}

	m.col = metrics.NewCollector()
	disk := storage.DiskSpec{BandwidthBps: 1 << 30, Latency: time.Microsecond}
	cl, err := cluster.New(cluster.Config{
		Apps:           specs,
		Scheme:         spe.MSSrcAP,
		Nodes:          nodes,
		LocalDiskSpec:  disk,
		SharedSpec:     disk,
		TickEvery:      time.Millisecond,
		PreserveMemCap: 1 << 20,
		SourceFlush:    256,
		RetainEpochs:   2,
		Seed:           seed,
		Metrics:        m.col,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	m.cl = cl
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := cl.Start(ctx); err != nil {
		t.Fatalf("cluster.Start: %v", err)
	}
	t.Cleanup(cl.StopAll)

	for _, name := range m.names {
		sink := m.sinks[name]
		waitFor(t, 10*time.Second, "first delivery for "+name, func() bool {
			s := sink.Get()
			return s != nil && s.SeenCount() > 0
		})
	}
	return m
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// checkpoint triggers one checkpoint on the named app's own controller and
// waits for its catalog to commit it.
func (m *multiApp) checkpoint(t *testing.T, app string) {
	t.Helper()
	ep := m.cl.AppController(app).TriggerCheckpoint()
	waitFor(t, 10*time.Second, "checkpoint for "+app, func() bool {
		e, ok := m.cl.AppCatalog(app).MostRecentComplete()
		return ok && e >= ep
	})
}

// recoverApp drives whole-application rollback for one tenant only,
// retrying transient races like the chaos rounds do.
func (m *multiApp) recoverApp(t *testing.T, app string) {
	t.Helper()
	var err error
	for i := 0; i < 10; i++ {
		if _, err = m.cl.RecoverApp(context.Background(), app); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("RecoverApp(%s): %v", app, err)
}

// quiesce waits until the app's bounded stream has converged (reference
// delivery count reached and stable, or no progress for 3s) and returns
// the terminal sink report.
func (m *multiApp) quiesce(app string) operator.SinkReport {
	want := m.seen[app]
	deadline := time.Now().Add(30 * time.Second)
	lastSeen, stableSince := -1, time.Now()
	for time.Now().Before(deadline) {
		n := m.sinks[app].Get().SeenCount()
		if n != lastSeen {
			lastSeen, stableSince = n, time.Now()
		} else if n >= want && time.Since(stableSince) > 300*time.Millisecond {
			break
		} else if time.Since(stableSince) > 3*time.Second {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return m.sinks[app].Get().Report()
}

// checkOracles asserts both oracles for one tenant: zero gaps/duplicates
// at the sink and state equivalence with the reference replay.
func (m *multiApp) checkOracles(t *testing.T, app string) {
	t.Helper()
	rep := m.quiesce(app)
	if v := rep.TotalViolations(); v != 0 {
		t.Errorf("app %s sequence oracle: %d violations\n%s", app, v, rep)
	}
	for _, d := range diffReports(rep, m.refs[app]) {
		t.Errorf("app %s state oracle: %s", app, d)
	}
}

// hostedApps returns how many HAUs each app hosts on node n.
func (m *multiApp) hostedApps(n int) map[string]int {
	out := make(map[string]int)
	for _, id := range m.cl.GraphNodes() {
		if m.cl.NodeOf(id) == n {
			out[m.cl.AppOfHAU(id)]++
		}
	}
	return out
}

// sharedNode returns a node hosting HAUs of at least two apps.
func (m *multiApp) sharedNode(t *testing.T) int {
	t.Helper()
	for n := 0; n < m.cl.NumNodes(); n++ {
		if len(m.hostedApps(n)) > 1 {
			return n
		}
	}
	t.Fatal("no node hosts HAUs from two apps")
	return -1
}

// soloNode returns a node hosting HAUs of app and nobody else, live-
// migrating co-tenant HAUs off one if the placement interleaved every node.
func (m *multiApp) soloNode(t *testing.T, app string) int {
	t.Helper()
	best := -1
	for n := 0; n < m.cl.NumNodes(); n++ {
		hosted := m.hostedApps(n)
		if hosted[app] == 0 {
			continue
		}
		if len(hosted) == 1 {
			return n
		}
		if best < 0 {
			best = n
		}
	}
	if best < 0 {
		t.Fatalf("no node hosts %s", app)
	}
	dest := (best + 1) % m.cl.NumNodes()
	for _, id := range m.cl.GraphNodes() {
		if m.cl.NodeOf(id) == best && m.cl.AppOfHAU(id) != app {
			if _, err := m.cl.MigrateHAU(context.Background(), id, dest); err != nil {
				t.Fatalf("evicting co-tenant %q off node %d: %v", id, best, err)
			}
		}
	}
	return best
}

// TestMultiAppSharedNodeKill kills a node hosting HAUs from BOTH tenants.
// Each application is recovered independently (its own rollback, its own
// epoch); both sink oracles must stay green and every recovery record must
// be tagged with the application it healed.
func TestMultiAppSharedNodeKill(t *testing.T) {
	m := startMultiApp(t, 4, 42)
	for _, app := range m.names {
		m.checkpoint(t, app)
	}
	victim := m.sharedNode(t)
	t.Logf("killing node %d hosting %v", victim, m.hostedApps(victim))
	m.cl.KillNode(victim)
	for _, app := range m.names {
		m.recoverApp(t, app)
	}
	for _, app := range m.names {
		m.checkOracles(t, app)
		if len(m.col.RecoveriesFor(app)) == 0 {
			t.Errorf("app %s: no recovery record tagged with it", app)
		}
	}
	tagged := 0
	for _, app := range m.names {
		tagged += len(m.col.RecoveriesFor(app))
	}
	if total := len(m.col.Recoveries()); total != tagged {
		t.Errorf("%d recovery records but only %d tagged with an app", total, tagged)
	}
}

// TestMultiAppRecoveryIsolation kills a node hosting HAUs of only ONE
// tenant and rolls back just that application. The co-tenant must keep
// running untouched: zero recovery records tagged with it, checkpoint
// epoch intact, and both sink oracles green.
func TestMultiAppRecoveryIsolation(t *testing.T) {
	m := startMultiApp(t, 8, 7)
	victimApp, coApp := m.names[0], m.names[1]
	for _, app := range m.names {
		m.checkpoint(t, app)
	}
	victim := m.soloNode(t, victimApp)
	coEpoch, coOK := m.cl.AppCatalog(coApp).MostRecentComplete()
	t.Logf("killing node %d hosting %v", victim, m.hostedApps(victim))
	m.cl.KillNode(victim)
	m.recoverApp(t, victimApp)
	for _, app := range m.names {
		m.checkOracles(t, app)
	}
	if len(m.col.RecoveriesFor(victimApp)) == 0 {
		t.Errorf("app %s: rollback not recorded", victimApp)
	}
	if got := m.col.RecoveriesFor(coApp); len(got) != 0 {
		t.Errorf("co-tenant %s rolled back %d time(s); want 0", coApp, len(got))
	}
	if ep, ok := m.cl.AppCatalog(coApp).MostRecentComplete(); !coOK || !ok || ep < coEpoch {
		t.Errorf("co-tenant %s epoch moved from (%d,%v) to (%d,%v)", coApp, coEpoch, coOK, ep, ok)
	}
}
