package failure

import (
	"testing"
	"time"
)

func TestNodeDowntimeMergesOverlaps(t *testing.T) {
	events := []Event{
		{At: 0, Nodes: []int{0}, Recovery: 10 * time.Minute},
		{At: 5 * time.Minute, Nodes: []int{0}, Recovery: 10 * time.Minute}, // overlaps
		{At: time.Hour, Nodes: []int{1}, Recovery: 30 * time.Minute},
	}
	down := NodeDowntime(events, 3, 2*time.Hour)
	if down[0] != 15*time.Minute {
		t.Fatalf("node0 downtime = %v, want 15m (merged)", down[0])
	}
	if down[1] != 30*time.Minute {
		t.Fatalf("node1 downtime = %v", down[1])
	}
	if down[2] != 0 {
		t.Fatalf("node2 downtime = %v", down[2])
	}
}

func TestNodeDowntimeClampsToHorizon(t *testing.T) {
	events := []Event{{At: 50 * time.Minute, Nodes: []int{0}, Recovery: time.Hour}}
	down := NodeDowntime(events, 1, time.Hour)
	if down[0] != 10*time.Minute {
		t.Fatalf("downtime = %v, want clamped 10m", down[0])
	}
}

func TestNodeAvailability(t *testing.T) {
	events := []Event{{At: 0, Nodes: []int{0}, Recovery: time.Hour}}
	// 1 node-hour down out of 4 node-hours.
	got := NodeAvailability(events, 2, 2*time.Hour)
	if got != 0.75 {
		t.Fatalf("availability = %v, want 0.75", got)
	}
	if NodeAvailability(nil, 0, 0) != 0 {
		t.Fatal("degenerate availability must be 0")
	}
}

func TestApplicationDowntime1Safe(t *testing.T) {
	events := []Event{
		{At: 0, Nodes: []int{0}, Recovery: time.Hour},                         // maskable
		{At: 2 * time.Hour, Nodes: nodeRange(0, 80), Recovery: 3 * time.Hour}, // rack burst
	}
	// 1-safe scheme: the single-node event is masked for free, the rack
	// burst takes the app down for its full recovery.
	if d := ApplicationDowntime(events, 1, 0, 24*time.Hour); d != 3*time.Hour {
		t.Fatalf("1-safe downtime = %v, want 3h", d)
	}
	// Meteor Shower: both events are survivable; downtime is two fast
	// recoveries.
	if d := ApplicationDowntime(events, 1<<30, 10*time.Second, 24*time.Hour); d != 20*time.Second {
		t.Fatalf("MS downtime = %v, want 20s", d)
	}
}

func TestApplicationAvailabilityOrdersSchemes(t *testing.T) {
	// Over a realistic Google-model year, Meteor Shower's availability
	// must dominate a 1-safe scheme's, because rack/power bursts dominate
	// the downtime and only MS masks them.
	events := Generate(GoogleDC(), 2400, Year, 7)
	oneSafe := ApplicationAvailability(events, 1, 10*time.Second, Year)
	ms := ApplicationAvailability(events, 1<<30, 30*time.Second, Year)
	if ms <= oneSafe {
		t.Fatalf("MS availability %.6f not above 1-safe %.6f", ms, oneSafe)
	}
	if ms < 0.99 {
		t.Fatalf("MS availability %.6f unrealistically low", ms)
	}
	if oneSafe > 0.999 {
		t.Fatalf("1-safe availability %.6f unrealistically high given burst rates", oneSafe)
	}
}

func TestApplicationDowntimeEmpty(t *testing.T) {
	if ApplicationDowntime(nil, 1, 0, time.Hour) != 0 {
		t.Fatal("empty trace has downtime")
	}
	if ApplicationAvailability(nil, 1, 0, 0) != 0 {
		t.Fatal("degenerate horizon availability must be 0")
	}
}
