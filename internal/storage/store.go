package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrNotFound reports a missing blob.
var ErrNotFound = errors.New("storage: not found")

// ErrUnavailable reports that the store (or the network path to it) is
// down, e.g. a node disconnected from the shared storage system.
var ErrUnavailable = errors.New("storage: unavailable")

// Store is a simulated blob store backed by a Disk. A Store stands in for
// either a node's local disk filesystem or the shared storage system; both
// expose the same interface so HAU recovery can fall back from local disk
// to shared storage transparently (paper §III-A: checkpoints are "saved in
// the shared storage system, and optionally saved again in the local
// disks").
type Store struct {
	disk *Disk

	mu    sync.RWMutex
	blobs map[string][]byte
	down  bool
}

// NewStore returns an empty store on a fresh disk with the given spec.
func NewStore(spec DiskSpec) *Store {
	return &Store{disk: NewDisk(spec), blobs: make(map[string][]byte)}
}

// Disk exposes the underlying disk for stats inspection.
func (s *Store) Disk() *Disk { return s.disk }

// SetDown marks the store unavailable (true) or available (false). While
// down, every operation fails with ErrUnavailable and costs nothing.
func (s *Store) SetDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

// Down reports the availability flag.
func (s *Store) Down() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.down
}

// Put stores a copy of data under key, charging disk write cost, and
// returns the modelled duration of the write. The caller keeps ownership of
// data and may mutate it afterwards.
func (s *Store) Put(key string, data []byte) (time.Duration, error) {
	s.mu.RLock()
	down := s.down
	s.mu.RUnlock()
	if down {
		return 0, ErrUnavailable
	}
	return s.PutOwned(key, append([]byte(nil), data...))
}

// PutOwned stores data under key without a defensive copy: ownership of the
// slice transfers to the store, and the caller must not mutate it
// afterwards (concurrent reads of the now-immutable bytes are fine).
// Checkpoint writers hand over freshly flattened blobs through this path so
// a checkpoint is copied at most once end-to-end.
func (s *Store) PutOwned(key string, data []byte) (time.Duration, error) {
	s.mu.RLock()
	down := s.down
	s.mu.RUnlock()
	if down {
		return 0, ErrUnavailable
	}
	d := s.disk.Write(int64(len(data)))
	s.mu.Lock()
	s.blobs[key] = data
	s.mu.Unlock()
	return d, nil
}

// Get retrieves the blob under key, charging disk read cost.
func (s *Store) Get(key string) ([]byte, time.Duration, error) {
	s.mu.RLock()
	down := s.down
	data, ok := s.blobs[key]
	s.mu.RUnlock()
	if down {
		return nil, 0, ErrUnavailable
	}
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	d := s.disk.Read(int64(len(data)))
	return append([]byte(nil), data...), d, nil
}

// Delete removes key if present. Deleting a missing key is a no-op, so
// buffer-trim acks can be idempotent.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return ErrUnavailable
	}
	delete(s.blobs, key)
	return nil
}

// Has reports whether key exists (no disk cost: metadata lookup). A
// stored zero-byte blob exists: presence is a map lookup, not a nil
// check, so empty values (an operator with no state yet) are not
// mistaken for missing ones.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return false
	}
	_, ok := s.blobs[key]
	return ok
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.blobs {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Size returns the stored byte total (no disk cost).
func (s *Store) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.blobs {
		n += int64(len(b))
	}
	return n
}
