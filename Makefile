GO ?= go

.PHONY: ci vet lint build test race chaos chaos-migrate chaos-rescale chaos-rebalance chaos-unaligned chaos-elastic chaos-ha chaos-multiapp bench-smoke bench-hotpath placement-bench bench-checkpoint bench-checkpoint-smoke bench-unaligned bench-unaligned-smoke rescale-bench rescale-bench-smoke elasticity-bench elasticity-bench-smoke ha-bench ha-bench-smoke skew-bench skew-bench-smoke fairness-bench fairness-bench-smoke

ci: vet lint build race bench-smoke bench-checkpoint-smoke chaos chaos-migrate chaos-rescale chaos-rebalance chaos-unaligned chaos-elastic chaos-ha chaos-multiapp rescale-bench-smoke elasticity-bench-smoke skew-bench-smoke fairness-bench-smoke

vet:
	$(GO) vet ./...

# staticcheck when available; the CI workflow installs it, local runs
# without it just skip (no network installs from the build).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration smoke run: catches a broken hot path without paying for a
# full measurement; real numbers go to BENCH_hotpath.json via bench-hotpath.
bench-smoke:
	$(GO) test -run NONE -bench BenchmarkHotPath -benchtime 1x .

bench-hotpath:
	$(GO) test -run NONE -bench BenchmarkHotPath -benchtime 2s .

# Chaos smoke: 3 fixed seeds per topology through the fault-injection
# harness under the race detector. A failing run prints the mschaos
# command that replays its schedule.
chaos:
	$(GO) test -race -count=1 -run 'TestChaosSmoke|TestChaosScheduleReproducible' ./internal/chaos/

# Chaos with rack-spread placement and live migrations enabled, including
# rounds that kill the migrating HAU's source or destination node while
# the move is in flight.
chaos-migrate:
	$(GO) test -race -count=1 -run 'TestChaosMigrationSmoke|TestChaosMidMigrationKill' ./internal/chaos/

# Re-partition chaos: live splits/merges injected between kill rounds,
# including rounds that kill a replica while the rescale is in flight.
chaos-rescale:
	$(GO) test -race -count=1 -run 'TestChaosRescaleSmoke|TestChaosMidSplitKill' ./internal/chaos/

# Hot-slot rebalance chaos: clean weighted slot moves between kill rounds
# plus rounds that kill a replica while the rebalance is in flight.
chaos-rebalance:
	$(GO) test -race -count=1 -run 'TestChaosMidRebalanceKill' ./internal/chaos/

# Unaligned-checkpoint chaos: both oracles across 3 seeds per topology
# under the race detector with -scheme unaligned, including rounds forced
# onto the mid-channel-log kill instant.
chaos-unaligned:
	$(GO) test -race -count=1 -run 'TestChaosUnaligned' ./internal/chaos/

# Fleet-elasticity chaos: clean grow/drain cycles between kill rounds plus
# the mid-scale-in and scale-in-destination kill instants, 3 seeds per
# topology under the race detector.
chaos-elastic:
	$(GO) test -race -count=1 -run 'TestChaosElastic|TestChaosMidScaleIn|TestChaosScaleInDest' ./internal/chaos/

# Hybrid fault-tolerance chaos: an active standby armed on each
# topology's victim, promote-or-rollback recovery, plus the forced
# primary-kill and standby-mid-promotion instants, 3 seeds per topology
# under the race detector.
chaos-ha:
	$(GO) test -race -count=1 -run 'TestChaosHA' ./internal/chaos/

# Multi-tenant chaos: two applications share one fleet; kills a node
# hosting HAUs of both tenants (independent per-app rollbacks) and a node
# hosting only one (co-tenant must not roll back), both oracles per app
# under the race detector.
chaos-multiapp:
	$(GO) test -race -count=1 -run 'TestMultiApp' ./internal/chaos/

# Hybrid fault-tolerance benchmark: hybrid failover vs pure-checkpoint
# rollback on the same nine-HAU chain and kill schedule, scored by the
# sink's interruption. Regenerates BENCH_ha.json.
ha-bench:
	$(GO) run ./cmd/msha

# Shortened msha phases printed to stdout: exercises arm/kill/promote and
# the rollback path with the same acceptance checks at a relaxed ratio gate.
ha-bench-smoke:
	$(GO) run ./cmd/msha -quick -out -

# Fleet-elasticity benchmark: flash-crowd and diurnal workloads, elastic
# fleet vs a static two-node baseline, with the exactly-once oracle checked
# across every scale action. Regenerates BENCH_elasticity.json.
elasticity-bench:
	$(GO) run ./cmd/mselastic

# Shortened mselastic phases printed to stdout: exercises the full
# grow/shrink loop and its acceptance checks without the full phase grid.
elasticity-bench-smoke:
	$(GO) run ./cmd/mselastic -quick -out -

# Checkpoint datapath benchmark: freeze window vs dirty fraction, delta
# writes, parallel restore. Regenerates BENCH_checkpoint.json.
bench-checkpoint:
	$(GO) run ./cmd/msckpt

# Alignment ablation: aligned vs unaligned checkpoint completion across
# fan-in x backpressure x edge-batch. Regenerates BENCH_unaligned.json.
bench-unaligned:
	$(GO) run ./cmd/msalign

# Reduced-grid msalign under the race detector: exercises the unaligned
# capture/seal/restore datapath without paying for the full sweep.
bench-unaligned-smoke:
	$(GO) run -race ./cmd/msalign -quick -out -

# One-iteration smoke of the checkpoint suite under the race detector:
# exercises incremental capture, the off-loop writer and the restore
# worker pool without paying for the full grid.
bench-checkpoint-smoke:
	$(GO) test -race -run NONE -bench BenchmarkCheckpoint -benchtime 1x .

# Placement benchmark: burst loss at DC scale (round-robin vs rack-spread),
# live-cluster rack-burst recovery, and migration downtime vs state size.
# Regenerates BENCH_placement.json.
placement-bench:
	$(GO) run ./cmd/msplace

# Re-partitioning benchmark: split/merge downtime vs state size and sink
# throughput vs replica count on a skewed-key pair stage. Regenerates
# BENCH_rescale.json.
rescale-bench:
	$(GO) run ./cmd/msscale

# Reduced-grid msscale under the race detector: exercises live split and
# merge on a streaming cluster without paying for the full sweep.
rescale-bench-smoke:
	$(GO) run -race ./cmd/msscale -quick -out -

# Skew benchmark: weighted vs count-balanced 4-way splits under Zipf key
# skew, plus the drifting-hotspot rebalance. Regenerates BENCH_skew.json
# and fails if the weighted split or the rebalance misses its gate.
skew-bench:
	$(GO) run ./cmd/msskew

# Reduced-grid msskew under the race detector: exercises weighted split,
# observed-load accounting and RebalanceHAU with the gates still armed.
skew-bench-smoke:
	$(GO) run -race ./cmd/msskew -quick -out -

# Multi-tenant fairness benchmark: a light and a heavy tenant share one
# fleet under 3:1 and 1:1 weights through a flash crowd, then a shared
# node is killed to check per-app recovery isolation. Regenerates
# BENCH_fairness.json and fails on a fairness-band or isolation miss.
fairness-bench:
	$(GO) run ./cmd/msfair

# Shortened msfair phases printed to stdout: exercises the arbiter loop
# and the kill/recovery isolation checks; the fairness bands are reported
# but only correctness gates fail the run.
fairness-bench-smoke:
	$(GO) run ./cmd/msfair -quick -out -
