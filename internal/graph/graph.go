// Package graph models the query network of a stream application: a
// directed acyclic graph whose vertices are HAUs (High Availability Units)
// and whose edges are data streams (paper §II-A).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a mutable DAG of named HAUs. The zero value is not usable; call
// New. Mutation is not goroutine-safe; the runtime treats a validated graph
// as immutable.
type Graph struct {
	nodes map[string]bool
	out   map[string][]string
	in    map[string][]string
}

// New returns an empty query network.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]bool),
		out:   make(map[string][]string),
		in:    make(map[string][]string),
	}
}

// AddNode registers an HAU id. Adding the same id twice is an error so that
// application builders catch copy-paste mistakes early.
func (g *Graph) AddNode(id string) error {
	if id == "" {
		return errors.New("graph: empty node id")
	}
	if g.nodes[id] {
		return fmt.Errorf("graph: duplicate node %q", id)
	}
	g.nodes[id] = true
	return nil
}

// MustAddNode is AddNode for static application topologies.
func (g *Graph) MustAddNode(id string) {
	if err := g.AddNode(id); err != nil {
		panic(err)
	}
}

// AddEdge registers a stream from -> to. Both endpoints must exist and the
// edge must be new.
func (g *Graph) AddEdge(from, to string) error {
	if !g.nodes[from] {
		return fmt.Errorf("graph: edge from unknown node %q", from)
	}
	if !g.nodes[to] {
		return fmt.Errorf("graph: edge to unknown node %q", to)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on %q", from)
	}
	for _, d := range g.out[from] {
		if d == to {
			return fmt.Errorf("graph: duplicate edge %q -> %q", from, to)
		}
	}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
	return nil
}

// MustAddEdge is AddEdge for static application topologies.
func (g *Graph) MustAddEdge(from, to string) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// Has reports whether id is a node of g.
func (g *Graph) Has(id string) bool { return g.nodes[id] }

// Nodes returns all node ids in deterministic (sorted) order.
func (g *Graph) Nodes() []string {
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ds := range g.out {
		n += len(ds)
	}
	return n
}

// Upstream returns the ids with an edge into id, in insertion order. The
// index of an upstream in this slice is the HAU's input port number.
func (g *Graph) Upstream(id string) []string {
	return append([]string(nil), g.in[id]...)
}

// Downstream returns the ids that id has an edge to, in insertion order.
// The index of a downstream in this slice is the HAU's output port number.
func (g *Graph) Downstream(id string) []string {
	return append([]string(nil), g.out[id]...)
}

// InDegree returns the number of input streams of id.
func (g *Graph) InDegree(id string) int { return len(g.in[id]) }

// OutDegree returns the number of output streams of id.
func (g *Graph) OutDegree(id string) int { return len(g.out[id]) }

// Sources returns nodes with no upstream neighbours, sorted.
func (g *Graph) Sources() []string {
	var ids []string
	for id := range g.nodes {
		if len(g.in[id]) == 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Sinks returns nodes with no downstream neighbours, sorted.
func (g *Graph) Sinks() []string {
	var ids []string
	for id := range g.nodes {
		if len(g.out[id]) == 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// TopoOrder returns a topological ordering of the nodes, or an error if the
// graph contains a cycle. Ties are broken lexicographically so the order is
// deterministic.
func (g *Graph) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.in[id])
	}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)
	order := make([]string, 0, len(g.nodes))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var unlocked []string
		for _, d := range g.out[id] {
			indeg[d]--
			if indeg[d] == 0 {
				unlocked = append(unlocked, d)
			}
		}
		sort.Strings(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(order) != len(g.nodes) {
		return nil, errors.New("graph: cycle detected")
	}
	return order, nil
}

// Validate checks that the graph is a well-formed query network: non-empty,
// acyclic, has at least one source and one sink, and every node is
// reachable from some source (no disconnected islands that would never see
// a token).
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return errors.New("graph: empty")
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	srcs := g.Sources()
	if len(srcs) == 0 {
		return errors.New("graph: no source")
	}
	if len(g.Sinks()) == 0 {
		return errors.New("graph: no sink")
	}
	seen := make(map[string]bool)
	var stack []string
	stack = append(stack, srcs...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, g.out[id]...)
	}
	if len(seen) != len(g.nodes) {
		for _, id := range g.Nodes() {
			if !seen[id] {
				return fmt.Errorf("graph: node %q unreachable from any source", id)
			}
		}
	}
	return nil
}

// Clone returns an independent deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for id := range g.nodes {
		c.nodes[id] = true
	}
	for id, ds := range g.out {
		c.out[id] = append([]string(nil), ds...)
	}
	for id, us := range g.in {
		c.in[id] = append([]string(nil), us...)
	}
	return c
}

// Renamed returns a deep copy of g with every node id passed through f.
// Edge insertion order — and therefore every input and output port index —
// is preserved, which a rebuild through the public AddNode/AddEdge API
// could not guarantee (Nodes() sorts). The cluster layer uses it to
// namespace an application's HAU ids when several applications share one
// fleet. f must be injective over g's node ids.
func (g *Graph) Renamed(f func(string) string) *Graph {
	c := New()
	for id := range g.nodes {
		c.nodes[f(id)] = true
	}
	for id, ds := range g.out {
		rds := make([]string, len(ds))
		for i, d := range ds {
			rds[i] = f(d)
		}
		c.out[f(id)] = rds
	}
	for id, us := range g.in {
		rus := make([]string, len(us))
		for i, u := range us {
			rus[i] = f(u)
		}
		c.in[f(id)] = rus
	}
	return c
}

// Union returns a new graph containing every node and edge of the given
// graphs. The inputs must have disjoint node id sets; a duplicate id
// returns an error. Per-node edge order (port indices) is preserved.
func Union(gs ...*Graph) (*Graph, error) {
	c := New()
	for _, g := range gs {
		for id := range g.nodes {
			if c.nodes[id] {
				return nil, fmt.Errorf("graph: union: duplicate node %q", id)
			}
			c.nodes[id] = true
		}
		for id, ds := range g.out {
			c.out[id] = append([]string(nil), ds...)
		}
		for id, us := range g.in {
			c.in[id] = append([]string(nil), us...)
		}
	}
	return c, nil
}

// PortOf returns the input port index on `to` that carries the stream from
// `from`, or -1 if no such edge exists.
func (g *Graph) PortOf(from, to string) int {
	for i, u := range g.in[to] {
		if u == from {
			return i
		}
	}
	return -1
}

// Depth returns, per node, the length of the longest path from any source
// to that node. Sources have depth 0. Useful for estimating cascading token
// propagation time (MS-src checkpoints proceed in token order, §IV-B).
func (g *Graph) Depth() (map[string]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make(map[string]int, len(order))
	for _, id := range order {
		d := 0
		for _, u := range g.in[id] {
			if depth[u]+1 > d {
				d = depth[u] + 1
			}
		}
		depth[id] = d
	}
	return depth, nil
}

func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
