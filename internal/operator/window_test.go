package operator

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"meteorshower/internal/tuple"
)

func valTuple(id uint64, key string, v float64, ts int64) *tuple.Tuple {
	t := tuple.New(id, "S", key, binary.LittleEndian.AppendUint64(nil, math.Float64bits(v)))
	t.Ts = ts
	return t
}

func decodeVal(t *tuple.Tuple) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(t.Data))
}

func TestAggKindStrings(t *testing.T) {
	want := map[AggKind]string{AggSum: "sum", AggAvg: "avg", AggMin: "min", AggMax: "max", AggCount: "count", AggKind(99): "unknown-agg"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestFloat64ValueShortPayload(t *testing.T) {
	if _, err := Float64Value(tuple.New(1, "S", "k", []byte{1})); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestTumblingWindowAggregates(t *testing.T) {
	for _, tc := range []struct {
		kind AggKind
		want float64
	}{
		{AggSum, 60}, {AggAvg, 20}, {AggMin, 10}, {AggMax, 30}, {AggCount, 3},
	} {
		w := NewTumblingWindow("w", tc.kind, 100, nil)
		c := newCapture()
		w.OnTuple(0, valTuple(1, "k", 10, 1000), c.emit)
		w.OnTuple(0, valTuple(2, "k", 30, 1010), c.emit)
		w.OnTuple(0, valTuple(3, "k", 20, 1020), c.emit)
		w.OnTick(1050, c.emit) // window open
		if c.total() != 0 {
			t.Fatalf("%v: emitted before window closed", tc.kind)
		}
		w.OnTick(1101, c.emit)
		if c.total() != 1 {
			t.Fatalf("%v: emitted %d results", tc.kind, c.total())
		}
		if got := decodeVal(c.byPort[0][0]); got != tc.want {
			t.Fatalf("%v = %v, want %v", tc.kind, got, tc.want)
		}
		if w.StateSize() != 0 {
			t.Fatalf("%v: window state survived close", tc.kind)
		}
	}
}

func TestTumblingWindowPerKey(t *testing.T) {
	w := NewTumblingWindow("w", AggSum, 100, nil)
	c := newCapture()
	w.OnTuple(0, valTuple(1, "a", 1, 1000), c.emit)
	w.OnTuple(0, valTuple(2, "b", 2, 1001), c.emit)
	w.OnTick(1200, c.emit)
	if c.total() != 2 {
		t.Fatalf("results = %d, want 2 (per key)", c.total())
	}
	// Sorted key order.
	if c.byPort[0][0].Key != "a" || c.byPort[0][1].Key != "b" {
		t.Fatal("results not in deterministic key order")
	}
}

func TestTumblingWindowSnapshotRestore(t *testing.T) {
	w := NewTumblingWindow("w", AggAvg, 1000, nil)
	w.OnTuple(0, valTuple(1, "k", 10, 500), nil)
	w.OnTuple(0, valTuple(2, "k", 20, 510), nil)
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewTumblingWindow("w", AggAvg, 1000, nil)
	if err := w2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	c := newCapture()
	w2.OnTuple(0, valTuple(3, "k", 60, 520), c.emit)
	w2.OnTick(2000, c.emit)
	if c.total() != 1 || decodeVal(c.byPort[0][0]) != 30 {
		t.Fatalf("restored window avg wrong: %v", c.byPort[0])
	}
	if err := w2.Restore([]byte{1}); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

func TestTopKRankingAndEmit(t *testing.T) {
	tk := NewTopK("t", 2, nil)
	c := newCapture()
	tk.OnTuple(0, valTuple(1, "a", 5, 1), c.emit) // head: a -> emit
	tk.OnTuple(0, valTuple(2, "b", 3, 2), c.emit) // head still a
	tk.OnTuple(0, valTuple(3, "b", 9, 3), c.emit) // head: b -> emit
	tk.OnTuple(0, valTuple(4, "c", 1, 4), c.emit) // head still b
	if got := tk.Ranking(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("ranking = %v", got)
	}
	if c.total() != 2 {
		t.Fatalf("leader changes emitted = %d, want 2", c.total())
	}
}

func TestTopKSnapshotRestore(t *testing.T) {
	tk := NewTopK("t", 3, nil)
	tk.OnTuple(0, valTuple(1, "x", 7, 1), func(int, *tuple.Tuple) {})
	tk.OnTuple(0, valTuple(2, "y", 2, 2), func(int, *tuple.Tuple) {})
	snap, _ := tk.Snapshot()
	tk2 := NewTopK("t", 3, nil)
	if err := tk2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := tk2.Ranking(); len(got) != 2 || got[0] != "x" {
		t.Fatalf("restored ranking = %v", got)
	}
}

func TestSamplerDecimates(t *testing.T) {
	s := NewSampler("s", 3)
	c := newCapture()
	for i := uint64(1); i <= 10; i++ {
		s.OnTuple(0, valTuple(i, "k", float64(i), int64(i)), c.emit)
	}
	if c.total() != 3 { // tuples 3, 6, 9
		t.Fatalf("sampled %d, want 3", c.total())
	}
	// Restored sampler continues the phase.
	snap, _ := s.Snapshot()
	s2 := NewSampler("s", 3)
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	c2 := newCapture()
	s2.OnTuple(0, valTuple(11, "k", 11, 11), c2.emit)
	s2.OnTuple(0, valTuple(12, "k", 12, 12), c2.emit) // 12th overall
	if c2.total() != 1 {
		t.Fatalf("restored sampler phase wrong: %d", c2.total())
	}
}

func TestSamplerEveryClamp(t *testing.T) {
	s := NewSampler("s", 0)
	c := newCapture()
	s.OnTuple(0, valTuple(1, "k", 1, 1), c.emit)
	if c.total() != 1 {
		t.Fatal("every=0 must forward everything")
	}
}

// Property: for any sequence of values, TumblingWindow's sum equals the
// plain sum and min <= avg <= max.
func TestQuickTumblingInvariants(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				vals[i] = float64(i)
			}
		}
		sum := NewTumblingWindow("w", AggSum, 1, nil)
		min := NewTumblingWindow("w", AggMin, 1, nil)
		max := NewTumblingWindow("w", AggMax, 1, nil)
		var want float64
		wantMin, wantMax := vals[0], vals[0]
		for i, v := range vals {
			tp := valTuple(uint64(i), "k", v, 100)
			sum.OnTuple(0, tp, nil)
			min.OnTuple(0, tp, nil)
			max.OnTuple(0, tp, nil)
			want += v
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		var gotSum, gotMin, gotMax float64
		grab := func(dst *float64) Emitter {
			return func(_ int, t *tuple.Tuple) { *dst = decodeVal(t) }
		}
		sum.OnTick(1000, grab(&gotSum))
		min.OnTick(1000, grab(&gotMin))
		max.OnTick(1000, grab(&gotMax))
		return math.Abs(gotSum-want) < 1e-6*math.Max(1, math.Abs(want)) &&
			gotMin == wantMin && gotMax == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TumblingWindow snapshot/restore round-trips mid-window state.
func TestQuickTumblingRoundTrip(t *testing.T) {
	f := func(n uint8) bool {
		w := NewTumblingWindow("w", AggSum, 1<<40, nil)
		for i := 0; i < int(n%40); i++ {
			w.OnTuple(0, valTuple(uint64(i), "k"+string(rune('a'+i%5)), float64(i), 100), nil)
		}
		snap, err := w.Snapshot()
		if err != nil {
			return false
		}
		w2 := NewTumblingWindow("w", AggSum, 1<<40, nil)
		if err := w2.Restore(snap); err != nil {
			return false
		}
		s1, _ := w.Snapshot()
		s2, _ := w2.Snapshot()
		if len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

var _ Ticker = (*TumblingWindow)(nil)
var _ Operator = (*TopK)(nil)
var _ Operator = (*Sampler)(nil)
