package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripIdentical(t *testing.T) {
	base := bytes.Repeat([]byte{7}, 5000)
	d := Diff(base, base, 512)
	if len(d) >= len(base)/4 {
		t.Fatalf("identical state delta too big: %d", len(d))
	}
	got, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripSingleBlockChange(t *testing.T) {
	base := make([]byte, 8192)
	for i := range base {
		base[i] = byte(i)
	}
	cur := append([]byte(nil), base...)
	cur[5000] ^= 0xFF
	d := Diff(base, cur, 1024)
	// 8 blocks, 1 changed: ~1KB of data + headers.
	if len(d) > 1200 {
		t.Fatalf("one-block delta = %d bytes", len(d))
	}
	got, err := Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripGrowShrink(t *testing.T) {
	base := bytes.Repeat([]byte{1}, 3000)
	for _, cur := range [][]byte{
		bytes.Repeat([]byte{1}, 5000), // grow
		bytes.Repeat([]byte{1}, 100),  // shrink
		nil,                           // empty
	} {
		d := Diff(base, cur, 256)
		got, err := Apply(base, d)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("grow/shrink mismatch at len %d", len(cur))
		}
	}
}

func TestNilBase(t *testing.T) {
	cur := []byte("fresh state with no prior checkpoint")
	d := Diff(nil, cur, 8)
	got, err := Apply(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("nil-base round trip failed")
	}
}

func TestApplyErrors(t *testing.T) {
	if _, err := Apply(nil, []byte{1, 2}); err == nil {
		t.Fatal("short diff accepted")
	}
	base := []byte("0123456789")
	d := Diff(base, base, 4)
	if _, err := Apply(base[:5], d); err == nil {
		t.Fatal("base length mismatch accepted")
	}
	// Truncated payload.
	cur := []byte("ABCDEFGHIJ")
	d2 := Diff(base, cur, 4)
	if _, err := Apply(base, d2[:len(d2)-3]); err == nil {
		t.Fatal("truncated diff accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), d...)
	bad[0] = 0
	if _, err := Apply(base, bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestIsDelta(t *testing.T) {
	d := Diff(nil, []byte("x"), 4)
	if !IsDelta(d) {
		t.Fatal("diff not recognized")
	}
	if IsDelta([]byte("plain state blob")) {
		t.Fatal("plain blob recognized as delta")
	}
}

func TestSavings(t *testing.T) {
	base := bytes.Repeat([]byte{9}, 10000)
	d := Diff(base, base, 1024)
	if s := Savings(d, len(base)); s < 0.9 {
		t.Fatalf("identical-state savings = %.2f", s)
	}
	if Savings(nil, 0) != 0 {
		t.Fatal("zero-length savings must be 0")
	}
}

// Property: Apply(base, Diff(base, cur)) == cur for random inputs, block
// sizes, and mutation patterns.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]byte, rng.Intn(6000))
		rng.Read(base)
		var cur []byte
		switch rng.Intn(3) {
		case 0: // random mutation of base
			cur = append([]byte(nil), base...)
			for i := 0; i < rng.Intn(20); i++ {
				if len(cur) > 0 {
					cur[rng.Intn(len(cur))] ^= byte(rng.Intn(256))
				}
			}
		case 1: // resize
			cur = make([]byte, rng.Intn(6000))
			rng.Read(cur)
			copy(cur, base)
		default: // unrelated
			cur = make([]byte, rng.Intn(6000))
			rng.Read(cur)
		}
		bs := 16 << rng.Intn(7)
		got, err := Apply(base, Diff(base, cur, bs))
		return err == nil && bytes.Equal(got, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the delta of an unchanged prefix is never larger than the
// changed-suffix size plus per-block overhead.
func TestQuickDeltaBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2048 + rng.Intn(4096)
		base := make([]byte, n)
		rng.Read(base)
		cur := append([]byte(nil), base...)
		changed := rng.Intn(n / 2)
		rng.Read(cur[n-changed:])
		d := Diff(base, cur, 256)
		overhead := (n/256+2)*1 + 32
		return len(d) <= changed+256+overhead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDiff64K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 64<<10)
	rng.Read(base)
	cur := append([]byte(nil), base...)
	for i := 0; i < 64; i++ {
		cur[rng.Intn(len(cur))] ^= 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Diff(base, cur, DefaultBlockSize)
	}
}

func BenchmarkApply64K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 64<<10)
	rng.Read(base)
	cur := append([]byte(nil), base...)
	cur[100] ^= 1
	d := Diff(base, cur, DefaultBlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(base, d); err != nil {
			b.Fatal(err)
		}
	}
}
