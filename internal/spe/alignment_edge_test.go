package spe

import (
	"context"
	"testing"
	"time"

	"meteorshower/internal/operator"
	"meteorshower/internal/storage"
	"meteorshower/internal/tuple"
)

// alignFixture is a two-input MS-src HAU under direct edge control — the
// shape every alignment edge case below runs against.
type alignFixture struct {
	in0, in1 *Edge
	out      *edgeReader
	cat      *storage.Catalog
	h        *HAU
	lis      *recListener
	cancel   context.CancelFunc
}

func newAlignFixture(t *testing.T) *alignFixture {
	t.Helper()
	f := &alignFixture{
		in0: NewEdge("u0", "H", 16),
		in1: NewEdge("u1", "H", 16),
		lis: &recListener{},
	}
	out := NewEdge("H", "down", 256)
	f.out = newEdgeReader(out)
	f.cat = storage.NewCatalog(fastStore(), []string{"H"})
	h, err := New(Config{
		ID: "H", Scheme: MSSrc, Ops: []operator.Operator{operator.NewCounter("c")},
		In: []*Edge{f.in0, f.in1}, Out: []*Edge{out},
		Catalog: f.cat, TickEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.cfg.Listener = f.lis
	f.h = h
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	h.Start(ctx)
	return f
}

func (f *alignFixture) data(src string, id, seq uint64) *tuple.Tuple {
	tp := tuple.New(id, src, src, nil)
	tp.Seq = seq
	return tp
}

func (f *alignFixture) token(epoch uint64, from string) *tuple.Tuple {
	return tuple.NewToken(tuple.Token{Epoch: epoch, Kind: tuple.Cascading, From: from})
}

// waitDelivered drains the output edge until each source reached its
// wanted count (tokens are counted separately and returned).
func (f *alignFixture) waitDelivered(t *testing.T, want map[string]int) (counts map[string]int, tokens int) {
	t.Helper()
	counts = map[string]int{}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for src, n := range want {
			if counts[src] < n {
				done = false
			}
		}
		if done {
			return counts, tokens
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: delivered %v, want %v", counts, want)
		}
		tp := f.out.tryNext()
		if tp == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		if tp.IsToken() {
			tokens++
		} else {
			counts[tp.Src]++
		}
	}
}

// drain consumes whatever is immediately available on the output edge.
func (f *alignFixture) drain() (counts map[string]int, tokens int) {
	counts = map[string]int{}
	for {
		tp := f.out.tryNext()
		if tp == nil {
			return counts, tokens
		}
		if tp.IsToken() {
			tokens++
		} else {
			counts[tp.Src]++
		}
	}
}

// cutCounts restores the epoch's checkpoint into a fresh operator and
// returns the per-source counts captured by the cut.
func (f *alignFixture) cutCounts(t *testing.T, epoch uint64) map[string]uint64 {
	t.Helper()
	blob, _, err := f.cat.LoadState(epoch, "H")
	if err != nil {
		t.Fatal(err)
	}
	cnt := operator.NewCounter("c")
	h2, err := New(Config{
		ID: "H", Scheme: MSSrc, Ops: []operator.Operator{cnt},
		In:  []*Edge{NewEdge("a", "H", 0), NewEdge("b", "H", 0)},
		Out: []*Edge{NewEdge("H", "z", 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.RestoreFrom(blob); err != nil {
		t.Fatal(err)
	}
	return map[string]uint64{"u0": cnt.Count("u0"), "u1": cnt.Count("u1")}
}

// TestAlignmentEdgeCases covers the adversarial instants the chaos
// harness aims kills at: a token buried mid-batch, an input hanging up
// while alignment is in progress, and a checkpoint epoch overlapping a
// recovery (stale token replayed at a restored HAU).
func TestAlignmentEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, f *alignFixture)
	}{
		{
			// Tokens force a flush at the sender, so a token is normally
			// last in its batch — but a sender crash/replay can produce a
			// batch with tuples behind the token. The remainder must wait
			// for alignment, or the cut would include post-boundary tuples.
			name: "token mid-batch parks the remainder",
			run: func(t *testing.T, f *alignFixture) {
				f.in0.Inject(nil,
					f.data("u0", 1, 1),
					f.token(1, "u0"),
					f.data("u0", 2, 2),
				)
				f.in1.Inject(nil, f.data("u1", 1, 1))
				f.waitDelivered(t, map[string]int{"u0": 1, "u1": 1})
				// Give the HAU a chance to (incorrectly) process the
				// parked remainder, then confirm it did not.
				time.Sleep(20 * time.Millisecond)
				counts, _ := f.drain()
				if counts["u0"] != 0 {
					t.Fatal("tuple behind mid-batch token processed before alignment")
				}
				if f.lis.ckptCount() != 0 {
					t.Fatal("checkpointed with one input still unaligned")
				}
				f.in1.Inject(nil, f.token(1, "u1"))
				waitFor(t, 5*time.Second, func() bool { return f.lis.ckptCount() == 1 })
				// The parked remainder flows once the cut is taken.
				f.waitDelivered(t, map[string]int{"u0": 1})
				cut := f.cutCounts(t, 1)
				if cut["u0"] != 1 || cut["u1"] != 1 {
					t.Fatalf("cut = %v, want u0=1 u1=1 (remainder excluded)", cut)
				}
			},
		},
		{
			// An upstream that dies (edge closed) during alignment must
			// count as aligned-by-quiescence, or the checkpoint wedges
			// waiting for a token that can never come.
			name: "input closing during alignment completes the cut",
			run: func(t *testing.T, f *alignFixture) {
				f.in0.Inject(nil, f.data("u0", 1, 1))
				f.in1.Inject(nil, f.data("u1", 1, 1))
				f.waitDelivered(t, map[string]int{"u0": 1, "u1": 1})
				f.in0.Inject(nil, f.token(1, "u0"))
				time.Sleep(10 * time.Millisecond)
				if f.lis.ckptCount() != 0 {
					t.Fatal("checkpointed before the second input resolved")
				}
				close(f.in1.C) // u1 fail-stops mid-alignment
				waitFor(t, 5*time.Second, func() bool { return f.lis.ckptCount() == 1 })
				cut := f.cutCounts(t, 1)
				if cut["u0"] != 1 || cut["u1"] != 1 {
					t.Fatalf("cut = %v, want u0=1 u1=1", cut)
				}
				// The surviving input keeps flowing after the cut.
				f.in0.Inject(nil, f.data("u0", 2, 2))
				f.waitDelivered(t, map[string]int{"u0": 1})
			},
		},
		{
			// After a rollback to epoch N, a token for epoch N (or older)
			// can still reach a recovered HAU — e.g. replayed by an
			// upstream that checkpointed before the failure. It must be
			// discarded, not re-open alignment for a finished epoch.
			name: "checkpoint epoch overlapping recovery is discarded",
			run: func(t *testing.T, f *alignFixture) {
				f.in0.Inject(nil, f.data("u0", 1, 1), f.token(1, "u0"))
				f.in1.Inject(nil, f.data("u1", 1, 1), f.token(1, "u1"))
				waitFor(t, 5*time.Second, func() bool { return f.lis.ckptCount() == 1 })

				// Stale token for the already-checkpointed epoch: no new
				// alignment, and traffic keeps moving on both inputs.
				f.in0.Inject(nil, f.token(1, "u0"))
				f.in0.Inject(nil, f.data("u0", 2, 2))
				f.in1.Inject(nil, f.data("u1", 2, 2))
				f.waitDelivered(t, map[string]int{"u0": 1, "u1": 1})
				if f.lis.ckptCount() != 1 {
					t.Fatalf("stale token re-ran the checkpoint: %d cuts", f.lis.ckptCount())
				}

				// The next epoch still aligns normally.
				f.in0.Inject(nil, f.token(2, "u0"))
				f.in1.Inject(nil, f.token(2, "u1"))
				waitFor(t, 5*time.Second, func() bool { return f.lis.ckptCount() == 2 })
				cut := f.cutCounts(t, 2)
				if cut["u0"] != 2 || cut["u1"] != 2 {
					t.Fatalf("epoch-2 cut = %v, want u0=2 u1=2", cut)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newAlignFixture(t)
			defer f.cancel()
			tc.run(t, f)
		})
	}
}
