package statesize

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const sec = int64(1e9)

func feed(tr *Tracker, sizes ...int64) []*TurningPoint {
	var tps []*TurningPoint
	for i, s := range sizes {
		if tp := tr.Observe(Sample{At: int64(i) * sec, Size: s}); tp != nil {
			tps = append(tps, tp)
		}
	}
	return tps
}

func TestTrackerDetectsTrough(t *testing.T) {
	tps := feed(&Tracker{}, 100, 50, 20, 60, 90)
	if len(tps) != 1 {
		t.Fatalf("got %d turning points, want 1", len(tps))
	}
	tp := tps[0]
	if tp.Kind != Trough || tp.Size != 20 || tp.At != 2*sec {
		t.Fatalf("trough = %+v", tp)
	}
	if tp.ICR != 40 { // rose 40 bytes over 1s after the turn
		t.Fatalf("ICR = %v, want 40", tp.ICR)
	}
}

func TestTrackerDetectsPeak(t *testing.T) {
	tps := feed(&Tracker{}, 10, 50, 250, 140)
	if len(tps) != 1 || tps[0].Kind != Peak || tps[0].Size != 250 {
		t.Fatalf("tps = %+v", tps)
	}
	if tps[0].ICR != -110 {
		t.Fatalf("ICR = %v, want -110", tps[0].ICR)
	}
}

func TestTrackerMonotoneSeriesNoTurns(t *testing.T) {
	if tps := feed(&Tracker{}, 1, 2, 3, 4, 5); len(tps) != 0 {
		t.Fatalf("monotone series produced %d turns", len(tps))
	}
	if tps := feed(&Tracker{}, 5, 4, 3, 2, 1); len(tps) != 0 {
		t.Fatalf("monotone series produced %d turns", len(tps))
	}
}

func TestTrackerFlatSegments(t *testing.T) {
	// Plateaus must not create spurious turning points: 10,20,20,20,5 has
	// exactly one peak (at the last sample of the plateau's start).
	tps := feed(&Tracker{}, 10, 20, 20, 20, 5)
	if len(tps) != 1 || tps[0].Kind != Peak {
		t.Fatalf("tps = %+v", tps)
	}
}

func TestTrackerZigzag(t *testing.T) {
	tps := feed(&Tracker{}, 50, 100, 50, 100, 50)
	if len(tps) != 3 {
		t.Fatalf("zigzag: %d turns, want 3", len(tps))
	}
	wantKinds := []PointKind{Peak, Trough, Peak}
	for i, tp := range tps {
		if tp.Kind != wantKinds[i] {
			t.Fatalf("turn %d kind = %v, want %v", i, tp.Kind, wantKinds[i])
		}
	}
}

func TestTrackerLast(t *testing.T) {
	tr := &Tracker{}
	if _, ok := tr.Last(); ok {
		t.Fatal("fresh tracker has a last sample")
	}
	tr.Observe(Sample{At: 5, Size: 9})
	if s, ok := tr.Last(); !ok || s.Size != 9 {
		t.Fatalf("Last = %+v, %v", s, ok)
	}
}

func TestPointKindString(t *testing.T) {
	if Trough.String() != "trough" || Peak.String() != "peak" {
		t.Fatal("PointKind strings wrong")
	}
}

func TestPolylineInterpolation(t *testing.T) {
	var p Polyline
	p.Append(Sample{At: 0, Size: 100})
	p.Append(Sample{At: 10 * sec, Size: 200})
	if got := p.At(5 * sec); got != 150 {
		t.Fatalf("At(5s) = %d, want 150", got)
	}
	if got := p.At(-sec); got != 100 {
		t.Fatalf("At(before) = %d, want 100", got)
	}
	if got := p.At(20 * sec); got != 200 {
		t.Fatalf("At(after) = %d, want 200", got)
	}
}

func TestPolylineEmpty(t *testing.T) {
	var p Polyline
	if p.At(5) != 0 {
		t.Fatal("empty polyline must evaluate to 0")
	}
}

func TestPolylineOutOfOrderInsert(t *testing.T) {
	var p Polyline
	p.Append(Sample{At: 10, Size: 10})
	p.Append(Sample{At: 0, Size: 0})
	p.Append(Sample{At: 5, Size: 100})
	pts := p.Points()
	if pts[0].At != 0 || pts[1].At != 5 || pts[2].At != 10 {
		t.Fatalf("points not time-ordered: %+v", pts)
	}
}

func TestPolylineMinOn(t *testing.T) {
	// Fig. 10 shape: zigzag with minima at the troughs.
	var p Polyline
	p.Append(Sample{At: 0, Size: 300})
	p.Append(Sample{At: 2 * sec, Size: 450})
	p.Append(Sample{At: 4 * sec, Size: 130})
	p.Append(Sample{At: 6 * sec, Size: 400})
	at, size := p.MinOn(0, 6*sec)
	if at != 4*sec || size != 130 {
		t.Fatalf("MinOn = (%d, %d)", at, size)
	}
	// Interval not containing the trough: min at an endpoint.
	at, size = p.MinOn(0, 2*sec)
	if at != 0 || size != 300 {
		t.Fatalf("MinOn endpoint = (%d, %d)", at, size)
	}
}

func TestIsDynamic(t *testing.T) {
	// min 0 < avg/2 -> dynamic (TMI-like sawtooth).
	saw := []Sample{{0, 0}, {1, 100}, {2, 200}, {3, 0}, {4, 100}, {5, 200}}
	if !IsDynamic(saw) {
		t.Fatal("sawtooth not classified dynamic")
	}
	// Near-constant -> static.
	flat := []Sample{{0, 100}, {1, 110}, {2, 90}, {3, 105}}
	if IsDynamic(flat) {
		t.Fatal("flat series classified dynamic")
	}
	if IsDynamic(nil) {
		t.Fatal("empty series classified dynamic")
	}
}

func TestBuildProfile(t *testing.T) {
	// Two periods of 10s. Period 1 min = 40 at t=4, period 2 min = 100 at
	// t=14. smax=100, smin=40, alpha=1.5.
	var f Polyline
	f.Append(Sample{At: 0, Size: 200})
	f.Append(Sample{At: 4 * sec, Size: 40})
	f.Append(Sample{At: 8 * sec, Size: 300})
	f.Append(Sample{At: 14 * sec, Size: 100})
	f.Append(Sample{At: 18 * sec, Size: 350})
	p := BuildProfile(&f, 0, 20*sec, 10*sec)
	if p.Smax != 100 || p.Smin != 40 {
		t.Fatalf("profile = %+v", p)
	}
	if len(p.BestTimes) != 2 || p.BestTimes[0] != 4*sec || p.BestTimes[1] != 14*sec {
		t.Fatalf("best times = %v", p.BestTimes)
	}
	if p.Alpha != 1.5 {
		t.Fatalf("alpha = %v", p.Alpha)
	}
}

func TestBuildProfileRelaxationFloor(t *testing.T) {
	// Minima 100 and 105: raw alpha = 5% < 20% -> smax raised to 120.
	var f Polyline
	f.Append(Sample{At: 0, Size: 500})
	f.Append(Sample{At: 5 * sec, Size: 100})
	f.Append(Sample{At: 10 * sec, Size: 500})
	f.Append(Sample{At: 15 * sec, Size: 105})
	f.Append(Sample{At: 20 * sec, Size: 500})
	p := BuildProfile(&f, 0, 20*sec, 10*sec)
	if p.Smax != 120 {
		t.Fatalf("smax = %d, want 120 (floored relaxation)", p.Smax)
	}
	if p.Alpha < MinRelaxation {
		t.Fatalf("alpha = %v < floor", p.Alpha)
	}
}

func TestBuildProfileDegenerate(t *testing.T) {
	if p := BuildProfile(&Polyline{}, 0, 10, 5); p.Smax != 0 {
		t.Fatalf("empty polyline profile = %+v", p)
	}
	var f Polyline
	f.Append(Sample{At: 0, Size: 0})
	f.Append(Sample{At: 10 * sec, Size: 0})
	p := BuildProfile(&f, 0, 10*sec, 5*sec)
	if p.Smax <= 0 {
		t.Fatal("zero-state profile must still arm alert mode")
	}
}

func TestAggregatorTotals(t *testing.T) {
	a := NewAggregator()
	a.Report("h1", 0, 140, -50)
	a.Report("h2", 0, 100, 30)
	if got := a.TotalSize(); got != 240 {
		t.Fatalf("TotalSize = %d", got)
	}
	if got := a.TotalICR(); got != -20 {
		t.Fatalf("TotalICR = %v (Fig. 11: -50+30 = -20)", got)
	}
	// Update h1 at its next turning point (Fig. 11 p5): total flips sign.
	a.Report("h1", 2*sec, 40, 60)
	if got := a.TotalICR(); got != 90 {
		t.Fatalf("TotalICR after p5 = %v, want 90", got)
	}
}

func TestAggregatorAggregatePolyline(t *testing.T) {
	a := NewAggregator()
	a.Report("h1", 0, 100, 0)
	a.Report("h1", 2*sec, 200, 0)
	a.Report("h2", 1*sec, 50, 0)
	pl := a.AggregatePolyline()
	// At t=1s: h1 interpolates to 150, h2 is 50 -> 200.
	if got := pl.At(1 * sec); got != 200 {
		t.Fatalf("aggregate at 1s = %d, want 200", got)
	}
}

func TestAggregatorReset(t *testing.T) {
	a := NewAggregator()
	a.Report("h1", 0, 100, 5)
	a.Reset()
	if a.TotalSize() != 0 || a.TotalICR() != 0 {
		t.Fatal("reset did not clear totals")
	}
}

// Property: for any series, every reported turning point is a true local
// extremum of the (deduplicated) series.
func TestQuickTurningPointsAreExtrema(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(60)
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = int64(r.Intn(100))
		}
		tr := &Tracker{}
		// Track the last two distinct values to validate extremum claims.
		type obs struct {
			size int64
		}
		var distinct []obs
		for i, s := range sizes {
			tp := tr.Observe(Sample{At: int64(i) * sec, Size: s})
			if len(distinct) == 0 || distinct[len(distinct)-1].size != s {
				distinct = append(distinct, obs{s})
			}
			if tp == nil {
				continue
			}
			// The TP size must equal the second-to-last distinct value
			// and be a strict extremum between its neighbours.
			if len(distinct) < 3 {
				return false
			}
			a := distinct[len(distinct)-3].size
			b := distinct[len(distinct)-2].size
			c := distinct[len(distinct)-1].size
			if tp.Size != b {
				return false
			}
			if tp.Kind == Peak && !(b > a && b > c) {
				return false
			}
			if tp.Kind == Trough && !(b < a && b < c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: polyline interpolation is exact at vertices and bounded by the
// min/max of neighbouring vertices in between.
func TestQuickPolylineBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var p Polyline
		n := 2 + r.Intn(20)
		at := int64(0)
		for i := 0; i < n; i++ {
			at += int64(1 + r.Intn(5))
			p.Append(Sample{At: at * sec, Size: int64(r.Intn(1000))})
		}
		pts := p.Points()
		for i, v := range pts {
			if p.At(v.At) != v.Size {
				return false
			}
			if i == 0 {
				continue
			}
			mid := (pts[i-1].At + v.At) / 2
			val := p.At(mid)
			lo, hi := pts[i-1].Size, v.Size
			if lo > hi {
				lo, hi = hi, lo
			}
			if val < lo-1 || val > hi+1 { // int rounding tolerance
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: BuildProfile's smax/smin bracket every per-period best size,
// and alpha respects the floor whenever smin > 0.
func TestQuickProfileBrackets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var p Polyline
		at := int64(0)
		for i := 0; i < 10+r.Intn(30); i++ {
			at += int64(1+r.Intn(3)) * sec
			p.Append(Sample{At: at, Size: int64(10 + r.Intn(500))})
		}
		period := int64(5+r.Intn(10)) * sec
		prof := BuildProfile(&p, 0, at, period)
		for _, s := range prof.BestSizes {
			if s < prof.Smin || (s > prof.Smax && prof.Alpha > MinRelaxation) {
				return false
			}
		}
		if prof.Smin > 0 && prof.Alpha < MinRelaxation {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
