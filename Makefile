GO ?= go

.PHONY: ci vet build test race chaos bench-smoke bench-hotpath

ci: vet build race bench-smoke chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration smoke run: catches a broken hot path without paying for a
# full measurement; real numbers go to BENCH_hotpath.json via bench-hotpath.
bench-smoke:
	$(GO) test -run NONE -bench BenchmarkHotPath -benchtime 1x .

bench-hotpath:
	$(GO) test -run NONE -bench BenchmarkHotPath -benchtime 2s .

# Chaos smoke: 3 fixed seeds per topology through the fault-injection
# harness under the race detector. A failing run prints the mschaos
# command that replays its schedule.
chaos:
	$(GO) test -race -count=1 -run 'TestChaosSmoke|TestChaosScheduleReproducible' ./internal/chaos/
