// Command msckpt benchmarks the checkpoint datapath and regenerates
// BENCH_checkpoint.json. Two experiments:
//
//  1. Freeze-window grid: a real MSSrcAP HAU carrying StateBytes across
//     100 incremental sections is driven through checkpoints while the
//     driver dirties a controlled fraction of sections per epoch. The
//     cell records the on-loop freeze window (capture) separately from
//     the writer-side flatten/diff/disk phases.
//
//  2. Restore width: a Width-chain application is checkpointed, killed,
//     and recovered with increasing RestoreWorkers. Each stateful HAU
//     carries a modelled data-structure reconstruction latency (the
//     paper's recovery phase 3), which the worker pool overlaps.
//
//     msckpt          # full grid, writes BENCH_checkpoint.json
//     msckpt -out -   # print JSON to stdout instead
//     msckpt -quick   # reduced grid (CI smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"meteorshower/internal/bench"
)

func main() {
	var (
		out   = flag.String("out", "BENCH_checkpoint.json", `output path; "-" prints to stdout`)
		quick = flag.Bool("quick", false, "reduced grid")
	)
	flag.Parse()

	sizes := []int64{64 << 10, 1 << 20, 4 << 20, 16 << 20}
	dirty := []float64{0.01, 0.10, 1.0}
	restoreWidth, restoreState := 16, int64(4<<20)
	workers := []int{1, 2, 4, 8, 16}
	epochs := 8
	if *quick {
		sizes = []int64{64 << 10, 1 << 20}
		dirty = []float64{0.01, 1.0}
		restoreWidth, restoreState = 4, 1<<20
		workers = []int{1, 4}
		epochs = 3
	}

	doc := map[string]any{
		"benchmark": "checkpoint",
		"unit_note": "freeze_us is the on-loop capture (the stall the stream observes); " +
			"flatten/diff/disk run on the per-HAU checkpoint writer goroutine",
		"environment": map[string]any{
			"go":     runtime.Version(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
		},
		"regenerate": "go run ./cmd/msckpt",
		"baseline_pre_change": map[string]any{
			"commit_note": "monolithic v1 blob: every checkpoint re-encoded all operator state on the " +
				"HAU loop, and delta diff + lastBlob bookkeeping also ran on-loop before the async write",
			"note": "measured on this host immediately before the incremental-capture change; " +
				"the pre-change freeze window was encode (+diff when delta was enabled)",
			"freeze_us": map[string]any{
				"4MB_dirty1_encode":         3288,
				"4MB_dirty1_encode_diff":    3626,
				"4MB_dirty100_encode_diff":  6936,
				"16MB_dirty100_encode_diff": 43400,
				"1MB_encode":                850,
				"64KB_encode":               110,
			},
		},
	}

	fmt.Fprintln(os.Stderr, "== freeze window vs dirty fraction ==")
	var grid []bench.CheckpointCell
	var freeze4MBDirty1, freeze4MBDirty100 float64
	for _, size := range sizes {
		for _, frac := range dirty {
			for _, delta := range []bool{false, true} {
				cell, err := bench.RunCheckpointCell(bench.CheckpointParams{
					StateBytes: size, DirtyFrac: frac, Epochs: epochs, Delta: delta, Seed: 1,
				})
				if err != nil {
					fatal(err)
				}
				grid = append(grid, cell)
				if size == 4<<20 && !delta {
					if frac == 0.01 {
						freeze4MBDirty1 = cell.FreezeUs
					}
					if frac == 1.0 {
						freeze4MBDirty100 = cell.FreezeUs
					}
				}
				fmt.Fprintf(os.Stderr, "  %6dKB dirty=%4.0f%% delta=%-5v freeze %8.1fus flatten %8.1fus diff %8.1fus disk %8.1fus\n",
					cell.StateKB, 100*frac, delta, cell.FreezeUs, cell.FlattenUs, cell.DiffUs, cell.DiskUs)
			}
		}
	}
	doc["freeze_grid"] = grid

	fmt.Fprintln(os.Stderr, "== restore width ==")
	cells, err := bench.RunRestoreWidth(bench.RestoreParams{
		Width: restoreWidth, StateBytes: restoreState, Workers: workers, Seed: 1,
	})
	if err != nil {
		fatal(err)
	}
	for _, c := range cells {
		fmt.Fprintf(os.Stderr, "  workers=%2d deserialize %9.0fus total %9.0fus\n", c.Workers, c.DeserializeUs, c.TotalUs)
	}
	doc["restore_width"] = map[string]any{
		"note": "each stateful HAU carries a modelled reconstruction latency (500us/MB, the paper's " +
			"recovery phase 3); the worker pool overlaps it across HAUs, so the scaling holds on " +
			"single-CPU hosts too — CPU-bound deserialize additionally gains with real cores",
		"haus_width":                 restoreWidth,
		"state_bytes_per_hau":        restoreState,
		"modelled_restore_us_per_mb": 500,
		"trials_best_of":             3,
		"cells":                      cells,
	}

	if !*quick && freeze4MBDirty1 > 0 {
		doc["headline"] = map[string]any{
			"freeze_4MB_dirty1_us":            freeze4MBDirty1,
			"speedup_vs_pre_change":           round1(3288 / freeze4MBDirty1),
			"freeze_dirty100_over_dirty1_4MB": round1(freeze4MBDirty100 / freeze4MBDirty1),
			"restore_w1_over_w8_deser":        round1(deserAt(cells, 1) / deserAt(cells, 8)),
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func deserAt(cells []bench.RestoreCell, w int) float64 {
	for _, c := range cells {
		if c.Workers == w {
			return c.DeserializeUs
		}
	}
	return 0
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "msckpt: %v\n", err)
	os.Exit(1)
}
